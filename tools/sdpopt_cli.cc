// sdpopt_cli -- command-line EXPLAIN driver for the library.
//
// Usage:
//   sdpopt_cli [options] "SELECT * FROM R1 a, R2 b WHERE a.c1 = b.c2"
//   echo "SELECT ..." | sdpopt_cli [options]
//
// Options:
//   --algorithm=dp|idp4|idp7|idp2|sdp|all   optimizer(s) to run (default: sdp)
//   --schema=paper|small               catalog to bind against
//                                      (paper: 25 relations R1..R25 with
//                                      columns c1..c24; small: the same
//                                      shape capped at 2000 rows/table)
//   --budget-mb=N                      optimizer memory budget (default: none)
//   --threads=N                        route through the OptimizerService
//                                      with an N-thread worker pool
//   --cache=on|off                     service plan cache (default: on)
//   --repeat=K                         submit the query K times per
//                                      algorithm (throughput / cache probe)
//   --execute                          materialize data (small schema only)
//                                      and run the chosen plan
//   --dot                              emit GraphViz DOT for the join
//                                      graph and the chosen plan(s)
//   --list-tables                      print the schema and exit
//
// --threads/--repeat run through the concurrent service and finish with a
// ServiceMetrics dump, so cache hit rates and optimize latency are
// observable straight from the command line.
#include <cstdio>
#include <algorithm>
#include <cstring>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/sdp.h"
#include "cost/cost_model.h"
#include "engine/executor.h"
#include "engine/table_data.h"
#include "harness/experiment.h"
#include "optimizer/dp.h"
#include "optimizer/idp.h"
#include "query/graphviz.h"
#include "service/optimizer_service.h"
#include "sql/parser.h"
#include "stats/column_stats.h"

namespace {

struct Options {
  std::string algorithm = "sdp";
  std::string schema = "paper";
  double budget_mb = 0;
  int threads = 0;  // 0 = direct library calls (no service).
  bool cache = true;
  int repeat = 1;
  bool execute = false;
  bool list_tables = false;
  bool dot = false;
  std::string sql;
};

bool ParseArgs(int argc, char** argv, Options* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--algorithm=", 0) == 0) {
      out->algorithm = arg.substr(12);
    } else if (arg.rfind("--schema=", 0) == 0) {
      out->schema = arg.substr(9);
    } else if (arg.rfind("--budget-mb=", 0) == 0) {
      out->budget_mb = std::atof(arg.c_str() + 12);
    } else if (arg.rfind("--threads=", 0) == 0) {
      out->threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--cache=", 0) == 0) {
      const std::string v = arg.substr(8);
      if (v != "on" && v != "off") {
        std::fprintf(stderr, "--cache expects on|off, got '%s'\n", v.c_str());
        return false;
      }
      out->cache = v == "on";
    } else if (arg.rfind("--repeat=", 0) == 0) {
      out->repeat = std::atoi(arg.c_str() + 9);
      if (out->repeat < 1) out->repeat = 1;
    } else if (arg == "--execute") {
      out->execute = true;
    } else if (arg == "--dot") {
      out->dot = true;
    } else if (arg == "--list-tables") {
      out->list_tables = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    } else {
      if (!out->sql.empty()) out->sql += " ";
      out->sql += arg;
    }
  }
  return true;
}

std::vector<sdp::AlgorithmSpec> PickAlgorithms(const std::string& name) {
  using sdp::AlgorithmSpec;
  if (name == "dp") return {AlgorithmSpec::DP()};
  if (name == "idp4") return {AlgorithmSpec::IDP(4)};
  if (name == "idp7") return {AlgorithmSpec::IDP(7)};
  if (name == "idp2") return {AlgorithmSpec::IDP2(7)};
  if (name == "sdp") return {AlgorithmSpec::SDP()};
  if (name == "all") {
    return {AlgorithmSpec::DP(), AlgorithmSpec::IDP(7), AlgorithmSpec::IDP(4),
            AlgorithmSpec::SDP()};
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) return 2;

  sdp::SchemaConfig config;
  if (options.schema == "small") {
    config.max_rows = 2000;
    config.min_domain = 20;
    config.max_domain = 2000;
  } else if (options.schema != "paper") {
    std::fprintf(stderr, "unknown schema '%s'\n", options.schema.c_str());
    return 2;
  }
  const sdp::Catalog catalog = sdp::MakeSyntheticCatalog(config);

  if (options.list_tables) {
    for (int t = 0; t < catalog.num_tables(); ++t) {
      const sdp::Table& table = catalog.table(t);
      std::printf("%-6s %9llu rows, %zu columns (c1..c%zu), index on c%d\n",
                  table.name.c_str(),
                  static_cast<unsigned long long>(table.row_count),
                  table.columns.size(), table.columns.size(),
                  table.indexed_column + 1);
    }
    return 0;
  }

  if (options.sql.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!options.sql.empty()) options.sql += " ";
      options.sql += line;
    }
  }
  if (options.sql.empty()) {
    std::fprintf(stderr,
                 "usage: sdpopt_cli [--algorithm=dp|idp4|idp7|idp2|sdp|all] "
                 "[--schema=paper|small]\n"
                 "                  [--budget-mb=N] [--threads=N] "
                 "[--cache=on|off] [--repeat=K]\n"
                 "                  [--execute] [--list-tables] "
                 "\"SELECT ...\"\n");
    return 2;
  }

  const std::vector<sdp::AlgorithmSpec> algorithms =
      PickAlgorithms(options.algorithm);
  if (algorithms.empty()) {
    std::fprintf(stderr, "unknown algorithm '%s'\n",
                 options.algorithm.c_str());
    return 2;
  }

  const sdp::ParseResult parsed = sdp::ParseSelect(options.sql, catalog);
  if (const auto* error = std::get_if<sdp::ParseError>(&parsed)) {
    std::fprintf(stderr, "parse error at offset %d: %s\n", error->position,
                 error->message.c_str());
    return 1;
  }
  const sdp::ParsedQuery& bound = std::get<sdp::ParsedQuery>(parsed);
  const sdp::Query& query = bound.query;
  std::printf("%s\n", query.graph.ToString().c_str());
  if (options.dot) {
    std::printf("%s", sdp::JoinGraphToDot(query.graph, &catalog).c_str());
  }
  for (const sdp::FilterPredicate& f : query.filters) {
    std::printf("filter: R%d.c%d %s %lld\n", f.column.rel, f.column.col + 1,
                sdp::CompareOpName(f.op), static_cast<long long>(f.value));
  }

  const sdp::StatsCatalog stats = sdp::SynthesizeStats(catalog);
  sdp::CostModel cost(catalog, stats, query.graph, sdp::CostParams(),
                      query.filters);
  sdp::OptimizerOptions opt;
  opt.memory_budget_bytes =
      static_cast<size_t>(options.budget_mb * 1024 * 1024);

  // Prints one algorithm's outcome (and optionally executes the plan).
  const auto print_result = [&](const sdp::AlgorithmSpec& spec,
                                const sdp::OptimizeResult& result,
                                bool cache_hit) {
    std::printf("\n-- %s --\n", spec.name.c_str());
    if (!result.feasible) {
      std::printf("infeasible: memory budget exceeded after %llu plans\n",
                  static_cast<unsigned long long>(
                      result.counters.plans_costed));
      return;
    }
    std::printf("cost=%.1f  est_rows=%.0f  plans_costed=%llu  "
                "memory=%.2fMB  time=%.4fs%s\n",
                result.cost, result.rows,
                static_cast<unsigned long long>(result.counters.plans_costed),
                result.peak_memory_mb, result.elapsed_seconds,
                cache_hit ? "  (plan cache hit)" : "");
    std::printf("%s", result.plan->ToString().c_str());
    if (options.dot) {
      std::printf("%s", sdp::PlanToDot(*result.plan).c_str());
    }

    if (options.execute) {
      if (options.schema != "small") {
        std::printf("(--execute requires --schema=small)\n");
        return;
      }
      const sdp::Database db = sdp::Database::Generate(catalog, 1);
      sdp::Executor exec(db, query.graph, query.filters,
                         bound.select_columns);
      sdp::ResultSet rs = exec.Execute(result.plan);
      if (!bound.select_columns.empty()) {
        rs = sdp::Executor::Project(rs, bound.select_columns);
      }
      std::printf("executed: %lld rows\n",
                  static_cast<long long>(rs.num_rows()));
      if (!bound.select_columns.empty() && rs.num_rows() > 0) {
        for (const sdp::ColumnRef& c : rs.columns) {
          std::printf("%12s",
                      (bound.binding_names[c.rel] + "." +
                       catalog.table(query.graph.table_id(c.rel))
                           .columns[c.col]
                           .name)
                          .c_str());
        }
        std::printf("\n");
        const int64_t show = std::min<int64_t>(5, rs.num_rows());
        for (int64_t r = 0; r < show; ++r) {
          for (int64_t v : rs.rows[r]) std::printf("%12lld", (long long)v);
          std::printf("\n");
        }
        if (rs.num_rows() > show) std::printf("  ... and more\n");
      }
    }
  };

  if (options.threads > 0 || options.repeat > 1) {
    // Service mode: route every request through the concurrent optimizer
    // service and report its metrics.
    sdp::ServiceConfig sconfig;
    sconfig.num_threads = options.threads > 0 ? options.threads : 1;
    sconfig.cache_enabled = options.cache;
    sdp::OptimizerService service(catalog, stats, sconfig);
    for (const sdp::AlgorithmSpec& spec : algorithms) {
      std::vector<std::future<sdp::ServiceResult>> futures;
      futures.reserve(options.repeat);
      for (int k = 0; k < options.repeat; ++k) {
        sdp::ServiceRequest request;
        request.query = query;
        request.spec = spec;
        request.options = opt;
        futures.push_back(service.Submit(std::move(request)));
      }
      sdp::ServiceResult last;
      for (auto& f : futures) last = f.get();
      print_result(spec, last.result, last.cache_hit);
    }
    std::printf("\n-- service metrics (threads=%d cache=%s repeat=%d) --\n%s",
                sconfig.num_threads, options.cache ? "on" : "off",
                options.repeat, service.metrics().Dump().c_str());
    return 0;
  }

  for (const sdp::AlgorithmSpec& spec : algorithms) {
    print_result(spec, sdp::RunAlgorithm(spec, query, cost, opt),
                 /*cache_hit=*/false);
  }
  return 0;
}
