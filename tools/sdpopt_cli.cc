// sdpopt_cli -- command-line EXPLAIN driver for the library.
//
// Usage:
//   sdpopt_cli [options] "SELECT * FROM R1 a, R2 b WHERE a.c1 = b.c2"
//   echo "SELECT ..." | sdpopt_cli [options]
//   sdpopt_cli [options] --gen=star-chain:15
//
// Options:
//   --algorithm=dp|idp4|idp7|idp2|sdp|all   optimizer(s) to run (default: sdp)
//   --schema=paper|small               catalog to bind against
//                                      (paper: 25 relations R1..R25 with
//                                      columns c1..c24; small: the same
//                                      shape capped at 2000 rows/table)
//   --gen=TOPOLOGY:N[:SEED]            generate a query instead of parsing
//                                      SQL (star|chain|star-chain|cycle|
//                                      clique|snowflake, N relations)
//   --budget-mb=N                      optimizer memory budget (default: none)
//   --threads=N                        route through the OptimizerService
//                                      with an N-thread worker pool
//   --opt-threads=N                    enumeration workers *within* each
//                                      optimization; plans and counters are
//                                      bit-identical to serial at any N
//   --enumerator=dpsize|dpccp|goo      candidate-pair enumerator: dpsize
//                                      (size-driven pair scan), dpccp
//                                      (csg-cmp, valid pairs only), goo
//                                      (greedy operator ordering; no
//                                      optimality guarantee)
//
// Serving-mode resource governance (any of these makes the run *governed*:
// it executes under a ResourceBudget and the degradation ladder):
//   --deadline-ms=N                    wall-clock deadline per request
//   --mem-budget-mb=N                  memo/plan-pool byte budget enforced
//                                      at enumeration checkpoints
//   --max-rung=dp|idp|sdp|greedy       enable the DP->IDP->SDP->greedy
//                                      fallback ladder, escalating on
//                                      budget trips up to this rung
//   --fault-seed=N --fault-spec=SPEC   deterministic fault injection, e.g.
//                                      --fault-spec='cost.nan@3' (3rd hit)
//                                      or 'arena.alloc%0.01' (1% of hits);
//                                      sites: arena.alloc cost.nan
//                                      budget.clock-jump pool.stall
//                                      service.fill
//
// Exit codes map the typed optimization status: 0 OK, 1 I/O or infeasible,
// 2 usage, 3 DEADLINE_EXCEEDED, 4 MEMORY_EXCEEDED, 5 CANCELLED,
// 6 INTERNAL.  Degradation-ladder events show up in --trace-report /
// --trace-jsonl as "degrade" events.
//   --cache=on|off                     service plan cache (default: on)
//   --repeat=K                         submit the query K times per
//                                      algorithm (throughput / cache probe)
//   --execute                          materialize data (small schema only)
//                                      and run the chosen plan
//   --analyze                          EXPLAIN ANALYZE: execute (small
//                                      schema only) and print per-operator
//                                      actual rows, loops and Q-error
//   --dot                              emit GraphViz DOT for the join
//                                      graph and the chosen plan(s); with
//                                      tracing on, the graph is annotated
//                                      with hubs and edge selectivities
//   --trace-chrome=PATH                write a Chrome trace-event JSON file
//                                      (load in Perfetto / chrome://tracing)
//   --trace-jsonl=PATH                 write the structured event log, one
//                                      JSON object per line
//   --trace-report                     print the per-query optimizer report
//                                      (per-level effort, prunes, skylines)
//   --prometheus[=PATH]                dump service metrics in Prometheus
//                                      text format (stdout when no PATH);
//                                      implies service mode
//   --profile-hz=N                     sample this process at N Hz (SIGPROF)
//                                      with phase + allocation attribution;
//                                      a per-phase digest and the top hot
//                                      symbols print to stderr on exit.
//                                      Direct (non-service) runs re-run the
//                                      query until the profile holds ~300
//                                      samples, so one fast optimize still
//                                      yields a usable profile
//   --profile-out=PATH                 write the profile as folded stacks
//                                      (flamegraph.pl input) to PATH
//
// Live observability (see src/obs; all imply service mode):
//   --obs-port=N                       serve /metrics /statusz /tracez
//                                      /flightrecorderz on 127.0.0.1:N
//                                      (0 = pick an ephemeral port; the
//                                      bound port is printed)
//   --obs-dump-dir=PATH                write flight-recorder crash dumps
//                                      (flight-req<id>-<STATUS>.jsonl) into
//                                      PATH when a request fails, a breaker
//                                      opens, or a fault fires
//   --obs-linger-ms=N                  keep the process (and the obs
//                                      endpoints) alive N ms after the last
//                                      request finishes, for scraping
//   --slo-latency-ms=MS                optimize-latency SLO applied to
//                                      every rung (dp/idp/sdp/greedy);
//                                      burn state shows on /statusz,
//                                      /metrics and the final SLO report
//   --slo-quality=RATIO                plan-quality SLO: max acceptable
//                                      root-cardinality Q-error measured
//                                      by sampled EXPLAIN ANALYZE runs
//   --analyze-every=N                  quality-sample every Nth freshly
//                                      computed plan (default 1 when
//                                      --slo-quality is set)
//   --list-tables                      print the schema and exit
//
// --threads/--repeat run through the concurrent service and finish with a
// ServiceMetrics dump, so cache hit rates and optimize latency are
// observable straight from the command line.
#include <cstdio>
#include <algorithm>
#include <cstring>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include <chrono>
#include <filesystem>
#include <thread>

#include "catalog/catalog.h"
#include "common/budget.h"
#include "common/fault_injection.h"
#include "obs/introspection.h"
#include "obs/prof/prof.h"
#include "obs/prof/prof_export.h"
#include "obs/prof/profiler.h"
#include "core/sdp.h"
#include "cost/cost_model.h"
#include "optimizer/fallback.h"
#include "engine/executor.h"
#include "engine/table_data.h"
#include "harness/experiment.h"
#include "optimizer/dp.h"
#include "optimizer/idp.h"
#include "query/graphviz.h"
#include "service/optimizer_service.h"
#include "sql/parser.h"
#include "stats/column_stats.h"
#include "trace/trace_collector.h"
#include "trace/trace_export.h"
#include "workload/workload.h"

namespace {

struct Options {
  std::string algorithm = "sdp";
  std::string schema = "paper";
  std::string gen;  // "topology:N[:seed]", empty = parse SQL.
  double budget_mb = 0;
  double deadline_ms = 0;
  double mem_budget_mb = 0;
  std::string max_rung;  // Non-empty enables the degradation ladder.
  uint64_t fault_seed = 0;
  std::string fault_spec;
  int threads = 0;  // 0 = direct library calls (no service).
  int opt_threads = 1;  // Enumeration workers within one optimization.
  std::string enumerator = "dpsize";
  bool cache = true;
  int repeat = 1;
  bool execute = false;
  bool analyze = false;
  bool list_tables = false;
  bool dot = false;
  std::string trace_chrome;
  std::string trace_jsonl;
  bool trace_report = false;
  bool prometheus = false;
  std::string prometheus_path;  // Empty = stdout.
  int obs_port = -1;            // >= 0 starts the introspection server.
  std::string obs_dump_dir;     // Flight-recorder crash-dump directory.
  int obs_linger_ms = 0;        // Keep endpoints up after the last request.
  double slo_latency_ms = 0;    // > 0 arms the latency objectives.
  double slo_quality = 0;       // > 0 arms the plan-quality objective.
  int analyze_every = 0;        // Quality sampling period (0 = auto).
  int profile_hz = 0;           // > 0 samples the process at this rate.
  std::string profile_out;      // Folded-stack output path; empty = none.
  std::string sql;

  bool tracing() const {
    return !trace_chrome.empty() || !trace_jsonl.empty() || trace_report;
  }
  bool governed() const {
    return deadline_ms > 0 || mem_budget_mb > 0 || !max_rung.empty();
  }
  bool observed() const { return obs_port >= 0 || !obs_dump_dir.empty(); }
  bool slo_enabled() const { return slo_latency_ms > 0 || slo_quality > 0; }
};

bool ParseArgs(int argc, char** argv, Options* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--algorithm=", 0) == 0) {
      out->algorithm = arg.substr(12);
    } else if (arg.rfind("--schema=", 0) == 0) {
      out->schema = arg.substr(9);
    } else if (arg.rfind("--gen=", 0) == 0) {
      out->gen = arg.substr(6);
    } else if (arg.rfind("--budget-mb=", 0) == 0) {
      out->budget_mb = std::atof(arg.c_str() + 12);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      out->deadline_ms = std::atof(arg.c_str() + 14);
    } else if (arg.rfind("--mem-budget-mb=", 0) == 0) {
      out->mem_budget_mb = std::atof(arg.c_str() + 16);
    } else if (arg.rfind("--max-rung=", 0) == 0) {
      out->max_rung = arg.substr(11);
      sdp::FallbackRung rung;
      if (!sdp::ParseFallbackRung(out->max_rung, &rung)) {
        std::fprintf(stderr,
                     "--max-rung expects dp|idp|sdp|greedy|goo, got '%s'\n",
                     out->max_rung.c_str());
        return false;
      }
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      out->fault_seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 13));
    } else if (arg.rfind("--fault-spec=", 0) == 0) {
      out->fault_spec = arg.substr(13);
    } else if (arg.rfind("--threads=", 0) == 0) {
      out->threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--opt-threads=", 0) == 0) {
      out->opt_threads = std::atoi(arg.c_str() + 14);
      if (out->opt_threads < 1) {
        std::fprintf(stderr, "--opt-threads expects a positive count\n");
        return false;
      }
    } else if (arg.rfind("--enumerator=", 0) == 0) {
      out->enumerator = arg.substr(13);
      sdp::PlanEnumeratorKind kind;
      if (!sdp::ParseEnumeratorKind(out->enumerator, &kind)) {
        std::fprintf(stderr,
                     "--enumerator expects dpsize|dpccp|goo, got '%s'\n",
                     out->enumerator.c_str());
        return false;
      }
    } else if (arg.rfind("--cache=", 0) == 0) {
      const std::string v = arg.substr(8);
      if (v != "on" && v != "off") {
        std::fprintf(stderr, "--cache expects on|off, got '%s'\n", v.c_str());
        return false;
      }
      out->cache = v == "on";
    } else if (arg.rfind("--repeat=", 0) == 0) {
      out->repeat = std::atoi(arg.c_str() + 9);
      if (out->repeat < 1) out->repeat = 1;
    } else if (arg == "--execute") {
      out->execute = true;
    } else if (arg == "--analyze") {
      out->analyze = true;
    } else if (arg == "--dot") {
      out->dot = true;
    } else if (arg.rfind("--trace-chrome=", 0) == 0) {
      out->trace_chrome = arg.substr(15);
    } else if (arg.rfind("--trace-jsonl=", 0) == 0) {
      out->trace_jsonl = arg.substr(14);
    } else if (arg == "--trace-report") {
      out->trace_report = true;
    } else if (arg == "--prometheus") {
      out->prometheus = true;
    } else if (arg.rfind("--prometheus=", 0) == 0) {
      out->prometheus = true;
      out->prometheus_path = arg.substr(13);
    } else if (arg.rfind("--obs-port=", 0) == 0) {
      out->obs_port = std::atoi(arg.c_str() + 11);
      if (out->obs_port < 0 || out->obs_port > 65535) {
        std::fprintf(stderr, "--obs-port expects 0..65535\n");
        return false;
      }
    } else if (arg.rfind("--obs-dump-dir=", 0) == 0) {
      out->obs_dump_dir = arg.substr(15);
    } else if (arg.rfind("--obs-linger-ms=", 0) == 0) {
      out->obs_linger_ms = std::atoi(arg.c_str() + 16);
      if (out->obs_linger_ms < 0) out->obs_linger_ms = 0;
    } else if (arg.rfind("--slo-latency-ms=", 0) == 0) {
      out->slo_latency_ms = std::atof(arg.c_str() + 17);
      if (out->slo_latency_ms <= 0) {
        std::fprintf(stderr, "--slo-latency-ms expects a positive value\n");
        return false;
      }
    } else if (arg.rfind("--slo-quality=", 0) == 0) {
      out->slo_quality = std::atof(arg.c_str() + 14);
      if (out->slo_quality <= 0) {
        std::fprintf(stderr, "--slo-quality expects a positive ratio\n");
        return false;
      }
    } else if (arg.rfind("--analyze-every=", 0) == 0) {
      out->analyze_every = std::atoi(arg.c_str() + 16);
      if (out->analyze_every < 1) {
        std::fprintf(stderr, "--analyze-every expects a positive count\n");
        return false;
      }
    } else if (arg.rfind("--profile-hz=", 0) == 0) {
      out->profile_hz = std::atoi(arg.c_str() + 13);
      if (out->profile_hz < 1 || out->profile_hz > 10000) {
        std::fprintf(stderr, "--profile-hz expects 1..10000\n");
        return false;
      }
    } else if (arg.rfind("--profile-out=", 0) == 0) {
      out->profile_out = arg.substr(14);
    } else if (arg == "--list-tables") {
      out->list_tables = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    } else {
      if (!out->sql.empty()) out->sql += " ";
      out->sql += arg;
    }
  }
  return true;
}

std::vector<sdp::AlgorithmSpec> PickAlgorithms(const std::string& name) {
  using sdp::AlgorithmSpec;
  if (name == "dp") return {AlgorithmSpec::DP()};
  if (name == "idp4") return {AlgorithmSpec::IDP(4)};
  if (name == "idp7") return {AlgorithmSpec::IDP(7)};
  if (name == "idp2") return {AlgorithmSpec::IDP2(7)};
  if (name == "sdp") return {AlgorithmSpec::SDP()};
  if (name == "all") {
    return {AlgorithmSpec::DP(), AlgorithmSpec::IDP(7), AlgorithmSpec::IDP(4),
            AlgorithmSpec::SDP()};
  }
  return {};
}

// Parses "topology:N[:seed]" and generates the first instance of that
// workload.  Returns false (with a message) on a malformed spec.
bool GenerateQuery(const std::string& gen, const sdp::Catalog& catalog,
                   sdp::Query* out) {
  const size_t c1 = gen.find(':');
  if (c1 == std::string::npos) {
    std::fprintf(stderr, "--gen expects TOPOLOGY:N[:SEED], got '%s'\n",
                 gen.c_str());
    return false;
  }
  const std::string topo_name = gen.substr(0, c1);
  const size_t c2 = gen.find(':', c1 + 1);
  sdp::WorkloadSpec spec;
  spec.num_relations = std::atoi(gen.c_str() + c1 + 1);
  spec.num_instances = 1;
  if (c2 != std::string::npos) {
    spec.seed = static_cast<uint64_t>(std::atoll(gen.c_str() + c2 + 1));
  }
  if (topo_name == "star") {
    spec.topology = sdp::Topology::kStar;
  } else if (topo_name == "chain") {
    spec.topology = sdp::Topology::kChain;
  } else if (topo_name == "star-chain") {
    spec.topology = sdp::Topology::kStarChain;
  } else if (topo_name == "cycle") {
    spec.topology = sdp::Topology::kCycle;
  } else if (topo_name == "clique") {
    spec.topology = sdp::Topology::kClique;
  } else if (topo_name == "snowflake") {
    spec.topology = sdp::Topology::kSnowflake;
  } else {
    std::fprintf(stderr, "unknown topology '%s'\n", topo_name.c_str());
    return false;
  }
  if (spec.num_relations < 2 ||
      spec.num_relations > catalog.num_tables()) {
    std::fprintf(stderr, "--gen size must be in [2, %d]\n",
                 catalog.num_tables());
    return false;
  }
  std::vector<sdp::Query> queries = sdp::GenerateWorkload(catalog, spec);
  if (queries.empty()) {
    std::fprintf(stderr, "workload generation produced no instances\n");
    return false;
  }
  *out = std::move(queries.front());
  return true;
}

bool WriteFileOrComplain(const std::string& path,
                         const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

// Maps a typed optimization status to the documented process exit code.
int ExitCodeFor(sdp::OptStatusCode code) {
  switch (code) {
    case sdp::OptStatusCode::kOk:
      return 0;
    case sdp::OptStatusCode::kDeadlineExceeded:
      return 3;
    case sdp::OptStatusCode::kMemoryExceeded:
      return 4;
    case sdp::OptStatusCode::kCancelled:
      return 5;
    case sdp::OptStatusCode::kInternal:
      return 6;
  }
  return 6;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) return 2;

  if (!options.fault_spec.empty()) {
    std::string fault_error;
    if (!sdp::FaultInjector::Global().Configure(
            options.fault_seed, options.fault_spec, &fault_error)) {
      std::fprintf(stderr, "bad --fault-spec: %s\n", fault_error.c_str());
      return 2;
    }
  }

  sdp::SchemaConfig config;
  if (options.schema == "small") {
    config.max_rows = 2000;
    config.min_domain = 20;
    config.max_domain = 2000;
  } else if (options.schema != "paper") {
    std::fprintf(stderr, "unknown schema '%s'\n", options.schema.c_str());
    return 2;
  }
  // A --gen workload larger than the paper's 25-relation schema binds
  // against the extended schema (the one the maximum-scaleup experiment
  // uses), capped at the 64-relation RelSet ceiling.
  if (!options.gen.empty() && options.schema == "paper") {
    const size_t colon = options.gen.find(':');
    const int gen_n =
        colon == std::string::npos ? 0 : std::atoi(options.gen.c_str() +
                                                   colon + 1);
    if (gen_n > sdp::RelSet::kMaxRelations) {
      std::fprintf(stderr, "--gen size must be in [2, %d]\n",
                   sdp::RelSet::kMaxRelations);
      return 2;
    }
    if (gen_n > config.num_relations) config = sdp::ExtendedSchemaConfig(gen_n);
  }
  const sdp::Catalog catalog = sdp::MakeSyntheticCatalog(config);

  if (options.list_tables) {
    for (int t = 0; t < catalog.num_tables(); ++t) {
      const sdp::Table& table = catalog.table(t);
      std::printf("%-6s %9llu rows, %zu columns (c1..c%zu), index on c%d\n",
                  table.name.c_str(),
                  static_cast<unsigned long long>(table.row_count),
                  table.columns.size(), table.columns.size(),
                  table.indexed_column + 1);
    }
    return 0;
  }

  sdp::Query query;
  sdp::ParsedQuery bound;  // Only meaningful on the SQL path.
  if (!options.gen.empty()) {
    if (!GenerateQuery(options.gen, catalog, &query)) return 2;
  } else {
    if (options.sql.empty()) {
      std::string line;
      while (std::getline(std::cin, line)) {
        if (!options.sql.empty()) options.sql += " ";
        options.sql += line;
      }
    }
    if (options.sql.empty()) {
      std::fprintf(
          stderr,
          "usage: sdpopt_cli [--algorithm=dp|idp4|idp7|idp2|sdp|all] "
          "[--schema=paper|small]\n"
          "                  [--gen=TOPOLOGY:N[:SEED]] [--budget-mb=N] "
          "[--threads=N] [--opt-threads=N]\n"
          "                  [--enumerator=dpsize|dpccp|goo]\n"
          "                  [--deadline-ms=N] [--mem-budget-mb=N] "
          "[--max-rung=dp|idp|sdp|greedy]\n"
          "                  [--fault-seed=N] [--fault-spec=SPEC]\n"
          "                  [--cache=on|off] [--repeat=K] [--execute] "
          "[--analyze]\n"
          "                  [--dot] [--trace-chrome=PATH] "
          "[--trace-jsonl=PATH]\n"
          "                  [--trace-report] [--prometheus[=PATH]] "
          "[--list-tables]\n"
          "                  [--obs-port=N] [--obs-dump-dir=PATH] "
          "[--obs-linger-ms=N]\n"
          "                  [--profile-hz=N] [--profile-out=PATH]\n"
          "                  \"SELECT ...\"\n");
      return 2;
    }
    const sdp::ParseResult parsed = sdp::ParseSelect(options.sql, catalog);
    if (const auto* error = std::get_if<sdp::ParseError>(&parsed)) {
      std::fprintf(stderr, "parse error at offset %d: %s\n", error->position,
                   error->message.c_str());
      return 1;
    }
    bound = std::get<sdp::ParsedQuery>(parsed);
    query = bound.query;
  }

  const std::vector<sdp::AlgorithmSpec> algorithms =
      PickAlgorithms(options.algorithm);
  if (algorithms.empty()) {
    std::fprintf(stderr, "unknown algorithm '%s'\n",
                 options.algorithm.c_str());
    return 2;
  }

  std::printf("%s\n", query.graph.ToString().c_str());
  for (const sdp::FilterPredicate& f : query.filters) {
    std::printf("filter: R%d.c%d %s %lld\n", f.column.rel, f.column.col + 1,
                sdp::CompareOpName(f.op), static_cast<long long>(f.value));
  }

  const sdp::StatsCatalog stats = sdp::SynthesizeStats(catalog);
  sdp::CostModel cost(catalog, stats, query.graph, sdp::CostParams(),
                      query.filters);
  sdp::OptimizerOptions opt;
  opt.memory_budget_bytes =
      static_cast<size_t>(options.budget_mb * 1024 * 1024);
  opt.opt_threads = options.opt_threads;
  sdp::ParseEnumeratorKind(options.enumerator, &opt.enumerator);

  // One collector for the whole invocation: direct runs attach it per
  // request, service mode attaches it to the service (cache events plus
  // worker-side search traces).
  sdp::TraceCollector collector;
  const bool tracing = options.tracing();
  if (tracing) opt.tracer = &collector;

  if (options.dot) {
    // With tracing on, annotate the join graph with hubs and per-edge
    // selectivities pulled from the cost model (same data the run-begin
    // trace event carries).
    if (tracing) {
      sdp::JoinGraphAnnotations ann;
      for (int r = 0; r < query.graph.num_relations(); ++r) {
        if (query.graph.Degree(r) >= ann.hub_degree) {
          ann.hub_relations.push_back(r);
        }
      }
      for (size_t e = 0; e < query.graph.edges().size(); ++e) {
        ann.edge_selectivities.push_back(
            cost.EdgeSelectivity(static_cast<int>(e)));
      }
      std::printf("%s",
                  sdp::JoinGraphToDot(query.graph, &catalog, &ann).c_str());
    } else {
      std::printf("%s", sdp::JoinGraphToDot(query.graph, &catalog).c_str());
    }
  }

  const bool profiling = options.profile_hz > 0;
  if (profiling) {
    sdp::ProfSetAllocCountersEnabled(true);
    sdp::ProfAllocReset();
    std::string prof_error;
    if (!sdp::SamplingProfiler::Instance().Start(options.profile_hz,
                                                 &prof_error)) {
      std::fprintf(stderr, "cannot start profiler: %s\n", prof_error.c_str());
      return 2;
    }
  }
  // Stops the sampler and emits the requested artifacts: folded stacks to
  // --profile-out, the per-phase digest to stderr.  Shared by the service
  // and direct exits.
  const auto finish_profile = [&]() -> bool {
    if (!profiling) return true;
    sdp::SamplingProfiler& prof = sdp::SamplingProfiler::Instance();
    prof.Stop();
    const std::vector<sdp::SamplingProfiler::Sample> samples =
        prof.Snapshot();
    bool ok = true;
    if (!options.profile_out.empty()) {
      ok = WriteFileOrComplain(options.profile_out,
                               sdp::RenderFolded(samples));
    }
    std::fprintf(
        stderr, "%s",
        sdp::RenderProfileSummary(samples, sdp::ProfAllocSnapshot()).c_str());
    return ok;
  };

  // Worst typed status over every run, mapped to the exit code at the end.
  sdp::OptStatusCode worst_status = sdp::OptStatusCode::kOk;
  const auto note_status = [&](const sdp::OptStatus& status) {
    if (status.ok()) return;
    if (worst_status == sdp::OptStatusCode::kOk ||
        ExitCodeFor(status.code) > ExitCodeFor(worst_status)) {
      worst_status = status.code;
    }
  };

  // Prints one algorithm's outcome (and optionally executes the plan).
  const auto print_result = [&](const sdp::AlgorithmSpec& spec,
                                const sdp::OptimizeResult& result,
                                bool cache_hit) {
    std::printf("\n-- %s --\n", spec.name.c_str());
    if (!result.feasible) {
      if (!result.status.ok()) {
        std::printf("failed: %s (after %llu plans",
                    result.status.ToString().c_str(),
                    static_cast<unsigned long long>(
                        result.counters.plans_costed));
        if (result.retries > 0) {
          std::printf(", %d fallback rung(s) tried", result.retries + 1);
        }
        std::printf(")\n");
      } else {
        std::printf("infeasible: memory budget exceeded after %llu plans\n",
                    static_cast<unsigned long long>(
                        result.counters.plans_costed));
      }
      note_status(result.status);
      return;
    }
    std::string degrade_note;
    if (result.retries > 0) {
      degrade_note = "  (degraded to rung '" + result.rung + "' after " +
                     std::to_string(result.retries) + " attempt(s))";
    }
    std::printf("cost=%.1f  est_rows=%.0f  plans_costed=%llu  "
                "memory=%.2fMB  time=%.4fs%s%s\n",
                result.cost, result.rows,
                static_cast<unsigned long long>(result.counters.plans_costed),
                result.peak_memory_mb, result.elapsed_seconds,
                cache_hit ? "  (plan cache hit)" : "", degrade_note.c_str());
    std::printf("%s", result.plan->ToString().c_str());
    if (options.dot) {
      std::printf("%s", sdp::PlanToDot(*result.plan).c_str());
    }

    if (options.execute || options.analyze) {
      if (options.schema != "small") {
        std::printf("(--execute/--analyze require --schema=small)\n");
        return;
      }
      const sdp::Database db = sdp::Database::Generate(catalog, 1);
      sdp::Executor exec(db, query.graph, query.filters,
                         bound.select_columns);
      sdp::ResultSet rs;
      if (options.analyze) {
        sdp::AnalyzeResult analyzed = exec.ExecuteAnalyze(result.plan);
        std::printf("%s", sdp::AnalyzeReport(analyzed).c_str());
        rs = std::move(analyzed.result);
      } else {
        rs = exec.Execute(result.plan);
      }
      if (!bound.select_columns.empty()) {
        rs = sdp::Executor::Project(rs, bound.select_columns);
      }
      std::printf("executed: %lld rows\n",
                  static_cast<long long>(rs.num_rows()));
      if (!bound.select_columns.empty() && rs.num_rows() > 0) {
        for (const sdp::ColumnRef& c : rs.columns) {
          std::printf("%12s",
                      (bound.binding_names[c.rel] + "." +
                       catalog.table(query.graph.table_id(c.rel))
                           .columns[c.col]
                           .name)
                          .c_str());
        }
        std::printf("\n");
        const int64_t show = std::min<int64_t>(5, rs.num_rows());
        for (int64_t r = 0; r < show; ++r) {
          for (int64_t v : rs.rows[r]) std::printf("%12lld", (long long)v);
          std::printf("\n");
        }
        if (rs.num_rows() > show) std::printf("  ... and more\n");
      }
    }
  };

  // Writes/prints whatever trace outputs were requested.
  const auto flush_traces = [&]() -> bool {
    bool ok = true;
    if (!options.trace_chrome.empty()) {
      ok &= WriteFileOrComplain(options.trace_chrome,
                                sdp::ExportChromeTrace(collector));
    }
    if (!options.trace_jsonl.empty()) {
      ok &= WriteFileOrComplain(options.trace_jsonl,
                                sdp::ExportJsonl(collector));
    }
    if (options.trace_report) {
      std::printf("\n%s", sdp::ExportReport(collector).c_str());
    }
    return ok;
  };

  // Shared governance settings (see the Options doc block above).
  sdp::ResourceBudget::Limits budget_limits;
  budget_limits.deadline_seconds = options.deadline_ms / 1000.0;
  budget_limits.memory_budget_bytes =
      static_cast<size_t>(options.mem_budget_mb * 1024 * 1024);
  sdp::FallbackRung max_rung = sdp::FallbackRung::kGreedy;
  const bool ladder_enabled = !options.max_rung.empty();
  if (ladder_enabled) sdp::ParseFallbackRung(options.max_rung, &max_rung);

  if (options.threads > 0 || options.repeat > 1 || options.prometheus ||
      options.observed() || options.slo_enabled()) {
    // Service mode: route every request through the concurrent optimizer
    // service and report its metrics.
    sdp::ServiceConfig sconfig;
    sconfig.num_threads = options.threads > 0 ? options.threads : 1;
    sconfig.cache_enabled = options.cache;
    sconfig.max_opt_threads = options.opt_threads;
    if (options.slo_latency_ms > 0) {
      for (double& rung_ms : sconfig.slo.latency_ms) {
        rung_ms = options.slo_latency_ms;
      }
    }
    sconfig.slo.quality_ratio = options.slo_quality;
    sconfig.analyze_sample_every =
        options.analyze_every > 0
            ? options.analyze_every
            : (options.slo_quality > 0 ? 1 : 0);
    if (!options.obs_dump_dir.empty()) {
      // Dump writes are silent no-ops when the directory is missing; create
      // it up front so --obs-dump-dir works against a fresh path.
      std::error_code ec;
      std::filesystem::create_directories(options.obs_dump_dir, ec);
      if (ec) {
        std::fprintf(stderr, "cannot create --obs-dump-dir %s: %s\n",
                     options.obs_dump_dir.c_str(), ec.message().c_str());
        return 1;
      }
    }
    sconfig.flight_dump_dir = options.obs_dump_dir;
    if (tracing) sconfig.tracer = &collector;
    sdp::OptimizerService service(catalog, stats, sconfig);
    sdp::IntrospectionServer obs_server(&service);
    if (options.obs_port >= 0) {
      std::string obs_error;
      if (!obs_server.Start(static_cast<uint16_t>(options.obs_port),
                            &obs_error)) {
        std::fprintf(stderr, "cannot start obs server: %s\n",
                     obs_error.c_str());
        return 1;
      }
      std::printf("obs: serving http://127.0.0.1:%d/{metrics,statusz,tracez,"
                  "flightrecorderz}\n", obs_server.port());
      std::fflush(stdout);
    }
    for (const sdp::AlgorithmSpec& spec : algorithms) {
      std::vector<std::future<sdp::ServiceResult>> futures;
      futures.reserve(options.repeat);
      for (int k = 0; k < options.repeat; ++k) {
        sdp::ServiceRequest request;
        request.query = query;
        request.spec = spec;
        request.options = opt;
        if (options.governed()) {
          request.budget = budget_limits;
          request.fallback_enabled = ladder_enabled;
          request.max_rung = max_rung;
        }
        futures.push_back(service.Submit(std::move(request)));
      }
      sdp::ServiceResult last;
      for (auto& f : futures) last = f.get();
      if (last.rejected) {
        std::printf("\n-- %s --\nrejected: %s (retry after %d ms)\n",
                    spec.name.c_str(), last.error.c_str(),
                    last.retry_after_ms);
        note_status(last.result.status);
      } else {
        print_result(spec, last.result, last.cache_hit);
      }
    }
    std::printf("\n-- service metrics (threads=%d cache=%s repeat=%d) --\n%s",
                sconfig.num_threads, options.cache ? "on" : "off",
                options.repeat, service.metrics().Dump().c_str());
    if (service.slo() != nullptr) {
      const double slo_now =
          std::chrono::duration<double>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count();
      std::printf("\n-- slo --\n%s",
                  service.slo()->StatuszSection(slo_now).c_str());
    }
    if (options.prometheus) {
      const std::string prom = service.metrics().PrometheusText();
      if (options.prometheus_path.empty()) {
        std::printf("\n%s", prom.c_str());
      } else if (!WriteFileOrComplain(options.prometheus_path, prom)) {
        return 1;
      }
    }
    if (!flush_traces()) return 1;
    if (!finish_profile()) return 1;
    if (options.obs_linger_ms > 0 && options.obs_port >= 0) {
      // Keep the endpoints (and the service behind them) up for scrapers.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.obs_linger_ms));
    }
    obs_server.Stop();
    return ExitCodeFor(worst_status);
  }

  for (const sdp::AlgorithmSpec& spec : algorithms) {
    if (options.governed()) {
      // Direct governed run: same budget + ladder the service uses, minus
      // the queueing and cache layers.
      sdp::ResourceBudget budget(budget_limits);
      sdp::OptimizerOptions governed_opt = opt;
      governed_opt.budget = &budget;
      sdp::FallbackConfig ladder;
      switch (spec.kind) {
        case sdp::AlgorithmSpec::Kind::kDP:
          ladder.start_rung = sdp::FallbackRung::kDP;
          break;
        case sdp::AlgorithmSpec::Kind::kIDP:
        case sdp::AlgorithmSpec::Kind::kIDP2:
          ladder.start_rung = sdp::FallbackRung::kIDP;
          break;
        case sdp::AlgorithmSpec::Kind::kSDP:
          ladder.start_rung = sdp::FallbackRung::kSDP;
          break;
      }
      ladder.max_rung = ladder_enabled ? max_rung : ladder.start_rung;
      ladder.idp = spec.idp;
      ladder.sdp = spec.sdp;
      ladder.use_idp2 = spec.kind == sdp::AlgorithmSpec::Kind::kIDP2;
      sdp::FallbackReport report;
      const sdp::OptimizeResult result = sdp::OptimizeWithFallback(
          query, cost, ladder, governed_opt, nullptr, &report);
      if (tracing) {
        int ordinal = 0;
        for (const sdp::FallbackAttempt& a : report.attempts) {
          sdp::TraceDegradeEvent e;
          e.kind = a.skipped_by_breaker ? "skip" : "attempt";
          e.rung = sdp::FallbackRungName(a.rung);
          e.algorithm = a.algorithm;
          e.status = a.status.ToString();
          e.attempt = ordinal++;
          e.elapsed_seconds = a.elapsed_seconds;
          e.plans_costed = a.plans_costed;
          e.peak_memory_mb = a.peak_memory_mb;
          collector.OnDegrade(e);
        }
      }
      print_result(spec, result, /*cache_hit=*/false);
    } else {
      print_result(spec, sdp::RunAlgorithm(spec, query, cost, opt),
                   /*cache_hit=*/false);
      // One fast optimize can finish between timer ticks; keep re-running
      // the same query until the sampler holds a usable profile, so a
      // one-shot invocation still produces meaningful output.
      if (profiling) {
        sdp::SamplingProfiler& prof = sdp::SamplingProfiler::Instance();
        for (int extra = 0;
             extra < 200 && prof.samples_recorded() < 300; ++extra) {
          (void)sdp::RunAlgorithm(spec, query, cost, opt);
        }
      }
    }
  }
  if (!flush_traces()) return 1;
  if (!finish_profile()) return 1;
  return ExitCodeFor(worst_status);
}
