#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and flag latency regressions.

Usage:
    bench_diff.py BASELINE.json CANDIDATE.json [options]

Benchmarks are matched by name.  For each pair the relative change in the
chosen time metric is printed; any benchmark whose latency regressed by more
than --threshold (default 10%) fails the run with exit code 1.  Benchmarks
present on only one side are reported but never fail the diff (bench suites
grow; that is not a regression).

Designed for the BENCH_*.json files produced by the bench binaries'
`--json PATH` flag (google-benchmark --benchmark_out format, stamped with
git_sha/git_dirty in the context block).  Exit codes: 0 ok, 1 regression
over threshold, 2 usage/parse error.
"""

import argparse
import json
import sys


def load_benchmarks(path, metric):
    """Returns ({name: time}, context) for one benchmark JSON file.

    When a benchmark has aggregate rows (repetitions > 1), the median
    aggregate is preferred over raw iteration rows; otherwise the mean of
    all iteration rows for that name is used.
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        raise SystemExit(f"bench_diff: cannot read {path}: {e}")
    raw = {}
    medians = {}
    for row in doc.get("benchmarks", []):
        name = row.get("run_name", row.get("name"))
        if name is None or metric not in row:
            continue
        if row.get("run_type") == "aggregate":
            if row.get("aggregate_name") == "median":
                medians[name] = float(row[metric])
            continue
        raw.setdefault(name, []).append(float(row[metric]))
    times = {name: sum(v) / len(v) for name, v in raw.items()}
    times.update(medians)
    return times, doc.get("context", {})


def describe(context):
    sha = context.get("git_sha", "?")
    dirty = context.get("git_dirty")
    if dirty in (True, "1", 1):
        sha += "-dirty"
    return sha


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="max tolerated latency increase in percent "
                             "(default: 10)")
    parser.add_argument("--metric", choices=["cpu_time", "real_time"],
                        default="cpu_time",
                        help="which time series to compare (default: "
                             "cpu_time; real_time is noisy on shared CI)")
    parser.add_argument("--out", metavar="PATH",
                        help="also write the diff table to PATH (artifact)")
    args = parser.parse_args()

    base, base_ctx = load_benchmarks(args.baseline, args.metric)
    cand, cand_ctx = load_benchmarks(args.candidate, args.metric)
    if not base:
        raise SystemExit(f"bench_diff: no benchmarks in {args.baseline}")
    if not cand:
        raise SystemExit(f"bench_diff: no benchmarks in {args.candidate}")

    lines = [
        f"bench_diff: {args.metric}, threshold +{args.threshold:.1f}%",
        f"  baseline : {args.baseline} (git {describe(base_ctx)})",
        f"  candidate: {args.candidate} (git {describe(cand_ctx)})",
        "",
        f"{'benchmark':48s} {'base':>12s} {'cand':>12s} {'delta':>8s}",
    ]
    regressions = []
    for name in sorted(set(base) | set(cand)):
        if name not in base:
            lines.append(f"{name:48s} {'-':>12s} {cand[name]:12.3f}   (new)")
            continue
        if name not in cand:
            lines.append(f"{name:48s} {base[name]:12.3f} {'-':>12s}   (gone)")
            continue
        b, c = base[name], cand[name]
        delta = (c - b) / b * 100.0 if b > 0 else 0.0
        flag = ""
        if delta > args.threshold:
            flag = "  REGRESSED"
            regressions.append((name, delta))
        lines.append(f"{name:48s} {b:12.3f} {c:12.3f} {delta:+7.1f}%{flag}")

    lines.append("")
    if regressions:
        lines.append(f"FAIL: {len(regressions)} benchmark(s) regressed more "
                     f"than {args.threshold:.1f}%:")
        for name, delta in regressions:
            lines.append(f"  {name}: {delta:+.1f}%")
    else:
        lines.append("OK: no benchmark regressed past the threshold")

    report = "\n".join(lines) + "\n"
    sys.stdout.write(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(report)
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
