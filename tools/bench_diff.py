#!/usr/bin/env python3
"""Compare google-benchmark JSON files and flag regressions.

Usage:
    bench_diff.py BASELINE.json CANDIDATE.json [MORE_BASE.json MORE_CAND.json ...] [options]

Positional arguments are baseline/candidate *pairs*: one invocation can
diff the whole baseline set (micro benches, fleet soak, ...) so CI needs a
single verdict instead of one job step per file.

Benchmarks are matched by name within each pair.  For each match the
relative change in the chosen time metric is printed; any benchmark whose
latency regressed by more than --threshold (default 10%) fails the run
with exit code 1.  Benchmarks present on only one side are reported but
never fail the diff (bench suites grow; that is not a regression).

Soak contract fields: benchmark rows may carry non-timing contract values
(the fleet soak's failed_after_retry and warm_hit_rate).  These are
diffed alongside latency with field-appropriate semantics:

    failed_after_retry   any nonzero candidate value fails (requests were
                         lost after router retries -- never acceptable)
    warm_hit_rate        a relative drop of more than --threshold percent
                         against the baseline fails (the warm-restart
                         cache advantage eroded)

Counter fields: benchmark rows also carry effort counters
(pairs_examined, plans_costed, relset_intern_hits).  These are exact,
deterministic measures of optimizer work -- noise-free, unlike wall
time -- so they get their own (tight) --counter-threshold (default 0.5%):
a counter growing past it fails the run even when latency stays inside
--threshold, catching "same speed today, more work queued for tomorrow"
regressions.

Machine-context advisory: when the baseline and candidate were recorded
on machines with different core counts, every timing delta in the pair is
suspect (parallel benches scale with cores).  The diff prints a WARNING
line for the pair but never fails on it -- timing thresholds still apply,
so read flagged rows with the warning in mind.

Designed for the BENCH_*.json files produced by the bench binaries'
`--json PATH` flag and sdpopt_fleet --soak (google-benchmark
--benchmark_out format, stamped with git_sha / machine-context in the
context block).  Exit codes: 0 ok, 1 regression over threshold or
contract violation, 2 usage/parse error.
"""

import argparse
import json
import sys

# Contract fields and their comparison semantics (see module docstring).
CONTRACT_FIELDS = {
    "failed_after_retry": "zero",
    "warm_hit_rate": "no_drop",
}

# Deterministic effort counters, diffed under --counter-threshold: growth
# past it is a regression in optimizer work even if wall time held still.
COUNTER_FIELDS = ("pairs_examined", "plans_costed", "relset_intern_hits")


def load_benchmarks(path, metric):
    """Returns ({name: time}, {name: {field: value}}, {name: {counter:
    value}}, context).

    When a benchmark has aggregate rows (repetitions > 1), the median
    aggregate is preferred over raw iteration rows; otherwise the mean of
    all iteration rows for that name is used.  Contract and counter
    fields are taken from iteration rows (last occurrence wins).
    """
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        raise SystemExit(f"bench_diff: cannot read {path}: {e}")
    raw = {}
    medians = {}
    contracts = {}
    counters = {}
    for row in doc.get("benchmarks", []):
        name = row.get("run_name", row.get("name"))
        if name is None:
            continue
        for field in CONTRACT_FIELDS:
            if field in row:
                contracts.setdefault(name, {})[field] = float(row[field])
        if row.get("run_type") != "aggregate":
            for field in COUNTER_FIELDS:
                if field in row:
                    counters.setdefault(name, {})[field] = float(row[field])
        if metric not in row:
            continue
        if row.get("run_type") == "aggregate":
            if row.get("aggregate_name") == "median":
                medians[name] = float(row[metric])
            continue
        raw.setdefault(name, []).append(float(row[metric]))
    times = {name: sum(v) / len(v) for name, v in raw.items()}
    times.update(medians)
    return times, contracts, counters, doc.get("context", {})


def describe(context):
    sha = context.get("git_sha", "?")
    dirty = context.get("git_dirty")
    if dirty in (True, "1", 1):
        sha += "-dirty"
    machine = context.get("machine_cores")
    if machine is not None:
        governor = context.get("machine_governor", "?")
        sha += f", {machine} core(s), governor {governor}"
    return sha


def diff_contracts(name, base_fields, cand_fields, threshold, lines):
    """Appends contract-field rows for one benchmark; returns violations."""
    violations = []
    for field, semantics in CONTRACT_FIELDS.items():
        if field not in cand_fields:
            continue
        c = cand_fields[field]
        b = base_fields.get(field)
        label = f"{name}:{field}"
        if semantics == "zero":
            flag = ""
            if c > 0:
                flag = "  VIOLATED"
                violations.append((label, c))
            base_text = "-" if b is None else f"{b:12.3f}"
            lines.append(f"{label:48s} {base_text:>12s} {c:12.3f}{flag}")
        elif semantics == "no_drop":
            if b is None or b <= 0:
                lines.append(f"{label:48s} {'-':>12s} {c:12.3f}   (new)")
                continue
            delta = (c - b) / b * 100.0
            flag = ""
            if delta < -threshold:
                flag = "  VIOLATED"
                violations.append((label, delta))
            lines.append(
                f"{label:48s} {b:12.3f} {c:12.3f} {delta:+7.1f}%{flag}")
    return violations


def diff_counters(name, base_fields, cand_fields, threshold, lines):
    """Appends effort-counter rows for one benchmark; returns failures."""
    failures = []
    for field in COUNTER_FIELDS:
        if field not in cand_fields:
            continue
        c = cand_fields[field]
        b = base_fields.get(field)
        label = f"{name}:{field}"
        if b is None:
            lines.append(f"{label:48s} {'-':>12s} {c:12.0f}   (new)")
            continue
        delta = (c - b) / b * 100.0 if b > 0 else (100.0 if c > 0 else 0.0)
        flag = ""
        if delta > threshold:
            flag = "  REGRESSED"
            failures.append((label, delta))
        lines.append(f"{label:48s} {b:12.0f} {c:12.0f} {delta:+7.2f}%{flag}")
    return failures


def diff_pair(baseline_path, candidate_path, args):
    """Diffs one baseline/candidate pair; returns (lines, failures)."""
    base, base_ct, base_cnt, base_ctx = load_benchmarks(baseline_path,
                                                        args.metric)
    cand, cand_ct, cand_cnt, cand_ctx = load_benchmarks(candidate_path,
                                                        args.metric)
    if not base and not base_ct:
        raise SystemExit(f"bench_diff: no benchmarks in {baseline_path}")
    if not cand and not cand_ct:
        raise SystemExit(f"bench_diff: no benchmarks in {candidate_path}")

    lines = [
        f"  baseline : {baseline_path} (git {describe(base_ctx)})",
        f"  candidate: {candidate_path} (git {describe(cand_ctx)})",
    ]
    base_cores = base_ctx.get("machine_cores")
    cand_cores = cand_ctx.get("machine_cores")
    if (base_cores is not None and cand_cores is not None
            and base_cores != cand_cores):
        lines.append(
            f"  WARNING: core counts differ (baseline {base_cores}, "
            f"candidate {cand_cores}); timing deltas in this pair are "
            f"suspect (advisory only)")
    lines += [
        "",
        f"{'benchmark':48s} {'base':>12s} {'cand':>12s} {'delta':>8s}",
    ]
    failures = []
    for name in sorted(set(base) | set(cand)):
        if name not in base:
            lines.append(f"{name:48s} {'-':>12s} {cand[name]:12.3f}   (new)")
            continue
        if name not in cand:
            lines.append(f"{name:48s} {base[name]:12.3f} {'-':>12s}   (gone)")
            continue
        b, c = base[name], cand[name]
        delta = (c - b) / b * 100.0 if b > 0 else 0.0
        flag = ""
        if delta > args.threshold:
            flag = "  REGRESSED"
            failures.append((name, delta))
        lines.append(f"{name:48s} {b:12.3f} {c:12.3f} {delta:+7.1f}%{flag}")
    for name in sorted(cand_ct):
        failures.extend(
            diff_contracts(name, base_ct.get(name, {}), cand_ct[name],
                           args.threshold, lines))
    for name in sorted(cand_cnt):
        failures.extend(
            diff_counters(name, base_cnt.get(name, {}), cand_cnt[name],
                          args.counter_threshold, lines))
    lines.append("")
    return lines, failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", metavar="BASELINE CANDIDATE",
                        help="one or more baseline/candidate JSON pairs")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="max tolerated latency increase (and "
                             "warm_hit_rate drop) in percent (default: 10)")
    parser.add_argument("--counter-threshold", type=float, default=0.5,
                        help="max tolerated growth of deterministic effort "
                             "counters (pairs_examined, plans_costed, "
                             "relset_intern_hits) in percent (default: 0.5; "
                             "counters are noise-free, so the bar is tight)")
    parser.add_argument("--metric", choices=["cpu_time", "real_time"],
                        default="cpu_time",
                        help="which time series to compare (default: "
                             "cpu_time; real_time is noisy on shared CI)")
    parser.add_argument("--out", metavar="PATH",
                        help="also write the diff table to PATH (artifact)")
    args = parser.parse_args()
    if len(args.files) % 2 != 0:
        raise SystemExit("bench_diff: arguments must be baseline/candidate "
                         f"pairs, got {len(args.files)} file(s)")

    lines = [f"bench_diff: {args.metric}, threshold +{args.threshold:.1f}%"]
    failures = []
    for i in range(0, len(args.files), 2):
        pair_lines, pair_failures = diff_pair(args.files[i],
                                              args.files[i + 1], args)
        lines.extend(pair_lines)
        failures.extend(pair_failures)

    if failures:
        lines.append(f"FAIL: {len(failures)} regression(s)/contract "
                     f"violation(s):")
        for name, value in failures:
            lines.append(f"  {name}: {value:+.1f}")
    else:
        lines.append("OK: no benchmark regressed past the threshold and all "
                     "contract fields held")

    report = "\n".join(lines) + "\n"
    sys.stdout.write(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(report)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
