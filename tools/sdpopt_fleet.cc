// sdpopt_fleet -- multi-process optimizer fleet: N forked replica
// processes, a consistent-hash router, and a persistent plan-cache tier.
//
// Serve mode (default):
//   sdpopt_fleet --replicas=3 --router-port=7450 --router-obs-port=7460
//       --replica-obs-base-port=7470 --snapshot-dir=/var/tmp/sdpopt
//
//   Forks the replicas, starts the router, prints every port, and runs
//   until SIGTERM/SIGINT.  Shutdown drains gracefully: replicas finish
//   in-flight requests, persist their plan caches, and flush flight
//   recorder dumps.  Clients speak the framed binary protocol
//   (src/fleet/wire.h) on the router port; humans scrape
//   http://127.0.0.1:<router-obs-port>/fleetz and /metrics.
//
// Soak mode:
//   sdpopt_fleet --soak --replicas=3 --json=BENCH_fleet.json
//
//   Runs the kill/restart soak scenario and writes a google-benchmark-
//   compatible JSON report (diffable with tools/bench_diff.py):
//     phase 1  cold fleet, two passes over the workload (cold -> warm);
//              the busiest replica becomes the victim
//     phase 2  same traffic, victim SIGTERMed mid-phase; the router
//              fails its key range over with bounded retries -- the
//              report's failed_after_retry must be 0
//     phase 3  victim restarted from its drain-time snapshot; its
//              fresh-process hit rate (warm_hit_rate) must beat its
//              phase-1 cold rate (cold_hit_rate)
//     phase 4  self-healing chaos: a FRESH fleet (forked after the fault
//              injector is armed, so replicas inherit the seeded config)
//              runs under --fault-spec network faults, periodic SIGKILLs
//              and a poison query, with auto-respawn on.  Contract: zero
//              client-visible failures after bounded retries, >= 1
//              auto-respawn, the poison key quarantined and answered
//              degraded.  Report: --chaos-json (BENCH_fleet_chaos.json).
//
// Chaos quickstart:
//   sdpopt_fleet --soak --fault-spec=net.frame.corrupt%0.01
//
// Drive mode:
//   sdpopt_fleet --drive=2 --router-port=7450 --queries=2
//
//   Client-only: connects to an already-running fleet's router and sends
//   the standard soak workload N times (the CI dtrace-smoke job uses this
//   to put traffic through a served fleet, then scrapes /dtracez).  Exits
//   nonzero if any request is lost or answers not-ok.
//
// Options:
//   --replicas=N              fleet size (default 3)
//   --router-port=N           client port (default 0 = kernel-assigned)
//   --router-obs-port=N       /fleetz + merged /metrics (0 = off)
//   --replica-obs-base-port=N replica i serves obs on base+i (0 = off)
//   --snapshot-dir=PATH       plan-cache snapshots (serve: off when
//                             empty; soak: a temp dir when empty)
//   --threads=N               worker threads per replica (default 2)
//   --soak                    run the soak scenario instead of serving
//   --drive=N                 send the workload N times to a running
//                             router (client mode; needs --router-port)
//   --queries=N               distinct queries per topology (default 6)
//   --clients=K               concurrent client connections (default 4)
//   --enumerator=NAME         plan enumerator for the workload's requests
//                             (dpsize|dpccp|goo, default dpsize); part of
//                             the routing key, so fleets keep plans from
//                             different enumerators apart
//   --json=PATH               soak report path (default BENCH_fleet.json)
//   --fault-spec=SPEC         phase-4 fault rules (common/fault_injection.h
//                             grammar; default exercises every net.* site)
//   --fault-seed=N            chaos seed: same seed, same fault schedule
//                             (default 1234)
//   --chaos-json=PATH         phase-4 report (default BENCH_fleet_chaos.json)
//   --profile-hz=N            serve mode: sample the supervisor/router
//                             process at N Hz; folded stacks written to
//                             --profile-out at shutdown, per-phase digest
//                             to stderr.  Replica CPU profiles are pulled
//                             live from the router's /profilez (merged
//                             across the fleet by phase+symbol)
//   --profile-out=PATH        folded-stack path (default
//                             fleet_router_profile.folded)
//
// Exit codes: 0 ok, 1 runtime failure, 2 usage, 3 soak contract violated
// (lost requests or warm <= cold).

#include <signal.h>
#include <stdio.h>
#include <stdlib.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/subprocess.h"
#include "fleet/fleet_client.h"
#include "fleet/routing_key.h"
#include "fleet/supervisor.h"
#include "obs/dtrace.h"
#include "obs/introspection.h"
#include "obs/prof/prof.h"
#include "obs/prof/prof_export.h"
#include "obs/prof/profiler.h"
#include "obs/recorder_export.h"
#include "query/topology.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

namespace sdp {
namespace {

struct Flags {
  int replicas = 3;
  int router_port = 0;
  int router_obs_port = 0;
  int replica_obs_base_port = 0;
  std::string snapshot_dir;
  int threads = 2;
  bool soak = false;
  int drive = 0;  // > 0 = client mode: passes over the workload.
  int queries = 6;
  int clients = 4;
  std::string json_path = "BENCH_fleet.json";
  std::string fault_spec;  // Empty = the default all-sites chaos spec.
  uint64_t fault_seed = 1234;
  std::string chaos_json_path = "BENCH_fleet_chaos.json";
  PlanEnumeratorKind enumerator = PlanEnumeratorKind::kDPsize;
  // > 0 samples the supervisor/router process at this rate (SIGPROF); the
  // folded stacks land in profile_out on shutdown.  Replica profiles come
  // from the router's /profilez, which merges their /profilez outputs.
  int profile_hz = 0;
  std::string profile_out = "fleet_router_profile.folded";
};

// Default phase-4 spec: every net.* fault site at soak-survivable rates.
constexpr char kDefaultChaosSpec[] =
    "net.frame.corrupt%0.01,net.frame.truncate%0.005,net.conn.reset%0.002,"
    "net.short-write%0.05,net.delay-ms%0.01=2";

bool ParseInt(const std::string& s, int* out) {
  char* end = nullptr;
  const long v = strtol(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || s.empty()) return false;
  *out = v;
  return true;
}

int Usage() {
  std::fprintf(stderr, "see the header comment in tools/sdpopt_fleet.cc\n");
  return 2;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One phase's client-visible outcome.
struct PhaseResult {
  std::vector<FleetResponse> responses;
  uint64_t transport_failures = 0;
  uint64_t not_ok = 0;  // Responses with ok=false (after router retries).
  double elapsed_seconds = 0;
};

// Drives `requests` through `num_clients` connections (striped), one
// in-flight request per connection.  `on_complete` (when non-null) is
// bumped per finished request so the caller can trigger mid-phase
// events.
PhaseResult RunPhase(int router_port, const std::vector<FleetRequest>& requests,
                     int num_clients, std::atomic<uint64_t>* on_complete) {
  PhaseResult result;
  result.responses.assign(requests.size(), FleetResponse{});
  std::vector<uint8_t> got(requests.size(), 0);
  std::atomic<uint64_t> transport_failures{0};
  const double start = NowSeconds();
  std::vector<std::thread> threads;
  threads.reserve(num_clients);
  for (int c = 0; c < num_clients; ++c) {
    threads.emplace_back([&, c] {
      FleetClient client;
      std::string error;
      if (!client.Connect(router_port, 5000, &error)) {
        for (size_t i = c; i < requests.size();
             i += static_cast<size_t>(num_clients)) {
          transport_failures.fetch_add(1);
          if (on_complete != nullptr) on_complete->fetch_add(1);
        }
        return;
      }
      for (size_t i = c; i < requests.size();
           i += static_cast<size_t>(num_clients)) {
        FleetResponse resp;
        bool delivered = client.Optimize(requests[i], &resp, &error);
        if (!delivered) {
          // The router itself never dies in the soak; one reconnect
          // covers a torn connection.
          delivered = client.Connect(router_port, 5000, &error) &&
                      client.Optimize(requests[i], &resp, &error);
        }
        if (delivered) {
          result.responses[i] = resp;
          got[i] = 1;
        } else {
          transport_failures.fetch_add(1);
        }
        if (on_complete != nullptr) on_complete->fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.elapsed_seconds = NowSeconds() - start;
  result.transport_failures = transport_failures.load();
  for (size_t i = 0; i < requests.size(); ++i) {
    if (got[i] != 0 && !result.responses[i].ok) ++result.not_ok;
  }
  return result;
}

std::vector<FleetRequest> MakeWorkload(const Catalog& catalog,
                                       int per_topology,
                                       PlanEnumeratorKind enumerator) {
  struct Shape {
    Topology topology;
    int n;
    uint64_t seed;
  };
  const Shape shapes[] = {{Topology::kStar, 8, 101},
                          {Topology::kChain, 10, 202},
                          {Topology::kStarChain, 9, 303}};
  std::vector<FleetRequest> requests;
  uint64_t id = 1;
  for (const Shape& shape : shapes) {
    WorkloadSpec spec;
    spec.topology = shape.topology;
    spec.num_relations = shape.n;
    spec.num_instances = per_topology;
    spec.seed = shape.seed;
    for (Query& q : GenerateWorkload(catalog, spec)) {
      FleetRequest req;
      req.request_id = id++;
      req.query = std::move(q);
      req.algo = AlgorithmSpec::Kind::kSDP;
      req.enumerator = enumerator;
      requests.push_back(std::move(req));
    }
  }
  return requests;
}

// Hit statistics of the responses a given replica served.
struct ReplicaSlice {
  uint64_t requests = 0;
  uint64_t hits = 0;
  double HitRate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(hits) / requests;
  }
};

ReplicaSlice SliceFor(const PhaseResult& phase, int replica) {
  ReplicaSlice s;
  for (const FleetResponse& r : phase.responses) {
    if (r.replica_id != replica) continue;
    ++s.requests;
    s.hits += r.cache_hit ? 1 : 0;
  }
  return s;
}

std::string JsonRow(const std::string& name, uint64_t iterations,
                    double per_request_ms, const std::string& extra) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\n"
                "      \"name\": \"%s\",\n"
                "      \"run_name\": \"%s\",\n"
                "      \"run_type\": \"iteration\",\n"
                "      \"repetitions\": 1,\n"
                "      \"repetition_index\": 0,\n"
                "      \"threads\": 1,\n"
                "      \"iterations\": %llu,\n"
                "      \"real_time\": %.6f,\n"
                "      \"cpu_time\": %.6f,\n"
                "      \"time_unit\": \"ms\"%s%s\n"
                "    }",
                name.c_str(), name.c_str(),
                static_cast<unsigned long long>(iterations), per_request_ms,
                per_request_ms, extra.empty() ? "" : ",\n", extra.c_str());
  return buf;
}

bool WriteSoakJson(const std::string& path, const Flags& flags,
                   const std::vector<std::string>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  char date[64];
  time_t now = time(nullptr);
  struct tm tm_utc;
  gmtime_r(&now, &tm_utc);
  strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S+00:00", &tm_utc);
  std::fprintf(f,
               "{\n  \"context\": {\n"
               "    \"date\": \"%s\",\n"
               "    \"executable\": \"sdpopt_fleet\",\n"
               "    \"num_replicas\": %d,\n"
               "    \"clients\": %d,\n"
               "    \"machine_cores\": %d,\n"
               "    \"machine_governor\": \"%s\",\n"
               "    \"git_sha\": \"%s\",\n"
               "    \"git_dirty\": \"%s\"\n"
               "  },\n  \"benchmarks\": [\n",
               date, flags.replicas, flags.clients, MachineCores(),
               MachineGovernor().c_str(), BuildGitSha().c_str(),
               BuildGitDirty() ? "1" : "0");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "%s%s\n", rows[i].c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  return std::fclose(f) == 0;
}

int RunChaos(const Flags& flags);  // Phase 4; defined below.

int RunSoak(const Flags& flags) {
  Flags f = flags;
  std::string tmp_template;
  if (f.snapshot_dir.empty()) {
    tmp_template = "/tmp/sdpopt_fleet.XXXXXX";
    if (::mkdtemp(tmp_template.data()) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      return 1;
    }
    f.snapshot_dir = tmp_template;
  }

  FleetConfig config;
  config.num_replicas = f.replicas;
  config.router_port = f.router_port;
  config.router_obs_port = f.router_obs_port;
  config.replica_obs_base_port = f.replica_obs_base_port;
  config.snapshot_dir = f.snapshot_dir;
  config.service.num_threads = f.threads;
  FleetSupervisor fleet(config);
  std::string error;
  if (!fleet.Start(&error)) {
    std::fprintf(stderr, "fleet start failed: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "soak: %d replicas, router on 127.0.0.1:%d\n",
               fleet.num_replicas(), fleet.router_port());

  const Catalog catalog = MakeSyntheticCatalog(config.schema);
  const std::vector<FleetRequest> workload =
      MakeWorkload(catalog, f.queries, f.enumerator);

  // --- Phase 1: cold fleet, two passes (cold -> warm). ---
  const PhaseResult cold_pass =
      RunPhase(fleet.router_port(), workload, f.clients, nullptr);
  const PhaseResult warm_pass =
      RunPhase(fleet.router_port(), workload, f.clients, nullptr);
  if (cold_pass.transport_failures + warm_pass.transport_failures > 0 ||
      cold_pass.not_ok + warm_pass.not_ok > 0) {
    std::fprintf(stderr, "soak: phase 1 lost requests\n");
    fleet.Stop();
    return 3;
  }
  // The victim is the replica that served the most cold-pass requests:
  // the one whose key range the failover and warm-restart phases stress
  // hardest.
  int victim = 0;
  {
    std::vector<uint64_t> counts(static_cast<size_t>(f.replicas), 0);
    for (const FleetResponse& r : cold_pass.responses) {
      if (r.replica_id >= 0 && r.replica_id < f.replicas) {
        ++counts[r.replica_id];
      }
    }
    for (int i = 1; i < f.replicas; ++i) {
      if (counts[i] > counts[victim]) victim = i;
    }
  }
  const ReplicaSlice cold_slice = SliceFor(cold_pass, victim);
  std::fprintf(stderr,
               "soak: phase 1 done, victim replica %d (%llu requests, "
               "cold hit rate %.3f)\n",
               victim,
               static_cast<unsigned long long>(cold_slice.requests),
               cold_slice.HitRate());

  // --- Phase 2: kill the victim mid-traffic. ---
  std::vector<FleetRequest> storm = workload;
  storm.insert(storm.end(), workload.begin(), workload.end());
  std::atomic<uint64_t> completed{0};
  const uint64_t kill_at = storm.size() / 4;
  std::thread killer([&] {
    while (completed.load() < kill_at) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::fprintf(stderr, "soak: SIGTERM replica %d mid-traffic\n", victim);
    fleet.KillReplica(victim, SIGTERM);
  });
  const PhaseResult failover =
      RunPhase(fleet.router_port(), storm, f.clients, &completed);
  killer.join();
  const uint64_t lost =
      failover.transport_failures + failover.not_ok;
  std::fprintf(stderr,
               "soak: phase 2 done, %llu/%zu requests, lost=%llu, "
               "router failovers=%llu\n",
               static_cast<unsigned long long>(storm.size() - lost),
               storm.size(), static_cast<unsigned long long>(lost),
               static_cast<unsigned long long>(fleet.router()
                                                   ->stats()
                                                   .failovers));

  // --- Phase 3: warm restart from the drain-time snapshot. ---
  if (!fleet.RestartReplica(victim)) {
    std::fprintf(stderr, "soak: restart failed\n");
    fleet.Stop();
    return 1;
  }
  const double deadline = NowSeconds() + 15.0;
  while (!fleet.router()->ReplicaLive(victim) && NowSeconds() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (!fleet.router()->ReplicaLive(victim)) {
    std::fprintf(stderr, "soak: replica %d never rejoined\n", victim);
    fleet.Stop();
    return 1;
  }
  const PhaseResult warm_restart =
      RunPhase(fleet.router_port(), workload, f.clients, nullptr);
  const ReplicaSlice warm_slice = SliceFor(warm_restart, victim);
  std::fprintf(stderr,
               "soak: phase 3 done, victim served %llu requests, warm hit "
               "rate %.3f (cold was %.3f)\n",
               static_cast<unsigned long long>(warm_slice.requests),
               warm_slice.HitRate(), cold_slice.HitRate());

  const RouterStats rs = fleet.router()->stats();
  fleet.Stop();
  if (!tmp_template.empty()) {
    // Best-effort cleanup of the scratch snapshot dir.
    for (int i = 0; i < f.replicas; ++i) {
      ::unlink((f.snapshot_dir + "/replica" + std::to_string(i) + ".snap")
                   .c_str());
    }
    ::rmdir(f.snapshot_dir.c_str());
  }

  // --- Report. ---
  char extra[256];
  std::vector<std::string> rows;
  std::snprintf(extra, sizeof(extra),
                "      \"requests\": %zu,\n"
                "      \"hit_rate\": %.6f,\n"
                "      \"victim_replica\": %d",
                workload.size() * 2, cold_slice.HitRate(), victim);
  const double p1_ms = (cold_pass.elapsed_seconds +
                        warm_pass.elapsed_seconds) *
                       1000.0 / (workload.size() * 2);
  rows.push_back(
      JsonRow("BM_FleetSoak/phase1_cold", workload.size() * 2, p1_ms, extra));
  std::snprintf(extra, sizeof(extra),
                "      \"requests\": %zu,\n"
                "      \"failed_after_retry\": %llu,\n"
                "      \"router_failovers\": %llu,\n"
                "      \"broadcasts_sent\": %llu",
                storm.size(), static_cast<unsigned long long>(lost),
                static_cast<unsigned long long>(rs.failovers),
                static_cast<unsigned long long>(rs.broadcasts_sent));
  const double p2_ms = failover.elapsed_seconds * 1000.0 / storm.size();
  rows.push_back(
      JsonRow("BM_FleetSoak/phase2_failover", storm.size(), p2_ms, extra));
  std::snprintf(extra, sizeof(extra),
                "      \"requests\": %zu,\n"
                "      \"victim_requests\": %llu,\n"
                "      \"warm_hit_rate\": %.6f,\n"
                "      \"cold_hit_rate\": %.6f",
                workload.size(),
                static_cast<unsigned long long>(warm_slice.requests),
                warm_slice.HitRate(), cold_slice.HitRate());
  const double p3_ms =
      warm_restart.elapsed_seconds * 1000.0 / workload.size();
  rows.push_back(
      JsonRow("BM_FleetSoak/phase3_warm", workload.size(), p3_ms, extra));
  if (!WriteSoakJson(f.json_path, f, rows)) {
    std::fprintf(stderr, "soak: cannot write %s\n", f.json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "soak: report written to %s\n", f.json_path.c_str());

  // Contract: zero lost requests, warm restart beats cold start.
  if (lost > 0) {
    std::fprintf(stderr, "soak: FAIL -- %llu lost request(s)\n",
                 static_cast<unsigned long long>(lost));
    return 3;
  }
  if (warm_slice.requests == 0 ||
      warm_slice.HitRate() <= cold_slice.HitRate()) {
    std::fprintf(stderr, "soak: FAIL -- warm hit rate %.3f <= cold %.3f\n",
                 warm_slice.HitRate(), cold_slice.HitRate());
    return 3;
  }
  std::fprintf(stderr, "soak: phases 1-3 PASS\n");
  // Phase 4 stands up its own fresh fleet: the fault injector must be
  // armed before the forks so the replicas inherit the chaos config.
  return RunChaos(flags);
}

// --- Phase 4: self-healing chaos on a fresh fleet. ---
//
// The fleet is forked AFTER the fault injector is armed so every replica
// inherits the seeded config; the parent's router and clients run under
// the same faults, so both directions of every hop see chaos.
int RunChaos(const Flags& flags) {
  Flags f = flags;
  std::string cookie_template = "/tmp/sdpopt_chaos.XXXXXX";
  if (::mkdtemp(cookie_template.data()) == nullptr) {
    std::fprintf(stderr, "chaos: mkdtemp failed\n");
    return 1;
  }

  const Catalog catalog = MakeSyntheticCatalog(FleetConfig().schema);
  const StatsCatalog stats = SynthesizeStats(catalog);
  const std::vector<FleetRequest> workload = MakeWorkload(catalog, f.queries, f.enumerator);

  // The first workload request doubles as the poison query: its selector
  // arms "replica.poison" for exactly that routing key, so whichever
  // replica optimizes it crashes (90% of the time) until quarantined.
  const FleetRequest& poison = workload.front();
  const uint64_t selector =
      DtraceHash(FleetRoutingKey(poison, catalog, stats)) % 100000;
  std::string spec = f.fault_spec.empty() ? kDefaultChaosSpec : f.fault_spec;
  {
    char rule[64];
    std::snprintf(rule, sizeof(rule), ",replica.poison%%0.9=%llu",
                  static_cast<unsigned long long>(selector));
    spec += rule;
  }
  std::string error;
  if (!FaultInjector::Global().Configure(f.fault_seed, spec, &error)) {
    std::fprintf(stderr, "chaos: bad fault spec: %s\n", error.c_str());
    return 2;
  }

  FleetConfig config;
  config.num_replicas = f.replicas;
  config.service.num_threads = f.threads;
  config.health_interval_ms = 50;
  config.auto_respawn = true;
  config.cookie_dir = cookie_template;
  config.respawn_backoff_ms = 50;
  config.respawn_backoff_max_ms = 400;
  // A soak kill right after a respawn must read as bad luck, not a crash
  // loop: nothing in this phase should condemn.
  config.crash_loop_window_ms = 1;
  config.respawn_jitter_seed = f.fault_seed;
  FleetSupervisor fleet(config);
  if (!fleet.Start(&error)) {
    FaultInjector::Global().Disable();
    std::fprintf(stderr, "chaos: fleet start failed: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "chaos: %d replicas under spec \"%s\" seed %llu, poison "
               "selector %llu\n",
               fleet.num_replicas(), spec.c_str(),
               static_cast<unsigned long long>(f.fault_seed),
               static_cast<unsigned long long>(selector));

  // Periodic SIGKILLs, round-robin, while traffic flows.
  std::atomic<bool> stop_killer{false};
  std::atomic<uint64_t> kills{0};
  std::thread killer([&] {
    int next = 0;
    while (!stop_killer.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      if (stop_killer.load()) break;
      const int victim = next++ % f.replicas;
      if (fleet.CrashReplica(victim, SIGKILL)) {
        kills.fetch_add(1);
        std::fprintf(stderr, "chaos: SIGKILL replica %d\n", victim);
      }
    }
  });

  // Continuous traffic with bounded client retries.  A request only
  // counts as failed once its retries are exhausted -- the soak contract
  // is "zero failed after retry", not "zero faults observed".
  const int kPasses = 3;
  const int kMaxTries = 25;
  uint64_t attempted = 0;
  uint64_t failed_after_retry = 0;
  uint64_t degraded_served = 0;
  uint64_t fingerprint_hash = 1469598103934665603ull;  // FNV-1a offset.
  const double traffic_start = NowSeconds();
  {
    FleetClient client;
    bool connected = client.Connect(fleet.router_port(), 5000, &error);
    for (int pass = 0; pass < kPasses; ++pass) {
      for (const FleetRequest& request : workload) {
        ++attempted;
        bool served = false;
        FleetResponse resp;
        for (int attempt = 0; attempt < kMaxTries && !served; ++attempt) {
          if (!connected) {
            connected = client.Connect(fleet.router_port(), 5000, &error);
            if (!connected) {
              std::this_thread::sleep_for(std::chrono::milliseconds(100));
              continue;
            }
          }
          if (!client.Optimize(request, &resp, &error)) {
            // Transport fault (possibly injected on the client hop):
            // reconnect and retry.
            client.Close();
            connected = false;
            continue;
          }
          if (resp.ok) {
            served = true;
            break;
          }
          // Typed shed or failover exhaustion: honor the router's
          // retry-after hint before trying again.
          const int backoff =
              resp.retry_after_ms > 0 ? resp.retry_after_ms : 100;
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        }
        if (!served) {
          ++failed_after_retry;
          continue;
        }
        if (resp.degraded) ++degraded_served;
        if (pass == kPasses - 1) {
          // Fold the final pass's plan fingerprints (fixed request
          // order) into one hash: same seed, same fleet => same value.
          for (const char c : resp.fingerprint) {
            fingerprint_hash ^= static_cast<unsigned char>(c);
            fingerprint_hash *= 1099511628211ull;
          }
        }
      }
    }
  }
  const double traffic_seconds = NowSeconds() - traffic_start;
  stop_killer.store(true);
  killer.join();

  // Every kill must have healed: wait for the reaper to finish respawns.
  uint64_t restarts = 0;
  const double heal_deadline = NowSeconds() + 15.0;
  while (NowSeconds() < heal_deadline) {
    restarts = 0;
    for (int i = 0; i < f.replicas; ++i) restarts += fleet.ReplicaRestarts(i);
    if (restarts >= kills.load()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  FaultInjector::Global().Disable();

  const RouterStats rs = fleet.router()->stats();
  uint64_t condemned = 0;
  for (int i = 0; i < f.replicas; ++i) {
    condemned += fleet.ReplicaCondemned(i) ? 1 : 0;
  }
  fleet.Stop();
  for (int i = 0; i < f.replicas; ++i) {
    ::unlink((cookie_template + "/replica" + std::to_string(i) + ".cookie")
                 .c_str());
  }
  ::unlink((cookie_template + "/quarantine.qrt").c_str());
  ::rmdir(cookie_template.c_str());

  std::fprintf(stderr,
               "chaos: %llu requests, failed_after_retry=%llu, kills=%llu, "
               "restarts=%llu, condemned=%llu, quarantined_keys=%llu, "
               "degraded_served=%llu, retry_budget_exhausted=%llu\n",
               static_cast<unsigned long long>(attempted),
               static_cast<unsigned long long>(failed_after_retry),
               static_cast<unsigned long long>(kills.load()),
               static_cast<unsigned long long>(restarts),
               static_cast<unsigned long long>(condemned),
               static_cast<unsigned long long>(rs.quarantined_keys),
               static_cast<unsigned long long>(degraded_served),
               static_cast<unsigned long long>(rs.retry_budget_exhausted));

  char extra[512];
  std::vector<std::string> rows;
  std::snprintf(extra, sizeof(extra),
                "      \"requests\": %llu,\n"
                "      \"failed_after_retry\": %llu,\n"
                "      \"degraded_served\": %llu,\n"
                "      \"fault_seed\": %llu,\n"
                "      \"fingerprint_hash\": %llu",
                static_cast<unsigned long long>(attempted),
                static_cast<unsigned long long>(failed_after_retry),
                static_cast<unsigned long long>(degraded_served),
                static_cast<unsigned long long>(f.fault_seed),
                static_cast<unsigned long long>(fingerprint_hash));
  const double per_request_ms =
      attempted == 0 ? 0 : traffic_seconds * 1000.0 / attempted;
  rows.push_back(
      JsonRow("BM_FleetChaos/traffic", attempted, per_request_ms, extra));
  std::snprintf(extra, sizeof(extra),
                "      \"kills\": %llu,\n"
                "      \"restarts\": %llu,\n"
                "      \"condemned\": %llu,\n"
                "      \"quarantined_keys\": %llu,\n"
                "      \"quarantine_served\": %llu,\n"
                "      \"retry_budget_exhausted\": %llu,\n"
                "      \"router_failovers\": %llu",
                static_cast<unsigned long long>(kills.load()),
                static_cast<unsigned long long>(restarts),
                static_cast<unsigned long long>(condemned),
                static_cast<unsigned long long>(rs.quarantined_keys),
                static_cast<unsigned long long>(rs.quarantine_served),
                static_cast<unsigned long long>(rs.retry_budget_exhausted),
                static_cast<unsigned long long>(rs.failovers));
  rows.push_back(JsonRow("BM_FleetChaos/healing",
                         kills.load() > 0 ? kills.load() : 1, per_request_ms,
                         extra));
  if (!WriteSoakJson(f.chaos_json_path, f, rows)) {
    std::fprintf(stderr, "chaos: cannot write %s\n",
                 f.chaos_json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "chaos: report written to %s\n",
               f.chaos_json_path.c_str());

  // On a contract violation, dump the router-side flight recorder next to
  // the report: CI uploads it so a failed soak ships its own evidence.
  auto fail_chaos = [] {
    std::string err;
    if (DumpFlightRecorderToFile("chaos-flight.jsonl", &err)) {
      std::fprintf(stderr, "chaos: flight recorder dumped to "
                           "chaos-flight.jsonl\n");
    } else {
      std::fprintf(stderr, "chaos: flight dump failed: %s\n", err.c_str());
    }
    return 3;
  };
  if (failed_after_retry > 0) {
    std::fprintf(stderr, "chaos: FAIL -- %llu request(s) lost\n",
                 static_cast<unsigned long long>(failed_after_retry));
    return fail_chaos();
  }
  if (kills.load() > 0 && restarts == 0) {
    std::fprintf(stderr, "chaos: FAIL -- no auto-respawn after kills\n");
    return fail_chaos();
  }
  if (rs.quarantined_keys == 0 || degraded_served == 0) {
    std::fprintf(stderr,
                 "chaos: FAIL -- poison key never quarantined/served "
                 "degraded\n");
    return fail_chaos();
  }
  std::fprintf(stderr, "chaos: PASS\n");
  return 0;
}

int RunDrive(const Flags& flags) {
  if (flags.router_port <= 0) {
    std::fprintf(stderr, "--drive needs --router-port of a running fleet\n");
    return 2;
  }
  const Catalog catalog = MakeSyntheticCatalog(FleetConfig().schema);
  const std::vector<FleetRequest> workload =
      MakeWorkload(catalog, flags.queries, flags.enumerator);
  FleetClient client;
  std::string error;
  if (!client.Connect(flags.router_port, 5000, &error)) {
    std::fprintf(stderr, "drive: connect failed: %s\n", error.c_str());
    return 1;
  }
  uint64_t sent = 0;
  uint64_t failed = 0;
  for (int pass = 0; pass < flags.drive; ++pass) {
    // Request ids repeat across passes on purpose: the router mints trace
    // ids from (request id, routing key), so replays share timelines.
    for (const FleetRequest& request : workload) {
      FleetResponse resp;
      if (!client.Optimize(request, &resp, &error) || !resp.ok) ++failed;
      ++sent;
    }
  }
  std::fprintf(stderr, "drive: %llu request(s), %llu failed\n",
               static_cast<unsigned long long>(sent),
               static_cast<unsigned long long>(failed));
  return failed == 0 ? 0 : 1;
}

int RunServe(const Flags& flags) {
  FleetConfig config;
  config.num_replicas = flags.replicas;
  config.router_port = flags.router_port;
  config.router_obs_port = flags.router_obs_port;
  config.replica_obs_base_port = flags.replica_obs_base_port;
  config.snapshot_dir = flags.snapshot_dir;
  config.service.num_threads = flags.threads;
  FleetSupervisor fleet(config);
  std::string error;
  if (!fleet.Start(&error)) {
    std::fprintf(stderr, "fleet start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("fleet: %d replicas, router on 127.0.0.1:%d\n",
              fleet.num_replicas(), fleet.router_port());
  for (int i = 0; i < fleet.num_replicas(); ++i) {
    std::printf("  replica %d: port %d, pid %d%s\n", i,
                fleet.replica_port(i),
                static_cast<int>(fleet.replica_pid(i)),
                flags.replica_obs_base_port > 0
                    ? (", obs :" +
                       std::to_string(flags.replica_obs_base_port + i))
                          .c_str()
                    : "");
  }
  if (flags.router_obs_port > 0) {
    std::printf("  fleet obs: http://127.0.0.1:%d/fleetz\n",
                flags.router_obs_port);
    std::printf("  timelines: http://127.0.0.1:%d/dtracez"
                " (?trace=HEX&format=json|chrome)\n",
                flags.router_obs_port);
  }
  if (flags.profile_hz > 0) {
    // Profiles this (supervisor + router) process; replica CPU is sampled
    // in-process by each replica and merged via the router's /profilez.
    ProfSetAllocCountersEnabled(true);
    ProfAllocReset();
    std::string prof_error;
    if (!SamplingProfiler::Instance().Start(flags.profile_hz, &prof_error)) {
      std::fprintf(stderr, "cannot start profiler: %s\n", prof_error.c_str());
      fleet.Stop();
      return 1;
    }
    std::printf("  profiler: %d Hz, folded stacks -> %s on shutdown\n",
                flags.profile_hz, flags.profile_out.c_str());
  }
  std::fflush(stdout);
  InstallShutdownHandlers();
  while (!ShutdownRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("fleet: draining\n");
  if (flags.profile_hz > 0) {
    SamplingProfiler& prof = SamplingProfiler::Instance();
    prof.Stop();
    const std::vector<SamplingProfiler::Sample> samples = prof.Snapshot();
    if (!flags.profile_out.empty()) {
      FILE* f = fopen(flags.profile_out.c_str(), "w");
      if (f != nullptr) {
        const std::string folded = RenderFolded(samples);
        fwrite(folded.data(), 1, folded.size(), f);
        fclose(f);
      } else {
        std::fprintf(stderr, "cannot write %s\n", flags.profile_out.c_str());
      }
    }
    std::fprintf(stderr, "%s",
                 RenderProfileSummary(samples, ProfAllocSnapshot()).c_str());
  }
  fleet.Stop();
  return 0;
}

int Main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    const std::string name = eq == std::string::npos ? arg : arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    bool ok = true;
    if (name == "--replicas") {
      ok = ParseInt(value, &flags.replicas) && flags.replicas >= 1;
    } else if (name == "--router-port") {
      ok = ParseInt(value, &flags.router_port);
    } else if (name == "--router-obs-port") {
      ok = ParseInt(value, &flags.router_obs_port);
    } else if (name == "--replica-obs-base-port") {
      ok = ParseInt(value, &flags.replica_obs_base_port);
    } else if (name == "--snapshot-dir") {
      flags.snapshot_dir = value;
    } else if (name == "--threads") {
      ok = ParseInt(value, &flags.threads) && flags.threads >= 1;
    } else if (name == "--soak") {
      flags.soak = true;
    } else if (name == "--drive") {
      ok = ParseInt(value, &flags.drive) && flags.drive >= 1;
    } else if (name == "--queries") {
      ok = ParseInt(value, &flags.queries) && flags.queries >= 1;
    } else if (name == "--clients") {
      ok = ParseInt(value, &flags.clients) && flags.clients >= 1;
    } else if (name == "--json") {
      flags.json_path = value;
    } else if (name == "--fault-spec") {
      flags.fault_spec = value;
    } else if (name == "--fault-seed") {
      ok = ParseU64(value, &flags.fault_seed);
    } else if (name == "--chaos-json") {
      flags.chaos_json_path = value;
    } else if (name == "--enumerator") {
      ok = ParseEnumeratorKind(value, &flags.enumerator);
    } else if (name == "--profile-hz") {
      ok = ParseInt(value, &flags.profile_hz) && flags.profile_hz >= 1 &&
           flags.profile_hz <= 10000;
    } else if (name == "--profile-out") {
      flags.profile_out = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", name.c_str());
      return Usage();
    }
    if (!ok) {
      std::fprintf(stderr, "bad value for %s\n", name.c_str());
      return Usage();
    }
  }
  if (flags.drive > 0) return RunDrive(flags);
  return flags.soak ? RunSoak(flags) : RunServe(flags);
}

}  // namespace
}  // namespace sdp

int main(int argc, char** argv) { return sdp::Main(argc, argv); }
