// Supplementary ablation: SDP's interesting-order rescue partitions
// (Section 2.1.4) on ordered workloads -- what happens to plan quality if
// JCRs that avoid the order-carrying relation get no second chance.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/sdp.h"
#include "optimizer/dp.h"

int main(int argc, char** argv) {
  using namespace sdp;
  bench::BenchJson json(argc, argv, "ablation_order_rescue");
  bench::PrintHeader("Ablation",
                     "Interesting-order rescue partitions (on vs off)");
  bench::PaperContext ctx = bench::MakePaperContext();

  SdpConfig no_rescue;
  no_rescue.order_partitions = false;

  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 13;
  spec.num_instances = bench::ScaledInstances(20);
  spec.ordered = true;
  const std::vector<Query> queries = GenerateWorkload(ctx.catalog, spec);

  QualityDistribution with_q, without_q;
  double with_jcrs = 0, without_jcrs = 0;
  int counted = 0;
  for (const Query& q : queries) {
    CostModel cost(ctx.catalog, ctx.stats, q.graph);
    const OptimizeResult dp = OptimizeDP(q, cost);
    const OptimizeResult with_r = OptimizeSDP(q, cost);
    const OptimizeResult without_r = OptimizeSDP(q, cost, no_rescue, {});
    if (!dp.feasible || !with_r.feasible || !without_r.feasible) continue;
    ++counted;
    with_q.Add(with_r.cost / dp.cost);
    without_q.Add(without_r.cost / dp.cost);
    with_jcrs += static_cast<double>(with_r.counters.jcrs_created);
    without_jcrs += static_cast<double>(without_r.counters.jcrs_created);
  }
  std::printf("%s (%d instances)\n", spec.Name().c_str(), counted);
  std::printf("  %-16s %8s %8s %8s %10s\n", "rescue", "rho", "W", "I%",
              "JCRs");
  std::printf("  %-16s %8.4f %8.2f %8.1f %10.0f\n", "on (paper)",
              with_q.Rho(), with_q.worst,
              with_q.Percent(QualityClass::kIdeal), with_jcrs / counted);
  std::printf("  %-16s %8.4f %8.2f %8.1f %10.0f\n", "off", without_q.Rho(),
              without_q.worst, without_q.Percent(QualityClass::kIdeal),
              without_jcrs / counted);
  char row[128];
  std::snprintf(row, sizeof(row),
                "{\"rescue\":\"on\",\"rho\":%.6g,\"avg_jcrs\":%.6g}",
                with_q.Rho(), with_jcrs / counted);
  json.AddRaw(row);
  std::snprintf(row, sizeof(row),
                "{\"rescue\":\"off\",\"rho\":%.6g,\"avg_jcrs\":%.6g}",
                without_q.Rho(), without_jcrs / counted);
  json.AddRaw(row);
  std::printf("\nExpected: rescue partitions cost a few extra JCRs and can "
              "only improve\nordered-plan quality.\n");
  return 0;
}
