// Reproduces Table 2.3: skyline Option 1 (single full-vector skyline)
// versus Option 2 (union of pairwise RC/CS/RS skylines): JCRs processed and
// plan quality.  Option 2 should match Option 1's quality while processing
// perceptibly fewer JCRs.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/sdp.h"
#include "optimizer/dp.h"

int main(int argc, char** argv) {
  using namespace sdp;
  bench::BenchJson json(argc, argv, "table_2_3");
  bench::PrintHeader("Table 2.3", "Skyline Option 1 vs Option 2");
  bench::PaperContext ctx = bench::MakePaperContext();

  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 15;
  spec.num_instances = bench::ScaledInstances(20);
  const std::vector<Query> queries = GenerateWorkload(ctx.catalog, spec);

  SdpConfig opt1;
  opt1.skyline = SkylineVariant::kFullVector;
  SdpConfig opt2;  // Default = pairwise union.

  double jcrs1 = 0, jcrs2 = 0;
  QualityDistribution q1, q2;
  for (const Query& q : queries) {
    CostModel cost(ctx.catalog, ctx.stats, q.graph);
    const OptimizeResult dp = OptimizeDP(q, cost);
    const OptimizeResult r1 = OptimizeSDP(q, cost, opt1);
    const OptimizeResult r2 = OptimizeSDP(q, cost, opt2);
    if (!dp.feasible || !r1.feasible || !r2.feasible) continue;
    jcrs1 += static_cast<double>(r1.counters.jcrs_created);
    jcrs2 += static_cast<double>(r2.counters.jcrs_created);
    q1.Add(r1.cost / dp.cost);
    q2.Add(r2.cost / dp.cost);
  }
  const double n = static_cast<double>(q1.total);
  std::printf("  %-22s %16s %16s\n", "Prune variant", "JCRs processed",
              "plan quality rho");
  std::printf("  %-22s %16.0f %16.4f\n", "Option 1 (full RCS)", jcrs1 / n,
              q1.Rho());
  std::printf("  %-22s %16.0f %16.4f\n", "Option 2 (pairwise)", jcrs2 / n,
              q2.Rho());
  char row[128];
  std::snprintf(row, sizeof(row),
                "{\"variant\":\"full\",\"avg_jcrs\":%.6g,\"rho\":%.6g}",
                jcrs1 / n, q1.Rho());
  json.AddRaw(row);
  std::snprintf(row, sizeof(row),
                "{\"variant\":\"pairwise\",\"avg_jcrs\":%.6g,\"rho\":%.6g}",
                jcrs2 / n, q2.Rho());
  json.AddRaw(row);
  std::printf("\nExpected shape: nearly identical rho; Option 2 processes "
              "fewer JCRs.\n");
  return 0;
}
