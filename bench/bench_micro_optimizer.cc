// Micro-benchmarks of whole-query optimization across algorithms and
// topologies: the per-query latency/effort figures behind the paper-table
// harnesses.
#include <benchmark/benchmark.h>

#include "bench/bench_micro_common.h"

#include "bench/bench_common.h"
#include "core/sdp.h"
#include "optimizer/dp.h"
#include "optimizer/idp.h"

namespace {

struct Fixture {
  Fixture() : ctx(sdp::bench::MakePaperContext()) {}
  sdp::Query MakeQuery(sdp::Topology t, int n) {
    sdp::WorkloadSpec spec;
    spec.topology = t;
    spec.num_relations = n;
    spec.num_instances = 1;
    spec.seed = 77;
    return sdp::GenerateWorkload(ctx.catalog, spec).front();
  }
  sdp::bench::PaperContext ctx;
};

Fixture& GetFixture() {
  static Fixture* f = new Fixture();
  return *f;
}

void BM_DPStar(benchmark::State& state) {
  Fixture& f = GetFixture();
  const sdp::Query q =
      f.MakeQuery(sdp::Topology::kStar, static_cast<int>(state.range(0)));
  sdp::CostModel cost(f.ctx.catalog, f.ctx.stats, q.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdp::OptimizeDP(q, cost));
  }
}
BENCHMARK(BM_DPStar)->DenseRange(8, 14, 2)->Unit(benchmark::kMillisecond);

void BM_DPChain(benchmark::State& state) {
  Fixture& f = GetFixture();
  const sdp::Query q =
      f.MakeQuery(sdp::Topology::kChain, static_cast<int>(state.range(0)));
  sdp::CostModel cost(f.ctx.catalog, f.ctx.stats, q.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdp::OptimizeDP(q, cost));
  }
}
BENCHMARK(BM_DPChain)->DenseRange(8, 24, 4)->Unit(benchmark::kMillisecond);

void BM_SDPStar(benchmark::State& state) {
  Fixture& f = GetFixture();
  const sdp::Query q =
      f.MakeQuery(sdp::Topology::kStar, static_cast<int>(state.range(0)));
  sdp::CostModel cost(f.ctx.catalog, f.ctx.stats, q.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdp::OptimizeSDP(q, cost));
  }
}
BENCHMARK(BM_SDPStar)->DenseRange(8, 20, 4)->Unit(benchmark::kMillisecond);

void BM_IDP7Star(benchmark::State& state) {
  Fixture& f = GetFixture();
  const sdp::Query q =
      f.MakeQuery(sdp::Topology::kStar, static_cast<int>(state.range(0)));
  sdp::CostModel cost(f.ctx.catalog, f.ctx.stats, q.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdp::OptimizeIDP(q, cost, sdp::IdpConfig{7}));
  }
}
BENCHMARK(BM_IDP7Star)->DenseRange(8, 16, 4)->Unit(benchmark::kMillisecond);

void BM_SDPStarChain(benchmark::State& state) {
  Fixture& f = GetFixture();
  const sdp::Query q = f.MakeQuery(sdp::Topology::kStarChain,
                                   static_cast<int>(state.range(0)));
  sdp::CostModel cost(f.ctx.catalog, f.ctx.stats, q.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdp::OptimizeSDP(q, cost));
  }
}
BENCHMARK(BM_SDPStarChain)
    ->DenseRange(10, 22, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sdp::bench::MicroBenchMain(argc, argv);
}
