// Micro-benchmarks of the skyline algorithms SDP's pruning relies on.
#include <benchmark/benchmark.h>

#include "bench/bench_micro_common.h"

#include <array>
#include <vector>

#include "common/rng.h"
#include "core/skyline_pruning.h"
#include "skyline/skyline.h"

namespace {

std::vector<std::vector<double>> RandomPoints(int n, int d, uint64_t seed) {
  sdp::Rng rng(seed);
  std::vector<std::vector<double>> pts(n);
  for (auto& p : pts) {
    p.resize(d);
    for (auto& v : p) v = rng.NextDouble();
  }
  return pts;
}

void BM_SkylineNaive(benchmark::State& state) {
  const auto pts = RandomPoints(static_cast<int>(state.range(0)), 3, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdp::SkylineNaive(pts));
  }
}
BENCHMARK(BM_SkylineNaive)->Range(8, 1024);

void BM_SkylineBNL(benchmark::State& state) {
  const auto pts = RandomPoints(static_cast<int>(state.range(0)), 3, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdp::SkylineBNL(pts));
  }
}
BENCHMARK(BM_SkylineBNL)->Range(8, 1024);

void BM_Skyline2D(benchmark::State& state) {
  sdp::Rng rng(2);
  std::vector<std::array<double, 2>> pts(state.range(0));
  for (auto& p : pts) p = {rng.NextDouble(), rng.NextDouble()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdp::Skyline2D(pts));
  }
}
BENCHMARK(BM_Skyline2D)->Range(8, 4096);

void BM_PairwiseSkylineReport(benchmark::State& state) {
  sdp::Rng rng(3);
  std::vector<sdp::JcrFeatures> f(state.range(0));
  for (auto& x : f) {
    x = {rng.NextDouble() * 1e6, rng.NextDouble() * 1e5, rng.NextDouble()};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdp::PairwiseSkylineReport(f));
  }
}
BENCHMARK(BM_PairwiseSkylineReport)->Range(8, 1024);

void BM_KDominantSkyline(benchmark::State& state) {
  const auto pts = RandomPoints(static_cast<int>(state.range(0)), 3, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdp::KDominantSkyline(pts, 2));
  }
}
BENCHMARK(BM_KDominantSkyline)->Range(8, 512);

}  // namespace

int main(int argc, char** argv) {
  return sdp::bench::MicroBenchMain(argc, argv);
}
