// Reproduces Table 3.1: plan quality on pure star join graphs of 15, 20 and
// 23 relations (DP, IDP(7), IDP(4), SDP).  DP becomes infeasible beyond 15;
// IDP(7) beyond 20; SDP is the reference for the scaled rows.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace sdp;
  bench::BenchJson json(argc, argv, "table_3_1");
  bench::PrintHeader("Table 3.1", "Star join graphs: plan quality");
  bench::PaperContext ctx = bench::MakePaperContext();
  const std::vector<AlgorithmSpec> algos = {
      AlgorithmSpec::DP(), AlgorithmSpec::IDP(7), AlgorithmSpec::IDP(4),
      AlgorithmSpec::SDP()};

  const int instances[] = {bench::ScaledInstances(30),
                           bench::ScaledInstances(5),
                           bench::ScaledInstances(3)};
  const int sizes[] = {15, 20, 23};
  for (int i = 0; i < 3; ++i) {
    WorkloadSpec spec;
    spec.topology = Topology::kStar;
    spec.num_relations = sizes[i];
    spec.num_instances = instances[i];
    bench::RunAndPrint(ctx, spec, algos, bench::BudgetMb(64),
                       /*quality=*/true, /*overheads=*/false, &json);
  }
  return 0;
}
