// Reproduces Table 3.6: localized (hub-based) versus global skyline pruning
// on the Star-Chain-20 join graph.  Global pruning applies the skyline to
// every level's whole JCR population; quality degrades perceptibly.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace sdp;
  bench::BenchJson json(argc, argv, "table_3_6");
  bench::PrintHeader("Table 3.6", "Local vs global pruning (Star-Chain-20)");
  bench::PaperContext ctx = bench::MakePaperContext();

  SdpConfig global;
  global.localized = false;
  const std::vector<AlgorithmSpec> algos = {
      AlgorithmSpec::DP(),
      AlgorithmSpec::SDPWith(global, "SDP/Global"),
      AlgorithmSpec::SDPWith(SdpConfig{}, "SDP/Local"),
  };

  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 20;
  spec.num_instances = bench::ScaledInstances(6);
  // DP must stay feasible to serve as the reference (the paper's 1 GB
  // machine handled Star-Chain-20).
  bench::RunAndPrint(ctx, spec, algos, bench::BudgetMb(512),
                     /*quality=*/true, /*overheads=*/false, &json);
  return 0;
}
