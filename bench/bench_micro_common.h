#ifndef SDPOPT_BENCH_BENCH_MICRO_COMMON_H_
#define SDPOPT_BENCH_BENCH_MICRO_COMMON_H_

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "obs/introspection.h"

// Git revision baked in by bench/CMakeLists.txt at configure time.
#ifndef SDP_GIT_SHA
#define SDP_GIT_SHA "unknown"
#endif
// Nonzero when the tree had uncommitted changes at configure time.
#ifndef SDP_GIT_DIRTY
#define SDP_GIT_DIRTY 0
#endif

namespace sdp::bench {

// Shared main() for the google-benchmark micro benches.  Adds the same
// `--json <path>` / `--json=path` flag the table benches take (translated
// to google-benchmark's --benchmark_out in JSON format) and stamps the git
// revision into the benchmark context, so one flag yields machine-readable
// results across the whole bench suite.
inline int MicroBenchMain(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_arg;
  std::string fmt_arg;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string arg = args[i];
    std::string path;
    if (arg == "--json" && i + 1 < args.size()) {
      path = args[i + 1];
      args.erase(args.begin() + static_cast<long>(i),
                 args.begin() + static_cast<long>(i) + 2);
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
      args.erase(args.begin() + static_cast<long>(i));
    } else {
      continue;
    }
    out_arg = "--benchmark_out=" + path;
    fmt_arg = "--benchmark_out_format=json";
    args.push_back(out_arg.data());
    args.push_back(fmt_arg.data());
    break;
  }
  int patched_argc = static_cast<int>(args.size());
  benchmark::AddCustomContext("git_sha", SDP_GIT_SHA);
  benchmark::AddCustomContext("git_dirty", SDP_GIT_DIRTY ? "1" : "0");
  // Machine-context block: a single-core or powersave-governed baseline
  // is then self-describing in the JSON instead of a ROADMAP footnote.
  benchmark::AddCustomContext("machine_cores",
                              std::to_string(sdp::MachineCores()));
  benchmark::AddCustomContext("machine_governor", sdp::MachineGovernor());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace sdp::bench

#endif  // SDPOPT_BENCH_BENCH_MICRO_COMMON_H_
