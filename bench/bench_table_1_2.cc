// Reproduces Table 1.2: optimization overheads (memory, time, plans costed)
// of DP, IDP(7) and SDP on Star-Chain-15.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace sdp;
  bench::BenchJson json(argc, argv, "table_1_2");
  bench::PrintHeader("Table 1.2", "Star-Chain-15 optimization overheads");
  bench::PaperContext ctx = bench::MakePaperContext();

  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 15;
  spec.num_instances = bench::ScaledInstances(30);
  bench::RunAndPrint(ctx, spec,
                     {AlgorithmSpec::DP(), AlgorithmSpec::IDP(7),
                      AlgorithmSpec::SDP()},
                     bench::BudgetMb(64), /*quality=*/false,
                     /*overheads=*/true, &json);
  return 0;
}
