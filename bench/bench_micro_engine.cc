// Micro-benchmarks of the execution-engine substrate: data generation,
// index lookups and the physical join operators.
#include <benchmark/benchmark.h>

#include "bench/bench_micro_common.h"

#include "catalog/catalog.h"
#include "engine/executor.h"
#include "engine/table_data.h"
#include "query/topology.h"
#include "workload/workload.h"

namespace {

sdp::SchemaConfig SmallSchema() {
  sdp::SchemaConfig config;
  config.num_relations = 10;
  config.min_rows = 100;
  config.max_rows = 5000;
  config.min_domain = 50;
  config.max_domain = 5000;
  config.seed = 3;
  return config;
}

struct EngineFixture {
  EngineFixture()
      : catalog(sdp::MakeSyntheticCatalog(SmallSchema())),
        db(sdp::Database::Generate(catalog, 21)) {
    sdp::WorkloadSpec spec;
    spec.topology = sdp::Topology::kChain;
    spec.num_relations = 2;
    spec.num_instances = 1;
    query = sdp::GenerateWorkload(catalog, spec).front();
  }
  sdp::Catalog catalog;
  sdp::Database db;
  sdp::Query query{sdp::JoinGraph({0}), std::nullopt, {}};
};

EngineFixture& GetEngine() {
  static EngineFixture* f = new EngineFixture();
  return *f;
}

void BM_DataGeneration(benchmark::State& state) {
  const sdp::Catalog catalog = sdp::MakeSyntheticCatalog(SmallSchema());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sdp::Database::Generate(catalog, 7, state.range(0)));
  }
}
BENCHMARK(BM_DataGeneration)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_Analyze(benchmark::State& state) {
  EngineFixture& f = GetEngine();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.db.Analyze());
  }
}
BENCHMARK(BM_Analyze)->Unit(benchmark::kMillisecond);

void BM_IndexLookup(benchmark::State& state) {
  EngineFixture& f = GetEngine();
  const sdp::TableData& data = f.db.table(0);
  const int idx = f.catalog.table(0).indexed_column;
  int64_t i = 0;
  for (auto _ : state) {
    const int64_t key = data.columns[idx][i++ % data.num_rows()];
    benchmark::DoNotOptimize(data.IndexLookup(key));
  }
}
BENCHMARK(BM_IndexLookup);

void BM_HashJoinExecution(benchmark::State& state) {
  EngineFixture& f = GetEngine();
  sdp::Executor exec(f.db, f.query.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.ExecuteReference());
  }
}
BENCHMARK(BM_HashJoinExecution)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return sdp::bench::MicroBenchMain(argc, argv);
}
