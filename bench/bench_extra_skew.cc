// Supplementary: the paper's schema generator supports both uniform and
// skewed (exponential) data distributions (Section 3.1: "we have
// experimented with both uniform and skewed ... distributions"; the
// presented tables are the uniform results).  This harness repeats the
// headline Star-Chain-15 and Star-15 quality experiments on the skewed
// schema: exponential data concentrates values, lowering distinct counts
// and raising join selectivities, which stresses the optimizers with
// fatter intermediate results.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace sdp;
  bench::BenchJson json(argc, argv, "extra_skew");
  bench::PrintHeader("Extra distribution",
                     "Skewed (exponential) data, headline workloads");
  SchemaConfig config;
  config.distribution = DataDistribution::kExponential;
  bench::PaperContext ctx;
  ctx.catalog = MakeSyntheticCatalog(config);
  ctx.stats = SynthesizeStats(ctx.catalog);

  const std::vector<AlgorithmSpec> algos = {
      AlgorithmSpec::DP(), AlgorithmSpec::IDP(7), AlgorithmSpec::IDP(4),
      AlgorithmSpec::SDP()};

  {
    WorkloadSpec spec;
    spec.topology = Topology::kStarChain;
    spec.num_relations = 15;
    spec.num_instances = bench::ScaledInstances(25);
    bench::RunAndPrint(ctx, spec, algos, bench::BudgetMb(64),
                       /*quality=*/true, /*overheads=*/false, &json);
  }
  {
    WorkloadSpec spec;
    spec.topology = Topology::kStar;
    spec.num_relations = 15;
    spec.num_instances = bench::ScaledInstances(20);
    bench::RunAndPrint(ctx, spec, algos, bench::BudgetMb(64),
                       /*quality=*/true, /*overheads=*/false, &json);
  }
  std::printf("Expected (paper: 'our results for the other ... are similar "
              "in flavor'):\nthe same ordering as the uniform tables -- SDP "
              "near-ideal, IDPs degraded.\n");
  return 0;
}
