// Supplementary: the paper states its results for other join-graph
// topologies are "similar in flavor" (Section 3.1).  This harness covers
// the remaining families -- cycles (no hubs: SDP must equal DP exactly)
// and cliques (every relation is a hub: strong pruning).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace sdp;
  bench::BenchJson json(argc, argv, "extra_topologies");
  bench::PrintHeader("Extra topologies", "Cycle and clique join graphs");
  bench::PaperContext ctx = bench::MakePaperContext();
  const std::vector<AlgorithmSpec> algos = {
      AlgorithmSpec::DP(), AlgorithmSpec::IDP(7), AlgorithmSpec::IDP(4),
      AlgorithmSpec::SDP()};

  {
    WorkloadSpec spec;
    spec.topology = Topology::kCycle;
    spec.num_relations = 14;
    spec.num_instances = bench::ScaledInstances(15);
    bench::RunAndPrint(ctx, spec, algos, bench::BudgetMb(64),
                       /*quality=*/true, /*overheads=*/true, &json);
  }
  {
    WorkloadSpec spec;
    spec.topology = Topology::kSnowflake;
    spec.num_relations = 15;
    spec.num_instances = bench::ScaledInstances(10);
    bench::RunAndPrint(ctx, spec, algos, bench::BudgetMb(64),
                       /*quality=*/true, /*overheads=*/true, &json);
  }
  {
    WorkloadSpec spec;
    spec.topology = Topology::kClique;
    spec.num_relations = 10;
    spec.num_instances = bench::ScaledInstances(10);
    bench::RunAndPrint(ctx, spec, algos, bench::BudgetMb(64),
                       /*quality=*/true, /*overheads=*/true, &json);
  }
  std::printf("Expected: cycles have no hubs, so SDP's effort equals DP's "
              "(no pruning)\nand both are cheap; cliques are all-hub, so "
              "SDP prunes hard while staying\nwithin the Good band.\n");
  return 0;
}
