// Reproduces Figure 1.2: the plan-quality (rho) versus optimization-effort
// tradeoff for DP, IDP(4), IDP(7) and SDP on Star-Chain-15.  Prints the
// scatter series the figure plots.
#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace sdp;
  bench::BenchJson json(argc, argv, "fig_1_2");
  bench::PrintHeader("Figure 1.2", "Plan quality (rho) vs optimization effort");
  bench::PaperContext ctx = bench::MakePaperContext();

  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 15;
  spec.num_instances = bench::ScaledInstances(30);
  const ExperimentReport report = bench::RunAndPrint(
      ctx, spec,
      {AlgorithmSpec::DP(), AlgorithmSpec::IDP(4), AlgorithmSpec::IDP(7),
       AlgorithmSpec::SDP()},
      bench::BudgetMb(64), /*quality=*/false, /*overheads=*/false, &json);

  std::printf("Series (x = avg optimization time in ms, x2 = plans costed, "
              "y = rho):\n");
  std::printf("  %-10s %14s %16s %10s\n", "technique", "time(ms)",
              "plans costed", "rho");
  for (const AlgorithmOutcome& o : report.outcomes) {
    if (o.feasible == 0) continue;
    std::printf("  %-10s %14.2f %16.0f %10.3f\n", o.name.c_str(),
                o.AvgSeconds() * 1e3, o.AvgPlansCosted(),
                o.name == "DP" ? 1.0 : o.quality.Rho());
  }
  std::printf("\nExpected knee: SDP sits below-left of both IDPs "
              "(better quality at lower effort).\n");
  return 0;
}
