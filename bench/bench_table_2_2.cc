// Reproduces Table 2.2: a worked multi-way skyline pruning example.  We
// build a nine-relation join graph shaped like the paper's Figure 2.1 (two
// hubs), enumerate the level-3 JCRs of the root-hub partition with the real
// DP machinery, and print each JCR's [R, C, S] feature vector together with
// its membership in the RC / CS / RS skylines and the survival verdict.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/arena.h"
#include "core/skyline_pruning.h"
#include "cost/cardinality.h"
#include "optimizer/enumerator.h"
#include "optimizer/memo.h"
#include "optimizer/plan_pool.h"
#include "query/topology.h"

int main(int argc, char** argv) {
  using namespace sdp;
  bench::BenchJson json(argc, argv, "table_2_2");
  bench::PrintHeader("Table 2.2", "Multi-way skyline pruning (worked example)");
  bench::PaperContext ctx = bench::MakePaperContext();

  // Figure 2.1's shape: hub R0 joined with R1..R4; chain R4-R5; hub R6
  // joined with R5, R7, R8.  (Positions renumbered from the paper's 1..9.)
  WorkloadSpec pick;
  pick.topology = Topology::kStarChain;  // Only used to pick tables.
  pick.num_relations = 9;
  pick.num_instances = 1;
  pick.seed = 2;
  const std::vector<int> tables =
      GenerateWorkload(ctx.catalog, pick).front().graph.table_ids();

  JoinGraph graph(tables);
  auto col = [&](int pos, int offset) {
    const Table& t = ctx.catalog.table(tables[pos]);
    return ColumnRef{pos, (t.indexed_column + offset) %
                              static_cast<int>(t.columns.size())};
  };
  graph.AddEdge(col(0, 0), col(1, 0));
  graph.AddEdge(col(0, 1), col(2, 0));
  graph.AddEdge(col(0, 2), col(3, 0));
  graph.AddEdge(col(0, 3), col(4, 0));
  graph.AddEdge(col(4, 1), col(5, 0));
  graph.AddEdge(col(6, 0), col(5, 1));
  graph.AddEdge(col(6, 1), col(7, 0));
  graph.AddEdge(col(6, 2), col(8, 0));
  std::printf("Join graph: %s\n", graph.ToString().c_str());
  std::printf("Root hubs: R0 (degree %d), R6 (degree %d)\n\n", graph.Degree(0),
              graph.Degree(6));

  // Run DP levels 2 and 3 with the library's enumerator.
  CostModel cost(ctx.catalog, ctx.stats, graph);
  MemoryGauge gauge;
  PlanPool pool(&gauge);
  Memo memo(&gauge);
  CardinalityEstimator card(graph, cost, &gauge);
  OrderingSpace space(graph, std::nullopt);
  SearchCounters counters;
  JoinEnumerator enumerator(graph, cost, space, &card, &memo, &pool, &gauge,
                            OptimizerOptions{}, &counters);
  enumerator.InstallBaseRelationLeaves();
  enumerator.RunLevel(2);
  enumerator.RunLevel(3);

  // Root-hub partition on R0 at level 3.
  std::vector<const MemoEntry*> partition;
  for (const MemoEntry* e : memo.EntriesWithUnitCount(3)) {
    if (e->rels.Contains(0)) partition.push_back(e);
  }
  std::vector<JcrFeatures> features;
  features.reserve(partition.size());
  for (const MemoEntry* e : partition) {
    features.push_back(JcrFeatures{e->rows, e->CheapestCost(), e->sel});
  }
  const auto report = PairwiseSkylineReport(features);

  std::printf("PruneGroup partition on root hub R0 (level-3 JCRs):\n");
  std::printf("  %-14s %14s %14s %12s   %-2s %-2s %-2s  %s\n", "JCR", "R",
              "C", "S", "RC", "CS", "RS", "verdict");
  int pruned = 0;
  for (size_t i = 0; i < partition.size(); ++i) {
    std::printf("  %-14s %14.0f %14.1f %12.3e   %-2s %-2s %-2s  %s\n",
                partition[i]->rels.ToString().c_str(), features[i].rows,
                features[i].cost, features[i].sel,
                report[i].rc ? "Y" : "-", report[i].cs ? "Y" : "-",
                report[i].rs ? "Y" : "-",
                report[i].survives() ? "survives" : "PRUNED");
    if (!report[i].survives()) ++pruned;
  }
  std::printf("\n%d of %zu JCRs pruned by the disjunctive pairwise skyline.\n",
              pruned, partition.size());
  char row[96];
  std::snprintf(row, sizeof(row),
                "{\"partition_size\":%zu,\"pruned\":%d}", partition.size(),
                pruned);
  json.AddRaw(row);
  return 0;
}
