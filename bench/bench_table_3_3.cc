// Reproduces Table 3.3: maximum star join-graph size each algorithm can
// optimize before exceeding the memory budget, with the optimization time
// at that maximum.  Uses the extended schema (50 relations); the paper's
// SDP reached a 45-relation star in under a minute, roughly double IDP's
// limit, with DP dying earliest.
#include <cstdio>

#include "bench/bench_common.h"

namespace {

// Largest feasible star size in [lo, hi] for one algorithm, plus the time
// at that size.  Feasibility is monotone in practice, so walk upward.
void FindMax(const sdp::Catalog& catalog, const sdp::StatsCatalog& stats,
             const sdp::AlgorithmSpec& algo,
             const sdp::OptimizerOptions& opts, int lo, int hi, int step,
             int* max_n, double* time_at_max) {
  using namespace sdp;
  *max_n = 0;
  *time_at_max = 0;
  for (int n = lo; n <= hi; n += step) {
    WorkloadSpec spec;
    spec.topology = Topology::kStar;
    spec.num_relations = n;
    spec.num_instances = 1;
    spec.seed = 17;
    const Query q = GenerateWorkload(catalog, spec).front();
    CostModel cost(catalog, stats, q.graph);
    const OptimizeResult r = RunAlgorithm(algo, q, cost, opts);
    if (!r.feasible) break;
    *max_n = n;
    *time_at_max = r.elapsed_seconds;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sdp;
  bench::BenchJson json(argc, argv, "table_3_3");
  bench::PrintHeader("Table 3.3", "Maximum star scaleup per algorithm");
  Catalog catalog = MakeSyntheticCatalog(ExtendedSchemaConfig(50));
  StatsCatalog stats = SynthesizeStats(catalog);
  const OptimizerOptions opts = bench::BudgetMb(64);

  const std::vector<AlgorithmSpec> algos = {
      AlgorithmSpec::DP(), AlgorithmSpec::IDP(7), AlgorithmSpec::IDP(4),
      AlgorithmSpec::SDP()};
  std::printf("  %-10s %14s %16s\n", "technique", "max relations",
              "time at max (s)");
  for (const AlgorithmSpec& algo : algos) {
    int max_n = 0;
    double t = 0;
    FindMax(catalog, stats, algo, opts, 10, 49, 1, &max_n, &t);
    std::printf("  %-10s %14d %16.3f\n", algo.name.c_str(), max_n, t);
    char row[128];
    std::snprintf(row, sizeof(row),
                  "{\"name\":\"%s\",\"max_relations\":%d,"
                  "\"time_at_max_s\":%.6g}",
                  algo.name.c_str(), max_n, t);
    json.AddRaw(row);
  }
  std::printf("\nExpected shape: DP dies first, IDP(7) next; SDP handles "
              "roughly double IDP's star size.\n");
  return 0;
}
