// Supplementary ablation (Section 3.1's design note): Root-Hub versus
// Parent-Hub partitioning.  The paper adopted Root-Hub because it matches
// Parent-Hub's plan quality "with much lesser overheads"; this harness
// quantifies both sides of that claim on star-chain workloads.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/sdp.h"
#include "optimizer/dp.h"

int main(int argc, char** argv) {
  using namespace sdp;
  bench::BenchJson json(argc, argv, "ablation_partitioning");
  bench::PrintHeader("Ablation", "Root-Hub vs Parent-Hub partitioning");
  bench::PaperContext ctx = bench::MakePaperContext();

  SdpConfig parent;
  parent.partitioning = SdpConfig::Partitioning::kParentHub;

  for (int n : {12, 15}) {
    WorkloadSpec spec;
    spec.topology = Topology::kStarChain;
    spec.num_relations = n;
    spec.num_instances = bench::ScaledInstances(15);
    const std::vector<Query> queries = GenerateWorkload(ctx.catalog, spec);

    QualityDistribution root_q, parent_q;
    double root_plans = 0, parent_plans = 0, root_jcrs = 0, parent_jcrs = 0;
    int counted = 0;
    for (const Query& q : queries) {
      CostModel cost(ctx.catalog, ctx.stats, q.graph);
      const OptimizeResult dp = OptimizeDP(q, cost);
      const OptimizeResult root_r = OptimizeSDP(q, cost);
      const OptimizeResult parent_r = OptimizeSDP(q, cost, parent);
      if (!dp.feasible || !root_r.feasible || !parent_r.feasible) continue;
      ++counted;
      root_q.Add(root_r.cost / dp.cost);
      parent_q.Add(parent_r.cost / dp.cost);
      root_plans += static_cast<double>(root_r.counters.plans_costed);
      parent_plans += static_cast<double>(parent_r.counters.plans_costed);
      root_jcrs += static_cast<double>(root_r.counters.jcrs_created);
      parent_jcrs += static_cast<double>(parent_r.counters.jcrs_created);
    }
    std::printf("%s (%d instances)\n", spec.Name().c_str(), counted);
    std::printf("  %-12s %8s %8s %14s %10s\n", "partitioning", "rho", "W",
                "plans costed", "JCRs");
    std::printf("  %-12s %8.4f %8.2f %14.0f %10.0f\n", "root-hub",
                root_q.Rho(), root_q.worst, root_plans / counted,
                root_jcrs / counted);
    std::printf("  %-12s %8.4f %8.2f %14.0f %10.0f\n\n", "parent-hub",
                parent_q.Rho(), parent_q.worst, parent_plans / counted,
                parent_jcrs / counted);
    char row[192];
    std::snprintf(row, sizeof(row),
                  "{\"n\":%d,\"partitioning\":\"root-hub\",\"rho\":%.6g,"
                  "\"avg_plans_costed\":%.6g,\"avg_jcrs\":%.6g}",
                  n, root_q.Rho(), root_plans / counted, root_jcrs / counted);
    json.AddRaw(row);
    std::snprintf(row, sizeof(row),
                  "{\"n\":%d,\"partitioning\":\"parent-hub\",\"rho\":%.6g,"
                  "\"avg_plans_costed\":%.6g,\"avg_jcrs\":%.6g}",
                  n, parent_q.Rho(), parent_plans / counted,
                  parent_jcrs / counted);
    json.AddRaw(row);
  }
  std::printf("Expected: comparable rho; root-hub with fewer or comparable "
              "JCRs/plans\n(the paper's reason for adopting it).\n");
  return 0;
}
