// Micro-benchmarks of the pluggable plan enumerators: DPsize's size-driven
// pair scan vs DPccp's csg-cmp enumeration vs GOO's greedy merge, per
// topology and relation count.  The headline asymmetry is candidate pairs
// examined -- DPccp visits only valid csg-cmp pairs, so on a 50-relation
// chain it examines ~29x fewer pairs than DPsize for the identical optimal
// plan -- reported here as the `pairs_examined` counter next to wall time.
//
// Workloads past the paper's 25-relation schema bind against
// ExtendedSchemaConfig; RelSet's 64-bit masks cap relation counts at 64.
// Run with `--json out.json` for machine-readable results.
#include <benchmark/benchmark.h>

#include "bench/bench_micro_common.h"

#include "bench/bench_common.h"
#include "obs/prof/prof.h"
#include "optimizer/dp.h"
#include "optimizer/plan_enumerator.h"

namespace {

struct Fixture {
  Fixture()
      : ctx(sdp::bench::MakePaperContext()),
        big_catalog(sdp::MakeSyntheticCatalog(
            sdp::ExtendedSchemaConfig(sdp::RelSet::kMaxRelations))),
        big_stats(sdp::SynthesizeStats(big_catalog)) {}

  // Queries up to 25 relations bind the paper catalog; larger ones the
  // extended schema (which covers the full 64-relation RelSet range).
  sdp::Query MakeQuery(sdp::Topology t, int n) {
    const sdp::Catalog& catalog = n > 25 ? big_catalog : ctx.catalog;
    sdp::WorkloadSpec spec;
    spec.topology = t;
    spec.num_relations = n;
    spec.num_instances = 1;
    spec.seed = 77;
    return sdp::GenerateWorkload(catalog, spec).front();
  }

  const sdp::Catalog& CatalogFor(int n) const {
    return n > 25 ? big_catalog : ctx.catalog;
  }
  const sdp::StatsCatalog& StatsFor(int n) const {
    return n > 25 ? big_stats : ctx.stats;
  }

  sdp::bench::PaperContext ctx;
  sdp::Catalog big_catalog;
  sdp::StatsCatalog big_stats;
};

Fixture& GetFixture() {
  static Fixture* f = new Fixture();
  return *f;
}

void RunEnumerator(benchmark::State& state, sdp::Topology t, int n,
                   sdp::PlanEnumeratorKind kind) {
  Fixture& f = GetFixture();
  const sdp::Query q = f.MakeQuery(t, n);
  sdp::CostModel cost(f.CatalogFor(n), f.StatsFor(n), q.graph);
  sdp::OptimizerOptions options;
  options.enumerator = kind;
  // The probe run doubles as the phase-attribution sample: allocation
  // counters are recorded only around it, so the timed loop below still
  // runs the pure disabled path (one predicted branch per alloc site).
  sdp::ProfAllocReset();
  sdp::ProfSetAllocCountersEnabled(true);
  const sdp::OptimizeResult probe = sdp::OptimizeDP(q, cost, options);
  sdp::ProfSetAllocCountersEnabled(false);
  const sdp::ProfAllocCounters alloc = sdp::ProfAllocSnapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdp::OptimizeDP(q, cost, options));
  }
  state.counters["pairs_examined"] = benchmark::Counter(
      static_cast<double>(probe.counters.pairs_examined));
  state.counters["plans_costed"] =
      benchmark::Counter(static_cast<double>(probe.counters.plans_costed));
  state.counters["relset_intern_hits"] = benchmark::Counter(
      static_cast<double>(probe.counters.relset_intern_hits));
  state.counters["feasible"] =
      benchmark::Counter(probe.feasible ? 1.0 : 0.0);
  // Per-phase allocation attribution for one optimize of this workload:
  // where the memory of an enumerator run actually goes.
  state.counters["alloc_enumerate_bytes"] = benchmark::Counter(
      static_cast<double>(alloc.PhaseBytes(sdp::ProfPhaseKind::kEnumerate)));
  state.counters["alloc_cost_bytes"] = benchmark::Counter(
      static_cast<double>(alloc.PhaseBytes(sdp::ProfPhaseKind::kCost)));
  state.counters["alloc_prune_bytes"] = benchmark::Counter(
      static_cast<double>(alloc.PhaseBytes(sdp::ProfPhaseKind::kPrune)));
  state.counters["alloc_total_bytes"] =
      benchmark::Counter(static_cast<double>(alloc.TotalBytes()));
}

void BM_DpsizeChain(benchmark::State& state) {
  RunEnumerator(state, sdp::Topology::kChain,
                static_cast<int>(state.range(0)),
                sdp::PlanEnumeratorKind::kDPsize);
}
BENCHMARK(BM_DpsizeChain)
    ->Arg(25)
    ->Arg(50)
    ->Arg(64)
    ->ArgName("rels")
    ->Unit(benchmark::kMillisecond);

void BM_DpccpChain(benchmark::State& state) {
  RunEnumerator(state, sdp::Topology::kChain,
                static_cast<int>(state.range(0)),
                sdp::PlanEnumeratorKind::kDPccp);
}
BENCHMARK(BM_DpccpChain)
    ->Arg(25)
    ->Arg(50)
    ->Arg(64)
    ->ArgName("rels")
    ->Unit(benchmark::kMillisecond);

void BM_DpsizeCycle(benchmark::State& state) {
  RunEnumerator(state, sdp::Topology::kCycle,
                static_cast<int>(state.range(0)),
                sdp::PlanEnumeratorKind::kDPsize);
}
BENCHMARK(BM_DpsizeCycle)
    ->Arg(25)
    ->Arg(50)
    ->ArgName("rels")
    ->Unit(benchmark::kMillisecond);

void BM_DpccpCycle(benchmark::State& state) {
  RunEnumerator(state, sdp::Topology::kCycle,
                static_cast<int>(state.range(0)),
                sdp::PlanEnumeratorKind::kDPccp);
}
BENCHMARK(BM_DpccpCycle)
    ->Arg(25)
    ->Arg(50)
    ->ArgName("rels")
    ->Unit(benchmark::kMillisecond);

void BM_DpsizeStar(benchmark::State& state) {
  RunEnumerator(state, sdp::Topology::kStar,
                static_cast<int>(state.range(0)),
                sdp::PlanEnumeratorKind::kDPsize);
}
BENCHMARK(BM_DpsizeStar)->Arg(14)->ArgName("rels")->Unit(
    benchmark::kMillisecond);

void BM_DpccpStar(benchmark::State& state) {
  RunEnumerator(state, sdp::Topology::kStar,
                static_cast<int>(state.range(0)),
                sdp::PlanEnumeratorKind::kDPccp);
}
BENCHMARK(BM_DpccpStar)->Arg(14)->ArgName("rels")->Unit(
    benchmark::kMillisecond);

void BM_DpsizeClique(benchmark::State& state) {
  RunEnumerator(state, sdp::Topology::kClique,
                static_cast<int>(state.range(0)),
                sdp::PlanEnumeratorKind::kDPsize);
}
BENCHMARK(BM_DpsizeClique)->Arg(10)->ArgName("rels")->Unit(
    benchmark::kMillisecond);

void BM_DpccpClique(benchmark::State& state) {
  RunEnumerator(state, sdp::Topology::kClique,
                static_cast<int>(state.range(0)),
                sdp::PlanEnumeratorKind::kDPccp);
}
BENCHMARK(BM_DpccpClique)->Arg(10)->ArgName("rels")->Unit(
    benchmark::kMillisecond);

// GOO is the scalability floor: linear merges, no exhaustive level scan.
void BM_GooChain(benchmark::State& state) {
  RunEnumerator(state, sdp::Topology::kChain,
                static_cast<int>(state.range(0)),
                sdp::PlanEnumeratorKind::kGOO);
}
BENCHMARK(BM_GooChain)
    ->Arg(50)
    ->Arg(64)
    ->ArgName("rels")
    ->Unit(benchmark::kMillisecond);

void BM_GooStar(benchmark::State& state) {
  RunEnumerator(state, sdp::Topology::kStar,
                static_cast<int>(state.range(0)),
                sdp::PlanEnumeratorKind::kGOO);
}
BENCHMARK(BM_GooStar)->Arg(50)->ArgName("rels")->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sdp::bench::MicroBenchMain(argc, argv);
}
