// Reproduces Table 3.5: plan quality on ordered Star-Chain join graphs of
// 15, 20 and 23 relations.  The paper's 1 GB machine kept DP feasible
// through Star-Chain-20; we run the 20-relation row at a proportionally
// larger budget so the reference stays DP, and the 23-relation row at the
// standard budget where DP is infeasible.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace sdp;
  bench::BenchJson json(argc, argv, "table_3_5");
  bench::PrintHeader("Table 3.5", "Ordered star-chain join graphs: plan quality");
  bench::PaperContext ctx = bench::MakePaperContext();
  const std::vector<AlgorithmSpec> algos = {
      AlgorithmSpec::DP(), AlgorithmSpec::IDP(7), AlgorithmSpec::IDP(4),
      AlgorithmSpec::SDP()};

  const int sizes[] = {15, 20, 23};
  const int instances[] = {bench::ScaledInstances(30),
                           bench::ScaledInstances(3),
                           bench::ScaledInstances(3)};
  // 512 MB keeps DP feasible at 20 relations (as on the paper's machine);
  // 128 MB at 23 keeps IDP(7) alive while DP dies (paper Table 3.5).
  const double budgets_mb[] = {64, 512, 128};
  for (int i = 0; i < 3; ++i) {
    WorkloadSpec spec;
    spec.topology = Topology::kStarChain;
    spec.num_relations = sizes[i];
    spec.num_instances = instances[i];
    spec.ordered = true;
    bench::RunAndPrint(ctx, spec, algos, bench::BudgetMb(budgets_mb[i]),
                       /*quality=*/true, /*overheads=*/false, &json);
  }
  return 0;
}
