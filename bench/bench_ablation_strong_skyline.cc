// Supplementary ablation: the paper's named future-work direction --
// "strong skyline" (k-dominant, k=2) pruning -- against the shipped
// pairwise-union skyline.  Stronger dominance prunes more aggressively;
// the question the paper poses is how much plan quality that costs.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/sdp.h"
#include "optimizer/dp.h"

int main(int argc, char** argv) {
  using namespace sdp;
  bench::BenchJson json(argc, argv, "ablation_strong_skyline");
  bench::PrintHeader("Ablation", "Strong (2-dominant) skyline vs pairwise union");
  bench::PaperContext ctx = bench::MakePaperContext();

  SdpConfig strong;
  strong.skyline = SkylineVariant::kStrong;

  WorkloadSpec spec;
  spec.topology = Topology::kStar;
  spec.num_relations = 13;
  spec.num_instances = bench::ScaledInstances(15);
  const std::vector<Query> queries = GenerateWorkload(ctx.catalog, spec);

  QualityDistribution pair_q, strong_q;
  double pair_jcrs = 0, strong_jcrs = 0;
  int counted = 0;
  for (const Query& q : queries) {
    CostModel cost(ctx.catalog, ctx.stats, q.graph);
    const OptimizeResult dp = OptimizeDP(q, cost);
    const OptimizeResult pair_r = OptimizeSDP(q, cost);
    const OptimizeResult strong_r = OptimizeSDP(q, cost, strong);
    if (!dp.feasible || !pair_r.feasible || !strong_r.feasible) continue;
    ++counted;
    pair_q.Add(pair_r.cost / dp.cost);
    strong_q.Add(strong_r.cost / dp.cost);
    pair_jcrs += static_cast<double>(pair_r.counters.jcrs_created);
    strong_jcrs += static_cast<double>(strong_r.counters.jcrs_created);
  }
  std::printf("%s (%d instances)\n", spec.Name().c_str(), counted);
  std::printf("  %-18s %8s %8s %8s %10s\n", "skyline", "rho", "W", "I%",
              "JCRs");
  std::printf("  %-18s %8.4f %8.2f %8.1f %10.0f\n", "pairwise (paper)",
              pair_q.Rho(), pair_q.worst,
              pair_q.Percent(QualityClass::kIdeal), pair_jcrs / counted);
  std::printf("  %-18s %8.4f %8.2f %8.1f %10.0f\n", "strong (future)",
              strong_q.Rho(), strong_q.worst,
              strong_q.Percent(QualityClass::kIdeal), strong_jcrs / counted);
  char row[128];
  std::snprintf(row, sizeof(row),
                "{\"skyline\":\"pairwise\",\"rho\":%.6g,\"avg_jcrs\":%.6g}",
                pair_q.Rho(), pair_jcrs / counted);
  json.AddRaw(row);
  std::snprintf(row, sizeof(row),
                "{\"skyline\":\"strong\",\"rho\":%.6g,\"avg_jcrs\":%.6g}",
                strong_q.Rho(), strong_jcrs / counted);
  json.AddRaw(row);
  std::printf("\nExpected: strong dominance prunes more JCRs; the open "
              "question is the quality cost.\n");
  return 0;
}
