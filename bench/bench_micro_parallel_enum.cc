// Micro-benchmarks of intra-query parallel join enumeration: whole-query
// optimization latency as a function of opt_threads, per topology.  The
// speedup curve (threads on the x-axis) is the headline number for the
// sharded-enumeration work described in DESIGN.md ("Intra-query parallel
// enumeration").
//
// Each benchmark owns a persistent worker pool sized for its thread count
// and hands it to the optimizer via OptimizerOptions::intra_pool, so the
// measured time is enumeration + merge, not thread spawn.  Run with
// `--json out.json` for machine-readable results (see bench_micro_common.h).
//
// Note: on a single-core host the >1-thread configurations measure pure
// sharding/merge overhead -- the workers time-slice one CPU -- so the curve
// is only meaningful on a multi-core machine.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_micro_common.h"

#include "bench/bench_common.h"
#include "common/thread_pool.h"
#include "core/sdp.h"
#include "optimizer/dp.h"

namespace {

struct Fixture {
  Fixture() : ctx(sdp::bench::MakePaperContext()) {}
  sdp::Query MakeQuery(sdp::Topology t, int n) {
    sdp::WorkloadSpec spec;
    spec.topology = t;
    spec.num_relations = n;
    spec.num_instances = 1;
    spec.seed = 77;
    return sdp::GenerateWorkload(ctx.catalog, spec).front();
  }
  sdp::bench::PaperContext ctx;
};

Fixture& GetFixture() {
  static Fixture* f = new Fixture();
  return *f;
}

// Options + (optional) persistent pool for `threads` enumeration workers.
struct ThreadedRun {
  explicit ThreadedRun(int threads) {
    options.opt_threads = threads;
    if (threads > 1) {
      pool = std::make_unique<sdp::ThreadPool>(threads - 1);
      options.intra_pool = pool.get();
    }
  }
  std::unique_ptr<sdp::ThreadPool> pool;
  sdp::OptimizerOptions options;
};

void BM_ParallelDPStar(benchmark::State& state) {
  Fixture& f = GetFixture();
  const sdp::Query q = f.MakeQuery(sdp::Topology::kStar, 14);
  sdp::CostModel cost(f.ctx.catalog, f.ctx.stats, q.graph);
  ThreadedRun run(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdp::OptimizeDP(q, cost, run.options));
  }
}
BENCHMARK(BM_ParallelDPStar)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

void BM_ParallelDPChain(benchmark::State& state) {
  Fixture& f = GetFixture();
  const sdp::Query q = f.MakeQuery(sdp::Topology::kChain, 24);
  sdp::CostModel cost(f.ctx.catalog, f.ctx.stats, q.graph);
  ThreadedRun run(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdp::OptimizeDP(q, cost, run.options));
  }
}
BENCHMARK(BM_ParallelDPChain)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

void BM_ParallelSDPStar(benchmark::State& state) {
  Fixture& f = GetFixture();
  const sdp::Query q = f.MakeQuery(sdp::Topology::kStar, 20);
  sdp::CostModel cost(f.ctx.catalog, f.ctx.stats, q.graph);
  ThreadedRun run(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sdp::OptimizeSDP(q, cost, sdp::SdpConfig{}, run.options));
  }
}
BENCHMARK(BM_ParallelSDPStar)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

void BM_ParallelSDPStarChain(benchmark::State& state) {
  Fixture& f = GetFixture();
  const sdp::Query q = f.MakeQuery(sdp::Topology::kStarChain, 25);
  sdp::CostModel cost(f.ctx.catalog, f.ctx.stats, q.graph);
  ThreadedRun run(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sdp::OptimizeSDP(q, cost, sdp::SdpConfig{}, run.options));
  }
}
BENCHMARK(BM_ParallelSDPStarChain)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sdp::bench::MicroBenchMain(argc, argv);
}
