// Reproduces Table 2.1: DP-only optimization overheads on chain versus star
// join graphs as the relation count grows -- the observation motivating
// SDP's hub-localized pruning (chains stay trivial; stars explode).
#include <cstdio>

#include "bench/bench_common.h"
#include "optimizer/dp.h"
#include "query/topology.h"

namespace {

void RunRow(const sdp::Catalog& catalog, const sdp::StatsCatalog& stats,
            sdp::Topology topology, int n, const sdp::OptimizerOptions& opts,
            double* time_s, double* mem_mb, bool* feasible) {
  using namespace sdp;
  WorkloadSpec spec;
  spec.topology = topology;
  spec.num_relations = n;
  spec.num_instances = 1;
  spec.seed = 42;
  const Query q = GenerateWorkload(catalog, spec).front();
  CostModel cost(catalog, stats, q.graph);
  const OptimizeResult r = OptimizeDP(q, cost, opts);
  *time_s = r.elapsed_seconds;
  *mem_mb = r.peak_memory_mb;
  *feasible = r.feasible;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sdp;
  bench::BenchJson json(argc, argv, "table_2_1");
  bench::PrintHeader("Table 2.1", "DP overheads: chain vs star, N = 4..28");
  // Chains need more than 25 relations: use the extended schema.
  Catalog catalog = MakeSyntheticCatalog(ExtendedSchemaConfig(30));
  StatsCatalog stats = SynthesizeStats(catalog);
  const OptimizerOptions opts = bench::BudgetMb(64);

  std::printf("  %4s  %12s %12s   %12s %12s\n", "N", "chain time(s)",
              "chain MB", "star time(s)", "star MB");
  for (int n = 4; n <= 28; n += 4) {
    double ct = 0, cm = 0, st = 0, sm = 0;
    bool cf = false, sf = false;
    RunRow(catalog, stats, Topology::kChain, n, opts, &ct, &cm, &cf);
    // Stars beyond ~16-20 relations exhaust the budget, as in the paper.
    RunRow(catalog, stats, Topology::kStar, n, opts, &st, &sm, &sf);
    std::printf("  %4d  %12.4f %12.2f   ", n, ct, cm);
    if (sf) {
      std::printf("%12.4f %12.2f\n", st, sm);
    } else {
      std::printf("%12s %12s\n", "-", "-");
    }
    char row[192];
    std::snprintf(row, sizeof(row),
                  "{\"n\":%d,\"chain_seconds\":%.6g,\"chain_mb\":%.6g,"
                  "\"star_feasible\":%s,\"star_seconds\":%.6g,"
                  "\"star_mb\":%.6g}",
                  n, ct, cm, sf ? "true" : "false", st, sm);
    json.AddRaw(row);
  }
  std::printf("\nExpected shape: chain cost grows polynomially (seconds, a "
              "few MB at N=28);\nstar cost explodes and exceeds the memory "
              "budget between N=16 and N=20.\n");
  return 0;
}
