// Micro-benchmarks of the concurrent optimizer service: end-to-end
// queries/sec for a repeated star-chain-13 instance with the plan cache
// cold (every request runs the enumerator) versus warm (every request is a
// canonical-cache hit served as a relabeled clone), across worker-pool
// sizes.  The warm/cold ratio is the headline number: a hit must cost a
// tree clone, not an optimization.
#include <benchmark/benchmark.h>

#include "bench/bench_micro_common.h"

#include <future>
#include <vector>

#include "bench/bench_common.h"
#include "obs/flight_recorder.h"
#include "obs/prof/prof.h"
#include "service/optimizer_service.h"

namespace {

constexpr int kBatch = 32;  // Requests submitted per timed iteration.

sdp::Query ServiceQuery(const sdp::bench::PaperContext& ctx) {
  sdp::WorkloadSpec spec;
  spec.topology = sdp::Topology::kStarChain;
  spec.num_relations = 13;
  spec.num_instances = 1;
  spec.seed = 77;
  return sdp::GenerateWorkload(ctx.catalog, spec).front();
}

void RunBatch(sdp::OptimizerService& service, const sdp::Query& query,
              bool governed = false) {
  std::vector<std::future<sdp::ServiceResult>> futures;
  futures.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) {
    sdp::ServiceRequest request;
    request.query = query;
    if (governed) {
      // Generous limits that never trip: measures the cost of the budget
      // checkpoints and ladder plumbing alone.
      request.budget.deadline_seconds = 3600;
      request.budget.memory_budget_bytes = 8ull << 30;
      request.fallback_enabled = true;
    }
    futures.push_back(service.Submit(std::move(request)));
  }
  for (auto& f : futures) benchmark::DoNotOptimize(f.get());
}

// Cache disabled: every one of the kBatch identical requests pays the full
// SDP enumeration, spread over state.range(0) workers.
void BM_ServiceColdCache(benchmark::State& state) {
  const sdp::bench::PaperContext ctx = sdp::bench::MakePaperContext();
  const sdp::Query query = ServiceQuery(ctx);
  sdp::ServiceConfig config;
  config.num_threads = static_cast<int>(state.range(0));
  config.cache_enabled = false;
  sdp::OptimizerService service(ctx.catalog, ctx.stats, config);
  for (auto _ : state) {
    RunBatch(service, query);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ServiceColdCache)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Cache pre-warmed with the single distinct fingerprint: every timed
// request is a hit (deep-cloned plan, enumerator never runs).
void BM_ServiceWarmCache(benchmark::State& state) {
  const sdp::bench::PaperContext ctx = sdp::bench::MakePaperContext();
  const sdp::Query query = ServiceQuery(ctx);
  sdp::ServiceConfig config;
  config.num_threads = static_cast<int>(state.range(0));
  config.cache_enabled = true;
  sdp::OptimizerService service(ctx.catalog, ctx.stats, config);
  {
    sdp::ServiceRequest warmup;
    warmup.query = query;
    service.OptimizeSync(std::move(warmup));
  }
  for (auto _ : state) {
    RunBatch(service, query);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ServiceWarmCache)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Governance enabled with limits that never trip: the delta against
// BM_ServiceColdCache is the pure overhead of resource-governed
// optimization (budget checkpoints in the enumeration loops, fallback
// ladder bookkeeping, governance-tagged cache keys).  Budgeted to stay
// within 3% of the ungoverned path.
void BM_ServiceGovernedNoTrip(benchmark::State& state) {
  const sdp::bench::PaperContext ctx = sdp::bench::MakePaperContext();
  const sdp::Query query = ServiceQuery(ctx);
  sdp::ServiceConfig config;
  config.num_threads = static_cast<int>(state.range(0));
  config.cache_enabled = false;
  sdp::OptimizerService service(ctx.catalog, ctx.stats, config);
  for (auto _ : state) {
    RunBatch(service, query, /*governed=*/true);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ServiceGovernedNoTrip)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Warm-cache path with the flight recorder force-disabled: the delta
// against BM_ServiceWarmCache (recorder on, the default) is the recorder's
// end-to-end overhead on the hottest path -- a cache hit records only
// request-begin / cache-hit / request-end, budgeted to stay within 3%.
void BM_ServiceWarmCacheRecorderOff(benchmark::State& state) {
  const sdp::bench::PaperContext ctx = sdp::bench::MakePaperContext();
  const sdp::Query query = ServiceQuery(ctx);
  sdp::ServiceConfig config;
  config.num_threads = static_cast<int>(state.range(0));
  config.cache_enabled = true;
  config.flight_recorder = false;
  sdp::OptimizerService service(ctx.catalog, ctx.stats, config);
  // The global recorder is sticky-enabled by any earlier recorder-on
  // benchmark in this process; force it off for a clean comparison.
  sdp::FlightRecorder::Global().Enable(false);
  {
    sdp::ServiceRequest warmup;
    warmup.query = query;
    service.OptimizeSync(std::move(warmup));
  }
  for (auto _ : state) {
    RunBatch(service, query);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  sdp::FlightRecorder::Global().Enable(true);
}
BENCHMARK(BM_ServiceWarmCacheRecorderOff)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Raw cost of one flight-recorder event append (enabled path: sequence
// fetch_add plus eight relaxed stores into the thread-local ring).
void BM_FlightRecorderAppend(benchmark::State& state) {
  sdp::FlightRecorder::Global().Enable(true);
  uint64_t i = 0;
  for (auto _ : state) {
    sdp::FlightRecorder::Global().Record(sdp::ObsKind::kLevelBegin,
                                         /*code=*/0, /*a=*/i++, /*b=*/42);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecorderAppend);

// Same call with the recorder disabled: a single predicted branch.  This is
// the cost every instrumentation point pays when observability is off.
void BM_FlightRecorderDisabled(benchmark::State& state) {
  sdp::FlightRecorder::Global().Enable(false);
  uint64_t i = 0;
  for (auto _ : state) {
    sdp::FlightRecorder::Global().Record(sdp::ObsKind::kLevelBegin,
                                         /*code=*/0, /*a=*/i++, /*b=*/42);
  }
  state.SetItemsProcessed(state.iterations());
  sdp::FlightRecorder::Global().Enable(true);
}
BENCHMARK(BM_FlightRecorderDisabled);

// The sampling profiler's analogue of BM_FlightRecorderDisabled: one
// ProfPhase tag (two thread-local byte stores) plus one disabled
// allocation hook (a relaxed load and a predicted branch).  This is the
// always-compiled-in cost every tagged region pays when no profile is
// being taken; it budgets the instrumentation to keep BM_ServiceWarmCache
// within 1% of an untagged build.
void BM_ProfilerDisabled(benchmark::State& state) {
  uint64_t bytes = 0;
  for (auto _ : state) {
    sdp::ProfPhase phase(sdp::ProfPhaseKind::kCost);
    sdp::ProfRecordAlloc(sdp::ProfAllocSource::kArena, ++bytes);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerDisabled);

// End-to-end control: the warm-cache service path while the sampler and
// allocation counters are live, for eyeballing the *enabled* overhead
// against BM_ServiceWarmCache (the tags themselves are always on; this
// adds SIGPROF delivery plus the alloc fetch_adds).
void BM_ServiceWarmCacheProfiled(benchmark::State& state) {
  const sdp::bench::PaperContext ctx = sdp::bench::MakePaperContext();
  const sdp::Query query = ServiceQuery(ctx);
  sdp::ServiceConfig config;
  config.num_threads = static_cast<int>(state.range(0));
  config.cache_enabled = true;
  sdp::OptimizerService service(ctx.catalog, ctx.stats, config);
  {
    sdp::ServiceRequest warmup;
    warmup.query = query;
    service.OptimizeSync(std::move(warmup));
  }
  sdp::ProfSetAllocCountersEnabled(true);
  for (auto _ : state) {
    RunBatch(service, query);
  }
  sdp::ProfSetAllocCountersEnabled(false);
  sdp::ProfAllocReset();
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ServiceWarmCacheProfiled)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sdp::bench::MicroBenchMain(argc, argv);
}
