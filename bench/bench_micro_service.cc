// Micro-benchmarks of the concurrent optimizer service: end-to-end
// queries/sec for a repeated star-chain-13 instance with the plan cache
// cold (every request runs the enumerator) versus warm (every request is a
// canonical-cache hit served as a relabeled clone), across worker-pool
// sizes.  The warm/cold ratio is the headline number: a hit must cost a
// tree clone, not an optimization.
#include <benchmark/benchmark.h>

#include "bench/bench_micro_common.h"

#include <future>
#include <vector>

#include "bench/bench_common.h"
#include "service/optimizer_service.h"

namespace {

constexpr int kBatch = 32;  // Requests submitted per timed iteration.

sdp::Query ServiceQuery(const sdp::bench::PaperContext& ctx) {
  sdp::WorkloadSpec spec;
  spec.topology = sdp::Topology::kStarChain;
  spec.num_relations = 13;
  spec.num_instances = 1;
  spec.seed = 77;
  return sdp::GenerateWorkload(ctx.catalog, spec).front();
}

void RunBatch(sdp::OptimizerService& service, const sdp::Query& query,
              bool governed = false) {
  std::vector<std::future<sdp::ServiceResult>> futures;
  futures.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) {
    sdp::ServiceRequest request;
    request.query = query;
    if (governed) {
      // Generous limits that never trip: measures the cost of the budget
      // checkpoints and ladder plumbing alone.
      request.budget.deadline_seconds = 3600;
      request.budget.memory_budget_bytes = 8ull << 30;
      request.fallback_enabled = true;
    }
    futures.push_back(service.Submit(std::move(request)));
  }
  for (auto& f : futures) benchmark::DoNotOptimize(f.get());
}

// Cache disabled: every one of the kBatch identical requests pays the full
// SDP enumeration, spread over state.range(0) workers.
void BM_ServiceColdCache(benchmark::State& state) {
  const sdp::bench::PaperContext ctx = sdp::bench::MakePaperContext();
  const sdp::Query query = ServiceQuery(ctx);
  sdp::ServiceConfig config;
  config.num_threads = static_cast<int>(state.range(0));
  config.cache_enabled = false;
  sdp::OptimizerService service(ctx.catalog, ctx.stats, config);
  for (auto _ : state) {
    RunBatch(service, query);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ServiceColdCache)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Cache pre-warmed with the single distinct fingerprint: every timed
// request is a hit (deep-cloned plan, enumerator never runs).
void BM_ServiceWarmCache(benchmark::State& state) {
  const sdp::bench::PaperContext ctx = sdp::bench::MakePaperContext();
  const sdp::Query query = ServiceQuery(ctx);
  sdp::ServiceConfig config;
  config.num_threads = static_cast<int>(state.range(0));
  config.cache_enabled = true;
  sdp::OptimizerService service(ctx.catalog, ctx.stats, config);
  {
    sdp::ServiceRequest warmup;
    warmup.query = query;
    service.OptimizeSync(std::move(warmup));
  }
  for (auto _ : state) {
    RunBatch(service, query);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ServiceWarmCache)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Governance enabled with limits that never trip: the delta against
// BM_ServiceColdCache is the pure overhead of resource-governed
// optimization (budget checkpoints in the enumeration loops, fallback
// ladder bookkeeping, governance-tagged cache keys).  Budgeted to stay
// within 3% of the ungoverned path.
void BM_ServiceGovernedNoTrip(benchmark::State& state) {
  const sdp::bench::PaperContext ctx = sdp::bench::MakePaperContext();
  const sdp::Query query = ServiceQuery(ctx);
  sdp::ServiceConfig config;
  config.num_threads = static_cast<int>(state.range(0));
  config.cache_enabled = false;
  sdp::OptimizerService service(ctx.catalog, ctx.stats, config);
  for (auto _ : state) {
    RunBatch(service, query, /*governed=*/true);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ServiceGovernedNoTrip)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return sdp::bench::MicroBenchMain(argc, argv);
}
