// Reproduces Table 1.1: plan quality of DP, IDP(7) and SDP on the
// Star-Chain-15 join graph (Figure 1.1), 100 instances in the paper.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace sdp;
  bench::BenchJson json(argc, argv, "table_1_1");
  bench::PrintHeader("Table 1.1", "Star-Chain-15 plan quality (DP, IDP, SDP)");
  bench::PaperContext ctx = bench::MakePaperContext();

  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 15;
  spec.num_instances = bench::ScaledInstances(50);
  bench::RunAndPrint(ctx, spec,
                     {AlgorithmSpec::DP(), AlgorithmSpec::IDP(7),
                      AlgorithmSpec::SDP()},
                     bench::BudgetMb(64), /*quality=*/true,
                     /*overheads=*/false, &json);
  return 0;
}
