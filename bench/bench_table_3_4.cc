// Reproduces Table 3.4: plan quality on the ordered variants of the star
// workloads (ORDER BY a random join column), exercising the
// interesting-order machinery and SDP's rescue partitions.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace sdp;
  bench::BenchJson json(argc, argv, "table_3_4");
  bench::PrintHeader("Table 3.4", "Ordered star join graphs: plan quality");
  bench::PaperContext ctx = bench::MakePaperContext();
  const std::vector<AlgorithmSpec> algos = {
      AlgorithmSpec::DP(), AlgorithmSpec::IDP(7), AlgorithmSpec::IDP(4),
      AlgorithmSpec::SDP()};

  const int instances[] = {bench::ScaledInstances(30),
                           bench::ScaledInstances(5),
                           bench::ScaledInstances(3)};
  const int sizes[] = {15, 20, 23};
  for (int i = 0; i < 3; ++i) {
    WorkloadSpec spec;
    spec.topology = Topology::kStar;
    spec.num_relations = sizes[i];
    spec.num_instances = instances[i];
    spec.ordered = true;
    bench::RunAndPrint(ctx, spec, algos, bench::BudgetMb(64),
                       /*quality=*/true, /*overheads=*/false, &json);
  }
  return 0;
}
