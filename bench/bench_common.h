#ifndef SDPOPT_BENCH_BENCH_COMMON_H_
#define SDPOPT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "catalog/catalog.h"
#include "harness/experiment.h"
#include "metrics/quality.h"
#include "optimizer/optimizer_types.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

// Git revision baked in by bench/CMakeLists.txt at configure time.
#ifndef SDP_GIT_SHA
#define SDP_GIT_SHA "unknown"
#endif
// Nonzero when the tree had uncommitted changes at configure time, so
// numbers from a dirty tree are distinguishable from reproducible ones.
#ifndef SDP_GIT_DIRTY
#define SDP_GIT_DIRTY 0
#endif

namespace sdp::bench {

// Environment knobs shared by every table-reproduction bench:
//   SDP_BENCH_INSTANCES : scales per-workload instance counts (default 1x
//                         of each bench's built-in count; value is a
//                         multiplier in percent, e.g. 300 = 3x).
//   SDP_BENCH_BUDGET_MB : overrides the optimizer memory budget.
//
// The default budget is 64 MB.  The paper ran on 1 GB machines with
// PostgreSQL's heavyweight Path/RelOptInfo structures (~1-2 KB per memo
// entry); our entries are ~20x leaner, so 64 MB reproduces the paper's
// feasibility frontier (DP dies at star-20, IDP(7) at star-23, SDP scales
// on) at the same query sizes.
inline int ScaledInstances(int base) {
  const char* env = std::getenv("SDP_BENCH_INSTANCES");
  if (env == nullptr) return base;
  const double pct = std::atof(env);
  if (pct <= 0) return base;
  const int scaled = static_cast<int>(base * pct / 100.0 + 0.5);
  return scaled < 1 ? 1 : scaled;
}

inline OptimizerOptions BudgetMb(double default_mb) {
  const char* env = std::getenv("SDP_BENCH_BUDGET_MB");
  const double mb = env != nullptr && std::atof(env) > 0 ? std::atof(env)
                                                         : default_mb;
  OptimizerOptions opts;
  opts.memory_budget_bytes = static_cast<size_t>(mb * 1024 * 1024);
  return opts;
}

struct PaperContext {
  Catalog catalog;
  StatsCatalog stats;
};

// The paper's 25-relation schema (Section 3.1) with ANALYZE-style stats.
inline PaperContext MakePaperContext() {
  PaperContext ctx;
  ctx.catalog = MakeSyntheticCatalog(SchemaConfig{});
  ctx.stats = SynthesizeStats(ctx.catalog);
  return ctx;
}

inline void PrintHeader(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("==============================================================\n");
}

// Machine-readable bench results.  Every table/figure bench constructs one
// from its (argc, argv); when `--json <path>` (or `--json=path`) is
// present, the collected ExperimentReports are written as one JSON document
// when the object goes out of scope.  Without the flag it is inert, so the
// printed tables stay the benches' primary output.
class BenchJson {
 public:
  BenchJson(int argc, char** argv, std::string bench_id)
      : bench_id_(std::move(bench_id)) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        path_ = argv[i + 1];
        ++i;
      } else if (arg.rfind("--json=", 0) == 0) {
        path_ = arg.substr(7);
      }
    }
  }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  bool enabled() const { return !path_.empty(); }

  void Add(const WorkloadSpec& spec, const OptimizerOptions& options,
           const ExperimentReport& report) {
    if (!enabled()) return;
    char buf[256];
    if (num_workloads_++ > 0) body_ += ",";
    std::snprintf(buf, sizeof(buf),
                  "\n  {\"name\":\"%s\",\"seed\":%llu,\"instances\":%d,"
                  "\"budget_mb\":%.3f,\"reference\":\"%s\",\n"
                  "   \"algorithms\":[",
                  report.workload_name.c_str(),
                  static_cast<unsigned long long>(spec.seed),
                  spec.num_instances,
                  static_cast<double>(options.memory_budget_bytes) /
                      (1024.0 * 1024.0),
                  report.reference_name.c_str());
    body_ += buf;
    for (size_t i = 0; i < report.outcomes.size(); ++i) {
      const AlgorithmOutcome& o = report.outcomes[i];
      std::snprintf(
          buf, sizeof(buf),
          "%s\n    {\"name\":\"%s\",\"attempted\":%d,\"feasible\":%d,"
          "\"rho\":%.6g,\"worst\":%.6g,",
          i > 0 ? "," : "", o.name.c_str(), o.attempted, o.feasible,
          o.quality.Rho(), o.quality.worst);
      body_ += buf;
      std::snprintf(
          buf, sizeof(buf),
          "\"pct_ideal\":%.2f,\"pct_good\":%.2f,\"pct_acceptable\":%.2f,"
          "\"pct_bad\":%.2f,",
          o.quality.Percent(QualityClass::kIdeal),
          o.quality.Percent(QualityClass::kGood),
          o.quality.Percent(QualityClass::kAcceptable),
          o.quality.Percent(QualityClass::kBad));
      body_ += buf;
      std::snprintf(buf, sizeof(buf),
                    "\"avg_plans_costed\":%.6g,\"avg_jcrs\":%.6g,"
                    "\"avg_seconds\":%.6g,\"avg_peak_mb\":%.6g}",
                    o.AvgPlansCosted(), o.AvgJcrs(), o.AvgSeconds(),
                    o.AvgPeakMb());
      body_ += buf;
    }
    body_ += "]}";
  }

  // Escape hatch for benches whose results are not ExperimentReports
  // (worked examples, scaleup searches, ablations): appends one pre-formed
  // JSON object to the "workloads" array.
  void AddRaw(const std::string& json_object) {
    if (!enabled()) return;
    if (num_workloads_++ > 0) body_ += ",";
    body_ += "\n  ";
    body_ += json_object;
  }

  ~BenchJson() {
    if (!enabled()) return;
    FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f,
                 "{\"bench\":\"%s\",\"git_sha\":\"%s\",\"git_dirty\":%s,"
                 "\"workloads\":[%s\n]}\n",
                 bench_id_.c_str(), SDP_GIT_SHA,
                 SDP_GIT_DIRTY ? "true" : "false", body_.c_str());
    std::fclose(f);
  }

 private:
  std::string bench_id_;
  std::string path_;
  std::string body_;
  int num_workloads_ = 0;
};

// Runs one workload through the given algorithms and prints both paper-style
// tables.  When `json` is non-null the report is also recorded there.
inline ExperimentReport RunAndPrint(const PaperContext& ctx,
                                    const WorkloadSpec& spec,
                                    const std::vector<AlgorithmSpec>& algos,
                                    const OptimizerOptions& options,
                                    bool quality = true,
                                    bool overheads = true,
                                    BenchJson* json = nullptr);

}  // namespace sdp::bench

#include <iostream>

namespace sdp::bench {

inline ExperimentReport RunAndPrint(const PaperContext& ctx,
                                    const WorkloadSpec& spec,
                                    const std::vector<AlgorithmSpec>& algos,
                                    const OptimizerOptions& options,
                                    bool quality, bool overheads,
                                    BenchJson* json) {
  const std::vector<Query> queries = GenerateWorkload(ctx.catalog, spec);
  const ExperimentReport report = RunExperiment(
      queries, ctx.catalog, ctx.stats, algos, options, spec.Name());
  if (quality) {
    PrintQualityTable(std::cout, report);
    std::cout << "\n";
  }
  if (overheads) {
    PrintOverheadTable(std::cout, report);
    std::cout << "\n";
  }
  if (json != nullptr) json->Add(spec, options, report);
  return report;
}

}  // namespace sdp::bench

#endif  // SDPOPT_BENCH_BENCH_COMMON_H_
