#ifndef SDPOPT_BENCH_BENCH_COMMON_H_
#define SDPOPT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "catalog/catalog.h"
#include "harness/experiment.h"
#include "optimizer/optimizer_types.h"
#include "stats/column_stats.h"
#include "workload/workload.h"

namespace sdp::bench {

// Environment knobs shared by every table-reproduction bench:
//   SDP_BENCH_INSTANCES : scales per-workload instance counts (default 1x
//                         of each bench's built-in count; value is a
//                         multiplier in percent, e.g. 300 = 3x).
//   SDP_BENCH_BUDGET_MB : overrides the optimizer memory budget.
//
// The default budget is 64 MB.  The paper ran on 1 GB machines with
// PostgreSQL's heavyweight Path/RelOptInfo structures (~1-2 KB per memo
// entry); our entries are ~20x leaner, so 64 MB reproduces the paper's
// feasibility frontier (DP dies at star-20, IDP(7) at star-23, SDP scales
// on) at the same query sizes.
inline int ScaledInstances(int base) {
  const char* env = std::getenv("SDP_BENCH_INSTANCES");
  if (env == nullptr) return base;
  const double pct = std::atof(env);
  if (pct <= 0) return base;
  const int scaled = static_cast<int>(base * pct / 100.0 + 0.5);
  return scaled < 1 ? 1 : scaled;
}

inline OptimizerOptions BudgetMb(double default_mb) {
  const char* env = std::getenv("SDP_BENCH_BUDGET_MB");
  const double mb = env != nullptr && std::atof(env) > 0 ? std::atof(env)
                                                         : default_mb;
  OptimizerOptions opts;
  opts.memory_budget_bytes = static_cast<size_t>(mb * 1024 * 1024);
  return opts;
}

struct PaperContext {
  Catalog catalog;
  StatsCatalog stats;
};

// The paper's 25-relation schema (Section 3.1) with ANALYZE-style stats.
inline PaperContext MakePaperContext() {
  PaperContext ctx;
  ctx.catalog = MakeSyntheticCatalog(SchemaConfig{});
  ctx.stats = SynthesizeStats(ctx.catalog);
  return ctx;
}

inline void PrintHeader(const char* id, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("==============================================================\n");
}

// Runs one workload through the given algorithms and prints both paper-style
// tables.
inline ExperimentReport RunAndPrint(const PaperContext& ctx,
                                    const WorkloadSpec& spec,
                                    const std::vector<AlgorithmSpec>& algos,
                                    const OptimizerOptions& options,
                                    bool quality = true,
                                    bool overheads = true);

}  // namespace sdp::bench

#include <iostream>

namespace sdp::bench {

inline ExperimentReport RunAndPrint(const PaperContext& ctx,
                                    const WorkloadSpec& spec,
                                    const std::vector<AlgorithmSpec>& algos,
                                    const OptimizerOptions& options,
                                    bool quality, bool overheads) {
  const std::vector<Query> queries = GenerateWorkload(ctx.catalog, spec);
  const ExperimentReport report = RunExperiment(
      queries, ctx.catalog, ctx.stats, algos, options, spec.Name());
  if (quality) {
    PrintQualityTable(std::cout, report);
    std::cout << "\n";
  }
  if (overheads) {
    PrintOverheadTable(std::cout, report);
    std::cout << "\n";
  }
  return report;
}

}  // namespace sdp::bench

#endif  // SDPOPT_BENCH_BENCH_COMMON_H_
