// Reproduces Table 1.3: plan quality on the scaled Star-Chain-23 join
// graph, where DP is infeasible and SDP serves as the reference.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace sdp;
  bench::BenchJson json(argc, argv, "table_1_3");
  bench::PrintHeader("Table 1.3", "Star-Chain-23 plan quality (DP infeasible)");
  bench::PaperContext ctx = bench::MakePaperContext();

  // 128 MB: DP (>500 MB here) stays infeasible while IDP(7) (~75 MB)
  // completes, matching the paper's Table 1.3/1.4 feasibility pattern on
  // its 1 GB machine (DP *, IDP 460 MB).
  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 23;
  spec.num_instances = bench::ScaledInstances(5);
  bench::RunAndPrint(ctx, spec,
                     {AlgorithmSpec::DP(), AlgorithmSpec::IDP(7),
                      AlgorithmSpec::SDP()},
                     bench::BudgetMb(128), /*quality=*/true,
                     /*overheads=*/false, &json);
  return 0;
}
