// Supplementary: the non-DP alternatives the paper's introduction cites
// (greedy and randomized search) on the headline workload, completing the
// quality/effort landscape around Figure 1.2's knee.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/sdp.h"
#include "optimizer/dp.h"
#include "optimizer/heuristic_baselines.h"
#include "optimizer/idp.h"

int main(int argc, char** argv) {
  using namespace sdp;
  bench::BenchJson json(argc, argv, "extra_baselines");
  bench::PrintHeader("Extra baselines",
                     "GOO and randomized II vs IDP/SDP (Star-Chain-15)");
  bench::PaperContext ctx = bench::MakePaperContext();

  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 15;
  spec.num_instances = bench::ScaledInstances(25);
  const std::vector<Query> queries = GenerateWorkload(ctx.catalog, spec);

  struct Row {
    const char* name;
    QualityDistribution quality;
    double plans = 0, seconds = 0;
  };
  Row rows[] = {{"GOO"}, {"Randomized"}, {"IDP(7)"}, {"IDP2(7)"}, {"SDP"}};
  int counted = 0;
  for (const Query& q : queries) {
    CostModel cost(ctx.catalog, ctx.stats, q.graph);
    const OptimizeResult dp = OptimizeDP(q, cost);
    if (!dp.feasible) continue;
    const OptimizeResult results[] = {
        OptimizeGOO(q, cost), OptimizeRandomized(q, cost),
        OptimizeIDP(q, cost, IdpConfig{7}), OptimizeIDP2(q, cost, IdpConfig{7}),
        OptimizeSDP(q, cost)};
    bool all = true;
    for (const OptimizeResult& r : results) all = all && r.feasible;
    if (!all) continue;
    ++counted;
    for (int i = 0; i < 5; ++i) {
      rows[i].quality.Add(results[i].cost / dp.cost);
      rows[i].plans += static_cast<double>(results[i].counters.plans_costed);
      rows[i].seconds += results[i].elapsed_seconds;
    }
  }
  std::printf("Star-Chain-15, %d instances (ratios vs DP optimum)\n",
              counted);
  std::printf("  %-12s %8s %8s %8s %8s %14s %10s\n", "technique", "I%", "G%",
              "A+B%", "rho", "plans costed", "time(ms)");
  for (const Row& r : rows) {
    std::printf("  %-12s %8.1f %8.1f %8.1f %8.3f %14.0f %10.2f\n", r.name,
                r.quality.Percent(QualityClass::kIdeal),
                r.quality.Percent(QualityClass::kGood),
                r.quality.Percent(QualityClass::kAcceptable) +
                    r.quality.Percent(QualityClass::kBad),
                r.quality.Rho(), r.plans / counted,
                r.seconds / counted * 1e3);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"rho\":%.6g,\"pct_ideal\":%.2f,"
                  "\"avg_plans_costed\":%.6g,\"avg_seconds\":%.6g}",
                  r.name, r.quality.Rho(),
                  r.quality.Percent(QualityClass::kIdeal), r.plans / counted,
                  r.seconds / counted);
    json.AddRaw(buf);
  }
  std::printf("\nExpected: GOO/Randomized are cheapest but weakest; SDP "
              "dominates the whole\nfield on quality at IDP-or-lower "
              "effort.\n");
  return 0;
}
