#ifndef SDPOPT_WORKLOAD_WORKLOAD_H_
#define SDPOPT_WORKLOAD_WORKLOAD_H_

#include <stdint.h>

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "query/join_graph.h"
#include "query/topology.h"

namespace sdp {

// One experiment workload: many instances of a topology, each instance
// binding a different combination of catalog tables to the graph positions
// (the paper generates instance spaces like C(24,14) for Star-15 and
// optimizes each member; we deterministically sample that space).
struct WorkloadSpec {
  Topology topology = Topology::kStar;
  int num_relations = 15;
  int num_instances = 100;
  // Generate the "ordered variant": ORDER BY a randomly chosen join column.
  bool ordered = false;
  uint64_t seed = 7;

  std::string Name() const;
};

// Deterministically generates the workload's query instances.
//
// Conventions mirroring the paper:
//  * Star and Star-Chain hubs are bound to the largest catalog relation
//    (fact-table convention); the remaining positions draw a random
//    combination of the other tables.
//  * Chain / cycle / clique instances draw a random combination of all
//    tables, randomly permuted across positions.
//  * Ordered variants request ORDER BY on a random join column of the
//    generated graph.
std::vector<Query> GenerateWorkload(const Catalog& catalog,
                                    const WorkloadSpec& spec);

}  // namespace sdp

#endif  // SDPOPT_WORKLOAD_WORKLOAD_H_
