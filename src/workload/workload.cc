#include "workload/workload.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace sdp {

std::string WorkloadSpec::Name() const {
  std::string name = TopologyName(topology);
  name += "-" + std::to_string(num_relations);
  if (ordered) name += " (ordered)";
  return name;
}

namespace {

// Binds tables to graph positions for one instance.
std::vector<int> PickTables(const Catalog& catalog, const WorkloadSpec& spec,
                            Rng* rng) {
  const int n = spec.num_relations;
  const bool star_like = spec.topology == Topology::kStar ||
                         spec.topology == Topology::kStarChain ||
                         spec.topology == Topology::kSnowflake;
  std::vector<int> tables;
  if (star_like) {
    // Hub = largest relation; spokes/chain sampled from the rest.
    const std::vector<int> by_size = catalog.TablesByRowCountDesc();
    const int hub = by_size.front();
    SDP_CHECK(catalog.num_tables() - 1 >= n - 1);
    std::vector<int> others;
    others.reserve(catalog.num_tables() - 1);
    for (int t = 0; t < catalog.num_tables(); ++t) {
      if (t != hub) others.push_back(t);
    }
    std::vector<int> chosen =
        rng->SampleWithoutReplacement(static_cast<int>(others.size()), n - 1);
    tables.push_back(hub);
    for (int idx : chosen) tables.push_back(others[idx]);
    // Permute the non-hub positions so position does not correlate with
    // table id.
    std::vector<int> tail(tables.begin() + 1, tables.end());
    rng->Shuffle(&tail);
    std::copy(tail.begin(), tail.end(), tables.begin() + 1);
  } else {
    SDP_CHECK(catalog.num_tables() >= n);
    std::vector<int> chosen =
        rng->SampleWithoutReplacement(catalog.num_tables(), n);
    tables = chosen;
    rng->Shuffle(&tables);
  }
  return tables;
}

}  // namespace

std::vector<Query> GenerateWorkload(const Catalog& catalog,
                                    const WorkloadSpec& spec) {
  SDP_CHECK(spec.num_relations >= 2);
  SDP_CHECK(spec.num_instances >= 1);
  Rng master(spec.seed ^ (static_cast<uint64_t>(spec.topology) << 32) ^
             (static_cast<uint64_t>(spec.num_relations) << 16));
  std::vector<Query> queries;
  queries.reserve(spec.num_instances);
  for (int i = 0; i < spec.num_instances; ++i) {
    Rng rng = master.Fork();
    const std::vector<int> tables = PickTables(catalog, spec, &rng);
    Query q{MakeTopologyGraph(spec.topology, catalog, tables), std::nullopt};
    if (spec.ordered) {
      // ORDER BY a random join column of a random edge.
      const auto& edges = q.graph.edges();
      SDP_CHECK(!edges.empty());
      const JoinEdge& e =
          edges[rng.NextBounded(static_cast<uint64_t>(edges.size()))];
      q.order_by =
          OrderRequirement{rng.NextBounded(2) == 0 ? e.left : e.right};
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace sdp
