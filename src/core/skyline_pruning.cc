#include "core/skyline_pruning.h"

#include <stddef.h>

#include <array>

#include "skyline/skyline.h"

namespace sdp {

const char* SkylineVariantName(SkylineVariant v) {
  switch (v) {
    case SkylineVariant::kPairwiseUnion:
      return "pairwise-union (Option 2)";
    case SkylineVariant::kFullVector:
      return "full-vector (Option 1)";
    case SkylineVariant::kStrong:
      return "strong (2-dominant)";
  }
  return "?";
}

std::vector<PairwiseSkylineMembership> PairwiseSkylineReport(
    const std::vector<JcrFeatures>& features) {
  const size_t n = features.size();
  std::vector<std::array<double, 2>> rc(n), cs(n), rs(n);
  for (size_t i = 0; i < n; ++i) {
    rc[i] = {features[i].rows, features[i].cost};
    cs[i] = {features[i].cost, features[i].sel};
    rs[i] = {features[i].rows, features[i].sel};
  }
  const std::vector<char> in_rc = Skyline2D(rc);
  const std::vector<char> in_cs = Skyline2D(cs);
  const std::vector<char> in_rs = Skyline2D(rs);
  std::vector<PairwiseSkylineMembership> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i].rc = in_rc[i] != 0;
    out[i].cs = in_cs[i] != 0;
    out[i].rs = in_rs[i] != 0;
  }
  return out;
}

std::vector<char> SkylineSurvivors(const std::vector<JcrFeatures>& features,
                                   SkylineVariant variant) {
  const size_t n = features.size();
  if (variant == SkylineVariant::kPairwiseUnion) {
    std::vector<char> out(n, 0);
    const auto report = PairwiseSkylineReport(features);
    for (size_t i = 0; i < n; ++i) out[i] = report[i].survives() ? 1 : 0;
    return out;
  }
  std::vector<std::vector<double>> points(n);
  for (size_t i = 0; i < n; ++i) {
    points[i] = {features[i].rows, features[i].cost, features[i].sel};
  }
  if (variant == SkylineVariant::kFullVector) return SkylineBNL(points);
  return KDominantSkyline(points, /*k=*/2);
}

}  // namespace sdp
