#include "core/sdp.h"

#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "cost/cardinality.h"
#include "optimizer/enumerator.h"
#include "optimizer/memo.h"
#include "optimizer/plan_pool.h"
#include "optimizer/run_helpers.h"

namespace sdp {

namespace {

JcrFeatures FeaturesOf(const MemoEntry* e) {
  JcrFeatures f;
  f.rows = e->rows;
  f.cost = e->CheapestCost();
  f.sel = e->sel;
  return f;
}

// Applies one skyline partition: marks `failed` for members that lose and
// `member` for all, or `rescued` when in rescue mode.
void ApplyPartition(const std::vector<MemoEntry*>& partition,
                    SkylineVariant variant, bool rescue_mode,
                    std::unordered_map<const MemoEntry*, int>* state) {
  if (partition.empty()) return;
  std::vector<JcrFeatures> features;
  features.reserve(partition.size());
  for (const MemoEntry* e : partition) features.push_back(FeaturesOf(e));
  const std::vector<char> survivors = SkylineSurvivors(features, variant);
  for (size_t i = 0; i < partition.size(); ++i) {
    int& s = (*state)[partition[i]];
    if (rescue_mode) {
      if (survivors[i]) s |= 4;  // rescued
    } else {
      s |= 1;  // member of some partition
      if (!survivors[i]) s |= 2;  // failed a partition
    }
  }
}

// Implements the per-level pruning filter of Section 2.1.3.
class SdpPruner {
 public:
  SdpPruner(const JoinGraph& graph, const SdpConfig& config,
            const OrderingSpace& space)
      : graph_(&graph), config_(&config), space_(&space) {
    for (int r = 0; r < graph.num_relations(); ++r) {
      if (graph.Degree(r) >= config.hub_degree) {
        root_hubs_.push_back(r);
      }
    }
  }

  // Prunes (marks) level-`level` entries of `memo`.  Returns the number of
  // JCRs pruned.
  int PruneLevel(Memo* memo, int level) {
    std::vector<MemoEntry*> jcrs;
    for (MemoEntry* e : memo->EntriesWithUnitCount(level)) {
      if (!e->pruned) jcrs.push_back(e);
    }
    if (jcrs.size() <= 1) return 0;

    std::unordered_map<const MemoEntry*, int> state;

    if (!config_->localized) {
      // Global ablation: one partition holding the entire level.
      ApplyPartition(jcrs, config_->skyline, /*rescue_mode=*/false, &state);
      const int pruned = CommitPrunes(jcrs, state);
      return pruned - EnsureLevelNonEmpty(jcrs);
    }

    // Hubs of the current (contracted) join graph: previous-level survivors
    // joined with >= hub_degree outside relations.  For level 2 these are
    // the base relations themselves (the root hubs).
    std::vector<RelSet> hub_parents;
    for (MemoEntry* h : memo->EntriesWithUnitCount(level - 1)) {
      if (!h->pruned &&
          graph_->Neighbors(h->rels).Count() >= config_->hub_degree) {
        hub_parents.push_back(h->rels);
      }
    }
    if (hub_parents.empty()) return 0;  // Pruning only where hubs exist.

    // PruneGroup: JCRs containing a complete previous-level hub.  The rest
    // is the FreeGroup and survives unconditionally.
    std::vector<MemoEntry*> prune_group;
    for (MemoEntry* e : jcrs) {
      for (const RelSet& h : hub_parents) {
        if (h.IsSubsetOf(e->rels)) {
          prune_group.push_back(e);
          break;
        }
      }
    }
    if (prune_group.size() <= 1) return 0;

    // Partition the PruneGroup and skyline each partition.  A JCR appearing
    // in several partitions must survive in all of them.
    if (config_->partitioning == SdpConfig::Partitioning::kRootHub) {
      for (int hub : root_hubs_) {
        std::vector<MemoEntry*> partition;
        for (MemoEntry* e : prune_group) {
          if (e->rels.Contains(hub)) partition.push_back(e);
        }
        ApplyPartition(partition, config_->skyline, /*rescue_mode=*/false,
                       &state);
      }
    } else {
      for (const RelSet& h : hub_parents) {
        std::vector<MemoEntry*> partition;
        for (MemoEntry* e : prune_group) {
          if (h.IsSubsetOf(e->rels)) partition.push_back(e);
        }
        ApplyPartition(partition, config_->skyline, /*rescue_mode=*/false,
                       &state);
      }
    }

    // Interesting-order rescue partitions (Section 2.1.4): for each
    // relation carrying the query's requested join-column order, the JCRs
    // *not* containing it get an extra chance, so survivors can still be
    // combined with that relation's ordered plans later.
    if (config_->order_partitions && space_->RequiredId() >= 0 &&
        space_->RequiredId() < graph_->num_equiv_classes()) {
      const RelSet order_rels = graph_->EquivClassRels(space_->RequiredId());
      order_rels.ForEach([&](int rel) {
        std::vector<MemoEntry*> partition;
        for (MemoEntry* e : prune_group) {
          if (!e->rels.Contains(rel)) partition.push_back(e);
        }
        ApplyPartition(partition, config_->skyline, /*rescue_mode=*/true,
                       &state);
      });
    }

    const int pruned = CommitPrunes(prune_group, state);
    return pruned - EnsureLevelNonEmpty(jcrs);
  }

 private:
  // Defensive guard: pruning must never eliminate a whole level, or the
  // search could not reach the full relation set.  The pairwise-union
  // skyline cannot empty a level (the lexicographic-minimum-cost JCR
  // survives every RC skyline it appears in), but k-dominance is cyclic:
  // the strong variant can eliminate everything.  Rescue the cheapest JCR
  // in that case.  Returns 1 if a rescue happened.
  static int EnsureLevelNonEmpty(const std::vector<MemoEntry*>& jcrs) {
    MemoEntry* cheapest = nullptr;
    for (MemoEntry* e : jcrs) {
      if (!e->pruned) return 0;
      if (cheapest == nullptr || e->CheapestCost() < cheapest->CheapestCost()) {
        cheapest = e;
      }
    }
    if (cheapest == nullptr) return 0;
    cheapest->pruned = false;
    return 1;
  }
  static int CommitPrunes(const std::vector<MemoEntry*>& candidates,
                          const std::unordered_map<const MemoEntry*, int>&
                              state) {
    int pruned = 0;
    for (MemoEntry* e : candidates) {
      auto it = state.find(e);
      if (it == state.end()) continue;  // In no partition: survives.
      const int s = it->second;
      const bool member = (s & 1) != 0;
      const bool failed = (s & 2) != 0;
      const bool rescued = (s & 4) != 0;
      if (member && failed && !rescued) {
        e->pruned = true;
        ++pruned;
      }
    }
    return pruned;
  }

  const JoinGraph* graph_;
  const SdpConfig* config_;
  const OrderingSpace* space_;
  std::vector<int> root_hubs_;
};

}  // namespace

OptimizeResult OptimizeSDP(const Query& query, const CostModel& cost,
                           const SdpConfig& config,
                           const OptimizerOptions& options) {
  const JoinGraph& graph = query.graph;
  SDP_CHECK(graph.IsConnected(graph.AllRelations()));

  Stopwatch timer;
  MemoryGauge gauge;
  PlanPool pool(&gauge);
  Memo memo(&gauge);
  CardinalityEstimator card(graph, cost, &gauge);
  std::optional<ColumnRef> order_col;
  if (query.order_by.has_value()) order_col = query.order_by->column;
  OrderingSpace space(graph, order_col);
  SearchCounters counters;
  JoinEnumerator enumerator(graph, cost, space, &card, &memo, &pool, &gauge,
                            options, &counters);
  SdpPruner pruner(graph, config, space);

  enumerator.InstallBaseRelationLeaves();
  const int n = graph.num_relations();
  for (int level = 2; level <= n; ++level) {
    if (!enumerator.RunLevel(level)) {
      return MakeOptimizeResult("SDP", nullptr, counters, timer.Seconds(),
                                gauge);
    }
    // Levels N-2 and N-1 (and N) always run pure DP: two relations from
    // completion, no hubs can remain (Section 2.1.2).
    if (level <= n - 3) {
      if (pruner.PruneLevel(&memo, level) > 0) {
        // Recycle the pruned JCRs entirely -- plans and memo slots.
        // Nothing references plans of the level just completed, and a
        // pruned relation set can never be re-targeted (its level is
        // done); this is the engine-level analogue of PostgreSQL
        // pfree-ing discarded paths and rels.
        std::vector<MemoEntry*> doomed;
        for (MemoEntry* e : memo.EntriesWithUnitCount(level)) {
          if (e->pruned) doomed.push_back(e);
        }
        for (MemoEntry* e : doomed) {
          for (const RankedPlan& rp : e->plans) {
            pool.FreeTopAndSorts(rp.plan);
          }
          memo.Erase(e);
        }
      }
    }
  }
  MemoEntry* full = memo.Find(graph.AllRelations());
  SDP_CHECK(full != nullptr);
  const PlanNode* plan = enumerator.FinalizeBestPlan(full);
  return MakeOptimizeResult("SDP", plan, counters, timer.Seconds(), gauge);
}

}  // namespace sdp
