#include "core/sdp.h"

#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "cost/cardinality.h"
#include "obs/prof/prof.h"
#include "optimizer/enumerator.h"
#include "optimizer/memo.h"
#include "optimizer/parallel_enum.h"
#include "optimizer/plan_pool.h"
#include "optimizer/run_helpers.h"
#include "trace/optimizer_trace.h"

namespace sdp {

namespace {

JcrFeatures FeaturesOf(const MemoEntry* e) {
  JcrFeatures f;
  f.rows = e->rows;
  f.cost = e->CheapestCost();
  f.sel = e->sel;
  return f;
}

// Trace context for one skyline partition; `tracer` null means no event.
struct PartitionTrace {
  Tracer* tracer = nullptr;
  int level = 0;
  const char* kind = "global";
  int hub = -1;
  uint64_t hub_rels = 0;
};

// Applies one skyline partition: marks `failed` for members that lose and
// `member` for all, or `rescued` when in rescue mode.
void ApplyPartition(const std::vector<MemoEntry*>& partition,
                    SkylineVariant variant, bool rescue_mode,
                    std::unordered_map<const MemoEntry*, int>* state,
                    const PartitionTrace& trace, int* partitions_applied) {
  if (partition.empty()) return;
  std::vector<JcrFeatures> features;
  features.reserve(partition.size());
  for (const MemoEntry* e : partition) features.push_back(FeaturesOf(e));
  const std::vector<char> survivors = SkylineSurvivors(features, variant);
  for (size_t i = 0; i < partition.size(); ++i) {
    int& s = (*state)[partition[i]];
    if (rescue_mode) {
      if (survivors[i]) s |= 4;  // rescued
    } else {
      s |= 1;  // member of some partition
      if (!survivors[i]) s |= 2;  // failed a partition
    }
  }
  ++(*partitions_applied);
  if (trace.tracer != nullptr) {
    TracePartition e;
    e.level = trace.level;
    e.kind = trace.kind;
    e.hub = trace.hub;
    e.hub_rels = trace.hub_rels;
    // Under the paper's pairwise-union variant, also record which of the
    // three 2-D skylines saved each survivor (Table 2.2's presentation).
    std::vector<PairwiseSkylineMembership> membership;
    if (variant == SkylineVariant::kPairwiseUnion) {
      membership = PairwiseSkylineReport(features);
    }
    e.members.reserve(partition.size());
    for (size_t i = 0; i < partition.size(); ++i) {
      TracePartitionMember m;
      m.rels = partition[i]->rels.bits();
      m.rows = features[i].rows;
      m.cost = features[i].cost;
      m.sel = features[i].sel;
      m.survived = survivors[i] != 0;
      if (!membership.empty()) {
        m.in_rc = membership[i].rc;
        m.in_cs = membership[i].cs;
        m.in_rs = membership[i].rs;
      }
      e.members.push_back(m);
    }
    trace.tracer->OnPartition(e);
  }
}

// Implements the per-level pruning filter of Section 2.1.3.
class SdpPruner {
 public:
  SdpPruner(const JoinGraph& graph, const SdpConfig& config,
            const OrderingSpace& space, Tracer* tracer,
            ResourceBudget* budget)
      : graph_(&graph),
        config_(&config),
        space_(&space),
        tracer_(tracer),
        budget_(budget) {
    for (int r = 0; r < graph.num_relations(); ++r) {
      if (graph.Degree(r) >= config.hub_degree) {
        root_hubs_.push_back(r);
      }
    }
  }

  // Prunes (marks) level-`level` entries of `memo`.  Returns the number of
  // JCRs pruned.
  int PruneLevel(Memo* memo, int level) {
    ProfPhase phase(ProfPhaseKind::kPrune);
    TracePruneLevel summary;
    summary.level = level;
    const int result = PruneLevelImpl(memo, level, &summary);
    if (tracer_ != nullptr) tracer_->OnPruneLevel(summary);
    return result;
  }

 private:
  // Cooperative budget poll between partitions.  On a trip the pruner
  // bails without committing: partially-marked state is discarded and the
  // driver observes the latched budget at its next CheckBudget().
  bool Tripped() {
    return budget_ != nullptr &&
           budget_->CheckPoint() != OptStatusCode::kOk;
  }

  int PruneLevelImpl(Memo* memo, int level, TracePruneLevel* summary) {
    std::vector<MemoEntry*> jcrs;
    for (MemoEntry* e : memo->EntriesWithUnitCount(level)) {
      if (!e->pruned) jcrs.push_back(e);
    }
    summary->jcrs = static_cast<int>(jcrs.size());
    summary->free_group = summary->jcrs;
    if (jcrs.size() <= 1) return 0;

    std::unordered_map<const MemoEntry*, int> state;
    PartitionTrace trace;
    trace.tracer = tracer_;
    trace.level = level;

    if (!config_->localized) {
      // Global ablation: one partition holding the entire level.
      trace.kind = "global";
      summary->prune_group = summary->jcrs;
      summary->free_group = 0;
      ApplyPartition(jcrs, config_->skyline, /*rescue_mode=*/false, &state,
                     trace, &summary->partitions);
      const int pruned = CommitPrunes(jcrs, state);
      const int rescued = EnsureLevelNonEmpty(jcrs);
      summary->pruned = pruned - rescued;
      summary->guard_rescue = rescued > 0;
      return summary->pruned;
    }

    // Hubs of the current (contracted) join graph: previous-level survivors
    // joined with >= hub_degree outside relations.  For level 2 these are
    // the base relations themselves (the root hubs).
    std::vector<RelSet> hub_parents;
    for (MemoEntry* h : memo->EntriesWithUnitCount(level - 1)) {
      if (!h->pruned &&
          graph_->Neighbors(h->rels).Count() >= config_->hub_degree) {
        hub_parents.push_back(h->rels);
      }
    }
    summary->hub_parents = static_cast<int>(hub_parents.size());
    if (hub_parents.empty()) return 0;  // Pruning only where hubs exist.

    // PruneGroup: JCRs containing a complete previous-level hub.  The rest
    // is the FreeGroup and survives unconditionally.
    std::vector<MemoEntry*> prune_group;
    for (MemoEntry* e : jcrs) {
      for (const RelSet& h : hub_parents) {
        if (h.IsSubsetOf(e->rels)) {
          prune_group.push_back(e);
          break;
        }
      }
    }
    summary->prune_group = static_cast<int>(prune_group.size());
    summary->free_group = summary->jcrs - summary->prune_group;
    if (prune_group.size() <= 1) return 0;

    // Partition the PruneGroup and skyline each partition.  A JCR appearing
    // in several partitions must survive in all of them.
    if (config_->partitioning == SdpConfig::Partitioning::kRootHub) {
      trace.kind = "root-hub";
      for (int hub : root_hubs_) {
        if (Tripped()) return 0;
        std::vector<MemoEntry*> partition;
        for (MemoEntry* e : prune_group) {
          if (e->rels.Contains(hub)) partition.push_back(e);
        }
        trace.hub = hub;
        trace.hub_rels = RelSet::Single(hub).bits();
        ApplyPartition(partition, config_->skyline, /*rescue_mode=*/false,
                       &state, trace, &summary->partitions);
      }
    } else {
      trace.kind = "parent-hub";
      trace.hub = -1;
      for (const RelSet& h : hub_parents) {
        if (Tripped()) return 0;
        std::vector<MemoEntry*> partition;
        for (MemoEntry* e : prune_group) {
          if (h.IsSubsetOf(e->rels)) partition.push_back(e);
        }
        trace.hub_rels = h.bits();
        ApplyPartition(partition, config_->skyline, /*rescue_mode=*/false,
                       &state, trace, &summary->partitions);
      }
    }

    // Interesting-order rescue partitions (Section 2.1.4): for each
    // relation carrying the query's requested join-column order, the JCRs
    // *not* containing it get an extra chance, so survivors can still be
    // combined with that relation's ordered plans later.
    if (config_->order_partitions && space_->RequiredId() >= 0 &&
        space_->RequiredId() < graph_->num_equiv_classes()) {
      const RelSet order_rels = graph_->EquivClassRels(space_->RequiredId());
      trace.kind = "order-rescue";
      order_rels.ForEach([&](int rel) {
        std::vector<MemoEntry*> partition;
        for (MemoEntry* e : prune_group) {
          if (!e->rels.Contains(rel)) partition.push_back(e);
        }
        trace.hub = rel;
        trace.hub_rels = RelSet::Single(rel).bits();
        ApplyPartition(partition, config_->skyline, /*rescue_mode=*/true,
                       &state, trace, &summary->partitions);
      });
    }

    const int pruned = CommitPrunes(prune_group, state);
    const int rescued = EnsureLevelNonEmpty(jcrs);
    summary->pruned = pruned - rescued;
    summary->guard_rescue = rescued > 0;
    return summary->pruned;
  }

  // Defensive guard: pruning must never eliminate a whole level, or the
  // search could not reach the full relation set.  The pairwise-union
  // skyline cannot empty a level (the lexicographic-minimum-cost JCR
  // survives every RC skyline it appears in), but k-dominance is cyclic:
  // the strong variant can eliminate everything.  Rescue the cheapest JCR
  // in that case.  Returns 1 if a rescue happened.
  static int EnsureLevelNonEmpty(const std::vector<MemoEntry*>& jcrs) {
    MemoEntry* cheapest = nullptr;
    for (MemoEntry* e : jcrs) {
      if (!e->pruned) return 0;
      if (cheapest == nullptr || e->CheapestCost() < cheapest->CheapestCost()) {
        cheapest = e;
      }
    }
    if (cheapest == nullptr) return 0;
    cheapest->pruned = false;
    return 1;
  }
  static int CommitPrunes(const std::vector<MemoEntry*>& candidates,
                          const std::unordered_map<const MemoEntry*, int>&
                              state) {
    int pruned = 0;
    for (MemoEntry* e : candidates) {
      auto it = state.find(e);
      if (it == state.end()) continue;  // In no partition: survives.
      const int s = it->second;
      const bool member = (s & 1) != 0;
      const bool failed = (s & 2) != 0;
      const bool rescued = (s & 4) != 0;
      if (member && failed && !rescued) {
        e->pruned = true;
        ++pruned;
      }
    }
    return pruned;
  }

  const JoinGraph* graph_;
  const SdpConfig* config_;
  const OrderingSpace* space_;
  Tracer* tracer_;
  ResourceBudget* budget_;
  std::vector<int> root_hubs_;
};

}  // namespace

OptimizeResult OptimizeSDP(const Query& query, const CostModel& cost,
                           const SdpConfig& config,
                           const OptimizerOptions& options) {
  const JoinGraph& graph = query.graph;
  SDP_CHECK(graph.IsConnected(graph.AllRelations()));

  Stopwatch timer;
  MemoryGauge gauge;
  PlanPool pool(&gauge);
  Memo memo(&gauge);
  CardinalityEstimator card(graph, cost, &gauge);
  std::optional<ColumnRef> order_col;
  if (query.order_by.has_value()) order_col = query.order_by->column;
  OrderingSpace space(graph, order_col);
  SearchCounters counters;
  OptimizerOptions run_options = options;
  IntraQueryWorkers intra(&run_options);
  if (run_options.enumerator == PlanEnumeratorKind::kGOO) {
    // The per-level pruning filter needs complete levels; GOO's greedy
    // merges do not produce them, so SDP falls back to DPsize.
    run_options.enumerator = PlanEnumeratorKind::kDPsize;
  }
  JoinEnumerator enumerator(graph, cost, space, &card, &memo, &pool, &gauge,
                            run_options, &counters);
  Tracer* const tracer = options.tracer;
  SdpPruner pruner(graph, config, space, tracer, options.budget);
  if (tracer != nullptr) {
    tracer->OnRunBegin(
        MakeTraceRunBegin("SDP", graph, cost, config.hub_degree));
  }

  {
    TraceLevelScope span(tracer, 0, 1, "leaves", counters, gauge);
    enumerator.InstallBaseRelationLeaves();
  }
  const int n = graph.num_relations();
  bool aborted = false;
  for (int level = 2; level <= n && !aborted; ++level) {
    // The span covers enumeration plus this level's pruning pass, so
    // partition and prune events nest inside it in the exported trace.
    TraceLevelScope span(tracer, 0, level, "level", counters, gauge);
    if (!enumerator.RunLevel(level)) {
      aborted = true;
      break;
    }
    // Levels N-2 and N-1 (and N) always run pure DP: two relations from
    // completion, no hubs can remain (Section 2.1.2).
    if (level <= n - 3) {
      if (pruner.PruneLevel(&memo, level) > 0) {
        // Recycle the pruned JCRs entirely -- plans and memo slots.
        // Nothing references plans of the level just completed, and a
        // pruned relation set can never be re-targeted (its level is
        // done); this is the engine-level analogue of PostgreSQL
        // pfree-ing discarded paths and rels.
        ProfPhase recycle_phase(ProfPhaseKind::kPrune);
        std::vector<MemoEntry*> doomed;
        for (MemoEntry* e : memo.EntriesWithUnitCount(level)) {
          if (e->pruned) doomed.push_back(e);
        }
        for (MemoEntry* e : doomed) {
          for (const RankedPlan& rp : e->plans) {
            pool.FreeTopAndSorts(rp.plan);
          }
          memo.Erase(e);
        }
      }
      // A budget trip inside the pruner leaves its marks uncommitted; pick
      // it up here so the abort carries the typed status.
      if (enumerator.CheckBudget()) {
        aborted = true;
        break;
      }
    }
  }
  if (aborted) {
    OptimizeResult result =
        MakeOptimizeResult("SDP", nullptr, counters, timer.Seconds(), gauge,
                           enumerator.abort_status());
    EmitTraceRunEnd(tracer, result);
    return result;
  }
  MemoEntry* full = memo.Find(graph.AllRelations());
  SDP_CHECK(full != nullptr);
  const PlanNode* plan = enumerator.FinalizeBestPlan(full);
  OptimizeResult result =
      MakeOptimizeResult("SDP", plan, counters, timer.Seconds(), gauge);
  EmitTraceRunEnd(tracer, result);
  return result;
}

}  // namespace sdp
