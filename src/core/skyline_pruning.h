#ifndef SDPOPT_CORE_SKYLINE_PRUNING_H_
#define SDPOPT_CORE_SKYLINE_PRUNING_H_

#include <vector>

namespace sdp {

// The SDP feature vector of a join-composite relation (Section 2.1.3):
// output rows R, cheapest plan cost C, and selectivity S (output rows over
// the product of base-relation cardinalities).  All three are minimized --
// the ideal JCR cheaply produces minimal output on the largest inputs.
struct JcrFeatures {
  double rows = 0;
  double cost = 0;
  double sel = 1;
};

// Which skyline function SDP applies within a partition.
enum class SkylineVariant {
  // Option 2 (the paper's choice): union of the three pairwise skylines on
  // (R,C), (C,S) and (R,S).  Strong pruning, same plan quality as Option 1.
  kPairwiseUnion,
  // Option 1: a single skyline on the full [R,C,S] vector.  High quality
  // but weak pruning (Table 2.3 ablation).
  kFullVector,
  // "Strong skyline" (k-dominant, k=2): the paper's future-work direction.
  kStrong,
};

const char* SkylineVariantName(SkylineVariant v);

// Per-JCR membership in each pairwise skyline; survives() is Option 2's
// disjunctive criterion.  This mirrors the paper's Table 2.2 presentation.
struct PairwiseSkylineMembership {
  bool rc = false;
  bool cs = false;
  bool rs = false;
  bool survives() const { return rc || cs || rs; }
};

std::vector<PairwiseSkylineMembership> PairwiseSkylineReport(
    const std::vector<JcrFeatures>& features);

// Survivor flags for a partition under the chosen variant.
std::vector<char> SkylineSurvivors(const std::vector<JcrFeatures>& features,
                                   SkylineVariant variant);

}  // namespace sdp

#endif  // SDPOPT_CORE_SKYLINE_PRUNING_H_
