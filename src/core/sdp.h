#ifndef SDPOPT_CORE_SDP_H_
#define SDPOPT_CORE_SDP_H_

#include "core/skyline_pruning.h"
#include "cost/cost_model.h"
#include "optimizer/optimizer_types.h"
#include "query/join_graph.h"

namespace sdp {

// Configuration of Skyline Dynamic Programming.  The defaults are the
// paper's headline configuration: localized pruning with Root-Hub
// partitioning, pairwise-union skylines, and interesting-order rescue
// partitions.  The alternatives exist for the paper's ablations
// (Tables 2.3 and 3.6) and future-work exploration.
struct SdpConfig {
  enum class Partitioning {
    // Partition the PruneGroup by the hubs of the *original* join graph
    // (the variant used for all of the paper's headline results).
    kRootHub,
    // Partition by the hub composites of the immediately previous level.
    kParentHub,
  };

  Partitioning partitioning = Partitioning::kRootHub;
  SkylineVariant skyline = SkylineVariant::kPairwiseUnion;

  // When false, the hub machinery is bypassed and the skyline prunes every
  // level's full JCR population (the "Global" ablation of Table 3.6).
  bool localized = true;

  // Rescue partitions protecting JCRs that could later exploit a
  // user-requested interesting order (Section 2.1.4).
  bool order_partitions = true;

  // A relation (or composite) is a hub when joined with at least this many
  // relations.
  int hub_degree = 3;
};

// Skyline Dynamic Programming (the paper's contribution).  Standard bushy
// DP with a localized pruning filter: after each intermediate level, JCRs
// that extend a hub are partitioned (Root-Hub or Parent-Hub) and reduced to
// their skyline on [Rows, Cost, Selectivity]; everything else retains full
// DP treatment.  Levels 1, N-2 and N-1 are always pure DP.
OptimizeResult OptimizeSDP(const Query& query, const CostModel& cost,
                           const SdpConfig& config = {},
                           const OptimizerOptions& options = {});

}  // namespace sdp

#endif  // SDPOPT_CORE_SDP_H_
