#include "optimizer/plan_enumerator.h"

#include <bit>

#include "common/check.h"
#include "obs/prof/prof.h"

namespace sdp {

const char* EnumeratorName(PlanEnumeratorKind kind) {
  switch (kind) {
    case PlanEnumeratorKind::kDPsize:
      return "dpsize";
    case PlanEnumeratorKind::kDPccp:
      return "dpccp";
    case PlanEnumeratorKind::kGOO:
      return "goo";
  }
  return "dpsize";
}

bool ParseEnumeratorKind(const std::string& name, PlanEnumeratorKind* out) {
  if (name == "dpsize") {
    *out = PlanEnumeratorKind::kDPsize;
  } else if (name == "dpccp") {
    *out = PlanEnumeratorKind::kDPccp;
  } else if (name == "goo") {
    *out = PlanEnumeratorKind::kGOO;
  } else {
    return false;
  }
  return true;
}

namespace {

// Bits {0 .. i} as a mask (the B_i prohibition set), safe at i = 63.
uint64_t BitsThrough(int i) {
  return i >= 63 ? ~uint64_t{0} : (uint64_t{1} << (i + 1)) - 1;
}

}  // namespace

CsgCmpEnumerator::CsgCmpEnumerator(const JoinGraph& graph,
                                   const std::vector<RelSet>& unit_rels,
                                   SearchCounters* counters)
    : unit_rels_(unit_rels), counters_(counters) {
  const int n = num_units();
  SDP_CHECK(n >= 1 && n <= RelSet::kMaxRelations);
  // Unit adjacency: u ~ v when a join edge connects their relation sets.
  // Neighbors() is hoisted per unit; the pairwise pass is O(n^2) bit ops.
  std::vector<RelSet> nbrs(n);
  for (int u = 0; u < n; ++u) nbrs[u] = graph.Neighbors(unit_rels_[u]);
  unit_adj_.assign(n, 0);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (nbrs[u].Overlaps(unit_rels_[v])) {
        unit_adj_[u] |= uint64_t{1} << v;
        unit_adj_[v] |= uint64_t{1} << u;
      }
    }
  }
  interned_.reserve(static_cast<size_t>(n) * 4);
  for (int u = 0; u < n; ++u) interned_.emplace(uint64_t{1} << u,
                                                unit_rels_[u]);
}

uint64_t CsgCmpEnumerator::NeighborMask(uint64_t mask) const {
  uint64_t nbr = 0;
  for (uint64_t m = mask; m != 0; m &= m - 1) {
    nbr |= unit_adj_[std::countr_zero(m)];
  }
  return nbr & ~mask;
}

RelSet CsgCmpEnumerator::RelsFor(uint64_t unit_mask) {
  auto it = interned_.find(unit_mask);
  if (it != interned_.end()) {
    ++counters_->relset_intern_hits;
    return it->second;
  }
  RelSet rels;
  for (uint64_t m = unit_mask; m != 0; m &= m - 1) {
    rels = rels.Union(unit_rels_[std::countr_zero(m)]);
  }
  interned_.emplace(unit_mask, rels);
  // Intern misses run only on the owner thread (task build), so this is
  // deterministic at any thread count.  Charged as the node payload plus
  // the hash bucket pointer.
  ProfRecordAlloc(ProfAllocSource::kIntern,
                  sizeof(uint64_t) + sizeof(RelSet) + sizeof(void*));
  return rels;
}

void CsgCmpEnumerator::EnumerateLevel(int level, const PairSink& sink) {
  SDP_CHECK(level >= 2);
  const int n = num_units();
  for (int i = n - 1; i >= 0; --i) {
    const uint64_t s1 = uint64_t{1} << i;
    EmitCmpsFor(s1, level, sink);
    if (level > 2) ExpandCsg(s1, BitsThrough(i), level, sink);
  }
}

void CsgCmpEnumerator::ExpandCsg(uint64_t s1, uint64_t x, int level,
                                 const PairSink& sink) {
  const uint64_t nb = NeighborMask(s1) & ~x;
  if (nb == 0) return;
  const int have = std::popcount(s1);
  // Emit every extension first (ascending subset order), then recurse into
  // each -- the standard EnumerateCsgRec structure.  A csg larger than
  // level - 1 units can never leave room for a cmp at this level.
  for (uint64_t sub = 0;;) {
    sub = (sub - nb) & nb;
    if (sub == 0) break;
    if (have + std::popcount(sub) <= level - 1) {
      EmitCmpsFor(s1 | sub, level, sink);
    }
  }
  for (uint64_t sub = 0;;) {
    sub = (sub - nb) & nb;
    if (sub == 0) break;
    if (have + std::popcount(sub) < level - 1) {
      ExpandCsg(s1 | sub, x | nb, level, sink);
    }
  }
}

void CsgCmpEnumerator::EmitCmpsFor(uint64_t s1, int level,
                                   const PairSink& sink) {
  const int want = level - std::popcount(s1);
  if (want < 1) return;
  // Complements are drawn from above min(S1) and outside S1, so each
  // unordered pair surfaces exactly once, from its lower-min side.
  const uint64_t x = BitsThrough(std::countr_zero(s1)) | s1;
  const uint64_t nb = NeighborMask(s1) & ~x;
  if (nb == 0) return;
  for (uint64_t m = nb; m != 0;) {
    const int i = 63 - std::countl_zero(m);  // Start nodes descending.
    m &= ~(uint64_t{1} << i);
    const uint64_t s2 = uint64_t{1} << i;
    if (want == 1) {
      sink(s1, s2);
    } else {
      ExpandCmp(s1, s2, x | (BitsThrough(i) & nb), want, sink);
    }
  }
}

void CsgCmpEnumerator::ExpandCmp(uint64_t s1, uint64_t s2, uint64_t x,
                                 int want, const PairSink& sink) {
  const uint64_t nb = NeighborMask(s2) & ~x;
  if (nb == 0) return;
  const int have = std::popcount(s2);
  for (uint64_t sub = 0;;) {
    sub = (sub - nb) & nb;
    if (sub == 0) break;
    if (have + std::popcount(sub) == want) sink(s1, s2 | sub);
  }
  for (uint64_t sub = 0;;) {
    sub = (sub - nb) & nb;
    if (sub == 0) break;
    if (have + std::popcount(sub) < want) {
      ExpandCmp(s1, s2 | sub, x | nb, want, sink);
    }
  }
}

}  // namespace sdp
