#ifndef SDPOPT_OPTIMIZER_DP_H_
#define SDPOPT_OPTIMIZER_DP_H_

#include "cost/cost_model.h"
#include "optimizer/optimizer_types.h"
#include "query/join_graph.h"

namespace sdp {

// Exhaustive bushy dynamic programming (the System-R / PostgreSQL baseline).
//
// Always returns the optimal plan under the cost model when it completes;
// `feasible == false` means the configured memory (or costing) budget was
// exhausted first, the paper's infeasibility condition for large star
// queries.
OptimizeResult OptimizeDP(const Query& query, const CostModel& cost,
                          const OptimizerOptions& options = {});

// Subset-driven exhaustive DP ("DPsub"): enumerates relation sets in
// numeric mask order and splits each into connected complement pairs.
// Produces exactly the same optimum as OptimizeDP through a completely
// different enumeration order -- kept as an independent cross-check of the
// enumerator (exponential in N; intended for small queries and tests).
OptimizeResult OptimizeDPSub(const Query& query, const CostModel& cost,
                             const OptimizerOptions& options = {});

}  // namespace sdp

#endif  // SDPOPT_OPTIMIZER_DP_H_
