#include "optimizer/fallback.h"

#include <algorithm>
#include <exception>
#include <limits>
#include <utility>

#include "obs/flight_recorder.h"
#include "optimizer/dp.h"
#include "optimizer/heuristic_baselines.h"
#include "optimizer/parallel_enum.h"
#include "plan/plan_node.h"

namespace sdp {

const char* FallbackRungName(FallbackRung rung) {
  switch (rung) {
    case FallbackRung::kDP:
      return "dp";
    case FallbackRung::kIDP:
      return "idp";
    case FallbackRung::kSDP:
      return "sdp";
    case FallbackRung::kGreedy:
      return "greedy";
  }
  return "unknown";
}

const char* FallbackRungLabel(FallbackRung rung,
                              const OptimizerOptions& options) {
  if (rung == FallbackRung::kGreedy &&
      options.enumerator == PlanEnumeratorKind::kGOO) {
    return "goo";
  }
  return FallbackRungName(rung);
}

bool ParseFallbackRung(const std::string& text, FallbackRung* out) {
  if (text == "dp") {
    *out = FallbackRung::kDP;
  } else if (text == "idp") {
    *out = FallbackRung::kIDP;
  } else if (text == "sdp") {
    *out = FallbackRung::kSDP;
  } else if (text == "greedy" || text == "goo") {
    *out = FallbackRung::kGreedy;
  } else {
    return false;
  }
  return true;
}

bool RungBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return true;
  if (skips_remaining_ > 0) {
    --skips_remaining_;
    return false;
  }
  half_open_probe_ = true;  // Cooldown spent: let one request probe.
  return true;
}

bool RungBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  const bool was_open = open_;
  consecutive_failures_ = 0;
  open_ = false;
  half_open_probe_ = false;
  return was_open;
}

bool RungBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_ && half_open_probe_) {
    // Failed probe: re-open for another cooldown.
    skips_remaining_ = cooldown_;
    half_open_probe_ = false;
    return false;
  }
  if (++consecutive_failures_ >= threshold_ && !open_) {
    open_ = true;
    skips_remaining_ = cooldown_;
    half_open_probe_ = false;
    return true;
  }
  return false;
}

namespace {

OptimizeResult RunRung(FallbackRung rung, const FallbackConfig& config,
                       const Query& query, const CostModel& cost,
                       const OptimizerOptions& options) {
  switch (rung) {
    case FallbackRung::kDP:
      return OptimizeDP(query, cost, options);
    case FallbackRung::kIDP:
      return config.use_idp2 ? OptimizeIDP2(query, cost, config.idp, options)
                             : OptimizeIDP(query, cost, config.idp, options);
    case FallbackRung::kSDP:
      return OptimizeSDP(query, cost, config.sdp, options);
    case FallbackRung::kGreedy:
      // With the GOO enumerator selected, the last resort is Greedy
      // Operator Ordering (bushy greedy) instead of the left-deep chain.
      if (options.enumerator == PlanEnumeratorKind::kGOO) {
        return OptimizeGOO(query, cost, options);
      }
      return OptimizeGreedyLeftDeep(query, cost, options);
  }
  OptimizeResult bad;
  bad.status = OptStatus::Make(OptStatusCode::kInternal, "unknown rung");
  return bad;
}

}  // namespace

OptimizeResult OptimizeWithFallback(const Query& query, const CostModel& cost,
                                    const FallbackConfig& config,
                                    const OptimizerOptions& options,
                                    RungBreakerSet* breakers,
                                    FallbackReport* report) {
  ResourceBudget* const budget = options.budget;
  if (budget != nullptr && !budget->armed()) budget->Arm();

  // One worker pool spans every rung of the ladder: the per-driver
  // IntraQueryWorkers then borrow it instead of respawning threads on each
  // retry.
  OptimizerOptions run_options = options;
  IntraQueryWorkers intra(&run_options);

  const int start = static_cast<int>(config.start_rung);
  const int deepest =
      std::max(start, static_cast<int>(config.max_rung));

  SearchCounters aggregate;
  double total_elapsed = 0;
  double peak_mb = 0;
  int tried = 0;  // Rungs consumed (run or skipped) before the winner.
  int resolved_rung = start;  // Last rung that actually ran.
  OptimizeResult last;
  last.status = OptStatus::Make(OptStatusCode::kInternal, "no rung ran");

  for (int r = start; r <= deepest; ++r) {
    const FallbackRung rung = static_cast<FallbackRung>(r);
    const bool last_reachable = r == deepest;

    // Circuit breaker: skip a rung that has been failing for everyone --
    // but never the last reachable rung; something must produce an answer.
    if (breakers != nullptr && !last_reachable &&
        !breakers->For(rung).Allow()) {
      FlightRecorder::Global().Record(ObsKind::kRungSkip, 0,
                                      static_cast<uint32_t>(r));
      if (report != nullptr) {
        FallbackAttempt a;
        a.rung = rung;
        a.skipped_by_breaker = true;
        a.status = OptStatus::Make(OptStatusCode::kInternal,
                                   "skipped: circuit breaker open");
        report->attempts.push_back(std::move(a));
      }
      ++tried;
      continue;
    }

    OptimizeResult res;
    try {
      res = RunRung(rung, config, query, cost, run_options);
    } catch (const std::exception& e) {
      res = OptimizeResult();
      res.algorithm = FallbackRungName(rung);
      res.status = OptStatus::Make(OptStatusCode::kInternal,
                                   std::string("exception: ") + e.what());
    } catch (...) {
      res = OptimizeResult();
      res.algorithm = FallbackRungName(rung);
      res.status =
          OptStatus::Make(OptStatusCode::kInternal, "unknown exception");
    }

    // A plan that fails the engine's validity check (cycles, non-finite
    // costs -- e.g. an injected cost NaN) is a defect, not an answer:
    // demote to kInternal so the ladder escalates.
    if (res.feasible) {
      const std::string verr = ValidatePlanTree(res.plan);
      if (!verr.empty()) {
        res.feasible = false;
        res.plan = nullptr;
        res.plan_arena.reset();
        res.cost = std::numeric_limits<double>::infinity();
        res.status =
            OptStatus::Make(OptStatusCode::kInternal, "invalid plan: " + verr);
      }
    }

    FlightRecorder::Global().Record(
        ObsKind::kRungAttempt, static_cast<uint8_t>(res.status.code),
        static_cast<uint32_t>(r), res.counters.plans_costed);

    aggregate.plans_costed += res.counters.plans_costed;
    aggregate.jcrs_created += res.counters.jcrs_created;
    aggregate.pairs_examined += res.counters.pairs_examined;
    total_elapsed += res.elapsed_seconds;
    peak_mb = std::max(peak_mb, res.peak_memory_mb);

    if (report != nullptr) {
      FallbackAttempt a;
      a.rung = rung;
      a.algorithm = res.algorithm;
      a.status = res.status;
      a.elapsed_seconds = res.elapsed_seconds;
      a.plans_costed = res.counters.plans_costed;
      a.peak_memory_mb = res.peak_memory_mb;
      report->attempts.push_back(std::move(a));
    }

    if (res.feasible) {
      if (breakers != nullptr && breakers->For(rung).RecordSuccess()) {
        FlightRecorder::Global().Record(ObsKind::kBreakerClose, 0,
                                        static_cast<uint32_t>(r));
      }
      res.counters = aggregate;
      res.elapsed_seconds = total_elapsed;
      res.peak_memory_mb = peak_mb;
      res.rung = FallbackRungLabel(rung, run_options);
      res.retries = tried;
      FlightRecorder::Global().Record(
          ObsKind::kRungResolved, static_cast<uint8_t>(res.status.code),
          static_cast<uint32_t>(r), static_cast<uint64_t>(tried));
      return res;
    }

    // Deadline and cancellation are properties of the request, not the
    // rung: they neither trip the breaker nor justify escalating.
    const OptStatusCode cause = res.status.code;
    if (breakers != nullptr && cause != OptStatusCode::kDeadlineExceeded &&
        cause != OptStatusCode::kCancelled) {
      if (breakers->For(rung).RecordFailure()) {
        // A breaker opening means a whole rung is failing for everyone:
        // flag it for a flight-recorder dump.
        FlightRecorder::Global().Record(ObsKind::kBreakerOpen, 0,
                                        static_cast<uint32_t>(r));
        FlightRecorder::Global().SignalDump();
      }
    }
    resolved_rung = r;
    last = std::move(res);
    ++tried;
    if (cause == OptStatusCode::kDeadlineExceeded ||
        cause == OptStatusCode::kCancelled) {
      break;
    }
    if (last_reachable) break;
    if (budget != nullptr && !budget->ResetForRetry()) {
      // The shared deadline/token expired while this rung ran.
      last.status = budget->status();
      break;
    }
  }

  last.counters = aggregate;
  last.elapsed_seconds = total_elapsed;
  last.peak_memory_mb = peak_mb;
  last.rung = last.algorithm;
  last.retries = tried > 0 ? tried - 1 : 0;
  FlightRecorder::Global().Record(
      ObsKind::kRungResolved, static_cast<uint8_t>(last.status.code),
      static_cast<uint32_t>(resolved_rung),
      static_cast<uint64_t>(last.retries));
  return last;
}

}  // namespace sdp
