// Intra-query parallel join enumeration: JoinEnumerator::RunLevelParallel
// and its worker machinery.
//
// One DP level's (a, b) candidate-pair space is split into chunks of
// contiguous canonical-order rows.  Workers pull chunks off an atomic
// cursor and *cost* every candidate into a thread-local buffer -- costing
// reads only completed memo levels, so the phase is write-free on all
// shared optimizer state (memo, plan pool, gauge, budget).  The owning
// thread then merges the buffers in canonical shard order, replaying
// every recorded candidate through the exact serial apply path: plan-node
// allocation, dominance checks, memo insertion, fault-injection sites and
// budget checkpoints all happen on that replay, in the serial order, with
// the pairs-examined and plans-costed counters reconstructed to their
// exact serial values at every step -- so the memo, plan trees and
// SearchCounters come out bit-identical to a serial run at any thread
// count.  The merge walks only the *recorded* adjacent pairs (the scan
// over the full pair space happens once, in parallel), re-running skipped
// pairs' budget polls arithmetically.  DESIGN.md ("Intra-query parallel
// enumeration") gives the full determinism argument.

#include "optimizer/parallel_enum.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "obs/flight_recorder.h"
#include "obs/prof/prof.h"
#include "optimizer/enumerator.h"
#include "trace/trace.h"

namespace sdp {

IntraQueryWorkers::IntraQueryWorkers(OptimizerOptions* options) {
  if (options->opt_threads > 1 && options->intra_pool == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options->opt_threads - 1);
    options->intra_pool = pool_.get();
  }
}

// ThreadPool's destructor drains (nothing is queued by then) and joins.
IntraQueryWorkers::~IntraQueryWorkers() = default;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// One outer entry of the canonical pair loop: (a_size, i) plus the fixed
// inner start and the number of unpruned partners -- the sharding weight
// and the row's examined-pair count.
struct Row {
  int a_size = 0;
  uint32_t i = 0;
  uint32_t j_begin = 0;
  uint64_t pairs = 0;
};

// One adjacent pair processed by a worker.  `examined_at` is the pair's
// 1-based examined ordinal within row `row`, letting the merge advance
// the global pairs-examined counter past the non-adjacent pairs between
// records (and re-run the budget polls the serial scan would have hit
// there) without rescanning them.  [cand_begin, cand_end) indexes the
// chunk's candidate buffer, which keeps *every* candidate the pair
// generated: dominance filtering is deliberately left to the merge, where
// the real memo entries do it.  Worker-side prefiltering measured as a
// net loss (the rejects it saves the merge are the cheap ones), and
// keeping everything is what makes fault-injection sites and budget
// checkpoints fire at their exact serial positions in every mode.
struct PairRecord {
  RelSet target;
  uint32_t row = 0;
  uint32_t examined_at = 0;
  uint32_t cand_begin = 0;
  uint32_t cand_end = 0;
};

// Everything one chunk produced.  Built in a worker-local instance and
// moved into the shared slot once the chunk completes, so concurrent
// workers never touch adjacent live vector headers (no false sharing).
// These buffers live only for the level and are not charged to the
// MemoryGauge: charging them would make budget trips diverge from the
// serial run (see DESIGN.md).
struct ChunkOutput {
  std::vector<PairRecord> pairs;
  std::vector<JoinCandidate> cands;
  uint64_t pairs_examined = 0;
  uint64_t plans_costed = 0;
};

}  // namespace

bool JoinEnumerator::RunLevelParallel(int level) {
  ProfPhase enumerate_phase(ProfPhaseKind::kEnumerate);
  // ---- Shard planning (no budget checkpoints yet: a level that falls
  // back to the serial path must consume exactly the serial run's
  // checkpoint sequence). ----
  std::vector<Row> rows;
  uint64_t total_pairs = 0;
  for (int a_size = 1; a_size <= level / 2; ++a_size) {
    const int b_size = level - a_size;
    const auto& as = memo_->EntriesWithUnitCount(a_size);
    const auto& bs = memo_->EntriesWithUnitCount(b_size);
    if (as.empty() || bs.empty()) continue;
    // Suffix counts of unpruned partners: the per-row examined-pair count.
    std::vector<uint32_t> alive(bs.size() + 1, 0);
    for (size_t j = bs.size(); j-- > 0;) {
      alive[j] = alive[j + 1] + (bs[j]->pruned ? 0 : 1);
    }
    for (size_t i = 0; i < as.size(); ++i) {
      if (as[i]->pruned) continue;
      const size_t j_begin = (a_size == b_size) ? i + 1 : 0;
      if (j_begin >= bs.size() || alive[j_begin] == 0) continue;
      rows.push_back(Row{a_size, static_cast<uint32_t>(i),
                         static_cast<uint32_t>(j_begin), alive[j_begin]});
      total_pairs += alive[j_begin];
    }
  }
  if (total_pairs < options_.parallel_min_pairs) {
    return RunLevelSerial(level);
  }

  const int workers = options_.intra_pool->num_threads() + 1;
  const uint64_t chunk_target = std::max<uint64_t>(
      256, total_pairs / static_cast<uint64_t>(workers * 8));
  struct Chunk {
    uint32_t row_begin = 0;
    uint32_t row_end = 0;
  };
  std::vector<Chunk> chunks;
  uint64_t acc = 0;
  uint32_t begin = 0;
  for (uint32_t r = 0; r < rows.size(); ++r) {
    acc += rows[r].pairs;
    if (acc >= chunk_target) {
      chunks.push_back(Chunk{begin, r + 1});
      begin = r + 1;
      acc = 0;
    }
  }
  if (begin < rows.size()) {
    chunks.push_back(Chunk{begin, static_cast<uint32_t>(rows.size())});
  }
  if (chunks.size() < 2) return RunLevelSerial(level);

  if (BudgetExceeded()) return false;

  // ---- Parallel costing phase. ----
  std::vector<ChunkOutput> outputs(chunks.size());
  std::atomic<size_t> next_chunk{0};
  std::atomic<int> stop{-1};  // Becomes an OptStatusCode on a trip.
  std::mutex mu;
  std::condition_variable cv;
  int active = 0;
  double busy_seconds = 0;

  auto run_chunks = [&]() {
    // Workers carry their own phase TLS: the scan is enumerate, each
    // candidate generation is cost.  Worker-side allocations record
    // nothing (wcard runs gauge-free), keeping per-phase alloc totals
    // identical to serial.
    ProfPhase scan_phase(ProfPhaseKind::kEnumerate);
    const auto busy_start = std::chrono::steady_clock::now();
    CardinalityEstimator wcard(*graph_, *cost_, /*gauge=*/nullptr);
    JoinCandidateGen wgen(*graph_, *cost_, *space_);
    ResourceBudget* const budget = options_.budget;
    uint64_t local_pairs = 0;
    bool stopped = false;
    while (!stopped) {
      const size_t ci = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (ci >= chunks.size()) break;
      if (stop.load(std::memory_order_acquire) >= 0) break;
      ChunkOutput out;
      out.pairs.reserve(256);
      out.cands.reserve(1024);
      for (uint32_t r = chunks[ci].row_begin;
           r != chunks[ci].row_end && !stopped; ++r) {
        const Row& row = rows[r];
        const MemoEntry* a = memo_->EntriesWithUnitCount(row.a_size)[row.i];
        const auto& bs = memo_->EntriesWithUnitCount(level - row.a_size);
        const RelSet a_nbrs = graph_->Neighbors(a->rels);
        uint32_t row_examined = 0;
        for (size_t j = row.j_begin; j < bs.size(); ++j) {
          const MemoEntry* b = bs[j];
          if (b->pruned) continue;
          ++local_pairs;
          ++out.pairs_examined;
          ++row_examined;
          if ((local_pairs & 0xFF) == 0) {
            if (stop.load(std::memory_order_acquire) >= 0) {
              stopped = true;
              break;
            }
            if (budget != nullptr) {
              const OptStatusCode code = budget->ProbeCrossThread();
              if (code != OptStatusCode::kOk) {
                int expected = -1;
                stop.compare_exchange_strong(expected,
                                             static_cast<int>(code),
                                             std::memory_order_acq_rel);
                stopped = true;
                break;
              }
            }
          }
          if (a->rels.Overlaps(b->rels)) continue;
          if (!a_nbrs.Overlaps(b->rels)) continue;
          const RelSet s = a->rels.Union(b->rels);
          PairRecord pr;
          pr.target = s;
          pr.row = r;
          pr.examined_at = row_examined;
          pr.cand_begin = static_cast<uint32_t>(out.cands.size());
          {
            ProfPhase cost_phase(ProfPhaseKind::kCost);
            wgen.Generate(a, b, wcard.Rows(s), &out.plans_costed,
                          [&](const JoinCandidate& c) {
                            out.cands.push_back(c);
                          });
          }
          pr.cand_end = static_cast<uint32_t>(out.cands.size());
          out.pairs.push_back(pr);
        }
      }
      outputs[ci] = std::move(out);
    }
    const double busy = SecondsSince(busy_start);
    std::lock_guard<std::mutex> lock(mu);
    busy_seconds += busy;
  };

  const auto phase_start = std::chrono::steady_clock::now();
  const int helpers = static_cast<int>(
      std::min<size_t>(options_.intra_pool->num_threads(), chunks.size()));
  for (int t = 0; t < helpers; ++t) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ++active;
    }
    const bool submitted = options_.intra_pool->Submit([&]() {
      try {
        run_chunks();
      } catch (...) {
        int expected = -1;
        stop.compare_exchange_strong(
            expected, static_cast<int>(OptStatusCode::kInternal),
            std::memory_order_acq_rel);
      }
      std::lock_guard<std::mutex> lock(mu);
      --active;
      cv.notify_all();
    });
    if (!submitted) {  // Pool shutting down: the caller covers the chunks.
      std::lock_guard<std::mutex> lock(mu);
      --active;
    }
  }
  try {
    run_chunks();
  } catch (...) {
    int expected = -1;
    stop.compare_exchange_strong(expected,
                                 static_cast<int>(OptStatusCode::kInternal),
                                 std::memory_order_acq_rel);
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return active == 0; });
  }
  const double enumerate_seconds = SecondsSince(phase_start);

  const int stop_code = stop.load(std::memory_order_acquire);
  if (stop_code >= 0) {
    // First tripped worker cancelled the rest.  Account the work actually
    // performed (counters stay exact), latch the typed status, and discard
    // the buffers: a deadline/cancel abort has no deterministic serial
    // counterpart to replay against.
    for (const ChunkOutput& out : outputs) {
      counters_->pairs_examined += out.pairs_examined;
      counters_->plans_costed += out.plans_costed;
    }
    const OptStatusCode code = static_cast<OptStatusCode>(stop_code);
    if (options_.budget != nullptr) {
      options_.budget->SetPlansCosted(counters_->plans_costed);
      options_.budget->Trip(code, "tripped during parallel enumeration");
    }
    aborted_ = true;
    status_ = code;
    return false;
  }

  // ---- Deterministic merge: walk the recorded pairs in canonical shard
  // order.  JCR creation, plan allocation, dominance insertion, fault
  // sites and budget checkpoints all happen here, in the exact serial
  // order.  plans_costed is reconstructed from each candidate's
  // emit_index; pairs_examined advances in jumps through the non-adjacent
  // pairs between records, re-running every poll boundary the serial scan
  // would have crossed. ----
  ProfPhase merge_phase(ProfPhaseKind::kMerge);
  const auto merge_start = std::chrono::steady_clock::now();
  size_t cur_chunk = 0;
  size_t cur_pair = 0;
  auto peek = [&]() -> const PairRecord* {
    while (cur_chunk < outputs.size() &&
           cur_pair >= outputs[cur_chunk].pairs.size()) {
      ++cur_chunk;
      cur_pair = 0;
    }
    if (cur_chunk >= outputs.size()) return nullptr;
    return &outputs[cur_chunk].pairs[cur_pair];
  };
  // Advances the examined-pair counter to `to`, polling the budget at
  // every interval boundary the serial per-pair loop would have crossed.
  // Returns false when a poll tripped (the counter rests on the tripping
  // boundary, exactly like the serial early return).
  auto advance = [&](uint64_t to) -> bool {
    while (counters_->pairs_examined < to) {
      const uint64_t next = std::min<uint64_t>(
          to, (counters_->pairs_examined | poll_mask_) + 1);
      counters_->pairs_examined = next;
      if ((next & poll_mask_) == 0 && BudgetExceeded()) return false;
    }
    return true;
  };

  bool merge_aborted = false;
  uint32_t row_idx = 0;
  for (int a_size = 1; a_size <= level / 2 && !merge_aborted; ++a_size) {
    for (; row_idx < rows.size() && rows[row_idx].a_size == a_size &&
           !merge_aborted;
         ++row_idx) {
      const uint64_t row_base = counters_->pairs_examined;
      for (const PairRecord* pr;
           (pr = peek()) != nullptr && pr->row == row_idx; ++cur_pair) {
        if (!advance(row_base + pr->examined_at)) {
          merge_aborted = true;
          break;
        }
        const ChunkOutput& oc = outputs[cur_chunk];
        // Same kCost extent as the serial pair body: memo-entry creation
        // plus candidate application, so alloc attribution matches serial.
        ProfPhase cost_phase(ProfPhaseKind::kCost);
        bool created = false;
        // The pair's operands have unit counts a_size and level - a_size,
        // so the join target's is always `level`.
        MemoEntry* target = memo_->GetOrCreate(
            pr->target, level, card_->Rows(pr->target),
            card_->Selectivity(pr->target), &created);
        if (created) ++counters_->jcrs_created;
        const uint64_t base = counters_->plans_costed;
        for (uint32_t k = pr->cand_begin; k != pr->cand_end; ++k) {
          const JoinCandidate& c = oc.cands[k];
          counters_->plans_costed = base + c.emit_index + 1;
          ApplyCandidate(target, c);
        }
      }
      if (!merge_aborted && !advance(row_base + rows[row_idx].pairs)) {
        merge_aborted = true;
      }
    }
    if (!merge_aborted && BudgetExceeded()) merge_aborted = true;
  }
  SDP_DCHECK(merge_aborted || peek() == nullptr);

  uint64_t candidates_costed = 0;
  uint64_t candidates_kept = 0;
  for (const ChunkOutput& out : outputs) {
    candidates_costed += out.plans_costed;
    candidates_kept += out.cands.size();
  }
  const double merge_seconds = SecondsSince(merge_start);
  if (options_.parallel_stats != nullptr) {
    // Owner thread only: no synchronization needed.
    options_.parallel_stats->levels += 1;
    options_.parallel_stats->scan_us +=
        static_cast<uint64_t>(enumerate_seconds * 1e6);
    options_.parallel_stats->merge_us +=
        static_cast<uint64_t>(merge_seconds * 1e6);
  }
  // Recorded by the owner thread after the merge, so the event order stays
  // deterministic at any thread count (payload is timing-free).
  FlightRecorder::Global().Record(
      ObsKind::kParallelLevel, static_cast<uint8_t>(workers),
      static_cast<uint32_t>(level), static_cast<uint64_t>(chunks.size()),
      total_pairs, candidates_costed);
  if (options_.tracer != nullptr) {
    TraceParallelLevel ev;
    ev.level = level;
    ev.threads = workers;
    ev.shards = static_cast<int>(chunks.size());
    ev.pairs = total_pairs;
    ev.candidates_costed = candidates_costed;
    ev.candidates_kept = candidates_kept;
    ev.enumerate_seconds = enumerate_seconds;
    ev.merge_seconds = merge_seconds;
    ev.utilization =
        enumerate_seconds > 0
            ? busy_seconds / (enumerate_seconds * static_cast<double>(workers))
            : 0;
    options_.tracer->OnParallelLevel(ev);
  }

  if (merge_aborted) return false;
  return !BudgetExceeded();
}

namespace {

// Everything one DPccp chunk produced.  The task list is dense -- every
// entry is a valid csg-cmp pair -- so per-task candidate ranges are just
// the running cand_ends offsets; no examined_at gap bookkeeping is needed.
// Like ChunkOutput these buffers are deliberately not gauge-charged.
struct CcpChunkOutput {
  std::vector<uint32_t> cand_ends;  // cands offset after each task.
  std::vector<JoinCandidate> cands;
  uint64_t pairs_examined = 0;
  uint64_t plans_costed = 0;
};

}  // namespace

bool JoinEnumerator::RunLevelCcpParallel(int level,
                                         const std::vector<CcpTask>& tasks) {
  ProfPhase enumerate_phase(ProfPhaseKind::kEnumerate);
  // ---- Chunk planning over the dense task list (no budget checkpoints:
  // a level that falls back to the serial loop must consume exactly its
  // checkpoint sequence). ----
  const int workers = options_.intra_pool->num_threads() + 1;
  const uint64_t chunk_target = std::max<uint64_t>(
      256, tasks.size() / static_cast<uint64_t>(workers * 8));
  struct Chunk {
    uint32_t begin = 0;
    uint32_t end = 0;
  };
  std::vector<Chunk> chunks;
  for (uint32_t begin = 0; begin < tasks.size();) {
    const uint32_t end = static_cast<uint32_t>(
        std::min<uint64_t>(tasks.size(), begin + chunk_target));
    chunks.push_back(Chunk{begin, end});
    begin = end;
  }
  if (chunks.size() < 2) return RunLevelCcpSerial(level, tasks);

  // ---- Parallel costing phase: write-free on all shared optimizer
  // state, workers keep every candidate (see the DPsize runner above for
  // the determinism argument). ----
  std::vector<CcpChunkOutput> outputs(chunks.size());
  std::atomic<size_t> next_chunk{0};
  std::atomic<int> stop{-1};  // Becomes an OptStatusCode on a trip.
  std::mutex mu;
  std::condition_variable cv;
  int active = 0;
  double busy_seconds = 0;

  auto run_chunks = [&]() {
    // Same phase discipline as the DPsize runner above.
    ProfPhase scan_phase(ProfPhaseKind::kEnumerate);
    const auto busy_start = std::chrono::steady_clock::now();
    CardinalityEstimator wcard(*graph_, *cost_, /*gauge=*/nullptr);
    JoinCandidateGen wgen(*graph_, *cost_, *space_);
    ResourceBudget* const budget = options_.budget;
    uint64_t local_pairs = 0;
    bool stopped = false;
    while (!stopped) {
      const size_t ci = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (ci >= chunks.size()) break;
      if (stop.load(std::memory_order_acquire) >= 0) break;
      CcpChunkOutput out;
      out.cand_ends.reserve(chunks[ci].end - chunks[ci].begin);
      out.cands.reserve(1024);
      for (uint32_t k = chunks[ci].begin; k != chunks[ci].end && !stopped;
           ++k) {
        const CcpTask& t = tasks[k];
        ++local_pairs;
        ++out.pairs_examined;
        if ((local_pairs & 0xFF) == 0) {
          if (stop.load(std::memory_order_acquire) >= 0) {
            stopped = true;
            break;
          }
          if (budget != nullptr) {
            const OptStatusCode code = budget->ProbeCrossThread();
            if (code != OptStatusCode::kOk) {
              int expected = -1;
              stop.compare_exchange_strong(expected, static_cast<int>(code),
                                           std::memory_order_acq_rel);
              stopped = true;
              break;
            }
          }
        }
        {
          ProfPhase cost_phase(ProfPhaseKind::kCost);
          wgen.Generate(t.a, t.b, wcard.Rows(t.target), &out.plans_costed,
                        [&](const JoinCandidate& c) {
                          out.cands.push_back(c);
                        });
        }
        out.cand_ends.push_back(static_cast<uint32_t>(out.cands.size()));
      }
      outputs[ci] = std::move(out);
    }
    const double busy = SecondsSince(busy_start);
    std::lock_guard<std::mutex> lock(mu);
    busy_seconds += busy;
  };

  const auto phase_start = std::chrono::steady_clock::now();
  const int helpers = static_cast<int>(
      std::min<size_t>(options_.intra_pool->num_threads(), chunks.size()));
  for (int t = 0; t < helpers; ++t) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ++active;
    }
    const bool submitted = options_.intra_pool->Submit([&]() {
      try {
        run_chunks();
      } catch (...) {
        int expected = -1;
        stop.compare_exchange_strong(
            expected, static_cast<int>(OptStatusCode::kInternal),
            std::memory_order_acq_rel);
      }
      std::lock_guard<std::mutex> lock(mu);
      --active;
      cv.notify_all();
    });
    if (!submitted) {  // Pool shutting down: the caller covers the chunks.
      std::lock_guard<std::mutex> lock(mu);
      --active;
    }
  }
  try {
    run_chunks();
  } catch (...) {
    int expected = -1;
    stop.compare_exchange_strong(expected,
                                 static_cast<int>(OptStatusCode::kInternal),
                                 std::memory_order_acq_rel);
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return active == 0; });
  }
  const double enumerate_seconds = SecondsSince(phase_start);

  const int stop_code = stop.load(std::memory_order_acquire);
  if (stop_code >= 0) {
    // Same contract as the DPsize runner: account the work performed,
    // latch the typed status, discard the buffers.
    for (const CcpChunkOutput& out : outputs) {
      counters_->pairs_examined += out.pairs_examined;
      counters_->plans_costed += out.plans_costed;
    }
    const OptStatusCode code = static_cast<OptStatusCode>(stop_code);
    if (options_.budget != nullptr) {
      options_.budget->SetPlansCosted(counters_->plans_costed);
      options_.budget->Trip(code, "tripped during parallel enumeration");
    }
    aborted_ = true;
    status_ = code;
    return false;
  }

  // ---- Deterministic merge: the task list is walked in its build order,
  // one examined pair per task, reconstructing the exact serial counter
  // values (plans_costed from each candidate's emit_index) and running
  // JCR creation, dominance insertion, fault sites and budget checkpoints
  // in the serial order. ----
  ProfPhase merge_phase(ProfPhaseKind::kMerge);
  const auto merge_start = std::chrono::steady_clock::now();
  bool merge_aborted = false;
  for (size_t ci = 0; ci < chunks.size() && !merge_aborted; ++ci) {
    const CcpChunkOutput& out = outputs[ci];
    uint32_t cand_begin = 0;
    for (size_t k = 0; k < out.cand_ends.size(); ++k) {
      const CcpTask& t = tasks[chunks[ci].begin + k];
      ++counters_->pairs_examined;
      if ((counters_->pairs_examined & poll_mask_) == 0 &&
          BudgetExceeded()) {
        merge_aborted = true;
        break;
      }
      // Same kCost extent as RunLevelCcpSerial's task body.
      ProfPhase cost_phase(ProfPhaseKind::kCost);
      bool created = false;
      MemoEntry* target = memo_->GetOrCreate(
          t.target, t.a->unit_count + t.b->unit_count, card_->Rows(t.target),
          card_->Selectivity(t.target), &created);
      if (created) ++counters_->jcrs_created;
      const uint64_t base = counters_->plans_costed;
      for (uint32_t c = cand_begin; c != out.cand_ends[k]; ++c) {
        counters_->plans_costed = base + out.cands[c].emit_index + 1;
        ApplyCandidate(target, out.cands[c]);
      }
      cand_begin = out.cand_ends[k];
    }
  }

  uint64_t candidates_costed = 0;
  uint64_t candidates_kept = 0;
  for (const CcpChunkOutput& out : outputs) {
    candidates_costed += out.plans_costed;
    candidates_kept += out.cands.size();
  }
  const double merge_seconds = SecondsSince(merge_start);
  if (options_.parallel_stats != nullptr) {
    options_.parallel_stats->levels += 1;
    options_.parallel_stats->scan_us +=
        static_cast<uint64_t>(enumerate_seconds * 1e6);
    options_.parallel_stats->merge_us +=
        static_cast<uint64_t>(merge_seconds * 1e6);
  }
  FlightRecorder::Global().Record(
      ObsKind::kParallelLevel, static_cast<uint8_t>(workers),
      static_cast<uint32_t>(level), static_cast<uint64_t>(chunks.size()),
      static_cast<uint64_t>(tasks.size()), candidates_costed);
  if (options_.tracer != nullptr) {
    TraceParallelLevel ev;
    ev.level = level;
    ev.threads = workers;
    ev.shards = static_cast<int>(chunks.size());
    ev.pairs = tasks.size();
    ev.candidates_costed = candidates_costed;
    ev.candidates_kept = candidates_kept;
    ev.enumerate_seconds = enumerate_seconds;
    ev.merge_seconds = merge_seconds;
    ev.utilization =
        enumerate_seconds > 0
            ? busy_seconds / (enumerate_seconds * static_cast<double>(workers))
            : 0;
    options_.tracer->OnParallelLevel(ev);
  }

  if (merge_aborted) return false;
  return !BudgetExceeded();
}

}  // namespace sdp
