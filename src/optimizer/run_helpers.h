#ifndef SDPOPT_OPTIMIZER_RUN_HELPERS_H_
#define SDPOPT_OPTIMIZER_RUN_HELPERS_H_

#include <chrono>
#include <string>

#include "common/arena.h"
#include "optimizer/optimizer_types.h"
#include "plan/plan_node.h"

namespace sdp {

// Monotonic stopwatch for optimization timing.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Packages a finished (or aborted) optimization run.  The chosen plan is
// deep-copied into a fresh arena owned by the result, so the run's working
// memory can be released immediately.  `status` records why an aborted run
// stopped; a null plan with an OK status is normalized to kMemoryExceeded
// so infeasible results always carry a typed cause.
OptimizeResult MakeOptimizeResult(std::string algorithm, const PlanNode* plan,
                                  const SearchCounters& counters,
                                  double elapsed_seconds,
                                  const MemoryGauge& gauge,
                                  OptStatus status = OptStatus::Ok());

}  // namespace sdp

#endif  // SDPOPT_OPTIMIZER_RUN_HELPERS_H_
