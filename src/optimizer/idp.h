#ifndef SDPOPT_OPTIMIZER_IDP_H_
#define SDPOPT_OPTIMIZER_IDP_H_

#include "cost/cost_model.h"
#include "optimizer/optimizer_types.h"
#include "query/join_graph.h"

namespace sdp {

// Parameters of the IDP1-balanced-bestRow variant (Kossmann & Stocker),
// which the paper identifies as the best IDP configuration and uses as the
// baseline heuristic (Section 3.1).
struct IdpConfig {
  // Maximum number of DP levels per iteration.
  int k = 7;
  // Fraction of the level-k subplans (selected by fewest rows) ballooned to
  // complete plans when choosing which subplan to retain.
  double balloon_fraction = 0.05;
  // Balance block sizes across iterations instead of always using k.
  bool balanced = true;
};

// Iterative Dynamic Programming: run bushy DP bottom-up for a block of
// levels, greedily "balloon" the most promising (MinRows) subplans into
// complete plans, retain the subplan whose completion is cheapest as a
// single composite relation, and restart until the query is covered.
OptimizeResult OptimizeIDP(const Query& query, const CostModel& cost,
                           const IdpConfig& config = {},
                           const OptimizerOptions& options = {});

// The second IDP family of Kossmann & Stocker, with the composition
// inverted: a greedy (MinRows) pass picks WHERE to spend effort -- the
// first subtree to accumulate k units -- and exhaustive DP then optimizes
// that subtree exactly before it is collapsed.  Implemented as an
// additional baseline (the paper evaluates only IDP1).
OptimizeResult OptimizeIDP2(const Query& query, const CostModel& cost,
                            const IdpConfig& config = {},
                            const OptimizerOptions& options = {});

}  // namespace sdp

#endif  // SDPOPT_OPTIMIZER_IDP_H_
