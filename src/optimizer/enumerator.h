#ifndef SDPOPT_OPTIMIZER_ENUMERATOR_H_
#define SDPOPT_OPTIMIZER_ENUMERATOR_H_

#include <optional>
#include <vector>

#include "common/arena.h"
#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "optimizer/memo.h"
#include "optimizer/plan_pool.h"
#include "optimizer/optimizer_types.h"
#include "query/join_graph.h"

namespace sdp {

// Maps columns to the dense "ordering id" space used by plan properties:
// join-column equivalence classes get their class id; a user ORDER BY on a
// non-join column gets one extra id.  -1 = not an interesting order.
class OrderingSpace {
 public:
  OrderingSpace(const JoinGraph& graph,
                std::optional<ColumnRef> order_column);

  int IdFor(ColumnRef c) const;
  // Ordering id required by the query's ORDER BY, or -1 when unordered.
  int RequiredId() const { return required_id_; }

 private:
  const JoinGraph* graph_;
  std::optional<ColumnRef> order_column_;
  int required_id_ = -1;
};

// The size-driven ("DPsize", System-R / PostgreSQL style) bushy join
// enumerator shared by DP, IDP and SDP.
//
// Leaves are "units": base relations in DP/SDP, possibly composites in IDP
// iterations.  RunLevel(L) combines every adjacent pair of disjoint
// survivor entries whose unit counts sum to L, costing the physical join
// repertoire (hash both orientations; nested loop and index nested loop per
// useful outer ordering; merge join per connecting edge with sort
// enforcers) and retaining, per join-composite relation, the cheapest plan
// per distinct output ordering.
//
// Resource enforcement: all memo entries, plan nodes and cardinality-cache
// slots are charged to the MemoryGauge; RunLevel aborts (returns false)
// when the configured budget is exceeded -- the paper's infeasibility
// condition.
class JoinEnumerator {
 public:
  JoinEnumerator(const JoinGraph& graph, const CostModel& cost,
                 const OrderingSpace& space, CardinalityEstimator* card,
                 Memo* memo, PlanPool* pool, MemoryGauge* gauge,
                 const OptimizerOptions& options, SearchCounters* counters);

  // Installs one leaf per base relation, with sequential-scan and (when the
  // indexed column carries an interesting order) index-scan plans.
  void InstallBaseRelationLeaves();

  // Installs the leaf for a single base relation (IDP installs only the
  // relations still standing alone in the current iteration).
  MemoEntry* InstallBaseRelationLeaf(int rel);

  // Installs a pre-planned leaf unit (IDP composites).  Plans must outlive
  // the enumerator; they are referenced, not copied.
  MemoEntry* InstallLeaf(RelSet rels, double rows, double sel,
                         const std::vector<RankedPlan>& plans);

  // Runs one DP level.  Returns false when the run aborted on budget.
  bool RunLevel(int level);

  // Costs every physical join of `a` and `b` into `target` (which need not
  // live in the memo -- IDP ballooning uses a scratch entry).
  void EmitJoinsInto(MemoEntry* target, const MemoEntry* a,
                     const MemoEntry* b);

  // Picks the query's final plan from `full`: the cheapest plan satisfying
  // the required ordering, adding a Sort enforcer when that is cheaper.
  // Returns null only if `full` has no plans.
  const PlanNode* FinalizeBestPlan(const MemoEntry* full);

  bool aborted() const { return aborted_; }

  // Why the enumerator aborted (kOk while running / on success).  Legacy
  // caps (OptimizerOptions::memory_budget_bytes / max_plans_costed) report
  // kMemoryExceeded; a ResourceBudget reports its own typed code.
  OptStatusCode status() const { return status_; }

  // Typed abort cause for an infeasible result: the budget's status (with
  // its message) when one tripped, else a generic kMemoryExceeded.
  OptStatus abort_status() const {
    if (options_.budget != nullptr) {
      OptStatus st = options_.budget->status();
      if (!st.ok()) return st;
    }
    return OptStatus::Make(status_ == OptStatusCode::kOk
                               ? OptStatusCode::kMemoryExceeded
                               : status_,
                           "optimizer budget exhausted");
  }

  // Re-evaluates the budget and returns true when exhausted (latches the
  // aborted flag).  RunLevel checks internally; direct EmitJoinsInto users
  // (DPsub, IDP ballooning) call this between batches.
  bool CheckBudget() { return BudgetExceeded(); }
  const OrderingSpace& ordering_space() const { return *space_; }

 private:
  // True when the budget is exhausted; latches `aborted_`.
  bool BudgetExceeded();

  void ConsiderHash(MemoEntry* target, const PlanNode* outer,
                    const PlanNode* inner, int edge, int num_quals,
                    double out_rows);
  void ConsiderNestLoop(MemoEntry* target, const PlanNode* outer,
                        const PlanNode* inner, int edge, int num_quals,
                        double out_rows);
  void ConsiderIndexNestLoop(MemoEntry* target, const PlanNode* outer,
                             const MemoEntry* inner_entry, int edge,
                             double out_rows);
  void ConsiderMergeJoin(MemoEntry* target, const MemoEntry* a,
                         const MemoEntry* b, int edge, int num_quals,
                         double out_rows);

  // Cheapest way to obtain `a`'s output sorted on ordering `eq`:
  // a pre-sorted plan or cheapest-plus-Sort.  Materializes the Sort node
  // only when `materialize` is set (cost-probe first, allocate on win).
  struct SortedInput {
    const PlanNode* plan = nullptr;  // Null when not materialized.
    double cost = 0;
    bool needs_sort = false;
  };
  SortedInput BestSortedInput(const MemoEntry* e, int eq) const;
  const PlanNode* MaterializeSorted(const MemoEntry* e, int eq,
                                    const SortedInput& in);

  bool TryAdd(MemoEntry* target, PlanKind kind, int rel, int edge,
              int ordering, double rows, double cost, const PlanNode* outer,
              const PlanNode* inner);

  const JoinGraph* graph_;
  const CostModel* cost_;
  const OrderingSpace* space_;
  CardinalityEstimator* card_;
  Memo* memo_;
  PlanPool* pool_;
  MemoryGauge* gauge_;
  OptimizerOptions options_;
  SearchCounters* counters_;
  // Pair-count mask gating budget polls inside RunLevel's inner loop; a
  // ResourceBudget polls denser than the legacy caps because its fast path
  // is cheaper than a gauge read.
  uint64_t poll_mask_;
  bool aborted_ = false;
  OptStatusCode status_ = OptStatusCode::kOk;
};

}  // namespace sdp

#endif  // SDPOPT_OPTIMIZER_ENUMERATOR_H_
