#ifndef SDPOPT_OPTIMIZER_ENUMERATOR_H_
#define SDPOPT_OPTIMIZER_ENUMERATOR_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "optimizer/memo.h"
#include "optimizer/plan_enumerator.h"
#include "optimizer/plan_pool.h"
#include "optimizer/optimizer_types.h"
#include "query/join_graph.h"

namespace sdp {

// Maps columns to the dense "ordering id" space used by plan properties:
// join-column equivalence classes get their class id; a user ORDER BY on a
// non-join column gets one extra id.  -1 = not an interesting order.
class OrderingSpace {
 public:
  OrderingSpace(const JoinGraph& graph,
                std::optional<ColumnRef> order_column);

  int IdFor(ColumnRef c) const;
  // Ordering id required by the query's ORDER BY, or -1 when unordered.
  int RequiredId() const { return required_id_; }

 private:
  const JoinGraph* graph_;
  std::optional<ColumnRef> order_column_;
  int required_id_ = -1;
};

// Cheapest way to obtain an entry's output sorted on an ordering id: a
// pre-sorted retained plan, or cheapest-plus-Sort.  A cost probe only --
// the Sort enforcer is materialized separately, and only when the costed
// candidate survives the dominance pre-gate.
struct SortedInput {
  const PlanNode* plan = nullptr;
  double cost = 0;
  bool needs_sort = false;
};

SortedInput BestSortedInput(const CostModel& cost, const MemoEntry* e,
                            int eq);

// One costed physical-join alternative, decoupled from the memo insertion
// that the serial enumerator performs inline.  Costing a candidate touches
// only immutable lower-level state (memo entries of completed levels, the
// cost model, the join graph), so candidates can be produced by worker
// threads; *applying* one (dominance check, plan-node allocation, memo
// insertion) stays on the owning thread.
struct JoinCandidate {
  PlanKind kind = PlanKind::kHashJoin;
  int rel = -1;       // Index-nested-loop inner base relation, else -1.
  int edge = -1;
  int ordering = -1;  // Output ordering id (-1 = unordered).
  // Ordinal of this candidate within its pair's emission sequence; the
  // deterministic merge uses it to reconstruct the exact serial
  // plans_costed value at every budget poll even when dominated candidates
  // were dropped worker-side.
  uint32_t emit_index = 0;
  double rows = 0;
  double cost = 0;
  const PlanNode* outer = nullptr;  // Non-merge joins: the input plans.
  const PlanNode* inner = nullptr;
  // Merge joins: inputs are *described* rather than materialized, so Sort
  // enforcers are allocated only after the pre-gate passes (and therefore
  // in the identical order to the serial run).
  const MemoEntry* outer_entry = nullptr;
  const MemoEntry* inner_entry = nullptr;
  SortedInput outer_sorted;
  SortedInput inner_sorted;
};

// Generates the physical-join candidates for one (a, b) pair in the
// canonical order the serial enumerator costs them: hash join in both
// orientations, nested loop per retained outer plan (both sides), then per
// connecting edge index-nested-loop variants and the merge join.  Pure with
// respect to shared optimizer state -- reads only completed memo levels --
// so each enumeration worker owns one instance (the connecting-edge scratch
// buffer makes it stateful but thread-private).
class JoinCandidateGen {
 public:
  JoinCandidateGen(const JoinGraph& graph, const CostModel& cost,
                   const OrderingSpace& space)
      : graph_(&graph), cost_(&cost), space_(&space) {}

  // Emits every candidate for `a` JOIN `b` into `sink`
  // (void(const JoinCandidate&)), incrementing *plans_costed once per
  // emission -- the counter contract the budget's plans-costed cap and the
  // paper's overhead metrics rely on.  `out_rows` is the target JCR's
  // cardinality.
  template <typename Sink>
  void Generate(const MemoEntry* a, const MemoEntry* b, double out_rows,
                uint64_t* plans_costed, Sink&& sink) {
    SDP_DCHECK(!a->rels.Overlaps(b->rels));
    graph_->ConnectingEdgesInto(a->rels, b->rels, &edges_);
    SDP_DCHECK(!edges_.empty());
    const int num_quals = static_cast<int>(edges_.size());

    const PlanNode* cheap_a = a->CheapestPlan();
    const PlanNode* cheap_b = b->CheapestPlan();
    SDP_DCHECK(cheap_a != nullptr && cheap_b != nullptr);

    uint32_t emit = 0;
    JoinCandidate c;
    c.rows = out_rows;
    auto send = [&](PlanKind kind, int rel, int edge, int ordering,
                    double cost, const PlanNode* outer,
                    const PlanNode* inner) {
      ++*plans_costed;
      c.kind = kind;
      c.rel = rel;
      c.edge = edge;
      c.ordering = ordering;
      c.emit_index = emit++;
      c.cost = cost;
      c.outer = outer;
      c.inner = inner;
      c.outer_entry = nullptr;
      c.inner_entry = nullptr;
      sink(c);
    };

    // Hash join, both orientations (order-destroying: cheapest inputs
    // only).
    send(PlanKind::kHashJoin, -1, edges_[0], -1,
         HashCost(cheap_a, cheap_b, num_quals, out_rows), cheap_a, cheap_b);
    send(PlanKind::kHashJoin, -1, edges_[0], -1,
         HashCost(cheap_b, cheap_a, num_quals, out_rows), cheap_b, cheap_a);

    // Nested loop: preserves the outer ordering, so each retained outer
    // plan is a distinct candidate; the inner is rescanned, cheapest
    // suffices.
    for (const RankedPlan& rp : a->plans) {
      send(PlanKind::kNestLoop, -1, edges_[0], rp.plan->ordering,
           NestLoopCost(rp.plan, cheap_b, num_quals, out_rows), rp.plan,
           cheap_b);
    }
    for (const RankedPlan& rp : b->plans) {
      send(PlanKind::kNestLoop, -1, edges_[0], rp.plan->ordering,
           NestLoopCost(rp.plan, cheap_a, num_quals, out_rows), rp.plan,
           cheap_a);
    }

    for (int e : edges_) {
      // Index nested loop when one side is a base relation indexed on its
      // join column.
      const JoinEdge& edge = graph_->edges()[e];
      const ColumnRef a_side =
          a->rels.Contains(edge.left.rel) ? edge.left : edge.right;
      const ColumnRef b_side =
          b->rels.Contains(edge.left.rel) ? edge.left : edge.right;
      SDP_DCHECK(a->rels.Contains(a_side.rel) &&
                 b->rels.Contains(b_side.rel));
      if (b->rels.Count() == 1 && b->unit_count == 1 &&
          cost_->HasIndexOn(b_side)) {
        const int inner_rel = b->rels.Lowest();
        for (const RankedPlan& rp : a->plans) {
          send(PlanKind::kIndexNestLoop, inner_rel, e, rp.plan->ordering,
               cost_->IndexNestLoopCost(rp.plan->cost, rp.plan->rows,
                                        inner_rel, e, out_rows),
               rp.plan, b->plans.front().plan);
        }
      }
      if (a->rels.Count() == 1 && a->unit_count == 1 &&
          cost_->HasIndexOn(a_side)) {
        const int inner_rel = a->rels.Lowest();
        for (const RankedPlan& rp : b->plans) {
          send(PlanKind::kIndexNestLoop, inner_rel, e, rp.plan->ordering,
               cost_->IndexNestLoopCost(rp.plan->cost, rp.plan->rows,
                                        inner_rel, e, out_rows),
               rp.plan, a->plans.front().plan);
        }
      }
      // Merge join on this edge's equivalence class.
      const int eq = space_->IdFor(edge.left);
      if (eq < 0) continue;  // Defensive: join columns always have a class.
      ++*plans_costed;
      const SortedInput sa = BestSortedInput(*cost_, a, eq);
      const SortedInput sb = BestSortedInput(*cost_, b, eq);
      c.kind = PlanKind::kMergeJoin;
      c.rel = -1;
      c.edge = e;
      c.ordering = eq;
      c.emit_index = emit++;
      c.cost = MergeCost(a, b, sa, sb, num_quals, out_rows);
      c.outer = nullptr;
      c.inner = nullptr;
      c.outer_entry = a;
      c.inner_entry = b;
      c.outer_sorted = sa;
      c.inner_sorted = sb;
      sink(c);
    }
  }

 private:
  double HashCost(const PlanNode* outer, const PlanNode* inner,
                  int num_quals, double out_rows) const;
  double NestLoopCost(const PlanNode* outer, const PlanNode* inner,
                      int num_quals, double out_rows) const;
  double MergeCost(const MemoEntry* a, const MemoEntry* b,
                   const SortedInput& sa, const SortedInput& sb,
                   int num_quals, double out_rows) const;

  const JoinGraph* graph_;
  const CostModel* cost_;
  const OrderingSpace* space_;
  std::vector<int> edges_;  // Scratch for ConnectingEdgesInto.
};

// One valid csg-cmp pair scheduled for costing at the current DPccp
// level, in canonical enumeration order.  The owning thread builds the
// level's task list before costing begins, so serial and parallel runs
// walk the identical sequence.
struct CcpTask {
  const MemoEntry* a = nullptr;
  const MemoEntry* b = nullptr;
  RelSet target;
};

// The bushy join enumerator shared by DP, IDP and SDP, with a pluggable
// plan-enumeration strategy (OptimizerOptions::enumerator):
//
//   kDPsize  the size-driven (System-R / PostgreSQL style) pair scan;
//   kDPccp   connected-subgraph / complement-pair enumeration visiting
//            only valid csg-cmp pairs (see optimizer/plan_enumerator.h);
//   kGOO     greedy operator ordering, one minimum-cardinality adjacent
//            merge per RunLevel call (DP driver and greedy rung only).
//
// All strategies share the candidate repertoire and apply path below, so
// wherever two of them both complete they retain identical plans; only
// pairs_examined (and for DPccp relset_intern_hits) differ.
//
// Leaves are "units": base relations in DP/SDP, possibly composites in IDP
// iterations.  RunLevel(L) combines every adjacent pair of disjoint
// survivor entries whose unit counts sum to L, costing the physical join
// repertoire (hash both orientations; nested loop and index nested loop per
// useful outer ordering; merge join per connecting edge with sort
// enforcers) and retaining, per join-composite relation, the cheapest plan
// per distinct output ordering.
//
// Resource enforcement: all memo entries, plan nodes and cardinality-cache
// slots are charged to the MemoryGauge; RunLevel aborts (returns false)
// when the configured budget is exceeded -- the paper's infeasibility
// condition.
//
// With OptimizerOptions::opt_threads > 1 and a worker pool attached,
// RunLevel shards its candidate-pair space across threads and merges the
// thread-local candidate buffers deterministically (see
// optimizer/parallel_enum.h); memo, plan trees and SearchCounters are
// bit-identical to the serial run at any thread count.
class JoinEnumerator {
 public:
  JoinEnumerator(const JoinGraph& graph, const CostModel& cost,
                 const OrderingSpace& space, CardinalityEstimator* card,
                 Memo* memo, PlanPool* pool, MemoryGauge* gauge,
                 const OptimizerOptions& options, SearchCounters* counters);

  // Installs one leaf per base relation, with sequential-scan and (when the
  // indexed column carries an interesting order) index-scan plans.
  void InstallBaseRelationLeaves();

  // Installs the leaf for a single base relation (IDP installs only the
  // relations still standing alone in the current iteration).
  MemoEntry* InstallBaseRelationLeaf(int rel);

  // Installs a pre-planned leaf unit (IDP composites).  Plans must outlive
  // the enumerator; they are referenced, not copied.
  MemoEntry* InstallLeaf(RelSet rels, double rows, double sel,
                         const std::vector<RankedPlan>& plans);

  // Runs one DP level.  Returns false when the run aborted on budget.
  bool RunLevel(int level);

  // Costs every physical join of `a` and `b` into `target` (which need not
  // live in the memo -- IDP ballooning uses a scratch entry).
  void EmitJoinsInto(MemoEntry* target, const MemoEntry* a,
                     const MemoEntry* b);

  // Picks the query's final plan from `full`: the cheapest plan satisfying
  // the required ordering, adding a Sort enforcer when that is cheaper.
  // Returns null only if `full` has no plans.
  const PlanNode* FinalizeBestPlan(const MemoEntry* full);

  bool aborted() const { return aborted_; }

  // Why the enumerator aborted (kOk while running / on success).  Legacy
  // caps (OptimizerOptions::memory_budget_bytes / max_plans_costed) report
  // kMemoryExceeded; a ResourceBudget reports its own typed code.
  OptStatusCode status() const { return status_; }

  // Typed abort cause for an infeasible result: the budget's status (with
  // its message) when one tripped, else a generic kMemoryExceeded.
  OptStatus abort_status() const {
    if (options_.budget != nullptr) {
      OptStatus st = options_.budget->status();
      if (!st.ok()) return st;
    }
    return OptStatus::Make(status_ == OptStatusCode::kOk
                               ? OptStatusCode::kMemoryExceeded
                               : status_,
                           "optimizer budget exhausted");
  }

  // Re-evaluates the budget and returns true when exhausted (latches the
  // aborted flag).  RunLevel checks internally; direct EmitJoinsInto users
  // (DPsub, IDP ballooning) call this between batches.
  bool CheckBudget() { return BudgetExceeded(); }
  const OrderingSpace& ordering_space() const { return *space_; }

 private:
  // True when the budget is exhausted; latches `aborted_`.
  bool BudgetExceeded();

  // The classic single-threaded level loop.
  bool RunLevelSerial(int level);

  // Sharded level loop + deterministic merge; defined in parallel_enum.cc.
  // Falls back to RunLevelSerial below the parallel_min_pairs threshold.
  bool RunLevelParallel(int level);

  // DPccp: builds the level's csg-cmp task list (owner thread, no budget
  // checkpoints -- the level must consume the same checkpoint sequence
  // whether it then runs serial or sharded) and dispatches to the serial
  // cost loop or the parallel runner.
  bool RunLevelCcp(int level);
  bool RunLevelCcpSerial(int level, const std::vector<CcpTask>& tasks);
  // Sharded csg-cmp costing + deterministic in-order merge; defined in
  // parallel_enum.cc.  Falls back to RunLevelCcpSerial below two chunks.
  bool RunLevelCcpParallel(int level, const std::vector<CcpTask>& tasks);

  // GOO: one greedy minimum-cardinality adjacent merge per call.  Always
  // serial (the scan is linear in the surviving roots), so results are
  // trivially bit-identical at any opt_threads.
  bool RunLevelGoo(int level);

  // Applies one costed candidate to `target`: for merge joins, the
  // dominance pre-gate runs before Sort enforcers are materialized (the
  // serial allocation discipline); every kind then funnels through TryAdd.
  bool ApplyCandidate(MemoEntry* target, const JoinCandidate& c);

  const PlanNode* MaterializeSorted(const MemoEntry* e, int eq,
                                    const SortedInput& in);

  bool TryAdd(MemoEntry* target, PlanKind kind, int rel, int edge,
              int ordering, double rows, double cost, const PlanNode* outer,
              const PlanNode* inner);

  const JoinGraph* graph_;
  const CostModel* cost_;
  const OrderingSpace* space_;
  CardinalityEstimator* card_;
  Memo* memo_;
  PlanPool* pool_;
  MemoryGauge* gauge_;
  OptimizerOptions options_;
  SearchCounters* counters_;
  JoinCandidateGen gen_;
  // Pair-count mask gating budget polls inside RunLevel's inner loop; a
  // ResourceBudget polls denser than the legacy caps because its fast path
  // is cheaper than a gauge read.
  uint64_t poll_mask_;
  bool aborted_ = false;
  OptStatusCode status_ = OptStatusCode::kOk;
  // Installed leaf units in install order (DPccp's quotient-graph nodes).
  std::vector<RelSet> units_;
  // DPccp state, built lazily on the first kDPccp level.
  std::unique_ptr<CsgCmpEnumerator> ccp_;
  std::vector<CcpTask> ccp_tasks_;  // Reused across levels.
  // GOO state: the surviving merge roots, seeded from units_ lazily.
  std::vector<MemoEntry*> goo_roots_;
  bool goo_seeded_ = false;
};

}  // namespace sdp

#endif  // SDPOPT_OPTIMIZER_ENUMERATOR_H_
