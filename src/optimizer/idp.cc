#include "optimizer/idp.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "cost/cardinality.h"
#include "obs/prof/prof.h"
#include "optimizer/enumerator.h"
#include "optimizer/memo.h"
#include "optimizer/parallel_enum.h"
#include "optimizer/plan_pool.h"
#include "optimizer/run_helpers.h"
#include "trace/optimizer_trace.h"

namespace sdp {

namespace {

// A leaf of the current IDP iteration: a base relation still standing
// alone, or a composite collapsed in an earlier iteration (whose retained
// plans live in the persistent arena).
struct Unit {
  RelSet rels;
  double rows = 0;
  double sel = 1;
  bool is_base = true;
  int rel = -1;                   // When is_base.
  std::vector<RankedPlan> plans;  // When composite.
};

// Block size for an iteration over `m` units: plain IDP uses min(k, m); the
// balanced variant spreads the work so no iteration is much larger than the
// others (ceil of the per-iteration reduction needed).
int BlockSize(int m, int k, bool balanced) {
  SDP_CHECK(k >= 2);
  if (m <= k) return m;
  if (!balanced) return k;
  const int iters = (m - 1 + k - 2) / (k - 1);  // ceil((m-1)/(k-1))
  const int block = 1 + (m - 1 + iters - 1) / iters;
  return std::min(block, k);
}

}  // namespace

OptimizeResult OptimizeIDP(const Query& query, const CostModel& cost,
                           const IdpConfig& config,
                           const OptimizerOptions& options) {
  const JoinGraph& graph = query.graph;
  SDP_CHECK(graph.IsConnected(graph.AllRelations()));
  SDP_CHECK(config.k >= 2);
  const std::string name = "IDP(" + std::to_string(config.k) + ")";

  Stopwatch timer;
  MemoryGauge gauge;
  Arena persistent(&gauge);  // Holds retained composite subplans.
  SearchCounters counters;
  std::optional<ColumnRef> order_col;
  if (query.order_by.has_value()) order_col = query.order_by->column;
  OrderingSpace space(graph, order_col);
  CardinalityEstimator card(graph, cost, &gauge);

  std::vector<Unit> units;
  units.reserve(graph.num_relations());
  for (int r = 0; r < graph.num_relations(); ++r) {
    Unit u;
    u.rels = RelSet::Single(r);
    u.rows = cost.ScanOutputRows(r);
    u.sel = 1.0;
    u.is_base = true;
    u.rel = r;
    units.push_back(std::move(u));
  }

  // Iteration contexts are kept alive for the whole run: the PostgreSQL
  // implementation the paper modified allocates all planner structures in
  // one memory context, so earlier iterations' tables are not returned to
  // the system until optimization ends.  The budget check and the reported
  // peak therefore see the cumulative footprint.
  struct IterationContext {
    explicit IterationContext(MemoryGauge* gauge) : pool(gauge), memo(gauge) {}
    PlanPool pool;
    Memo memo;
  };
  std::vector<std::unique_ptr<IterationContext>> iterations;
  Tracer* const tracer = options.tracer;
  if (tracer != nullptr) {
    tracer->OnRunBegin(MakeTraceRunBegin(name, graph, cost));
  }
  // One worker pool spans every iteration's enumerator.
  OptimizerOptions run_options = options;
  IntraQueryWorkers intra(&run_options);
  if (run_options.enumerator == PlanEnumeratorKind::kGOO) {
    // GOO leaves levels incomplete; the balloon phase needs every
    // level-`block` composite, so iterations fall back to DPsize.
    run_options.enumerator = PlanEnumeratorKind::kDPsize;
  }

  for (int iteration = 0;; ++iteration) {
    const int m = static_cast<int>(units.size());
    const int block = BlockSize(m, config.k, config.balanced);

    iterations.push_back(std::make_unique<IterationContext>(&gauge));
    PlanPool& pool = iterations.back()->pool;
    Memo& memo = iterations.back()->memo;
    JoinEnumerator enumerator(graph, cost, space, &card, &memo, &pool,
                              &gauge, run_options, &counters);
    {
      TraceLevelScope span(tracer, iteration, 1, "leaves", counters, gauge);
      for (const Unit& u : units) {
        if (u.is_base) {
          enumerator.InstallBaseRelationLeaf(u.rel);
        } else {
          enumerator.InstallLeaf(u.rels, u.rows, u.sel, u.plans);
        }
      }
    }

    bool aborted = false;
    for (int level = 2; level <= block && !aborted; ++level) {
      TraceLevelScope span(tracer, iteration, level, "level", counters,
                           gauge);
      aborted = !enumerator.RunLevel(level);
    }
    if (aborted) {
      OptimizeResult result =
          MakeOptimizeResult(name, nullptr, counters, timer.Seconds(), gauge,
                             enumerator.abort_status());
      EmitTraceRunEnd(tracer, result);
      return result;
    }

    if (block == m) {
      // Final block: DP covered all remaining units.
      MemoEntry* full = memo.Find(graph.AllRelations());
      SDP_CHECK(full != nullptr);
      const PlanNode* plan = enumerator.FinalizeBestPlan(full);
      OptimizeResult result =
          MakeOptimizeResult(name, plan, counters, timer.Seconds(), gauge);
      EmitTraceRunEnd(tracer, result);
      return result;
    }

    // The balloon completions below cost plans through EmitJoinsInto, so
    // they get their own span to keep trace totals equal to the counters.
    TraceLevelScope balloon_span(tracer, iteration, block, "balloon",
                                 counters, gauge);

    // Candidate subplans: the level-`block` composites, best-first by the
    // MinRows evaluation function.
    std::vector<MemoEntry*> candidates = memo.EntriesWithUnitCount(block);
    SDP_CHECK(!candidates.empty());
    std::sort(candidates.begin(), candidates.end(),
              [](const MemoEntry* a, const MemoEntry* b) {
                if (a->rows != b->rows) return a->rows < b->rows;
                return a->rels.bits() < b->rels.bits();
              });
    const int keep = std::max(
        1, static_cast<int>(config.balloon_fraction *
                            static_cast<double>(candidates.size()) + 0.999));
    candidates.resize(std::min<size_t>(candidates.size(), keep));

    // Balloon each candidate to a complete plan with greedy MinRows steps.
    // The completion is evaluated with the Minimum-Intermediate-Result
    // function (sum of intermediate cardinalities) -- the paper's
    // "MinRows" plan evaluation, which is blind to access paths and is the
    // reason IDP's commitments go wrong on hub-heavy graphs.
    MemoEntry* winner = nullptr;
    double winner_score = 0;
    bool balloon_aborted = false;
    // Balloon walks the unit adjacency greedily (enumerate); each MinRows
    // completion step costs plans through EmitJoinsInto, which re-tags
    // its own extent as cost.
    ProfPhase balloon_phase(ProfPhaseKind::kEnumerate);
    for (MemoEntry* cand : candidates) {
      if (enumerator.CheckBudget()) {
        balloon_aborted = true;
        break;
      }
      MemoEntry cur;
      cur.rels = cand->rels;
      cur.unit_count = cand->unit_count;
      cur.rows = cand->rows;
      cur.sel = cand->sel;
      cur.plans = cand->plans;
      double intermediate_sum = cand->rows;
      while (cur.rels != graph.AllRelations()) {
        // MinRows step: the adjacent unit minimizing the joined cardinality.
        const Unit* next = nullptr;
        double next_rows = 0;
        for (const Unit& u : units) {
          if (u.rels.Overlaps(cur.rels)) continue;
          if (!graph.AreAdjacent(cur.rels, u.rels)) continue;
          const double joined = card.Rows(cur.rels.Union(u.rels));
          if (next == nullptr || joined < next_rows) {
            next = &u;
            next_rows = joined;
          }
        }
        SDP_CHECK(next != nullptr);  // Graph is connected.
        MemoEntry scratch;
        scratch.rels = cur.rels.Union(next->rels);
        scratch.unit_count = cur.unit_count + 1;
        scratch.rows = card.Rows(scratch.rels);
        scratch.sel = card.Selectivity(scratch.rels);
        enumerator.EmitJoinsInto(&scratch, &cur, memo.Find(next->rels));
        cur = std::move(scratch);
        intermediate_sum += cur.rows;
        if (enumerator.CheckBudget()) {
          balloon_aborted = true;
          break;
        }
      }
      if (balloon_aborted) break;
      if (winner == nullptr || intermediate_sum < winner_score) {
        winner = cand;
        winner_score = intermediate_sum;
      }
    }
    if (balloon_aborted) {
      OptimizeResult result =
          MakeOptimizeResult(name, nullptr, counters, timer.Seconds(), gauge,
                             enumerator.abort_status());
      EmitTraceRunEnd(tracer, result);
      return result;
    }
    SDP_CHECK(winner != nullptr);

    // Collapse the winning subplan into a composite unit whose plans are
    // deep-copied into the run-lifetime arena.
    ProfPhase collapse_phase(ProfPhaseKind::kEnumerate);
    Unit composite;
    composite.rels = winner->rels;
    composite.rows = winner->rows;
    composite.sel = winner->sel;
    composite.is_base = false;
    composite.plans.reserve(winner->plans.size());
    for (const RankedPlan& rp : winner->plans) {
      composite.plans.push_back(
          RankedPlan{rp.ordering, ClonePlanTree(rp.plan, &persistent)});
    }
    std::vector<Unit> next_units;
    next_units.reserve(units.size() - block + 1);
    for (Unit& u : units) {
      if (!u.rels.IsSubsetOf(winner->rels)) next_units.push_back(std::move(u));
    }
    next_units.push_back(std::move(composite));
    SDP_CHECK(static_cast<int>(next_units.size()) == m - block + 1);
    units = std::move(next_units);
  }
}

OptimizeResult OptimizeIDP2(const Query& query, const CostModel& cost,
                            const IdpConfig& config,
                            const OptimizerOptions& options) {
  const JoinGraph& graph = query.graph;
  SDP_CHECK(graph.IsConnected(graph.AllRelations()));
  SDP_CHECK(config.k >= 2);
  const std::string name = "IDP2(" + std::to_string(config.k) + ")";

  Stopwatch timer;
  MemoryGauge gauge;
  Arena persistent(&gauge);
  SearchCounters counters;
  std::optional<ColumnRef> order_col;
  if (query.order_by.has_value()) order_col = query.order_by->column;
  OrderingSpace space(graph, order_col);
  CardinalityEstimator card(graph, cost, &gauge);

  std::vector<Unit> units;
  units.reserve(graph.num_relations());
  for (int r = 0; r < graph.num_relations(); ++r) {
    Unit u;
    u.rels = RelSet::Single(r);
    u.rows = cost.ScanOutputRows(r);
    u.sel = 1.0;
    u.is_base = true;
    u.rel = r;
    units.push_back(std::move(u));
  }

  struct IterationContext {
    explicit IterationContext(MemoryGauge* gauge) : pool(gauge), memo(gauge) {}
    PlanPool pool;
    Memo memo;
  };
  std::vector<std::unique_ptr<IterationContext>> iterations;
  Tracer* const tracer = options.tracer;
  if (tracer != nullptr) {
    tracer->OnRunBegin(MakeTraceRunBegin(name, graph, cost));
  }
  // One worker pool spans every iteration's enumerator.
  OptimizerOptions run_options = options;
  IntraQueryWorkers intra(&run_options);
  if (run_options.enumerator == PlanEnumeratorKind::kGOO) {
    // GOO leaves levels incomplete; the balloon phase needs every
    // level-`block` composite, so iterations fall back to DPsize.
    run_options.enumerator = PlanEnumeratorKind::kDPsize;
  }

  for (int iteration = 0;; ++iteration) {
    const int m = static_cast<int>(units.size());

    // Greedy phase: simulate MinRows merges over the current units (sets
    // only, no plans) until some tree accumulates k units; that tree's
    // leaves form the block DP will optimize exactly.
    std::vector<int> block_indices;  // Indices into `units`.
    std::optional<ProfPhase> greedy_phase;
    greedy_phase.emplace(ProfPhaseKind::kEnumerate);
    std::optional<TraceLevelScope> greedy_span;
    greedy_span.emplace(tracer, iteration, 0, "greedy", counters, gauge);
    if (m <= config.k) {
      for (int i = 0; i < m; ++i) block_indices.push_back(i);
    } else {
      struct Tree {
        RelSet rels;
        std::vector<int> members;  // Unit indices.
      };
      std::vector<Tree> forest;
      forest.reserve(units.size());
      for (int i = 0; i < m; ++i) {
        forest.push_back(Tree{units[i].rels, {i}});
      }
      while (block_indices.empty()) {
        // Cheapest adjacent merge not exceeding k units.
        int best_a = -1, best_b = -1;
        double best_rows = 0;
        for (size_t a = 0; a < forest.size(); ++a) {
          for (size_t b = a + 1; b < forest.size(); ++b) {
            if (static_cast<int>(forest[a].members.size() +
                                 forest[b].members.size()) > config.k) {
              continue;
            }
            if (!graph.AreAdjacent(forest[a].rels, forest[b].rels)) continue;
            const double rows =
                card.Rows(forest[a].rels.Union(forest[b].rels));
            if (best_a < 0 || rows < best_rows) {
              best_a = static_cast<int>(a);
              best_b = static_cast<int>(b);
              best_rows = rows;
            }
          }
        }
        if (best_a < 0) {
          // Every merge would overshoot k: take the largest tree so far.
          size_t largest = 0;
          for (size_t t = 1; t < forest.size(); ++t) {
            if (forest[t].members.size() > forest[largest].members.size()) {
              largest = t;
            }
          }
          block_indices = forest[largest].members;
          break;
        }
        Tree merged;
        merged.rels = forest[best_a].rels.Union(forest[best_b].rels);
        merged.members = forest[best_a].members;
        merged.members.insert(merged.members.end(),
                              forest[best_b].members.begin(),
                              forest[best_b].members.end());
        if (static_cast<int>(merged.members.size()) == config.k) {
          block_indices = merged.members;
          break;
        }
        forest[best_a] = std::move(merged);
        forest.erase(forest.begin() + best_b);
      }
      // A singleton block cannot be collapsed into progress; grow it by one
      // adjacent unit (possible: the graph is connected and m >= 2).
      if (block_indices.size() == 1) {
        const RelSet rels = units[block_indices[0]].rels;
        for (int i = 0; i < m; ++i) {
          if (i != block_indices[0] &&
              graph.AreAdjacent(rels, units[i].rels)) {
            block_indices.push_back(i);
            break;
          }
        }
        SDP_CHECK(block_indices.size() == 2);
      }
    }
    greedy_span.reset();  // Close the greedy span before DP spans open.
    greedy_phase.reset();

    // DP phase: exhaustive DP over the block's units.
    iterations.push_back(std::make_unique<IterationContext>(&gauge));
    PlanPool& pool = iterations.back()->pool;
    Memo& memo = iterations.back()->memo;
    JoinEnumerator enumerator(graph, cost, space, &card, &memo, &pool,
                              &gauge, run_options, &counters);
    RelSet block_rels;
    {
      TraceLevelScope span(tracer, iteration, 1, "leaves", counters, gauge);
      for (int i : block_indices) {
        const Unit& u = units[i];
        block_rels = block_rels.Union(u.rels);
        if (u.is_base) {
          enumerator.InstallBaseRelationLeaf(u.rel);
        } else {
          enumerator.InstallLeaf(u.rels, u.rows, u.sel, u.plans);
        }
      }
    }
    bool aborted = false;
    for (int level = 2;
         level <= static_cast<int>(block_indices.size()) && !aborted;
         ++level) {
      TraceLevelScope span(tracer, iteration, level, "level", counters,
                           gauge);
      aborted = !enumerator.RunLevel(level);
    }
    if (aborted) {
      OptimizeResult result =
          MakeOptimizeResult(name, nullptr, counters, timer.Seconds(), gauge,
                             enumerator.abort_status());
      EmitTraceRunEnd(tracer, result);
      return result;
    }
    MemoEntry* full = memo.Find(block_rels);
    SDP_CHECK(full != nullptr);

    if (block_rels == graph.AllRelations()) {
      const PlanNode* plan = enumerator.FinalizeBestPlan(full);
      OptimizeResult result =
          MakeOptimizeResult(name, plan, counters, timer.Seconds(), gauge);
      EmitTraceRunEnd(tracer, result);
      return result;
    }

    // Collapse the optimized block.
    ProfPhase collapse_phase(ProfPhaseKind::kEnumerate);
    Unit composite;
    composite.rels = full->rels;
    composite.rows = full->rows;
    composite.sel = full->sel;
    composite.is_base = false;
    composite.plans.reserve(full->plans.size());
    for (const RankedPlan& rp : full->plans) {
      composite.plans.push_back(
          RankedPlan{rp.ordering, ClonePlanTree(rp.plan, &persistent)});
    }
    std::vector<Unit> next_units;
    next_units.reserve(units.size() - block_indices.size() + 1);
    for (int i = 0; i < m; ++i) {
      if (!units[i].rels.IsSubsetOf(block_rels)) {
        next_units.push_back(std::move(units[i]));
      }
    }
    next_units.push_back(std::move(composite));
    units = std::move(next_units);
  }
}

}  // namespace sdp
