#include "optimizer/memo.h"

#include <limits>

#include "common/check.h"
#include "obs/prof/prof.h"

namespace sdp {

const PlanNode* MemoEntry::CheapestPlan() const {
  const PlanNode* best = nullptr;
  for (const RankedPlan& rp : plans) {
    if (best == nullptr || rp.plan->cost < best->cost) best = rp.plan;
  }
  return best;
}

double MemoEntry::CheapestCost() const {
  const PlanNode* best = CheapestPlan();
  return best != nullptr ? best->cost
                         : std::numeric_limits<double>::infinity();
}

const PlanNode* MemoEntry::PlanWithOrdering(int eq) const {
  for (const RankedPlan& rp : plans) {
    if (rp.ordering == eq) return rp.plan;
  }
  return nullptr;
}

bool MemoEntry::WouldImprove(int ordering, double cost) const {
  // A candidate is dominated by an existing plan that costs no more and
  // provides the candidate's ordering (any plan serves the unordered case).
  for (const RankedPlan& rp : plans) {
    if (rp.plan->cost <= cost &&
        (rp.ordering == ordering || ordering == -1)) {
      return false;
    }
  }
  return true;
}

bool MemoEntry::AddPlan(const PlanNode* plan,
                        std::vector<const PlanNode*>* evicted) {
  if (!WouldImprove(plan->ordering, plan->cost)) return false;
  // Evict plans the newcomer dominates: those costing at least as much
  // whose ordering the newcomer provides (its own ordering group, plus the
  // unordered group).
  size_t w = 0;
  for (size_t r = 0; r < plans.size(); ++r) {
    const RankedPlan& rp = plans[r];
    const bool dominated =
        plan->cost <= rp.plan->cost &&
        (rp.ordering == plan->ordering || rp.ordering == -1);
    if (dominated) {
      if (evicted != nullptr) evicted->push_back(rp.plan);
    } else {
      plans[w++] = rp;
    }
  }
  plans.resize(w);
  plans.push_back(RankedPlan{plan->ordering, plan});
  return true;
}

Memo::Memo(MemoryGauge* gauge) : gauge_(gauge) {}

Memo::~Memo() {
  if (gauge_ != nullptr) gauge_->Release(charged_bytes_);
}

MemoEntry* Memo::Find(RelSet rels) {
  auto it = map_.find(rels);
  return it == map_.end() ? nullptr : &it->second;
}

MemoEntry* Memo::GetOrCreate(RelSet rels, int unit_count, double rows,
                             double sel, bool* created) {
  auto [it, inserted] = map_.try_emplace(rels);
  *created = inserted;
  MemoEntry* entry = &it->second;
  if (inserted) {
    entry->rels = rels;
    entry->unit_count = unit_count;
    entry->rows = rows;
    entry->sel = sel;
    if (static_cast<int>(by_unit_count_.size()) <= unit_count) {
      by_unit_count_.resize(unit_count + 1);
    }
    by_unit_count_[unit_count].push_back(entry);
    if (gauge_ != nullptr) {
      gauge_->Charge(kEntryBytes);
      charged_bytes_ += kEntryBytes;
      ProfRecordAlloc(ProfAllocSource::kMemo, kEntryBytes);
    }
  } else {
    SDP_DCHECK(entry->unit_count == unit_count);
  }
  return entry;
}

const std::vector<MemoEntry*>& Memo::EntriesWithUnitCount(
    int unit_count) const {
  if (unit_count < 0 || unit_count >= static_cast<int>(by_unit_count_.size())) {
    return empty_;
  }
  return by_unit_count_[unit_count];
}

void Memo::ChargePlanSlot() {
  if (gauge_ != nullptr) {
    gauge_->Charge(kPlanSlotBytes);
    charged_bytes_ += kPlanSlotBytes;
    ProfRecordAlloc(ProfAllocSource::kMemo, kPlanSlotBytes);
  }
}

void Memo::Erase(MemoEntry* entry) {
  SDP_CHECK(entry != nullptr);
  auto& list = by_unit_count_.at(entry->unit_count);
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i] == entry) {
      list[i] = list.back();
      list.pop_back();
      break;
    }
  }
  // Release the entry plus (a lower bound of) its plan-slot charges.
  const size_t bytes = kEntryBytes + entry->plans.size() * kPlanSlotBytes;
  if (gauge_ != nullptr) {
    gauge_->Release(bytes);
    SDP_DCHECK(charged_bytes_ >= bytes);
    charged_bytes_ -= bytes;
  }
  const size_t erased = map_.erase(entry->rels);
  SDP_CHECK(erased == 1);
}

}  // namespace sdp
