#ifndef SDPOPT_OPTIMIZER_PARALLEL_ENUM_H_
#define SDPOPT_OPTIMIZER_PARALLEL_ENUM_H_

#include <memory>

#include "common/thread_pool.h"
#include "optimizer/optimizer_types.h"

namespace sdp {

// Run-scoped owner of the intra-query enumeration workers.
//
// Drivers construct one over their (copied) OptimizerOptions: when
// opt_threads > 1 and no pool was supplied, it spawns opt_threads - 1
// workers (the calling thread is the remaining enumeration worker) and
// wires them into options->intra_pool; the destructor joins them after the
// run.  When the caller supplied a pool -- e.g. OptimizeWithFallback
// sharing one pool across every rung of the degradation ladder -- this is
// a no-op and the pool is borrowed, not owned.
//
// The pool must be private to one optimization run: JoinEnumerator's
// parallel level phase assumes every pool worker is available to pull
// enumeration chunks.  In particular it must never be the
// OptimizerService's request pool (whose workers are busy being requests).
class IntraQueryWorkers {
 public:
  explicit IntraQueryWorkers(OptimizerOptions* options);
  ~IntraQueryWorkers();

  IntraQueryWorkers(const IntraQueryWorkers&) = delete;
  IntraQueryWorkers& operator=(const IntraQueryWorkers&) = delete;

 private:
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace sdp

#endif  // SDPOPT_OPTIMIZER_PARALLEL_ENUM_H_
