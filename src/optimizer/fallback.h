#ifndef SDPOPT_OPTIMIZER_FALLBACK_H_
#define SDPOPT_OPTIMIZER_FALLBACK_H_

#include <mutex>
#include <string>
#include <vector>

#include "core/sdp.h"
#include "cost/cost_model.h"
#include "optimizer/idp.h"
#include "optimizer/optimizer_types.h"
#include "query/join_graph.h"

namespace sdp {

// The degradation ladder's rungs, cheapest-guarantee first.  The ladder
// only ever escalates toward kGreedy: each rung trades optimality for a
// smaller search space, exactly the DP -> IDP -> SDP spectrum the paper
// studies, with a greedy left-deep chain as the unconditional last resort.
enum class FallbackRung : int {
  kDP = 0,
  kIDP = 1,
  kSDP = 2,
  kGreedy = 3,
};

const char* FallbackRungName(FallbackRung rung);
// The rung's reporting label for a given request: kGreedy reads "goo"
// when the request selected the GOO enumerator (the greedy rung then runs
// Greedy Operator Ordering instead of the left-deep chain), so /statusz,
// rung metrics and quarantine pinning distinguish the two heuristics.
const char* FallbackRungLabel(FallbackRung rung,
                              const OptimizerOptions& options);
// Parses "dp" / "idp" / "sdp" / "greedy" (as used by --max-rung); "goo"
// is accepted as an alias for the greedy rung.
bool ParseFallbackRung(const std::string& text, FallbackRung* out);

struct FallbackConfig {
  // First rung tried: the algorithm the request asked for.
  FallbackRung start_rung = FallbackRung::kDP;
  // Deepest rung the ladder may escalate to.  A request whose start rung
  // is deeper than max_rung runs its start rung only.
  FallbackRung max_rung = FallbackRung::kGreedy;
  // Configurations used when the ladder reaches the IDP / SDP rungs.
  IdpConfig idp;
  SdpConfig sdp;
  // Run IDP2 instead of IDP1 on the IDP rung (requests that asked for
  // IDP2 keep their variant when the ladder lands there).
  bool use_idp2 = false;
};

// Per-rung failure circuit breaker: `threshold` consecutive rung failures
// open the breaker; while open, Allow() refuses `cooldown` probes, then
// half-opens to let one request test the rung (success closes it, failure
// re-opens).  Counts requests, not wall clock, so behavior is
// deterministic under test.  Thread-safe: one instance is shared by all
// service workers.
class RungBreaker {
 public:
  RungBreaker(int threshold = 5, int cooldown = 16)
      : threshold_(threshold), cooldown_(cooldown) {}

  bool Allow();
  // Both return true when this call changed the breaker's open state
  // (RecordSuccess closed it / RecordFailure opened it), so callers can
  // emit breaker-transition events exactly once.
  bool RecordSuccess();
  bool RecordFailure();

  bool open() const {
    std::lock_guard<std::mutex> lock(mu_);
    return open_;
  }

 private:
  const int threshold_;
  const int cooldown_;
  mutable std::mutex mu_;
  int consecutive_failures_ = 0;
  int skips_remaining_ = 0;
  bool open_ = false;
  bool half_open_probe_ = false;
};

// One breaker per ladder rung.
class RungBreakerSet {
 public:
  explicit RungBreakerSet(int threshold = 5, int cooldown = 16)
      : breakers_{{threshold, cooldown},
                  {threshold, cooldown},
                  {threshold, cooldown},
                  {threshold, cooldown}} {}

  RungBreaker& For(FallbackRung rung) {
    return breakers_[static_cast<int>(rung)];
  }
  const RungBreaker& For(FallbackRung rung) const {
    return breakers_[static_cast<int>(rung)];
  }

 private:
  RungBreaker breakers_[4];
};

// What happened on one rung of the ladder (for trace/metrics).
struct FallbackAttempt {
  FallbackRung rung = FallbackRung::kDP;
  std::string algorithm;  // e.g. "IDP(7)"; empty when skipped.
  OptStatus status;
  bool skipped_by_breaker = false;
  double elapsed_seconds = 0;
  uint64_t plans_costed = 0;
  double peak_memory_mb = 0;
};

struct FallbackReport {
  std::vector<FallbackAttempt> attempts;
};

// Runs the degradation ladder: tries config.start_rung, and on a
// recoverable budget trip (memory/plans cap, internal defect) escalates
// one rung at a time until a rung produces a valid plan or config.max_rung
// fails too.  Guarantees:
//   - Exceptions never escape: a throwing rung is recorded as kInternal
//     and the ladder escalates.
//   - A returned feasible plan passed ValidatePlanTree.
//   - kCancelled and kDeadlineExceeded stop the ladder immediately (a
//     cheaper rung cannot recover time or a user's cancellation).
//   - options.budget (when set) spans the whole ladder: it is armed once
//     (if the caller has not already) and ResetForRetry() clears only
//     memory trips between rungs.
// Counters, elapsed time and peak memory aggregate across all attempts;
// result.rung / result.retries record the winning rung and how many rungs
// were tried (or skipped by `breakers`) before it.
OptimizeResult OptimizeWithFallback(const Query& query, const CostModel& cost,
                                    const FallbackConfig& config,
                                    const OptimizerOptions& options,
                                    RungBreakerSet* breakers = nullptr,
                                    FallbackReport* report = nullptr);

}  // namespace sdp

#endif  // SDPOPT_OPTIMIZER_FALLBACK_H_
