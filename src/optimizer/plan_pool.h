#ifndef SDPOPT_OPTIMIZER_PLAN_POOL_H_
#define SDPOPT_OPTIMIZER_PLAN_POOL_H_

#include <vector>

#include "common/arena.h"
#include "plan/plan_node.h"

namespace sdp {

// Fixed-size allocator for PlanNodes with a free list, so the enumerator
// can recycle plans evicted by better alternatives and plans of JCRs that
// SDP prunes -- the counterpart of PostgreSQL's pfree of rejected paths.
// Without recycling, a large star query accumulates every superseded plan
// generation in the bump arena and memory grows far beyond the live plan
// set.
//
// Recycling is safe because size-driven enumeration finalizes each memo
// level before any parent references its plans: evictions and prunes only
// ever touch plans of the level currently being built, which nothing
// references yet.
//
// Each pool stamps its nodes with a unique id; Free() ignores nodes owned
// by other allocators (e.g. IDP's persistent clones), so callers can free
// indiscriminately.
//
// Thread-safety: the id counter behind pool construction is atomic, so
// pools may be *created* concurrently (the optimizer service makes one per
// in-flight request), but each pool instance itself remains single-threaded
// -- exactly one request, and therefore one worker, ever touches it.
class PlanPool {
 public:
  explicit PlanPool(MemoryGauge* gauge);
  ~PlanPool();

  PlanPool(const PlanPool&) = delete;
  PlanPool& operator=(const PlanPool&) = delete;

  // A default-initialized node owned by this pool.
  PlanNode* New();

  // Returns the node to the free list if this pool owns it; no-op
  // otherwise.  The node must not be referenced anywhere.
  void Free(const PlanNode* node);

  // Frees a plan-list top node together with its Sort children (Sort
  // enforcers are always created exclusively for one parent).  Children
  // other than sorts belong to lower memo levels and stay alive.
  void FreeTopAndSorts(const PlanNode* node);

  size_t live_nodes() const { return live_nodes_; }

 private:
  MemoryGauge* gauge_;
  Arena arena_;  // Unmetered; the pool meters live nodes itself.
  std::vector<PlanNode*> free_list_;
  size_t live_nodes_ = 0;
  uint32_t id_;
};

}  // namespace sdp

#endif  // SDPOPT_OPTIMIZER_PLAN_POOL_H_
