#include "optimizer/plan_pool.h"

#include <atomic>

#include "common/check.h"

namespace sdp {

namespace {
// Pool ids start at 1; 0 marks nodes owned by plain arenas (clones).
// Atomic because pools are constructed concurrently by service workers
// (one pool per in-flight request), even though each pool is then used by
// a single thread.
uint32_t NextPoolId() {
  static std::atomic<uint32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

PlanPool::PlanPool(MemoryGauge* gauge)
    : gauge_(gauge), arena_(nullptr), id_(NextPoolId()) {}

PlanPool::~PlanPool() {
  if (gauge_ != nullptr) gauge_->Release(live_nodes_ * sizeof(PlanNode));
}

PlanNode* PlanPool::New() {
  PlanNode* node;
  if (!free_list_.empty()) {
    node = free_list_.back();
    free_list_.pop_back();
    *node = PlanNode();
  } else {
    node = arena_.New<PlanNode>();
  }
  node->pool_id = id_;
  ++live_nodes_;
  if (gauge_ != nullptr) gauge_->Charge(sizeof(PlanNode));
  return node;
}

void PlanPool::Free(const PlanNode* node) {
  if (node == nullptr || node->pool_id != id_) return;
  PlanNode* mutable_node = const_cast<PlanNode*>(node);
  mutable_node->pool_id = 0;  // Guards against double free.
  free_list_.push_back(mutable_node);
  SDP_DCHECK(live_nodes_ > 0);
  --live_nodes_;
  if (gauge_ != nullptr) gauge_->Release(sizeof(PlanNode));
}

void PlanPool::FreeTopAndSorts(const PlanNode* node) {
  if (node == nullptr) return;
  if (node->outer != nullptr && node->outer->kind == PlanKind::kSort) {
    Free(node->outer);
  }
  if (node->inner != nullptr && node->inner->kind == PlanKind::kSort) {
    Free(node->inner);
  }
  Free(node);
}

}  // namespace sdp
