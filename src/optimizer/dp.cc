#include "optimizer/dp.h"

#include "common/arena.h"
#include "common/check.h"
#include "cost/cardinality.h"
#include "obs/prof/prof.h"
#include "optimizer/enumerator.h"
#include "optimizer/memo.h"
#include "optimizer/parallel_enum.h"
#include "optimizer/plan_pool.h"
#include "optimizer/run_helpers.h"
#include "trace/optimizer_trace.h"

namespace sdp {

OptimizeResult OptimizeDP(const Query& query, const CostModel& cost,
                          const OptimizerOptions& options) {
  const JoinGraph& graph = query.graph;
  SDP_CHECK(graph.IsConnected(graph.AllRelations()));

  Stopwatch timer;
  MemoryGauge gauge;
  PlanPool pool(&gauge);
  Memo memo(&gauge);
  CardinalityEstimator card(graph, cost, &gauge);
  std::optional<ColumnRef> order_col;
  if (query.order_by.has_value()) order_col = query.order_by->column;
  OrderingSpace space(graph, order_col);
  SearchCounters counters;
  OptimizerOptions run_options = options;
  IntraQueryWorkers intra(&run_options);
  JoinEnumerator enumerator(graph, cost, space, &card, &memo, &pool, &gauge,
                            run_options, &counters);
  Tracer* const tracer = options.tracer;
  if (tracer != nullptr) {
    tracer->OnRunBegin(MakeTraceRunBegin("DP", graph, cost));
  }

  {
    TraceLevelScope span(tracer, 0, 1, "leaves", counters, gauge);
    enumerator.InstallBaseRelationLeaves();
  }
  const int n = graph.num_relations();
  bool aborted = false;
  for (int level = 2; level <= n && !aborted; ++level) {
    TraceLevelScope span(tracer, 0, level, "level", counters, gauge);
    aborted = !enumerator.RunLevel(level);
  }
  if (aborted) {
    OptimizeResult result =
        MakeOptimizeResult("DP", nullptr, counters, timer.Seconds(), gauge,
                           enumerator.abort_status());
    EmitTraceRunEnd(tracer, result);
    return result;
  }
  MemoEntry* full = memo.Find(graph.AllRelations());
  SDP_CHECK(full != nullptr);
  const PlanNode* plan = enumerator.FinalizeBestPlan(full);
  OptimizeResult result =
      MakeOptimizeResult("DP", plan, counters, timer.Seconds(), gauge);
  EmitTraceRunEnd(tracer, result);
  return result;
}

OptimizeResult OptimizeDPSub(const Query& query, const CostModel& cost,
                             const OptimizerOptions& options) {
  const JoinGraph& graph = query.graph;
  SDP_CHECK(graph.IsConnected(graph.AllRelations()));
  const int n = graph.num_relations();
  SDP_CHECK(n <= 24);  // Exponential enumeration: cross-check scale only.

  Stopwatch timer;
  MemoryGauge gauge;
  PlanPool pool(&gauge);
  Memo memo(&gauge);
  CardinalityEstimator card(graph, cost, &gauge);
  std::optional<ColumnRef> order_col;
  if (query.order_by.has_value()) order_col = query.order_by->column;
  OrderingSpace space(graph, order_col);
  SearchCounters counters;
  JoinEnumerator enumerator(graph, cost, space, &card, &memo, &pool, &gauge,
                            options, &counters);
  Tracer* const tracer = options.tracer;
  if (tracer != nullptr) {
    tracer->OnRunBegin(MakeTraceRunBegin("DPsub", graph, cost));
  }

  {
    TraceLevelScope span(tracer, 0, 1, "leaves", counters, gauge);
    enumerator.InstallBaseRelationLeaves();
  }
  {
    // DPsub enumerates by subset mask, not level; one span covers the whole
    // enumeration so trace totals still reconcile with the counters.
    TraceLevelScope span(tracer, 0, n, "enumerate", counters, gauge);
    ProfPhase phase(ProfPhaseKind::kEnumerate);
    const uint64_t limit = uint64_t{1} << n;
    for (uint64_t bits = 1; bits < limit; ++bits) {
      const RelSet s(bits);
      if (s.Count() < 2 || !graph.IsConnected(s)) continue;
      // All proper submask splits; every subset of `bits` is numerically
      // smaller, so both halves are already fully planned.
      for (uint64_t sub = (bits - 1) & bits; sub != 0;
           sub = (sub - 1) & bits) {
        const RelSet a(sub);
        const RelSet b = s.Subtract(a);
        if (a.bits() > b.bits()) continue;  // Unordered pairs once.
        ++counters.pairs_examined;
        MemoEntry* ea = memo.Find(a);
        MemoEntry* eb = memo.Find(b);
        if (ea == nullptr || eb == nullptr) continue;  // Disconnected half.
        if (!graph.AreAdjacent(a, b)) continue;
        ProfPhase cost_phase(ProfPhaseKind::kCost);
        bool created = false;
        MemoEntry* target = memo.GetOrCreate(
            s, ea->unit_count + eb->unit_count, card.Rows(s),
            card.Selectivity(s), &created);
        if (created) ++counters.jcrs_created;
        enumerator.EmitJoinsInto(target, ea, eb);
      }
      if ((bits & 0xFF) == 0 && enumerator.CheckBudget()) break;
    }
  }
  if (enumerator.CheckBudget()) {
    OptimizeResult result =
        MakeOptimizeResult("DPsub", nullptr, counters, timer.Seconds(), gauge,
                           enumerator.abort_status());
    EmitTraceRunEnd(tracer, result);
    return result;
  }
  MemoEntry* full = memo.Find(graph.AllRelations());
  SDP_CHECK(full != nullptr);
  const PlanNode* plan = enumerator.FinalizeBestPlan(full);
  OptimizeResult result =
      MakeOptimizeResult("DPsub", plan, counters, timer.Seconds(), gauge);
  EmitTraceRunEnd(tracer, result);
  return result;
}

}  // namespace sdp
