#ifndef SDPOPT_OPTIMIZER_PLAN_ENUMERATOR_H_
#define SDPOPT_OPTIMIZER_PLAN_ENUMERATOR_H_

// DPccp candidate-pair generation (Moerkotte & Neumann, "Analysis of Two
// Existing and One New Dynamic Programming Algorithm for the Generation
// of Optimal Bushy Join Trees"): connected-subgraph / complement-pair
// (csg-cmp) enumeration over the query graph's neighborhoods.  Where the
// size-driven DPsize scan examines every (a, b) entry pair whose unit
// counts sum to the level -- including the disconnected and overlapping
// majority -- DPccp walks only the valid pairs: S1 a connected subgraph,
// S2 a connected subgraph of the complement adjacent to S1, each
// unordered pair visited exactly once (min(S1) < min(S2)).
//
// The enumeration here is *level-grouped* to slot into the existing
// drivers: EnumerateLevel(L) emits exactly the csg-cmp pairs with
// |S1| + |S2| = L, in a deterministic canonical order, so the DP/IDP/SDP
// level loops (per-level tracing, SDP's between-level pruning, IDP's
// block iterations) keep their structure and the serial/parallel
// bit-identity contract extends naturally: the level's pair list is built
// once by the owning thread and then either costed in order (serial) or
// sharded across workers and merged back in list order (parallel).
//
// Nodes are *units* -- base relations in DP/SDP, possibly composite
// leaves in IDP iterations -- so the enumeration runs on the quotient
// graph of installed leaves, capped at RelSet::kMaxRelations (64) units.

#include <stdint.h>

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/rel_set.h"
#include "optimizer/optimizer_types.h"
#include "query/join_graph.h"

namespace sdp {

// Enumerates csg-cmp unit-mask pairs of one level at a time.  Construct
// once per optimization run (the unit adjacency and the RelSet intern
// table persist across levels); not thread-safe -- the owning thread
// builds each level's pair list before any worker sees it.
class CsgCmpEnumerator {
 public:
  // `unit_rels[u]` is unit u's relation set.  Units u and v are adjacent
  // when some join edge connects their relation sets.
  CsgCmpEnumerator(const JoinGraph& graph,
                   const std::vector<RelSet>& unit_rels,
                   SearchCounters* counters);

  using PairSink = std::function<void(uint64_t s1, uint64_t s2)>;

  // Calls sink(S1, S2) for every csg-cmp pair with
  // popcount(S1) + popcount(S2) == level, exactly once per unordered pair
  // (min element of S1 below min element of S2), in a deterministic
  // canonical order: start nodes descending, subgraph extensions in
  // ascending subset order, emission before recursion.
  void EnumerateLevel(int level, const PairSink& sink);

  // The union of unit RelSets for a unit mask, interned: repeat lookups
  // of a mask across levels reuse the materialized RelSet and count one
  // relset_intern_hits.
  RelSet RelsFor(uint64_t unit_mask);

  int num_units() const { return static_cast<int>(unit_rels_.size()); }

 private:
  // Union of per-unit adjacency masks over `mask`'s bits, minus `mask`.
  uint64_t NeighborMask(uint64_t mask) const;

  // Emits every cmp S2 of exact size level - |s1| for csg s1.
  void EmitCmpsFor(uint64_t s1, int level, const PairSink& sink);
  // Grows csg s1 through its neighborhood (prohibition mask x), emitting
  // each extension's cmps, sizes capped at level - 1.
  void ExpandCsg(uint64_t s1, uint64_t x, int level, const PairSink& sink);
  // Grows cmp s2 toward exact size `want` (prohibition mask x covers s1,
  // the nodes below min(s1), and previously offered neighbors).
  void ExpandCmp(uint64_t s1, uint64_t s2, uint64_t x, int want,
                 const PairSink& sink);

  std::vector<RelSet> unit_rels_;
  std::vector<uint64_t> unit_adj_;  // unit_adj_[u] = mask of adjacent units.
  SearchCounters* counters_;
  std::unordered_map<uint64_t, RelSet> interned_;
};

}  // namespace sdp

#endif  // SDPOPT_OPTIMIZER_PLAN_ENUMERATOR_H_
