#ifndef SDPOPT_OPTIMIZER_MEMO_H_
#define SDPOPT_OPTIMIZER_MEMO_H_

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/rel_set.h"
#include "plan/plan_node.h"

namespace sdp {

// A plan retained for one memo entry; at most one plan per distinct output
// ordering (-1 = unordered), each the cheapest known for that ordering.
struct RankedPlan {
  int ordering = -1;
  const PlanNode* plan = nullptr;
};

// One join-composite relation (JCR) in the dynamic-programming table,
// carrying the SDP feature vector [rows, cheapest cost, selectivity] plus
// the interesting-order plan list.
struct MemoEntry {
  RelSet rels;
  // Number of leaf units composing the entry.  Equals rels.Count() when
  // leaves are base relations; differs under IDP, where leaves may be
  // composites from earlier iterations.
  int unit_count = 0;
  double rows = 0;
  double sel = 1;
  // Set by SDP when the JCR loses its skyline partition(s); pruned entries
  // are skipped by all later enumeration.
  bool pruned = false;
  std::vector<RankedPlan> plans;

  const PlanNode* CheapestPlan() const;
  double CheapestCost() const;
  // The cheapest plan whose output carries ordering `eq`, or null.
  const PlanNode* PlanWithOrdering(int eq) const;

  // True when a plan with this (ordering, cost) would be retained.  Used to
  // avoid allocating plan nodes for dominated candidates.
  bool WouldImprove(int ordering, double cost) const;

  // Inserts `plan`, evicting plans it dominates.  Returns false when the
  // plan was itself dominated (caller wasted an allocation; callers should
  // gate on WouldImprove first).  Evicted plans are appended to `evicted`
  // (when non-null) so the caller can recycle their nodes.
  bool AddPlan(const PlanNode* plan,
               std::vector<const PlanNode*>* evicted = nullptr);
};

// The dynamic-programming table: relation set -> MemoEntry, with per-level
// (unit-count) entry lists for size-driven enumeration.  All footprint is
// charged to the MemoryGauge so the budget check sees the true table size.
class Memo {
 public:
  explicit Memo(MemoryGauge* gauge);
  ~Memo();

  Memo(const Memo&) = delete;
  Memo& operator=(const Memo&) = delete;

  MemoEntry* Find(RelSet rels);

  // Returns the entry for `rels`, creating it (with the given metadata) on
  // first sight.  `created` reports whether a new entry was made.
  MemoEntry* GetOrCreate(RelSet rels, int unit_count, double rows, double sel,
                         bool* created);

  // Entries composed of exactly `unit_count` leaf units, in creation order.
  // Includes pruned entries; callers filter on the `pruned` flag.
  const std::vector<MemoEntry*>& EntriesWithUnitCount(int unit_count) const;

  size_t num_entries() const { return map_.size(); }

  // Pre-sizes the hash table for at least `n` entries, avoiding rehashes
  // during enumeration.  Callers seed it with the level-2 lower bound (one
  // entry per relation plus one per edge).
  void Reserve(size_t n) { map_.reserve(n); }

  // Accounts bytes for one retained RankedPlan slot; called by the
  // enumerator when a plan is added to an entry.
  void ChargePlanSlot();

  // Removes a pruned entry entirely (map slot and size-list slot),
  // releasing its charged bytes.  Only valid between enumeration levels,
  // when nothing holds pointers into the entry, and only for relation sets
  // that can never be re-targeted (their level has completed).
  void Erase(MemoEntry* entry);

 private:
  static constexpr size_t kEntryBytes =
      sizeof(MemoEntry) + 48;  // map node + size-list slot overhead
  static constexpr size_t kPlanSlotBytes = sizeof(RankedPlan);

  MemoryGauge* gauge_;
  // Keyed by RelSet under RelSetHash: the default integer hash is the
  // identity, which clusters the dense low-bit masks DP produces into the
  // same buckets; the splitmix64 mix spreads them.
  std::unordered_map<RelSet, MemoEntry, RelSetHash> map_;
  // Deque: callers hold references to inner lists across entry creation,
  // and deque growth at the end never invalidates existing elements.
  std::deque<std::vector<MemoEntry*>> by_unit_count_;
  std::vector<MemoEntry*> empty_;
  size_t charged_bytes_ = 0;
};

}  // namespace sdp

#endif  // SDPOPT_OPTIMIZER_MEMO_H_
