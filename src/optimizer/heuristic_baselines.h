#ifndef SDPOPT_OPTIMIZER_HEURISTIC_BASELINES_H_
#define SDPOPT_OPTIMIZER_HEURISTIC_BASELINES_H_

#include <stdint.h>

#include "cost/cost_model.h"
#include "optimizer/optimizer_types.h"
#include "query/join_graph.h"

namespace sdp {

// Non-DP baselines from the literature the paper positions itself against
// (Section 1.1 cites randomized and greedy alternatives to DP).  Both scale
// far beyond DP but offer no optimality guarantee; they bound the
// quality/effort space from the "cheap and cheerful" side, complementing
// DP (expensive, optimal) and IDP/SDP (the middle ground).

// Greedy Operator Ordering (Fegaras): repeatedly join the pair of current
// units whose result cardinality is smallest, until one unit remains.
// Physical operators are cost-optimized per step; the *order* is the
// greedy heuristic.  O(n^3) cardinality probes, trivially scalable.
OptimizeResult OptimizeGOO(const Query& query, const CostModel& cost,
                           const OptimizerOptions& options = {});

// Randomized iterative improvement over left-deep join orders: start from
// random connected permutations, hill-climb with adjacent transpositions,
// restart until the probe budget is spent.  A simplified representative of
// the randomized-search family (II / 2PO).
struct RandomizedConfig {
  uint64_t seed = 1;
  int restarts = 8;
  // Hill-climbing stops after this many consecutive non-improving sweeps.
  int max_plateau_sweeps = 2;
};

OptimizeResult OptimizeRandomized(const Query& query, const CostModel& cost,
                                  const RandomizedConfig& config = {},
                                  const OptimizerOptions& options = {});

// Greedy left-deep chain: start from the smallest base relation, repeatedly
// append the adjacent relation minimizing the joined cardinality, and
// cost-optimize each physical step.  O(n^2) cardinality probes and O(n)
// memo entries -- the degradation ladder's last rung, cheap enough to
// succeed under any budget that admits the request at all.
OptimizeResult OptimizeGreedyLeftDeep(const Query& query,
                                      const CostModel& cost,
                                      const OptimizerOptions& options = {});

}  // namespace sdp

#endif  // SDPOPT_OPTIMIZER_HEURISTIC_BASELINES_H_
