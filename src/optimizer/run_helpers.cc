#include "optimizer/run_helpers.h"

#include <memory>
#include <utility>

namespace sdp {

OptimizeResult MakeOptimizeResult(std::string algorithm, const PlanNode* plan,
                                  const SearchCounters& counters,
                                  double elapsed_seconds,
                                  const MemoryGauge& gauge,
                                  OptStatus status) {
  OptimizeResult result;
  result.algorithm = std::move(algorithm);
  result.counters = counters;
  result.elapsed_seconds = elapsed_seconds;
  result.peak_memory_mb = gauge.peak_mb();
  result.peak_memory_bytes = gauge.peak_bytes();
  result.status = std::move(status);
  if (plan != nullptr) {
    result.plan_arena = std::make_shared<Arena>();
    result.plan = ClonePlanTree(plan, result.plan_arena.get());
    result.cost = plan->cost;
    result.rows = plan->rows;
    result.feasible = true;
  } else if (result.status.ok()) {
    result.status = OptStatus::Make(OptStatusCode::kMemoryExceeded,
                                    "optimizer budget exhausted");
  }
  result.rung = result.algorithm;
  return result;
}

}  // namespace sdp
