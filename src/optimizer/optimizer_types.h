#ifndef SDPOPT_OPTIMIZER_OPTIMIZER_TYPES_H_
#define SDPOPT_OPTIMIZER_OPTIMIZER_TYPES_H_

#include <stdint.h>

#include <limits>
#include <memory>
#include <string>

#include "common/arena.h"
#include "common/budget.h"
#include "plan/plan_node.h"

namespace sdp {

class Tracer;
class ThreadPool;

// Wall-time accounting for the intra-query parallel enumerator, kept out
// of SearchCounters on purpose: SearchCounters must stay bit-identical
// between serial and parallel runs (the fingerprint the parallel_enum
// tests assert), while these are timing observations that naturally vary.
// Accumulated by the owner thread only.
struct ParallelEnumStats {
  uint64_t levels = 0;    // Levels that actually ran sharded.
  uint64_t scan_us = 0;   // Summed parallel scan (enumerate) wall time.
  uint64_t merge_us = 0;  // Summed deterministic merge wall time.
};

// Which plan enumerator walks the join-order search space inside the
// DP/IDP/SDP drivers.  All three share the same candidate repertoire and
// apply path (JoinCandidateGen / JoinEnumerator::ApplyCandidate), so for
// topologies where two enumerators both complete they retain identical
// plans -- only the set of candidate *pairs* examined differs.
//
//   kDPsize  size-driven (System-R / PostgreSQL style) pair scan: every
//            (a, b) entry pair whose unit counts sum to the level,
//            including the disconnected/overlapping majority.
//   kDPccp   connected-subgraph / complement-pair enumeration over the
//            query graph's neighborhoods (Moerkotte & Neumann): visits
//            only valid csg-cmp pairs, orders of magnitude fewer on
//            chains and cycles.
//   kGOO     greedy operator ordering: one globally minimum-cardinality
//            adjacent merge per level -- a linear-time heuristic sibling
//            that can replace the fallback ladder's greedy rung.  Honored
//            by the DP driver and the greedy rung; IDP/SDP clamp it to
//            kDPsize (their block/pruning logic needs complete levels).
enum class PlanEnumeratorKind : uint8_t {
  kDPsize = 0,
  kDPccp = 1,
  kGOO = 2,
};

// Stable lowercase name ("dpsize", "dpccp", "goo"), used by the CLI flag
// and the plan-cache key tag.
const char* EnumeratorName(PlanEnumeratorKind kind);
// Parses a name produced by EnumeratorName.  Returns false (and leaves
// *out untouched) on anything else.
bool ParseEnumeratorKind(const std::string& name, PlanEnumeratorKind* out);

// Resource limits for one optimization run.  The paper's notion of
// infeasibility is running out of physical memory (1 GB machines); we make
// the budget explicit so experiments can reproduce the feasibility frontier
// deterministically.  Zero means unlimited.
struct OptimizerOptions {
  size_t memory_budget_bytes = 0;
  uint64_t max_plans_costed = 0;
  // Structured trace sink (see trace/trace.h).  Null disables tracing: the
  // instrumented drivers then do no tracer work beyond one branch per
  // section, and zero allocations.  The tracer never influences the search;
  // results are bit-identical with and without it.
  Tracer* tracer = nullptr;
  // Per-request resource budget (deadline + cancellation + memory), polled
  // cooperatively inside the enumeration loops.  Null disables governance;
  // the legacy memory_budget_bytes / max_plans_costed caps above still
  // apply either way.  Not owned; must outlive the run.
  ResourceBudget* budget = nullptr;
  // Threads enumerating joins *within* one request (1 = serial).  Each DP
  // level's candidate-pair space is sharded across opt_threads workers and
  // merged deterministically, so results are bit-identical to serial at any
  // thread count (see DESIGN.md "Intra-query parallel enumeration").
  int opt_threads = 1;
  // Worker pool for intra-query parallelism.  Null makes each driver create
  // a run-scoped pool of opt_threads - 1 workers (the calling thread is the
  // remaining worker); a non-null pool is borrowed, not owned, and must not
  // be shared with another concurrently-optimizing request.
  ThreadPool* intra_pool = nullptr;
  // Levels with fewer candidate pairs than this run serially: sharding tiny
  // levels costs more in coordination than it saves.  Tests lower it to
  // force the parallel path onto small queries.
  uint64_t parallel_min_pairs = 2048;
  // Optional sink for parallel-enumeration timing (scan/merge seconds per
  // level), accumulated by the owner thread.  Not owned; never influences
  // the search.  The pointer survives the options copies made by
  // OptimizeWithFallback and the drivers, so the service can read it after
  // the run.
  ParallelEnumStats* parallel_stats = nullptr;
  // Plan enumerator walking the search space (see PlanEnumeratorKind).
  // Part of the plan-cache key: two requests differing only here are
  // distinct cache entries.
  PlanEnumeratorKind enumerator = PlanEnumeratorKind::kDPsize;
};

// Search-effort counters, the paper's overhead metrics.
struct SearchCounters {
  // Physical plan alternatives costed ("Costing (in plans)" columns).
  uint64_t plans_costed = 0;
  // Distinct join-composite relations entered into the memo ("JCRs
  // processed", Table 2.3).
  uint64_t jcrs_created = 0;
  // Candidate pairs examined by the enumerator (diagnostic).
  uint64_t pairs_examined = 0;
  // DPccp unit-set interning-table hits (a connected-subgraph mask whose
  // RelSet had already been materialized was reused instead of recomputed).
  // Incremented by the owner thread's build phase only, so the value is
  // bit-identical between serial and parallel runs.
  uint64_t relset_intern_hits = 0;
};

// Outcome of one optimization run.  When `feasible` is false (budget
// exceeded), `plan` is null and cost is +infinity; counters and peak memory
// still describe the partial run.
struct OptimizeResult {
  std::string algorithm;
  bool feasible = false;
  const PlanNode* plan = nullptr;  // Owned by `plan_arena`.
  double cost = std::numeric_limits<double>::infinity();
  double rows = 0;
  SearchCounters counters;
  double elapsed_seconds = 0;
  double peak_memory_mb = 0;
  uint64_t peak_memory_bytes = 0;
  // Why the run ended: OK for a feasible plan, a typed budget/cancellation
  // code otherwise.  Infeasible runs under the legacy caps (no
  // ResourceBudget) report kMemoryExceeded.
  OptStatus status;
  // Degradation-ladder bookkeeping (filled by OptimizeWithFallback):
  // the rung that produced the plan and how many rungs were tried first.
  std::string rung;
  int retries = 0;
  // Keeps `plan` alive after the optimizer's working memory is released.
  std::shared_ptr<Arena> plan_arena;
};

}  // namespace sdp

#endif  // SDPOPT_OPTIMIZER_OPTIMIZER_TYPES_H_
