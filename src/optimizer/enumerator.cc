#include "optimizer/enumerator.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/fault_injection.h"
#include "obs/prof/prof.h"

namespace sdp {

OrderingSpace::OrderingSpace(const JoinGraph& graph,
                             std::optional<ColumnRef> order_column)
    : graph_(&graph), order_column_(order_column) {
  if (order_column_.has_value()) {
    required_id_ = IdFor(*order_column_);
  }
}

int OrderingSpace::IdFor(ColumnRef c) const {
  const int eq = graph_->EquivClass(c);
  if (eq >= 0) return eq;
  if (order_column_.has_value() && c == *order_column_) {
    // A non-join ORDER BY column gets the one extra ordering id.
    return graph_->num_equiv_classes();
  }
  return -1;
}

SortedInput BestSortedInput(const CostModel& cost, const MemoEntry* e,
                            int eq) {
  SortedInput out;
  const PlanNode* sorted = e->PlanWithOrdering(eq);
  const PlanNode* cheapest = e->CheapestPlan();
  const double sort_cost =
      cheapest->cost + cost.SortCost(cheapest->rows, cost.RowWidth(e->rels));
  if (sorted != nullptr && sorted->cost <= sort_cost) {
    out.plan = sorted;
    out.cost = sorted->cost;
    out.needs_sort = false;
  } else {
    out.plan = cheapest;
    out.cost = sort_cost;
    out.needs_sort = true;
  }
  return out;
}

double JoinCandidateGen::HashCost(const PlanNode* outer,
                                  const PlanNode* inner, int num_quals,
                                  double out_rows) const {
  JoinCostInput in;
  in.outer_cost = outer->cost;
  in.outer_rows = outer->rows;
  in.outer_width = cost_->RowWidth(outer->rels);
  in.inner_cost = inner->cost;
  in.inner_rows = inner->rows;
  in.inner_width = cost_->RowWidth(inner->rels);
  in.out_rows = out_rows;
  in.num_quals = num_quals;
  return cost_->HashJoinCost(in);
}

double JoinCandidateGen::NestLoopCost(const PlanNode* outer,
                                      const PlanNode* inner, int num_quals,
                                      double out_rows) const {
  JoinCostInput in;
  in.outer_cost = outer->cost;
  in.outer_rows = outer->rows;
  in.outer_width = cost_->RowWidth(outer->rels);
  in.inner_cost = inner->cost;
  in.inner_rows = inner->rows;
  in.inner_width = cost_->RowWidth(inner->rels);
  in.out_rows = out_rows;
  in.num_quals = num_quals;
  return cost_->NestLoopCost(in);
}

double JoinCandidateGen::MergeCost(const MemoEntry* a, const MemoEntry* b,
                                   const SortedInput& sa,
                                   const SortedInput& sb, int num_quals,
                                   double out_rows) const {
  JoinCostInput in;
  in.outer_cost = sa.cost;
  in.outer_rows = a->rows;
  in.outer_width = cost_->RowWidth(a->rels);
  in.inner_cost = sb.cost;
  in.inner_rows = b->rows;
  in.inner_width = cost_->RowWidth(b->rels);
  in.out_rows = out_rows;
  in.num_quals = num_quals;
  return cost_->MergeJoinCost(in);
}

JoinEnumerator::JoinEnumerator(const JoinGraph& graph, const CostModel& cost,
                               const OrderingSpace& space,
                               CardinalityEstimator* card, Memo* memo,
                               PlanPool* pool, MemoryGauge* gauge,
                               const OptimizerOptions& options,
                               SearchCounters* counters)
    : graph_(&graph),
      cost_(&cost),
      space_(&space),
      card_(card),
      memo_(memo),
      pool_(pool),
      gauge_(gauge),
      options_(options),
      counters_(counters),
      gen_(graph, cost, space),
      poll_mask_(options.budget != nullptr ? 0xFF : 0xFFFF) {
  if (options_.budget != nullptr) options_.budget->AttachGauge(gauge_);
  // Level-2 lower bound: one entry per relation plus one per edge.
  memo_->Reserve(graph.num_relations() + graph.edges().size());
}

bool JoinEnumerator::BudgetExceeded() {
  if (aborted_) return true;
  if (options_.budget != nullptr) {
    options_.budget->SetPlansCosted(counters_->plans_costed);
    const OptStatusCode code = options_.budget->CheckPoint();
    if (code != OptStatusCode::kOk) {
      aborted_ = true;
      status_ = code;
      return true;
    }
  }
  if (options_.memory_budget_bytes != 0 &&
      gauge_->current_bytes() > options_.memory_budget_bytes) {
    aborted_ = true;
  }
  if (options_.max_plans_costed != 0 &&
      counters_->plans_costed > options_.max_plans_costed) {
    aborted_ = true;
  }
  if (aborted_) status_ = OptStatusCode::kMemoryExceeded;
  return aborted_;
}

void JoinEnumerator::InstallBaseRelationLeaves() {
  ProfPhase phase(ProfPhaseKind::kEnumerate);
  for (int r = 0; r < graph_->num_relations(); ++r) {
    InstallBaseRelationLeaf(r);
  }
}

MemoEntry* JoinEnumerator::InstallBaseRelationLeaf(int rel) {
  const RelSet rels = RelSet::Single(rel);
  bool created = false;
  MemoEntry* entry =
      memo_->GetOrCreate(rels, 1, cost_->ScanOutputRows(rel), 1.0, &created);
  SDP_CHECK(created);
  units_.push_back(rels);
  ++counters_->jcrs_created;

  ++counters_->plans_costed;
  PlanNode* seq = pool_->New();
  seq->kind = PlanKind::kSeqScan;
  seq->rel = rel;
  seq->rels = rels;
  seq->rows = cost_->ScanOutputRows(rel);
  seq->cost = cost_->SeqScanCost(rel);
  seq->ordering = -1;
  entry->AddPlan(seq);
  memo_->ChargePlanSlot();

  // Index scan: worth keeping only when its order is interesting.
  const int idx_col = cost_->IndexedColumn(rel);
  if (idx_col < 0) return entry;
  const int ordering = space_->IdFor(ColumnRef{rel, idx_col});
  if (ordering < 0) return entry;
  ++counters_->plans_costed;
  const double scan_cost = cost_->IndexScanCost(rel);
  if (!entry->WouldImprove(ordering, scan_cost)) return entry;
  PlanNode* scan = pool_->New();
  scan->kind = PlanKind::kIndexScan;
  scan->rel = rel;
  scan->rels = rels;
  scan->rows = cost_->ScanOutputRows(rel);
  scan->cost = scan_cost;
  scan->ordering = ordering;
  entry->AddPlan(scan);
  memo_->ChargePlanSlot();
  return entry;
}

MemoEntry* JoinEnumerator::InstallLeaf(RelSet rels, double rows, double sel,
                                       const std::vector<RankedPlan>& plans) {
  ProfPhase phase(ProfPhaseKind::kEnumerate);
  bool created = false;
  MemoEntry* entry = memo_->GetOrCreate(rels, 1, rows, sel, &created);
  SDP_CHECK(created);
  units_.push_back(rels);
  ++counters_->jcrs_created;
  for (const RankedPlan& rp : plans) {
    if (entry->AddPlan(rp.plan)) memo_->ChargePlanSlot();
  }
  return entry;
}

bool JoinEnumerator::RunLevel(int level) {
  SDP_CHECK(level >= 2);
  switch (options_.enumerator) {
    case PlanEnumeratorKind::kDPccp:
      return RunLevelCcp(level);
    case PlanEnumeratorKind::kGOO:
      return RunLevelGoo(level);
    case PlanEnumeratorKind::kDPsize:
      break;
  }
  if (options_.opt_threads > 1 && options_.intra_pool != nullptr) {
    return RunLevelParallel(level);
  }
  return RunLevelSerial(level);
}

bool JoinEnumerator::RunLevelCcp(int level) {
  if (BudgetExceeded()) return false;
  {
    ProfPhase phase(ProfPhaseKind::kEnumerate);
    if (ccp_ == nullptr) {
      ccp_ = std::make_unique<CsgCmpEnumerator>(*graph_, units_, counters_);
      // Connected-subgraph populations grow quadratically in the unit count
      // on chains/cycles; pre-size past the ctor's level-2 lower bound so
      // 50+ relation runs don't rehash mid-enumeration.
      const size_t n = units_.size();
      memo_->Reserve(std::min<size_t>(n * (n + 1) / 2 + n, size_t{1} << 18));
    }
    // Build the level's csg-cmp task list.  Owner thread only, and no budget
    // checkpoints: the cost phase must consume the identical checkpoint
    // sequence whether it then runs serial or sharded.  Pairs whose side is
    // missing (SDP erased it) or pruned are dropped here, uncounted, exactly
    // as the DPsize scan never pairs them.
    ccp_tasks_.clear();
    ccp_->EnumerateLevel(level, [&](uint64_t s1, uint64_t s2) {
      const MemoEntry* a = memo_->Find(ccp_->RelsFor(s1));
      if (a == nullptr || a->pruned) return;
      const MemoEntry* b = memo_->Find(ccp_->RelsFor(s2));
      if (b == nullptr || b->pruned) return;
      // Orient like the size-driven scan: the smaller side first.
      if (b->unit_count < a->unit_count) std::swap(a, b);
      ccp_tasks_.push_back(CcpTask{a, b, a->rels.Union(b->rels)});
    });
  }
  if (options_.opt_threads > 1 && options_.intra_pool != nullptr &&
      ccp_tasks_.size() >= options_.parallel_min_pairs) {
    return RunLevelCcpParallel(level, ccp_tasks_);
  }
  return RunLevelCcpSerial(level, ccp_tasks_);
}

bool JoinEnumerator::RunLevelCcpSerial(int level,
                                       const std::vector<CcpTask>& tasks) {
  (void)level;
  ProfPhase phase(ProfPhaseKind::kEnumerate);
  for (const CcpTask& t : tasks) {
    ++counters_->pairs_examined;
    if ((counters_->pairs_examined & poll_mask_) == 0 && BudgetExceeded()) {
      return false;
    }
    // Memo-entry creation and join costing attribute to the cost phase in
    // both the serial path and the parallel merge replay.
    ProfPhase cost_phase(ProfPhaseKind::kCost);
    bool created = false;
    MemoEntry* target = memo_->GetOrCreate(
        t.target, t.a->unit_count + t.b->unit_count, card_->Rows(t.target),
        card_->Selectivity(t.target), &created);
    if (created) ++counters_->jcrs_created;
    EmitJoinsInto(target, t.a, t.b);
  }
  return !BudgetExceeded();
}

bool JoinEnumerator::RunLevelGoo(int level) {
  (void)level;
  if (BudgetExceeded()) return false;
  ProfPhase phase(ProfPhaseKind::kEnumerate);
  if (!goo_seeded_) {
    goo_seeded_ = true;
    goo_roots_.reserve(units_.size());
    for (const RelSet& u : units_) {
      MemoEntry* e = memo_->Find(u);
      SDP_CHECK(e != nullptr);
      goo_roots_.push_back(e);
    }
  }
  if (goo_roots_.size() < 2) return !BudgetExceeded();
  // One greedy merge: the adjacent root pair with the smallest joint
  // cardinality (strict <, first pair in scan order wins ties).
  size_t best_i = 0;
  size_t best_j = 0;
  double best_rows = std::numeric_limits<double>::infinity();
  RelSet best_set;
  for (size_t i = 0; i + 1 < goo_roots_.size(); ++i) {
    const RelSet i_nbrs = graph_->Neighbors(goo_roots_[i]->rels);
    for (size_t j = i + 1; j < goo_roots_.size(); ++j) {
      if (!i_nbrs.Overlaps(goo_roots_[j]->rels)) continue;
      ++counters_->pairs_examined;
      if ((counters_->pairs_examined & poll_mask_) == 0 &&
          BudgetExceeded()) {
        return false;
      }
      const RelSet s = goo_roots_[i]->rels.Union(goo_roots_[j]->rels);
      const double rows = card_->Rows(s);
      if (rows < best_rows) {
        best_rows = rows;
        best_i = i;
        best_j = j;
        best_set = s;
      }
    }
  }
  SDP_CHECK(best_rows < std::numeric_limits<double>::infinity());
  MemoEntry* a = goo_roots_[best_i];
  MemoEntry* b = goo_roots_[best_j];
  MemoEntry* target = nullptr;
  {
    ProfPhase cost_phase(ProfPhaseKind::kCost);
    bool created = false;
    target =
        memo_->GetOrCreate(best_set, a->unit_count + b->unit_count, best_rows,
                           card_->Selectivity(best_set), &created);
    if (created) ++counters_->jcrs_created;
    EmitJoinsInto(target, a, b);
  }
  goo_roots_[best_i] = target;
  goo_roots_.erase(goo_roots_.begin() + static_cast<ptrdiff_t>(best_j));
  return !BudgetExceeded();
}

bool JoinEnumerator::RunLevelSerial(int level) {
  if (BudgetExceeded()) return false;
  ProfPhase phase(ProfPhaseKind::kEnumerate);
  for (int a_size = 1; a_size <= level / 2; ++a_size) {
    const int b_size = level - a_size;
    const auto& as = memo_->EntriesWithUnitCount(a_size);
    const auto& bs = memo_->EntriesWithUnitCount(b_size);
    for (size_t i = 0; i < as.size(); ++i) {
      MemoEntry* a = as[i];
      if (a->pruned) continue;
      // Hoisted out of the pair loop: AreAdjacent recomputes this union
      // for every (a, b) otherwise.
      const RelSet a_nbrs = graph_->Neighbors(a->rels);
      // For equal sizes, only unordered pairs (j > i).
      const size_t j_begin = (a_size == b_size) ? i + 1 : 0;
      for (size_t j = j_begin; j < bs.size(); ++j) {
        MemoEntry* b = bs[j];
        if (b->pruned) continue;
        ++counters_->pairs_examined;
        if ((counters_->pairs_examined & poll_mask_) == 0 &&
            BudgetExceeded()) {
          return false;
        }
        if (a->rels.Overlaps(b->rels)) continue;
        if (!a_nbrs.Overlaps(b->rels)) continue;
        const RelSet s = a->rels.Union(b->rels);
        ProfPhase cost_phase(ProfPhaseKind::kCost);
        bool created = false;
        MemoEntry* target =
            memo_->GetOrCreate(s, a->unit_count + b->unit_count,
                               card_->Rows(s), card_->Selectivity(s),
                               &created);
        if (created) ++counters_->jcrs_created;
        EmitJoinsInto(target, a, b);
      }
    }
    if (BudgetExceeded()) return false;
  }
  return !BudgetExceeded();
}

void JoinEnumerator::EmitJoinsInto(MemoEntry* target, const MemoEntry* a,
                                   const MemoEntry* b) {
  ProfPhase phase(ProfPhaseKind::kCost);
  // Generate-and-apply inline: the serial path costs each candidate and
  // immediately runs it through the same apply step the parallel merge
  // uses, so both paths share one behavioral definition.
  gen_.Generate(a, b, target->rows, &counters_->plans_costed,
                [&](const JoinCandidate& c) { ApplyCandidate(target, c); });
}

bool JoinEnumerator::ApplyCandidate(MemoEntry* target,
                                    const JoinCandidate& c) {
  if (c.kind == PlanKind::kMergeJoin) {
    // Pre-gate before materializing Sort enforcers: a dominated merge
    // candidate must allocate nothing (and skip the budget poll), exactly
    // as the serial enumerator always has.
    if (!target->WouldImprove(c.ordering, c.cost)) return false;
    const PlanNode* outer =
        MaterializeSorted(c.outer_entry, c.ordering, c.outer_sorted);
    const PlanNode* inner =
        MaterializeSorted(c.inner_entry, c.ordering, c.inner_sorted);
    return TryAdd(target, c.kind, c.rel, c.edge, c.ordering, c.rows, c.cost,
                  outer, inner);
  }
  return TryAdd(target, c.kind, c.rel, c.edge, c.ordering, c.rows, c.cost,
                c.outer, c.inner);
}

const PlanNode* JoinEnumerator::MaterializeSorted(const MemoEntry* e, int eq,
                                                  const SortedInput& in) {
  if (!in.needs_sort) return in.plan;
  PlanNode* sort = pool_->New();
  sort->kind = PlanKind::kSort;
  sort->rels = e->rels;
  sort->rows = in.plan->rows;
  sort->cost = in.cost;
  sort->ordering = eq;
  sort->outer = in.plan;
  return sort;
}

bool JoinEnumerator::TryAdd(MemoEntry* target, PlanKind kind, int rel,
                            int edge, int ordering, double rows, double cost,
                            const PlanNode* outer, const PlanNode* inner) {
  // Per-plan budget poll.  The per-pair poll in RunLevel is too coarse
  // when a single pair emits many plans (e.g. a defect floods the plan
  // lists and every insertion degrades to a linear scan): the deadline
  // must be observed within a bounded number of *plans*, not pairs.
  if (aborted_) return false;
  if (options_.budget != nullptr) {
    options_.budget->SetPlansCosted(counters_->plans_costed);
    if (options_.budget->CheckPoint() != OptStatusCode::kOk) {
      aborted_ = true;
      status_ = options_.budget->code();
      return false;
    }
  }
  if (!target->WouldImprove(ordering, cost)) return false;
  PlanNode* node = pool_->New();
  node->kind = kind;
  node->rel = rel;
  node->edge = edge;
  node->ordering = ordering;
  node->rels = target->rels;
  node->rows = rows;
  node->cost = cost;
  // Fault site: corrupt this plan's cost with NaN.  The poisoned plan may
  // win the memo slot and surface in the final tree, where the engine's
  // ValidatePlanTree rejects it and the ladder escalates with kInternal.
  if (FaultInjector::Global().Hit("cost.nan")) {
    node->cost = std::numeric_limits<double>::quiet_NaN();
  }
  node->outer = outer;
  node->inner = inner;
  std::vector<const PlanNode*> evicted;
  const bool added = target->AddPlan(node, &evicted);
  SDP_DCHECK(added);
  if (added) {
    memo_->ChargePlanSlot();
  } else {
    pool_->Free(node);
  }
  // Evicted plans belong to the level under construction: nothing
  // references them yet, so their nodes (and exclusive sort children) can
  // be recycled.
  for (const PlanNode* old : evicted) pool_->FreeTopAndSorts(old);
  return added;
}

const PlanNode* JoinEnumerator::FinalizeBestPlan(const MemoEntry* full) {
  ProfPhase phase(ProfPhaseKind::kCost);
  const PlanNode* cheapest = full->CheapestPlan();
  if (cheapest == nullptr) return nullptr;
  const int required = space_->RequiredId();
  if (required < 0) return cheapest;
  const SortedInput in = BestSortedInput(*cost_, full, required);
  return MaterializeSorted(full, required, in);
}

}  // namespace sdp
