#include "optimizer/heuristic_baselines.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "cost/cardinality.h"
#include "optimizer/enumerator.h"
#include "optimizer/memo.h"
#include "optimizer/plan_pool.h"
#include "optimizer/run_helpers.h"

namespace sdp {

namespace {

// Shared per-run machinery for the non-DP baselines.
struct BaselineContext {
  BaselineContext(const Query& query, const CostModel& cost,
                  const OptimizerOptions& options)
      : graph(query.graph),
        pool(&gauge),
        memo(&gauge),
        card(graph, cost, &gauge),
        space(graph, query.order_by.has_value()
                         ? std::optional<ColumnRef>(query.order_by->column)
                         : std::nullopt),
        enumerator(graph, cost, space, &card, &memo, &pool, &gauge, options,
                   &counters) {
    enumerator.InstallBaseRelationLeaves();
  }

  // Joins two planned sub-results into a fresh scratch entry.
  std::unique_ptr<MemoEntry> Join(const MemoEntry* a, const MemoEntry* b) {
    auto out = std::make_unique<MemoEntry>();
    out->rels = a->rels.Union(b->rels);
    out->unit_count = a->unit_count + b->unit_count;
    out->rows = card.Rows(out->rels);
    out->sel = card.Selectivity(out->rels);
    enumerator.EmitJoinsInto(out.get(), a, b);
    return out;
  }

  const JoinGraph& graph;
  MemoryGauge gauge;
  PlanPool pool;
  Memo memo;
  CardinalityEstimator card;
  OrderingSpace space;
  SearchCounters counters;
  JoinEnumerator enumerator;
};

}  // namespace

OptimizeResult OptimizeGOO(const Query& query, const CostModel& cost,
                           const OptimizerOptions& options) {
  const JoinGraph& graph = query.graph;
  SDP_CHECK(graph.IsConnected(graph.AllRelations()));
  Stopwatch timer;
  BaselineContext ctx(query, cost, options);

  // Current forest: base-relation entries, progressively merged.
  std::vector<MemoEntry*> units;
  std::vector<std::unique_ptr<MemoEntry>> owned;
  for (int r = 0; r < graph.num_relations(); ++r) {
    units.push_back(ctx.memo.Find(RelSet::Single(r)));
  }

  while (units.size() > 1) {
    if (ctx.enumerator.CheckBudget()) {
      return MakeOptimizeResult("GOO", nullptr, ctx.counters, timer.Seconds(),
                                ctx.gauge, ctx.enumerator.abort_status());
    }
    // Greedy step: the adjacent pair with the smallest join cardinality.
    size_t best_i = 0, best_j = 0;
    double best_rows = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < units.size(); ++i) {
      for (size_t j = i + 1; j < units.size(); ++j) {
        if (!graph.AreAdjacent(units[i]->rels, units[j]->rels)) continue;
        const double rows =
            ctx.card.Rows(units[i]->rels.Union(units[j]->rels));
        if (rows < best_rows) {
          best_rows = rows;
          best_i = i;
          best_j = j;
        }
      }
    }
    SDP_CHECK(best_rows < std::numeric_limits<double>::infinity());
    owned.push_back(ctx.Join(units[best_i], units[best_j]));
    units[best_i] = owned.back().get();
    units.erase(units.begin() + static_cast<long>(best_j));
  }

  const PlanNode* plan = ctx.enumerator.FinalizeBestPlan(units.front());
  return MakeOptimizeResult("GOO", plan, ctx.counters, timer.Seconds(),
                            ctx.gauge);
}

namespace {

// A random permutation whose every prefix is connected.
std::vector<int> RandomConnectedOrder(const JoinGraph& graph, Rng* rng) {
  const int n = graph.num_relations();
  std::vector<int> order;
  order.reserve(n);
  RelSet covered =
      RelSet::Single(static_cast<int>(rng->NextBounded(n)));
  order.push_back(covered.Lowest());
  while (static_cast<int>(order.size()) < n) {
    const RelSet frontier = graph.Neighbors(covered);
    SDP_CHECK(!frontier.Empty());
    // Uniform choice among frontier members.
    std::vector<int> members;
    frontier.ForEach([&](int r) { members.push_back(r); });
    const int next =
        members[rng->NextBounded(static_cast<uint64_t>(members.size()))];
    order.push_back(next);
    covered = covered.With(next);
  }
  return order;
}

bool PrefixesConnected(const JoinGraph& graph, const std::vector<int>& order) {
  RelSet covered = RelSet::Single(order[0]);
  for (size_t i = 1; i < order.size(); ++i) {
    if (!graph.AreAdjacent(covered, RelSet::Single(order[i]))) return false;
    covered = covered.With(order[i]);
  }
  return true;
}

// Cost of the best left-deep plan following `order` exactly.
double CostOrder(BaselineContext* ctx, const std::vector<int>& order,
                 const PlanNode** out_plan) {
  const MemoEntry* cur_ptr = ctx->memo.Find(RelSet::Single(order[0]));
  std::vector<std::unique_ptr<MemoEntry>> owned;
  for (size_t i = 1; i < order.size(); ++i) {
    owned.push_back(
        ctx->Join(cur_ptr, ctx->memo.Find(RelSet::Single(order[i]))));
    cur_ptr = owned.back().get();
  }
  const PlanNode* plan = ctx->enumerator.FinalizeBestPlan(cur_ptr);
  SDP_CHECK(plan != nullptr);
  if (out_plan != nullptr) *out_plan = plan;
  return plan->cost;
}

}  // namespace

OptimizeResult OptimizeRandomized(const Query& query, const CostModel& cost,
                                  const RandomizedConfig& config,
                                  const OptimizerOptions& options) {
  const JoinGraph& graph = query.graph;
  SDP_CHECK(graph.IsConnected(graph.AllRelations()));
  SDP_CHECK(config.restarts >= 1);
  Stopwatch timer;
  BaselineContext ctx(query, cost, options);
  Rng rng(config.seed);

  const PlanNode* best_plan = nullptr;
  double best_cost = std::numeric_limits<double>::infinity();

  for (int restart = 0; restart < config.restarts; ++restart) {
    if (ctx.enumerator.CheckBudget()) {
      return MakeOptimizeResult("Randomized", nullptr, ctx.counters,
                                timer.Seconds(), ctx.gauge,
                                ctx.enumerator.abort_status());
    }
    std::vector<int> order = RandomConnectedOrder(graph, &rng);
    const PlanNode* plan = nullptr;
    double current = CostOrder(&ctx, order, &plan);

    // Hill-climb with adjacent transpositions.
    int plateau = 0;
    while (plateau < config.max_plateau_sweeps) {
      bool improved = false;
      for (size_t i = 0; i + 1 < order.size(); ++i) {
        std::swap(order[i], order[i + 1]);
        if (PrefixesConnected(graph, order)) {
          const PlanNode* candidate_plan = nullptr;
          const double candidate = CostOrder(&ctx, order, &candidate_plan);
          if (candidate < current) {
            current = candidate;
            plan = candidate_plan;
            improved = true;
            continue;  // Keep the swap.
          }
        }
        std::swap(order[i], order[i + 1]);  // Revert.
      }
      plateau = improved ? 0 : plateau + 1;
    }
    if (current < best_cost) {
      best_cost = current;
      best_plan = plan;
    }
  }
  return MakeOptimizeResult("Randomized", best_plan, ctx.counters,
                            timer.Seconds(), ctx.gauge);
}

OptimizeResult OptimizeGreedyLeftDeep(const Query& query,
                                      const CostModel& cost,
                                      const OptimizerOptions& options) {
  const JoinGraph& graph = query.graph;
  SDP_CHECK(graph.IsConnected(graph.AllRelations()));
  Stopwatch timer;
  BaselineContext ctx(query, cost, options);

  // Seed: the base relation with the fewest scan output rows.
  const int n = graph.num_relations();
  int seed_rel = 0;
  for (int r = 1; r < n; ++r) {
    if (cost.ScanOutputRows(r) < cost.ScanOutputRows(seed_rel)) seed_rel = r;
  }

  const MemoEntry* cur = ctx.memo.Find(RelSet::Single(seed_rel));
  std::vector<std::unique_ptr<MemoEntry>> owned;
  RelSet covered = RelSet::Single(seed_rel);
  while (covered != graph.AllRelations()) {
    if (ctx.enumerator.CheckBudget()) {
      return MakeOptimizeResult("Greedy", nullptr, ctx.counters,
                                timer.Seconds(), ctx.gauge,
                                ctx.enumerator.abort_status());
    }
    // Next relation: the adjacent base relation minimizing the joined
    // cardinality (ties to the lowest relation id for determinism).
    int next = -1;
    double next_rows = 0;
    graph.Neighbors(covered).ForEach([&](int r) {
      const double joined = ctx.card.Rows(covered.With(r));
      if (next < 0 || joined < next_rows) {
        next = r;
        next_rows = joined;
      }
    });
    SDP_CHECK(next >= 0);  // Graph is connected.
    owned.push_back(ctx.Join(cur, ctx.memo.Find(RelSet::Single(next))));
    cur = owned.back().get();
    covered = covered.With(next);
  }

  const PlanNode* plan = ctx.enumerator.FinalizeBestPlan(cur);
  return MakeOptimizeResult("Greedy", plan, ctx.counters, timer.Seconds(),
                            ctx.gauge);
}

}  // namespace sdp
