#ifndef SDPOPT_CATALOG_CATALOG_H_
#define SDPOPT_CATALOG_CATALOG_H_

#include <stdint.h>

#include <string>
#include <vector>

namespace sdp {

// How the values of a column are distributed over its domain.  The paper
// evaluates both uniform and skewed (exponential) data.
enum class DataDistribution : uint8_t {
  kUniform,
  kExponential,
};

// Column metadata.  All columns are 64-bit integers drawn from
// [0, domain_size); this mirrors the paper's synthetic schema, where only
// cardinalities, domain sizes and indexes matter to the optimizer.
struct Column {
  std::string name;
  uint64_t domain_size = 0;
  DataDistribution distribution = DataDistribution::kUniform;
};

// Table metadata.  `indexed_column` identifies the single column carrying a
// (B-tree-style, ordered) index, or -1 for none; the paper's generator
// indexes one random column per relation.
struct Table {
  std::string name;
  uint64_t row_count = 0;
  std::vector<Column> columns;
  int indexed_column = -1;

  // Width of one stored row in bytes; drives page-count estimates.
  double row_width_bytes() const {
    return 24.0 + 8.0 * static_cast<double>(columns.size());
  }
};

// The schema dictionary: an immutable-after-construction list of tables.
class Catalog {
 public:
  Catalog() = default;

  // Registers a table; returns its id.
  int AddTable(Table table);

  int num_tables() const { return static_cast<int>(tables_.size()); }
  const Table& table(int id) const { return tables_.at(id); }

  // Returns the table id, or -1 if no table has this name.
  int FindTable(const std::string& name) const;

  // Ids of all tables sorted by descending row count (the paper picks the
  // largest relation as the star hub, as in data-warehouse fact tables).
  std::vector<int> TablesByRowCountDesc() const;

 private:
  std::vector<Table> tables_;
};

// Parameters of the paper's synthetic schema (Section 3.1): 25 relations,
// geometric cardinalities between 100 and 2.5M rows (parameter ~1.5),
// 24 columns per relation with geometric domain sizes over the same range,
// one randomly chosen indexed column per relation.
struct SchemaConfig {
  int num_relations = 25;
  uint64_t min_rows = 100;
  uint64_t max_rows = 2'500'000;
  int columns_per_table = 24;
  uint64_t min_domain = 100;
  uint64_t max_domain = 2'500'000;
  DataDistribution distribution = DataDistribution::kUniform;
  uint64_t seed = 2006;
};

// Builds the synthetic schema.  Deterministic for a given config.
Catalog MakeSyntheticCatalog(const SchemaConfig& config);

// Convenience: the extended schema used for the maximum-scaleup experiment
// (Table 3.3), which needs more than 45 relations.
SchemaConfig ExtendedSchemaConfig(int num_relations);

}  // namespace sdp

#endif  // SDPOPT_CATALOG_CATALOG_H_
