#include "catalog/catalog.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace sdp {

int Catalog::AddTable(Table table) {
  tables_.push_back(std::move(table));
  return static_cast<int>(tables_.size()) - 1;
}

int Catalog::FindTable(const std::string& name) const {
  for (int i = 0; i < num_tables(); ++i) {
    if (tables_[i].name == name) return i;
  }
  return -1;
}

std::vector<int> Catalog::TablesByRowCountDesc() const {
  std::vector<int> ids(tables_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int>(i);
  std::stable_sort(ids.begin(), ids.end(), [this](int a, int b) {
    return tables_[a].row_count > tables_[b].row_count;
  });
  return ids;
}

Catalog MakeSyntheticCatalog(const SchemaConfig& config) {
  SDP_CHECK(config.num_relations >= 1);
  SDP_CHECK(config.min_rows >= 1 && config.min_rows <= config.max_rows);
  SDP_CHECK(config.columns_per_table >= 1);

  Catalog catalog;
  Rng rng(config.seed);

  // Geometric progression of cardinalities hitting both endpoints; for the
  // paper's 25 relations over [100, 2.5M] the step ratio is ~1.52, matching
  // the stated "parameter 1.5".
  const double span = static_cast<double>(config.max_rows) /
                      static_cast<double>(config.min_rows);
  const int n = config.num_relations;

  // Shuffle the rank order so that relation ids do not correlate with size
  // (queries select relations by id combinations; the paper's instance
  // space mixes sizes arbitrarily).
  std::vector<int> ranks(n);
  for (int i = 0; i < n; ++i) ranks[i] = i;
  rng.Shuffle(&ranks);

  const double domain_span = static_cast<double>(config.max_domain) /
                             static_cast<double>(config.min_domain);

  for (int i = 0; i < n; ++i) {
    Table t;
    t.name = "R" + std::to_string(i + 1);
    const double exponent =
        n == 1 ? 0.0
               : static_cast<double>(ranks[i]) / static_cast<double>(n - 1);
    t.row_count = static_cast<uint64_t>(
        std::llround(static_cast<double>(config.min_rows) *
                     std::pow(span, exponent)));

    t.columns.reserve(config.columns_per_table);
    for (int c = 0; c < config.columns_per_table; ++c) {
      Column col;
      col.name = "c" + std::to_string(c + 1);
      // Geometric spread of domain sizes: exponent uniform in [0,1].
      const double u = rng.NextDouble();
      col.domain_size = static_cast<uint64_t>(
          std::llround(static_cast<double>(config.min_domain) *
                       std::pow(domain_span, u)));
      col.distribution = config.distribution;
      t.columns.push_back(std::move(col));
    }
    t.indexed_column =
        static_cast<int>(rng.NextBounded(config.columns_per_table));
    catalog.AddTable(std::move(t));
  }
  return catalog;
}

SchemaConfig ExtendedSchemaConfig(int num_relations) {
  SchemaConfig config;
  config.num_relations = num_relations;
  // Wide tables so stars beyond 24 spokes still get a distinct hub column
  // per spoke (keeps the topology pure).
  config.columns_per_table = 64;
  config.seed = 2007;
  return config;
}

}  // namespace sdp
