#include "common/thread_pool.h"

#include <chrono>
#include <exception>
#include <utility>

#include "common/fault_injection.h"

namespace sdp {

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads < 1 ? 1 : num_threads;
  threads_.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(ShutdownMode::kDrain); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

ThreadPool::ShutdownStats ThreadPool::Shutdown(ShutdownMode mode,
                                               double deadline_seconds) {
  std::lock_guard<std::mutex> call_lock(shutdown_call_mu_);
  if (joined_) return shutdown_stats_;

  ShutdownStats stats;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (mode == ShutdownMode::kAbandon) {
      stats.abandoned_tasks = queue_.size();
      queue_.clear();
    } else if (deadline_seconds > 0) {
      const bool drained = drain_cv_.wait_for(
          lock, std::chrono::duration<double>(deadline_seconds),
          [this] { return queue_.empty(); });
      if (!drained) {
        stats.deadline_expired = true;
        stats.abandoned_tasks = queue_.size();
        queue_.clear();
      }
    }
    // Plain drain: workers keep popping until the queue is empty, then see
    // shutdown_ and exit.
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }

  joined_ = true;
  shutdown_stats_ = stats;
  return stats;
}

int ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

std::string ThreadPool::last_task_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_task_error_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
      if (queue_.empty()) drain_cv_.notify_all();
    }

    // Fault site: a worker that goes dark for a while.  Exercises queue
    // backlog, admission timeouts and Shutdown deadlines under test.
    double stall_ms = 0;
    if (FaultInjector::Global().Hit("pool.stall", &stall_ms)) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          stall_ms > 0 ? stall_ms : 10));
    }

    // A throwing task must not unwind into std::thread (std::terminate):
    // capture the error and keep serving.
    try {
      task();
    } catch (const std::exception& e) {
      tasks_failed_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      last_task_error_ = e.what();
    } catch (...) {
      tasks_failed_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      last_task_error_ = "unknown exception";
    }
  }
}

}  // namespace sdp
