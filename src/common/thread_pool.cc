#include "common/thread_pool.h"

#include <utility>

namespace sdp {

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads < 1 ? 1 : num_threads;
  threads_.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

int ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace sdp
