#ifndef SDPOPT_COMMON_BUDGET_H_
#define SDPOPT_COMMON_BUDGET_H_

#include <stdint.h>

#include <atomic>
#include <chrono>
#include <string>

namespace sdp {

class MemoryGauge;

// Typed outcome of a resource-governed optimization.  Cancellation and
// budget trips surface as a status, never as an exception escaping a
// worker; kInternal is reserved for defects (an exception the service
// caught, an invalid plan tree) so that callers can distinguish "the
// request was too expensive" from "the optimizer is broken".
enum class OptStatusCode : uint8_t {
  kOk = 0,
  kDeadlineExceeded = 1,  // Wall-clock deadline passed.
  kMemoryExceeded = 2,    // Memo/plan-pool byte budget or plans-costed cap.
  kCancelled = 3,         // Cooperative cancellation (token or checkpoint).
  kInternal = 4,          // Exception, invalid plan, or injected defect.
};

const char* OptStatusCodeName(OptStatusCode code);

struct OptStatus {
  OptStatusCode code = OptStatusCode::kOk;
  std::string message;

  bool ok() const { return code == OptStatusCode::kOk; }

  // One-line rendering: "DEADLINE_EXCEEDED: <message>".
  std::string ToString() const;

  static OptStatus Ok() { return OptStatus{}; }
  static OptStatus Make(OptStatusCode code, std::string message) {
    return OptStatus{code, std::move(message)};
  }
};

// Cooperative cancellation flag shared between a request's submitter and
// the worker optimizing it.  The submitter calls Cancel(); the worker's
// ResourceBudget observes it at the next checkpoint.  Must outlive every
// budget referencing it.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

// Per-request resource budget: wall-clock deadline, memo/plan-pool byte
// budget, plans-costed cap, and cooperative cancellation, enforced by a
// cheap CheckPoint() polled inside the DP/IDP/SDP enumeration loops and
// the SDP pruner.
//
// CheckPoint() is the hot-path poll: one branch on the latched status, one
// counter increment, and (when a gauge is attached and a byte budget set)
// one compare; the clock and the cancel token are only consulted every
// `check_interval` checkpoints, so the deadline is honored to within one
// checkpoint interval.  Once any limit trips, the status latches and every
// later checkpoint returns it immediately.
//
// A budget is owned by one request and polled by one worker thread at a
// time; only the CancelToken may be touched from other threads.  The
// degradation ladder re-arms the same budget across rungs with
// ResetForRetry(), which clears a memory/plans trip (each rung gets a
// fresh working set) but re-checks the shared deadline and token.
class ResourceBudget {
 public:
  struct Limits {
    // Wall-clock deadline in seconds from Arm() (0 = none).
    double deadline_seconds = 0;
    // Memo + plan-pool + cardinality-cache byte budget (0 = unlimited).
    size_t memory_budget_bytes = 0;
    // Cap on plan alternatives costed (0 = unlimited).
    uint64_t max_plans_costed = 0;
    // Slow checks (clock, cancel token, fault sites) run every this many
    // checkpoints; rounded up to a power of two, min 1.
    uint32_t check_interval = 1024;
    // Deterministic test trigger: trip kCancelled at exactly this
    // checkpoint ordinal (0 = off).  Used by the cancellation-determinism
    // sweep; production callers use the CancelToken instead.
    uint64_t cancel_at_checkpoint = 0;
  };

  explicit ResourceBudget(const Limits& limits,
                          CancelToken* cancel = nullptr);

  // (Re)starts the deadline clock.  Called once when the request begins;
  // the degradation ladder deliberately does NOT re-arm between rungs, so
  // the deadline covers the whole ladder.
  void Arm();

  // The enumerators' working set is request-private, so the gauge to
  // enforce the byte budget against changes per rung.  Null detaches.
  void AttachGauge(const MemoryGauge* gauge) { gauge_ = gauge; }

  // Records plan-costing progress for the plans-costed cap.  Cheap enough
  // to call from the same sites as CheckPoint().
  void SetPlansCosted(uint64_t plans) { plans_costed_ = plans; }

  // Cooperative poll.  Returns kOk on the fast path; a non-OK code latches.
  OptStatusCode CheckPoint() {
    if (code_ != OptStatusCode::kOk) return code_;
    if (gauge_ != nullptr && limits_.memory_budget_bytes != 0) {
      CheckMemory();
      if (code_ != OptStatusCode::kOk) return code_;
    }
    if (limits_.max_plans_costed != 0 &&
        plans_costed_ > limits_.max_plans_costed) {
      Trip(OptStatusCode::kMemoryExceeded, "plans-costed cap exceeded");
      return code_;
    }
    const uint64_t n = ++checkpoints_;
    if (limits_.cancel_at_checkpoint != 0 &&
        n >= limits_.cancel_at_checkpoint) {
      Trip(OptStatusCode::kCancelled, "cancelled at checkpoint " +
                                          std::to_string(n));
      return code_;
    }
    if ((n & interval_mask_) != 0) return OptStatusCode::kOk;
    return SlowCheck();
  }

  // Latches a non-OK status from outside the polling sites (e.g. the
  // service recording an exception).  kOk is ignored.
  void Trip(OptStatusCode code, std::string message);

  // Read-only probe for intra-query worker threads: observes the latched
  // status, the cancel token and the deadline without counting a
  // checkpoint, latching, or touching fault sites.  Safe to call from
  // several threads concurrently *provided* no thread is mutating the
  // budget at the same time -- which holds during a parallel enumeration
  // phase, where only workers (probing) run and the owning thread polls
  // CheckPoint() again only after joining them.
  OptStatusCode ProbeCrossThread() const;

  // Prepares the budget for the next rung of the degradation ladder:
  // clears a kMemoryExceeded or kInternal trip (the next rung gets a
  // fresh working set, and a defect may be rung-specific), detaches the
  // gauge, and re-evaluates deadline and cancellation.  Returns false --
  // leaving the status tripped -- when the trip was kCancelled or
  // kDeadlineExceeded, the token is cancelled, or the deadline has
  // already passed (those outlast any single rung).
  bool ResetForRetry();

  bool armed() const { return armed_; }
  OptStatusCode code() const { return code_; }
  OptStatus status() const {
    return OptStatus{code_, code_ == OptStatusCode::kOk ? "" : message_};
  }
  uint64_t checkpoints() const { return checkpoints_; }
  double ElapsedSeconds() const;
  // Seconds until the deadline; negative once passed, +inf with none set.
  double RemainingSeconds() const;
  bool has_deadline() const { return limits_.deadline_seconds > 0; }
  const Limits& limits() const { return limits_; }

 private:
  void CheckMemory();
  OptStatusCode SlowCheck();

  Limits limits_;
  CancelToken* cancel_;
  const MemoryGauge* gauge_ = nullptr;
  uint64_t interval_mask_ = 0;
  uint64_t checkpoints_ = 0;
  uint64_t plans_costed_ = 0;
  // Injected clock skew (fault site "budget.clock-jump"), added to every
  // elapsed-time reading so a jump forward trips the deadline early.
  double clock_skew_seconds_ = 0;
  std::chrono::steady_clock::time_point armed_at_;
  bool armed_ = false;
  OptStatusCode code_ = OptStatusCode::kOk;
  std::string message_;
};

}  // namespace sdp

#endif  // SDPOPT_COMMON_BUDGET_H_
