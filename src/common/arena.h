#ifndef SDPOPT_COMMON_ARENA_H_
#define SDPOPT_COMMON_ARENA_H_

#include <stddef.h>
#include <stdint.h>

#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/check.h"

namespace sdp {

// Tracks the bytes charged by all allocators participating in one
// optimization run, so the optimizer can enforce the experiment's memory
// budget (the paper declares an algorithm "infeasible" for a query when it
// exhausts physical memory; we reproduce that with an explicit budget).
//
// The gauge also remembers the high-water mark, which is what the paper's
// "Memory (in MB)" columns report.
class MemoryGauge {
 public:
  void Charge(size_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }
  void Release(size_t bytes) {
    SDP_DCHECK(bytes <= current_);
    current_ -= bytes;
  }

  size_t current_bytes() const { return current_; }
  size_t peak_bytes() const { return peak_; }
  double peak_mb() const { return static_cast<double>(peak_) / (1 << 20); }

  void Reset() {
    current_ = 0;
    peak_ = 0;
  }

 private:
  size_t current_ = 0;
  size_t peak_ = 0;
};

// Bump allocator for plan nodes and other per-optimization objects.
//
// Optimizer plan trees are built incrementally, never freed individually,
// and discarded wholesale when the optimization ends -- exactly the palloc
// memory-context pattern PostgreSQL's planner uses.  All bytes are charged
// to the owning MemoryGauge (if any) so that budget enforcement sees them.
//
// Only trivially destructible types may be created in the arena; there is no
// per-object destruction.
class Arena {
 public:
  explicit Arena(MemoryGauge* gauge = nullptr) : gauge_(gauge) {}
  ~Arena() { ReleaseAll(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Allocates and constructs a T.  T must be trivially destructible.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena objects are never destroyed individually");
    void* mem = Allocate(sizeof(T), alignof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  // Raw allocation.
  void* Allocate(size_t size, size_t align);

  // Frees every block and resets accounting.
  void ReleaseAll();

  size_t allocated_bytes() const { return allocated_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  static constexpr size_t kInitialBlockSize = 16 * 1024;
  static constexpr size_t kMaxBlockSize = 1024 * 1024;

  MemoryGauge* gauge_;
  std::vector<Block> blocks_;
  size_t allocated_ = 0;  // Bytes handed out (not block capacity).
};

}  // namespace sdp

#endif  // SDPOPT_COMMON_ARENA_H_
