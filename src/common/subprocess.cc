#include "common/subprocess.h"

#include <errno.h>
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

namespace sdp {

namespace {

volatile sig_atomic_t g_shutdown_requested = 0;

void ShutdownSignalHandler(int /*sig*/) { g_shutdown_requested = 1; }

}  // namespace

pid_t SpawnProcess(const std::function<int()>& child_main,
                   const std::vector<int>& close_fds) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;  // Parent (or -1 on failure).
  // Child.  A pending shutdown request inherited from the parent must not
  // leak into the fresh process's serving loop.
  ClearShutdownRequest();
  for (const int fd : close_fds) ::close(fd);
  ::_exit(child_main());
}

void CloseAllFdsExcept(const std::vector<int>& keep) {
  // /proc/self/fd would be exact, but a fixed sweep is fork-safe (no
  // opendir allocation between fork and the child's first real work) and
  // the fleet never holds fds beyond a few hundred.
  for (int fd = 3; fd < 4096; ++fd) {
    bool kept = false;
    for (const int k : keep) kept = kept || k == fd;
    if (!kept) ::close(fd);
  }
}

bool ProcessAlive(pid_t pid) {
  if (pid <= 0) return false;
  const pid_t rc = ::waitpid(pid, nullptr, WNOHANG);
  if (rc == 0) return true;    // Running.
  return false;                // Reaped now (rc == pid) or gone (ECHILD).
}

int WaitProcess(pid_t pid, int timeout_ms) {
  if (pid <= 0) return -1;
  const int step_ms = 10;
  int waited = 0;
  for (;;) {
    int status = 0;
    const pid_t rc = ::waitpid(pid, &status, timeout_ms < 0 ? 0 : WNOHANG);
    if (rc == pid) {
      if (WIFEXITED(status)) return WEXITSTATUS(status);
      if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
      return -1;
    }
    if (rc < 0 && errno != EINTR) return -1;
    if (timeout_ms >= 0) {
      if (waited >= timeout_ms) return -1;
      timespec ts = {0, step_ms * 1000000};
      ::nanosleep(&ts, nullptr);
      waited += step_ms;
    }
  }
}

void KillProcess(pid_t pid, int sig) {
  if (pid > 0) ::kill(pid, sig);
}

void InstallShutdownHandlers() {
  struct sigaction sa;
  sa.sa_handler = ShutdownSignalHandler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // No SA_RESTART: blocked I/O wakes with EINTR.
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  // Dead peers must surface as write errors, never process death.
  ::signal(SIGPIPE, SIG_IGN);
}

bool ShutdownRequested() { return g_shutdown_requested != 0; }

void RequestShutdown() { g_shutdown_requested = 1; }

void ClearShutdownRequest() { g_shutdown_requested = 0; }

}  // namespace sdp
