#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace sdp {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: seeds the xoshiro state from a single 64-bit value.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SDP_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  SDP_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::NextExponential(double lambda) {
  SDP_CHECK(lambda > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  SDP_CHECK(k >= 0 && k <= n);
  // Floyd's algorithm gives O(k) draws; we then sort for determinism of
  // the output order.
  std::vector<int> out;
  out.reserve(k);
  for (int j = n - k; j < n; ++j) {
    int t = static_cast<int>(NextBounded(static_cast<uint64_t>(j) + 1));
    bool seen = false;
    for (int v : out) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  // Insertion sort: k is small in all callers.
  for (size_t i = 1; i < out.size(); ++i) {
    int v = out[i];
    size_t j = i;
    while (j > 0 && out[j - 1] > v) {
      out[j] = out[j - 1];
      --j;
    }
    out[j] = v;
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next64()); }

}  // namespace sdp
