#ifndef SDPOPT_COMMON_FAULT_INJECTION_H_
#define SDPOPT_COMMON_FAULT_INJECTION_H_

#include <stdint.h>

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

namespace sdp {

// Deterministic, seed-driven fault injector for the chaos test suite.
//
// Fault *sites* are string-tagged probes compiled into production code
// paths (e.g. "arena.alloc" before every arena block allocation -- see
// the site registry in DESIGN.md).  A site fires when a configured *rule*
// matches:
//
//   site@N      fire on exactly the Nth hit of the site (one-shot)
//   site%P      fire each hit with probability P in [0,1), derived
//               deterministically from (seed, site, hit ordinal)
//   site@N=V    as above, with a double payload V delivered to the probe
//   site%P=V    (payload examples: clock-jump seconds, stall millis)
//
// Rules are comma-separated: "arena.alloc@3,pool.stall%0.1=20".
//
// The injector is compiled in always but free when disabled: Hit() is a
// single relaxed atomic load on the fast path.  Configure()/Disable()
// must not race Hit() probes -- tests configure before starting workers
// and disable after joining them.
class FaultInjector {
 public:
  static FaultInjector& Global();

  // Parses `spec` and enables the injector.  Empty spec disables.  On a
  // malformed spec, leaves the injector disabled, fills *error (if given)
  // and returns false.
  bool Configure(uint64_t seed, const std::string& spec,
                 std::string* error = nullptr);
  void Disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Probe: returns true when a rule for `site` fires on this hit.  The
  // payload overload stores the rule's "=V" value (0 when none given).
  bool Hit(const char* site) {
    if (!enabled()) return false;
    return HitSlow(site, nullptr);
  }
  bool Hit(const char* site, double* value) {
    if (!enabled()) return false;
    return HitSlow(site, value);
  }

  // Introspection for tests: hits observed / fires delivered per site
  // since the last Configure().
  uint64_t HitCount(const std::string& site) const;
  uint64_t FireCount(const std::string& site) const;

  // The registry of site tags compiled into the binary, for --help text
  // and spec validation.  Unknown sites in a spec are accepted (they
  // simply never fire) so tests can probe sites added later.
  static std::vector<std::string> KnownSites();

 private:
  struct Rule {
    std::string site;
    bool nth = false;        // true: @N one-shot; false: %P probability.
    uint64_t n = 0;          // Nth hit (1-based) when nth.
    double probability = 0;  // Per-hit fire probability when !nth.
    double value = 0;        // "=V" payload.
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  FaultInjector() = default;
  bool HitSlow(const char* site, double* value);

  std::atomic<bool> enabled_{false};
  uint64_t seed_ = 0;
  std::vector<Rule> rules_;
  mutable std::mutex mu_;
};

// RAII helper for tests: configures the global injector on construction,
// disables it on destruction (also on test failure/exception unwind).
class FaultInjectionScope {
 public:
  FaultInjectionScope(uint64_t seed, const std::string& spec) {
    std::string error;
    ok_ = FaultInjector::Global().Configure(seed, spec, &error);
    error_ = error;
  }
  ~FaultInjectionScope() { FaultInjector::Global().Disable(); }

  FaultInjectionScope(const FaultInjectionScope&) = delete;
  FaultInjectionScope& operator=(const FaultInjectionScope&) = delete;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

 private:
  bool ok_ = false;
  std::string error_;
};

}  // namespace sdp

#endif  // SDPOPT_COMMON_FAULT_INJECTION_H_
