#include "common/fault_injection.h"

#include <cstdlib>
#include <cstring>

#include "obs/flight_recorder.h"

namespace sdp {
namespace {

// splitmix64: tiny, high-quality mixer; keeps probability rules
// deterministic as a pure function of (seed, site, hit ordinal).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashSite(const std::string& site) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a.
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

double UnitUniform(uint64_t seed, uint64_t site_hash, uint64_t hit) {
  const uint64_t bits = Mix64(seed ^ Mix64(site_hash ^ Mix64(hit)));
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

bool FaultInjector::Configure(uint64_t seed, const std::string& spec,
                              std::string* error) {
  Disable();
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  seed_ = seed;
  if (spec.empty()) return true;

  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;

    Rule rule;
    size_t trig = token.find_first_of("@%");
    if (trig == std::string::npos || trig == 0) {
      if (error != nullptr) {
        *error = "fault rule '" + token + "' lacks a @N or %P trigger";
      }
      rules_.clear();
      return false;
    }
    rule.site = token.substr(0, trig);
    rule.nth = token[trig] == '@';
    std::string arg = token.substr(trig + 1);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      rule.value = std::strtod(arg.c_str() + eq + 1, nullptr);
      arg = arg.substr(0, eq);
    }
    char* end = nullptr;
    if (rule.nth) {
      rule.n = std::strtoull(arg.c_str(), &end, 10);
      if (end == arg.c_str() || *end != '\0' || rule.n == 0) {
        if (error != nullptr) {
          *error = "fault rule '" + token + "': @N needs a positive integer";
        }
        rules_.clear();
        return false;
      }
    } else {
      rule.probability = std::strtod(arg.c_str(), &end);
      if (end == arg.c_str() || *end != '\0' || rule.probability < 0 ||
          rule.probability > 1) {
        if (error != nullptr) {
          *error = "fault rule '" + token + "': %P needs P in [0,1]";
        }
        rules_.clear();
        return false;
      }
    }
    rules_.push_back(std::move(rule));
  }
  enabled_.store(!rules_.empty(), std::memory_order_release);
  return true;
}

void FaultInjector::Disable() {
  enabled_.store(false, std::memory_order_release);
}

bool FaultInjector::HitSlow(const char* site, double* value) {
  std::lock_guard<std::mutex> lock(mu_);
  bool fired = false;
  for (Rule& rule : rules_) {
    if (rule.site != site) continue;
    const uint64_t hit = ++rule.hits;
    bool fire;
    if (rule.nth) {
      fire = hit == rule.n;
    } else {
      fire = UnitUniform(seed_, HashSite(rule.site), hit) < rule.probability;
    }
    if (fire) {
      ++rule.fires;
      if (value != nullptr) *value = rule.value;
      fired = true;
    }
  }
  if (fired) {
    // A fired fault is a "something went wrong" signal: record the site
    // (first 16 tag chars packed into b/c) and ask the service to dump
    // the flight recorder once the current request finishes.
    uint64_t b = 0;
    uint64_t c = 0;
    const size_t len = std::strlen(site);
    for (size_t i = 0; i < len && i < 8; ++i) {
      b |= static_cast<uint64_t>(static_cast<unsigned char>(site[i]))
           << (8 * i);
    }
    for (size_t i = 8; i < len && i < 16; ++i) {
      c |= static_cast<uint64_t>(static_cast<unsigned char>(site[i]))
           << (8 * (i - 8));
    }
    FlightRecorder::Global().Record(ObsKind::kFaultFired, 0, 0, b, c);
    FlightRecorder::Global().SignalDump();
  }
  return fired;
}

uint64_t FaultInjector::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t hits = 0;
  for (const Rule& rule : rules_) {
    if (rule.site == site) hits = rule.hits > hits ? rule.hits : hits;
  }
  return hits;
}

uint64_t FaultInjector::FireCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t fires = 0;
  for (const Rule& rule : rules_) {
    if (rule.site == site) fires += rule.fires;
  }
  return fires;
}

std::vector<std::string> FaultInjector::KnownSites() {
  return {
      "arena.alloc",       // Arena::Allocate throws std::bad_alloc.
      "cost.nan",          // Cost model emits NaN for one plan.
      "budget.clock-jump", // ResourceBudget clock jumps forward V seconds.
      "pool.stall",        // ThreadPool worker stalls V ms before a task.
      "service.fill",      // OptimizerService fill throws mid-flight.
      "net.frame.corrupt",   // Sender flips a frame-header byte (bad magic).
      "net.frame.truncate",  // Sender stops mid-frame; receiver sees EOF.
      "net.conn.reset",      // Sender shuts the socket down mid-frame.
      "net.short-write",     // Frame sent 1 byte + remainder (still whole).
      "net.delay-ms",        // Sender sleeps V ms before the frame.
      "replica.poison",      // Replica _exits mid-optimize; V selects the
                             // poisoned key (DtraceHash(key) % 100000).
  };
}

}  // namespace sdp
