#ifndef SDPOPT_COMMON_SUBPROCESS_H_
#define SDPOPT_COMMON_SUBPROCESS_H_

#include <sys/types.h>

#include <functional>
#include <vector>

namespace sdp {

// fork()-based process supervision for the fleet tier, plus the
// signal-driven shutdown flag every long-running loop polls.
//
// The fleet deliberately uses fork-without-exec: replicas are closures
// over already-bound listen fds and a deterministic in-process catalog,
// so there is no binary path, argv marshalling, or exec environment to
// get wrong.  The child runs `child_main` and _exit()s with its return
// value -- it must never return into the parent's stack unwinding.

// Forks and runs `child_main` in the child.  `close_fds` are closed in
// the child before `child_main` runs (a supervisor passes every sibling
// replica's listen fd here, so exactly one process accepts per port).
// Returns the child pid, or -1 on fork failure.
pid_t SpawnProcess(const std::function<int()>& child_main,
                   const std::vector<int>& close_fds = {});

// Closes every descriptor >= 3 not in `keep`.  A forked replica calls
// this first: the supervisor's client connections, sibling listen fds
// and router sockets must not survive into the child, where they would
// hold peers' TCP sessions open after the parent closes its copies (and
// let two processes race on one listen queue).
void CloseAllFdsExcept(const std::vector<int>& keep);

// True while the child has neither exited nor been reaped.  A fresh
// zombie is reaped on the spot and its status discarded -- use
// WaitProcess instead when the exit code matters.
bool ProcessAlive(pid_t pid);

// Waits up to `timeout_ms` (<0 = forever) for the child to exit.
// Returns the child's exit code (or 128+signal when killed by a signal),
// or -1 on timeout / wait error.
int WaitProcess(pid_t pid, int timeout_ms);

// Sends `sig` (e.g. SIGTERM for graceful drain, SIGKILL for a hard
// crash in fault-injection tests).
void KillProcess(pid_t pid, int sig);

// Installs SIGTERM/SIGINT handlers that set a process-wide flag; serving
// loops poll ShutdownRequested() and drain gracefully.  Handlers are
// async-signal-safe (they only store to a volatile sig_atomic_t).
void InstallShutdownHandlers();
bool ShutdownRequested();
// Sets the flag directly, for in-process tests of drain paths.
void RequestShutdown();
// Clears the flag (call after fork in children that inherited a pending
// request, or between tests).
void ClearShutdownRequest();

}  // namespace sdp

#endif  // SDPOPT_COMMON_SUBPROCESS_H_
