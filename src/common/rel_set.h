#ifndef SDPOPT_COMMON_REL_SET_H_
#define SDPOPT_COMMON_REL_SET_H_

#include <stdint.h>

#include <string>

namespace sdp {

// A set of base relations, represented as a 64-bit bitmask.
//
// Relation identifiers are the positions of relations inside a JoinGraph
// (0-based, dense).  All optimizer data structures (memo keys, join-composite
// relations, adjacency sets) are expressed as RelSets.  The 64-bit width
// comfortably covers the paper's largest experiment (a 45-relation star).
class RelSet {
 public:
  static constexpr int kMaxRelations = 64;

  constexpr RelSet() : bits_(0) {}
  constexpr explicit RelSet(uint64_t bits) : bits_(bits) {}

  // The singleton set {rel}.
  static constexpr RelSet Single(int rel) { return RelSet(uint64_t{1} << rel); }

  // The set {0, 1, ..., n-1}.
  static constexpr RelSet FirstN(int n) {
    return RelSet(n >= kMaxRelations ? ~uint64_t{0} : (uint64_t{1} << n) - 1);
  }

  constexpr uint64_t bits() const { return bits_; }
  constexpr bool Empty() const { return bits_ == 0; }
  constexpr int Count() const { return __builtin_popcountll(bits_); }

  constexpr bool Contains(int rel) const {
    return (bits_ >> rel) & uint64_t{1};
  }
  constexpr bool ContainsAll(RelSet other) const {
    return (bits_ & other.bits_) == other.bits_;
  }
  constexpr bool Overlaps(RelSet other) const {
    return (bits_ & other.bits_) != 0;
  }
  constexpr bool IsSubsetOf(RelSet other) const {
    return (bits_ & other.bits_) == bits_;
  }
  // True for strict subsets (subset and not equal).
  constexpr bool IsProperSubsetOf(RelSet other) const {
    return IsSubsetOf(other) && bits_ != other.bits_;
  }

  constexpr RelSet Union(RelSet other) const {
    return RelSet(bits_ | other.bits_);
  }
  constexpr RelSet Intersect(RelSet other) const {
    return RelSet(bits_ & other.bits_);
  }
  constexpr RelSet Subtract(RelSet other) const {
    return RelSet(bits_ & ~other.bits_);
  }
  constexpr RelSet With(int rel) const {
    return RelSet(bits_ | (uint64_t{1} << rel));
  }
  constexpr RelSet Without(int rel) const {
    return RelSet(bits_ & ~(uint64_t{1} << rel));
  }

  // Index of the lowest-numbered relation in the set. Undefined when empty.
  constexpr int Lowest() const { return __builtin_ctzll(bits_); }

  constexpr bool operator==(const RelSet& other) const = default;

  // Calls fn(rel) for each member, in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    uint64_t b = bits_;
    while (b != 0) {
      fn(__builtin_ctzll(b));
      b &= b - 1;
    }
  }

  // Renders as e.g. "{0,3,7}".
  std::string ToString() const;

 private:
  uint64_t bits_;
};

struct RelSetHash {
  size_t operator()(RelSet s) const {
    // Mix the bits (splitmix64 finalizer) so sequential masks spread well.
    uint64_t x = s.bits();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

}  // namespace sdp

#endif  // SDPOPT_COMMON_REL_SET_H_
