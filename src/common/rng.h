#ifndef SDPOPT_COMMON_RNG_H_
#define SDPOPT_COMMON_RNG_H_

#include <stddef.h>
#include <stdint.h>

#include <utility>
#include <vector>

namespace sdp {

// Deterministic pseudo-random number generator (xoshiro256**).
//
// Every stochastic component of the library (schema generation, data
// generation, workload sampling) draws from an explicitly seeded Rng so that
// experiments are exactly reproducible across runs and platforms.  We do not
// use <random> engines because their distributions are not guaranteed to be
// bit-identical across standard library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t Next64();

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Exponentially distributed double with the given rate (lambda > 0).
  double NextExponential(double lambda);

  // A uniformly random k-subset of {0,...,n-1}, in increasing order.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  // Derives an independent child generator; used to give each query instance
  // its own stream so instance i's draws do not depend on instance i-1.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace sdp

#endif  // SDPOPT_COMMON_RNG_H_
