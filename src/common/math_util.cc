#include "common/math_util.h"

#include <cmath>

#include "common/check.h"

namespace sdp {

double BinomialCoefficient(int n, int k) {
  if (k < 0 || k > n) return 0;
  if (k > n - k) k = n - k;
  double result = 1;
  for (int i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i);
    result /= static_cast<double>(i);
  }
  return result;
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double log_sum = 0;
  for (double v : values) {
    SDP_CHECK(v > 0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace sdp
