#ifndef SDPOPT_COMMON_CHECK_H_
#define SDPOPT_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace sdp::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "SDP_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace sdp::internal

// Invariant check that stays enabled in release builds.  The optimizer is a
// search procedure whose correctness depends on structural invariants
// (disjointness of join inputs, connectivity, memo consistency); violating
// one silently would corrupt every downstream experiment, so we always abort.
#define SDP_CHECK(expr)                                     \
  do {                                                      \
    if (!(expr)) {                                          \
      ::sdp::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                       \
  } while (0)

// Debug-only check for hot paths.
#ifndef NDEBUG
#define SDP_DCHECK(expr) SDP_CHECK(expr)
#else
#define SDP_DCHECK(expr) \
  do {                   \
  } while (0)
#endif

#endif  // SDPOPT_COMMON_CHECK_H_
