#include "common/rel_set.h"

#include <string>

namespace sdp {

std::string RelSet::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEach([&](int rel) {
    if (!first) out += ",";
    out += std::to_string(rel);
    first = false;
  });
  out += "}";
  return out;
}

}  // namespace sdp
