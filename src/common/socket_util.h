#ifndef SDPOPT_COMMON_SOCKET_UTIL_H_
#define SDPOPT_COMMON_SOCKET_UTIL_H_

#include <stddef.h>

#include <string>

namespace sdp {

// Loopback TCP plumbing shared by the obs HTTP server and the fleet tier
// (router and replica listeners).  All sockets bind 127.0.0.1 only: the
// fleet is a single-host, multi-process deployment, never a network
// service.  Every call is EINTR-tolerant so signal-driven shutdown (see
// common/subprocess.h) cannot corrupt a frame mid-transfer.

// Creates, binds and listens a loopback TCP socket.  `port` 0 picks an
// ephemeral port (read it back with BoundPort).  Returns the fd, or -1
// with `*error` set.  The fd is blocking and close-on-exec is NOT set:
// fleet supervisors deliberately pass listen fds across fork().
int ListenLocalhost(int port, std::string* error);

// Port a bound socket actually listens on; -1 on error.
int BoundPort(int fd);

// Connects to 127.0.0.1:port, waiting at most `timeout_ms` for the
// connection to be accepted.  Returns the fd, or -1 with `*error` set.
int ConnectLocalhost(int port, int timeout_ms, std::string* error);

// Reads exactly `n` bytes.  False on peer close, timeout, or error.
bool ReadFull(int fd, void* buf, size_t n);

// Writes exactly `n` bytes (MSG_NOSIGNAL: a dead peer yields false, not
// SIGPIPE).  False on error.
bool WriteFull(int fd, const void* buf, size_t n);

// Waits up to `timeout_ms` for `fd` to become readable.  1 = readable,
// 0 = timeout, -1 = error.  EINTR reports as timeout so callers re-check
// their stop flags.
int PollReadable(int fd, int timeout_ms);

// Applies SO_RCVTIMEO/SO_SNDTIMEO so a stalled peer cannot wedge a
// blocking ReadFull/WriteFull forever.
void SetIoTimeout(int fd, int timeout_ms);

}  // namespace sdp

#endif  // SDPOPT_COMMON_SOCKET_UTIL_H_
