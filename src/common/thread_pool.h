#ifndef SDPOPT_COMMON_THREAD_POOL_H_
#define SDPOPT_COMMON_THREAD_POOL_H_

#include <stddef.h>
#include <stdint.h>

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace sdp {

// Fixed-size worker pool with a FIFO task queue.
//
// The pool owns its threads for its whole lifetime; tasks are opaque
// std::function<void()> thunks.  Destruction drains the queue (every task
// already submitted still runs) and then joins the workers, so a task's
// captures may safely reference state owned by whoever owns the pool --
// which is exactly how OptimizerService uses it: the service destructor
// runs the pool destructor first, guaranteeing no request outlives the
// service's catalog, cache or metrics.
//
// Robustness guarantees:
//  * A task that throws never takes the process down: the exception is
//    captured into tasks_failed()/last_task_error() and the worker moves
//    on to the next task.
//  * Shutdown() always joins.  Drain mode runs every queued task first;
//    abandon mode (or a drain whose deadline expires) drops the queued
//    tasks that have not started, then joins.  Joining still waits for
//    tasks already *running* -- a cooperative pool cannot kill a thread --
//    so long-running tasks should poll a ResourceBudget / CancelToken.
//
// Deliberately minimal: no futures, no priorities, no work stealing.  The
// service layer composes promises on top.
class ThreadPool {
 public:
  enum class ShutdownMode {
    kDrain,    // Run every queued task before joining.
    kAbandon,  // Drop queued (not-yet-started) tasks, then join.
  };

  struct ShutdownStats {
    size_t abandoned_tasks = 0;  // Queued tasks dropped without running.
    bool deadline_expired = false;  // Drain gave up and switched to abandon.
  };

  // Spawns max(1, num_threads) workers immediately.
  explicit ThreadPool(int num_threads);

  // Equivalent to Shutdown(kDrain).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task.  Returns false (dropping the task) once shutdown has
  // begun.
  bool Submit(std::function<void()> task);

  // Stops the pool and joins every worker; idempotent (later calls return
  // the first call's stats).  In kDrain mode with deadline_seconds > 0,
  // waits at most that long for the queue to empty before abandoning
  // whatever is still queued -- the join itself is then bounded by the
  // longest *running* task, never by queued backlog.
  ShutdownStats Shutdown(ShutdownMode mode = ShutdownMode::kDrain,
                         double deadline_seconds = 0);

  // Tasks enqueued but not yet picked up by a worker.
  int queue_depth() const;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Tasks whose exception was captured instead of propagating.
  uint64_t tasks_failed() const {
    return tasks_failed_.load(std::memory_order_relaxed);
  }
  std::string last_task_error() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;        // Wakes workers (new task / shutdown).
  std::condition_variable drain_cv_;  // Wakes Shutdown when queue empties.
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
  std::atomic<uint64_t> tasks_failed_{0};
  std::string last_task_error_;

  // Serializes Shutdown() callers (including the destructor).
  std::mutex shutdown_call_mu_;
  bool joined_ = false;
  ShutdownStats shutdown_stats_;
};

}  // namespace sdp

#endif  // SDPOPT_COMMON_THREAD_POOL_H_
