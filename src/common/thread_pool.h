#ifndef SDPOPT_COMMON_THREAD_POOL_H_
#define SDPOPT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sdp {

// Fixed-size worker pool with a FIFO task queue.
//
// The pool owns its threads for its whole lifetime; tasks are opaque
// std::function<void()> thunks.  Destruction drains the queue (every task
// already submitted still runs) and then joins the workers, so a task's
// captures may safely reference state owned by whoever owns the pool --
// which is exactly how OptimizerService uses it: the service destructor
// runs the pool destructor first, guaranteeing no request outlives the
// service's catalog, cache or metrics.
//
// Deliberately minimal: no futures, no priorities, no work stealing.  The
// service layer composes promises on top.
class ThreadPool {
 public:
  // Spawns max(1, num_threads) workers immediately.
  explicit ThreadPool(int num_threads);

  // Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task.  Must not be called after (or concurrently with) the
  // destructor.
  void Submit(std::function<void()> task);

  // Tasks enqueued but not yet picked up by a worker.
  int queue_depth() const;

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

}  // namespace sdp

#endif  // SDPOPT_COMMON_THREAD_POOL_H_
