#include "common/budget.h"

#include "common/arena.h"
#include "common/fault_injection.h"
#include "obs/flight_recorder.h"

#include <limits>

namespace sdp {
namespace {

uint64_t RoundUpPow2(uint64_t v) {
  if (v <= 1) return 1;
  --v;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  v |= v >> 32;
  return v + 1;
}

}  // namespace

const char* OptStatusCodeName(OptStatusCode code) {
  switch (code) {
    case OptStatusCode::kOk:
      return "OK";
    case OptStatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case OptStatusCode::kMemoryExceeded:
      return "MEMORY_EXCEEDED";
    case OptStatusCode::kCancelled:
      return "CANCELLED";
    case OptStatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string OptStatus::ToString() const {
  std::string out = OptStatusCodeName(code);
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

ResourceBudget::ResourceBudget(const Limits& limits, CancelToken* cancel)
    : limits_(limits), cancel_(cancel) {
  interval_mask_ = RoundUpPow2(limits_.check_interval) - 1;
}

void ResourceBudget::Arm() {
  armed_at_ = std::chrono::steady_clock::now();
  armed_ = true;
  clock_skew_seconds_ = 0;
}

void ResourceBudget::Trip(OptStatusCode code, std::string message) {
  if (code == OptStatusCode::kOk) return;
  if (code_ != OptStatusCode::kOk) return;  // First trip wins.
  code_ = code;
  message_ = std::move(message);
  FlightRecorder::Global().Record(ObsKind::kBudgetTrip,
                                  static_cast<uint8_t>(code), /*a=*/0,
                                  /*b=*/checkpoints_, /*c=*/plans_costed_);
}

OptStatusCode ResourceBudget::ProbeCrossThread() const {
  if (code_ != OptStatusCode::kOk) return code_;
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return OptStatusCode::kCancelled;
  }
  if (has_deadline() && armed_ &&
      ElapsedSeconds() > limits_.deadline_seconds) {
    return OptStatusCode::kDeadlineExceeded;
  }
  return OptStatusCode::kOk;
}

void ResourceBudget::CheckMemory() {
  const size_t current = gauge_->current_bytes();
  if (current > limits_.memory_budget_bytes) {
    Trip(OptStatusCode::kMemoryExceeded,
         "memory budget exceeded: " + std::to_string(current) + " > " +
             std::to_string(limits_.memory_budget_bytes) + " bytes");
  }
}

OptStatusCode ResourceBudget::SlowCheck() {
  double jump = 0;
  if (FaultInjector::Global().Hit("budget.clock-jump", &jump)) {
    clock_skew_seconds_ += jump;
  }
  if (cancel_ != nullptr && cancel_->cancelled()) {
    Trip(OptStatusCode::kCancelled, "request cancelled");
    return code_;
  }
  if (has_deadline() && armed_ &&
      ElapsedSeconds() > limits_.deadline_seconds) {
    Trip(OptStatusCode::kDeadlineExceeded,
         "deadline of " + std::to_string(limits_.deadline_seconds) +
             "s exceeded after " + std::to_string(checkpoints_) +
             " checkpoints");
    return code_;
  }
  return code_;
}

bool ResourceBudget::ResetForRetry() {
  // Cancellation and an expired deadline outlast any single rung; memory
  // trips (fresh working set) and internal defects (possibly
  // rung-specific) are recoverable by retrying with a cheaper algorithm.
  if (code_ == OptStatusCode::kCancelled ||
      code_ == OptStatusCode::kDeadlineExceeded) {
    return false;
  }
  if (cancel_ != nullptr && cancel_->cancelled()) {
    code_ = OptStatusCode::kOk;  // Allow the cancel trip to latch fresh.
    Trip(OptStatusCode::kCancelled, "request cancelled");
    return false;
  }
  if (has_deadline() && armed_ &&
      ElapsedSeconds() > limits_.deadline_seconds) {
    code_ = OptStatusCode::kOk;
    Trip(OptStatusCode::kDeadlineExceeded,
         "deadline exceeded before retry");
    return false;
  }
  code_ = OptStatusCode::kOk;
  message_.clear();
  gauge_ = nullptr;
  plans_costed_ = 0;
  return true;
}

double ResourceBudget::ElapsedSeconds() const {
  if (!armed_) return clock_skew_seconds_;
  const auto now = std::chrono::steady_clock::now();
  return clock_skew_seconds_ +
         std::chrono::duration<double>(now - armed_at_).count();
}

double ResourceBudget::RemainingSeconds() const {
  if (!has_deadline()) return std::numeric_limits<double>::infinity();
  return limits_.deadline_seconds - ElapsedSeconds();
}

}  // namespace sdp
