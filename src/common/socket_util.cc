#include "common/socket_util.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <time.h>
#include <unistd.h>

namespace sdp {

namespace {

sockaddr_in LoopbackAddr(int port) {
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  return addr;
}

}  // namespace

int ListenLocalhost(int port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) *error = std::string("bind: ") + strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 128) != 0) {
    if (error != nullptr) *error = std::string("listen: ") + strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int BoundPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return -1;
  }
  return ntohs(addr.sin_port);
}

int ConnectLocalhost(int port, int timeout_ms, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + strerror(errno);
    return -1;
  }
  // Non-blocking connect so the timeout is enforceable, then back to
  // blocking for the framed I/O.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  sockaddr_in addr = LoopbackAddr(port);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    // The supervisor's reaper delivers SIGCHLD at arbitrary times, so
    // this wait must survive EINTR: retry the poll with whatever time
    // remains instead of reporting a spurious connect failure.
    timespec now;
    clock_gettime(CLOCK_MONOTONIC, &now);
    const int64_t deadline_ms = now.tv_sec * 1000 + now.tv_nsec / 1000000 +
                                (timeout_ms < 0 ? 0 : timeout_ms);
    for (;;) {
      pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      int wait_ms = timeout_ms;
      if (timeout_ms >= 0) {
        clock_gettime(CLOCK_MONOTONIC, &now);
        const int64_t left =
            deadline_ms - (now.tv_sec * 1000 + now.tv_nsec / 1000000);
        wait_ms = left > 0 ? static_cast<int>(left) : 0;
      }
      rc = ::poll(&pfd, 1, wait_ms);
      if (rc < 0 && errno == EINTR) continue;
      if (rc == 1) {
        int soerr = 0;
        socklen_t len = sizeof(soerr);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
        rc = soerr == 0 ? 0 : -1;
        errno = soerr;
      } else {
        if (rc == 0) errno = ETIMEDOUT;
        rc = -1;
      }
      break;
    }
  }
  if (rc != 0) {
    if (error != nullptr) *error = std::string("connect: ") + strerror(errno);
    ::close(fd);
    return -1;
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool ReadFull(int fd, void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
    } else if (r < 0 && errno == EINTR) {
      continue;
    } else {
      return false;  // Peer closed (0), timed out, or errored.
    }
  }
  return true;
}

bool WriteFull(int fd, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<size_t>(r);
    } else if (r < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

int PollReadable(int fd, int timeout_ms) {
  pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  // EINTR maps to "nothing readable yet": every caller polls in a loop,
  // so a signal (reaper SIGCHLD, shutdown) just shortens one tick.
  if (rc < 0) return errno == EINTR ? 0 : -1;
  return rc;
}

void SetIoTimeout(int fd, int timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace sdp
