#include "common/arena.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "obs/prof/prof.h"

namespace sdp {

void* Arena::Allocate(size_t size, size_t align) {
  SDP_DCHECK(align > 0 && (align & (align - 1)) == 0);
  // Fault site: simulate the system refusing more memory.  Thrown as
  // bad_alloc exactly like a real exhausted heap; the service's worker
  // catches it and reports kInternal rather than crashing.
  if (FaultInjector::Global().Hit("arena.alloc")) throw std::bad_alloc();
  if (!blocks_.empty()) {
    Block& b = blocks_.back();
    size_t offset = (b.used + align - 1) & ~(align - 1);
    if (offset + size <= b.size) {
      b.used = offset + size;
      allocated_ += size;
      if (gauge_ != nullptr) {
        gauge_->Charge(size);
        // Attribution only on gauge-attached arenas: worker-local scratch
        // (gauge == nullptr) stays invisible, so per-phase totals match
        // serial runs exactly.
        ProfRecordAlloc(ProfAllocSource::kArena, size);
      }
      return b.data.get() + offset;
    }
  }
  // Start a new block: doubling growth, but never below what's requested.
  size_t block_size =
      blocks_.empty() ? kInitialBlockSize
                      : std::min(blocks_.back().size * 2, kMaxBlockSize);
  block_size = std::max(block_size, size + align);
  Block b;
  b.data = std::make_unique<char[]>(block_size);
  b.size = block_size;
  uintptr_t base = reinterpret_cast<uintptr_t>(b.data.get());
  size_t offset = ((base + align - 1) & ~(align - 1)) - base;
  b.used = offset + size;
  allocated_ += size;
  if (gauge_ != nullptr) {
    gauge_->Charge(size);
    ProfRecordAlloc(ProfAllocSource::kArena, size);
  }
  void* out = b.data.get() + offset;
  blocks_.push_back(std::move(b));
  return out;
}

void Arena::ReleaseAll() {
  if (gauge_ != nullptr) gauge_->Release(allocated_);
  allocated_ = 0;
  blocks_.clear();
}

}  // namespace sdp
