#ifndef SDPOPT_COMMON_MATH_UTIL_H_
#define SDPOPT_COMMON_MATH_UTIL_H_

#include <stdint.h>

#include <vector>

namespace sdp {

// Binomial coefficient C(n, k) computed in doubles (experiment spaces such
// as C(24,14) overflow is not a concern at double precision for our sizes).
double BinomialCoefficient(int n, int k);

// Geometric mean of strictly positive values; returns 0 for an empty input.
// Used for the paper's plan-quality factor rho (geometric mean of plan costs
// normalized to the DP-optimal cost).
double GeometricMean(const std::vector<double>& values);

// Enumerates all k-subsets of {0..n-1} in lexicographic order, invoking
// fn(const std::vector<int>&) for each.  Returns the number of subsets
// visited.  If fn returns false, enumeration stops early.
template <typename Fn>
uint64_t ForEachCombination(int n, int k, Fn&& fn) {
  if (k < 0 || k > n) return 0;
  std::vector<int> idx(k);
  for (int i = 0; i < k; ++i) idx[i] = i;
  uint64_t count = 0;
  for (;;) {
    ++count;
    if (!fn(static_cast<const std::vector<int>&>(idx))) return count;
    // Advance to next combination.
    int i = k - 1;
    while (i >= 0 && idx[i] == n - k + i) --i;
    if (i < 0) return count;
    ++idx[i];
    for (int j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

}  // namespace sdp

#endif  // SDPOPT_COMMON_MATH_UTIL_H_
