#ifndef SDPOPT_STATS_COLUMN_STATS_H_
#define SDPOPT_STATS_COLUMN_STATS_H_

#include <stdint.h>

#include <vector>

#include "catalog/catalog.h"

namespace sdp {

// Equi-depth histogram over a column's value range: `bounds` holds
// num_buckets+1 ascending boundaries; each bucket covers an equal share of
// the rows.  Mirrors PostgreSQL's histogram_bounds produced by ANALYZE.
struct Histogram {
  std::vector<double> bounds;

  bool Empty() const { return bounds.size() < 2; }
  int num_buckets() const {
    return Empty() ? 0 : static_cast<int>(bounds.size()) - 1;
  }

  // Estimated fraction of rows with value <= v (linear interpolation within
  // a bucket).  Returns 0.5 when the histogram is empty.
  double FractionBelow(double v) const;
};

// Per-column statistics used by the cost model's selectivity estimation.
struct ColumnStats {
  double num_distinct = 1;
  double min_value = 0;
  double max_value = 0;
  Histogram histogram;
};

// Statistics for every (table, column) of a catalog: the product of the
// paper's "Analyze command of PostgreSQL".
class StatsCatalog {
 public:
  StatsCatalog() = default;

  void Resize(const Catalog& catalog);
  void Set(int table, int column, ColumnStats stats);
  const ColumnStats& Get(int table, int column) const;

 private:
  std::vector<std::vector<ColumnStats>> stats_;
};

// Derives statistics analytically from the catalog metadata, without
// materializing data.  For uniform data the expected distinct count of R
// draws from a domain of size D is D*(1-(1-1/D)^R); for exponential data the
// effective distinct count is reduced because the mass concentrates on small
// values (we integrate the same occupancy formula against the exponential
// density).  Used for optimizer experiments at scales where generating
// 2.5M-row tables per instance would be wasteful.
StatsCatalog SynthesizeStats(const Catalog& catalog);

// Computes exact statistics from materialized column values (used by the
// execution-engine examples and tests).  `num_buckets` bounds the histogram
// resolution.
ColumnStats ComputeColumnStats(const std::vector<int64_t>& values,
                               int num_buckets);

// Expected number of distinct values when drawing `rows` samples uniformly
// from a domain of `domain` values.  Exposed for tests.
double ExpectedDistinctUniform(double rows, double domain);

}  // namespace sdp

#endif  // SDPOPT_STATS_COLUMN_STATS_H_
