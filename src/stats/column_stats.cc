#include "stats/column_stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sdp {

double Histogram::FractionBelow(double v) const {
  if (Empty()) return 0.5;
  if (v <= bounds.front()) return 0;
  if (v >= bounds.back()) return 1;
  // Binary search for the bucket containing v.
  auto it = std::upper_bound(bounds.begin(), bounds.end(), v);
  const int bucket = static_cast<int>(it - bounds.begin()) - 1;
  const double lo = bounds[bucket];
  const double hi = bounds[bucket + 1];
  const double within = hi > lo ? (v - lo) / (hi - lo) : 1.0;
  return (static_cast<double>(bucket) + within) /
         static_cast<double>(num_buckets());
}

void StatsCatalog::Resize(const Catalog& catalog) {
  stats_.clear();
  stats_.resize(catalog.num_tables());
  for (int t = 0; t < catalog.num_tables(); ++t) {
    stats_[t].resize(catalog.table(t).columns.size());
  }
}

void StatsCatalog::Set(int table, int column, ColumnStats stats) {
  stats_.at(table).at(column) = std::move(stats);
}

const ColumnStats& StatsCatalog::Get(int table, int column) const {
  return stats_.at(table).at(column);
}

double ExpectedDistinctUniform(double rows, double domain) {
  SDP_CHECK(domain >= 1);
  if (rows <= 0) return 0;
  // D * (1 - (1 - 1/D)^R), computed stably via expm1/log1p.
  const double log_keep = rows * std::log1p(-1.0 / domain);
  return -domain * std::expm1(log_keep);
}

namespace {

// Distinct-count estimate for exponential data: the value v = floor(X) with
// X ~ Exp(lambda) scaled so that ~99.9% of mass falls inside the domain.
// Mass concentrates near zero, so the expected occupancy is lower than
// uniform; we approximate by integrating per-value hit probabilities over a
// coarse grid.
double ExpectedDistinctExponential(double rows, double domain) {
  if (rows <= 0) return 0;
  const double lambda = 6.9 / domain;  // P(X > domain) ~ 1e-3.
  // Sum over a geometric grid of value ranges [a,b): each value in the range
  // has hit probability p ~= lambda * exp(-lambda * a); the expected number
  // of occupied values is sum (1 - (1-p)^rows).
  double distinct = 0;
  double a = 0;
  while (a < domain) {
    double b = std::min(domain, std::max(a + 1, a * 1.25));
    const double width = b - a;
    const double p = lambda * std::exp(-lambda * a);
    const double occupied =
        p >= 1 ? width : width * -std::expm1(rows * std::log1p(-std::min(p, 1.0)));
    distinct += std::min(occupied, width);
    a = b;
  }
  return std::max(1.0, std::min(distinct, std::min(rows, domain)));
}

Histogram SyntheticHistogram(const Column& column, int num_buckets) {
  Histogram h;
  const double domain = static_cast<double>(column.domain_size);
  h.bounds.reserve(num_buckets + 1);
  if (column.distribution == DataDistribution::kUniform) {
    for (int i = 0; i <= num_buckets; ++i) {
      h.bounds.push_back(domain * static_cast<double>(i) /
                         static_cast<double>(num_buckets));
    }
  } else {
    // Equi-depth boundaries of the truncated exponential: the q-quantile of
    // Exp(lambda) is -ln(1-q)/lambda.
    const double lambda = 6.9 / domain;
    for (int i = 0; i <= num_buckets; ++i) {
      const double q =
          0.999 * static_cast<double>(i) / static_cast<double>(num_buckets);
      h.bounds.push_back(std::min(domain, -std::log1p(-q) / lambda));
    }
  }
  return h;
}

}  // namespace

StatsCatalog SynthesizeStats(const Catalog& catalog) {
  constexpr int kBuckets = 16;
  StatsCatalog stats;
  stats.Resize(catalog);
  for (int t = 0; t < catalog.num_tables(); ++t) {
    const Table& table = catalog.table(t);
    for (size_t c = 0; c < table.columns.size(); ++c) {
      const Column& col = table.columns[c];
      ColumnStats s;
      const double rows = static_cast<double>(table.row_count);
      const double domain = static_cast<double>(col.domain_size);
      s.num_distinct =
          col.distribution == DataDistribution::kUniform
              ? std::max(1.0, ExpectedDistinctUniform(rows, domain))
              : ExpectedDistinctExponential(rows, domain);
      s.min_value = 0;
      s.max_value = domain - 1;
      s.histogram = SyntheticHistogram(col, kBuckets);
      stats.Set(t, static_cast<int>(c), std::move(s));
    }
  }
  return stats;
}

ColumnStats ComputeColumnStats(const std::vector<int64_t>& values,
                               int num_buckets) {
  ColumnStats s;
  if (values.empty()) {
    s.num_distinct = 0;
    return s;
  }
  std::vector<int64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.min_value = static_cast<double>(sorted.front());
  s.max_value = static_cast<double>(sorted.back());
  double distinct = 1;
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] != sorted[i - 1]) ++distinct;
  }
  s.num_distinct = distinct;
  num_buckets = std::max(1, num_buckets);
  s.histogram.bounds.reserve(num_buckets + 1);
  for (int i = 0; i <= num_buckets; ++i) {
    const size_t pos = std::min(
        sorted.size() - 1,
        static_cast<size_t>(static_cast<double>(i) / num_buckets *
                            static_cast<double>(sorted.size() - 1)));
    s.histogram.bounds.push_back(static_cast<double>(sorted[pos]));
  }
  // Histogram bounds must be non-decreasing; duplicates are fine.
  return s;
}

}  // namespace sdp
