#ifndef SDPOPT_ENGINE_EXECUTOR_H_
#define SDPOPT_ENGINE_EXECUTOR_H_

#include <stdint.h>

#include <string>
#include <vector>

#include "engine/table_data.h"
#include "plan/plan_node.h"
#include "query/join_graph.h"

namespace sdp {

// A materialized intermediate result: row-major tuples whose schema is the
// set of (relation position, column) pairs currently carried.  Intermediate
// results carry one column per (rel, col) actually referenced, mapped
// through `layout`.
struct ResultSet {
  // layout[i] identifies the column stored at tuple offset i.
  std::vector<ColumnRef> columns;
  std::vector<std::vector<int64_t>> rows;  // rows[r][i]

  int64_t num_rows() const { return static_cast<int64_t>(rows.size()); }
  // Offset of (rel, col) in the tuple, or -1.
  int OffsetOf(ColumnRef c) const;
};

// Runtime measurements for one executed plan operator (EXPLAIN ANALYZE).
struct PlanActuals {
  const PlanNode* node = nullptr;
  int depth = 0;            // Nesting depth in the plan tree (root = 0).
  int64_t actual_rows = 0;  // Rows the operator emitted.
  // Index probes performed by kIndexNestLoop (= outer rows); 1 elsewhere.
  // The INL inner relation is probed inline, so it has no row of its own.
  int64_t loops = 1;
  double seconds = 0;  // Wall time including children (inclusive).
};

// An executed plan plus its per-operator actuals, in pre-order (same order
// as PlanNode::ToString renders the tree).
struct AnalyzeResult {
  ResultSet result;
  std::vector<PlanActuals> operators;
};

// Cardinality Q-error: max(est/act, act/est) with both sides clamped to
// >= 1 row, so an exact estimate scores 1 and zero-row results stay finite.
double QError(double estimated_rows, int64_t actual_rows);

// Renders the per-operator estimates-vs-actuals table: operator, estimated
// rows, actual rows, loops, Q-error and inclusive wall time.
std::string AnalyzeReport(const AnalyzeResult& analyze);

// Interprets optimizer plan trees against materialized data: sequential and
// index scans, hash / merge / (index) nested-loop joins and sorts.  This is
// the engine-side counterpart of the cost model's operator repertoire; it
// exists so examples and tests can run chosen plans for real and verify
// that different plans for the same query produce identical results.
class Executor {
 public:
  // `extra_columns` are carried through scans in addition to the join
  // columns -- pass a query's select list so Project() can deliver it.
  Executor(const Database& db, const JoinGraph& graph,
           std::vector<FilterPredicate> filters = {},
           std::vector<ColumnRef> extra_columns = {});

  // Projects a result to exactly `columns` (which must be carried; pass
  // them as extra_columns at construction if they are not join columns).
  static ResultSet Project(const ResultSet& input,
                           const std::vector<ColumnRef>& columns);

  // Executes a plan tree produced by any of the optimizers for `graph`.
  ResultSet Execute(const PlanNode* plan) const;

  // Executes `plan` while recording per-operator actual rows, loop counts
  // and timings.  The result rows are identical to Execute()'s.
  AnalyzeResult ExecuteAnalyze(const PlanNode* plan) const;

  // Reference evaluation: joins all relations with a naive
  // hash-join-in-graph-order strategy, independent of any optimizer plan.
  // Used to cross-check Execute().
  ResultSet ExecuteReference() const;

 private:
  // Shared interpreter; `actuals` non-null records EXPLAIN ANALYZE rows.
  ResultSet ExecuteNode(const PlanNode* plan, std::vector<PlanActuals>* actuals,
                        int depth) const;
  ResultSet Scan(int rel, bool index_order) const;
  ResultSet HashJoin(const ResultSet& outer, const ResultSet& inner,
                     const std::vector<int>& edges) const;
  ResultSet NestLoopJoin(const ResultSet& outer, const ResultSet& inner,
                         const std::vector<int>& edges) const;
  ResultSet IndexNestLoopJoin(const ResultSet& outer, int inner_rel,
                              const std::vector<int>& edges) const;
  ResultSet MergeJoin(const ResultSet& outer, const ResultSet& inner,
                      int driving_edge, const std::vector<int>& edges) const;
  ResultSet Sort(const ResultSet& input, ColumnRef by) const;

  // Columns of `rel` that the query touches (join columns; keeps tuples
  // narrow).
  std::vector<ColumnRef> NeededColumns(int rel) const;

  // True when base-table row `row` of relation `rel` passes every filter.
  bool PassesFilters(int rel, int64_t row) const;

  const Database* db_;
  const JoinGraph* graph_;
  std::vector<FilterPredicate> filters_;
  std::vector<ColumnRef> extra_columns_;
};

}  // namespace sdp

#endif  // SDPOPT_ENGINE_EXECUTOR_H_
