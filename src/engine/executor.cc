#include "engine/executor.h"

#include <stdio.h>

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/check.h"

namespace sdp {

int ResultSet::OffsetOf(ColumnRef c) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == c) return static_cast<int>(i);
  }
  return -1;
}

Executor::Executor(const Database& db, const JoinGraph& graph,
                   std::vector<FilterPredicate> filters,
                   std::vector<ColumnRef> extra_columns)
    : db_(&db),
      graph_(&graph),
      filters_(std::move(filters)),
      extra_columns_(std::move(extra_columns)) {}

ResultSet Executor::Project(const ResultSet& input,
                            const std::vector<ColumnRef>& columns) {
  ResultSet out;
  out.columns = columns;
  std::vector<int> offsets;
  offsets.reserve(columns.size());
  for (const ColumnRef& c : columns) {
    const int off = input.OffsetOf(c);
    SDP_CHECK(off >= 0);
    offsets.push_back(off);
  }
  out.rows.reserve(input.rows.size());
  for (const auto& row : input.rows) {
    std::vector<int64_t> tuple;
    tuple.reserve(offsets.size());
    for (int off : offsets) tuple.push_back(row[off]);
    out.rows.push_back(std::move(tuple));
  }
  return out;
}

bool Executor::PassesFilters(int rel, int64_t row) const {
  const TableData& data = db_->table(graph_->table_id(rel));
  for (const FilterPredicate& f : filters_) {
    if (f.column.rel != rel) continue;
    if (!EvalCompare(data.columns[f.column.col][row], f.op, f.value)) {
      return false;
    }
  }
  return true;
}

std::vector<ColumnRef> Executor::NeededColumns(int rel) const {
  std::vector<ColumnRef> cols;
  auto add = [&](ColumnRef c) {
    for (const ColumnRef& existing : cols) {
      if (existing == c) return;
    }
    cols.push_back(c);
  };
  for (const JoinEdge& e : graph_->edges()) {
    if (e.left.rel == rel) add(e.left);
    if (e.right.rel == rel) add(e.right);
  }
  for (const ColumnRef& c : extra_columns_) {
    if (c.rel == rel) add(c);
  }
  if (cols.empty()) {
    // Isolated relation (single-table query): carry its first column.
    add(ColumnRef{rel, 0});
  }
  return cols;
}

ResultSet Executor::Scan(int rel, bool index_order) const {
  const TableData& data = db_->table(graph_->table_id(rel));
  ResultSet out;
  out.columns = NeededColumns(rel);
  const int64_t n = data.num_rows();
  out.rows.reserve(static_cast<size_t>(n));
  auto emit = [&](int64_t row) {
    if (!PassesFilters(rel, row)) return;
    std::vector<int64_t> tuple;
    tuple.reserve(out.columns.size());
    for (const ColumnRef& c : out.columns) {
      tuple.push_back(data.columns[c.col][row]);
    }
    out.rows.push_back(std::move(tuple));
  };
  if (index_order) {
    SDP_CHECK(!data.index.empty() || n == 0);
    for (const auto& [value, row] : data.index) emit(row);
  } else {
    for (int64_t row = 0; row < n; ++row) emit(row);
  }
  return out;
}

namespace {

// Concatenates an outer tuple and an inner tuple.
std::vector<int64_t> Concat(const std::vector<int64_t>& a,
                            const std::vector<int64_t>& b) {
  std::vector<int64_t> out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

struct EdgeOffsets {
  int outer = -1;
  int inner = -1;
};

// Resolves, for each connecting edge, the tuple offsets of its two sides.
std::vector<EdgeOffsets> ResolveEdges(const JoinGraph& graph,
                                      const std::vector<int>& edges,
                                      const ResultSet& outer,
                                      const ResultSet& inner) {
  std::vector<EdgeOffsets> out;
  out.reserve(edges.size());
  for (int e : edges) {
    const JoinEdge& edge = graph.edges()[e];
    EdgeOffsets eo;
    if (outer.OffsetOf(edge.left) >= 0) {
      eo.outer = outer.OffsetOf(edge.left);
      eo.inner = inner.OffsetOf(edge.right);
    } else {
      eo.outer = outer.OffsetOf(edge.right);
      eo.inner = inner.OffsetOf(edge.left);
    }
    SDP_CHECK(eo.outer >= 0 && eo.inner >= 0);
    out.push_back(eo);
  }
  return out;
}

bool EdgesMatch(const std::vector<EdgeOffsets>& offsets,
                const std::vector<int64_t>& outer_tuple,
                const std::vector<int64_t>& inner_tuple) {
  for (const EdgeOffsets& eo : offsets) {
    if (outer_tuple[eo.outer] != inner_tuple[eo.inner]) return false;
  }
  return true;
}

ResultSet JoinedSchema(const ResultSet& outer, const ResultSet& inner) {
  ResultSet out;
  out.columns = outer.columns;
  out.columns.insert(out.columns.end(), inner.columns.begin(),
                     inner.columns.end());
  return out;
}

}  // namespace

ResultSet Executor::HashJoin(const ResultSet& outer, const ResultSet& inner,
                             const std::vector<int>& edges) const {
  const std::vector<EdgeOffsets> offsets =
      ResolveEdges(*graph_, edges, outer, inner);
  // Build on the inner side keyed by the first edge; remaining edges are
  // residual filters.
  std::unordered_multimap<int64_t, const std::vector<int64_t>*> table;
  table.reserve(inner.rows.size());
  for (const auto& tuple : inner.rows) {
    table.emplace(tuple[offsets[0].inner], &tuple);
  }
  ResultSet out = JoinedSchema(outer, inner);
  for (const auto& tuple : outer.rows) {
    auto [lo, hi] = table.equal_range(tuple[offsets[0].outer]);
    for (auto it = lo; it != hi; ++it) {
      if (EdgesMatch(offsets, tuple, *it->second)) {
        out.rows.push_back(Concat(tuple, *it->second));
      }
    }
  }
  return out;
}

ResultSet Executor::NestLoopJoin(const ResultSet& outer,
                                 const ResultSet& inner,
                                 const std::vector<int>& edges) const {
  const std::vector<EdgeOffsets> offsets =
      ResolveEdges(*graph_, edges, outer, inner);
  ResultSet out = JoinedSchema(outer, inner);
  for (const auto& o : outer.rows) {
    for (const auto& i : inner.rows) {
      if (EdgesMatch(offsets, o, i)) out.rows.push_back(Concat(o, i));
    }
  }
  return out;
}

ResultSet Executor::IndexNestLoopJoin(const ResultSet& outer, int inner_rel,
                                      const std::vector<int>& edges) const {
  const TableData& data = db_->table(graph_->table_id(inner_rel));
  const int indexed_col =
      db_->catalog().table(graph_->table_id(inner_rel)).indexed_column;
  // Locate the driving edge: the connecting edge on the indexed column.
  int driving = -1;
  ColumnRef outer_side{};
  for (int e : edges) {
    const JoinEdge& edge = graph_->edges()[e];
    if (edge.left.rel == inner_rel && edge.left.col == indexed_col) {
      driving = e;
      outer_side = edge.right;
    } else if (edge.right.rel == inner_rel && edge.right.col == indexed_col) {
      driving = e;
      outer_side = edge.left;
    }
  }
  SDP_CHECK(driving >= 0);
  const int outer_offset = outer.OffsetOf(outer_side);
  SDP_CHECK(outer_offset >= 0);

  const std::vector<ColumnRef> inner_cols = NeededColumns(inner_rel);
  ResultSet inner_schema;
  inner_schema.columns = inner_cols;
  ResultSet out = JoinedSchema(outer, inner_schema);

  // Residual (non-driving) edges.
  std::vector<std::pair<int, int>> residual;  // (outer offset, inner col)
  for (int e : edges) {
    if (e == driving) continue;
    const JoinEdge& edge = graph_->edges()[e];
    const ColumnRef i_side = edge.left.rel == inner_rel ? edge.left : edge.right;
    const ColumnRef o_side = edge.left.rel == inner_rel ? edge.right : edge.left;
    residual.emplace_back(outer.OffsetOf(o_side), i_side.col);
  }

  for (const auto& tuple : outer.rows) {
    for (int64_t row : data.IndexLookup(tuple[outer_offset])) {
      if (!PassesFilters(inner_rel, row)) continue;
      bool ok = true;
      for (const auto& [ooff, icol] : residual) {
        if (tuple[ooff] != data.columns[icol][row]) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      std::vector<int64_t> joined = tuple;
      for (const ColumnRef& c : inner_cols) {
        joined.push_back(data.columns[c.col][row]);
      }
      out.rows.push_back(std::move(joined));
    }
  }
  return out;
}

ResultSet Executor::MergeJoin(const ResultSet& outer, const ResultSet& inner,
                              int driving_edge,
                              const std::vector<int>& edges) const {
  const std::vector<EdgeOffsets> offsets =
      ResolveEdges(*graph_, edges, outer, inner);
  // Locate the driving edge's offsets.
  EdgeOffsets key{};
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges[i] == driving_edge) key = offsets[i];
  }
  SDP_CHECK(key.outer >= 0);

  // Defensive sort: children should already deliver key order, but the
  // merge is correct regardless.
  std::vector<const std::vector<int64_t>*> lhs, rhs;
  lhs.reserve(outer.rows.size());
  rhs.reserve(inner.rows.size());
  for (const auto& t : outer.rows) lhs.push_back(&t);
  for (const auto& t : inner.rows) rhs.push_back(&t);
  std::sort(lhs.begin(), lhs.end(),
            [&](auto* a, auto* b) { return (*a)[key.outer] < (*b)[key.outer]; });
  std::sort(rhs.begin(), rhs.end(),
            [&](auto* a, auto* b) { return (*a)[key.inner] < (*b)[key.inner]; });

  ResultSet out = JoinedSchema(outer, inner);
  size_t i = 0, j = 0;
  while (i < lhs.size() && j < rhs.size()) {
    const int64_t lv = (*lhs[i])[key.outer];
    const int64_t rv = (*rhs[j])[key.inner];
    if (lv < rv) {
      ++i;
    } else if (lv > rv) {
      ++j;
    } else {
      size_t j_end = j;
      while (j_end < rhs.size() && (*rhs[j_end])[key.inner] == lv) ++j_end;
      for (; i < lhs.size() && (*lhs[i])[key.outer] == lv; ++i) {
        for (size_t jj = j; jj < j_end; ++jj) {
          if (EdgesMatch(offsets, *lhs[i], *rhs[jj])) {
            out.rows.push_back(Concat(*lhs[i], *rhs[jj]));
          }
        }
      }
      j = j_end;
    }
  }
  return out;
}

ResultSet Executor::Sort(const ResultSet& input, ColumnRef by) const {
  const int offset = input.OffsetOf(by);
  SDP_CHECK(offset >= 0);
  ResultSet out = input;
  std::stable_sort(out.rows.begin(), out.rows.end(),
                   [offset](const std::vector<int64_t>& a,
                            const std::vector<int64_t>& b) {
                     return a[offset] < b[offset];
                   });
  return out;
}

ResultSet Executor::ExecuteNode(const PlanNode* plan,
                                std::vector<PlanActuals>* actuals,
                                int depth) const {
  SDP_CHECK(plan != nullptr);
  // Reserve the pre-order slot before recursing into children.
  const size_t slot = actuals != nullptr ? actuals->size() : 0;
  std::chrono::steady_clock::time_point start;
  if (actuals != nullptr) {
    PlanActuals a;
    a.node = plan;
    a.depth = depth;
    actuals->push_back(a);
    start = std::chrono::steady_clock::now();
  }
  int64_t loops = 1;
  ResultSet out = [&]() -> ResultSet {
    switch (plan->kind) {
      case PlanKind::kSeqScan:
        return Scan(plan->rel, /*index_order=*/false);
      case PlanKind::kIndexScan:
        return Scan(plan->rel, /*index_order=*/true);
      case PlanKind::kSort: {
        ResultSet input = ExecuteNode(plan->outer, actuals, depth + 1);
        // Sort on any carried column of the plan's ordering class.
        for (const ColumnRef& c : input.columns) {
          if (graph_->EquivClass(c) == plan->ordering) return Sort(input, c);
        }
        // Non-join ORDER BY columns are not carried by join tuples; sorting
        // is a no-op on the joined column set in that case.
        return input;
      }
      case PlanKind::kIndexNestLoop: {
        ResultSet outer = ExecuteNode(plan->outer, actuals, depth + 1);
        loops = outer.num_rows();  // One index probe per outer row.
        return IndexNestLoopJoin(
            outer, plan->rel,
            graph_->ConnectingEdges(plan->outer->rels, plan->inner->rels));
      }
      default:
        break;
    }
    SDP_CHECK(plan->IsJoin());
    ResultSet outer = ExecuteNode(plan->outer, actuals, depth + 1);
    ResultSet inner = ExecuteNode(plan->inner, actuals, depth + 1);
    const std::vector<int> edges =
        graph_->ConnectingEdges(plan->outer->rels, plan->inner->rels);
    switch (plan->kind) {
      case PlanKind::kHashJoin:
        return HashJoin(outer, inner, edges);
      case PlanKind::kNestLoop:
        return NestLoopJoin(outer, inner, edges);
      case PlanKind::kMergeJoin:
        return MergeJoin(outer, inner, plan->edge, edges);
      default:
        SDP_CHECK(false);
        return ResultSet();
    }
  }();
  if (actuals != nullptr) {
    PlanActuals& a = (*actuals)[slot];
    a.actual_rows = out.num_rows();
    a.loops = loops;
    a.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  }
  return out;
}

ResultSet Executor::Execute(const PlanNode* plan) const {
  return ExecuteNode(plan, nullptr, 0);
}

AnalyzeResult Executor::ExecuteAnalyze(const PlanNode* plan) const {
  AnalyzeResult analyze;
  analyze.result = ExecuteNode(plan, &analyze.operators, 0);
  return analyze;
}

double QError(double estimated_rows, int64_t actual_rows) {
  const double est = std::max(estimated_rows, 1.0);
  const double act = std::max(static_cast<double>(actual_rows), 1.0);
  return std::max(est / act, act / est);
}

std::string AnalyzeReport(const AnalyzeResult& analyze) {
  std::string out;
  char line[256];
  snprintf(line, sizeof(line), "%-40s %12s %12s %8s %8s %10s\n", "operator",
           "est rows", "act rows", "loops", "q-err", "ms");
  out += line;
  double worst_q = 1.0;
  for (const PlanActuals& a : analyze.operators) {
    std::string label(static_cast<size_t>(2 * a.depth), ' ');
    label += PlanKindName(a.node->kind);
    if (a.node->IsScan() || a.node->kind == PlanKind::kIndexNestLoop) {
      label += " R" + std::to_string(a.node->rel);
    }
    label += " " + a.node->rels.ToString();
    const double q = QError(a.node->rows, a.actual_rows);
    worst_q = std::max(worst_q, q);
    snprintf(line, sizeof(line), "%-40s %12.1f %12lld %8lld %8.2f %10.3f\n",
             label.c_str(), a.node->rows,
             static_cast<long long>(a.actual_rows),
             static_cast<long long>(a.loops), q, a.seconds * 1e3);
    out += line;
  }
  snprintf(line, sizeof(line), "worst operator q-error: %.2f\n", worst_q);
  out += line;
  return out;
}

ResultSet Executor::ExecuteReference() const {
  ResultSet current = Scan(0, /*index_order=*/false);
  RelSet covered = RelSet::Single(0);
  const RelSet all = graph_->AllRelations();
  while (covered != all) {
    // Any uncovered relation adjacent to the covered set.
    const RelSet frontier = graph_->Neighbors(covered);
    SDP_CHECK(!frontier.Empty());
    const int next = frontier.Lowest();
    ResultSet scan = Scan(next, /*index_order=*/false);
    current = HashJoin(current, scan,
                       graph_->ConnectingEdges(covered, RelSet::Single(next)));
    covered = covered.With(next);
  }
  return current;
}

}  // namespace sdp
