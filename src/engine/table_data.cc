#include "engine/table_data.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "stats/column_stats.h"

namespace sdp {

std::vector<int64_t> TableData::IndexLookup(int64_t key) const {
  std::vector<int64_t> rows;
  auto lo = std::lower_bound(
      index.begin(), index.end(), std::make_pair(key, INT64_MIN));
  for (auto it = lo; it != index.end() && it->first == key; ++it) {
    rows.push_back(it->second);
  }
  return rows;
}

namespace {

int64_t DrawValue(const Column& column, Rng* rng) {
  const auto domain = static_cast<int64_t>(column.domain_size);
  if (column.distribution == DataDistribution::kUniform) {
    return rng->NextInRange(0, domain - 1);
  }
  // Truncated exponential with ~99.9% of mass inside the domain, matching
  // the analytic model in stats/column_stats.cc.
  const double lambda = 6.9 / static_cast<double>(domain);
  const double v = rng->NextExponential(lambda);
  return std::min<int64_t>(domain - 1, static_cast<int64_t>(v));
}

}  // namespace

Database Database::Generate(const Catalog& catalog, uint64_t seed,
                            uint64_t row_limit) {
  Database db;
  db.catalog_ = &catalog;
  db.tables_.resize(catalog.num_tables());
  Rng master(seed);
  for (int t = 0; t < catalog.num_tables(); ++t) {
    Rng rng = master.Fork();
    const Table& meta = catalog.table(t);
    const uint64_t rows = row_limit == 0
                              ? meta.row_count
                              : std::min(meta.row_count, row_limit);
    TableData& data = db.tables_[t];
    data.columns.resize(meta.columns.size());
    for (size_t c = 0; c < meta.columns.size(); ++c) {
      data.columns[c].reserve(rows);
      for (uint64_t r = 0; r < rows; ++r) {
        data.columns[c].push_back(DrawValue(meta.columns[c], &rng));
      }
    }
    if (meta.indexed_column >= 0) {
      const auto& keys = data.columns[meta.indexed_column];
      data.index.reserve(keys.size());
      for (size_t r = 0; r < keys.size(); ++r) {
        data.index.emplace_back(keys[r], static_cast<int64_t>(r));
      }
      std::sort(data.index.begin(), data.index.end());
    }
  }
  return db;
}

StatsCatalog Database::Analyze(int histogram_buckets) const {
  StatsCatalog stats;
  stats.Resize(*catalog_);
  for (int t = 0; t < catalog_->num_tables(); ++t) {
    for (size_t c = 0; c < tables_[t].columns.size(); ++c) {
      stats.Set(t, static_cast<int>(c),
                ComputeColumnStats(tables_[t].columns[c], histogram_buckets));
    }
  }
  return stats;
}

}  // namespace sdp
