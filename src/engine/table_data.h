#ifndef SDPOPT_ENGINE_TABLE_DATA_H_
#define SDPOPT_ENGINE_TABLE_DATA_H_

#include <stdint.h>

#include <vector>

#include "catalog/catalog.h"
#include "stats/column_stats.h"

namespace sdp {

// Materialized contents of one table: column-major int64 values (every
// synthetic column is an integer drawn from [0, domain)), plus a sorted
// index over the table's indexed column.
struct TableData {
  // columns[c][row]
  std::vector<std::vector<int64_t>> columns;
  // (value, row) pairs sorted by value, for the indexed column; empty when
  // the table has no index.
  std::vector<std::pair<int64_t, int64_t>> index;

  int64_t num_rows() const {
    return columns.empty() ? 0 : static_cast<int64_t>(columns[0].size());
  }

  // Rows whose indexed-column value equals `key` (via binary search).
  std::vector<int64_t> IndexLookup(int64_t key) const;
};

// All materialized tables of a catalog.
class Database {
 public:
  // Generates data for every table per its catalog distributions.
  // `row_limit` caps per-table row counts (0 = no cap) so examples can run
  // the paper's schema at laptop-interactive sizes; statistics computed by
  // Analyze() see the capped data, keeping the optimizer consistent.
  static Database Generate(const Catalog& catalog, uint64_t seed,
                           uint64_t row_limit = 0);

  const Catalog& catalog() const { return *catalog_; }
  const TableData& table(int id) const { return tables_.at(id); }

  // Computes exact per-column statistics from the materialized data --
  // the engine-level equivalent of PostgreSQL's ANALYZE.
  StatsCatalog Analyze(int histogram_buckets = 16) const;

 private:
  const Catalog* catalog_ = nullptr;
  std::vector<TableData> tables_;
};

}  // namespace sdp

#endif  // SDPOPT_ENGINE_TABLE_DATA_H_
