#ifndef SDPOPT_SKYLINE_SKYLINE_H_
#define SDPOPT_SKYLINE_SKYLINE_H_

#include <array>
#include <vector>

namespace sdp {

// Skyline (Pareto / maximal-vector) computation over small point sets, all
// attributes minimized.
//
// Dominance follows the standard skyline definition: p dominates q iff
// p[i] <= q[i] for every attribute and p[i] < q[i] for at least one.  Exact
// ties survive together (the paper's formula, read literally, would
// eliminate duplicate points entirely; we use the conventional reading, as
// the original skyline operator paper does).

// Reference O(n^2) implementation over arbitrary dimensionality.  Each
// points[i] must have the same size.  Returns one flag per point: 1 = in
// the skyline.
std::vector<char> SkylineNaive(const std::vector<std::vector<double>>& points);

// Sort-based two-dimensional skyline, O(n log n).
std::vector<char> Skyline2D(const std::vector<std::array<double, 2>>& points);

// Block-nested-loop skyline for d >= 2, the classic BNL algorithm; expected
// near-linear time when the skyline is small (our partitions are).
std::vector<char> SkylineBNL(const std::vector<std::vector<double>>& points);

// k-dominant ("strong") skyline [Chan et al.]: a point is k-dominated if
// some other point is <= in at least k attributes and < in at least one of
// those k.  Smaller (more aggressive) than the ordinary skyline for
// k < dimensionality.  This is the paper's named future-work direction.
std::vector<char> KDominantSkyline(const std::vector<std::vector<double>>& points,
                                   int k);

}  // namespace sdp

#endif  // SDPOPT_SKYLINE_SKYLINE_H_
