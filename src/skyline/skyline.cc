#include "skyline/skyline.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace sdp {

namespace {

// p dominates q: componentwise <= with at least one strict <.
bool Dominates(const std::vector<double>& p, const std::vector<double>& q) {
  bool strict = false;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] > q[i]) return false;
    if (p[i] < q[i]) strict = true;
  }
  return strict;
}

}  // namespace

std::vector<char> SkylineNaive(const std::vector<std::vector<double>>& points) {
  const size_t n = points.size();
  std::vector<char> in_skyline(n, 1);
  for (size_t i = 0; i < n; ++i) {
    SDP_DCHECK(points[i].size() == points[0].size());
    for (size_t j = 0; j < n; ++j) {
      if (i != j && Dominates(points[j], points[i])) {
        in_skyline[i] = 0;
        break;
      }
    }
  }
  return in_skyline;
}

std::vector<char> Skyline2D(const std::vector<std::array<double, 2>>& points) {
  const size_t n = points.size();
  std::vector<char> in_skyline(n, 0);
  if (n == 0) return in_skyline;

  // Sort by (x asc, y asc); sweep keeping the best y seen so far.  A point
  // is dominated iff an earlier point in this order has y <= its y -- with
  // care for exact duplicates, which must co-survive.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (points[a][0] != points[b][0]) return points[a][0] < points[b][0];
    return points[a][1] < points[b][1];
  });

  double best_y = points[order[0]][1];
  double best_x = points[order[0]][0];
  in_skyline[order[0]] = 1;
  for (size_t i = 1; i < n; ++i) {
    const int idx = order[i];
    const double x = points[idx][0];
    const double y = points[idx][1];
    if (y < best_y) {
      in_skyline[idx] = 1;
      best_y = y;
      best_x = x;
    } else if (y == best_y && x == best_x) {
      // Exact duplicate of the current frontier point: ties co-survive.
      in_skyline[idx] = 1;
    }
  }
  return in_skyline;
}

std::vector<char> SkylineBNL(const std::vector<std::vector<double>>& points) {
  const size_t n = points.size();
  std::vector<char> in_skyline(n, 0);
  std::vector<int> window;
  for (size_t i = 0; i < n; ++i) {
    bool dominated = false;
    size_t w = 0;
    while (w < window.size()) {
      const int j = window[w];
      if (Dominates(points[j], points[i])) {
        dominated = true;
        break;
      }
      if (Dominates(points[i], points[j])) {
        // Candidate evicts window member.
        window[w] = window.back();
        window.pop_back();
        continue;
      }
      ++w;
    }
    if (!dominated) window.push_back(static_cast<int>(i));
  }
  // Window members are never re-dominated (dominance is transitive), so the
  // final window *is* the skyline.
  for (int j : window) in_skyline[j] = 1;
  return in_skyline;
}

std::vector<char> KDominantSkyline(
    const std::vector<std::vector<double>>& points, int k) {
  const size_t n = points.size();
  std::vector<char> in_skyline(n, 1);
  if (n == 0) return in_skyline;
  const int d = static_cast<int>(points[0].size());
  SDP_CHECK(k >= 1 && k <= d);
  // p k-dominates q iff p <= q in >= k attributes with at least one strict
  // among them.  Note k-dominance is not transitive, so we must test all
  // pairs (cyclic k-dominance eliminates whole cycles).
  auto k_dominates = [&](const std::vector<double>& p,
                         const std::vector<double>& q) {
    int leq = 0;
    int strict = 0;
    for (int i = 0; i < d; ++i) {
      if (p[i] <= q[i]) {
        ++leq;
        if (p[i] < q[i]) ++strict;
      }
    }
    return leq >= k && strict >= 1;
  };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j && k_dominates(points[j], points[i])) {
        in_skyline[i] = 0;
        break;
      }
    }
  }
  return in_skyline;
}

}  // namespace sdp
