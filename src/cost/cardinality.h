#ifndef SDPOPT_COST_CARDINALITY_H_
#define SDPOPT_COST_CARDINALITY_H_

#include <unordered_map>

#include "common/arena.h"
#include "common/rel_set.h"
#include "cost/cost_model.h"

namespace sdp {

// Set-level join cardinality model with memoization.
//
// The cardinality (and selectivity) of a join-composite relation is a
// function of its relation *set* alone:
//
//   Rows(S) = prod_{r in S} |r|  *  prod_{edges inside S} sel(edge)
//   Sel(S)  = Rows(S) / prod_{r in S} |r|  =  prod_{edges inside S} sel(edge)
//
// which is exactly the [R, S] pair of SDP's feature vector (Section 2.1.3).
// Keeping it plan-independent guarantees every enumeration strategy agrees
// on JCR cardinalities, making cross-algorithm cost ratios meaningful.
//
// One estimator instance belongs to one optimization run; its cache bytes
// are charged to the run's MemoryGauge (it is optimizer working memory).
class CardinalityEstimator {
 public:
  CardinalityEstimator(const JoinGraph& graph, const CostModel& cost,
                       MemoryGauge* gauge);
  ~CardinalityEstimator();

  CardinalityEstimator(const CardinalityEstimator&) = delete;
  CardinalityEstimator& operator=(const CardinalityEstimator&) = delete;

  // Estimated output rows of the (connected) relation set.
  double Rows(RelSet s);

  // Product of edge selectivities inside `s` (the paper's S feature).
  double Selectivity(RelSet s);

  size_t cache_entries() const { return cache_.size(); }

 private:
  struct Entry {
    double rows;
    double sel;
  };
  const Entry& Lookup(RelSet s);

  const JoinGraph* graph_;
  const CostModel* cost_;
  MemoryGauge* gauge_;
  std::unordered_map<uint64_t, Entry> cache_;
  size_t charged_bytes_ = 0;
};

}  // namespace sdp

#endif  // SDPOPT_COST_CARDINALITY_H_
