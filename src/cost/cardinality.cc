#include "cost/cardinality.h"

#include <algorithm>

#include "common/check.h"

namespace sdp {

namespace {
// Approximate heap footprint of one cache slot (key + value + bucket link).
constexpr size_t kEntryBytes = sizeof(uint64_t) + sizeof(double) * 2 + 16;
}  // namespace

CardinalityEstimator::CardinalityEstimator(const JoinGraph& graph,
                                           const CostModel& cost,
                                           MemoryGauge* gauge)
    : graph_(&graph), cost_(&cost), gauge_(gauge) {}

CardinalityEstimator::~CardinalityEstimator() {
  if (gauge_ != nullptr) gauge_->Release(charged_bytes_);
}

const CardinalityEstimator::Entry& CardinalityEstimator::Lookup(RelSet s) {
  SDP_DCHECK(!s.Empty());
  auto it = cache_.find(s.bits());
  if (it != cache_.end()) return it->second;

  Entry e;
  e.sel = 1.0;
  for (int edge : graph_->InternalEdges(s)) {
    e.sel *= cost_->EdgeSelectivity(edge);
  }
  double base_product = 1.0;
  s.ForEach([&](int rel) { base_product *= cost_->ScanOutputRows(rel); });
  // At least one row: downstream per-row costs stay meaningful and the
  // feature vector stays strictly positive for the skyline.
  e.rows = std::max(1.0, base_product * e.sel);

  auto [pos, inserted] = cache_.emplace(s.bits(), e);
  SDP_DCHECK(inserted);
  if (gauge_ != nullptr) {
    gauge_->Charge(kEntryBytes);
    charged_bytes_ += kEntryBytes;
  }
  return pos->second;
}

double CardinalityEstimator::Rows(RelSet s) { return Lookup(s).rows; }

double CardinalityEstimator::Selectivity(RelSet s) { return Lookup(s).sel; }

}  // namespace sdp
