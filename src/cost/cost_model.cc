#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sdp {

CostModel::CostModel(const Catalog& catalog, const StatsCatalog& stats,
                     const JoinGraph& graph, CostParams params,
                     std::vector<FilterPredicate> filters)
    : catalog_(&catalog),
      stats_(&stats),
      graph_(&graph),
      params_(params),
      filters_(std::move(filters)) {}

double CostModel::BaseRows(int rel) const {
  return static_cast<double>(catalog_->table(graph_->table_id(rel)).row_count);
}

double CostModel::BasePages(int rel) const {
  const Table& t = catalog_->table(graph_->table_id(rel));
  return std::max(
      1.0, std::ceil(static_cast<double>(t.row_count) * t.row_width_bytes() /
                     params_.page_size_bytes));
}

double CostModel::ColumnDistinct(ColumnRef c) const {
  return std::max(1.0,
                  stats_->Get(graph_->table_id(c.rel), c.col).num_distinct);
}

bool CostModel::HasIndexOn(ColumnRef c) const {
  return catalog_->table(graph_->table_id(c.rel)).indexed_column == c.col;
}

int CostModel::IndexedColumn(int rel) const {
  return catalog_->table(graph_->table_id(rel)).indexed_column;
}

double CostModel::EdgeSelectivity(int edge) const {
  const JoinEdge& e = graph_->edges().at(edge);
  const double ndv = std::max(ColumnDistinct(e.left), ColumnDistinct(e.right));
  return 1.0 / ndv;
}

double CostModel::FilterSelectivity(const FilterPredicate& filter) const {
  const ColumnStats& s =
      stats_->Get(graph_->table_id(filter.column.rel), filter.column.col);
  double sel;
  const double v = static_cast<double>(filter.value);
  switch (filter.op) {
    case CompareOp::kEq:
      sel = 1.0 / std::max(1.0, s.num_distinct);
      break;
    case CompareOp::kLt:
    case CompareOp::kLe:
      sel = s.histogram.FractionBelow(v);
      break;
    case CompareOp::kGt:
    case CompareOp::kGe:
      sel = 1.0 - s.histogram.FractionBelow(v);
      break;
    default:
      sel = 1.0;
  }
  return std::min(1.0, std::max(sel, 1e-9));
}

double CostModel::ScanOutputRows(int rel) const {
  double rows = BaseRows(rel);
  for (const FilterPredicate& f : filters_) {
    if (f.column.rel == rel) rows *= FilterSelectivity(f);
  }
  return std::max(1.0, rows);
}

int CostModel::NumFiltersOn(int rel) const {
  int n = 0;
  for (const FilterPredicate& f : filters_) {
    if (f.column.rel == rel) ++n;
  }
  return n;
}

double CostModel::SeqScanCost(int rel) const {
  // The whole relation is read; filters cost CPU per input row and shrink
  // only the output.
  return BasePages(rel) * params_.seq_page_cost +
         BaseRows(rel) * params_.cpu_tuple_cost +
         BaseRows(rel) * NumFiltersOn(rel) * params_.cpu_operator_cost;
}

double CostModel::IndexScanCost(int rel) const {
  // Ordered full retrieval through the index: random-ish page access plus
  // per-tuple index overhead.  Deliberately costlier than a sequential scan
  // so that ordered scans are chosen only when the order pays off.
  const double rows = BaseRows(rel);
  return BasePages(rel) * params_.random_page_cost * 0.75 +
         rows * (params_.cpu_index_tuple_cost + params_.cpu_tuple_cost) +
         rows * NumFiltersOn(rel) * params_.cpu_operator_cost;
}

double CostModel::RowWidth(RelSet rels) const {
  double width = 0;
  rels.ForEach([&](int rel) {
    width += catalog_->table(graph_->table_id(rel)).row_width_bytes();
  });
  return width;
}

double CostModel::NestLoopCost(const JoinCostInput& in) const {
  // Inner side is materialized once, then rescanned per outer row -- from
  // memory when it fits in work_mem, from disk otherwise.
  const double inner_bytes = in.inner_rows * in.inner_width;
  double rescan = in.inner_rows * params_.cpu_operator_cost *
                  static_cast<double>(in.num_quals);
  if (inner_bytes > params_.work_mem_bytes) {
    rescan += std::ceil(inner_bytes / params_.page_size_bytes) *
              params_.seq_page_cost;
  }
  return in.outer_cost + in.inner_cost + in.outer_rows * rescan +
         in.out_rows * params_.cpu_tuple_cost;
}

double CostModel::IndexNestLoopCost(double outer_cost, double outer_rows,
                                    int inner_rel, int edge,
                                    double out_rows) const {
  const double inner_rows = BaseRows(inner_rel);
  // Filters on the inner relation shrink the matches each probe returns.
  const double matches_per_probe = std::max(
      ScanOutputRows(inner_rel) * EdgeSelectivity(edge), 1e-9);
  const double per_probe =
      params_.random_page_cost +
      std::log2(std::max(inner_rows, 2.0)) * params_.cpu_operator_cost +
      matches_per_probe *
          (params_.cpu_index_tuple_cost + params_.cpu_tuple_cost);
  return outer_cost + outer_rows * per_probe +
         out_rows * params_.cpu_tuple_cost;
}

double CostModel::HashJoinCost(const JoinCostInput& in) const {
  const double build =
      in.inner_rows * params_.cpu_operator_cost * params_.hash_build_factor;
  const double probe = in.outer_rows * params_.cpu_operator_cost *
                       static_cast<double>(in.num_quals);
  double spill = 0;
  const double inner_bytes = in.inner_rows * in.inner_width;
  if (inner_bytes > params_.work_mem_bytes) {
    // Batched (Grace) hash join: both sides are written out and re-read.
    const double pages =
        std::ceil((inner_bytes + in.outer_rows * in.outer_width) /
                  params_.page_size_bytes);
    spill = 2.0 * pages * params_.seq_page_cost;
  }
  return in.outer_cost + in.inner_cost + build + probe + spill +
         in.out_rows * params_.cpu_tuple_cost;
}

double CostModel::MergeJoinCost(const JoinCostInput& in) const {
  return in.outer_cost + in.inner_cost +
         (in.outer_rows + in.inner_rows) * params_.cpu_operator_cost +
         in.out_rows * params_.cpu_tuple_cost;
}

double CostModel::SortCost(double rows, double width_bytes) const {
  if (rows < 2) return params_.cpu_operator_cost;
  double cost = 2.0 * rows * std::log2(rows) * params_.cpu_operator_cost +
                rows * params_.cpu_operator_cost;
  const double bytes = rows * width_bytes;
  if (bytes > params_.work_mem_bytes) {
    // External merge: one write+read of the whole input per merge pass.
    const double runs = bytes / params_.work_mem_bytes;
    const double passes =
        std::max(1.0, std::ceil(std::log(runs) / std::log(params_.merge_fanin)));
    cost += 2.0 * passes * std::ceil(bytes / params_.page_size_bytes) *
            params_.seq_page_cost;
  }
  return cost;
}

}  // namespace sdp
