#ifndef SDPOPT_COST_COST_MODEL_H_
#define SDPOPT_COST_COST_MODEL_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/rel_set.h"
#include "query/join_graph.h"
#include "stats/column_stats.h"

namespace sdp {

// Cost-model constants, PostgreSQL-flavoured: costs are expressed in
// abstract units where one sequential page fetch costs 1.0.
struct CostParams {
  double seq_page_cost = 1.0;
  double random_page_cost = 4.0;
  double cpu_tuple_cost = 0.01;
  double cpu_index_tuple_cost = 0.005;
  double cpu_operator_cost = 0.0025;
  double page_size_bytes = 8192;
  // Multiplier on per-row hash-table build work relative to
  // cpu_operator_cost.
  double hash_build_factor = 1.5;
  // Working memory per operator (PostgreSQL work_mem).  Hash joins whose
  // build side exceeds it batch to disk; sorts go external; materialized
  // nested-loop inners are re-read from disk.  These spill penalties are
  // what make join-order mistakes expensive on real engines.
  double work_mem_bytes = 1024.0 * 1024.0;
  // External merge sort fan-in per pass.
  double merge_fanin = 16;
};

// Inputs common to the binary-join costing entry points.  `out_rows` is the
// set-level cardinality of the joined relation set (plan-independent, from
// the CardinalityEstimator), so every physical alternative for the same JCR
// agrees on its output size.
struct JoinCostInput {
  double outer_cost = 0;
  double outer_rows = 0;
  double outer_width = 0;  // Bytes per outer tuple.
  double inner_cost = 0;
  double inner_rows = 0;
  double inner_width = 0;  // Bytes per inner tuple.
  double out_rows = 0;
  // Number of equijoin predicates evaluated by the join (>= 1).
  int num_quals = 1;
};

// The optimizer's cost oracle for one query: scan, join and sort costing
// plus the selectivity primitives the cardinality model builds on.
//
// Stateless with respect to optimization (all caching lives in
// CardinalityEstimator), so a single instance can be shared by every
// algorithm run on the same query -- which is exactly what the experiment
// harness does to make plan-cost ratios comparable.
class CostModel {
 public:
  CostModel(const Catalog& catalog, const StatsCatalog& stats,
            const JoinGraph& graph, CostParams params = CostParams(),
            std::vector<FilterPredicate> filters = {});

  const CostParams& params() const { return params_; }
  const JoinGraph& graph() const { return *graph_; }

  // --- Base relation properties -------------------------------------------
  double BaseRows(int rel) const;
  double BasePages(int rel) const;
  // Distinct count of a column (by graph position).
  double ColumnDistinct(ColumnRef c) const;
  // True when `col` is the indexed column of relation `rel`.
  bool HasIndexOn(ColumnRef c) const;
  // The indexed column of the relation at graph position `rel` (-1 if none).
  int IndexedColumn(int rel) const;

  // --- Selectivity ---------------------------------------------------------
  // Equijoin selectivity of an edge: 1 / max(ndv(left), ndv(right)), the
  // classic System-R / PostgreSQL eqjoinsel.
  double EdgeSelectivity(int edge) const;

  // Restriction selectivity of one filter: 1/ndv for equality, histogram
  // interpolation for ranges (PostgreSQL's eqsel / scalarltsel analogues).
  double FilterSelectivity(const FilterPredicate& filter) const;

  // Rows a scan of `rel` emits after applying the query's filters on it.
  double ScanOutputRows(int rel) const;
  // Number of query filters restricting `rel`.
  int NumFiltersOn(int rel) const;

  // --- Scans ---------------------------------------------------------------
  double SeqScanCost(int rel) const;
  // Full relation retrieval in index order (ordered output, costlier).
  double IndexScanCost(int rel) const;

  // --- Joins ----------------------------------------------------------------
  // Nested loop with a materialized (rescanned in memory) inner side.
  double NestLoopCost(const JoinCostInput& in) const;
  // Index nested loop: inner is base relation `inner_rel`, probed through
  // its index along `edge`.  No inner_cost: probes pay per-lookup.
  double IndexNestLoopCost(double outer_cost, double outer_rows,
                           int inner_rel, int edge, double out_rows) const;
  // Hash join; inner side builds the table.
  double HashJoinCost(const JoinCostInput& in) const;
  // Merge join over inputs already sorted on the join key.
  double MergeJoinCost(const JoinCostInput& in) const;

  // Width in bytes of one tuple of the joined relation set (sum of the
  // member base-relation widths: intermediates carry all columns).
  double RowWidth(RelSet rels) const;

  // --- Enforcers -------------------------------------------------------------
  // Incremental cost of sorting `rows` tuples of `width_bytes` each (added
  // to the input cost); includes external-merge I/O beyond work_mem.
  double SortCost(double rows, double width_bytes) const;

 private:
  const Catalog* catalog_;
  const StatsCatalog* stats_;
  const JoinGraph* graph_;
  CostParams params_;
  std::vector<FilterPredicate> filters_;
};

}  // namespace sdp

#endif  // SDPOPT_COST_COST_MODEL_H_
