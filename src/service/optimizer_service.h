#ifndef SDPOPT_SERVICE_OPTIMIZER_SERVICE_H_
#define SDPOPT_SERVICE_OPTIMIZER_SERVICE_H_

#include <stdint.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/budget.h"
#include "common/thread_pool.h"
#include "harness/experiment.h"
#include "obs/dtrace.h"
#include "obs/slo.h"
#include "optimizer/fallback.h"
#include "optimizer/optimizer_types.h"
#include "query/join_graph.h"
#include "service/plan_cache.h"
#include "service/service_metrics.h"
#include "stats/column_stats.h"

namespace sdp {

class Database;  // engine/table_data.h; built lazily for quality sampling.

struct ServiceConfig {
  // Worker threads optimizing requests concurrently.
  int num_threads = 4;

  // Canonical plan cache fronting the optimizers.
  bool cache_enabled = true;
  int cache_stripes = 16;

  // Admission control: cap on the summed memory budgets of in-flight
  // requests (0 = uncapped).  A request is rejected outright when its own
  // budget exceeds the cap; otherwise it waits at dispatch until enough
  // in-flight budget is released.  A request declaring no budget (0 =
  // unlimited) is accounted as consuming the whole cap, serializing it
  // against everything else.
  size_t global_memory_cap_bytes = 0;

  // Submit() rejects immediately once this many requests are queued
  // (0 = unbounded).
  int max_queue_depth = 0;

  // Included in every cache key.  Bump (via BumpStatsEpoch) whenever the
  // catalog or statistics change so stale plans cannot be served.
  uint64_t stats_epoch = 0;

  // Structured trace sink shared by the whole service (see trace/trace.h).
  // Receives plan-cache events and is propagated into each request's
  // OptimizerOptions when the request carries no tracer of its own, so
  // workers emit full search traces.  Must be thread-safe (TraceCollector
  // is) and outlive the service.  Does not influence cache keys or plans.
  Tracer* tracer = nullptr;

  // Per-rung circuit breaker tuning (see RungBreaker): `threshold`
  // consecutive failures open a rung's breaker, which then skips
  // `cooldown` governed requests before half-opening a probe.
  int breaker_threshold = 5;
  int breaker_cooldown = 16;

  // Upper bound on a request's OptimizerOptions::opt_threads; requests
  // asking for more are clamped, not rejected.  The per-request enumeration
  // pool is spawned by the optimizer drivers (never shared with the
  // service's request pool), so total thread pressure is bounded by
  // num_threads * max_opt_threads.  1 = intra-query parallelism off.
  int max_opt_threads = 1;

  // Always-on flight recorder (see obs/flight_recorder.h): constructing a
  // service with this set enables the global recorder, and every request
  // records its lifecycle/cache/ladder events.  Costs one predicted branch
  // per instrumentation point when off.
  bool flight_recorder = true;
  // Directory for automatic crash dumps (flight-req<id>-<STATUS>.jsonl),
  // written whenever a request ends in a non-OK OptStatus, a rung circuit
  // breaker opens, or a fault-injection site fires.  Empty = no dump files
  // (the /flightrecorderz endpoint still serves snapshots on demand).
  std::string flight_dump_dir;

  // SLO watchdog (obs/slo.h): per-rung latency objectives plus the
  // EXPLAIN-ANALYZE plan-quality objective, tracked with multi-window
  // burn rates.  When an objective burns, the offending request's
  // flight-recorder slice is dumped once to flight_dump_dir
  // (flight-req<id>-SLO_<objective>.jsonl).  Disabled unless
  // slo.enabled().
  SloConfig slo;
  // Plan-quality sampling cadence: every Nth freshly computed feasible
  // plan (0 = never) is executed with EXPLAIN ANALYZE against a lazily
  // generated synthetic database, and the root-cardinality Q-error feeds
  // the SLO quality objective.  A plan whose cost or cardinality is not
  // finite samples as an instant violation without executing.
  int analyze_sample_every = 0;
  uint64_t analyze_seed = 17;        // Data generator seed.
  uint64_t analyze_row_limit = 2000; // Rows per table cap (keeps it cheap).
};

// One optimization request: a bound query plus the algorithm and resource
// limits to run it under.  The query is held by value -- each request is
// self-contained and independent of caller lifetime.
struct ServiceRequest {
  Query query;
  AlgorithmSpec spec = AlgorithmSpec::SDP();
  OptimizerOptions options;

  // Distributed-trace context the request arrived under (obs/dtrace.h);
  // the worker re-installs it so every flight-recorder event the request
  // records -- on whichever thread -- carries the same trace id.  Default
  // (inactive) = context-free, exactly the old behavior.
  TraceContext trace;

  // --- resource governance (all optional) ---
  // A request is *governed* when any budget limit is set, fallback is
  // enabled, or a cancel token is attached.  Governed requests run under a
  // ResourceBudget spanning queueing + optimization and (when
  // fallback_enabled) the DP->IDP->SDP->greedy degradation ladder;
  // ungoverned requests take the legacy single-algorithm path untouched.
  ResourceBudget::Limits budget;
  // Escalate one rung at a time on budget trips instead of failing.
  bool fallback_enabled = false;
  // Shallowest rung the ladder may start on: the effective start is the
  // deeper of this and the algorithm spec's natural rung.  The fleet's
  // poison-query quarantine pins degraded requests to kGreedy with it,
  // skipping the expensive rungs a poisoned key keeps crashing.
  FallbackRung min_rung = FallbackRung::kDP;
  // Deepest rung the ladder may escalate to.
  FallbackRung max_rung = FallbackRung::kGreedy;
  // Caller-owned cooperative cancellation; must outlive the request.
  CancelToken* cancel = nullptr;

  bool governed() const {
    return fallback_enabled || cancel != nullptr ||
           budget.deadline_seconds > 0 || budget.memory_budget_bytes > 0 ||
           budget.max_plans_costed > 0 || budget.cancel_at_checkpoint > 0;
  }
};

struct ServiceResult {
  OptimizeResult result;  // result.status carries the typed outcome.
  bool cache_hit = false;
  bool rejected = false;  // Admission control turned the request away.
  // Load-shed rejections carry a deterministic jittered backoff hint so
  // synchronized retries from rejected callers do not re-stampede the
  // queue (0 = no hint).
  int retry_after_ms = 0;
  std::string error;      // Non-empty on parse/validation failure.
  // Full plan-cache key (canonical form + algo/options/governance/epoch
  // tags) the request was served under; empty when caching is disabled or
  // the request failed before key construction.  The fleet tier uses it to
  // export freshly computed entries for cross-replica broadcast.
  std::string cache_key;

  bool ok() const { return error.empty() && !rejected; }
};

// Embeddable multi-threaded optimizer service.
//
// Requests run on a fixed worker pool with full per-request isolation:
// every optimization owns a private Memo, PlanPool, CardinalityEstimator
// and MemoryGauge (created inside the optimizer entry points), so results
// -- costs, counters, chosen plans -- are bit-identical to a serial run of
// the same workload regardless of thread count or arrival order.  A
// canonical plan cache (see PlanCache) short-circuits repeated
// structurally-identical instances; cached plans are deep-cloned per
// request, never shared.
//
// The catalog and stats must outlive the service.  Destruction drains all
// accepted requests (every future is fulfilled) before returning.
class OptimizerService {
 public:
  OptimizerService(const Catalog& catalog, const StatsCatalog& stats,
                   ServiceConfig config = {});
  ~OptimizerService();

  OptimizerService(const OptimizerService&) = delete;
  OptimizerService& operator=(const OptimizerService&) = delete;

  // Enqueues a bound query.  The future is fulfilled by a worker (or
  // immediately, when the queue is over max_queue_depth).
  std::future<ServiceResult> Submit(ServiceRequest request);

  // Enqueues SQL text; parsing and binding happen on the worker.
  std::future<ServiceResult> SubmitSql(std::string sql,
                                       AlgorithmSpec spec = AlgorithmSpec::SDP(),
                                       OptimizerOptions options = {});
  // SQL form carrying the full request (governance fields included); the
  // request's `query` member is ignored and replaced by the parsed SQL.
  std::future<ServiceResult> SubmitSql(std::string sql,
                                       ServiceRequest request);

  // Convenience: Submit + wait.  Must not be called from a worker task.
  ServiceResult OptimizeSync(ServiceRequest request);

  const ServiceMetrics& metrics() const { return metrics_; }
  // Non-const handle for fleet replicas that stamp extra samples (the
  // exposition itself is read-only and thread-safe).
  ServiceMetrics& mutable_metrics() { return metrics_; }
  PlanCacheStats cache_stats() const { return cache_.Stats(); }

  // --- fleet plan-cache tier (see src/fleet) ---
  // Snapshot every completed cache entry in a self-contained, process-
  // independent form.
  std::vector<PlanCacheExportEntry> ExportPlanCache() const {
    return cache_.Export();
  }
  // Exports the single completed entry under `full_key` (as recorded in
  // ServiceResult::cache_key); false when absent or still computing.
  bool ExportPlanCacheEntry(const std::string& full_key,
                            PlanCacheExportEntry* out) const {
    return cache_.ExportEntry(full_key, out);
  }
  // Installs a snapshot/broadcast entry (first writer wins) and refreshes
  // the residency gauges.  Returns false on malformed images or losing
  // the insert race; both are benign for warm-up paths.
  bool InstallPlanCacheEntry(const PlanCacheExportEntry& entry);

  // Invalidates every cached plan and stamps subsequent cache keys with a
  // new epoch.  Call after the underlying catalog/stats change.
  void BumpStatsEpoch();
  uint64_t stats_epoch() const {
    return stats_epoch_.load(std::memory_order_relaxed);
  }

  const ServiceConfig& config() const { return config_; }

  // Live circuit-breaker states, for the /statusz endpoint.
  const RungBreakerSet& breakers() const { return breakers_; }
  // The SLO watchdog, or null when no objective is configured.
  const SloTracker* slo() const { return slo_.get(); }
  // Memory budget bytes currently admitted against the global cap.
  size_t admitted_bytes() const {
    std::lock_guard<std::mutex> lock(admission_mu_);
    return admitted_bytes_;
  }

 private:
  struct PendingRequest;

  std::future<ServiceResult> Enqueue(std::shared_ptr<PendingRequest> pending);
  void RunOne(std::shared_ptr<PendingRequest> pending);
  // Blocks until the request's budget fits under the global cap, at most
  // `max_wait_seconds` (<= 0 = forever).  Returns false when the request
  // can never fit (reject) or the wait timed out (*timed_out is set).
  bool AdmitBudget(size_t budget_bytes, double max_wait_seconds,
                   bool* timed_out);
  void ReleaseBudget(size_t budget_bytes);
  // Deterministic jittered backoff hint for a load-shed rejection.
  int RetryAfterHintMs();
  // Writes the flight-recorder crash dump for a finished request when the
  // recorder is on, a dump dir is configured, and something went wrong
  // (non-OK status, or dump signals -- breaker opens / fault fires --
  // accumulated while the request ran).
  void MaybeDumpFlightRecorder(uint64_t request_id, OptStatusCode code,
                               uint64_t signals_before);
  // EXPLAIN ANALYZE one freshly computed plan and return its root
  // cardinality Q-error (infinity for non-finite plan cost/rows).
  double MeasurePlanQuality(const ServiceRequest& request,
                            const OptimizeResult& result);
  // Records the kSloBurn event and writes the offending request's
  // correlated flight-recorder dump (once per burn episode, by
  // construction of SloTracker's latch).
  void HandleSloBurn(const SloTracker::Burn& burn);

  const Catalog& catalog_;
  const StatsCatalog& stats_;
  ServiceConfig config_;
  std::atomic<uint64_t> stats_epoch_;

  ServiceMetrics metrics_;
  PlanCache cache_;
  RungBreakerSet breakers_;
  std::atomic<uint64_t> next_request_id_{1};

  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  size_t admitted_bytes_ = 0;

  // SLO watchdog state (null when disabled) and the lazily generated
  // synthetic database backing EXPLAIN ANALYZE quality samples.
  std::unique_ptr<SloTracker> slo_;
  std::mutex analyze_mu_;
  std::unique_ptr<Database> analyze_db_;
  std::atomic<uint64_t> analyze_counter_{0};

  // Last member: destroyed first, so in-flight tasks finish while every
  // other field is still alive.
  ThreadPool pool_;
};

}  // namespace sdp

#endif  // SDPOPT_SERVICE_OPTIMIZER_SERVICE_H_
