#ifndef SDPOPT_SERVICE_SERVICE_METRICS_H_
#define SDPOPT_SERVICE_SERVICE_METRICS_H_

#include <stdint.h>

#include <atomic>
#include <string>
#include <vector>

namespace sdp {

// Thread-safe log-bucketed latency recorder (power-of-two microsecond
// buckets).  Bucket 0 holds [0, 2)us; bucket b >= 1 holds [2^b, 2^{b+1})us.
// Quantiles interpolate linearly within the matched bucket, and the exact
// sample sum and count are kept alongside, so the histogram exports
// faithfully to Prometheus.  Recording stays wait-free.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;  // 1us .. ~2^39us (~6 days).

  void Record(double seconds);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  // Exact sum of recorded latencies in seconds (microsecond resolution).
  double SumSeconds() const;
  // Mean latency in milliseconds.
  double MeanMs() const;
  // Latency in milliseconds at quantile q in [0,1], interpolated within
  // the log bucket containing the q-th sample.  Returns 0 when empty.
  double QuantileMs(double q) const;

  // One entry per bucket of the cumulative histogram: the bucket's upper
  // bound in seconds (the Prometheus `le` label) and the number of samples
  // at or below it.  The last entry is the +Inf bucket (le = infinity,
  // cumulative == count()).
  struct CumulativeBucket {
    double le_seconds = 0;
    uint64_t cumulative = 0;
  };
  std::vector<CumulativeBucket> CumulativeBuckets() const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
};

// Counter registry for one OptimizerService.  All members are safe to
// update from any worker; readers see monotonic (if momentarily torn
// across counters) values.  `Dump()` renders a flat "name value" text
// block for logs and the CLI.
class ServiceMetrics {
 public:
  ServiceMetrics() = default;
  ServiceMetrics(const ServiceMetrics&) = delete;
  ServiceMetrics& operator=(const ServiceMetrics&) = delete;

  std::atomic<uint64_t> requests_submitted{0};
  std::atomic<uint64_t> requests_completed{0};
  std::atomic<uint64_t> requests_rejected{0};   // Admission control.
  std::atomic<uint64_t> requests_infeasible{0};  // Budget-exceeded runs.
  std::atomic<uint64_t> parse_errors{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  // Summed search effort of all *computed* (non-cache-hit) runs.
  std::atomic<uint64_t> plans_costed{0};
  std::atomic<uint64_t> jcrs_created{0};
  // Summed per-request peak working-set bytes.
  std::atomic<uint64_t> bytes_charged{0};
  // Requests that had to wait for admission (global memory cap).
  std::atomic<uint64_t> admission_waits{0};
  // Requests whose admission wait exceeded their deadline.
  std::atomic<uint64_t> admission_timeouts{0};
  // --- resource governance (degradation ladder) ---
  // Governed requests that escalated past their starting rung.
  std::atomic<uint64_t> requests_degraded{0};
  // Total ladder attempts, including breaker skips.
  std::atomic<uint64_t> degrade_attempts{0};
  // Rungs skipped because their circuit breaker was open.
  std::atomic<uint64_t> breaker_skips{0};
  // Winning rung of each governed request that produced a plan.
  std::atomic<uint64_t> rung_dp{0};
  std::atomic<uint64_t> rung_idp{0};
  std::atomic<uint64_t> rung_sdp{0};
  std::atomic<uint64_t> rung_greedy{0};
  // Greedy rung resolved via Greedy Operator Ordering (--enumerator=goo).
  std::atomic<uint64_t> rung_goo{0};
  // Terminal typed failures handed back to callers.
  std::atomic<uint64_t> status_deadline_exceeded{0};
  std::atomic<uint64_t> status_memory_exceeded{0};
  std::atomic<uint64_t> status_cancelled{0};
  std::atomic<uint64_t> status_internal{0};
  // Coalesced waiters that received the owner's typed failure.
  std::atomic<uint64_t> cache_failures_propagated{0};
  // Load-shed rejections that carried a retry-after hint.
  std::atomic<uint64_t> shed_with_retry_hint{0};
  // --- intra-query parallel enumeration ---
  // DP levels that ran sharded across opt_threads workers.
  std::atomic<uint64_t> parallel_levels{0};
  // Summed parallel scan / deterministic merge wall time (microseconds;
  // exported to Prometheus as seconds).
  std::atomic<uint64_t> parallel_scan_us{0};
  std::atomic<uint64_t> parallel_merge_us{0};
  // --- flight recorder ---
  // Crash dumps written (non-OK request end, breaker trip, fault fire).
  std::atomic<uint64_t> flight_dumps{0};
  // SLO burn episodes (edge transitions into burning; see obs/slo.h).
  std::atomic<uint64_t> slo_burns{0};
  // Largest single-request optimizer memory high-watermark seen since the
  // last Reset (bytes; CAS-max of OptimizeResult::peak_memory_bytes).
  std::atomic<uint64_t> request_peak_bytes{0};
  // Instantaneous gauges.
  std::atomic<int64_t> queue_depth{0};
  std::atomic<int64_t> inflight{0};
  // Plan-cache residency, refreshed by the service after each fill/clear.
  std::atomic<int64_t> plan_cache_entries{0};
  std::atomic<int64_t> plan_cache_bytes{0};

  LatencyHistogram optimize_latency;  // Per-request optimize wall time.

  std::string Dump() const;
  // Prometheus text exposition (format 0.0.4): one # HELP / # TYPE pair
  // per family, counters suffixed _total, gauges bare, and the latency
  // histogram as cumulative le-labelled buckets plus _sum and _count.
  // A non-empty `replica` stamps every sample of every family with a
  // replica="..." label (histogram buckets merge it with le=...), so a
  // fleet router can aggregate N replicas' expositions into one page
  // without sample-name collisions.  Empty (the default) emits the
  // label-free single-process exposition unchanged.
  std::string PrometheusText(const std::string& replica = "") const;
  void Reset();
};

}  // namespace sdp

#endif  // SDPOPT_SERVICE_SERVICE_METRICS_H_
