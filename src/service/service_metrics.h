#ifndef SDPOPT_SERVICE_SERVICE_METRICS_H_
#define SDPOPT_SERVICE_SERVICE_METRICS_H_

#include <stdint.h>

#include <atomic>
#include <string>

namespace sdp {

// Thread-safe log-bucketed latency recorder (power-of-two microsecond
// buckets).  Percentiles are bucket lower bounds, i.e. accurate to a
// factor of two -- plenty for a service health dump, and wait-free to
// record.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;  // 1us .. ~2^39us (~6 days).

  void Record(double seconds);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  // Mean latency in milliseconds.
  double MeanMs() const;
  // Latency in milliseconds at quantile q in [0,1] (lower bound of the
  // bucket containing the q-th sample).  Returns 0 when empty.
  double QuantileMs(double q) const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
};

// Counter registry for one OptimizerService.  All members are safe to
// update from any worker; readers see monotonic (if momentarily torn
// across counters) values.  `Dump()` renders a flat "name value" text
// block for logs and the CLI.
class ServiceMetrics {
 public:
  ServiceMetrics() = default;
  ServiceMetrics(const ServiceMetrics&) = delete;
  ServiceMetrics& operator=(const ServiceMetrics&) = delete;

  std::atomic<uint64_t> requests_submitted{0};
  std::atomic<uint64_t> requests_completed{0};
  std::atomic<uint64_t> requests_rejected{0};   // Admission control.
  std::atomic<uint64_t> requests_infeasible{0};  // Budget-exceeded runs.
  std::atomic<uint64_t> parse_errors{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  // Summed search effort of all *computed* (non-cache-hit) runs.
  std::atomic<uint64_t> plans_costed{0};
  std::atomic<uint64_t> jcrs_created{0};
  // Summed per-request peak working-set bytes.
  std::atomic<uint64_t> bytes_charged{0};
  // Requests that had to wait for admission (global memory cap).
  std::atomic<uint64_t> admission_waits{0};
  // Instantaneous gauges.
  std::atomic<int64_t> queue_depth{0};
  std::atomic<int64_t> inflight{0};

  LatencyHistogram optimize_latency;  // Per-request optimize wall time.

  std::string Dump() const;
  void Reset();
};

}  // namespace sdp

#endif  // SDPOPT_SERVICE_SERVICE_METRICS_H_
