#include "service/optimizer_service.h"

#include <cstdio>
#include <cstring>
#include <utility>
#include <variant>

#include "cost/cost_model.h"
#include "optimizer/run_helpers.h"
#include "service/plan_fingerprint.h"
#include "sql/parser.h"
#include "trace/trace.h"

namespace sdp {

namespace {

void AppendDoubleBits(std::string* out, double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(double));
  std::memcpy(&bits, &d, sizeof(bits));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  out->append(buf);
}

// Serializes everything about an AlgorithmSpec that can influence the
// chosen plan or its reported cost, so two specs share cache entries only
// when they are behaviorally identical.
std::string AlgorithmCacheTag(const AlgorithmSpec& spec) {
  std::string tag = "name=" + spec.name + ";";
  switch (spec.kind) {
    case AlgorithmSpec::Kind::kDP:
      tag += "dp";
      break;
    case AlgorithmSpec::Kind::kIDP:
    case AlgorithmSpec::Kind::kIDP2:
      tag += spec.kind == AlgorithmSpec::Kind::kIDP ? "idp" : "idp2";
      tag += ":k=" + std::to_string(spec.idp.k);
      tag += ",bf=";
      AppendDoubleBits(&tag, spec.idp.balloon_fraction);
      tag += ",bal=" + std::to_string(spec.idp.balanced ? 1 : 0);
      break;
    case AlgorithmSpec::Kind::kSDP:
      tag += "sdp:part=" + std::to_string(static_cast<int>(spec.sdp.partitioning));
      tag += ",sky=" + std::to_string(static_cast<int>(spec.sdp.skyline));
      tag += ",loc=" + std::to_string(spec.sdp.localized ? 1 : 0);
      tag += ",ord=" + std::to_string(spec.sdp.order_partitions ? 1 : 0);
      tag += ",hub=" + std::to_string(spec.sdp.hub_degree);
      break;
  }
  return tag;
}

std::string OptionsCacheTag(const OptimizerOptions& options) {
  return "budget=" + std::to_string(options.memory_budget_bytes) +
         ",maxplans=" + std::to_string(options.max_plans_costed);
}

}  // namespace

struct OptimizerService::PendingRequest {
  bool from_sql = false;
  std::string sql;
  ServiceRequest request;
  std::promise<ServiceResult> promise;
};

OptimizerService::OptimizerService(const Catalog& catalog,
                                   const StatsCatalog& stats,
                                   ServiceConfig config)
    : catalog_(catalog),
      stats_(stats),
      config_(config),
      stats_epoch_(config.stats_epoch),
      cache_(PlanCacheConfig{config.cache_enabled, config.cache_stripes}),
      pool_(config.num_threads) {}

OptimizerService::~OptimizerService() = default;

std::future<ServiceResult> OptimizerService::Enqueue(
    std::shared_ptr<PendingRequest> pending) {
  std::future<ServiceResult> future = pending->promise.get_future();

  metrics_.requests_submitted.fetch_add(1, std::memory_order_relaxed);
  if (config_.max_queue_depth > 0 &&
      metrics_.queue_depth.load(std::memory_order_relaxed) >=
          config_.max_queue_depth) {
    metrics_.requests_rejected.fetch_add(1, std::memory_order_relaxed);
    ServiceResult rejected;
    rejected.rejected = true;
    rejected.error = "queue full";
    pending->promise.set_value(std::move(rejected));
    return future;
  }

  metrics_.queue_depth.fetch_add(1, std::memory_order_relaxed);
  pool_.Submit([this, pending = std::move(pending)]() mutable {
    RunOne(std::move(pending));
  });
  return future;
}

std::future<ServiceResult> OptimizerService::Submit(ServiceRequest request) {
  auto pending = std::make_shared<PendingRequest>();
  pending->request = std::move(request);
  return Enqueue(std::move(pending));
}

std::future<ServiceResult> OptimizerService::SubmitSql(
    std::string sql, AlgorithmSpec spec, OptimizerOptions options) {
  // The query slot stays an empty graph until the worker parses the SQL.
  auto pending = std::make_shared<PendingRequest>();
  pending->from_sql = true;
  pending->sql = std::move(sql);
  pending->request.spec = std::move(spec);
  pending->request.options = options;
  return Enqueue(std::move(pending));
}

ServiceResult OptimizerService::OptimizeSync(ServiceRequest request) {
  return Submit(std::move(request)).get();
}

bool OptimizerService::AdmitBudget(size_t budget_bytes) {
  if (config_.global_memory_cap_bytes == 0) return true;
  const size_t cap = config_.global_memory_cap_bytes;
  // An unlimited-budget request reserves the whole cap.
  const size_t need = budget_bytes == 0 ? cap : budget_bytes;
  if (need > cap) return false;

  std::unique_lock<std::mutex> lock(admission_mu_);
  if (admitted_bytes_ + need > cap) {
    metrics_.admission_waits.fetch_add(1, std::memory_order_relaxed);
    admission_cv_.wait(lock, [this, need, cap] {
      return admitted_bytes_ + need <= cap;
    });
  }
  admitted_bytes_ += need;
  return true;
}

void OptimizerService::ReleaseBudget(size_t budget_bytes) {
  if (config_.global_memory_cap_bytes == 0) return;
  const size_t cap = config_.global_memory_cap_bytes;
  const size_t need = budget_bytes == 0 ? cap : budget_bytes;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    admitted_bytes_ -= need;
  }
  admission_cv_.notify_all();
}

void OptimizerService::RunOne(std::shared_ptr<PendingRequest> pending) {
  metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
  metrics_.inflight.fetch_add(1, std::memory_order_relaxed);
  const Stopwatch request_watch;

  ServiceResult out;
  ServiceRequest& request = pending->request;

  if (pending->from_sql) {
    const ParseResult parsed = ParseSelect(pending->sql, catalog_);
    if (const auto* error = std::get_if<ParseError>(&parsed)) {
      metrics_.parse_errors.fetch_add(1, std::memory_order_relaxed);
      out.error = "parse error at offset " +
                  std::to_string(error->position) + ": " + error->message;
      metrics_.inflight.fetch_sub(1, std::memory_order_relaxed);
      metrics_.requests_completed.fetch_add(1, std::memory_order_relaxed);
      pending->promise.set_value(std::move(out));
      return;
    }
    request.query = std::get<ParsedQuery>(parsed).query;
  }

  // Per-request isolation starts here: the cost model (and, inside the
  // optimizer entry point, the memo/pool/estimator/gauge) belong to this
  // request alone.
  const CostModel cost(catalog_, stats_, request.query.graph, CostParams(),
                       request.query.filters);

  CanonicalQueryForm form;
  std::string full_key;
  PlanCache::Ticket ticket;
  PlanCache::Outcome outcome = PlanCache::Outcome::kDisabled;
  auto trace_cache = [&](const char* kind) {
    if (config_.tracer == nullptr) return;
    TraceCacheEvent e;
    e.kind = kind;
    e.key = full_key;
    config_.tracer->OnCacheEvent(e);
  };
  // A request without its own tracer inherits the service-wide sink, so
  // worker-side optimizations emit full search traces.
  if (request.options.tracer == nullptr) {
    request.options.tracer = config_.tracer;
  }
  if (config_.cache_enabled) {
    form = CanonicalizeQuery(request.query, cost);
    full_key = form.key;
    full_key += "|algo=";
    full_key += AlgorithmCacheTag(request.spec);
    full_key += "|opt=";
    full_key += OptionsCacheTag(request.options);
    full_key += "|epoch=";
    full_key += std::to_string(stats_epoch_.load(std::memory_order_acquire));
    outcome = cache_.LookupOrBegin(full_key, form, request.query, &ticket,
                                   &out.result);
  }

  if (outcome == PlanCache::Outcome::kHit) {
    out.cache_hit = true;
    metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    trace_cache("hit");
  } else {
    if (outcome == PlanCache::Outcome::kMiss) {
      metrics_.cache_misses.fetch_add(1, std::memory_order_relaxed);
      trace_cache("miss");
    }
    if (!AdmitBudget(request.options.memory_budget_bytes)) {
      // This request's budget can never fit under the global cap: the same
      // verdict the per-run budget machinery gives, raised before wasting
      // any enumeration work.
      cache_.Abandon(std::move(ticket));
      if (outcome == PlanCache::Outcome::kMiss) trace_cache("abandon");
      metrics_.requests_rejected.fetch_add(1, std::memory_order_relaxed);
      out.rejected = true;
      out.error = "memory budget exceeds service cap";
      out.result.algorithm = request.spec.name;
      metrics_.inflight.fetch_sub(1, std::memory_order_relaxed);
      metrics_.requests_completed.fetch_add(1, std::memory_order_relaxed);
      pending->promise.set_value(std::move(out));
      return;
    }

    out.result = RunAlgorithm(request.spec, request.query, cost,
                              request.options);
    ReleaseBudget(request.options.memory_budget_bytes);

    if (out.result.feasible) {
      cache_.Fill(std::move(ticket), request.query, form, out.result);
      if (outcome == PlanCache::Outcome::kMiss) trace_cache("fill");
    } else {
      cache_.Abandon(std::move(ticket));
      if (outcome == PlanCache::Outcome::kMiss) trace_cache("abandon");
      metrics_.requests_infeasible.fetch_add(1, std::memory_order_relaxed);
    }
    metrics_.plans_costed.fetch_add(out.result.counters.plans_costed,
                                    std::memory_order_relaxed);
    metrics_.jcrs_created.fetch_add(out.result.counters.jcrs_created,
                                    std::memory_order_relaxed);
    metrics_.bytes_charged.fetch_add(
        static_cast<uint64_t>(out.result.peak_memory_mb * (1 << 20)),
        std::memory_order_relaxed);
  }

  metrics_.optimize_latency.Record(request_watch.Seconds());
  metrics_.inflight.fetch_sub(1, std::memory_order_relaxed);
  metrics_.requests_completed.fetch_add(1, std::memory_order_relaxed);
  pending->promise.set_value(std::move(out));
}

void OptimizerService::BumpStatsEpoch() {
  stats_epoch_.fetch_add(1, std::memory_order_acq_rel);
  cache_.Clear();
}

}  // namespace sdp
