#include "service/optimizer_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <variant>

#include <cmath>
#include <limits>

#include "common/fault_injection.h"
#include "cost/cost_model.h"
#include "engine/executor.h"
#include "engine/table_data.h"
#include "obs/flight_recorder.h"
#include "obs/prof/prof.h"
#include "obs/recorder_export.h"
#include "optimizer/run_helpers.h"
#include "service/plan_fingerprint.h"
#include "sql/parser.h"
#include "trace/trace.h"

namespace sdp {

namespace {

void AppendDoubleBits(std::string* out, double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(double));
  std::memcpy(&bits, &d, sizeof(bits));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  out->append(buf);
}

// Serializes everything about an AlgorithmSpec that can influence the
// chosen plan or its reported cost, so two specs share cache entries only
// when they are behaviorally identical.
std::string AlgorithmCacheTag(const AlgorithmSpec& spec) {
  std::string tag = "name=" + spec.name + ";";
  switch (spec.kind) {
    case AlgorithmSpec::Kind::kDP:
      tag += "dp";
      break;
    case AlgorithmSpec::Kind::kIDP:
    case AlgorithmSpec::Kind::kIDP2:
      tag += spec.kind == AlgorithmSpec::Kind::kIDP ? "idp" : "idp2";
      tag += ":k=" + std::to_string(spec.idp.k);
      tag += ",bf=";
      AppendDoubleBits(&tag, spec.idp.balloon_fraction);
      tag += ",bal=" + std::to_string(spec.idp.balanced ? 1 : 0);
      break;
    case AlgorithmSpec::Kind::kSDP:
      tag += "sdp:part=" + std::to_string(static_cast<int>(spec.sdp.partitioning));
      tag += ",sky=" + std::to_string(static_cast<int>(spec.sdp.skyline));
      tag += ",loc=" + std::to_string(spec.sdp.localized ? 1 : 0);
      tag += ",ord=" + std::to_string(spec.sdp.order_partitions ? 1 : 0);
      tag += ",hub=" + std::to_string(spec.sdp.hub_degree);
      break;
  }
  return tag;
}

std::string OptionsCacheTag(const OptimizerOptions& options) {
  return "budget=" + std::to_string(options.memory_budget_bytes) +
         ",maxplans=" + std::to_string(options.max_plans_costed) +
         ",enum=" + EnumeratorName(options.enumerator);
}

// Governance settings join the cache key so only identically-governed
// requests coalesce or share cached entries: a plan computed under a tight
// budget ladder must never be served to an ungoverned request and vice
// versa.
std::string GovernanceCacheTag(const ServiceRequest& request) {
  if (!request.governed()) return "";
  std::string tag = ",gov=1,dls=";
  AppendDoubleBits(&tag, request.budget.deadline_seconds);
  tag += ",gmb=" + std::to_string(request.budget.memory_budget_bytes);
  tag += ",gmp=" + std::to_string(request.budget.max_plans_costed);
  tag += ",cac=" + std::to_string(request.budget.cancel_at_checkpoint);
  tag += ",fb=" + std::to_string(request.fallback_enabled ? 1 : 0);
  tag += ",minr=" + std::to_string(static_cast<int>(request.min_rung));
  tag += ",rung=" + std::to_string(static_cast<int>(request.max_rung));
  return tag;
}

// The ladder rung a request's algorithm spec starts on.
FallbackRung StartRungFor(const AlgorithmSpec& spec) {
  switch (spec.kind) {
    case AlgorithmSpec::Kind::kDP:
      return FallbackRung::kDP;
    case AlgorithmSpec::Kind::kIDP:
    case AlgorithmSpec::Kind::kIDP2:
      return FallbackRung::kIDP;
    case AlgorithmSpec::Kind::kSDP:
      return FallbackRung::kSDP;
  }
  return FallbackRung::kSDP;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

// SLO window clock (monotonic; the tracker only looks at differences).
double SloNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Maps a resolved rung string (OptimizeResult::rung) or, when the legacy
// path left it empty, the request's starting algorithm onto the SLO
// latency objective index.
int SloRungIndex(const std::string& rung, const AlgorithmSpec& spec) {
  if (rung == "dp") return 0;
  if (rung == "idp") return 1;
  if (rung == "sdp") return 2;
  if (rung == "greedy" || rung == "goo") return 3;
  switch (spec.kind) {
    case AlgorithmSpec::Kind::kDP:
      return 0;
    case AlgorithmSpec::Kind::kIDP:
    case AlgorithmSpec::Kind::kIDP2:
      return 1;
    case AlgorithmSpec::Kind::kSDP:
      return 2;
  }
  return 2;
}

}  // namespace

struct OptimizerService::PendingRequest {
  bool from_sql = false;
  std::string sql;
  ServiceRequest request;
  std::promise<ServiceResult> promise;
  // Started at submission, so a governed deadline covers queue time too.
  Stopwatch queued;
  // Dense submission ordinal; attributes flight-recorder events and names
  // crash-dump files.
  uint64_t request_id = 0;
};

OptimizerService::OptimizerService(const Catalog& catalog,
                                   const StatsCatalog& stats,
                                   ServiceConfig config)
    : catalog_(catalog),
      stats_(stats),
      config_(config),
      stats_epoch_(config.stats_epoch),
      cache_(PlanCacheConfig{config.cache_enabled, config.cache_stripes}),
      breakers_(config.breaker_threshold, config.breaker_cooldown),
      pool_(config.num_threads) {
  // The recorder is process-global (other services or bare optimizer runs
  // share it); a service configured with it on turns it on and leaves it
  // on -- "always-on" is the point of a flight recorder.
  if (config_.flight_recorder) FlightRecorder::Global().Enable(true);
  if (config_.slo.enabled()) {
    slo_ = std::make_unique<SloTracker>(config_.slo);
  }
}

OptimizerService::~OptimizerService() = default;

std::future<ServiceResult> OptimizerService::Enqueue(
    std::shared_ptr<PendingRequest> pending) {
  std::future<ServiceResult> future = pending->promise.get_future();
  pending->request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);

  metrics_.requests_submitted.fetch_add(1, std::memory_order_relaxed);
  if (config_.max_queue_depth > 0 &&
      metrics_.queue_depth.load(std::memory_order_relaxed) >=
          config_.max_queue_depth) {
    metrics_.requests_rejected.fetch_add(1, std::memory_order_relaxed);
    ServiceResult rejected;
    rejected.rejected = true;
    rejected.error = "queue full";
    rejected.retry_after_ms = RetryAfterHintMs();
    rejected.result.status = OptStatus::Make(OptStatusCode::kMemoryExceeded,
                                             "queue full");
    metrics_.shed_with_retry_hint.fetch_add(1, std::memory_order_relaxed);
    {
      FlightRecorder::ScopedRequest obs_req(pending->request_id);
      FlightRecorder::Global().Record(
          ObsKind::kShed, static_cast<uint8_t>(rejected.result.status.code),
          0, static_cast<uint64_t>(rejected.retry_after_ms));
    }
    pending->promise.set_value(std::move(rejected));
    return future;
  }

  metrics_.queue_depth.fetch_add(1, std::memory_order_relaxed);
  pool_.Submit([this, pending = std::move(pending)]() mutable {
    RunOne(std::move(pending));
  });
  return future;
}

std::future<ServiceResult> OptimizerService::Submit(ServiceRequest request) {
  auto pending = std::make_shared<PendingRequest>();
  pending->request = std::move(request);
  return Enqueue(std::move(pending));
}

std::future<ServiceResult> OptimizerService::SubmitSql(
    std::string sql, AlgorithmSpec spec, OptimizerOptions options) {
  // The query slot stays an empty graph until the worker parses the SQL.
  auto pending = std::make_shared<PendingRequest>();
  pending->from_sql = true;
  pending->sql = std::move(sql);
  pending->request.spec = std::move(spec);
  pending->request.options = options;
  return Enqueue(std::move(pending));
}

std::future<ServiceResult> OptimizerService::SubmitSql(std::string sql,
                                                       ServiceRequest request) {
  auto pending = std::make_shared<PendingRequest>();
  pending->from_sql = true;
  pending->sql = std::move(sql);
  pending->request = std::move(request);
  return Enqueue(std::move(pending));
}

ServiceResult OptimizerService::OptimizeSync(ServiceRequest request) {
  return Submit(std::move(request)).get();
}

int OptimizerService::RetryAfterHintMs() {
  // splitmix64 of the submission ordinal: deterministic under test, spread
  // enough that a burst of rejected callers does not retry in lockstep.
  const uint64_t x =
      Mix64(metrics_.requests_submitted.load(std::memory_order_relaxed));
  return 20 + static_cast<int>(x % 80);  // 20..99 ms.
}

bool OptimizerService::AdmitBudget(size_t budget_bytes,
                                   double max_wait_seconds, bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  if (config_.global_memory_cap_bytes == 0) return true;
  const size_t cap = config_.global_memory_cap_bytes;
  // An unlimited-budget request reserves the whole cap.
  const size_t need = budget_bytes == 0 ? cap : budget_bytes;
  if (need > cap) return false;

  std::unique_lock<std::mutex> lock(admission_mu_);
  if (admitted_bytes_ + need > cap) {
    metrics_.admission_waits.fetch_add(1, std::memory_order_relaxed);
    FlightRecorder::Global().Record(ObsKind::kAdmissionWait, 0, 0,
                                    static_cast<uint64_t>(need));
    const auto fits = [this, need, cap] {
      return admitted_bytes_ + need <= cap;
    };
    if (max_wait_seconds > 0) {
      if (!admission_cv_.wait_for(
              lock, std::chrono::duration<double>(max_wait_seconds), fits)) {
        metrics_.admission_timeouts.fetch_add(1, std::memory_order_relaxed);
        if (timed_out != nullptr) *timed_out = true;
        return false;
      }
    } else {
      admission_cv_.wait(lock, fits);
    }
  }
  admitted_bytes_ += need;
  return true;
}

void OptimizerService::ReleaseBudget(size_t budget_bytes) {
  if (config_.global_memory_cap_bytes == 0) return;
  const size_t cap = config_.global_memory_cap_bytes;
  const size_t need = budget_bytes == 0 ? cap : budget_bytes;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    admitted_bytes_ -= need;
  }
  admission_cv_.notify_all();
}

void OptimizerService::RunOne(std::shared_ptr<PendingRequest> pending) {
  metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
  metrics_.inflight.fetch_add(1, std::memory_order_relaxed);
  // Service-layer work samples as "serve"; cache and optimizer phases
  // re-tag their own extents below.
  ProfPhase serve_phase(ProfPhaseKind::kServe);
  const Stopwatch request_watch;

  ServiceResult out;
  ServiceRequest& request = pending->request;
  const bool governed = request.governed();

  // Everything this worker records until the request finishes is
  // attributed to its request id; the dump-signal sample lets the end
  // hook notice breaker opens and fault fires even when the request
  // itself recovered to OK.  The distributed-trace context travels the
  // same way: the submitter captured it into the request, the worker
  // re-installs it here.
  FlightRecorder::ScopedRequest obs_req(pending->request_id);
  SpanScope obs_span(request.trace);
  const uint64_t obs_signals_before = FlightRecorder::Global().dump_signals();
  FlightRecorder::Global().Record(ObsKind::kRequestBegin);
  bool obs_ended = false;
  const auto obs_end = [&](OptStatusCode code) {
    if (obs_ended) return;  // First terminal outcome wins.
    obs_ended = true;
    FlightRecorder::Global().Record(
        ObsKind::kRequestEnd, static_cast<uint8_t>(code),
        out.cache_hit ? 1u : 0u, out.result.counters.plans_costed);
    MaybeDumpFlightRecorder(pending->request_id, code, obs_signals_before);
  };

  const auto count_status = [this](const OptStatus& status) {
    switch (status.code) {
      case OptStatusCode::kOk:
        break;
      case OptStatusCode::kDeadlineExceeded:
        metrics_.status_deadline_exceeded.fetch_add(1,
                                                    std::memory_order_relaxed);
        break;
      case OptStatusCode::kMemoryExceeded:
        metrics_.status_memory_exceeded.fetch_add(1,
                                                  std::memory_order_relaxed);
        break;
      case OptStatusCode::kCancelled:
        metrics_.status_cancelled.fetch_add(1, std::memory_order_relaxed);
        break;
      case OptStatusCode::kInternal:
        metrics_.status_internal.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  };
  const auto finish = [&]() {
    // The latency SLO sample precedes obs_end so a burn's kSloBurn event
    // lands in the recorder before any dump is rendered.
    if (slo_ != nullptr) {
      SloTracker::Burn burn;
      if (slo_->RecordLatency(SloRungIndex(out.result.rung, request.spec),
                              request_watch.Seconds(), pending->request_id,
                              SloNowSeconds(), &burn)) {
        HandleSloBurn(burn);
      }
    }
    obs_end(out.result.status.code);
    metrics_.optimize_latency.Record(request_watch.Seconds());
    metrics_.inflight.fetch_sub(1, std::memory_order_relaxed);
    metrics_.requests_completed.fetch_add(1, std::memory_order_relaxed);
    pending->promise.set_value(std::move(out));
  };

  // A governed deadline starts at Submit(): time spent queued counts, so a
  // request that aged out in the queue fails fast with a typed error
  // instead of burning a worker on enumeration it can never finish.
  if (request.budget.deadline_seconds > 0 &&
      pending->queued.Seconds() >= request.budget.deadline_seconds) {
    out.result.algorithm = request.spec.name;
    out.result.status = OptStatus::Make(OptStatusCode::kDeadlineExceeded,
                                        "deadline exceeded while queued");
    count_status(out.result.status);
    metrics_.requests_infeasible.fetch_add(1, std::memory_order_relaxed);
    finish();
    return;
  }

  if (pending->from_sql) {
    const ParseResult parsed = ParseSelect(pending->sql, catalog_);
    if (const auto* error = std::get_if<ParseError>(&parsed)) {
      metrics_.parse_errors.fetch_add(1, std::memory_order_relaxed);
      out.error = "parse error at offset " +
                  std::to_string(error->position) + ": " + error->message;
      // out.result.status stays OK (there was nothing to optimize); the
      // recorder still marks the request as internally failed.
      obs_end(OptStatusCode::kInternal);
      metrics_.inflight.fetch_sub(1, std::memory_order_relaxed);
      metrics_.requests_completed.fetch_add(1, std::memory_order_relaxed);
      pending->promise.set_value(std::move(out));
      return;
    }
    request.query = std::get<ParsedQuery>(parsed).query;
  }

  // The per-request budget spans everything from here on: cache waits,
  // admission control and every ladder rung share one deadline.
  ResourceBudget::Limits limits = request.budget;
  if (limits.deadline_seconds > 0) {
    limits.deadline_seconds = std::max(
        1e-3, limits.deadline_seconds - pending->queued.Seconds());
  }
  ResourceBudget budget(limits, request.cancel);
  if (governed) {
    budget.Arm();
    request.options.budget = &budget;
  }

  // Clamp intra-query parallelism to the service-wide cap.  The enumeration
  // pool itself is spawned inside the optimizer drivers, per request; it is
  // never this service's request pool.  opt_threads does not join the cache
  // key: results are bit-identical at any thread count.
  request.options.opt_threads =
      std::max(1, std::min(request.options.opt_threads,
                           std::max(1, config_.max_opt_threads)));

  // Owner-thread timing sink for sharded levels; folded into the service
  // counters after the run.
  ParallelEnumStats parallel_stats;
  request.options.parallel_stats = &parallel_stats;

  // Per-request isolation starts here: the cost model (and, inside the
  // optimizer entry point, the memo/pool/estimator/gauge) belong to this
  // request alone.
  const CostModel cost(catalog_, stats_, request.query.graph, CostParams(),
                       request.query.filters);

  CanonicalQueryForm form;
  std::string full_key;
  PlanCache::Ticket ticket;
  PlanCache::Outcome outcome = PlanCache::Outcome::kDisabled;
  uint64_t obs_key_hash = 0;
  auto trace_cache = [&](const char* kind) {
    ObsKind obs_kind = ObsKind::kNone;
    if (std::strcmp(kind, "hit") == 0) {
      obs_kind = ObsKind::kCacheHit;
    } else if (std::strcmp(kind, "miss") == 0) {
      obs_kind = ObsKind::kCacheMiss;
    } else if (std::strcmp(kind, "fill") == 0) {
      obs_kind = ObsKind::kCacheFill;
    } else if (std::strcmp(kind, "abandon") == 0) {
      obs_kind = ObsKind::kCacheAbandon;
    } else if (std::strcmp(kind, "fail-propagated") == 0) {
      obs_kind = ObsKind::kCacheFailPropagated;
    }
    FlightRecorder::Global().Record(obs_kind, 0, 0, obs_key_hash);
    if (config_.tracer == nullptr) return;
    TraceCacheEvent e;
    e.kind = kind;
    e.key = full_key;
    e.trace_id = request.trace.trace_id;
    config_.tracer->OnCacheEvent(e);
  };
  // A request without its own tracer inherits the service-wide sink, so
  // worker-side optimizations emit full search traces.
  if (request.options.tracer == nullptr) {
    request.options.tracer = config_.tracer;
  }
  if (config_.cache_enabled) {
    ProfPhase cache_phase(ProfPhaseKind::kCache);
    form = CanonicalizeQuery(request.query, cost);
    full_key = form.key;
    full_key += "|algo=";
    full_key += AlgorithmCacheTag(request.spec);
    full_key += "|opt=";
    full_key += OptionsCacheTag(request.options);
    full_key += GovernanceCacheTag(request);
    full_key += "|epoch=";
    full_key += std::to_string(stats_epoch_.load(std::memory_order_acquire));
    obs_key_hash = std::hash<std::string>{}(full_key);
    out.cache_key = full_key;
    outcome = cache_.LookupOrBegin(full_key, form, request.query, &ticket,
                                   &out.result);
  }

  if (outcome == PlanCache::Outcome::kHit) {
    out.cache_hit = true;
    metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    trace_cache("hit");
    finish();
    return;
  }

  if (outcome == PlanCache::Outcome::kFailed) {
    // A coalesced computation failed; its typed status was propagated into
    // out.result.status by the cache.  Exactly one other observer has
    // already taken over the retry, so this waiter reports the failure
    // instead of stampeding into a duplicate recompute.
    metrics_.cache_failures_propagated.fetch_add(1,
                                                 std::memory_order_relaxed);
    trace_cache("fail-propagated");
    out.result.algorithm = request.spec.name;
    count_status(out.result.status);
    metrics_.requests_infeasible.fetch_add(1, std::memory_order_relaxed);
    finish();
    return;
  }

  if (outcome == PlanCache::Outcome::kMiss) {
    metrics_.cache_misses.fetch_add(1, std::memory_order_relaxed);
    trace_cache("miss");
  }

  // Admission control.  Governed requests wait at most their remaining
  // deadline; ungoverned requests keep the legacy unbounded wait.
  const size_t admit_bytes =
      governed && request.budget.memory_budget_bytes > 0
          ? request.budget.memory_budget_bytes
          : request.options.memory_budget_bytes;
  double admit_wait = 0;
  if (governed && budget.has_deadline()) {
    admit_wait = std::max(1e-3, budget.RemainingSeconds());
  }
  bool admit_timeout = false;
  if (!AdmitBudget(admit_bytes, admit_wait, &admit_timeout)) {
    const OptStatus st =
        admit_timeout
            ? OptStatus::Make(OptStatusCode::kDeadlineExceeded,
                              "deadline exceeded waiting for admission")
            : OptStatus::Make(OptStatusCode::kMemoryExceeded,
                              "memory budget exceeds service cap");
    cache_.Abandon(std::move(ticket), st);
    if (outcome == PlanCache::Outcome::kMiss) trace_cache("abandon");
    metrics_.requests_rejected.fetch_add(1, std::memory_order_relaxed);
    out.rejected = true;
    out.retry_after_ms = RetryAfterHintMs();
    metrics_.shed_with_retry_hint.fetch_add(1, std::memory_order_relaxed);
    FlightRecorder::Global().Record(ObsKind::kShed,
                                    static_cast<uint8_t>(st.code), 0,
                                    static_cast<uint64_t>(out.retry_after_ms));
    out.error = st.message;
    out.result.status = st;
    count_status(st);
    out.result.algorithm = request.spec.name;
    finish();
    return;
  }

  if (governed) {
    FallbackConfig ladder;
    // min_rung can only deepen the start (skip rungs), never shallow it:
    // a quarantined request pinned to greedy must not re-enter DP.
    ladder.start_rung = std::max(StartRungFor(request.spec), request.min_rung);
    ladder.max_rung =
        request.fallback_enabled ? request.max_rung : ladder.start_rung;
    ladder.idp = request.spec.idp;
    ladder.sdp = request.spec.sdp;
    ladder.use_idp2 = request.spec.kind == AlgorithmSpec::Kind::kIDP2;

    FallbackReport report;
    out.result = OptimizeWithFallback(request.query, cost, ladder,
                                      request.options, &breakers_, &report);

    metrics_.degrade_attempts.fetch_add(report.attempts.size(),
                                        std::memory_order_relaxed);
    for (const FallbackAttempt& a : report.attempts) {
      if (a.skipped_by_breaker) {
        metrics_.breaker_skips.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (out.result.retries > 0) {
      metrics_.requests_degraded.fetch_add(1, std::memory_order_relaxed);
    }
    if (out.result.feasible) {
      if (out.result.rung == "dp") {
        metrics_.rung_dp.fetch_add(1, std::memory_order_relaxed);
      } else if (out.result.rung == "idp") {
        metrics_.rung_idp.fetch_add(1, std::memory_order_relaxed);
      } else if (out.result.rung == "sdp") {
        metrics_.rung_sdp.fetch_add(1, std::memory_order_relaxed);
      } else if (out.result.rung == "greedy") {
        metrics_.rung_greedy.fetch_add(1, std::memory_order_relaxed);
      } else if (out.result.rung == "goo") {
        metrics_.rung_goo.fetch_add(1, std::memory_order_relaxed);
      }
    }

    if (Tracer* tracer = request.options.tracer) {
      int ordinal = 0;
      for (const FallbackAttempt& a : report.attempts) {
        TraceDegradeEvent e;
        e.kind = a.skipped_by_breaker ? "skip" : "attempt";
        e.rung = FallbackRungLabel(a.rung, request.options);
        e.algorithm = a.algorithm;
        e.status = a.status.ToString();
        e.attempt = ordinal++;
        e.elapsed_seconds = a.elapsed_seconds;
        e.plans_costed = a.plans_costed;
        e.peak_memory_mb = a.peak_memory_mb;
        e.trace_id = request.trace.trace_id;
        tracer->OnDegrade(e);
      }
      TraceDegradeEvent done;
      done.kind = "resolved";
      done.rung = out.result.rung;
      done.algorithm = out.result.algorithm;
      done.status = out.result.status.ToString();
      done.attempt = static_cast<int>(report.attempts.size());
      done.retries = out.result.retries;
      done.elapsed_seconds = out.result.elapsed_seconds;
      done.plans_costed = out.result.counters.plans_costed;
      done.peak_memory_mb = out.result.peak_memory_mb;
      done.trace_id = request.trace.trace_id;
      tracer->OnDegrade(done);
    }
  } else {
    // Legacy single-algorithm path, hardened: a thrown exception becomes a
    // typed kInternal result instead of unwinding into the worker pool.
    try {
      out.result =
          RunAlgorithm(request.spec, request.query, cost, request.options);
    } catch (const std::exception& e) {
      out.result = OptimizeResult();
      out.result.algorithm = request.spec.name;
      out.result.status = OptStatus::Make(
          OptStatusCode::kInternal, std::string("exception: ") + e.what());
    } catch (...) {
      out.result = OptimizeResult();
      out.result.algorithm = request.spec.name;
      out.result.status =
          OptStatus::Make(OptStatusCode::kInternal, "unknown exception");
    }
  }
  ReleaseBudget(admit_bytes);
  request.options.budget = nullptr;
  request.options.parallel_stats = nullptr;
  if (parallel_stats.levels > 0) {
    metrics_.parallel_levels.fetch_add(parallel_stats.levels,
                                       std::memory_order_relaxed);
    metrics_.parallel_scan_us.fetch_add(parallel_stats.scan_us,
                                        std::memory_order_relaxed);
    metrics_.parallel_merge_us.fetch_add(parallel_stats.merge_us,
                                         std::memory_order_relaxed);
  }

  if (out.result.feasible) {
    // A fill that throws (allocation failure, injected "service.fill"
    // fault) must not strand coalesced waiters: the ticket is abandoned
    // with a typed status so exactly one of them retries.
    ProfPhase cache_phase(ProfPhaseKind::kCache);
    bool filled = false;
    try {
      if (FaultInjector::Global().Hit("service.fill")) {
        throw std::runtime_error("injected cache-fill failure");
      }
      cache_.Fill(ticket, request.query, form, out.result);
      filled = true;
    } catch (const std::exception& e) {
      cache_.Abandon(std::move(ticket),
                     OptStatus::Make(OptStatusCode::kInternal,
                                     std::string("cache fill failed: ") +
                                         e.what()));
      if (outcome == PlanCache::Outcome::kMiss) trace_cache("abandon");
    }
    if (filled) {
      ticket.slot.reset();
      if (outcome == PlanCache::Outcome::kMiss) trace_cache("fill");
      // Refresh the residency gauges on the fill (miss) path only; the
      // warm cache-hit path never pays the stripe walk.
      const PlanCacheStats cs = cache_.Stats();
      metrics_.plan_cache_entries.store(static_cast<int64_t>(cs.entries),
                                        std::memory_order_relaxed);
      metrics_.plan_cache_bytes.store(
          static_cast<int64_t>(cs.resident_bytes), std::memory_order_relaxed);
    }
  } else {
    cache_.Abandon(std::move(ticket), out.result.status);
    if (outcome == PlanCache::Outcome::kMiss) trace_cache("abandon");
    metrics_.requests_infeasible.fetch_add(1, std::memory_order_relaxed);
    count_status(out.result.status);
  }
  metrics_.plans_costed.fetch_add(out.result.counters.plans_costed,
                                  std::memory_order_relaxed);
  metrics_.jcrs_created.fetch_add(out.result.counters.jcrs_created,
                                  std::memory_order_relaxed);
  metrics_.bytes_charged.fetch_add(
      static_cast<uint64_t>(out.result.peak_memory_mb * (1 << 20)),
      std::memory_order_relaxed);
  // High-watermark across computed requests: the largest single-request
  // working set (arena + memo peak, from the budget layer's gauge).
  uint64_t prev_peak =
      metrics_.request_peak_bytes.load(std::memory_order_relaxed);
  while (out.result.peak_memory_bytes > prev_peak &&
         !metrics_.request_peak_bytes.compare_exchange_weak(
             prev_peak, out.result.peak_memory_bytes,
             std::memory_order_relaxed)) {
  }

  // Plan-quality SLO sampling: every Nth freshly computed feasible plan
  // is executed (EXPLAIN ANALYZE) and its root-cardinality Q-error feeds
  // the quality objective.  Cache hits are skipped -- their plans were
  // sampled when first computed.
  if (slo_ != nullptr && config_.analyze_sample_every > 0 &&
      out.result.feasible && out.result.plan != nullptr) {
    const uint64_t n =
        analyze_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n % static_cast<uint64_t>(config_.analyze_sample_every) == 0) {
      const double ratio = MeasurePlanQuality(request, out.result);
      SloTracker::Burn burn;
      if (slo_->RecordQuality(ratio, pending->request_id, SloNowSeconds(),
                              &burn)) {
        HandleSloBurn(burn);
      }
    }
  }

  finish();
}

double OptimizerService::MeasurePlanQuality(const ServiceRequest& request,
                                            const OptimizeResult& result) {
  // A plan carrying a non-finite cost or cardinality estimate is an
  // instant violation -- that is exactly what an injected cost.nan looks
  // like -- and is never worth executing.
  if (!std::isfinite(result.cost) || !std::isfinite(result.rows)) {
    return std::numeric_limits<double>::infinity();
  }
  {
    std::lock_guard<std::mutex> lock(analyze_mu_);
    if (analyze_db_ == nullptr) {
      analyze_db_ = std::make_unique<Database>(Database::Generate(
          catalog_, config_.analyze_seed, config_.analyze_row_limit));
    }
  }
  try {
    const Executor executor(*analyze_db_, request.query.graph,
                            request.query.filters);
    const AnalyzeResult analyzed = executor.ExecuteAnalyze(result.plan);
    if (analyzed.operators.empty()) {
      return std::numeric_limits<double>::infinity();
    }
    // operators is pre-order: front() is the plan root.
    return QError(result.rows, analyzed.operators.front().actual_rows);
  } catch (const std::exception&) {
    // An inexecutable plan is the worst possible quality sample.
    return std::numeric_limits<double>::infinity();
  }
}

void OptimizerService::HandleSloBurn(const SloTracker::Burn& burn) {
  const bool quality = burn.objective == SloTracker::kQualityObjective;
  uint64_t threshold_bits = 0;
  uint64_t observed_bits = 0;
  std::memcpy(&threshold_bits, &burn.threshold, sizeof(threshold_bits));
  std::memcpy(&observed_bits, &burn.observed, sizeof(observed_bits));
  // The event is recorded before the dump is rendered so the dump's own
  // timeline shows why it exists.  Latency payloads stay timing-free (the
  // observed value would differ run to run); the quality ratio is
  // deterministic and travels.
  FlightRecorder::Global().Record(
      ObsKind::kSloBurn, quality ? 1 : 0, static_cast<uint32_t>(burn.rung),
      threshold_bits, 0, quality ? observed_bits : 0);
  metrics_.slo_burns.fetch_add(1, std::memory_order_relaxed);
  if (!config_.flight_recorder || config_.flight_dump_dir.empty()) return;
  std::string path = config_.flight_dump_dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += "flight-req" + std::to_string(burn.request_id) + "-SLO_" +
          SloTracker::ObjectiveName(burn.objective) + ".jsonl";
  // Only the offending request's slice: the correlated dump answers "what
  // did THIS request do", not "what was the process doing".
  ObsExportOptions options;
  options.request_id = burn.request_id;
  if (DumpFlightRecorderToFile(path, nullptr, options)) {
    metrics_.flight_dumps.fetch_add(1, std::memory_order_relaxed);
  }
}

bool OptimizerService::InstallPlanCacheEntry(const PlanCacheExportEntry& entry) {
  if (!config_.cache_enabled) return false;
  const bool installed = cache_.Install(entry);
  if (installed) {
    const PlanCacheStats cs = cache_.Stats();
    metrics_.plan_cache_entries.store(static_cast<int64_t>(cs.entries),
                                      std::memory_order_relaxed);
    metrics_.plan_cache_bytes.store(static_cast<int64_t>(cs.resident_bytes),
                                    std::memory_order_relaxed);
  }
  return installed;
}

void OptimizerService::BumpStatsEpoch() {
  stats_epoch_.fetch_add(1, std::memory_order_acq_rel);
  cache_.Clear();
  metrics_.plan_cache_entries.store(0, std::memory_order_relaxed);
  metrics_.plan_cache_bytes.store(0, std::memory_order_relaxed);
}

void OptimizerService::MaybeDumpFlightRecorder(uint64_t request_id,
                                               OptStatusCode code,
                                               uint64_t signals_before) {
  if (!config_.flight_recorder || config_.flight_dump_dir.empty()) return;
  const bool failed = code != OptStatusCode::kOk;
  const bool signaled =
      FlightRecorder::Global().dump_signals() != signals_before;
  if (!failed && !signaled) return;
  std::string path = config_.flight_dump_dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += "flight-req" + std::to_string(request_id) + "-" +
          OptStatusCodeName(code) + ".jsonl";
  // Deterministic render (no timestamps): two runs of the same seeded
  // workload produce byte-identical dump files.
  if (DumpFlightRecorderToFile(path)) {
    metrics_.flight_dumps.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace sdp
