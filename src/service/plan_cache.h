#ifndef SDPOPT_SERVICE_PLAN_CACHE_H_
#define SDPOPT_SERVICE_PLAN_CACHE_H_

#include <stdint.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include <utility>

#include "common/budget.h"
#include "optimizer/optimizer_types.h"
#include "plan/plan_node.h"
#include "query/join_graph.h"
#include "service/plan_fingerprint.h"

namespace sdp {

struct PlanCacheConfig {
  bool enabled = true;
  // Lock stripes; rounded up to a power of two, min 1.  Each stripe has its
  // own mutex and hash map, so concurrent requests with different
  // fingerprints never contend.
  int num_stripes = 16;
};

// Point-in-time cache statistics (all counters are cumulative).
struct PlanCacheStats {
  uint64_t hits = 0;       // Served from a completed entry.
  uint64_t coalesced = 0;  // Subset of hits: waited on an in-flight compute.
  uint64_t misses = 0;     // Caller was told to compute (owns a ticket).
  uint64_t failures = 0;   // Computations abandoned (infeasible/error).
  uint64_t fail_propagated = 0;  // Waiters given the owner's typed error.
  uint64_t remap_failures = 0;  // Key matched but plan translation failed.
  uint64_t entries = 0;    // Completed entries currently resident.
  // Arena bytes held by resident completed entries (their cloned plan
  // trees); drops to 0 on Clear().
  uint64_t resident_bytes = 0;
};

// One completed cache entry in portable, pointer-free form: everything a
// peer replica (or a restart of this one) needs to reinstall the entry and
// serve byte-identical plans from it.  Produced by PlanCache::Export /
// ExportEntry, consumed by PlanCache::Install; the fleet tier carries it
// across sockets (cache-fill broadcast) and through snapshot files
// (warm restart).
struct PlanCacheExportEntry {
  std::string key;           // The full composed cache key.
  uint64_t form_hash = 0;    // CanonicalQueryForm::hash -- stripe selector.
  std::vector<PlanWireNode> plan;  // Flattened tree, inserter space.
  double cost = 0;
  double rows = 0;
  SearchCounters counters;
  std::string algorithm;
  double elapsed_seconds = 0;
  double peak_memory_mb = 0;
  std::vector<int> perm;
  std::vector<std::pair<ColumnRef, ColumnRef>> edge_endpoints;
  std::vector<ColumnRef> ordering_reps;
};

// Canonical plan cache with lock striping and in-flight coalescing.
//
// Keys are the *full* canonical serialization produced by
// CanonicalizeQuery plus the caller's algorithm/epoch/options tag -- exact
// string equality, so a hit guarantees the cached query is isomorphic to
// the probe under the two recorded canonical permutations, and identical
// in every input the cost model reads.  Plans are stored in the inserting
// query's position space together with that query's canonical permutation;
// serving composes inserter->canonical->probe to relabel relation
// positions, edge indices and ordering (equivalence-class) ids, then
// deep-clones the relabeled tree into a fresh arena owned by the returned
// OptimizeResult.  Callers therefore never share arena memory with the
// cache or with each other.
//
// Concurrency: a miss installs an in-flight slot; concurrent probes for
// the same key block until the owner fills or abandons it, so each
// distinct fingerprint is optimized at most once no matter how many
// identical requests arrive together (and hit/miss totals stay
// deterministic: one miss per distinct key, hits for the rest).
class PlanCache {
 public:
  explicit PlanCache(PlanCacheConfig config);
  ~PlanCache();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Opaque handle tying a miss to its later Fill/Abandon.
  struct Ticket {
    std::shared_ptr<struct CacheSlot> slot;
    bool valid() const { return slot != nullptr; }
  };

  enum class Outcome {
    kHit,       // *result holds a cloned, relabeled plan.
    kMiss,      // Caller computes, then calls Fill() or Abandon().
    kFailed,    // The in-flight owner failed; result->status carries its
                // typed error.  Exactly one observer of a failed slot gets
                // kMiss (the retry); everyone else gets kFailed so a
                // poisoned fill cannot fan a thundering herd of recomputes.
    kDisabled,  // Cache off; caller computes, no ticket.
  };

  // Looks up `full_key`.  On a hit, clones the cached plan into `*result`
  // (remapped into `query`'s position space via `form.perm`).  On a miss
  // the caller owns the compute and MUST eventually Fill or Abandon the
  // ticket -- other threads may be blocked on it.
  Outcome LookupOrBegin(const std::string& full_key,
                        const CanonicalQueryForm& form, const Query& query,
                        Ticket* ticket, OptimizeResult* result);

  // Publishes a feasible result for the ticket's key.  The plan tree is
  // deep-cloned into cache-owned memory; `query`/`form` must be the ones
  // the result was computed for.
  void Fill(Ticket ticket, const Query& query, const CanonicalQueryForm& form,
            const OptimizeResult& result);

  // Releases the ticket without publishing, recording why the compute
  // failed.  Exactly one blocked waiter (or later probe) takes over the
  // slot and retries; all others observe kFailed with `status`.
  void Abandon(Ticket ticket, OptStatus status);
  // Legacy form: abandons with a generic internal error.
  void Abandon(Ticket ticket);

  // Drops every completed entry (in-flight computations are unaffected).
  // Use after a catalog/stats change together with a stats-epoch bump.
  void Clear();

  PlanCacheStats Stats() const;

  // --- fleet tier: snapshot / broadcast support ---

  // Portable images of every completed entry (in-flight slots skipped).
  std::vector<PlanCacheExportEntry> Export() const;

  // Portable image of the completed entry under `full_key`, if resident.
  bool ExportEntry(const std::string& full_key,
                   PlanCacheExportEntry* out) const;

  // Installs a completed entry.  First writer wins: an existing entry
  // (ready, in flight, or failed) under the same key is never displaced,
  // so a broadcast can never clobber newer local state.  Returns false
  // when the key exists, the entry's plan image is invalid, or the cache
  // is disabled.
  bool Install(const PlanCacheExportEntry& entry);

 private:
  struct Stripe;

  Stripe& StripeFor(uint64_t hash) const;

  PlanCacheConfig config_;
  uint32_t stripe_mask_ = 0;
  std::vector<std::unique_ptr<Stripe>> stripes_;

  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> coalesced_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> failures_{0};
  mutable std::atomic<uint64_t> fail_propagated_{0};
  mutable std::atomic<uint64_t> remap_failures_{0};
};

}  // namespace sdp

#endif  // SDPOPT_SERVICE_PLAN_CACHE_H_
