#ifndef SDPOPT_SERVICE_PLAN_FINGERPRINT_H_
#define SDPOPT_SERVICE_PLAN_FINGERPRINT_H_

#include <stdint.h>

#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "optimizer/optimizer_types.h"
#include "query/join_graph.h"

namespace sdp {

// Canonical form of a query's join graph, the key half of the service's
// plan cache.
//
// Two queries receive the same `key` exactly when a relabeling of graph
// positions maps one onto the other while preserving every input the
// optimizer and cost model read: bound catalog tables, join edges with
// their column endpoints and selectivities, scan filters, and the ORDER BY
// requirement.  Workload generators emit millions of such instances that
// differ only in position numbering (the samplers shuffle positions), so
// canonicalization is what turns the cache from exact-repeat matching into
// structural matching.
//
// Soundness does not depend on the labeling heuristic: the key *is* the
// full serialization of the relabeled query, so byte-equal keys imply a
// genuine isomorphism, and a cached plan can be served by composing the
// two permutations (see PlanCache).  A weak heuristic only costs hit rate,
// never correctness.
struct CanonicalQueryForm {
  // Exact canonical serialization; used verbatim as the cache map key
  // (no lossy hashing on the correctness path).
  std::string key;
  // 64-bit FNV-1a of `key`, for stripe selection and diagnostics.
  uint64_t hash = 0;
  // perm[pos] = canonical position of query graph position `pos`.
  std::vector<int> perm;
};

// Computes the canonical form.  `cost` supplies edge selectivities (bound
// to the same catalog/stats the optimizer will use); the caller appends
// algorithm-config and stats-epoch tags to `key` before cache lookup.
CanonicalQueryForm CanonicalizeQuery(const Query& query,
                                     const CostModel& cost);

// 64-bit FNV-1a, exposed for tests and for hashing composed cache keys.
uint64_t FingerprintHash(const std::string& bytes);

// Every observable output of an optimization run, serialized byte-exactly
// (hexfloat for doubles, full plan tree text).  Two fingerprints compare
// equal iff the runs are indistinguishable to a caller -- the guarantee
// the parallel-enumeration suite asserts between serial and sharded runs,
// and the fleet tier asserts between a computed plan and the same plan
// served from a snapshot-restored or broadcast-seeded cache on another
// process.
std::string ResultFingerprint(const OptimizeResult& result);

}  // namespace sdp

#endif  // SDPOPT_SERVICE_PLAN_FINGERPRINT_H_
