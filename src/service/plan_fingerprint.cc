#include "service/plan_fingerprint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace sdp {

namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  // splitmix64-style combiner: deterministic, platform-independent.
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (v ^ (v >> 31)) ^ (h << 6) ^ (h >> 2);
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

void AppendU64Hex(std::string* out, uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  out->append(buf);
}

void AppendInt(std::string* out, long long v) {
  out->append(std::to_string(v));
}

// Filters of one relation, in a canonical order.
std::vector<FilterPredicate> SortedFiltersOn(const Query& query, int rel) {
  std::vector<FilterPredicate> filters;
  for (const FilterPredicate& f : query.filters) {
    if (f.column.rel == rel) filters.push_back(f);
  }
  std::sort(filters.begin(), filters.end(),
            [](const FilterPredicate& a, const FilterPredicate& b) {
              if (a.column.col != b.column.col) {
                return a.column.col < b.column.col;
              }
              if (a.op != b.op) return a.op < b.op;
              return a.value < b.value;
            });
  return filters;
}

}  // namespace

uint64_t FingerprintHash(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis.
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime.
  }
  return h;
}

CanonicalQueryForm CanonicalizeQuery(const Query& query,
                                     const CostModel& cost) {
  const JoinGraph& graph = query.graph;
  const int n = graph.num_relations();
  const int num_edges = static_cast<int>(graph.edges().size());

  // 1. Position-invariant signature per relation, refined Weisfeiler-Lehman
  // style so a relation's signature absorbs its whole neighborhood.  The
  // initial round sees local facts only (bound table, filters, degree).
  std::vector<uint64_t> sig(n);
  for (int r = 0; r < n; ++r) {
    uint64_t h = Mix(0x5dee7c4fULL, static_cast<uint64_t>(graph.table_id(r)));
    h = Mix(h, static_cast<uint64_t>(graph.Degree(r)));
    for (const FilterPredicate& f : SortedFiltersOn(query, r)) {
      h = Mix(h, static_cast<uint64_t>(f.column.col));
      h = Mix(h, static_cast<uint64_t>(f.op));
      h = Mix(h, static_cast<uint64_t>(f.value));
    }
    if (query.order_by.has_value() && query.order_by->column.rel == r) {
      h = Mix(h, 0x07d3bULL + static_cast<uint64_t>(query.order_by->column.col));
    }
    sig[r] = h;
  }

  // Refine for n rounds: enough for any signal to cross the graph diameter.
  std::vector<uint64_t> next(n);
  for (int round = 0; round < n; ++round) {
    for (int r = 0; r < n; ++r) {
      std::vector<uint64_t> incident;
      for (int e = 0; e < num_edges; ++e) {
        const JoinEdge& edge = graph.edges()[e];
        const auto own = edge.SideFor(r);
        if (!own.has_value()) continue;
        const ColumnRef other =
            edge.left.rel == r ? edge.right : edge.left;
        uint64_t eh = Mix(0x3d6eULL, static_cast<uint64_t>(own->col));
        eh = Mix(eh, static_cast<uint64_t>(other.col));
        eh = Mix(eh, DoubleBits(cost.EdgeSelectivity(e)));
        eh = Mix(eh, sig[other.rel]);
        incident.push_back(eh);
      }
      std::sort(incident.begin(), incident.end());
      uint64_t h = sig[r];
      for (uint64_t eh : incident) h = Mix(h, eh);
      next[r] = h;
    }
    sig.swap(next);
  }

  // 2. Canonical order: by signature, stable on original position.  Ties
  // between non-symmetric relations merely fragment the key space (missed
  // hits); ties between truly symmetric relations serialize identically
  // either way.
  std::vector<int> by_sig(n);
  for (int r = 0; r < n; ++r) by_sig[r] = r;
  std::sort(by_sig.begin(), by_sig.end(), [&sig](int a, int b) {
    if (sig[a] != sig[b]) return sig[a] < sig[b];
    return a < b;
  });

  CanonicalQueryForm form;
  form.perm.assign(n, -1);
  for (int ci = 0; ci < n; ++ci) form.perm[by_sig[ci]] = ci;

  // 3. Serialize the query in canonical space.  Everything the optimizer
  // and cost model read must appear here; byte-equality of keys is the
  // cache's correctness contract.
  std::string& key = form.key;
  key.reserve(64 + 32 * n + 48 * num_edges);
  key += "v1;n=";
  AppendInt(&key, n);
  for (int ci = 0; ci < n; ++ci) {
    const int r = by_sig[ci];
    key += ";R";
    AppendInt(&key, ci);
    key += ":t";
    AppendInt(&key, graph.table_id(r));
    for (const FilterPredicate& f : SortedFiltersOn(query, r)) {
      key += ",F";
      AppendInt(&key, f.column.col);
      key += CompareOpName(f.op);
      AppendInt(&key, f.value);
    }
  }

  std::vector<std::string> edge_strings;
  edge_strings.reserve(num_edges);
  for (int e = 0; e < num_edges; ++e) {
    const JoinEdge& edge = graph.edges()[e];
    ColumnRef a{form.perm[edge.left.rel], edge.left.col};
    ColumnRef b{form.perm[edge.right.rel], edge.right.col};
    if (b.rel < a.rel || (b.rel == a.rel && b.col < a.col)) std::swap(a, b);
    std::string s = "E";
    AppendInt(&s, a.rel);
    s += ".";
    AppendInt(&s, a.col);
    s += "-";
    AppendInt(&s, b.rel);
    s += ".";
    AppendInt(&s, b.col);
    s += ":";
    AppendU64Hex(&s, DoubleBits(cost.EdgeSelectivity(e)));
    edge_strings.push_back(std::move(s));
  }
  std::sort(edge_strings.begin(), edge_strings.end());
  for (const std::string& s : edge_strings) {
    key += ";";
    key += s;
  }

  key += ";O";
  if (query.order_by.has_value()) {
    AppendInt(&key, form.perm[query.order_by->column.rel]);
    key += ".";
    AppendInt(&key, query.order_by->column.col);
  } else {
    key += "-";
  }

  form.hash = FingerprintHash(key);
  return form;
}

std::string ResultFingerprint(const OptimizeResult& result) {
  std::ostringstream out;
  out << std::hexfloat;
  out << "feasible=" << result.feasible
      << " status=" << result.status.ToString() << " cost=" << result.cost
      << " rows=" << result.rows
      << " plans_costed=" << result.counters.plans_costed
      << " jcrs=" << result.counters.jcrs_created
      << " pairs=" << result.counters.pairs_examined
      << " peak_mb=" << result.peak_memory_mb << "\n";
  if (result.plan != nullptr) out << result.plan->ToString();
  return out.str();
}

}  // namespace sdp
