#include "service/service_metrics.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace sdp {

namespace {

int BucketFor(uint64_t us) {
  int b = 0;
  while (us >= 2 && b < LatencyHistogram::kBuckets - 1) {
    us >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

void LatencyHistogram::Record(double seconds) {
  if (seconds < 0) seconds = 0;
  const uint64_t us = static_cast<uint64_t>(seconds * 1e6);
  buckets_[BucketFor(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
}

double LatencyHistogram::MeanMs() const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) / n /
         1000.0;
}

double LatencyHistogram::SumSeconds() const {
  return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) / 1e6;
}

double LatencyHistogram::QuantileMs(double q) const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1)) + 1;
  for (int b = 0; b < kBuckets; ++b) {
    const uint64_t c = buckets_[b].load(std::memory_order_relaxed);
    if (rank <= c) {
      // Interpolate within the bucket, treating its c samples as spread
      // evenly over [lower, upper).  Bucket 0 spans [0, 2)us; the last
      // bucket is unbounded, so report its lower edge.
      const double lower =
          b == 0 ? 0.0 : static_cast<double>(uint64_t{1} << b);
      if (b == kBuckets - 1) return lower / 1000.0;
      const double upper = static_cast<double>(uint64_t{1} << (b + 1));
      const double us = lower + (upper - lower) *
                                    (static_cast<double>(rank) - 0.5) /
                                    static_cast<double>(c);
      return us / 1000.0;
    }
    rank -= c;
  }
  return static_cast<double>(uint64_t{1} << (kBuckets - 1)) / 1000.0;
}

std::vector<LatencyHistogram::CumulativeBucket>
LatencyHistogram::CumulativeBuckets() const {
  std::vector<CumulativeBucket> out;
  out.reserve(kBuckets);
  uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
    CumulativeBucket cb;
    // Upper bound of bucket b in seconds; the last bucket is +Inf.
    cb.le_seconds = b == kBuckets - 1
                        ? std::numeric_limits<double>::infinity()
                        : static_cast<double>(uint64_t{1} << (b + 1)) / 1e6;
    cb.cumulative = cumulative;
    out.push_back(cb);
  }
  return out;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
}

std::string ServiceMetrics::Dump() const {
  char buf[4096];
  std::snprintf(
      buf, sizeof(buf),
      "service.requests.submitted %llu\n"
      "service.requests.completed %llu\n"
      "service.requests.rejected %llu\n"
      "service.requests.infeasible %llu\n"
      "service.requests.parse_errors %llu\n"
      "service.cache.hits %llu\n"
      "service.cache.misses %llu\n"
      "service.effort.plans_costed %llu\n"
      "service.effort.jcrs_created %llu\n"
      "service.memory.bytes_charged %llu\n"
      "service.memory.request_peak_bytes %llu\n"
      "service.admission.waits %llu\n"
      "service.admission.timeouts %llu\n"
      "service.degrade.requests %llu\n"
      "service.degrade.attempts %llu\n"
      "service.degrade.breaker_skips %llu\n"
      "service.degrade.rung_dp %llu\n"
      "service.degrade.rung_idp %llu\n"
      "service.degrade.rung_sdp %llu\n"
      "service.degrade.rung_greedy %llu\n"
      "service.degrade.rung_goo %llu\n"
      "service.status.deadline_exceeded %llu\n"
      "service.status.memory_exceeded %llu\n"
      "service.status.cancelled %llu\n"
      "service.status.internal %llu\n"
      "service.cache.failures_propagated %llu\n"
      "service.shed.with_retry_hint %llu\n"
      "service.parallel.levels %llu\n"
      "service.parallel.scan_us %llu\n"
      "service.parallel.merge_us %llu\n"
      "service.obs.flight_dumps %llu\n"
      "service.obs.slo_burns %llu\n"
      "service.queue.depth %lld\n"
      "service.inflight %lld\n"
      "service.cache.entries %lld\n"
      "service.cache.resident_bytes %lld\n"
      "service.optimize_latency.count %llu\n"
      "service.optimize_latency.mean_ms %.3f\n"
      "service.optimize_latency.p50_ms %.3f\n"
      "service.optimize_latency.p99_ms %.3f\n",
      static_cast<unsigned long long>(requests_submitted.load()),
      static_cast<unsigned long long>(requests_completed.load()),
      static_cast<unsigned long long>(requests_rejected.load()),
      static_cast<unsigned long long>(requests_infeasible.load()),
      static_cast<unsigned long long>(parse_errors.load()),
      static_cast<unsigned long long>(cache_hits.load()),
      static_cast<unsigned long long>(cache_misses.load()),
      static_cast<unsigned long long>(plans_costed.load()),
      static_cast<unsigned long long>(jcrs_created.load()),
      static_cast<unsigned long long>(bytes_charged.load()),
      static_cast<unsigned long long>(request_peak_bytes.load()),
      static_cast<unsigned long long>(admission_waits.load()),
      static_cast<unsigned long long>(admission_timeouts.load()),
      static_cast<unsigned long long>(requests_degraded.load()),
      static_cast<unsigned long long>(degrade_attempts.load()),
      static_cast<unsigned long long>(breaker_skips.load()),
      static_cast<unsigned long long>(rung_dp.load()),
      static_cast<unsigned long long>(rung_idp.load()),
      static_cast<unsigned long long>(rung_sdp.load()),
      static_cast<unsigned long long>(rung_greedy.load()),
      static_cast<unsigned long long>(rung_goo.load()),
      static_cast<unsigned long long>(status_deadline_exceeded.load()),
      static_cast<unsigned long long>(status_memory_exceeded.load()),
      static_cast<unsigned long long>(status_cancelled.load()),
      static_cast<unsigned long long>(status_internal.load()),
      static_cast<unsigned long long>(cache_failures_propagated.load()),
      static_cast<unsigned long long>(shed_with_retry_hint.load()),
      static_cast<unsigned long long>(parallel_levels.load()),
      static_cast<unsigned long long>(parallel_scan_us.load()),
      static_cast<unsigned long long>(parallel_merge_us.load()),
      static_cast<unsigned long long>(flight_dumps.load()),
      static_cast<unsigned long long>(slo_burns.load()),
      static_cast<long long>(queue_depth.load()),
      static_cast<long long>(inflight.load()),
      static_cast<long long>(plan_cache_entries.load()),
      static_cast<long long>(plan_cache_bytes.load()),
      static_cast<unsigned long long>(optimize_latency.count()),
      optimize_latency.MeanMs(), optimize_latency.QuantileMs(0.5),
      optimize_latency.QuantileMs(0.99));
  return buf;
}

std::string ServiceMetrics::PrometheusText(const std::string& replica) const {
  std::string out;
  char line[256];
  // Label suffix stamped onto every plain sample, e.g. {replica="2"}.
  const std::string label =
      replica.empty() ? "" : "{replica=\"" + replica + "\"}";
  auto counter = [&](const char* name, const char* help, uint64_t value) {
    std::snprintf(line, sizeof(line),
                  "# HELP %s %s\n# TYPE %s counter\n%s%s %llu\n", name, help,
                  name, name, label.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  };
  auto gauge = [&](const char* name, const char* help, int64_t value) {
    std::snprintf(line, sizeof(line),
                  "# HELP %s %s\n# TYPE %s gauge\n%s%s %lld\n", name, help,
                  name, name, label.c_str(), static_cast<long long>(value));
    out += line;
  };
  // Cumulative seconds exposed as a float counter (Prometheus convention
  // for *_seconds_total series).
  auto seconds_counter = [&](const char* name, const char* help,
                             uint64_t micros) {
    std::snprintf(line, sizeof(line),
                  "# HELP %s %s\n# TYPE %s counter\n%s%s %.6f\n", name, help,
                  name, name, label.c_str(),
                  static_cast<double>(micros) / 1e6);
    out += line;
  };

  counter("sdp_service_requests_submitted_total",
          "Requests submitted to the optimizer service.",
          requests_submitted.load());
  counter("sdp_service_requests_completed_total",
          "Requests completed (any outcome).", requests_completed.load());
  counter("sdp_service_requests_rejected_total",
          "Requests rejected by admission control.",
          requests_rejected.load());
  counter("sdp_service_requests_infeasible_total",
          "Optimizations that exceeded their resource budget.",
          requests_infeasible.load());
  counter("sdp_service_parse_errors_total",
          "Requests whose SQL failed to parse.", parse_errors.load());
  counter("sdp_service_cache_hits_total", "Plan cache hits.",
          cache_hits.load());
  counter("sdp_service_cache_misses_total", "Plan cache misses.",
          cache_misses.load());
  counter("sdp_service_plans_costed_total",
          "Plan alternatives costed by computed (non-cached) runs.",
          plans_costed.load());
  counter("sdp_service_jcrs_created_total",
          "Join-composite relations created by computed runs.",
          jcrs_created.load());
  counter("sdp_service_bytes_charged_total",
          "Summed per-request peak working-set bytes.",
          bytes_charged.load());
  counter("sdp_service_admission_waits_total",
          "Requests that waited for the global memory cap.",
          admission_waits.load());
  counter("sdp_service_admission_timeouts_total",
          "Requests whose admission wait exceeded their deadline.",
          admission_timeouts.load());
  counter("sdp_service_requests_degraded_total",
          "Governed requests that escalated past their starting rung.",
          requests_degraded.load());
  counter("sdp_service_degrade_attempts_total",
          "Degradation-ladder rung attempts (including breaker skips).",
          degrade_attempts.load());
  counter("sdp_service_breaker_skips_total",
          "Rungs skipped because their circuit breaker was open.",
          breaker_skips.load());
  counter("sdp_service_rung_dp_total", "Requests resolved on the DP rung.",
          rung_dp.load());
  counter("sdp_service_rung_idp_total", "Requests resolved on the IDP rung.",
          rung_idp.load());
  counter("sdp_service_rung_sdp_total", "Requests resolved on the SDP rung.",
          rung_sdp.load());
  counter("sdp_service_rung_greedy_total",
          "Requests resolved on the greedy rung.", rung_greedy.load());
  counter("sdp_service_rung_goo_total",
          "Requests resolved on the greedy rung via Greedy Operator "
          "Ordering.",
          rung_goo.load());
  counter("sdp_service_status_deadline_exceeded_total",
          "Requests that failed with DEADLINE_EXCEEDED.",
          status_deadline_exceeded.load());
  counter("sdp_service_status_memory_exceeded_total",
          "Requests that failed with MEMORY_EXCEEDED.",
          status_memory_exceeded.load());
  counter("sdp_service_status_cancelled_total",
          "Requests that failed with CANCELLED.", status_cancelled.load());
  counter("sdp_service_status_internal_total",
          "Requests that failed with INTERNAL.", status_internal.load());
  counter("sdp_service_cache_failures_propagated_total",
          "Coalesced waiters handed the owner's typed failure.",
          cache_failures_propagated.load());
  counter("sdp_service_shed_with_retry_hint_total",
          "Load-shed rejections that carried a retry-after hint.",
          shed_with_retry_hint.load());
  counter("sdp_service_parallel_levels_total",
          "DP levels enumerated with intra-query sharding.",
          parallel_levels.load());
  seconds_counter("sdp_service_parallel_scan_seconds_total",
                  "Wall time spent in parallel candidate scans.",
                  parallel_scan_us.load());
  seconds_counter("sdp_service_parallel_merge_seconds_total",
                  "Wall time spent in deterministic candidate merges.",
                  parallel_merge_us.load());
  counter("sdp_service_flight_dumps_total",
          "Flight-recorder crash dumps written.", flight_dumps.load());
  counter("sdp_service_slo_burns_total",
          "SLO burn episodes (transitions into burning).", slo_burns.load());
  gauge("sdp_service_queue_depth", "Requests queued, not yet started.",
        queue_depth.load());
  gauge("sdp_service_inflight", "Requests currently being optimized.",
        inflight.load());
  gauge("sdp_service_plan_cache_entries",
        "Completed plan-cache entries resident.", plan_cache_entries.load());
  gauge("sdp_service_plan_cache_resident_bytes",
        "Arena bytes held by resident plan-cache entries.",
        plan_cache_bytes.load());
  gauge("sdp_request_peak_bytes",
        "Largest single-request optimizer memory high-watermark (bytes).",
        static_cast<int64_t>(request_peak_bytes.load()));

  const char* hist = "sdp_service_optimize_latency_seconds";
  // Histogram buckets merge the replica label with le=... inside one brace
  // pair, per the exposition format.
  const std::string in_brace =
      replica.empty() ? "" : "replica=\"" + replica + "\",";
  std::snprintf(line, sizeof(line),
                "# HELP %s Per-request optimize wall time.\n"
                "# TYPE %s histogram\n",
                hist, hist);
  out += line;
  for (const LatencyHistogram::CumulativeBucket& b :
       optimize_latency.CumulativeBuckets()) {
    if (std::isinf(b.le_seconds)) {
      std::snprintf(line, sizeof(line), "%s_bucket{%sle=\"+Inf\"} %llu\n",
                    hist, in_brace.c_str(),
                    static_cast<unsigned long long>(b.cumulative));
    } else {
      std::snprintf(line, sizeof(line), "%s_bucket{%sle=\"%.9g\"} %llu\n",
                    hist, in_brace.c_str(), b.le_seconds,
                    static_cast<unsigned long long>(b.cumulative));
    }
    out += line;
  }
  std::snprintf(line, sizeof(line), "%s_sum%s %.9g\n%s_count%s %llu\n", hist,
                label.c_str(), optimize_latency.SumSeconds(), hist,
                label.c_str(),
                static_cast<unsigned long long>(optimize_latency.count()));
  out += line;
  return out;
}

void ServiceMetrics::Reset() {
  requests_submitted.store(0);
  requests_completed.store(0);
  requests_rejected.store(0);
  requests_infeasible.store(0);
  parse_errors.store(0);
  cache_hits.store(0);
  cache_misses.store(0);
  plans_costed.store(0);
  jcrs_created.store(0);
  bytes_charged.store(0);
  admission_waits.store(0);
  admission_timeouts.store(0);
  requests_degraded.store(0);
  degrade_attempts.store(0);
  breaker_skips.store(0);
  rung_dp.store(0);
  rung_idp.store(0);
  rung_sdp.store(0);
  rung_greedy.store(0);
  rung_goo.store(0);
  status_deadline_exceeded.store(0);
  status_memory_exceeded.store(0);
  status_cancelled.store(0);
  status_internal.store(0);
  cache_failures_propagated.store(0);
  shed_with_retry_hint.store(0);
  parallel_levels.store(0);
  parallel_scan_us.store(0);
  parallel_merge_us.store(0);
  flight_dumps.store(0);
  slo_burns.store(0);
  request_peak_bytes.store(0);
  queue_depth.store(0);
  inflight.store(0);
  plan_cache_entries.store(0);
  plan_cache_bytes.store(0);
  optimize_latency.Reset();
}

}  // namespace sdp
