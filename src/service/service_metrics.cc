#include "service/service_metrics.h"

#include <cstdio>

namespace sdp {

namespace {

int BucketFor(uint64_t us) {
  int b = 0;
  while (us >= 2 && b < LatencyHistogram::kBuckets - 1) {
    us >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

void LatencyHistogram::Record(double seconds) {
  if (seconds < 0) seconds = 0;
  const uint64_t us = static_cast<uint64_t>(seconds * 1e6);
  buckets_[BucketFor(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
}

double LatencyHistogram::MeanMs() const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) / n /
         1000.0;
}

double LatencyHistogram::QuantileMs(double q) const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1)) + 1;
  for (int b = 0; b < kBuckets; ++b) {
    const uint64_t c = buckets_[b].load(std::memory_order_relaxed);
    if (rank <= c) {
      return static_cast<double>(uint64_t{1} << b) / 1000.0;
    }
    rank -= c;
  }
  return static_cast<double>(uint64_t{1} << (kBuckets - 1)) / 1000.0;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
}

std::string ServiceMetrics::Dump() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "service.requests.submitted %llu\n"
      "service.requests.completed %llu\n"
      "service.requests.rejected %llu\n"
      "service.requests.infeasible %llu\n"
      "service.requests.parse_errors %llu\n"
      "service.cache.hits %llu\n"
      "service.cache.misses %llu\n"
      "service.effort.plans_costed %llu\n"
      "service.effort.jcrs_created %llu\n"
      "service.memory.bytes_charged %llu\n"
      "service.admission.waits %llu\n"
      "service.queue.depth %lld\n"
      "service.inflight %lld\n"
      "service.optimize_latency.count %llu\n"
      "service.optimize_latency.mean_ms %.3f\n"
      "service.optimize_latency.p50_ms %.3f\n"
      "service.optimize_latency.p99_ms %.3f\n",
      static_cast<unsigned long long>(requests_submitted.load()),
      static_cast<unsigned long long>(requests_completed.load()),
      static_cast<unsigned long long>(requests_rejected.load()),
      static_cast<unsigned long long>(requests_infeasible.load()),
      static_cast<unsigned long long>(parse_errors.load()),
      static_cast<unsigned long long>(cache_hits.load()),
      static_cast<unsigned long long>(cache_misses.load()),
      static_cast<unsigned long long>(plans_costed.load()),
      static_cast<unsigned long long>(jcrs_created.load()),
      static_cast<unsigned long long>(bytes_charged.load()),
      static_cast<unsigned long long>(admission_waits.load()),
      static_cast<long long>(queue_depth.load()),
      static_cast<long long>(inflight.load()),
      static_cast<unsigned long long>(optimize_latency.count()),
      optimize_latency.MeanMs(), optimize_latency.QuantileMs(0.5),
      optimize_latency.QuantileMs(0.99));
  return buf;
}

void ServiceMetrics::Reset() {
  requests_submitted.store(0);
  requests_completed.store(0);
  requests_rejected.store(0);
  requests_infeasible.store(0);
  parse_errors.store(0);
  cache_hits.store(0);
  cache_misses.store(0);
  plans_costed.store(0);
  jcrs_created.store(0);
  bytes_charged.store(0);
  admission_waits.store(0);
  queue_depth.store(0);
  inflight.store(0);
  optimize_latency.Reset();
}

}  // namespace sdp
