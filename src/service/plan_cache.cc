#include "service/plan_cache.h"

#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "optimizer/enumerator.h"
#include "plan/plan_node.h"

namespace sdp {

// One cached (or in-flight) optimization outcome.  The payload fields are
// written by exactly one thread (the ticket owner) before `state` is
// released to kReady, and are immutable afterwards; readers acquire
// `state` before touching them.
struct CacheSlot {
  enum State : int { kComputing = 0, kReady = 1, kFailed = 2 };

  std::mutex mu;
  std::condition_variable cv;
  std::atomic<int> state{kComputing};

  // CanonicalQueryForm::hash of the key's structural prefix; the stripe
  // selector.  Recorded at insertion so exported entries can be
  // re-installed into the stripe LookupOrBegin will probe.
  uint64_t form_hash = 0;

  // Why the last compute failed; written under `mu` before state is
  // released to kFailed, read under `mu` by observers (a retaken slot can
  // fail again with a different status, so this is not write-once).
  OptStatus fail_status;

  // --- payload (valid once state == kReady) ---
  std::shared_ptr<Arena> arena;
  const PlanNode* plan = nullptr;  // In the inserter's position space.
  double cost = 0;
  double rows = 0;
  SearchCounters counters;
  std::string algorithm;
  double elapsed_seconds = 0;   // Of the original (miss) run.
  double peak_memory_mb = 0;    // Of the original (miss) run.
  std::vector<int> perm;        // Inserter position -> canonical position.
  // Inserter-space descriptions needed to translate the plan into another
  // isomorphic query's space: edge endpoints by edge index, and one member
  // column per ordering id (equivalence classes, plus the non-join ORDER BY
  // column when present -- mirroring OrderingSpace::IdFor).
  std::vector<std::pair<ColumnRef, ColumnRef>> edge_endpoints;
  std::vector<ColumnRef> ordering_reps;
};

struct PlanCache::Stripe {
  std::mutex mu;
  std::unordered_map<std::string, std::shared_ptr<CacheSlot>> map;
};

namespace {

// Packs a normalized column pair into one key (positions and column
// indices are small; 16 bits each is generous).
uint64_t EdgeKey(ColumnRef a, ColumnRef b) {
  if (b.rel < a.rel || (b.rel == a.rel && b.col < a.col)) std::swap(a, b);
  const uint64_t lo = (static_cast<uint64_t>(a.rel) << 16) |
                      static_cast<uint64_t>(a.col);
  const uint64_t hi = (static_cast<uint64_t>(b.rel) << 16) |
                      static_cast<uint64_t>(b.col);
  return (lo << 32) | hi;
}

// Index maps translating the cached plan's labels into the probe query's.
struct RemapTables {
  std::vector<int> rel_map;   // Inserter position -> probe position.
  std::vector<int> edge_map;  // Inserter edge index -> probe edge index.
  std::vector<int> ord_map;   // Inserter ordering id -> probe ordering id.
  bool ok = true;
};

RemapTables BuildRemapTables(const CacheSlot& slot, const Query& query,
                             const std::vector<int>& probe_perm) {
  RemapTables t;
  const int n = static_cast<int>(probe_perm.size());
  if (static_cast<int>(slot.perm.size()) != n ||
      query.graph.num_relations() != n) {
    t.ok = false;
    return t;
  }

  std::vector<int> canon_to_probe(n, -1);
  for (int pos = 0; pos < n; ++pos) canon_to_probe[probe_perm[pos]] = pos;
  t.rel_map.resize(n);
  for (int pos = 0; pos < n; ++pos) {
    t.rel_map[pos] = canon_to_probe[slot.perm[pos]];
  }

  std::unordered_map<uint64_t, int> probe_edges;
  probe_edges.reserve(query.graph.edges().size());
  for (int e = 0; e < static_cast<int>(query.graph.edges().size()); ++e) {
    const JoinEdge& edge = query.graph.edges()[e];
    probe_edges.emplace(EdgeKey(edge.left, edge.right), e);
  }
  t.edge_map.resize(slot.edge_endpoints.size());
  for (size_t e = 0; e < slot.edge_endpoints.size(); ++e) {
    ColumnRef l = slot.edge_endpoints[e].first;
    ColumnRef r = slot.edge_endpoints[e].second;
    l.rel = t.rel_map[l.rel];
    r.rel = t.rel_map[r.rel];
    const auto it = probe_edges.find(EdgeKey(l, r));
    if (it == probe_edges.end()) {
      t.ok = false;
      return t;
    }
    t.edge_map[e] = it->second;
  }

  const OrderingSpace space(
      query.graph, query.order_by.has_value()
                       ? std::optional<ColumnRef>(query.order_by->column)
                       : std::nullopt);
  t.ord_map.resize(slot.ordering_reps.size());
  for (size_t o = 0; o < slot.ordering_reps.size(); ++o) {
    ColumnRef rep = slot.ordering_reps[o];
    rep.rel = t.rel_map[rep.rel];
    t.ord_map[o] = space.IdFor(rep);
    if (t.ord_map[o] < 0) {
      t.ok = false;
      return t;
    }
  }
  return t;
}

const PlanNode* RemapTree(const PlanNode* node, Arena* arena,
                          const RemapTables& t, bool* ok) {
  if (node == nullptr || !*ok) return nullptr;
  PlanNode* copy = arena->New<PlanNode>(*node);
  copy->pool_id = 0;
  if (node->rel >= 0) copy->rel = t.rel_map[node->rel];
  if (node->edge >= 0) {
    if (node->edge >= static_cast<int>(t.edge_map.size())) {
      *ok = false;
      return nullptr;
    }
    copy->edge = t.edge_map[node->edge];
  }
  if (node->ordering >= 0) {
    if (node->ordering >= static_cast<int>(t.ord_map.size())) {
      *ok = false;
      return nullptr;
    }
    copy->ordering = t.ord_map[node->ordering];
  }
  RelSet rels;
  node->rels.ForEach([&](int r) { rels = rels.With(t.rel_map[r]); });
  copy->rels = rels;
  copy->outer = RemapTree(node->outer, arena, t, ok);
  copy->inner = RemapTree(node->inner, arena, t, ok);
  return *ok ? copy : nullptr;
}

// Clones the slot's plan into a fresh arena, relabeled for `query`.
bool ServeFromSlot(const CacheSlot& slot, const Query& query,
                   const std::vector<int>& probe_perm, OptimizeResult* out) {
  const RemapTables tables = BuildRemapTables(slot, query, probe_perm);
  if (!tables.ok) return false;
  auto arena = std::make_shared<Arena>();
  bool ok = true;
  const PlanNode* plan = RemapTree(slot.plan, arena.get(), tables, &ok);
  if (!ok || plan == nullptr) return false;

  out->algorithm = slot.algorithm;
  out->feasible = true;
  out->plan = plan;
  out->plan_arena = std::move(arena);
  out->cost = slot.cost;
  out->rows = slot.rows;
  out->counters = slot.counters;
  out->elapsed_seconds = slot.elapsed_seconds;
  out->peak_memory_mb = slot.peak_memory_mb;
  return true;
}

}  // namespace

PlanCache::PlanCache(PlanCacheConfig config) : config_(config) {
  uint32_t stripes = 1;
  while (stripes < static_cast<uint32_t>(
                       config_.num_stripes < 1 ? 1 : config_.num_stripes)) {
    stripes <<= 1;
  }
  stripe_mask_ = stripes - 1;
  stripes_.reserve(stripes);
  for (uint32_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

PlanCache::~PlanCache() = default;

PlanCache::Stripe& PlanCache::StripeFor(uint64_t hash) const {
  return *stripes_[static_cast<size_t>(hash & stripe_mask_)];
}

PlanCache::Outcome PlanCache::LookupOrBegin(const std::string& full_key,
                                            const CanonicalQueryForm& form,
                                            const Query& query,
                                            Ticket* ticket,
                                            OptimizeResult* result) {
  ticket->slot.reset();
  if (!config_.enabled) return Outcome::kDisabled;

  Stripe& stripe = StripeFor(form.hash);
  std::shared_ptr<CacheSlot> slot;
  bool created = false;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.map.find(full_key);
    if (it == stripe.map.end()) {
      slot = std::make_shared<CacheSlot>();
      slot->form_hash = form.hash;
      stripe.map.emplace(full_key, slot);
      created = true;
    } else {
      slot = it->second;
    }
  }
  if (created) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    ticket->slot = std::move(slot);
    return Outcome::kMiss;
  }

  bool waited = false;
  for (;;) {
    const int state = slot->state.load(std::memory_order_acquire);
    if (state == CacheSlot::kReady) {
      if (!ServeFromSlot(*slot, query, form.perm, result)) {
        // Key matched but the plan could not be translated; treat as an
        // uncacheable miss (the caller computes without a ticket).
        remap_failures_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return Outcome::kMiss;
      }
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (waited) coalesced_.fetch_add(1, std::memory_order_relaxed);
      return Outcome::kHit;
    }
    if (state == CacheSlot::kFailed) {
      // Take over the failed computation so the key can still be filled.
      // Exactly one observer wins this CAS and retries; the rest inherit
      // the owner's typed error instead of stampeding into a recompute of
      // work that just failed.
      int expected = CacheSlot::kFailed;
      if (slot->state.compare_exchange_strong(expected, CacheSlot::kComputing,
                                              std::memory_order_acq_rel)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        ticket->slot = std::move(slot);
        return Outcome::kMiss;
      }
      fail_propagated_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(slot->mu);
        result->status = slot->fail_status;
      }
      if (result->status.ok()) {
        result->status = OptStatus::Make(OptStatusCode::kInternal,
                                         "coalesced computation failed");
      }
      result->feasible = false;
      return Outcome::kFailed;
    }
    // In flight elsewhere: coalesce instead of duplicating the work.
    waited = true;
    std::unique_lock<std::mutex> lock(slot->mu);
    slot->cv.wait(lock, [&slot] {
      return slot->state.load(std::memory_order_acquire) !=
             CacheSlot::kComputing;
    });
  }
}

void PlanCache::Fill(Ticket ticket, const Query& query,
                     const CanonicalQueryForm& form,
                     const OptimizeResult& result) {
  if (!ticket.valid()) return;
  if (!result.feasible || result.plan == nullptr) {
    Abandon(std::move(ticket));
    return;
  }
  CacheSlot& slot = *ticket.slot;
  SDP_DCHECK(slot.state.load(std::memory_order_relaxed) ==
             CacheSlot::kComputing);

  slot.arena = std::make_shared<Arena>();
  slot.plan = ClonePlanTree(result.plan, slot.arena.get());
  slot.cost = result.cost;
  slot.rows = result.rows;
  slot.counters = result.counters;
  slot.algorithm = result.algorithm;
  slot.elapsed_seconds = result.elapsed_seconds;
  slot.peak_memory_mb = result.peak_memory_mb;
  slot.perm = form.perm;

  const JoinGraph& graph = query.graph;
  slot.edge_endpoints.clear();
  slot.edge_endpoints.reserve(graph.edges().size());
  for (const JoinEdge& e : graph.edges()) {
    slot.edge_endpoints.emplace_back(e.left, e.right);
  }
  slot.ordering_reps.clear();
  for (int eq = 0; eq < graph.num_equiv_classes(); ++eq) {
    SDP_DCHECK(!graph.EquivClassMembers(eq).empty());
    slot.ordering_reps.push_back(graph.EquivClassMembers(eq).front());
  }
  if (query.order_by.has_value() &&
      graph.EquivClass(query.order_by->column) < 0) {
    // The non-join ORDER BY column owns the one extra ordering id.
    slot.ordering_reps.push_back(query.order_by->column);
  }

  {
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.state.store(CacheSlot::kReady, std::memory_order_release);
  }
  slot.cv.notify_all();
}

void PlanCache::Abandon(Ticket ticket, OptStatus status) {
  if (!ticket.valid()) return;
  failures_.fetch_add(1, std::memory_order_relaxed);
  if (status.ok()) {
    status = OptStatus::Make(OptStatusCode::kInternal,
                             "computation abandoned");
  }
  {
    std::lock_guard<std::mutex> lock(ticket.slot->mu);
    ticket.slot->fail_status = std::move(status);
    ticket.slot->state.store(CacheSlot::kFailed, std::memory_order_release);
  }
  ticket.slot->cv.notify_all();
}

void PlanCache::Abandon(Ticket ticket) {
  Abandon(std::move(ticket), OptStatus::Make(OptStatusCode::kInternal,
                                             "computation abandoned"));
}

void PlanCache::Clear() {
  // Dropping the map entries is safe mid-flight: ticket owners and waiters
  // hold their own shared_ptr to the slot and finish independently; the
  // orphaned slot simply never serves another request.
  for (auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->map.clear();
  }
}

namespace {

// Copies a ready slot's payload into its portable image.  The caller must
// have observed state == kReady (acquire) so the payload is immutable.
void ExportSlot(const std::string& key, const CacheSlot& slot,
                PlanCacheExportEntry* out) {
  out->key = key;
  out->form_hash = slot.form_hash;
  out->plan.clear();
  FlattenPlanTree(slot.plan, &out->plan);
  out->cost = slot.cost;
  out->rows = slot.rows;
  out->counters = slot.counters;
  out->algorithm = slot.algorithm;
  out->elapsed_seconds = slot.elapsed_seconds;
  out->peak_memory_mb = slot.peak_memory_mb;
  out->perm = slot.perm;
  out->edge_endpoints = slot.edge_endpoints;
  out->ordering_reps = slot.ordering_reps;
}

}  // namespace

std::vector<PlanCacheExportEntry> PlanCache::Export() const {
  std::vector<PlanCacheExportEntry> out;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const auto& [key, slot] : stripe->map) {
      if (slot->state.load(std::memory_order_acquire) != CacheSlot::kReady) {
        continue;
      }
      out.emplace_back();
      ExportSlot(key, *slot, &out.back());
    }
  }
  return out;
}

bool PlanCache::ExportEntry(const std::string& full_key,
                            PlanCacheExportEntry* out) const {
  // The stripe selector is the *structural* hash, unknown from the full
  // key alone; with a bounded stripe count a map probe per stripe is
  // cheaper than carrying the hash through every caller.
  for (const auto& stripe : stripes_) {
    std::shared_ptr<CacheSlot> slot;
    {
      std::lock_guard<std::mutex> lock(stripe->mu);
      const auto it = stripe->map.find(full_key);
      if (it == stripe->map.end()) continue;
      slot = it->second;
    }
    if (slot->state.load(std::memory_order_acquire) != CacheSlot::kReady) {
      return false;
    }
    ExportSlot(full_key, *slot, out);
    return true;
  }
  return false;
}

bool PlanCache::Install(const PlanCacheExportEntry& entry) {
  if (!config_.enabled) return false;
  if (entry.key.empty() || entry.plan.empty()) return false;

  auto slot = std::make_shared<CacheSlot>();
  slot->form_hash = entry.form_hash;
  slot->arena = std::make_shared<Arena>();
  slot->plan = UnflattenPlanTree(entry.plan, slot->arena.get());
  if (slot->plan == nullptr) return false;  // Malformed image.
  slot->cost = entry.cost;
  slot->rows = entry.rows;
  slot->counters = entry.counters;
  slot->algorithm = entry.algorithm;
  slot->elapsed_seconds = entry.elapsed_seconds;
  slot->peak_memory_mb = entry.peak_memory_mb;
  slot->perm = entry.perm;
  slot->edge_endpoints = entry.edge_endpoints;
  slot->ordering_reps = entry.ordering_reps;
  slot->state.store(CacheSlot::kReady, std::memory_order_release);

  Stripe& stripe = StripeFor(entry.form_hash);
  std::lock_guard<std::mutex> lock(stripe.mu);
  // First writer wins; a local fill or in-flight compute is never
  // displaced by a broadcast or snapshot entry.
  return stripe.map.emplace(entry.key, std::move(slot)).second;
}

PlanCacheStats PlanCache::Stats() const {
  PlanCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.failures = failures_.load(std::memory_order_relaxed);
  stats.fail_propagated = fail_propagated_.load(std::memory_order_relaxed);
  stats.remap_failures = remap_failures_.load(std::memory_order_relaxed);
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const auto& [key, slot] : stripe->map) {
      if (slot->state.load(std::memory_order_acquire) == CacheSlot::kReady) {
        ++stats.entries;
        // kReady is published after `arena` is set (release under mu), so
        // the pointer is stable and its size final.
        if (slot->arena != nullptr) {
          stats.resident_bytes += slot->arena->allocated_bytes();
        }
      }
    }
  }
  return stats;
}

}  // namespace sdp
