#include "sql/parser.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace sdp {

namespace {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kInvalid,
  kStar,
  kComma,
  kDot,
  kEquals,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int position = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) { Advance(); }

  const Token& current() const { return current_; }

  void Advance() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    current_.position = static_cast<int>(pos_);
    if (pos_ >= input_.size()) {
      current_ = Token{TokenKind::kEnd, "", static_cast<int>(pos_)};
      return;
    }
    const char c = input_[pos_];
    if (c == '*' || c == ',' || c == '.' || c == '=') {
      current_.kind = c == '*'   ? TokenKind::kStar
                      : c == ',' ? TokenKind::kComma
                      : c == '.' ? TokenKind::kDot
                                 : TokenKind::kEquals;
      current_.text = std::string(1, c);
      ++pos_;
      return;
    }
    if (c == '<' || c == '>') {
      const bool eq = pos_ + 1 < input_.size() && input_[pos_ + 1] == '=';
      current_.kind = c == '<' ? (eq ? TokenKind::kLessEq : TokenKind::kLess)
                               : (eq ? TokenKind::kGreaterEq
                                     : TokenKind::kGreater);
      current_.text = input_.substr(pos_, eq ? 2 : 1);
      pos_ += eq ? 2 : 1;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < input_.size() &&
         std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
      size_t start = pos_;
      if (c == '-') ++pos_;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
      current_.kind = TokenKind::kNumber;
      current_.text = input_.substr(start, pos_ - start);
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = TokenKind::kIdentifier;
      current_.text = input_.substr(start, pos_ - start);
      return;
    }
    // Anything else is an error token; it must never masquerade as
    // end-of-input, or trailing garbage would be silently accepted.
    current_.kind = TokenKind::kInvalid;
    current_.text = std::string(1, c);
    ++pos_;
  }

 private:
  const std::string& input_;
  size_t pos_ = 0;
  Token current_;
};

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

// Recursive-descent parser with catalog binding.
class Parser {
 public:
  Parser(const std::string& sql, const Catalog& catalog)
      : lexer_(sql), catalog_(&catalog) {}

  ParseResult Run() {
    if (!ExpectKeyword("select")) return Error();
    if (!ParseSelectList()) return Error();
    if (!ExpectKeyword("from")) return Error();
    if (!ParseFromList()) return Error();
    if (IsKeyword("where")) {
      lexer_.Advance();
      if (!ParseQuals()) return Error();
    }
    std::optional<ColumnRef> order_col;
    if (IsKeyword("order")) {
      lexer_.Advance();
      if (!ExpectKeyword("by")) return Error();
      ColumnRef c;
      if (!ParseQualifiedColumn(&c)) return Error();
      order_col = c;
    }
    if (lexer_.current().kind != TokenKind::kEnd) {
      return Fail(lexer_.current().kind == TokenKind::kInvalid
                      ? "unrecognized character '" + lexer_.current().text +
                            "'"
                      : "unexpected input after statement");
    }
    if (bindings_.empty()) return Fail("no tables in FROM");

    // Build the bound join graph.
    std::vector<int> table_ids;
    table_ids.reserve(bindings_.size());
    for (const auto& b : bindings_) table_ids.push_back(b.table_id);
    JoinGraph graph(table_ids);
    for (const auto& [l, r] : quals_) {
      if (l.rel == r.rel) {
        return Fail("predicate joins a relation with itself");
      }
      graph.AddEdge(l, r);
    }
    graph.AddImpliedEdges();
    if (!graph.IsConnected(graph.AllRelations())) {
      return Fail(
          "join graph is not connected (cartesian products unsupported)");
    }

    ParsedQuery out{Query{std::move(graph), std::nullopt, filters_}, {},
                    select_};
    if (order_col.has_value()) {
      out.query.order_by = OrderRequirement{*order_col};
    }
    for (const auto& b : bindings_) out.binding_names.push_back(b.name);
    // Late-bind select columns were recorded before positions finalized;
    // they are already ColumnRefs, nothing further to do.
    return out;
  }

 private:
  struct Binding {
    std::string name;  // Alias, or the table name itself.
    int table_id = -1;
  };

  bool IsKeyword(const std::string& kw) const {
    return lexer_.current().kind == TokenKind::kIdentifier &&
           Lower(lexer_.current().text) == kw;
  }

  bool ExpectKeyword(const std::string& kw) {
    if (!IsKeyword(kw)) {
      return Fail2("expected keyword '" + kw + "'");
    }
    lexer_.Advance();
    return true;
  }

  bool ParseSelectList() {
    if (lexer_.current().kind == TokenKind::kStar) {
      lexer_.Advance();
      return true;
    }
    for (;;) {
      pending_select_.push_back(PendingColumn());
      if (!ParsePendingColumn(&pending_select_.back())) return false;
      if (lexer_.current().kind != TokenKind::kComma) break;
      lexer_.Advance();
    }
    return true;
  }

  bool ParseFromList() {
    for (;;) {
      if (lexer_.current().kind != TokenKind::kIdentifier) {
        return Fail2("expected table name");
      }
      const std::string table = lexer_.current().text;
      const int table_pos = lexer_.current().position;
      lexer_.Advance();
      std::string alias = table;
      if (lexer_.current().kind == TokenKind::kIdentifier &&
          !IsKeyword("where") && !IsKeyword("order")) {
        alias = lexer_.current().text;
        lexer_.Advance();
      }
      const int id = catalog_->FindTable(table);
      if (id < 0) {
        error_ = ParseError{"unknown table '" + table + "'", table_pos};
        failed_ = true;
        return false;
      }
      for (const Binding& b : bindings_) {
        if (b.name == alias) {
          return Fail2("duplicate binding '" + alias + "'");
        }
      }
      bindings_.push_back(Binding{alias, id});
      if (lexer_.current().kind != TokenKind::kComma) break;
      lexer_.Advance();
    }
    // Resolve select-list columns now that bindings exist.
    for (const auto& pc : pending_select_) {
      ColumnRef ref;
      if (!ResolveColumn(pc, &ref)) return false;
      select_.push_back(ref);
    }
    return true;
  }

  struct PendingColumn {
    std::string binding;
    std::string column;
    int position = 0;
  };

  bool ParsePendingColumn(PendingColumn* out) {
    if (lexer_.current().kind != TokenKind::kIdentifier) {
      return Fail2("expected qualified column (binding.column)");
    }
    out->binding = lexer_.current().text;
    out->position = lexer_.current().position;
    lexer_.Advance();
    if (lexer_.current().kind != TokenKind::kDot) {
      return Fail2("expected '.' in qualified column");
    }
    lexer_.Advance();
    if (lexer_.current().kind != TokenKind::kIdentifier) {
      return Fail2("expected column name after '.'");
    }
    out->column = lexer_.current().text;
    lexer_.Advance();
    return true;
  }

  bool ResolveColumn(const PendingColumn& pc, ColumnRef* out) {
    int rel = -1;
    for (size_t i = 0; i < bindings_.size(); ++i) {
      if (bindings_[i].name == pc.binding) {
        rel = static_cast<int>(i);
        break;
      }
    }
    if (rel < 0) {
      error_ = ParseError{"unknown binding '" + pc.binding + "'", pc.position};
      failed_ = true;
      return false;
    }
    const Table& table = catalog_->table(bindings_[rel].table_id);
    int col = -1;
    for (size_t c = 0; c < table.columns.size(); ++c) {
      if (table.columns[c].name == pc.column) {
        col = static_cast<int>(c);
        break;
      }
    }
    if (col < 0) {
      error_ = ParseError{"unknown column '" + pc.column + "' in '" +
                              pc.binding + "'",
                          pc.position};
      failed_ = true;
      return false;
    }
    *out = ColumnRef{rel, col};
    return true;
  }

  bool ParseQualifiedColumn(ColumnRef* out) {
    PendingColumn pc;
    if (!ParsePendingColumn(&pc)) return false;
    return ResolveColumn(pc, out);
  }

  bool ParseQuals() {
    for (;;) {
      ColumnRef left;
      if (!ParseQualifiedColumn(&left)) return false;
      CompareOp op;
      switch (lexer_.current().kind) {
        case TokenKind::kEquals:
          op = CompareOp::kEq;
          break;
        case TokenKind::kLess:
          op = CompareOp::kLt;
          break;
        case TokenKind::kLessEq:
          op = CompareOp::kLe;
          break;
        case TokenKind::kGreater:
          op = CompareOp::kGt;
          break;
        case TokenKind::kGreaterEq:
          op = CompareOp::kGe;
          break;
        default:
          return Fail2("expected comparison operator");
      }
      lexer_.Advance();
      if (lexer_.current().kind == TokenKind::kNumber) {
        // Single-table filter: column op constant.
        errno = 0;
        char* end = nullptr;
        const int64_t value =
            std::strtoll(lexer_.current().text.c_str(), &end, 10);
        if (errno == ERANGE || end == nullptr || *end != '\0') {
          return Fail2("integer literal out of range");
        }
        filters_.push_back(FilterPredicate{left, op, value});
        lexer_.Advance();
      } else {
        // Join predicate: equijoins only.
        if (op != CompareOp::kEq) {
          return Fail2(
              "only equijoin predicates are supported between columns");
        }
        ColumnRef right;
        if (!ParseQualifiedColumn(&right)) return false;
        quals_.emplace_back(left, right);
      }
      if (!IsKeyword("and")) break;
      lexer_.Advance();
    }
    return true;
  }

  bool Fail2(const std::string& message) {
    if (!failed_) {
      error_ = ParseError{message, lexer_.current().position};
      failed_ = true;
    }
    return false;
  }

  ParseResult Fail(const std::string& message) {
    Fail2(message);
    return error_;
  }

  ParseResult Error() const { return error_; }

  Lexer lexer_;
  const Catalog* catalog_;
  std::vector<Binding> bindings_;
  std::vector<PendingColumn> pending_select_;
  std::vector<ColumnRef> select_;
  std::vector<std::pair<ColumnRef, ColumnRef>> quals_;
  std::vector<FilterPredicate> filters_;
  ParseError error_;
  bool failed_ = false;
};

}  // namespace

ParseResult ParseSelect(const std::string& sql, const Catalog& catalog) {
  Parser parser(sql, catalog);
  return parser.Run();
}

}  // namespace sdp
