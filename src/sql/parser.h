#ifndef SDPOPT_SQL_PARSER_H_
#define SDPOPT_SQL_PARSER_H_

#include <string>
#include <variant>
#include <vector>

#include "catalog/catalog.h"
#include "query/join_graph.h"

namespace sdp {

// A parsed SELECT statement bound against a catalog, ready for the
// optimizers.  Grammar (keywords case-insensitive):
//
//   SELECT select_list
//   FROM table [alias] (, table [alias])*
//   [WHERE qual (AND qual)*]
//   [ORDER BY qualified_column]
//
//   select_list      := '*' | qualified_column (',' qualified_column)*
//   qual             := qualified_column '=' qualified_column   (equijoin)
//                     | qualified_column cmp integer            (filter)
//   cmp              := '=' | '<' | '<=' | '>' | '>='
//   qualified_column := name '.' name
//
// Join predicates between distinct relations become join-graph edges; the
// parser also closes the edge set over shared join columns (the implied
// edges of Section 2.1.4), exactly as the PostgreSQL rewriter would.
struct ParsedQuery {
  Query query;
  // Alias (or table name) bound to each graph position.
  std::vector<std::string> binding_names;
  // Select-list columns; empty means '*'.
  std::vector<ColumnRef> select_columns;
};

// Why a statement was rejected, with the byte offset of the offending
// token.
struct ParseError {
  std::string message;
  int position = 0;
};

using ParseResult = std::variant<ParsedQuery, ParseError>;

// Parses and binds one SELECT statement.  Table and column names resolve
// against `catalog`; unknown names, self-joins of one binding, non-equi
// predicates and trailing garbage are errors.
ParseResult ParseSelect(const std::string& sql, const Catalog& catalog);

}  // namespace sdp

#endif  // SDPOPT_SQL_PARSER_H_
