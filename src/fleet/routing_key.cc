#include "fleet/routing_key.h"

#include "cost/cost_model.h"
#include "service/plan_fingerprint.h"

namespace sdp {

std::string FleetRoutingKey(const FleetRequest& request,
                            const Catalog& catalog,
                            const StatsCatalog& stats) {
  const CostModel cost(catalog, stats, request.query.graph, CostParams(),
                       request.query.filters);
  const CanonicalQueryForm form = CanonicalizeQuery(request.query, cost);
  return form.key + "|algo=" +
         std::to_string(static_cast<int>(request.algo)) + "/" +
         std::to_string(request.idp_k) + "|enum=" +
         EnumeratorName(request.enumerator);
}

}  // namespace sdp
