#include "fleet/supervisor.h"

#include <signal.h>
#include <unistd.h>

#include "common/socket_util.h"
#include "common/subprocess.h"

namespace sdp {

FleetSupervisor::FleetSupervisor(FleetConfig config)
    : config_(std::move(config)) {}

FleetSupervisor::~FleetSupervisor() { Stop(); }

ReplicaConfig FleetSupervisor::MakeReplicaConfig(int i) const {
  ReplicaConfig rc;
  rc.replica_id = i;
  rc.listen_fd = replica_listen_fds_[i];
  rc.obs_port = config_.replica_obs_base_port > 0
                    ? config_.replica_obs_base_port + i
                    : 0;
  if (!config_.snapshot_dir.empty()) {
    rc.snapshot_path =
        config_.snapshot_dir + "/replica" + std::to_string(i) + ".snap";
  }
  rc.schema = config_.schema;
  rc.service = config_.service;
  return rc;
}

pid_t FleetSupervisor::ForkReplica(int i) {
  const ReplicaConfig rc = MakeReplicaConfig(i);
  const int keep_fd = replica_listen_fds_[i];
  return SpawnProcess([rc, keep_fd]() {
    // Shed every inherited descriptor except this replica's own listen
    // socket: sibling listen fds (accept races), router sockets and any
    // client connections the supervisor holds.
    CloseAllFdsExcept({keep_fd});
    return ReplicaMain(rc);
  });
}

bool FleetSupervisor::Start(std::string* error) {
  if (started_) {
    if (error != nullptr) *error = "fleet already started";
    return false;
  }
  if (config_.num_replicas < 1) {
    if (error != nullptr) *error = "num_replicas must be >= 1";
    return false;
  }

  // 1. Bind every replica listen socket in the parent so the ports are
  // known up front and survive replica restarts.
  replica_listen_fds_.assign(config_.num_replicas, -1);
  replica_ports_.assign(config_.num_replicas, 0);
  replica_pids_.assign(config_.num_replicas, -1);
  for (int i = 0; i < config_.num_replicas; ++i) {
    const int fd = ListenLocalhost(0, error);
    if (fd < 0) {
      Stop();
      return false;
    }
    replica_listen_fds_[i] = fd;
    replica_ports_[i] = BoundPort(fd);
  }

  // 2. Fork the replicas.
  for (int i = 0; i < config_.num_replicas; ++i) {
    replica_pids_[i] = ForkReplica(i);
    if (replica_pids_[i] < 0) {
      if (error != nullptr) *error = "fork failed";
      Stop();
      return false;
    }
  }

  // 3. Router (in this process).
  router_listen_fd_ = ListenLocalhost(config_.router_port, error);
  if (router_listen_fd_ < 0) {
    Stop();
    return false;
  }
  router_port_ = BoundPort(router_listen_fd_);
  RouterConfig router_config;
  router_config.listen_fd = router_listen_fd_;
  router_config.replica_ports = replica_ports_;
  // Replica introspection ports for /dtracez's span collector (zeros when
  // replica HTTP is disabled; the router then renders its own spans only).
  router_config.replica_obs_ports.assign(config_.num_replicas, 0);
  for (int i = 0; i < config_.num_replicas; ++i) {
    router_config.replica_obs_ports[i] = MakeReplicaConfig(i).obs_port;
  }
  router_config.vnodes = config_.vnodes;
  router_config.max_attempts = config_.max_attempts;
  router_config.health_interval_ms = config_.health_interval_ms;
  router_config.obs_port = config_.router_obs_port;
  router_config.schema = config_.schema;
  router_ = std::make_unique<FleetRouter>(std::move(router_config));
  started_ = true;  // From here on Stop() must run even on router failure.
  if (!router_->Start(error)) {
    Stop();
    return false;
  }
  return true;
}

void FleetSupervisor::Stop() {
  if (router_ != nullptr) {
    router_->Stop();
    router_.reset();
  }
  for (size_t i = 0; i < replica_pids_.size(); ++i) {
    if (replica_pids_[i] > 0) {
      KillProcess(replica_pids_[i], SIGTERM);
    }
  }
  for (size_t i = 0; i < replica_pids_.size(); ++i) {
    if (replica_pids_[i] > 0) {
      // Graceful drain writes the snapshot; give it time, then escalate.
      if (WaitProcess(replica_pids_[i], 10000) < 0) {
        KillProcess(replica_pids_[i], SIGKILL);
        WaitProcess(replica_pids_[i], 2000);
      }
      replica_pids_[i] = -1;
    }
  }
  for (int& fd : replica_listen_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (router_listen_fd_ >= 0) {
    ::close(router_listen_fd_);
    router_listen_fd_ = -1;
  }
  started_ = false;
}

bool FleetSupervisor::ReplicaAlive(int i) {
  return ProcessAlive(replica_pids_.at(i));
}

bool FleetSupervisor::KillReplica(int i, int sig) {
  if (replica_pids_.at(i) <= 0) return false;
  KillProcess(replica_pids_[i], sig);
  const int rc = WaitProcess(replica_pids_[i], 10000);
  replica_pids_[i] = -1;
  return rc >= 0;
}

bool FleetSupervisor::RestartReplica(int i) {
  if (replica_pids_.at(i) > 0) return false;  // Still running.
  const pid_t pid = ForkReplica(i);
  if (pid < 0) return false;
  replica_pids_[i] = pid;
  return true;
}

}  // namespace sdp
