#include "fleet/supervisor.h"

#include <errno.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "common/socket_util.h"
#include "common/subprocess.h"
#include "obs/dtrace.h"
#include "obs/flight_recorder.h"

namespace sdp {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// splitmix64, the same finalizer the fault injector's deterministic
// probability stream uses: the respawn jitter must replay byte-identically
// for a given (seed, replica, crash ordinal).
uint64_t Splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// WaitProcess-style exit code: WEXITSTATUS, or 128+signal.
int ExitCode(int status) {
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

}  // namespace

FleetSupervisor::FleetSupervisor(FleetConfig config)
    : config_(std::move(config)) {}

FleetSupervisor::~FleetSupervisor() { Stop(); }

ReplicaConfig FleetSupervisor::MakeReplicaConfig(int i) const {
  ReplicaConfig rc;
  rc.replica_id = i;
  rc.listen_fd = replica_listen_fds_[i];
  rc.obs_port = config_.replica_obs_base_port > 0
                    ? config_.replica_obs_base_port + i
                    : 0;
  if (!config_.snapshot_dir.empty()) {
    rc.snapshot_path =
        config_.snapshot_dir + "/replica" + std::to_string(i) + ".snap";
  }
  rc.cookie_path = CookiePath(i);
  rc.schema = config_.schema;
  rc.service = config_.service;
  return rc;
}

std::string FleetSupervisor::CookiePath(int i) const {
  if (config_.cookie_dir.empty()) return "";
  return config_.cookie_dir + "/replica" + std::to_string(i) + ".cookie";
}

std::string FleetSupervisor::quarantine_path() const {
  if (config_.cookie_dir.empty()) return "";
  return config_.cookie_dir + "/quarantine.qrt";
}

pid_t FleetSupervisor::ForkReplica(int i) {
  const ReplicaConfig rc = MakeReplicaConfig(i);
  const int keep_fd = replica_listen_fds_[i];
  return SpawnProcess([rc, keep_fd]() {
    // Shed every inherited descriptor except this replica's own listen
    // socket: sibling listen fds (accept races), router sockets and any
    // client connections the supervisor holds.
    CloseAllFdsExcept({keep_fd});
    return ReplicaMain(rc);
  });
}

bool FleetSupervisor::Start(std::string* error) {
  if (started_) {
    if (error != nullptr) *error = "fleet already started";
    return false;
  }
  if (config_.num_replicas < 1) {
    if (error != nullptr) *error = "num_replicas must be >= 1";
    return false;
  }

  // 1. Bind every replica listen socket in the parent so the ports are
  // known up front and survive replica restarts.
  replica_listen_fds_.assign(config_.num_replicas, -1);
  replica_ports_.assign(config_.num_replicas, 0);
  sup_.assign(config_.num_replicas, Supervised{});
  board_ = std::make_unique<SelfHealingBoard>(
      static_cast<size_t>(config_.num_replicas));
  for (int i = 0; i < config_.num_replicas; ++i) {
    const int fd = ListenLocalhost(0, error);
    if (fd < 0) {
      Stop();
      return false;
    }
    replica_listen_fds_[i] = fd;
    replica_ports_[i] = BoundPort(fd);
  }

  // 2. Fork the replicas.
  const double now = MonotonicSeconds();
  for (int i = 0; i < config_.num_replicas; ++i) {
    sup_[i].pid = ForkReplica(i);
    sup_[i].managed = true;
    sup_[i].spawn_seconds = now;
    if (sup_[i].pid < 0) {
      if (error != nullptr) *error = "fork failed";
      Stop();
      return false;
    }
  }

  // 3. Router (in this process).
  router_listen_fd_ = ListenLocalhost(config_.router_port, error);
  if (router_listen_fd_ < 0) {
    Stop();
    return false;
  }
  router_port_ = BoundPort(router_listen_fd_);
  RouterConfig router_config;
  router_config.listen_fd = router_listen_fd_;
  router_config.replica_ports = replica_ports_;
  // Replica introspection ports for /dtracez's span collector (zeros when
  // replica HTTP is disabled; the router then renders its own spans only).
  router_config.replica_obs_ports.assign(config_.num_replicas, 0);
  for (int i = 0; i < config_.num_replicas; ++i) {
    router_config.replica_obs_ports[i] = MakeReplicaConfig(i).obs_port;
  }
  router_config.vnodes = config_.vnodes;
  router_config.max_attempts = config_.max_attempts;
  router_config.health_interval_ms = config_.health_interval_ms;
  router_config.obs_port = config_.router_obs_port;
  router_config.schema = config_.schema;
  router_config.quarantine_strikes = config_.quarantine_strikes;
  router_config.retry_budget_ratio = config_.retry_budget_ratio;
  router_config.retry_budget_burst = config_.retry_budget_burst;
  router_config.board = board_.get();
  router_ = std::make_unique<FleetRouter>(std::move(router_config));
  // Reload the persisted strike ledger before any request routes: a
  // poison key stays quarantined across supervisor restarts.  Typed load
  // failures (missing, corrupt, stale version) mean an empty ledger.
  if (!config_.cookie_dir.empty()) {
    std::vector<QuarantineEntry> entries;
    if (LoadQuarantine(quarantine_path(), &entries) == SnapshotStatus::kOk) {
      router_->InstallQuarantineStrikes(entries);
    }
  }
  started_ = true;  // From here on Stop() must run even on router failure.
  if (!router_->Start(error)) {
    Stop();
    return false;
  }

  // 4. Reaper: from here until Stop() joins it, this thread is the only
  // caller of waitpid for the replica pids.
  reaper_stop_.store(false, std::memory_order_release);
  reaper_thread_ = std::thread([this] { ReaperLoop(); });
  return true;
}

void FleetSupervisor::Stop() {
  // Join the reaper FIRST: after this, Stop() is the single waitpid owner
  // again and the direct WaitProcess teardown below cannot double-reap.
  reaper_stop_.store(true, std::memory_order_release);
  if (reaper_thread_.joinable()) reaper_thread_.join();
  if (router_ != nullptr) {
    router_->Stop();
    router_.reset();
  }
  for (Supervised& s : sup_) {
    if (s.pid > 0) KillProcess(s.pid, SIGTERM);
  }
  for (Supervised& s : sup_) {
    if (s.pid > 0) {
      // Graceful drain writes the snapshot; give it time, then escalate.
      if (WaitProcess(s.pid, 10000) < 0) {
        KillProcess(s.pid, SIGKILL);
        WaitProcess(s.pid, 2000);
      }
      s.pid = -1;
    }
  }
  for (int& fd : replica_listen_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (router_listen_fd_ >= 0) {
    ::close(router_listen_fd_);
    router_listen_fd_ = -1;
  }
  board_.reset();
  started_ = false;
}

pid_t FleetSupervisor::replica_pid(int i) const {
  std::lock_guard<std::mutex> lock(sup_mu_);
  return sup_.at(i).pid;
}

bool FleetSupervisor::ReplicaAlive(int i) const {
  std::lock_guard<std::mutex> lock(sup_mu_);
  return sup_.at(i).pid > 0;
}

bool FleetSupervisor::ReplicaCondemned(int i) const {
  std::lock_guard<std::mutex> lock(sup_mu_);
  return sup_.at(i).condemned;
}

uint64_t FleetSupervisor::ReplicaRestarts(int i) const {
  std::lock_guard<std::mutex> lock(sup_mu_);
  return sup_.at(i).restarts;
}

void FleetSupervisor::FailNextSpawns(int i, int count) {
  std::lock_guard<std::mutex> lock(sup_mu_);
  sup_.at(i).fail_next_spawns = count;
}

bool FleetSupervisor::KillReplica(int i, int sig) {
  {
    std::lock_guard<std::mutex> lock(sup_mu_);
    Supervised& s = sup_.at(i);
    if (s.pid <= 0) return false;
    // Operator kill: the reaper must neither respawn it nor count the
    // exit toward a crash loop.
    s.managed = false;
    s.respawn_at = -1;
    KillProcess(s.pid, sig);
  }
  // The reaper is the single waitpid owner, so wait for IT to collect.
  for (int waited = 0; waited < 10000; waited += 10) {
    {
      std::lock_guard<std::mutex> lock(sup_mu_);
      if (sup_.at(i).pid <= 0) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  {
    std::lock_guard<std::mutex> lock(sup_mu_);
    if (sup_.at(i).pid > 0) KillProcess(sup_.at(i).pid, SIGKILL);
  }
  for (int waited = 0; waited < 2000; waited += 10) {
    {
      std::lock_guard<std::mutex> lock(sup_mu_);
      if (sup_.at(i).pid <= 0) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

bool FleetSupervisor::CrashReplica(int i, int sig) {
  std::lock_guard<std::mutex> lock(sup_mu_);
  Supervised& s = sup_.at(i);
  if (s.pid <= 0) return false;
  // Managed stays true: this simulates an organic crash, and the whole
  // point is watching the reaper heal it (or condemn a crash loop).
  KillProcess(s.pid, sig);
  return true;
}

bool FleetSupervisor::RestartReplica(int i) {
  std::lock_guard<std::mutex> lock(sup_mu_);
  Supervised& s = sup_.at(i);
  if (s.pid > 0) return false;  // Still running.
  const pid_t pid = ForkReplica(i);
  if (pid < 0) return false;
  s.pid = pid;
  s.managed = true;
  s.spawn_seconds = MonotonicSeconds();
  s.respawn_at = -1;
  s.rapid_crashes = 0;
  // An operator restart overrides a condemnation verdict.
  if (s.condemned) {
    s.condemned = false;
    if (board_ != nullptr) {
      board_->replicas[static_cast<size_t>(i)].condemned.store(false);
    }
    if (router_ != nullptr) router_->ClearCondemned(i);
  }
  return true;
}

void FleetSupervisor::CollectExitLocked(int i, int status, double now) {
  Supervised& s = sup_[static_cast<size_t>(i)];
  const pid_t old_pid = s.pid;
  s.pid = -1;
  const bool crashed = !(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  FlightRecorder::Global().Record(
      ObsKind::kReplicaExit, crashed ? 1 : 0, static_cast<uint32_t>(i),
      static_cast<uint64_t>(old_pid),
      static_cast<uint64_t>(static_cast<int64_t>(ExitCode(status))));
  if (!crashed) {
    // Deliberate exit (drain): nothing to heal.
    s.respawn_at = -1;
    return;
  }
  if (board_ != nullptr) {
    board_->replicas[static_cast<size_t>(i)].crashes.fetch_add(1);
  }
  // Poison strikes: whatever keys the dead process journaled as in-flight
  // are the crash's evidence.  The cookie is consumed (unlinked) here so
  // a stale file can never strike twice; the respawned replica writes a
  // fresh empty cookie at startup.
  const std::string cookie = CookiePath(i);
  if (!cookie.empty() && router_ != nullptr) {
    std::vector<std::string> keys;
    const SnapshotStatus st = LoadCrashCookie(cookie, &keys);
    ::unlink(cookie.c_str());
    if (st == SnapshotStatus::kOk && !keys.empty()) {
      for (const std::string& key : keys) {
        const uint32_t strikes = router_->AddPoisonStrike(key);
        FlightRecorder::Global().Record(ObsKind::kPoisonStrike, 0,
                                        static_cast<uint32_t>(i),
                                        DtraceHash(key), strikes);
      }
      SaveQuarantine(quarantine_path(), router_->QuarantineSnapshot());
    }
  }
  if (!s.managed) return;  // Operator kill: no crash-loop accounting.
  s.crash_seq++;
  const double uptime_ms = (now - s.spawn_seconds) * 1000.0;
  if (uptime_ms < static_cast<double>(config_.crash_loop_window_ms)) {
    ++s.rapid_crashes;
  } else {
    s.rapid_crashes = 1;
  }
  if (s.rapid_crashes >= config_.condemn_after) {
    s.condemned = true;
    s.respawn_at = -1;
    if (board_ != nullptr) {
      board_->replicas[static_cast<size_t>(i)].condemned.store(true);
    }
    if (router_ != nullptr) router_->SetCondemned(i);
    FlightRecorder::Global().Record(ObsKind::kReplicaCondemn, 0,
                                    static_cast<uint32_t>(i),
                                    static_cast<uint64_t>(s.rapid_crashes));
    return;
  }
  if (!config_.auto_respawn) return;
  // Exponential backoff with deterministic jitter: base << (rapid-1),
  // capped, plus up to 25% drawn from the (seed, replica, crash ordinal)
  // jitter stream.
  const int shift = std::min(s.rapid_crashes - 1, 10);
  const int64_t base =
      std::min(static_cast<int64_t>(config_.respawn_backoff_ms) << shift,
               static_cast<int64_t>(config_.respawn_backoff_max_ms));
  const uint64_t jitter =
      Splitmix64(config_.respawn_jitter_seed ^
                 (static_cast<uint64_t>(i) << 32) ^ s.crash_seq) %
      (static_cast<uint64_t>(base) / 4 + 1);
  s.last_backoff_ms = static_cast<int>(base + static_cast<int64_t>(jitter));
  s.respawn_at = now + static_cast<double>(s.last_backoff_ms) / 1000.0;
}

void FleetSupervisor::RespawnDueLocked(double now) {
  for (int i = 0; i < static_cast<int>(sup_.size()); ++i) {
    Supervised& s = sup_[static_cast<size_t>(i)];
    if (s.pid > 0 || s.condemned || !s.managed || s.respawn_at < 0 ||
        now < s.respawn_at || !config_.auto_respawn) {
      continue;
    }
    pid_t pid;
    if (s.fail_next_spawns > 0) {
      --s.fail_next_spawns;
      // Crash-loop simulation: the child dies at birth with a nonzero
      // exit, which the reaper then collects as a rapid crash.
      pid = SpawnProcess([]() { return 41; });
    } else {
      pid = ForkReplica(i);
    }
    if (pid < 0) {
      // Fork pressure: retry shortly without touching the crash ledger.
      s.respawn_at = now + 0.1;
      continue;
    }
    s.pid = pid;
    s.spawn_seconds = now;
    s.respawn_at = -1;
    s.restarts++;
    if (board_ != nullptr) {
      board_->replicas[static_cast<size_t>(i)].restarts.fetch_add(1);
    }
    FlightRecorder::Global().Record(
        ObsKind::kReplicaRespawn, 0, static_cast<uint32_t>(i),
        static_cast<uint64_t>(pid), s.restarts,
        static_cast<uint64_t>(s.last_backoff_ms));
  }
}

void FleetSupervisor::ReaperLoop() {
  while (!reaper_stop_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(sup_mu_);
      const double now = MonotonicSeconds();
      for (int i = 0; i < static_cast<int>(sup_.size()); ++i) {
        Supervised& s = sup_[static_cast<size_t>(i)];
        if (s.pid <= 0) continue;
        int status = 0;
        const pid_t r = ::waitpid(s.pid, &status, WNOHANG);
        if (r == s.pid) {
          CollectExitLocked(i, status, now);
        } else if (r < 0 && errno == ECHILD) {
          // Someone reaped it before the reaper existed (pre-Start kill);
          // treat as a clean, unmanaged exit.
          s.pid = -1;
          s.respawn_at = -1;
        }
      }
      RespawnDueLocked(now);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace sdp
