#include "fleet/replica.h"

#include <stdio.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/socket_util.h"
#include "common/subprocess.h"
#include "fleet/routing_key.h"
#include "fleet/snapshot.h"
#include "fleet/wire.h"
#include "obs/dtrace.h"
#include "obs/flight_recorder.h"
#include "obs/introspection.h"
#include "obs/recorder_export.h"
#include "service/plan_fingerprint.h"
#include "stats/column_stats.h"

namespace sdp {

namespace {

// Everything one replica process owns, shared by its connection threads.
struct ReplicaState {
  const ReplicaConfig* config = nullptr;
  OptimizerService* service = nullptr;
  // For FleetRoutingKey: the crash-cookie journal must record the exact
  // bytes the router routes (and quarantines) by.
  const Catalog* catalog = nullptr;
  const StatsCatalog* stats = nullptr;
  std::atomic<bool> stop{false};

  // In-flight routing keys, mirrored to the cookie file on every change.
  // A multiset because concurrent connections can carry the same key.
  std::mutex cookie_mu;
  std::multiset<std::string> inflight_keys;
};

void LogReplica(int id, const std::string& message) {
  std::fprintf(stderr, "[replica %d] %s\n", id, message.c_str());
}

// Rewrites the cookie file to the current in-flight set (tmp+rename, so a
// crash mid-write leaves the previous journal intact).  cookie_mu held.
void FlushCookieLocked(ReplicaState& state) {
  const std::vector<std::string> keys(state.inflight_keys.begin(),
                                      state.inflight_keys.end());
  std::string error;
  if (SaveCrashCookie(state.config->cookie_path, keys, &error) !=
      SnapshotStatus::kOk) {
    LogReplica(state.config->replica_id, "cookie write failed: " + error);
  }
}

// RAII: journals `key` as in flight for the duration of one optimize
// call.  The journal write happens BEFORE the optimizer runs -- that
// ordering is the whole mechanism: if the process dies mid-optimize, the
// key is still on disk for the supervisor's poison-strike accounting.
class CookieJournalEntry {
 public:
  CookieJournalEntry(ReplicaState& state, const std::string& key)
      : state_(state), key_(key),
        enabled_(!state.config->cookie_path.empty() && !key.empty()) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(state_.cookie_mu);
    state_.inflight_keys.insert(key_);
    FlushCookieLocked(state_);
  }
  ~CookieJournalEntry() {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(state_.cookie_mu);
    const auto it = state_.inflight_keys.find(key_);
    if (it != state_.inflight_keys.end()) state_.inflight_keys.erase(it);
    FlushCookieLocked(state_);
  }

  CookieJournalEntry(const CookieJournalEntry&) = delete;
  CookieJournalEntry& operator=(const CookieJournalEntry&) = delete;

 private:
  ReplicaState& state_;
  const std::string key_;
  const bool enabled_;
};

FleetResponse BuildResponse(const ReplicaState& state, uint64_t request_id,
                            const ServiceResult& sr) {
  FleetResponse resp;
  resp.request_id = request_id;
  resp.replica_id = state.config->replica_id;
  resp.ok = sr.ok();
  resp.rejected = sr.rejected;
  resp.cache_hit = sr.cache_hit;
  resp.feasible = sr.result.feasible;
  resp.status_code = static_cast<uint8_t>(sr.result.status.code);
  resp.retry_after_ms = sr.retry_after_ms;
  resp.error = sr.error;
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(double), "");
  memcpy(&bits, &sr.result.cost, sizeof(bits));
  resp.cost_bits = bits;
  memcpy(&bits, &sr.result.rows, sizeof(bits));
  resp.rows_bits = bits;
  resp.plans_costed = sr.result.counters.plans_costed;
  resp.fingerprint = ResultFingerprint(sr.result);
  return resp;
}

bool HandleOptimize(ReplicaState& state, int conn, const Frame& frame) {
  FleetRequest req;
  if (!DecodeFleetRequest(frame.payload, &req)) {
    FleetResponse resp;
    resp.replica_id = state.config->replica_id;
    resp.ok = false;
    resp.error = "malformed optimize request";
    return WriteFrame(conn, FrameType::kOptimizeResponse, 0,
                      EncodeFleetResponse(resp));
  }
  const bool degraded = (frame.flags & kFlagDegraded) != 0;
  // The routing key is only derived when something consumes it (cookie
  // journaling or an armed poison probe): it costs a canonicalization.
  std::string routing_key;
  if (!state.config->cookie_path.empty() ||
      FaultInjector::Global().enabled()) {
    routing_key = FleetRoutingKey(req, *state.catalog, *state.stats);
  }
  CookieJournalEntry journal(state, routing_key);
  // Poison probe: "replica.poison" with payload V kills this process
  // mid-optimize when V selects the request's key (V = DtraceHash(key)
  // % 100000; V=0 selects every key).  A quarantined (degraded) request
  // deliberately skips the probe -- that models the real-world contract
  // that the greedy-only rung does not take the crashing path.
  if (!degraded) {
    double poison_value = 0;
    if (FaultInjector::Global().Hit("replica.poison", &poison_value)) {
      const uint64_t selector = static_cast<uint64_t>(poison_value);
      if (selector == 0 || selector == DtraceHash(routing_key) % 100000) {
        // Crash exactly as a wild pointer would: no unwinding, no drain,
        // the cookie file left behind as the only evidence.
        ::_exit(42);
      }
    }
  }
  ServiceRequest sreq;
  sreq.query = std::move(req.query);
  sreq.spec = req.Spec();
  // The frame's trace extension (router attempt span) becomes the
  // request's context; a SpanScope here also attributes events recorded
  // on *this* thread before the worker picks the request up (e.g. an
  // admission shed on the submitting thread).
  sreq.trace = TraceContext{frame.trace_id, frame.span_id};
  SpanScope span(sreq.trace);
  // Fleet requests carry no thread preference: run each at the replica's
  // configured intra-query parallelism.  Plans, costs and structural
  // /dtracez timelines are bit-identical at any setting.
  sreq.options.opt_threads = state.config->service.max_opt_threads;
  sreq.options.enumerator = req.enumerator;
  if (degraded) {
    // Quarantined key: the ladder is pinned to the greedy rung from both
    // ends (min == max == kGreedy), so the expensive enumeration this key
    // kept crashing is never entered.  The plans budget is a backstop
    // orders of magnitude above greedy's O(n^2) candidate costings but
    // far below exhaustive enumeration -- tight, yet never starving the
    // rung that must produce the degraded answer.
    sreq.fallback_enabled = true;
    sreq.min_rung = FallbackRung::kGreedy;
    sreq.max_rung = FallbackRung::kGreedy;
    sreq.budget.max_plans_costed = 4096;
  }
  const ServiceResult sr = state.service->OptimizeSync(std::move(sreq));
  FleetResponse resp = BuildResponse(state, req.request_id, sr);
  resp.degraded = degraded;
  resp.rung = sr.result.rung;

  // A freshly computed feasible plan rides back to the router as a
  // cache-fill frame so the other replicas can be warmed asynchronously.
  PlanCacheExportEntry fill;
  const bool has_fill = sr.ok() && !sr.cache_hit && sr.result.feasible &&
                        !sr.cache_key.empty() &&
                        state.service->ExportPlanCacheEntry(sr.cache_key,
                                                            &fill);
  if (!WriteFrame(conn, FrameType::kOptimizeResponse,
                  has_fill ? kFlagFillFollows : 0,
                  EncodeFleetResponse(resp))) {
    return false;
  }
  if (has_fill) {
    return WriteFrame(conn, FrameType::kCacheInstall, 0,
                      EncodeCacheEntry(fill));
  }
  return true;
}

bool HandleStats(ReplicaState& state, int conn) {
  const ServiceMetrics& m = state.service->metrics();
  const PlanCacheStats cs = state.service->cache_stats();
  FleetReplicaStats stats;
  stats.replica_id = state.config->replica_id;
  stats.requests_completed = m.requests_completed.load();
  stats.cache_hits = m.cache_hits.load();
  stats.cache_misses = m.cache_misses.load();
  stats.queue_depth = m.queue_depth.load();
  stats.inflight = m.inflight.load();
  stats.cache_entries = cs.entries;
  stats.cache_bytes = cs.resident_bytes;
  stats.stats_epoch = state.service->stats_epoch();
  stats.prometheus = m.PrometheusText(
      std::to_string(state.config->replica_id));
  return WriteFrame(conn, FrameType::kStatsResponse, 0,
                    EncodeReplicaStats(stats));
}

// Serves one router connection until the peer closes, framing breaks, or
// the replica drains.  A request already being optimized when drain
// begins still gets its response -- that is the "finish in-flight" half
// of graceful shutdown; the router re-sends anything it never got an
// answer for.
void ServeConnection(ReplicaState& state, int conn) {
  SetIoTimeout(conn, 30000);
  while (!state.stop.load(std::memory_order_acquire) &&
         !ShutdownRequested()) {
    const int ready = PollReadable(conn, state.config->poll_interval_ms);
    if (ready < 0) break;
    if (ready == 0) continue;
    Frame frame;
    if (!ReadFrame(conn, &frame)) break;
    bool ok = true;
    switch (frame.type) {
      case FrameType::kOptimizeRequest:
        ok = HandleOptimize(state, conn, frame);
        break;
      case FrameType::kCacheInstall: {
        // Broadcast fill from a peer replica (fire-and-forget).  Recorded
        // under the originating request's trace context so its timeline
        // shows the install landing on this replica.
        SpanScope span(TraceContext{frame.trace_id, frame.span_id});
        PlanCacheExportEntry entry;
        bool installed = false;
        uint64_t key_hash = 0;
        if (DecodeCacheEntry(frame.payload, &entry)) {
          installed = state.service->InstallPlanCacheEntry(entry);
          key_hash = DtraceHash(entry.key);
        }
        FlightRecorder::Global().Record(ObsKind::kBroadcastInstall,
                                        installed ? 1 : 0, 0, key_hash);
        break;
      }
      case FrameType::kStatsRequest:
        ok = HandleStats(state, conn);
        break;
      case FrameType::kPing: {
        // The pong payload advertises this replica's wire capabilities;
        // old routers ignore the payload entirely.
        std::string caps(1, static_cast<char>(kPongCapTraceContext));
        ok = WriteFrame(conn, FrameType::kPong, 0, caps);
        break;
      }
      default:
        ok = false;  // Unexpected frame: drop the connection.
        break;
    }
    if (!ok) break;
  }
  ::close(conn);
}

}  // namespace

int ReplicaMain(const ReplicaConfig& config) {
  InstallShutdownHandlers();

  const Catalog catalog = MakeSyntheticCatalog(config.schema);
  const StatsCatalog stats = SynthesizeStats(catalog);
  OptimizerService service(catalog, stats, config.service);

  // Warm restart: reinstall every snapshot entry whose stats epoch still
  // matches.  Any typed failure means a cold start, never a crash.
  if (!config.snapshot_path.empty()) {
    std::vector<PlanCacheExportEntry> entries;
    std::string error;
    const SnapshotStatus status = LoadCacheSnapshot(
        config.snapshot_path, service.stats_epoch(), &entries, &error);
    if (status == SnapshotStatus::kOk) {
      size_t installed = 0;
      for (const PlanCacheExportEntry& e : entries) {
        installed += service.InstallPlanCacheEntry(e) ? 1 : 0;
      }
      LogReplica(config.replica_id,
                 "restored " + std::to_string(installed) + "/" +
                     std::to_string(entries.size()) + " snapshot entries");
    } else {
      LogReplica(config.replica_id,
                 std::string("snapshot not restored (") +
                     SnapshotStatusName(status) + "): " + error);
    }
  }

  IntrospectionServer obs(&service);
  if (config.obs_port > 0) {
    std::string error;
    if (!obs.Start(config.obs_port, &error)) {
      LogReplica(config.replica_id, "obs server failed: " + error);
    }
  }

  ReplicaState state;
  state.config = &config;
  state.service = &service;
  state.catalog = &catalog;
  state.stats = &stats;

  // Start with a clean, *present* cookie: the supervisor unlinks the file
  // when it consumes a crash's evidence, and an empty journal here means
  // "alive, nothing in flight" -- distinguishable from "never started".
  if (!config.cookie_path.empty()) {
    std::string error;
    if (SaveCrashCookie(config.cookie_path, {}, &error) !=
        SnapshotStatus::kOk) {
      LogReplica(config.replica_id, "cookie init failed: " + error);
    }
  }

  std::vector<std::thread> connections;
  while (!ShutdownRequested()) {
    const int ready = PollReadable(config.listen_fd, config.poll_interval_ms);
    if (ready < 0) break;  // Listen socket died.
    if (ready == 0) continue;
    const int conn = ::accept(config.listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    connections.emplace_back(
        [&state, conn] { ServeConnection(state, conn); });
  }

  // Graceful drain: stop accepting (done -- the loop exited), let every
  // connection finish its in-flight request, then persist and flush.
  state.stop.store(true, std::memory_order_release);
  for (std::thread& t : connections) t.join();

  if (!config.snapshot_path.empty()) {
    std::string error;
    const SnapshotStatus status =
        SaveCacheSnapshot(config.snapshot_path, service.stats_epoch(),
                          service.ExportPlanCache(), &error);
    if (status != SnapshotStatus::kOk) {
      LogReplica(config.replica_id,
                 std::string("snapshot save failed (") +
                     SnapshotStatusName(status) + "): " + error);
    }
  }
  if (!config.service.flight_dump_dir.empty()) {
    const std::string dump_path =
        config.service.flight_dump_dir + "/flight-replica" +
        std::to_string(config.replica_id) + "-drain.jsonl";
    std::string error;
    if (!DumpFlightRecorderToFile(dump_path, &error)) {
      LogReplica(config.replica_id, "drain dump failed: " + error);
    }
  }
  obs.Stop();
  ::close(config.listen_fd);
  return 0;
}

}  // namespace sdp
