#ifndef SDPOPT_FLEET_CONSISTENT_HASH_H_
#define SDPOPT_FLEET_CONSISTENT_HASH_H_

#include <stdint.h>

#include <string>
#include <vector>

namespace sdp {

// Consistent-hash ring over replica ids 0..n-1, used by the router to
// place canonical plan-cache keys.
//
// Each replica owns `vnodes` points on a 64-bit ring (hashes of
// "vnode/<replica>/<i>" under the repo's FNV-1a fingerprint hash); a key
// routes to the owner of the first live point at or after the key's
// hash, wrapping.  Two properties the fleet depends on, both covered by
// tests:
//
//  * Determinism: the ring is a pure function of (num_replicas, vnodes),
//    so the router, the bench, and the tests all compute identical
//    placements without coordination.
//  * Minimal disruption: marking a replica dead reroutes ONLY the keys
//    whose owning point belonged to that replica -- every other key keeps
//    its replica, so a replica crash does not flush the surviving
//    replicas' cache locality.
//
// The ring is not thread-safe; the router guards it with its own mutex.
class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(int num_replicas, int vnodes = 64);

  int num_replicas() const { return static_cast<int>(live_.size()); }

  void SetLive(int replica, bool live);
  bool IsLive(int replica) const { return live_.at(replica); }
  int NumLive() const;

  // The live replica owning `key`, or -1 when none is live.
  int Route(const std::string& key) const;

  // Failover order for `key`: every live replica exactly once, in ring
  // order from the key's hash.  Element 0 equals Route(key).
  std::vector<int> RouteSequence(const std::string& key) const;

  // Owner of `key` ignoring liveness -- the stable home the key returns
  // to after its replica restarts.
  int HomeReplica(const std::string& key) const;

 private:
  struct Point {
    uint64_t hash = 0;
    int replica = -1;
  };

  // First ring index at or after `h` (wrapping).
  size_t LowerBound(uint64_t h) const;

  std::vector<Point> ring_;  // Sorted by hash.
  std::vector<bool> live_;
};

}  // namespace sdp

#endif  // SDPOPT_FLEET_CONSISTENT_HASH_H_
