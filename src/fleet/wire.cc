#include "fleet/wire.h"

#include <string.h>
#include <sys/socket.h>

#include <chrono>
#include <thread>

#include "common/fault_injection.h"
#include "common/socket_util.h"

namespace sdp {

namespace {

constexpr char kMagic0 = 'S';
constexpr char kMagic1 = 'F';

// A length prefix claiming more elements than bytes remaining is corrupt;
// cap element counts at the payload size so a hostile length cannot drive
// a giant reserve() before the bounds check trips.
constexpr uint32_t kMaxElements = kMaxFramePayload;

}  // namespace

namespace {

constexpr size_t kHeaderBytes = 8;
constexpr size_t kTraceExtBytes = 16;

void BuildHeader(char* header, FrameType type, uint8_t flags, uint32_t len) {
  header[0] = kMagic0;
  header[1] = kMagic1;
  header[2] = static_cast<char>(type);
  header[3] = static_cast<char>(flags);
  memcpy(header + 4, &len, sizeof(len));
}

void BuildTraceExt(char* ext, uint64_t trace_id, uint64_t span_id) {
  memcpy(ext, &trace_id, sizeof(trace_id));
  memcpy(ext + 8, &span_id, sizeof(span_id));
}

// Every outbound frame funnels through here so the seeded chaos layer
// can perturb the send deterministically.  Site semantics (probed in
// this order, at most the first destructive one applies):
//
//   net.delay-ms       sleep V ms, then send normally.
//   net.short-write    send 1 byte, then the rest (exercises the
//                      receiver's partial-read loop; still succeeds).
//   net.frame.corrupt  XOR header byte 0 before sending.  Corrupting the
//                      magic -- not the payload -- guarantees the
//                      receiver detects it as a typed framing failure;
//                      the protocol has no payload checksum, so payload
//                      corruption would be silent (DESIGN.md section 11).
//   net.frame.truncate send only a prefix and report failure (the peer
//                      sees a mid-frame EOF or times out).
//   net.conn.reset     shut the socket down without sending.
bool SendFrameBytes(int fd, std::string bytes) {
  FaultInjector& inj = FaultInjector::Global();
  if (inj.enabled() && !bytes.empty()) {
    double v = 0;
    if (inj.Hit("net.delay-ms", &v) && v > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<int64_t>(v)));
    }
    const bool short_write = inj.Hit("net.short-write");
    if (inj.Hit("net.frame.corrupt")) bytes[0] = static_cast<char>(bytes[0] ^ 0x5A);
    if (inj.Hit("net.frame.truncate")) {
      const size_t keep = bytes.size() / 2;
      if (keep > 0) WriteFull(fd, bytes.data(), keep);
      return false;
    }
    if (inj.Hit("net.conn.reset")) {
      ::shutdown(fd, SHUT_RDWR);
      return false;
    }
    if (short_write) {
      if (!WriteFull(fd, bytes.data(), 1)) return false;
      return bytes.size() == 1 ||
             WriteFull(fd, bytes.data() + 1, bytes.size() - 1);
    }
  }
  return WriteFull(fd, bytes.data(), bytes.size());
}

}  // namespace

bool WriteFrame(int fd, FrameType type, uint8_t flags,
                const std::string& payload) {
  if (payload.size() > kMaxFramePayload) return false;
  std::string bytes;
  bytes.reserve(kHeaderBytes + payload.size());
  char header[kHeaderBytes];
  BuildHeader(header, type, static_cast<uint8_t>(flags & ~kFlagTraceContext),
              static_cast<uint32_t>(payload.size()));
  bytes.append(header, sizeof(header));
  bytes.append(payload);
  return SendFrameBytes(fd, std::move(bytes));
}

bool WriteFrameTraced(int fd, FrameType type, uint8_t flags,
                      const std::string& payload, uint64_t trace_id,
                      uint64_t span_id) {
  if (payload.size() > kMaxFramePayload) return false;
  std::string bytes;
  bytes.reserve(kHeaderBytes + kTraceExtBytes + payload.size());
  char header[kHeaderBytes + kTraceExtBytes];
  BuildHeader(header, type, static_cast<uint8_t>(flags | kFlagTraceContext),
              static_cast<uint32_t>(payload.size()));
  BuildTraceExt(header + kHeaderBytes, trace_id, span_id);
  bytes.append(header, sizeof(header));
  bytes.append(payload);
  return SendFrameBytes(fd, std::move(bytes));
}

bool ReadFrame(int fd, Frame* out) {
  char header[kHeaderBytes];
  if (!ReadFull(fd, header, sizeof(header))) return false;
  if (header[0] != kMagic0 || header[1] != kMagic1) return false;
  uint32_t len = 0;
  memcpy(&len, header + 4, sizeof(len));
  if (len > kMaxFramePayload) return false;
  out->type = static_cast<FrameType>(header[2]);
  out->flags = static_cast<uint8_t>(header[3]);
  out->has_trace = (out->flags & kFlagTraceContext) != 0;
  out->trace_id = 0;
  out->span_id = 0;
  if (out->has_trace) {
    char ext[kTraceExtBytes];
    if (!ReadFull(fd, ext, sizeof(ext))) return false;
    memcpy(&out->trace_id, ext, sizeof(out->trace_id));
    memcpy(&out->span_id, ext + 8, sizeof(out->span_id));
  }
  out->payload.resize(len);
  return len == 0 || ReadFull(fd, out->payload.data(), len);
}

std::string EncodeFrameBytes(const Frame& frame) {
  std::string bytes;
  const bool traced = frame.has_trace;
  char header[kHeaderBytes];
  uint8_t flags = frame.flags;
  flags = traced ? static_cast<uint8_t>(flags | kFlagTraceContext)
                 : static_cast<uint8_t>(flags & ~kFlagTraceContext);
  BuildHeader(header, frame.type, flags,
              static_cast<uint32_t>(frame.payload.size()));
  bytes.append(header, sizeof(header));
  if (traced) {
    char ext[kTraceExtBytes];
    BuildTraceExt(ext, frame.trace_id, frame.span_id);
    bytes.append(ext, sizeof(ext));
  }
  bytes.append(frame.payload);
  return bytes;
}

bool DecodeFrameBytes(const std::string& bytes, size_t* pos, Frame* out) {
  size_t p = *pos;
  if (p > bytes.size() || bytes.size() - p < kHeaderBytes) return false;
  const char* header = bytes.data() + p;
  if (header[0] != kMagic0 || header[1] != kMagic1) return false;
  uint32_t len = 0;
  memcpy(&len, header + 4, sizeof(len));
  if (len > kMaxFramePayload) return false;
  out->type = static_cast<FrameType>(header[2]);
  out->flags = static_cast<uint8_t>(header[3]);
  out->has_trace = (out->flags & kFlagTraceContext) != 0;
  out->trace_id = 0;
  out->span_id = 0;
  p += kHeaderBytes;
  if (out->has_trace) {
    if (bytes.size() - p < kTraceExtBytes) return false;
    memcpy(&out->trace_id, bytes.data() + p, sizeof(out->trace_id));
    memcpy(&out->span_id, bytes.data() + p + 8, sizeof(out->span_id));
    p += kTraceExtBytes;
  }
  if (bytes.size() - p < len) return false;
  out->payload.assign(bytes.data() + p, len);
  p += len;
  *pos = p;
  return true;
}

void WireWriter::PutU8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }

void WireWriter::PutU32(uint32_t v) {
  char buf[4];
  memcpy(buf, &v, sizeof(v));
  bytes_.append(buf, sizeof(buf));
}

void WireWriter::PutU64(uint64_t v) {
  char buf[8];
  memcpy(buf, &v, sizeof(v));
  bytes_.append(buf, sizeof(buf));
}

void WireWriter::PutDouble(double v) {
  uint64_t bits;
  memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  bytes_.append(s);
}

bool WireReader::Need(size_t n) {
  if (!ok_ || bytes_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t WireReader::GetU8() {
  if (!Need(1)) return 0;
  return static_cast<uint8_t>(bytes_[pos_++]);
}

uint32_t WireReader::GetU32() {
  if (!Need(4)) return 0;
  uint32_t v;
  memcpy(&v, bytes_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

uint64_t WireReader::GetU64() {
  if (!Need(8)) return 0;
  uint64_t v;
  memcpy(&v, bytes_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

double WireReader::GetDouble() {
  const uint64_t bits = GetU64();
  double v;
  memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::GetString() {
  const uint32_t len = GetU32();
  if (len > kMaxElements || !Need(len)) {
    ok_ = false;
    return std::string();
  }
  std::string s(bytes_.data() + pos_, len);
  pos_ += len;
  return s;
}

AlgorithmSpec FleetRequest::Spec() const {
  switch (algo) {
    case AlgorithmSpec::Kind::kDP:
      return AlgorithmSpec::DP();
    case AlgorithmSpec::Kind::kIDP:
      return AlgorithmSpec::IDP(idp_k);
    case AlgorithmSpec::Kind::kIDP2:
      return AlgorithmSpec::IDP2(idp_k);
    case AlgorithmSpec::Kind::kSDP:
      return AlgorithmSpec::SDP();
  }
  return AlgorithmSpec::SDP();
}

void EncodeQuery(const Query& query, WireWriter* w) {
  const JoinGraph& graph = query.graph;
  w->PutU32(static_cast<uint32_t>(graph.num_relations()));
  for (const int tid : graph.table_ids()) w->PutI32(tid);
  // Edge order matters: canonical keys serialize selectivities per edge
  // index, so the decoder must rebuild the identical edge list.
  w->PutU32(static_cast<uint32_t>(graph.edges().size()));
  for (const JoinEdge& e : graph.edges()) {
    w->PutI32(e.left.rel);
    w->PutI32(e.left.col);
    w->PutI32(e.right.rel);
    w->PutI32(e.right.col);
  }
  w->PutU32(static_cast<uint32_t>(query.filters.size()));
  for (const FilterPredicate& f : query.filters) {
    w->PutI32(f.column.rel);
    w->PutI32(f.column.col);
    w->PutU8(static_cast<uint8_t>(f.op));
    w->PutI64(f.value);
  }
  w->PutU8(query.order_by.has_value() ? 1 : 0);
  if (query.order_by.has_value()) {
    w->PutI32(query.order_by->column.rel);
    w->PutI32(query.order_by->column.col);
  }
}

bool DecodeQuery(WireReader* r, Query* out) {
  const uint32_t n = r->GetU32();
  if (!r->ok() || n > 64) return false;
  std::vector<int> table_ids(n);
  for (uint32_t i = 0; i < n; ++i) table_ids[i] = r->GetI32();
  if (!r->ok()) return false;
  out->graph = JoinGraph(std::move(table_ids));
  const uint32_t num_edges = r->GetU32();
  if (!r->ok() || num_edges > kMaxElements) return false;
  for (uint32_t i = 0; i < num_edges; ++i) {
    ColumnRef a{r->GetI32(), r->GetI32()};
    ColumnRef b{r->GetI32(), r->GetI32()};
    if (!r->ok()) return false;
    if (a.rel < 0 || a.rel >= static_cast<int>(n) || b.rel < 0 ||
        b.rel >= static_cast<int>(n) || a.col < 0 || b.col < 0) {
      return false;
    }
    out->graph.AddEdge(a, b);
  }
  const uint32_t num_filters = r->GetU32();
  if (!r->ok() || num_filters > kMaxElements) return false;
  out->filters.clear();
  out->filters.reserve(num_filters);
  for (uint32_t i = 0; i < num_filters; ++i) {
    FilterPredicate f;
    f.column.rel = r->GetI32();
    f.column.col = r->GetI32();
    const uint8_t op = r->GetU8();
    f.value = r->GetI64();
    if (!r->ok() || op > static_cast<uint8_t>(CompareOp::kGe) ||
        f.column.rel < 0 || f.column.rel >= static_cast<int>(n)) {
      return false;
    }
    f.op = static_cast<CompareOp>(op);
    out->filters.push_back(f);
  }
  out->order_by.reset();
  const uint8_t has_order = r->GetU8();
  if (!r->ok() || has_order > 1) return false;
  if (has_order == 1) {
    OrderRequirement order;
    order.column.rel = r->GetI32();
    order.column.col = r->GetI32();
    if (!r->ok() || order.column.rel < 0 ||
        order.column.rel >= static_cast<int>(n)) {
      return false;
    }
    out->order_by = order;
  }
  return true;
}

std::string EncodeFleetRequest(const FleetRequest& req) {
  WireWriter w;
  w.PutU64(req.request_id);
  w.PutU8(static_cast<uint8_t>(req.algo));
  w.PutI32(req.idp_k);
  w.PutU8(static_cast<uint8_t>(req.enumerator));
  EncodeQuery(req.query, &w);
  return w.Take();
}

bool DecodeFleetRequest(const std::string& payload, FleetRequest* out) {
  WireReader r(payload);
  out->request_id = r.GetU64();
  const uint8_t algo = r.GetU8();
  out->idp_k = r.GetI32();
  const uint8_t enumerator = r.GetU8();
  if (!r.ok() || algo > static_cast<uint8_t>(AlgorithmSpec::Kind::kSDP) ||
      out->idp_k < 2 || out->idp_k > 64 ||
      enumerator > static_cast<uint8_t>(PlanEnumeratorKind::kGOO)) {
    return false;
  }
  out->algo = static_cast<AlgorithmSpec::Kind>(algo);
  out->enumerator = static_cast<PlanEnumeratorKind>(enumerator);
  if (!DecodeQuery(&r, &out->query)) return false;
  return r.AtEnd();
}

std::string EncodeFleetResponse(const FleetResponse& resp) {
  WireWriter w;
  w.PutU64(resp.request_id);
  w.PutI32(resp.replica_id);
  w.PutU8(resp.ok ? 1 : 0);
  w.PutU8(resp.rejected ? 1 : 0);
  w.PutU8(resp.cache_hit ? 1 : 0);
  w.PutU8(resp.feasible ? 1 : 0);
  w.PutU8(resp.status_code);
  w.PutI32(resp.retry_after_ms);
  w.PutU64(resp.cost_bits);
  w.PutU64(resp.rows_bits);
  w.PutU64(resp.plans_costed);
  w.PutString(resp.error);
  w.PutString(resp.fingerprint);
  w.PutU8(resp.degraded ? 1 : 0);
  w.PutString(resp.rung);
  return w.Take();
}

bool DecodeFleetResponse(const std::string& payload, FleetResponse* out) {
  WireReader r(payload);
  out->request_id = r.GetU64();
  out->replica_id = r.GetI32();
  out->ok = r.GetU8() != 0;
  out->rejected = r.GetU8() != 0;
  out->cache_hit = r.GetU8() != 0;
  out->feasible = r.GetU8() != 0;
  out->status_code = r.GetU8();
  out->retry_after_ms = r.GetI32();
  out->cost_bits = r.GetU64();
  out->rows_bits = r.GetU64();
  out->plans_costed = r.GetU64();
  out->error = r.GetString();
  out->fingerprint = r.GetString();
  out->degraded = r.GetU8() != 0;
  out->rung = r.GetString();
  return r.AtEnd();
}

void EncodeCacheEntryTo(const PlanCacheExportEntry& entry, WireWriter* w) {
  w->PutString(entry.key);
  w->PutU64(entry.form_hash);
  w->PutU32(static_cast<uint32_t>(entry.plan.size()));
  for (const PlanWireNode& n : entry.plan) {
    w->PutU8(n.kind);
    w->PutI32(n.rel);
    w->PutI32(n.edge);
    w->PutI32(n.ordering);
    w->PutU64(n.rels_bits);
    w->PutU64(n.rows_bits);
    w->PutU64(n.cost_bits);
    w->PutI32(n.outer);
    w->PutI32(n.inner);
  }
  w->PutDouble(entry.cost);
  w->PutDouble(entry.rows);
  w->PutU64(entry.counters.plans_costed);
  w->PutU64(entry.counters.jcrs_created);
  w->PutU64(entry.counters.pairs_examined);
  w->PutString(entry.algorithm);
  w->PutDouble(entry.elapsed_seconds);
  w->PutDouble(entry.peak_memory_mb);
  w->PutU32(static_cast<uint32_t>(entry.perm.size()));
  for (const int p : entry.perm) w->PutI32(p);
  w->PutU32(static_cast<uint32_t>(entry.edge_endpoints.size()));
  for (const auto& e : entry.edge_endpoints) {
    w->PutI32(e.first.rel);
    w->PutI32(e.first.col);
    w->PutI32(e.second.rel);
    w->PutI32(e.second.col);
  }
  w->PutU32(static_cast<uint32_t>(entry.ordering_reps.size()));
  for (const ColumnRef& c : entry.ordering_reps) {
    w->PutI32(c.rel);
    w->PutI32(c.col);
  }
}

bool DecodeCacheEntryFrom(WireReader* r, PlanCacheExportEntry* out) {
  out->key = r->GetString();
  out->form_hash = r->GetU64();
  const uint32_t num_nodes = r->GetU32();
  if (!r->ok() || num_nodes > kMaxElements) return false;
  out->plan.assign(num_nodes, PlanWireNode{});
  for (uint32_t i = 0; i < num_nodes; ++i) {
    PlanWireNode& n = out->plan[i];
    n.kind = r->GetU8();
    n.rel = r->GetI32();
    n.edge = r->GetI32();
    n.ordering = r->GetI32();
    n.rels_bits = r->GetU64();
    n.rows_bits = r->GetU64();
    n.cost_bits = r->GetU64();
    n.outer = r->GetI32();
    n.inner = r->GetI32();
  }
  out->cost = r->GetDouble();
  out->rows = r->GetDouble();
  out->counters.plans_costed = r->GetU64();
  out->counters.jcrs_created = r->GetU64();
  out->counters.pairs_examined = r->GetU64();
  out->algorithm = r->GetString();
  out->elapsed_seconds = r->GetDouble();
  out->peak_memory_mb = r->GetDouble();
  const uint32_t num_perm = r->GetU32();
  if (!r->ok() || num_perm > 64) return false;
  out->perm.assign(num_perm, -1);
  for (uint32_t i = 0; i < num_perm; ++i) out->perm[i] = r->GetI32();
  const uint32_t num_edges = r->GetU32();
  if (!r->ok() || num_edges > kMaxElements) return false;
  out->edge_endpoints.assign(num_edges, {});
  for (uint32_t i = 0; i < num_edges; ++i) {
    out->edge_endpoints[i].first.rel = r->GetI32();
    out->edge_endpoints[i].first.col = r->GetI32();
    out->edge_endpoints[i].second.rel = r->GetI32();
    out->edge_endpoints[i].second.col = r->GetI32();
  }
  const uint32_t num_reps = r->GetU32();
  if (!r->ok() || num_reps > kMaxElements) return false;
  out->ordering_reps.assign(num_reps, ColumnRef{});
  for (uint32_t i = 0; i < num_reps; ++i) {
    out->ordering_reps[i].rel = r->GetI32();
    out->ordering_reps[i].col = r->GetI32();
  }
  return r->ok();
}

std::string EncodeCacheEntry(const PlanCacheExportEntry& entry) {
  WireWriter w;
  EncodeCacheEntryTo(entry, &w);
  return w.Take();
}

bool DecodeCacheEntry(const std::string& payload, PlanCacheExportEntry* out) {
  WireReader r(payload);
  if (!DecodeCacheEntryFrom(&r, out)) return false;
  return r.AtEnd();
}

std::string EncodeReplicaStats(const FleetReplicaStats& stats) {
  WireWriter w;
  w.PutI32(stats.replica_id);
  w.PutU64(stats.requests_completed);
  w.PutU64(stats.cache_hits);
  w.PutU64(stats.cache_misses);
  w.PutI64(stats.queue_depth);
  w.PutI64(stats.inflight);
  w.PutU64(stats.cache_entries);
  w.PutU64(stats.cache_bytes);
  w.PutU64(stats.stats_epoch);
  w.PutString(stats.prometheus);
  return w.Take();
}

bool DecodeReplicaStats(const std::string& payload, FleetReplicaStats* out) {
  WireReader r(payload);
  out->replica_id = r.GetI32();
  out->requests_completed = r.GetU64();
  out->cache_hits = r.GetU64();
  out->cache_misses = r.GetU64();
  out->queue_depth = r.GetI64();
  out->inflight = r.GetI64();
  out->cache_entries = r.GetU64();
  out->cache_bytes = r.GetU64();
  out->stats_epoch = r.GetU64();
  out->prometheus = r.GetString();
  return r.AtEnd();
}

}  // namespace sdp
