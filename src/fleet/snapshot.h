#ifndef SDPOPT_FLEET_SNAPSHOT_H_
#define SDPOPT_FLEET_SNAPSHOT_H_

#include <stdint.h>

#include <string>
#include <vector>

#include "service/plan_cache.h"

namespace sdp {

// Persistent plan-cache tier: versioned, checksummed snapshot files that
// let a restarted replica rejoin the fleet warm.
//
// File layout (little-endian):
//
//   "SDPSNAP1"  checksum:u64  payload...
//
// where payload = WireWriter{version:u32, stats_epoch:u64, count:u32,
// count x cache-entry codec} and checksum = FNV-1a over the payload
// bytes.  Writes go to `<path>.tmp.<pid>` and rename(2) into place, so a
// crash mid-save leaves the previous snapshot intact and readers never
// observe a torn file.
//
// Every failure is a typed status, never a crash: a replica restarting
// against a corrupted or stale snapshot logs the status and starts cold.

enum class SnapshotStatus {
  kOk = 0,
  kIoError,            // open/read/write/rename failed (errno in *error).
  kBadMagic,           // Not a snapshot file.
  kBadVersion,         // Snapshot from an incompatible format version.
  kChecksumMismatch,   // Payload bytes corrupted after the header.
  kEpochMismatch,      // Snapshot predates a stats epoch bump; plans in it
                       // could be stale, so none are loaded.
  kCorrupt,            // Checksum passed but the payload failed to decode
                       // (truncated writer bug or hand-edited file).
};

const char* SnapshotStatusName(SnapshotStatus status);

// Writes all `entries` under `stats_epoch`.  On non-kOk, `*error` (when
// non-null) carries a one-line diagnostic and the target file is
// untouched.
SnapshotStatus SaveCacheSnapshot(const std::string& path,
                                 uint64_t stats_epoch,
                                 const std::vector<PlanCacheExportEntry>& entries,
                                 std::string* error = nullptr);

// Loads a snapshot written at `expected_stats_epoch`.  On kOk, *entries
// holds every decoded entry; on any failure *entries is empty.  A
// missing file reports kIoError (callers treat it as a cold start).
SnapshotStatus LoadCacheSnapshot(const std::string& path,
                                 uint64_t expected_stats_epoch,
                                 std::vector<PlanCacheExportEntry>* entries,
                                 std::string* error = nullptr);

// --- self-healing persistence (same discipline, different payloads) ---
//
// Crash cookie ("SDPCOOK1"): the routing keys a replica currently has in
// flight, rewritten tmp+rename on every journal change.  After a crash
// the supervisor reads the cookie to know exactly which keys the dead
// process was computing -- the poison-strike evidence.  A clean drain
// leaves the cookie empty.
//
// Quarantine file ("SDPQUAR1"): (routing key, strike count) pairs, saved
// by the supervisor whenever strikes change and reloaded at fleet start,
// so a poison key stays quarantined across supervisor restarts.  Both
// formats share SnapshotStatus: any failure is typed and means starting
// from an empty journal/quarantine, never a crash.

SnapshotStatus SaveCrashCookie(const std::string& path,
                               const std::vector<std::string>& keys,
                               std::string* error = nullptr);
SnapshotStatus LoadCrashCookie(const std::string& path,
                               std::vector<std::string>* keys,
                               std::string* error = nullptr);

struct QuarantineEntry {
  std::string key;
  uint32_t strikes = 0;
};

SnapshotStatus SaveQuarantine(const std::string& path,
                              const std::vector<QuarantineEntry>& entries,
                              std::string* error = nullptr);
SnapshotStatus LoadQuarantine(const std::string& path,
                              std::vector<QuarantineEntry>* entries,
                              std::string* error = nullptr);

}  // namespace sdp

#endif  // SDPOPT_FLEET_SNAPSHOT_H_
