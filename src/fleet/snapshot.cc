#include "fleet/snapshot.h"

#include <errno.h>
#include <stdio.h>
#include <string.h>
#include <unistd.h>

#include "fleet/wire.h"
#include "service/plan_fingerprint.h"

namespace sdp {

namespace {

constexpr char kMagic[8] = {'S', 'D', 'P', 'S', 'N', 'A', 'P', '1'};
constexpr char kCookieMagic[8] = {'S', 'D', 'P', 'C', 'O', 'O', 'K', '1'};
constexpr char kQuarantineMagic[8] = {'S', 'D', 'P', 'Q', 'U', 'A', 'R', '1'};
constexpr uint32_t kVersion = 1;

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

// Writes `magic + FNV(payload) + payload` to `<path>.tmp.<pid>` and
// renames into place.  Shared by the cache-snapshot, crash-cookie, and
// quarantine writers so all three get identical torn-write protection.
SnapshotStatus WriteSnapshotFile(const std::string& path,
                                 const char magic[8],
                                 const std::string& payload,
                                 std::string* error) {
  const uint64_t checksum = FingerprintHash(payload);
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    SetError(error, "open " + tmp + ": " + strerror(errno));
    return SnapshotStatus::kIoError;
  }
  bool ok = std::fwrite(magic, 1, 8, f) == 8;
  ok = ok && std::fwrite(&checksum, 1, sizeof(checksum), f) ==
                 sizeof(checksum);
  ok = ok && (payload.empty() ||
              std::fwrite(payload.data(), 1, payload.size(), f) ==
                  payload.size());
  ok = std::fflush(f) == 0 && ok;
  ok = ::fsync(::fileno(f)) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    SetError(error, "write " + tmp + ": " + strerror(errno));
    ::unlink(tmp.c_str());
    return SnapshotStatus::kIoError;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    SetError(error, "rename " + tmp + ": " + strerror(errno));
    ::unlink(tmp.c_str());
    return SnapshotStatus::kIoError;
  }
  return SnapshotStatus::kOk;
}

// Reads a snapshot-family file, verifies magic + checksum, and leaves the
// raw payload in *payload for the caller's typed decode.
SnapshotStatus ReadSnapshotFile(const std::string& path,
                                const char magic[8],
                                std::string* payload,
                                std::string* error) {
  payload->clear();
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    SetError(error, "open " + path + ": " + strerror(errno));
    return SnapshotStatus::kIoError;
  }
  char got_magic[8];
  uint64_t checksum = 0;
  if (std::fread(got_magic, 1, sizeof(got_magic), f) != sizeof(got_magic) ||
      std::fread(&checksum, 1, sizeof(checksum), f) != sizeof(checksum)) {
    std::fclose(f);
    SetError(error, path + ": truncated header");
    return SnapshotStatus::kBadMagic;
  }
  if (memcmp(got_magic, magic, 8) != 0) {
    std::fclose(f);
    SetError(error, path + ": bad magic");
    return SnapshotStatus::kBadMagic;
  }
  char buf[1 << 16];
  for (;;) {
    const size_t n = std::fread(buf, 1, sizeof(buf), f);
    payload->append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    payload->clear();
    SetError(error, "read " + path + ": " + strerror(errno));
    return SnapshotStatus::kIoError;
  }
  if (FingerprintHash(*payload) != checksum) {
    payload->clear();
    SetError(error, path + ": checksum mismatch");
    return SnapshotStatus::kChecksumMismatch;
  }
  return SnapshotStatus::kOk;
}

}  // namespace

const char* SnapshotStatusName(SnapshotStatus status) {
  switch (status) {
    case SnapshotStatus::kOk:
      return "OK";
    case SnapshotStatus::kIoError:
      return "IO_ERROR";
    case SnapshotStatus::kBadMagic:
      return "BAD_MAGIC";
    case SnapshotStatus::kBadVersion:
      return "BAD_VERSION";
    case SnapshotStatus::kChecksumMismatch:
      return "CHECKSUM_MISMATCH";
    case SnapshotStatus::kEpochMismatch:
      return "EPOCH_MISMATCH";
    case SnapshotStatus::kCorrupt:
      return "CORRUPT";
  }
  return "UNKNOWN";
}

SnapshotStatus SaveCacheSnapshot(
    const std::string& path, uint64_t stats_epoch,
    const std::vector<PlanCacheExportEntry>& entries, std::string* error) {
  WireWriter w;
  w.PutU32(kVersion);
  w.PutU64(stats_epoch);
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const PlanCacheExportEntry& e : entries) EncodeCacheEntryTo(e, &w);
  return WriteSnapshotFile(path, kMagic, w.Take(), error);
}

SnapshotStatus LoadCacheSnapshot(const std::string& path,
                                 uint64_t expected_stats_epoch,
                                 std::vector<PlanCacheExportEntry>* entries,
                                 std::string* error) {
  entries->clear();
  std::string payload;
  const SnapshotStatus read_status =
      ReadSnapshotFile(path, kMagic, &payload, error);
  if (read_status != SnapshotStatus::kOk) return read_status;

  WireReader r(payload);
  const uint32_t version = r.GetU32();
  if (!r.ok() || version != kVersion) {
    SetError(error, path + ": unsupported version " + std::to_string(version));
    return SnapshotStatus::kBadVersion;
  }
  const uint64_t epoch = r.GetU64();
  if (!r.ok()) {
    SetError(error, path + ": truncated payload");
    return SnapshotStatus::kCorrupt;
  }
  if (epoch != expected_stats_epoch) {
    SetError(error, path + ": stats epoch " + std::to_string(epoch) +
                        " != expected " +
                        std::to_string(expected_stats_epoch));
    return SnapshotStatus::kEpochMismatch;
  }
  const uint32_t count = r.GetU32();
  if (!r.ok()) {
    SetError(error, path + ": truncated payload");
    return SnapshotStatus::kCorrupt;
  }
  entries->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PlanCacheExportEntry entry;
    if (!DecodeCacheEntryFrom(&r, &entry)) {
      entries->clear();
      SetError(error, path + ": entry " + std::to_string(i) +
                          " failed to decode");
      return SnapshotStatus::kCorrupt;
    }
    entries->push_back(std::move(entry));
  }
  if (!r.AtEnd()) {
    entries->clear();
    SetError(error, path + ": trailing bytes after last entry");
    return SnapshotStatus::kCorrupt;
  }
  return SnapshotStatus::kOk;
}

SnapshotStatus SaveCrashCookie(const std::string& path,
                               const std::vector<std::string>& keys,
                               std::string* error) {
  WireWriter w;
  w.PutU32(kVersion);
  w.PutU32(static_cast<uint32_t>(keys.size()));
  for (const std::string& key : keys) w.PutString(key);
  return WriteSnapshotFile(path, kCookieMagic, w.Take(), error);
}

SnapshotStatus LoadCrashCookie(const std::string& path,
                               std::vector<std::string>* keys,
                               std::string* error) {
  keys->clear();
  std::string payload;
  const SnapshotStatus read_status =
      ReadSnapshotFile(path, kCookieMagic, &payload, error);
  if (read_status != SnapshotStatus::kOk) return read_status;

  WireReader r(payload);
  const uint32_t version = r.GetU32();
  if (!r.ok() || version != kVersion) {
    SetError(error, path + ": unsupported version " + std::to_string(version));
    return SnapshotStatus::kBadVersion;
  }
  const uint32_t count = r.GetU32();
  if (!r.ok()) {
    SetError(error, path + ": truncated payload");
    return SnapshotStatus::kCorrupt;
  }
  keys->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string key = r.GetString();
    if (!r.ok()) {
      keys->clear();
      SetError(error, path + ": key " + std::to_string(i) +
                          " failed to decode");
      return SnapshotStatus::kCorrupt;
    }
    keys->push_back(std::move(key));
  }
  if (!r.AtEnd()) {
    keys->clear();
    SetError(error, path + ": trailing bytes after last key");
    return SnapshotStatus::kCorrupt;
  }
  return SnapshotStatus::kOk;
}

SnapshotStatus SaveQuarantine(const std::string& path,
                              const std::vector<QuarantineEntry>& entries,
                              std::string* error) {
  WireWriter w;
  w.PutU32(kVersion);
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const QuarantineEntry& e : entries) {
    w.PutString(e.key);
    w.PutU32(e.strikes);
  }
  return WriteSnapshotFile(path, kQuarantineMagic, w.Take(), error);
}

SnapshotStatus LoadQuarantine(const std::string& path,
                              std::vector<QuarantineEntry>* entries,
                              std::string* error) {
  entries->clear();
  std::string payload;
  const SnapshotStatus read_status =
      ReadSnapshotFile(path, kQuarantineMagic, &payload, error);
  if (read_status != SnapshotStatus::kOk) return read_status;

  WireReader r(payload);
  const uint32_t version = r.GetU32();
  if (!r.ok() || version != kVersion) {
    SetError(error, path + ": unsupported version " + std::to_string(version));
    return SnapshotStatus::kBadVersion;
  }
  const uint32_t count = r.GetU32();
  if (!r.ok()) {
    SetError(error, path + ": truncated payload");
    return SnapshotStatus::kCorrupt;
  }
  entries->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    QuarantineEntry e;
    e.key = r.GetString();
    e.strikes = r.GetU32();
    if (!r.ok()) {
      entries->clear();
      SetError(error, path + ": entry " + std::to_string(i) +
                          " failed to decode");
      return SnapshotStatus::kCorrupt;
    }
    entries->push_back(std::move(e));
  }
  if (!r.AtEnd()) {
    entries->clear();
    SetError(error, path + ": trailing bytes after last entry");
    return SnapshotStatus::kCorrupt;
  }
  return SnapshotStatus::kOk;
}

}  // namespace sdp
