#include "fleet/consistent_hash.h"

#include <algorithm>

#include "common/check.h"
#include "service/plan_fingerprint.h"

namespace sdp {

ConsistentHashRing::ConsistentHashRing(int num_replicas, int vnodes) {
  SDP_CHECK(num_replicas >= 1);
  SDP_CHECK(vnodes >= 1);
  live_.assign(static_cast<size_t>(num_replicas), true);
  ring_.reserve(static_cast<size_t>(num_replicas) * vnodes);
  for (int rep = 0; rep < num_replicas; ++rep) {
    for (int v = 0; v < vnodes; ++v) {
      const std::string label =
          "vnode/" + std::to_string(rep) + "/" + std::to_string(v);
      ring_.push_back(Point{FingerprintHash(label), rep});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    if (a.hash != b.hash) return a.hash < b.hash;
    return a.replica < b.replica;  // Hash ties resolve deterministically.
  });
}

void ConsistentHashRing::SetLive(int replica, bool live) {
  live_.at(replica) = live;
}

int ConsistentHashRing::NumLive() const {
  int n = 0;
  for (const bool alive : live_) n += alive ? 1 : 0;
  return n;
}

size_t ConsistentHashRing::LowerBound(uint64_t h) const {
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, uint64_t value) { return p.hash < value; });
  return it == ring_.end() ? 0 : static_cast<size_t>(it - ring_.begin());
}

int ConsistentHashRing::Route(const std::string& key) const {
  const size_t start = LowerBound(FingerprintHash(key));
  for (size_t step = 0; step < ring_.size(); ++step) {
    const Point& p = ring_[(start + step) % ring_.size()];
    if (live_[p.replica]) return p.replica;
  }
  return -1;
}

std::vector<int> ConsistentHashRing::RouteSequence(
    const std::string& key) const {
  std::vector<int> order;
  std::vector<bool> seen(live_.size(), false);
  const size_t start = LowerBound(FingerprintHash(key));
  for (size_t step = 0; step < ring_.size(); ++step) {
    const Point& p = ring_[(start + step) % ring_.size()];
    if (!live_[p.replica] || seen[p.replica]) continue;
    seen[p.replica] = true;
    order.push_back(p.replica);
  }
  return order;
}

int ConsistentHashRing::HomeReplica(const std::string& key) const {
  const size_t start = LowerBound(FingerprintHash(key));
  return ring_.empty() ? -1 : ring_[start % ring_.size()].replica;
}

}  // namespace sdp
