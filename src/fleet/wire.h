#ifndef SDPOPT_FLEET_WIRE_H_
#define SDPOPT_FLEET_WIRE_H_

#include <stdint.h>

#include <string>
#include <vector>

#include "harness/experiment.h"
#include "optimizer/optimizer_types.h"
#include "query/join_graph.h"
#include "service/plan_cache.h"

namespace sdp {

// Length-prefixed binary protocol spoken between fleet clients, the
// router, and replicas -- all over loopback TCP (common/socket_util.h).
//
// Frame layout (little-endian):
//
//   'S' 'F'  type:u8  flags:u8  payload_len:u32  [trace_ext]  payload...
//
// When kFlagTraceContext is set in flags, a fixed 16-byte extension --
// trace_id:u64 span_id:u64, little-endian -- sits between the header and
// the payload, carrying the distributed-trace context across processes
// (obs/dtrace.h).  `payload_len` never includes the extension, so old
// and new frames with identical payloads agree on the length field.
//
// Compatibility: a reader that predates the flag would not consume the
// extension and would desynchronize the stream, so senders MUST NOT set
// kFlagTraceContext unless the peer advertised support.  Replicas
// advertise it in the Pong *payload* (byte 0 carries the capability
// bits, kPongCapTraceContext) -- old routers ignore pong payloads and
// old replicas send empty ones, so both directions of a mixed-version
// fleet degrade to context-free frames instead of corrupt framing.
//
// The router forwards *opaque* response frames from replicas to clients:
// it never decodes optimizer results.  The one piece of framing the
// router does read is kFlagFillFollows, which tells it that the replica
// appended a kCacheInstall frame (a freshly computed cache entry) after
// the response; the router peels that frame off and broadcasts it to the
// other replicas asynchronously.
//
// Doubles travel as u64 bit patterns throughout, so every numeric field
// round-trips bit-exactly -- the same guarantee the plan cache and the
// parallel enumerator already make in-process.

enum class FrameType : uint8_t {
  kOptimizeRequest = 1,
  kOptimizeResponse = 2,
  kCacheInstall = 3,   // Payload: one PlanCacheExportEntry.
  kStatsRequest = 4,
  kStatsResponse = 5,
  kPing = 6,
  kPong = 7,
};

// Response flag: a kCacheInstall frame follows on the same connection.
constexpr uint8_t kFlagFillFollows = 0x01;
// A 16-byte trace-context extension follows the header (see above).
constexpr uint8_t kFlagTraceContext = 0x02;
// Request flag, router -> replica: serve this request *degraded* --
// greedy-only rung under a one-plan cost budget -- because the routing
// key is quarantined (crashed replicas N times).  Replicas that predate
// the flag ignore it and serve normally, which is safe: quarantine is a
// containment heuristic, not a correctness requirement.
constexpr uint8_t kFlagDegraded = 0x04;

// Pong payload byte 0 capability bits.  An empty pong payload (old
// replicas) advertises nothing.
constexpr uint8_t kPongCapTraceContext = 0x01;

// Payloads larger than this are rejected as corrupt framing.
constexpr uint32_t kMaxFramePayload = 64u << 20;

struct Frame {
  FrameType type = FrameType::kPing;
  uint8_t flags = 0;
  std::string payload;
  // Trace-context extension; meaningful when has_trace (flags carried
  // kFlagTraceContext on the wire).
  bool has_trace = false;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

// Blocking framed I/O.  False on peer close, timeout, or malformed
// header (bad magic / oversized payload).
bool WriteFrame(int fd, FrameType type, uint8_t flags,
                const std::string& payload);
// Traced variant: sets kFlagTraceContext and prepends the extension.
// Only call it on connections whose peer advertised
// kPongCapTraceContext.
bool WriteFrameTraced(int fd, FrameType type, uint8_t flags,
                      const std::string& payload, uint64_t trace_id,
                      uint64_t span_id);
bool ReadFrame(int fd, Frame* out);

// Pure in-memory frame codecs, byte-identical to the socket path.  They
// exist so tests can sweep truncations and mixed-version framings
// without sockets: DecodeFrameBytes consumes exactly one frame from
// `bytes + *pos`, advances *pos past it, and returns false (leaving
// *pos untouched) on truncation or malformed framing.
std::string EncodeFrameBytes(const Frame& frame);
bool DecodeFrameBytes(const std::string& bytes, size_t* pos, Frame* out);

// Bounds-checked byte-stream primitives used by every payload codec.
class WireWriter {
 public:
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);  // Bit pattern, not decimal text.
  void PutString(const std::string& s);

  const std::string& bytes() const { return bytes_; }
  std::string Take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

class WireReader {
 public:
  explicit WireReader(const std::string& bytes) : bytes_(bytes) {}

  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  int32_t GetI32() { return static_cast<int32_t>(GetU32()); }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  double GetDouble();
  std::string GetString();

  // False once any read ran past the end or a length prefix was absurd;
  // all subsequent reads return zero values.  Callers check once at the
  // end of a decode instead of after every field.
  bool ok() const { return ok_; }
  // True when the payload was consumed exactly (trailing garbage fails
  // strict decoders).
  bool AtEnd() const { return ok_ && pos_ == bytes_.size(); }

 private:
  bool Need(size_t n);

  const std::string& bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// One optimize call as it travels client -> router -> replica.  The
// query is self-contained (all processes bind the same deterministic
// synthetic catalog); the algorithm travels as a selector -- kind plus
// IDP's k -- and is reconstructed through the AlgorithmSpec factories,
// so both sides derive the identical cache tag.
struct FleetRequest {
  uint64_t request_id = 0;
  Query query;
  AlgorithmSpec::Kind algo = AlgorithmSpec::Kind::kSDP;
  int idp_k = 7;
  // Plan enumerator the replica must run (part of the routing key: plans
  // from different enumerators never coalesce in the shared cache tier).
  PlanEnumeratorKind enumerator = PlanEnumeratorKind::kDPsize;

  AlgorithmSpec Spec() const;
};

// The reply as it travels replica -> router -> client.  `fingerprint` is
// the replica-side ResultFingerprint of the served result: clients and
// tests compare plans byte-exactly across replicas, snapshots and
// broadcasts without a plan-tree codec on the client side.
struct FleetResponse {
  uint64_t request_id = 0;
  int32_t replica_id = -1;  // Which replica served it (routing tests).
  bool ok = false;
  bool rejected = false;
  bool cache_hit = false;
  bool feasible = false;
  uint8_t status_code = 0;  // OptStatusCode.
  int32_t retry_after_ms = 0;
  uint64_t cost_bits = 0;
  uint64_t rows_bits = 0;
  uint64_t plans_costed = 0;
  std::string error;
  std::string fingerprint;
  // Quarantine visibility: true when the replica served the request under
  // kFlagDegraded, and the fallback rung that actually resolved it
  // ("greedy" under quarantine, "sdp"/"idp"/"dp" otherwise) so clients
  // and tests can assert the degraded path end to end.
  bool degraded = false;
  std::string rung;
};

// Point-in-time replica health + metrics, served over kStatsRequest.
struct FleetReplicaStats {
  int32_t replica_id = -1;
  uint64_t requests_completed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  int64_t queue_depth = 0;
  int64_t inflight = 0;
  uint64_t cache_entries = 0;
  uint64_t cache_bytes = 0;
  uint64_t stats_epoch = 0;
  std::string prometheus;  // PrometheusText(replica=<id>).
};

// Payload codecs.  Encode never fails; Decode returns false on any
// bounds violation, bad enum value, or trailing garbage, leaving *out in
// an unspecified state.
void EncodeQuery(const Query& query, WireWriter* w);
bool DecodeQuery(WireReader* r, Query* out);

std::string EncodeFleetRequest(const FleetRequest& req);
bool DecodeFleetRequest(const std::string& payload, FleetRequest* out);

std::string EncodeFleetResponse(const FleetResponse& resp);
bool DecodeFleetResponse(const std::string& payload, FleetResponse* out);

std::string EncodeCacheEntry(const PlanCacheExportEntry& entry);
bool DecodeCacheEntry(const std::string& payload, PlanCacheExportEntry* out);

// Entry codec against an existing writer/reader, for snapshot files that
// pack many entries into one stream.
void EncodeCacheEntryTo(const PlanCacheExportEntry& entry, WireWriter* w);
bool DecodeCacheEntryFrom(WireReader* r, PlanCacheExportEntry* out);

std::string EncodeReplicaStats(const FleetReplicaStats& stats);
bool DecodeReplicaStats(const std::string& payload, FleetReplicaStats* out);

}  // namespace sdp

#endif  // SDPOPT_FLEET_WIRE_H_
