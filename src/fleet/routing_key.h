#ifndef SDPOPT_FLEET_ROUTING_KEY_H_
#define SDPOPT_FLEET_ROUTING_KEY_H_

#include <string>

#include "catalog/catalog.h"
#include "fleet/wire.h"
#include "stats/column_stats.h"

namespace sdp {

// The string the router's consistent-hash ring hashes for a request: the
// structural canonical query key (CanonicalizeQuery -- the same bytes the
// replicas key their plan caches with) plus the algorithm selector, so
// the same query under two algorithms may land on two replicas but every
// repetition of one (query, algorithm) pair lands on the same cache.
//
// Shared between the router (placement) and the replicas (crash-cookie
// journaling): a replica that dies mid-request leaves exactly these bytes
// in its cookie file, and the supervisor's poison-strike accounting must
// agree with the router's quarantine lookups byte-for-byte.
std::string FleetRoutingKey(const FleetRequest& request,
                            const Catalog& catalog,
                            const StatsCatalog& stats);

}  // namespace sdp

#endif  // SDPOPT_FLEET_ROUTING_KEY_H_
