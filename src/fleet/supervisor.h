#ifndef SDPOPT_FLEET_SUPERVISOR_H_
#define SDPOPT_FLEET_SUPERVISOR_H_

#include <sys/types.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fleet/replica.h"
#include "fleet/router.h"

namespace sdp {

// Forks and supervises a fleet: N replica processes plus the in-process
// router.  The supervisor binds every listen socket BEFORE forking and
// keeps its copy of each fd, which is what makes warm restart trivial --
// RestartReplica() re-forks onto the retained fd, so the replica comes
// back on the same port, the ring never changes, and the router's health
// probe revives it automatically.
//
// Self-healing: a reaper thread is the fleet's single waitpid(2) owner
// while the supervisor runs.  It collects every replica exit, and -- when
// `auto_respawn` is on -- re-forks crashed replicas on their retained
// listen fds with exponential backoff plus deterministic jitter.  A
// replica that crashes `condemn_after` times in a row, each within
// `crash_loop_window_ms` of its spawn, is *condemned*: permanently
// removed from the ring (router SetCondemned) until an operator
// RestartReplica() clears the verdict.  With `cookie_dir` set, crashed
// replicas' in-flight routing keys (their crash cookies) are converted to
// poison strikes on the router and persisted to the quarantine file.
struct FleetConfig {
  int num_replicas = 3;
  int router_port = 0;           // 0 = kernel-assigned; see router_port().
  int router_obs_port = 0;       // /fleetz + merged /metrics; 0 = off.
  // Replica i serves obs on replica_obs_base_port + i; 0 = off.
  int replica_obs_base_port = 0;
  // Replica i snapshots to <snapshot_dir>/replica<i>.snap; "" = off.
  std::string snapshot_dir;
  SchemaConfig schema;
  // Template for each replica's OptimizerService (stats_epoch included).
  ServiceConfig service;
  int vnodes = 64;
  int max_attempts = 3;
  int health_interval_ms = 200;
  // --- self-healing ---
  // Off by default: tests and tools that kill replicas expect them to
  // stay dead unless they opted into supervision.
  bool auto_respawn = false;
  // Crash cookies land in <cookie_dir>/replica<i>.cookie and the strike
  // ledger in <cookie_dir>/quarantine.qrt; "" disables both.
  std::string cookie_dir;
  int condemn_after = 3;           // K rapid crashes in a row => condemned.
  int crash_loop_window_ms = 2000; // "rapid" = died this soon after spawn.
  int respawn_backoff_ms = 100;    // Base backoff, doubled per rapid crash.
  int respawn_backoff_max_ms = 2000;
  // Jitter stream seed: the same seed, replica and crash ordinal always
  // produce the same backoff, so chaos schedules replay byte-identically.
  uint64_t respawn_jitter_seed = 1;
  int quarantine_strikes = 3;      // Router passthrough.
  double retry_budget_ratio = 0.2; // Router passthrough.
  uint64_t retry_budget_burst = 64;
};

class FleetSupervisor {
 public:
  explicit FleetSupervisor(FleetConfig config);
  ~FleetSupervisor();

  FleetSupervisor(const FleetSupervisor&) = delete;
  FleetSupervisor& operator=(const FleetSupervisor&) = delete;

  // Binds all sockets, forks the replicas, starts the router + reaper.
  bool Start(std::string* error);
  // Joins the reaper, SIGTERMs every replica (graceful drain, snapshots
  // saved), waits for them, stops the router.  Idempotent.
  void Stop();

  int router_port() const { return router_port_; }
  int num_replicas() const { return config_.num_replicas; }
  int replica_port(int i) const { return replica_ports_.at(i); }
  pid_t replica_pid(int i) const;
  // True while replica i's process runs (more precisely: until the reaper
  // collects its exit).  Never calls waitpid itself -- the reaper is the
  // single owner, so no exit status can be double-reaped.
  bool ReplicaAlive(int i) const;

  // Operator kill: sends `sig` (SIGTERM = graceful drain + snapshot,
  // SIGKILL = hard kill), unmanages the replica so the reaper will NOT
  // respawn it, and waits for the exit to be collected.  The router
  // notices via its health probe and fails the key range over.
  bool KillReplica(int i, int sig);
  // Organic-crash simulation: sends `sig` but leaves the replica managed,
  // so a supervising reaper (auto_respawn) respawns it.  Returns without
  // waiting -- the whole point is watching the fleet heal itself.
  bool CrashReplica(int i, int sig);
  // Re-forks replica i on its retained listen fd (same port), clearing
  // any condemnation.  With a snapshot dir configured the new process
  // restores the drain-time snapshot and rejoins warm.
  bool RestartReplica(int i);

  // Self-healing introspection.
  bool ReplicaCondemned(int i) const;
  uint64_t ReplicaRestarts(int i) const;
  // Test hook: the next `count` auto-respawns of replica i fork a child
  // that exits immediately with a nonzero code, simulating a crash loop.
  void FailNextSpawns(int i, int count);
  const SelfHealingBoard* board() const { return board_.get(); }
  // "" when cookie_dir is unset.
  std::string quarantine_path() const;

  FleetRouter* router() { return router_.get(); }

 private:
  // Per-replica supervision record, under sup_mu_.
  struct Supervised {
    pid_t pid = -1;
    bool managed = false;      // Reaper may respawn after a crash.
    bool condemned = false;
    double spawn_seconds = 0;  // Monotonic fork time (crash-loop window).
    double respawn_at = -1;    // Monotonic respawn deadline; <0 = none.
    int rapid_crashes = 0;     // Consecutive crashes inside the window.
    uint64_t crash_seq = 0;    // Total crashes (jitter stream ordinal).
    uint64_t restarts = 0;     // Auto-respawns delivered.
    int last_backoff_ms = 0;   // Backoff applied before the next respawn.
    int fail_next_spawns = 0;  // Test hook (FailNextSpawns).
  };

  ReplicaConfig MakeReplicaConfig(int i) const;
  pid_t ForkReplica(int i);
  std::string CookiePath(int i) const;
  void ReaperLoop();
  // Reaper helpers; sup_mu_ held.
  void CollectExitLocked(int i, int status, double now);
  void RespawnDueLocked(double now);

  FleetConfig config_;
  std::vector<int> replica_listen_fds_;
  std::vector<int> replica_ports_;
  int router_listen_fd_ = -1;
  int router_port_ = 0;
  std::unique_ptr<FleetRouter> router_;
  std::unique_ptr<SelfHealingBoard> board_;

  mutable std::mutex sup_mu_;
  std::vector<Supervised> sup_;
  std::thread reaper_thread_;
  std::atomic<bool> reaper_stop_{false};

  bool started_ = false;
};

}  // namespace sdp

#endif  // SDPOPT_FLEET_SUPERVISOR_H_
