#ifndef SDPOPT_FLEET_SUPERVISOR_H_
#define SDPOPT_FLEET_SUPERVISOR_H_

#include <sys/types.h>

#include <memory>
#include <string>
#include <vector>

#include "fleet/replica.h"
#include "fleet/router.h"

namespace sdp {

// Forks and supervises a fleet: N replica processes plus the in-process
// router.  The supervisor binds every listen socket BEFORE forking and
// keeps its copy of each fd, which is what makes warm restart trivial --
// RestartReplica() re-forks onto the retained fd, so the replica comes
// back on the same port, the ring never changes, and the router's health
// probe revives it automatically.
struct FleetConfig {
  int num_replicas = 3;
  int router_port = 0;           // 0 = kernel-assigned; see router_port().
  int router_obs_port = 0;       // /fleetz + merged /metrics; 0 = off.
  // Replica i serves obs on replica_obs_base_port + i; 0 = off.
  int replica_obs_base_port = 0;
  // Replica i snapshots to <snapshot_dir>/replica<i>.snap; "" = off.
  std::string snapshot_dir;
  SchemaConfig schema;
  // Template for each replica's OptimizerService (stats_epoch included).
  ServiceConfig service;
  int vnodes = 64;
  int max_attempts = 3;
  int health_interval_ms = 200;
};

class FleetSupervisor {
 public:
  explicit FleetSupervisor(FleetConfig config);
  ~FleetSupervisor();

  FleetSupervisor(const FleetSupervisor&) = delete;
  FleetSupervisor& operator=(const FleetSupervisor&) = delete;

  // Binds all sockets, forks the replicas, starts the router.
  bool Start(std::string* error);
  // SIGTERMs every replica (graceful drain, snapshots saved), waits for
  // them, stops the router.  Idempotent.
  void Stop();

  int router_port() const { return router_port_; }
  int num_replicas() const { return config_.num_replicas; }
  int replica_port(int i) const { return replica_ports_.at(i); }
  pid_t replica_pid(int i) const { return replica_pids_.at(i); }
  bool ReplicaAlive(int i);

  // Kills replica i with `sig` (SIGTERM = graceful drain + snapshot,
  // SIGKILL = simulated crash) and reaps it.  The router notices via its
  // health probe and fails its key range over.
  bool KillReplica(int i, int sig);
  // Re-forks replica i on its retained listen fd (same port).  With a
  // snapshot dir configured the new process restores the drain-time
  // snapshot and rejoins warm.
  bool RestartReplica(int i);

  FleetRouter* router() { return router_.get(); }

 private:
  ReplicaConfig MakeReplicaConfig(int i) const;
  pid_t ForkReplica(int i);

  FleetConfig config_;
  std::vector<int> replica_listen_fds_;
  std::vector<int> replica_ports_;
  std::vector<pid_t> replica_pids_;
  int router_listen_fd_ = -1;
  int router_port_ = 0;
  std::unique_ptr<FleetRouter> router_;
  bool started_ = false;
};

}  // namespace sdp

#endif  // SDPOPT_FLEET_SUPERVISOR_H_
