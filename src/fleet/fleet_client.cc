#include "fleet/fleet_client.h"

#include <unistd.h>

#include "common/socket_util.h"

namespace sdp {

namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

FleetClient::~FleetClient() { Close(); }

bool FleetClient::Connect(int port, int timeout_ms, std::string* error) {
  Close();
  fd_ = ConnectLocalhost(port, timeout_ms, error);
  if (fd_ < 0) return false;
  SetIoTimeout(fd_, io_timeout_ms_);
  return true;
}

void FleetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool FleetClient::Optimize(const FleetRequest& request, FleetResponse* resp,
                           std::string* error) {
  if (fd_ < 0) {
    SetError(error, "not connected");
    return false;
  }
  if (!WriteFrame(fd_, FrameType::kOptimizeRequest, 0,
                  EncodeFleetRequest(request))) {
    SetError(error, "send failed");
    Close();
    return false;
  }
  Frame frame;
  if (!ReadFrame(fd_, &frame) ||
      frame.type != FrameType::kOptimizeResponse) {
    SetError(error, "no response");
    Close();
    return false;
  }
  if (!DecodeFleetResponse(frame.payload, resp)) {
    SetError(error, "malformed response");
    Close();
    return false;
  }
  return true;
}

bool FleetClient::Ping(std::string* error) {
  if (fd_ < 0) {
    SetError(error, "not connected");
    return false;
  }
  Frame frame;
  if (!WriteFrame(fd_, FrameType::kPing, 0, std::string()) ||
      !ReadFrame(fd_, &frame) || frame.type != FrameType::kPong) {
    SetError(error, "ping failed");
    Close();
    return false;
  }
  return true;
}

}  // namespace sdp
