#ifndef SDPOPT_FLEET_ROUTER_H_
#define SDPOPT_FLEET_ROUTER_H_

#include <stdint.h>

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "fleet/consistent_hash.h"
#include "fleet/snapshot.h"
#include "fleet/wire.h"
#include "obs/http_server.h"
#include "stats/column_stats.h"

namespace sdp {

// Lock-free view of the supervisor's self-healing state, written by the
// reaper thread and read by the router's /fleetz and merged-/metrics
// renderers.  Non-movable (atomics), so the supervisor owns one for the
// fleet's lifetime and hands the router a pointer.
struct SelfHealingBoard {
  struct Replica {
    std::atomic<uint64_t> restarts{0};  // Auto-respawns delivered.
    std::atomic<uint64_t> crashes{0};   // Unclean exits observed.
    std::atomic<bool> condemned{false};
  };

  explicit SelfHealingBoard(size_t num_replicas) : replicas(num_replicas) {}
  SelfHealingBoard(const SelfHealingBoard&) = delete;
  SelfHealingBoard& operator=(const SelfHealingBoard&) = delete;

  // deque for stable addresses: atomics are not movable and the board
  // never resizes after construction.
  std::deque<Replica> replicas;
};

// The fleet's thin router: accepts framed optimize requests from clients
// on a loopback socket, consistent-hashes each request's canonical
// plan-cache key (CanonicalizeQuery, the same machinery the replicas key
// their caches with) onto a replica, and forwards the request.  The
// router never decodes optimizer *results* -- responses are forwarded as
// opaque frames -- so its per-request cost is canonicalization plus two
// socket hops.
//
// Failover: a send/recv failure marks the replica dead in the ring and
// retries the request on the next live replica in ring order, up to
// `max_attempts` total tries.  Optimize requests are idempotent (the
// plan caches make re-execution converge to the identical answer), so
// resending after a mid-request replica death is safe.  The health
// thread keeps probing dead replicas and revives them when they answer
// again -- a restarted replica rejoins the ring automatically, at the
// same port, owning exactly its old key range.
//
// Cache-fill broadcast: a replica that just computed a fresh plan
// appends the exported cache entry after its response (kFlagFillFollows).
// The router peels that frame off and a broadcaster thread forwards it
// to every other live replica, so one computation warms the whole fleet
// without the replicas knowing about each other.
struct RouterConfig {
  // Client-facing listen socket, already bound (supervisor-owned).
  int listen_fd = -1;
  std::vector<int> replica_ports;
  // Replica introspection (HTTP) ports, parallel to replica_ports; the
  // span collector pulls per-trace flight-recorder slices from
  // /flightrecorderz on these.  Empty or 0 = no slice for that replica
  // (/dtracez still shows the router-side spans).
  std::vector<int> replica_obs_ports;
  int vnodes = 64;
  int max_attempts = 3;       // Total tries per request, across replicas.
  int connect_timeout_ms = 2000;
  int io_timeout_ms = 60000;  // Per forwarded request.
  int health_interval_ms = 200;
  // Health probes use their own short deadline: a dead replica's port
  // stays bound (the supervisor retains the listen fd for same-port
  // restart), so a probe to a dead replica connects fine and then hangs
  // -- only this timeout turns that hang into "dead" promptly.
  int health_io_timeout_ms = 1000;
  int poll_interval_ms = 100;
  int obs_port = 0;           // /fleetz + merged /metrics; 0 = disabled.
  SchemaConfig schema;        // Must match the replicas'.
  // Poison-query quarantine: a routing key whose crash strikes reach this
  // count is served *degraded* (kFlagDegraded: greedy-only rung, one-plan
  // budget) instead of being fed to healthy replicas at full strength.
  int quarantine_strikes = 3;
  // Router-wide retry token budget: a retry (any attempt after the first)
  // is allowed only while retries_spent < burst + ratio * requests_routed.
  // Deterministic by construction -- no clocks -- so seeded chaos runs
  // shed identically.  The defaults are generous: healthy fleets never
  // notice, but a storm of failovers against a degraded fleet exhausts
  // the budget and sheds with a typed retry-after instead of amplifying.
  double retry_budget_ratio = 0.2;
  uint64_t retry_budget_burst = 64;
  // Supervisor's self-healing counters for rendering; may be null (e.g.
  // router-only tests), which renders zeros.
  const SelfHealingBoard* board = nullptr;
};

struct RouterStats {
  uint64_t requests_routed = 0;
  uint64_t failovers = 0;            // Attempts that moved to another replica.
  uint64_t failed_after_retry = 0;   // Requests that exhausted every attempt.
  uint64_t broadcasts_sent = 0;      // Cache-fill frames delivered to peers.
  uint64_t broadcast_failures = 0;
  uint64_t retry_budget_exhausted = 0;  // Requests shed by the retry budget.
  uint64_t quarantine_served = 0;       // Requests served degraded.
  uint64_t quarantined_keys = 0;        // Keys at/over the strike threshold.
};

// One routed request as remembered for /dtracez: enough to find its spans
// (the trace id) and summarize the route without re-deriving anything.
struct RouteTraceEntry {
  uint64_t trace_id = 0;
  uint64_t request_id = 0;
  uint64_t key_hash = 0;   // DtraceHash of the routing key.
  int replica = -1;        // Who answered; -1 = exhausted every attempt.
  int attempts = 0;
  bool ok = false;
};

class FleetRouter {
 public:
  explicit FleetRouter(RouterConfig config);
  ~FleetRouter();

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  bool Start(std::string* error);
  void Stop();

  int obs_port() const { return obs_.port(); }
  RouterStats stats() const;
  int num_replicas() const {
    return static_cast<int>(config_.replica_ports.size());
  }
  bool ReplicaLive(int replica) const;

  // Condemnation: a crash-looping replica is permanently removed from the
  // ring -- the health loop stops probing it, so nothing revives it until
  // an operator RestartReplica() clears the verdict.
  void SetCondemned(int replica);
  void ClearCondemned(int replica);
  bool ReplicaCondemned(int replica) const;

  // Poison-strike ledger (supervisor calls AddPoisonStrike as it reaps
  // crashed replicas; returns the key's new strike count).  Keys at/over
  // `quarantine_strikes` are served degraded from then on.
  uint32_t AddPoisonStrike(const std::string& key);
  bool IsQuarantined(const std::string& key) const;
  // Bulk strike install/export, for quarantine-file persistence.
  void InstallQuarantineStrikes(const std::vector<QuarantineEntry>& entries);
  std::vector<QuarantineEntry> QuarantineSnapshot() const;

  // The string the ring hashes for a request: canonical query key plus
  // the algorithm selector.  Exposed so tests can assert placement.
  std::string RoutingKey(const FleetRequest& request) const;
  // Current failover order for a key (first element = owner).
  std::vector<int> RouteSequenceForKey(const std::string& key) const;

  // /fleetz, /dtracez and merged-/metrics rendering, exposed for
  // socketless tests.
  HttpResponse HandleHttp(const HttpRequest& request) const;

  // Recently routed requests, newest first (for tests and /dtracez).
  std::vector<RouteTraceEntry> RecentTraces() const;

 private:
  struct ReplicaView {
    bool live = true;
    bool stats_valid = false;
    FleetReplicaStats last_stats;
    // Health-probe observability (see HealthLoop).
    uint64_t probe_attempts = 0;
    uint64_t probe_successes = 0;
    uint64_t probe_failures = 0;
    double last_probe_seconds = -1;  // Monotonic; -1 = never probed.
  };
  struct Broadcast {
    int origin = -1;
    std::string payload;
    // Originating request, so the fan-out is trace-attributed.
    uint64_t request_id = 0;
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
  };

  void AcceptLoop();
  void ServeClient(int conn);
  // Forwards one optimize request with failover; false only when the
  // client connection itself is broken.  `replica_caps` holds each cached
  // connection's advertised Pong capability bits (kPongCap*), learned at
  // ping-gate time.
  bool RouteOptimize(int client_fd, const Frame& frame,
                     std::vector<int>* replica_conns,
                     std::vector<uint8_t>* replica_caps);
  int ConnectReplica(int replica) const;
  void MarkDead(int replica);
  void HealthLoop();
  void BroadcastLoop();
  void RememberTrace(const RouteTraceEntry& entry);
  std::string RenderFleetz() const;
  std::string RenderMergedMetrics() const;
  // /dtracez bodies; see HandleHttp for the query grammar.
  std::string RenderDtracezIndex() const;
  std::string RenderDtracezTimeline(uint64_t trace_id,
                                    const std::string& format) const;
  // Pulls the owning replica's structural slice for `trace_id` over its
  // introspection port; empty when unavailable.
  std::string FetchReplicaSlice(int replica, uint64_t trace_id,
                                bool structural) const;
  // Fleet-wide CPU profile: asks every live replica's /profilez to sample
  // for `seconds` (concurrently, so the windows overlap), then merges the
  // folded stacks by identical phase+symbol key.
  std::string RenderMergedProfilez(double seconds) const;

  RouterConfig config_;
  Catalog catalog_;
  StatsCatalog stats_catalog_;

  mutable std::mutex ring_mu_;
  ConsistentHashRing ring_;
  std::vector<ReplicaView> views_;
  std::vector<bool> condemned_;  // Under ring_mu_, parallel to views_.

  // Strike counts per routing key, under its own lock: the request path
  // reads it once per attempt and the reaper writes it on crashes, so it
  // must not contend with the ring.
  mutable std::mutex quarantine_mu_;
  std::map<std::string, uint32_t> strikes_;

  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_routed_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> failed_after_retry_{0};
  std::atomic<uint64_t> broadcasts_sent_{0};
  std::atomic<uint64_t> broadcast_failures_{0};
  std::atomic<uint64_t> retries_spent_{0};
  std::atomic<uint64_t> retry_budget_exhausted_{0};
  std::atomic<uint64_t> quarantine_served_{0};

  std::mutex broadcast_mu_;
  std::condition_variable broadcast_cv_;
  std::deque<Broadcast> broadcast_queue_;

  // Route-trace registry backing /dtracez, newest at the front.
  static constexpr size_t kMaxRecentTraces = 128;
  mutable std::mutex traces_mu_;
  std::deque<RouteTraceEntry> recent_traces_;

  std::thread accept_thread_;
  std::thread health_thread_;
  std::thread broadcast_thread_;
  std::mutex clients_mu_;
  std::vector<std::thread> client_threads_;

  HttpServer obs_;
  bool started_ = false;
};

}  // namespace sdp

#endif  // SDPOPT_FLEET_ROUTER_H_
