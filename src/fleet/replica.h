#ifndef SDPOPT_FLEET_REPLICA_H_
#define SDPOPT_FLEET_REPLICA_H_

#include <string>

#include "catalog/catalog.h"
#include "service/optimizer_service.h"

namespace sdp {

// One fleet replica: a forked worker process hosting an OptimizerService
// behind an already-bound loopback listen socket, with its own obs
// endpoint and an optional persistent plan-cache snapshot.
struct ReplicaConfig {
  int replica_id = 0;
  // Listen socket bound by the supervisor BEFORE forking.  The parent
  // keeps its copy, so a restarted replica reuses the same port and the
  // router's view of the fleet never changes.
  int listen_fd = -1;
  // Observability HTTP port (PR 5 endpoints, with every Prometheus
  // family stamped replica="<id>"); 0 = obs disabled.
  int obs_port = 0;
  // Plan-cache snapshot file; empty = no persistence.  Loaded (stats-
  // epoch-checked) at startup, written on graceful drain.
  std::string snapshot_path;
  // Crash-cookie journal file; empty = no journaling.  The replica keeps
  // this file equal to the set of routing keys it has in flight (rewritten
  // tmp+rename on every change, emptied at startup), so the supervisor can
  // read exactly what a crashed process was computing and assign poison
  // strikes to those keys.
  std::string cookie_path;
  // All fleet processes build the identical deterministic catalog/stats,
  // which is what lets queries travel as positions + edges.
  SchemaConfig schema;
  ServiceConfig service;
  // Connections idle longer than this are still responsive to shutdown
  // (the read loop polls at this granularity).
  int poll_interval_ms = 100;
};

// Runs the replica until SIGTERM/SIGINT (graceful drain: stop accepting,
// finish in-flight requests, save the snapshot, flush flight-recorder
// dumps, stop the obs server) or until the listen socket dies.  Returns
// the process exit code.  Designed to be the child_main of
// SpawnProcess; also callable in-process by tests.
int ReplicaMain(const ReplicaConfig& config);

}  // namespace sdp

#endif  // SDPOPT_FLEET_REPLICA_H_
