#ifndef SDPOPT_FLEET_FLEET_CLIENT_H_
#define SDPOPT_FLEET_FLEET_CLIENT_H_

#include <string>

#include "fleet/wire.h"

namespace sdp {

// Blocking client for the fleet router (or, in tests, a replica
// directly): one connection, one outstanding request at a time.  Drive
// several clients from several threads for concurrency -- the router
// gives each connection its own serving thread.
class FleetClient {
 public:
  FleetClient() = default;
  ~FleetClient();

  FleetClient(const FleetClient&) = delete;
  FleetClient& operator=(const FleetClient&) = delete;

  bool Connect(int port, int timeout_ms, std::string* error);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Round-trips one optimize request.  False on transport failure (the
  // connection is closed); a false return says nothing about the
  // optimization itself -- inspect resp->ok for that.
  bool Optimize(const FleetRequest& request, FleetResponse* resp,
                std::string* error);

  // Liveness probe: kPing -> kPong.
  bool Ping(std::string* error);

 private:
  int fd_ = -1;
  int io_timeout_ms_ = 60000;
};

}  // namespace sdp

#endif  // SDPOPT_FLEET_FLEET_CLIENT_H_
