#include "fleet/router.h"

#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <sstream>

#include "common/socket_util.h"
#include "common/subprocess.h"
#include "cost/cost_model.h"
#include "service/plan_fingerprint.h"

namespace sdp {

namespace {

// JSON string escaping for the /fleetz payload (keys and error strings
// are ASCII identifiers, so only the basics are needed).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

FleetRouter::FleetRouter(RouterConfig config)
    : config_(std::move(config)),
      catalog_(MakeSyntheticCatalog(config_.schema)),
      stats_catalog_(SynthesizeStats(catalog_)),
      ring_(static_cast<int>(config_.replica_ports.empty()
                                 ? 1
                                 : config_.replica_ports.size()),
            config_.vnodes),
      views_(config_.replica_ports.size()),
      obs_([this](const HttpRequest& req) { return HandleHttp(req); }) {}

FleetRouter::~FleetRouter() { Stop(); }

bool FleetRouter::Start(std::string* error) {
  if (started_) {
    if (error != nullptr) *error = "router already started";
    return false;
  }
  if (config_.listen_fd < 0 || config_.replica_ports.empty()) {
    if (error != nullptr) *error = "router needs a listen fd and replicas";
    return false;
  }
  if (config_.obs_port > 0 && !obs_.Start(config_.obs_port, error)) {
    return false;
  }
  stop_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  health_thread_ = std::thread([this] { HealthLoop(); });
  broadcast_thread_ = std::thread([this] { BroadcastLoop(); });
  started_ = true;
  return true;
}

void FleetRouter::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  broadcast_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (health_thread_.joinable()) health_thread_.join();
  if (broadcast_thread_.joinable()) broadcast_thread_.join();
  std::vector<std::thread> clients;
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    clients.swap(client_threads_);
  }
  for (std::thread& t : clients) t.join();
  obs_.Stop();
  started_ = false;
}

RouterStats FleetRouter::stats() const {
  RouterStats s;
  s.requests_routed = requests_routed_.load();
  s.failovers = failovers_.load();
  s.failed_after_retry = failed_after_retry_.load();
  s.broadcasts_sent = broadcasts_sent_.load();
  s.broadcast_failures = broadcast_failures_.load();
  return s;
}

bool FleetRouter::ReplicaLive(int replica) const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return ring_.IsLive(replica);
}

std::string FleetRouter::RoutingKey(const FleetRequest& request) const {
  // The structural canonical key -- the same bytes the replica's plan
  // cache keys on -- plus the algorithm selector, so the same query under
  // two algorithms may land on two replicas but every repetition of one
  // (query, algorithm) pair lands on the same cache.
  const CostModel cost(catalog_, stats_catalog_, request.query.graph,
                       CostParams(), request.query.filters);
  const CanonicalQueryForm form = CanonicalizeQuery(request.query, cost);
  return form.key + "|algo=" +
         std::to_string(static_cast<int>(request.algo)) + "/" +
         std::to_string(request.idp_k);
}

std::vector<int> FleetRouter::RouteSequenceForKey(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return ring_.RouteSequence(key);
}

void FleetRouter::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire) && !ShutdownRequested()) {
    const int ready = PollReadable(config_.listen_fd,
                                   config_.poll_interval_ms);
    if (ready < 0) break;
    if (ready == 0) continue;
    const int conn = ::accept(config_.listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    std::lock_guard<std::mutex> lock(clients_mu_);
    client_threads_.emplace_back([this, conn] { ServeClient(conn); });
  }
}

int FleetRouter::ConnectReplica(int replica) const {
  std::string error;
  const int fd = ConnectLocalhost(config_.replica_ports[replica],
                                  config_.connect_timeout_ms, &error);
  if (fd >= 0) SetIoTimeout(fd, config_.io_timeout_ms);
  return fd;
}

void FleetRouter::MarkDead(int replica) {
  std::lock_guard<std::mutex> lock(ring_mu_);
  ring_.SetLive(replica, false);
  views_[replica].live = false;
  views_[replica].stats_valid = false;
}

void FleetRouter::ServeClient(int conn) {
  SetIoTimeout(conn, config_.io_timeout_ms);
  // Connections to replicas, opened on first use and kept for the life
  // of this client connection (one outstanding request at a time per
  // client connection, so no framing interleave is possible).
  std::vector<int> replica_conns(config_.replica_ports.size(), -1);
  while (!stop_.load(std::memory_order_acquire) && !ShutdownRequested()) {
    const int ready = PollReadable(conn, config_.poll_interval_ms);
    if (ready < 0) break;
    if (ready == 0) continue;
    Frame frame;
    if (!ReadFrame(conn, &frame)) break;
    bool ok = true;
    switch (frame.type) {
      case FrameType::kOptimizeRequest:
        ok = RouteOptimize(conn, frame, &replica_conns);
        break;
      case FrameType::kPing:
        ok = WriteFrame(conn, FrameType::kPong, 0, std::string());
        break;
      default:
        ok = false;
        break;
    }
    if (!ok) break;
  }
  for (const int fd : replica_conns) {
    if (fd >= 0) ::close(fd);
  }
  ::close(conn);
}

bool FleetRouter::RouteOptimize(int client_fd, const Frame& frame,
                                std::vector<int>* replica_conns) {
  requests_routed_.fetch_add(1, std::memory_order_relaxed);

  FleetRequest request;
  if (!DecodeFleetRequest(frame.payload, &request)) {
    FleetResponse resp;
    resp.ok = false;
    resp.error = "malformed optimize request";
    return WriteFrame(client_fd, FrameType::kOptimizeResponse, 0,
                      EncodeFleetResponse(resp));
  }
  const std::string key = RoutingKey(request);

  int attempts = 0;
  bool first_try = true;
  while (attempts < config_.max_attempts) {
    std::vector<int> sequence;
    {
      std::lock_guard<std::mutex> lock(ring_mu_);
      sequence = ring_.RouteSequence(key);
    }
    if (sequence.empty()) break;  // No live replica at all.
    const int replica = sequence.front();
    if (!first_try) failovers_.fetch_add(1, std::memory_order_relaxed);
    first_try = false;
    ++attempts;

    int& fd = (*replica_conns)[replica];
    // A cached connection may be stale -- the replica could have
    // restarted since it was opened (new process, same port).  On a
    // cached-connection failure, retry once on a fresh connection to the
    // SAME replica before declaring it dead; otherwise a warm-restarted
    // replica gets spuriously marked dead by the first request after its
    // comeback, bouncing its keys off their home.
    bool io_ok = false;
    Frame response;
    for (int conn_try = 0; conn_try < 2 && !io_ok; ++conn_try) {
      const bool was_cached = fd >= 0;
      if (fd < 0) {
        // A dead replica's port stays bound (the supervisor retains the
        // listen fd for same-port restart), so connect() alone proves
        // nothing: it completes into the kernel backlog even when no
        // process will ever accept.  Gate every fresh connection on a
        // short-deadline ping so a dead replica costs ~health_io_timeout
        // instead of a full request timeout.
        fd = ConnectReplica(replica);
        if (fd >= 0) {
          SetIoTimeout(fd, config_.health_io_timeout_ms);
          Frame pong;
          const bool alive =
              WriteFrame(fd, FrameType::kPing, 0, std::string()) &&
              ReadFrame(fd, &pong) && pong.type == FrameType::kPong;
          if (!alive) {
            ::close(fd);
            fd = -1;
          } else {
            SetIoTimeout(fd, config_.io_timeout_ms);
          }
        }
      }
      if (fd < 0) break;
      io_ok = WriteFrame(fd, FrameType::kOptimizeRequest, 0, frame.payload) &&
              ReadFrame(fd, &response) &&
              response.type == FrameType::kOptimizeResponse;
      if (!io_ok) {
        ::close(fd);
        fd = -1;
        if (!was_cached) break;  // A fresh, pinged connection failed.
      }
    }
    if (!io_ok) {
      // The replica died (or drained) under us: mark dead and re-route.
      // The request is idempotent, so the retry is safe even if the
      // replica had already started computing.
      MarkDead(replica);
      continue;
    }
    // A freshly computed entry rides behind the response; peel it off
    // and broadcast it to the other replicas off the request path.
    if ((response.flags & kFlagFillFollows) != 0) {
      Frame fill;
      if (ReadFrame(fd, &fill) && fill.type == FrameType::kCacheInstall) {
        std::lock_guard<std::mutex> lock(broadcast_mu_);
        broadcast_queue_.push_back(
            Broadcast{replica, std::move(fill.payload)});
        broadcast_cv_.notify_one();
      } else {
        ::close(fd);
        fd = -1;
        MarkDead(replica);
        // The response itself was intact; fall through and deliver it.
      }
    }
    return WriteFrame(client_fd, FrameType::kOptimizeResponse, 0,
                      response.payload);
  }

  failed_after_retry_.fetch_add(1, std::memory_order_relaxed);
  FleetResponse resp;
  resp.request_id = request.request_id;
  resp.ok = false;
  resp.error = "no live replica after " + std::to_string(attempts) +
               " attempt(s)";
  return WriteFrame(client_fd, FrameType::kOptimizeResponse, 0,
                    EncodeFleetResponse(resp));
}

void FleetRouter::HealthLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    for (size_t rep = 0; rep < config_.replica_ports.size(); ++rep) {
      if (stop_.load(std::memory_order_acquire)) break;
      const int fd = ConnectReplica(static_cast<int>(rep));
      if (fd >= 0) SetIoTimeout(fd, config_.health_io_timeout_ms);
      bool healthy = false;
      FleetReplicaStats stats;
      if (fd >= 0) {
        Frame frame;
        healthy = WriteFrame(fd, FrameType::kStatsRequest, 0, std::string()) &&
                  ReadFrame(fd, &frame) &&
                  frame.type == FrameType::kStatsResponse &&
                  DecodeReplicaStats(frame.payload, &stats);
        ::close(fd);
      }
      std::lock_guard<std::mutex> lock(ring_mu_);
      ring_.SetLive(static_cast<int>(rep), healthy);
      views_[rep].live = healthy;
      if (healthy) {
        views_[rep].stats_valid = true;
        views_[rep].last_stats = std::move(stats);
      }
    }
    // Sleep in small steps so Stop() is prompt.
    for (int waited = 0;
         waited < config_.health_interval_ms &&
         !stop_.load(std::memory_order_acquire);
         waited += 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

void FleetRouter::BroadcastLoop() {
  // The broadcaster owns its own connections: fills must not interleave
  // with request/response framing on the client threads' connections.
  std::vector<int> conns(config_.replica_ports.size(), -1);
  for (;;) {
    Broadcast item;
    {
      std::unique_lock<std::mutex> lock(broadcast_mu_);
      broadcast_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) ||
               !broadcast_queue_.empty();
      });
      if (broadcast_queue_.empty()) break;  // Stopping and drained.
      item = std::move(broadcast_queue_.front());
      broadcast_queue_.pop_front();
    }
    for (size_t rep = 0; rep < conns.size(); ++rep) {
      if (static_cast<int>(rep) == item.origin) continue;
      {
        std::lock_guard<std::mutex> lock(ring_mu_);
        if (!ring_.IsLive(static_cast<int>(rep))) continue;
      }
      if (conns[rep] < 0) conns[rep] = ConnectReplica(static_cast<int>(rep));
      if (conns[rep] < 0 ||
          !WriteFrame(conns[rep], FrameType::kCacheInstall, 0,
                      item.payload)) {
        if (conns[rep] >= 0) ::close(conns[rep]);
        conns[rep] = -1;
        broadcast_failures_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      broadcasts_sent_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  for (const int fd : conns) {
    if (fd >= 0) ::close(fd);
  }
}

std::string FleetRouter::RenderFleetz() const {
  std::ostringstream out;
  const RouterStats rs = stats();
  out << "{\n  \"requests_routed\": " << rs.requests_routed
      << ",\n  \"failovers\": " << rs.failovers
      << ",\n  \"failed_after_retry\": " << rs.failed_after_retry
      << ",\n  \"broadcasts_sent\": " << rs.broadcasts_sent
      << ",\n  \"broadcast_failures\": " << rs.broadcast_failures
      << ",\n  \"replicas\": [\n";
  std::lock_guard<std::mutex> lock(ring_mu_);
  for (size_t rep = 0; rep < views_.size(); ++rep) {
    const ReplicaView& v = views_[rep];
    const uint64_t lookups =
        v.last_stats.cache_hits + v.last_stats.cache_misses;
    const double hit_rate =
        lookups == 0
            ? 0.0
            : static_cast<double>(v.last_stats.cache_hits) / lookups;
    out << "    {\"replica\": " << rep << ", \"port\": "
        << config_.replica_ports[rep]
        << ", \"live\": " << (v.live ? "true" : "false")
        << ", \"stats_valid\": " << (v.stats_valid ? "true" : "false")
        << ", \"requests_completed\": " << v.last_stats.requests_completed
        << ", \"queue_depth\": " << v.last_stats.queue_depth
        << ", \"inflight\": " << v.last_stats.inflight
        << ", \"cache_entries\": " << v.last_stats.cache_entries
        << ", \"cache_hit_rate\": " << hit_rate << "}"
        << (rep + 1 < views_.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string FleetRouter::RenderMergedMetrics() const {
  // Each replica's exposition is already stamped replica="<id>"; merging
  // keeps the first replica's # HELP / # TYPE comment lines per family
  // and strips them from the rest, per the exposition format's
  // one-TYPE-per-family rule.
  std::string out;
  std::lock_guard<std::mutex> lock(ring_mu_);
  bool first = true;
  for (const ReplicaView& v : views_) {
    if (!v.stats_valid) continue;
    if (first) {
      out += v.last_stats.prometheus;
      first = false;
      continue;
    }
    std::istringstream in(v.last_stats.prometheus);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] == '#') continue;
      out += line;
      out += '\n';
    }
  }
  return out;
}

HttpResponse FleetRouter::HandleHttp(const HttpRequest& request) const {
  HttpResponse resp;
  if (request.path == "/fleetz") {
    resp.content_type = "application/json";
    resp.body = RenderFleetz();
  } else if (request.path == "/metrics") {
    resp.body = RenderMergedMetrics();
  } else if (request.path == "/") {
    resp.body =
        "sdpopt fleet router\n"
        "  /fleetz   per-replica health, queue depth, cache hit rate\n"
        "  /metrics  merged Prometheus exposition (replica-labelled)\n";
  } else {
    resp.status = 404;
    resp.body = "unknown endpoint; see /\n";
  }
  return resp;
}

}  // namespace sdp
