#include "fleet/router.h"

#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <sstream>

#include <stdlib.h>

#include "common/socket_util.h"
#include "common/subprocess.h"
#include "cost/cost_model.h"
#include "fleet/routing_key.h"
#include "obs/dtrace.h"
#include "obs/flight_recorder.h"
#include "obs/http_client.h"
#include "obs/prof/prof_export.h"
#include "obs/recorder_export.h"
#include "service/plan_fingerprint.h"

namespace sdp {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Same minimal query-string accessor the introspection server uses (the
// /dtracez parameters are simple unescaped tokens).
std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

// Splits a JSONL blob into its non-empty lines.
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    if (nl > pos) lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

// Light-touch field extraction from one exported event line (the exporter
// emits flat objects with stable key spelling, so substring search is
// exact enough for the Chrome view).
bool ExtractU64Field(const std::string& line, const char* key,
                     uint64_t* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  *out = strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
  return true;
}

std::string ExtractStrField(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return "";
  const size_t begin = pos + needle.size();
  const size_t end = line.find('"', begin);
  if (end == std::string::npos) return "";
  return line.substr(begin, end - begin);
}

// Appends one Chrome trace instant event for an exported JSONL line.
// `pid` is the process lane (0 = router, 1 + r = replica r); the raw line
// rides along as args so nothing is lost in translation.
void AppendChromeEvent(std::ostringstream* out, const std::string& line,
                       int pid, bool* first) {
  uint64_t ts_ns = 0;
  ExtractU64Field(line, "ts_ns", &ts_ns);
  uint64_t thread = 0;
  ExtractU64Field(line, "thread", &thread);
  const std::string name = ExtractStrField(line, "event");
  if (name.empty()) return;  // Exporter meta line, not an event.
  if (!*first) *out << ",\n";
  *first = false;
  char ts[32];
  snprintf(ts, sizeof(ts), "%.3f", static_cast<double>(ts_ns) / 1e3);
  *out << "{\"name\":\"" << name << "\",\"ph\":\"i\",\"s\":\"p\",\"ts\":"
       << ts << ",\"pid\":" << pid << ",\"tid\":" << thread
       << ",\"args\":" << line << "}";
}

}  // namespace

FleetRouter::FleetRouter(RouterConfig config)
    : config_(std::move(config)),
      catalog_(MakeSyntheticCatalog(config_.schema)),
      stats_catalog_(SynthesizeStats(catalog_)),
      ring_(static_cast<int>(config_.replica_ports.empty()
                                 ? 1
                                 : config_.replica_ports.size()),
            config_.vnodes),
      views_(config_.replica_ports.size()),
      condemned_(config_.replica_ports.size(), false),
      obs_([this](const HttpRequest& req) { return HandleHttp(req); }) {}

FleetRouter::~FleetRouter() { Stop(); }

bool FleetRouter::Start(std::string* error) {
  if (started_) {
    if (error != nullptr) *error = "router already started";
    return false;
  }
  if (config_.listen_fd < 0 || config_.replica_ports.empty()) {
    if (error != nullptr) *error = "router needs a listen fd and replicas";
    return false;
  }
  if (config_.obs_port > 0 && !obs_.Start(config_.obs_port, error)) {
    return false;
  }
  // The router's own spans (route/failover/broadcast) live in the same
  // always-on flight recorder the replicas use; /dtracez reads them back.
  FlightRecorder::Global().Enable(true);
  stop_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  health_thread_ = std::thread([this] { HealthLoop(); });
  broadcast_thread_ = std::thread([this] { BroadcastLoop(); });
  started_ = true;
  return true;
}

void FleetRouter::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  broadcast_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (health_thread_.joinable()) health_thread_.join();
  if (broadcast_thread_.joinable()) broadcast_thread_.join();
  std::vector<std::thread> clients;
  {
    std::lock_guard<std::mutex> lock(clients_mu_);
    clients.swap(client_threads_);
  }
  for (std::thread& t : clients) t.join();
  obs_.Stop();
  started_ = false;
}

RouterStats FleetRouter::stats() const {
  RouterStats s;
  s.requests_routed = requests_routed_.load();
  s.failovers = failovers_.load();
  s.failed_after_retry = failed_after_retry_.load();
  s.broadcasts_sent = broadcasts_sent_.load();
  s.broadcast_failures = broadcast_failures_.load();
  s.retry_budget_exhausted = retry_budget_exhausted_.load();
  s.quarantine_served = quarantine_served_.load();
  {
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    for (const auto& kv : strikes_) {
      if (static_cast<int>(kv.second) >= config_.quarantine_strikes) {
        ++s.quarantined_keys;
      }
    }
  }
  return s;
}

bool FleetRouter::ReplicaLive(int replica) const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return ring_.IsLive(replica);
}

void FleetRouter::SetCondemned(int replica) {
  std::lock_guard<std::mutex> lock(ring_mu_);
  if (replica < 0 || replica >= static_cast<int>(views_.size())) return;
  condemned_[replica] = true;
  ring_.SetLive(replica, false);
  views_[replica].live = false;
  views_[replica].stats_valid = false;
}

void FleetRouter::ClearCondemned(int replica) {
  std::lock_guard<std::mutex> lock(ring_mu_);
  if (replica < 0 || replica >= static_cast<int>(views_.size())) return;
  condemned_[replica] = false;
}

bool FleetRouter::ReplicaCondemned(int replica) const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  if (replica < 0 || replica >= static_cast<int>(views_.size())) return false;
  return condemned_[replica];
}

uint32_t FleetRouter::AddPoisonStrike(const std::string& key) {
  uint32_t count = 0;
  {
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    count = ++strikes_[key];
  }
  return count;
}

bool FleetRouter::IsQuarantined(const std::string& key) const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  const auto it = strikes_.find(key);
  return it != strikes_.end() &&
         static_cast<int>(it->second) >= config_.quarantine_strikes;
}

void FleetRouter::InstallQuarantineStrikes(
    const std::vector<QuarantineEntry>& entries) {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  for (const QuarantineEntry& e : entries) {
    uint32_t& strikes = strikes_[e.key];
    if (e.strikes > strikes) strikes = e.strikes;
  }
}

std::vector<QuarantineEntry> FleetRouter::QuarantineSnapshot() const {
  std::vector<QuarantineEntry> out;
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  out.reserve(strikes_.size());
  for (const auto& kv : strikes_) {
    out.push_back(QuarantineEntry{kv.first, kv.second});
  }
  return out;
}

std::string FleetRouter::RoutingKey(const FleetRequest& request) const {
  return FleetRoutingKey(request, catalog_, stats_catalog_);
}

std::vector<int> FleetRouter::RouteSequenceForKey(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return ring_.RouteSequence(key);
}

void FleetRouter::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire) && !ShutdownRequested()) {
    const int ready = PollReadable(config_.listen_fd,
                                   config_.poll_interval_ms);
    if (ready < 0) break;
    if (ready == 0) continue;
    const int conn = ::accept(config_.listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    std::lock_guard<std::mutex> lock(clients_mu_);
    client_threads_.emplace_back([this, conn] { ServeClient(conn); });
  }
}

int FleetRouter::ConnectReplica(int replica) const {
  std::string error;
  const int fd = ConnectLocalhost(config_.replica_ports[replica],
                                  config_.connect_timeout_ms, &error);
  if (fd >= 0) SetIoTimeout(fd, config_.io_timeout_ms);
  return fd;
}

void FleetRouter::MarkDead(int replica) {
  std::lock_guard<std::mutex> lock(ring_mu_);
  ring_.SetLive(replica, false);
  views_[replica].live = false;
  views_[replica].stats_valid = false;
}

void FleetRouter::ServeClient(int conn) {
  SetIoTimeout(conn, config_.io_timeout_ms);
  // Connections to replicas, opened on first use and kept for the life
  // of this client connection (one outstanding request at a time per
  // client connection, so no framing interleave is possible).
  std::vector<int> replica_conns(config_.replica_ports.size(), -1);
  // Capability bits each cached connection's peer advertised in its pong
  // payload; trace-context frames are only sent where bit
  // kPongCapTraceContext is set (see fleet/wire.h).
  std::vector<uint8_t> replica_caps(config_.replica_ports.size(), 0);
  while (!stop_.load(std::memory_order_acquire) && !ShutdownRequested()) {
    const int ready = PollReadable(conn, config_.poll_interval_ms);
    if (ready < 0) break;
    if (ready == 0) continue;
    Frame frame;
    if (!ReadFrame(conn, &frame)) break;
    bool ok = true;
    switch (frame.type) {
      case FrameType::kOptimizeRequest:
        ok = RouteOptimize(conn, frame, &replica_conns, &replica_caps);
        break;
      case FrameType::kPing:
        ok = WriteFrame(conn, FrameType::kPong, 0, std::string());
        break;
      default:
        ok = false;
        break;
    }
    if (!ok) break;
  }
  for (const int fd : replica_conns) {
    if (fd >= 0) ::close(fd);
  }
  ::close(conn);
}

bool FleetRouter::RouteOptimize(int client_fd, const Frame& frame,
                                std::vector<int>* replica_conns,
                                std::vector<uint8_t>* replica_caps) {
  requests_routed_.fetch_add(1, std::memory_order_relaxed);

  FleetRequest request;
  if (!DecodeFleetRequest(frame.payload, &request)) {
    FleetResponse resp;
    resp.ok = false;
    resp.error = "malformed optimize request";
    return WriteFrame(client_fd, FrameType::kOptimizeResponse, 0,
                      EncodeFleetResponse(resp));
  }
  const std::string key = RoutingKey(request);

  // Mint the request's fleet-wide trace identity: deterministic in the
  // request id and routing key, so reruns of a seeded workload reproduce
  // the same /dtracez timelines byte-exactly.
  const uint64_t key_hash = DtraceHash(key);
  const uint64_t trace_id = MintTraceId(request.request_id, key_hash);
  FlightRecorder::ScopedRequest obs_req(request.request_id);
  SpanScope root_span(TraceContext{trace_id, kRouterRootSpan});
  {
    int owner = -1;
    {
      std::lock_guard<std::mutex> lock(ring_mu_);
      const std::vector<int> sequence = ring_.RouteSequence(key);
      if (!sequence.empty()) owner = sequence.front();
    }
    FlightRecorder::Global().Record(
        ObsKind::kRouteBegin, 0,
        owner >= 0 ? static_cast<uint32_t>(owner) : 0, key_hash);
  }

  int attempts = 0;
  bool first_try = true;
  bool quarantine_recorded = false;
  while (attempts < config_.max_attempts) {
    std::vector<int> sequence;
    {
      std::lock_guard<std::mutex> lock(ring_mu_);
      sequence = ring_.RouteSequence(key);
    }
    if (sequence.empty()) break;  // No live replica at all.
    const int replica = sequence.front();
    if (!first_try) {
      // Every retry consumes one token from the router-wide budget.  The
      // allowance grows with routed traffic (ratio) on top of a fixed
      // burst, with no clocks involved, so a failover storm against a
      // degraded fleet sheds deterministically instead of amplifying.
      const uint64_t spent =
          retries_spent_.fetch_add(1, std::memory_order_relaxed);
      const uint64_t allowance =
          config_.retry_budget_burst +
          static_cast<uint64_t>(
              config_.retry_budget_ratio *
              static_cast<double>(
                  requests_routed_.load(std::memory_order_relaxed)));
      if (spent >= allowance) {
        retry_budget_exhausted_.fetch_add(1, std::memory_order_relaxed);
        FlightRecorder::Global().Record(ObsKind::kRetryShed, 0,
                                        static_cast<uint32_t>(attempts),
                                        spent, allowance);
        FlightRecorder::Global().Record(ObsKind::kRouteEnd, 0, 0,
                                        static_cast<uint64_t>(attempts));
        RouteTraceEntry shed_entry;
        shed_entry.trace_id = trace_id;
        shed_entry.request_id = request.request_id;
        shed_entry.key_hash = key_hash;
        shed_entry.attempts = attempts;
        RememberTrace(shed_entry);
        FleetResponse resp;
        resp.request_id = request.request_id;
        resp.ok = false;
        resp.rejected = true;
        resp.retry_after_ms =
            config_.health_interval_ms > 0 ? config_.health_interval_ms : 100;
        resp.error = "retry budget exhausted";
        return WriteFrame(client_fd, FrameType::kOptimizeResponse, 0,
                          EncodeFleetResponse(resp));
      }
      failovers_.fetch_add(1, std::memory_order_relaxed);
    }
    first_try = false;
    ++attempts;

    // Quarantine is re-checked per attempt, not once per request: the
    // strikes that cross the threshold may have been assigned while THIS
    // request's earlier attempts crashed replicas.
    uint32_t strikes = 0;
    {
      std::lock_guard<std::mutex> lock(quarantine_mu_);
      const auto it = strikes_.find(key);
      if (it != strikes_.end()) strikes = it->second;
    }
    const bool degraded =
        static_cast<int>(strikes) >= config_.quarantine_strikes;
    const uint8_t request_flags = degraded ? kFlagDegraded : 0;
    if (degraded && !quarantine_recorded) {
      quarantine_recorded = true;
      FlightRecorder::Global().Record(ObsKind::kQuarantineServe, strikes, 0,
                                      key_hash);
    }

    // Attempt k (1-based here) runs under span kAttemptSpanBase + k - 1;
    // the replica inherits that span id through the wire frame, which is
    // what ties its events back to this routing attempt.
    const uint64_t attempt_span =
        kAttemptSpanBase + static_cast<uint64_t>(attempts - 1);
    SpanScope attempt_scope(TraceContext{trace_id, attempt_span});
    FlightRecorder::Global().Record(ObsKind::kRouteAttempt, 0,
                                    static_cast<uint32_t>(replica),
                                    static_cast<uint64_t>(attempts));

    int& fd = (*replica_conns)[replica];
    // A cached connection may be stale -- the replica could have
    // restarted since it was opened (new process, same port).  On a
    // cached-connection failure, retry once on a fresh connection to the
    // SAME replica before declaring it dead; otherwise a warm-restarted
    // replica gets spuriously marked dead by the first request after its
    // comeback, bouncing its keys off their home.
    bool io_ok = false;
    Frame response;
    for (int conn_try = 0; conn_try < 2 && !io_ok; ++conn_try) {
      const bool was_cached = fd >= 0;
      if (fd < 0) {
        // A dead replica's port stays bound (the supervisor retains the
        // listen fd for same-port restart), so connect() alone proves
        // nothing: it completes into the kernel backlog even when no
        // process will ever accept.  Gate every fresh connection on a
        // short-deadline ping so a dead replica costs ~health_io_timeout
        // instead of a full request timeout.
        fd = ConnectReplica(replica);
        if (fd >= 0) {
          SetIoTimeout(fd, config_.health_io_timeout_ms);
          Frame pong;
          const bool alive =
              WriteFrame(fd, FrameType::kPing, 0, std::string()) &&
              ReadFrame(fd, &pong) && pong.type == FrameType::kPong;
          if (!alive) {
            ::close(fd);
            fd = -1;
          } else {
            // The pong payload advertises the peer's frame capabilities
            // (empty = legacy replica, gets context-free frames only).
            (*replica_caps)[replica] =
                pong.payload.empty() ? 0
                                     : static_cast<uint8_t>(pong.payload[0]);
            SetIoTimeout(fd, config_.io_timeout_ms);
          }
        }
      }
      if (fd < 0) break;
      const bool traced =
          ((*replica_caps)[replica] & kPongCapTraceContext) != 0;
      const bool sent =
          traced ? WriteFrameTraced(fd, FrameType::kOptimizeRequest,
                                    request_flags, frame.payload, trace_id,
                                    attempt_span)
                 : WriteFrame(fd, FrameType::kOptimizeRequest, request_flags,
                              frame.payload);
      io_ok = sent && ReadFrame(fd, &response) &&
              response.type == FrameType::kOptimizeResponse;
      if (!io_ok) {
        ::close(fd);
        fd = -1;
        if (!was_cached) break;  // A fresh, pinged connection failed.
      }
    }
    if (!io_ok) {
      // The replica died (or drained) under us: mark dead and re-route.
      // The request is idempotent, so the retry is safe even if the
      // replica had already started computing.
      FlightRecorder::Global().Record(ObsKind::kRouteFailover, 0,
                                      static_cast<uint32_t>(replica),
                                      static_cast<uint64_t>(attempts));
      MarkDead(replica);
      continue;
    }
    // A freshly computed entry rides behind the response; peel it off
    // and broadcast it to the other replicas off the request path.  The
    // broadcast inherits the attempt's span, so the fan-out (and each
    // receiving replica's install) lands in this request's timeline.
    std::string fill_payload;
    bool has_fill = false;
    if ((response.flags & kFlagFillFollows) != 0) {
      Frame fill;
      if (ReadFrame(fd, &fill) && fill.type == FrameType::kCacheInstall) {
        fill_payload = std::move(fill.payload);
        has_fill = true;
      } else {
        ::close(fd);
        fd = -1;
        MarkDead(replica);
        // The response itself was intact; fall through and deliver it.
      }
    }
    {
      SpanScope end_scope(TraceContext{trace_id, kRouterRootSpan});
      FlightRecorder::Global().Record(ObsKind::kRouteEnd, 1,
                                      static_cast<uint32_t>(replica),
                                      static_cast<uint64_t>(attempts));
    }
    // Enqueue the fill only after route_end is recorded: the broadcast
    // thread's trace-tagged events then always sequence after the route
    // span closes, keeping the merged /dtracez timeline deterministic.
    if (has_fill) {
      std::lock_guard<std::mutex> lock(broadcast_mu_);
      broadcast_queue_.push_back(Broadcast{replica, std::move(fill_payload),
                                           request.request_id, trace_id,
                                           attempt_span});
      broadcast_cv_.notify_one();
    }
    if (degraded) {
      quarantine_served_.fetch_add(1, std::memory_order_relaxed);
    }
    RouteTraceEntry entry;
    entry.trace_id = trace_id;
    entry.request_id = request.request_id;
    entry.key_hash = key_hash;
    entry.replica = replica;
    entry.attempts = attempts;
    entry.ok = true;
    RememberTrace(entry);
    return WriteFrame(client_fd, FrameType::kOptimizeResponse, 0,
                      response.payload);
  }

  FlightRecorder::Global().Record(ObsKind::kRouteEnd, 0, 0,
                                  static_cast<uint64_t>(attempts));
  RouteTraceEntry entry;
  entry.trace_id = trace_id;
  entry.request_id = request.request_id;
  entry.key_hash = key_hash;
  entry.attempts = attempts;
  RememberTrace(entry);
  failed_after_retry_.fetch_add(1, std::memory_order_relaxed);
  FleetResponse resp;
  resp.request_id = request.request_id;
  resp.ok = false;
  resp.error = "no live replica after " + std::to_string(attempts) +
               " attempt(s)";
  return WriteFrame(client_fd, FrameType::kOptimizeResponse, 0,
                    EncodeFleetResponse(resp));
}

void FleetRouter::HealthLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    for (size_t rep = 0; rep < config_.replica_ports.size(); ++rep) {
      if (stop_.load(std::memory_order_acquire)) break;
      {
        // A condemned replica is out of the fleet for good: no probe, no
        // revival.  Only ClearCondemned (operator restart) undoes this.
        std::lock_guard<std::mutex> lock(ring_mu_);
        if (condemned_[rep]) continue;
      }
      const int fd = ConnectReplica(static_cast<int>(rep));
      if (fd >= 0) SetIoTimeout(fd, config_.health_io_timeout_ms);
      bool healthy = false;
      FleetReplicaStats stats;
      if (fd >= 0) {
        Frame frame;
        healthy = WriteFrame(fd, FrameType::kStatsRequest, 0, std::string()) &&
                  ReadFrame(fd, &frame) &&
                  frame.type == FrameType::kStatsResponse &&
                  DecodeReplicaStats(frame.payload, &stats);
        ::close(fd);
      }
      // Probe events are deliberately context-free (the health thread
      // never carries a SpanScope): they are fleet hygiene, not part of
      // any request's timeline.
      FlightRecorder::Global().Record(ObsKind::kHealthProbe,
                                      healthy ? 1 : 0,
                                      static_cast<uint32_t>(rep));
      std::lock_guard<std::mutex> lock(ring_mu_);
      ring_.SetLive(static_cast<int>(rep), healthy);
      views_[rep].live = healthy;
      views_[rep].probe_attempts++;
      if (healthy) {
        views_[rep].probe_successes++;
      } else {
        views_[rep].probe_failures++;
      }
      views_[rep].last_probe_seconds = NowSeconds();
      if (healthy) {
        views_[rep].stats_valid = true;
        views_[rep].last_stats = std::move(stats);
      }
    }
    // Sleep in small steps so Stop() is prompt.
    for (int waited = 0;
         waited < config_.health_interval_ms &&
         !stop_.load(std::memory_order_acquire);
         waited += 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

void FleetRouter::BroadcastLoop() {
  // The broadcaster owns its own connections: fills must not interleave
  // with request/response framing on the client threads' connections.
  std::vector<int> conns(config_.replica_ports.size(), -1);
  std::vector<uint8_t> caps(config_.replica_ports.size(), 0);
  for (;;) {
    Broadcast item;
    {
      std::unique_lock<std::mutex> lock(broadcast_mu_);
      broadcast_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) ||
               !broadcast_queue_.empty();
      });
      if (broadcast_queue_.empty()) break;  // Stopping and drained.
      item = std::move(broadcast_queue_.front());
      broadcast_queue_.pop_front();
    }
    // The fan-out runs under the originating request's trace context, so
    // the kBroadcastFill summary -- and, through traced kCacheInstall
    // frames, every receiving replica's kBroadcastInstall -- lands in
    // that request's /dtracez timeline.
    FlightRecorder::ScopedRequest obs_req(item.request_id);
    SpanScope span(TraceContext{item.trace_id, item.span_id});
    uint64_t delivered = 0;
    uint64_t failures = 0;
    for (size_t rep = 0; rep < conns.size(); ++rep) {
      if (static_cast<int>(rep) == item.origin) continue;
      {
        std::lock_guard<std::mutex> lock(ring_mu_);
        if (!ring_.IsLive(static_cast<int>(rep))) continue;
      }
      if (conns[rep] < 0) {
        conns[rep] = ConnectReplica(static_cast<int>(rep));
        if (conns[rep] >= 0) {
          // Same ping gate as the request path: learn the peer's frame
          // capabilities before ever sending it a traced frame.
          Frame pong;
          if (WriteFrame(conns[rep], FrameType::kPing, 0, std::string()) &&
              ReadFrame(conns[rep], &pong) &&
              pong.type == FrameType::kPong) {
            caps[rep] = pong.payload.empty()
                            ? 0
                            : static_cast<uint8_t>(pong.payload[0]);
          } else {
            ::close(conns[rep]);
            conns[rep] = -1;
          }
        }
      }
      const bool traced = item.trace_id != 0 &&
                          (caps[rep] & kPongCapTraceContext) != 0;
      const bool sent =
          conns[rep] >= 0 &&
          (traced ? WriteFrameTraced(conns[rep], FrameType::kCacheInstall, 0,
                                     item.payload, item.trace_id,
                                     item.span_id)
                  : WriteFrame(conns[rep], FrameType::kCacheInstall, 0,
                               item.payload));
      if (!sent) {
        if (conns[rep] >= 0) ::close(conns[rep]);
        conns[rep] = -1;
        broadcast_failures_.fetch_add(1, std::memory_order_relaxed);
        ++failures;
        continue;
      }
      broadcasts_sent_.fetch_add(1, std::memory_order_relaxed);
      ++delivered;
    }
    FlightRecorder::Global().Record(
        ObsKind::kBroadcastFill, 0,
        item.origin >= 0 ? static_cast<uint32_t>(item.origin) : 0, delivered,
        failures);
  }
  for (const int fd : conns) {
    if (fd >= 0) ::close(fd);
  }
}

std::string FleetRouter::RenderFleetz() const {
  std::ostringstream out;
  const RouterStats rs = stats();
  out << "{\n  \"requests_routed\": " << rs.requests_routed
      << ",\n  \"failovers\": " << rs.failovers
      << ",\n  \"failed_after_retry\": " << rs.failed_after_retry
      << ",\n  \"broadcasts_sent\": " << rs.broadcasts_sent
      << ",\n  \"broadcast_failures\": " << rs.broadcast_failures
      << ",\n  \"retry_budget_exhausted\": " << rs.retry_budget_exhausted
      << ",\n  \"quarantine_served\": " << rs.quarantine_served
      << ",\n  \"quarantined_keys\": " << rs.quarantined_keys
      << ",\n  \"replicas\": [\n";
  const double now = NowSeconds();
  std::lock_guard<std::mutex> lock(ring_mu_);
  for (size_t rep = 0; rep < views_.size(); ++rep) {
    const ReplicaView& v = views_[rep];
    const SelfHealingBoard::Replica* heal =
        config_.board != nullptr && rep < config_.board->replicas.size()
            ? &config_.board->replicas[rep]
            : nullptr;
    const uint64_t lookups =
        v.last_stats.cache_hits + v.last_stats.cache_misses;
    const double hit_rate =
        lookups == 0
            ? 0.0
            : static_cast<double>(v.last_stats.cache_hits) / lookups;
    const double probe_age =
        v.last_probe_seconds < 0 ? -1.0 : now - v.last_probe_seconds;
    out << "    {\"replica\": " << rep << ", \"port\": "
        << config_.replica_ports[rep]
        << ", \"live\": " << (v.live ? "true" : "false")
        << ", \"stats_valid\": " << (v.stats_valid ? "true" : "false")
        << ", \"requests_completed\": " << v.last_stats.requests_completed
        << ", \"queue_depth\": " << v.last_stats.queue_depth
        << ", \"inflight\": " << v.last_stats.inflight
        << ", \"cache_entries\": " << v.last_stats.cache_entries
        << ", \"cache_hit_rate\": " << hit_rate
        << ", \"probe_attempts\": " << v.probe_attempts
        << ", \"probe_successes\": " << v.probe_successes
        << ", \"probe_failures\": " << v.probe_failures
        << ", \"last_probe_age_seconds\": " << probe_age
        << ", \"condemned\": " << (condemned_[rep] ? "true" : "false")
        << ", \"restarts\": " << (heal != nullptr ? heal->restarts.load() : 0)
        << ", \"crashes\": " << (heal != nullptr ? heal->crashes.load() : 0)
        << "}" << (rep + 1 < views_.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string FleetRouter::RenderMergedMetrics() const {
  // Each replica's exposition is already stamped replica="<id>"; merging
  // keeps the first replica's # HELP / # TYPE comment lines per family
  // and strips them from the rest, per the exposition format's
  // one-TYPE-per-family rule.
  std::string out;
  const double now = NowSeconds();
  std::lock_guard<std::mutex> lock(ring_mu_);
  bool first = true;
  for (const ReplicaView& v : views_) {
    if (!v.stats_valid) continue;
    if (first) {
      out += v.last_stats.prometheus;
      first = false;
      continue;
    }
    std::istringstream in(v.last_stats.prometheus);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] == '#') continue;
      out += line;
      out += '\n';
    }
  }
  // Router-side health-probe families, one sample per replica.
  std::ostringstream probes;
  struct ProbeFamily {
    const char* name;
    const char* help;
    uint64_t ReplicaView::*member;
  };
  const ProbeFamily counters[] = {
      {"sdp_router_probe_attempts_total",
       "Health-probe attempts per replica.", &ReplicaView::probe_attempts},
      {"sdp_router_probe_successes_total",
       "Health probes answered per replica.", &ReplicaView::probe_successes},
      {"sdp_router_probe_failures_total",
       "Health probes unanswered per replica.",
       &ReplicaView::probe_failures},
  };
  for (const ProbeFamily& fam : counters) {
    probes << "# HELP " << fam.name << " " << fam.help << "\n# TYPE "
           << fam.name << " counter\n";
    for (size_t rep = 0; rep < views_.size(); ++rep) {
      probes << fam.name << "{replica=\"" << rep << "\"} "
             << views_[rep].*fam.member << "\n";
    }
  }
  probes << "# HELP sdp_router_probe_last_age_seconds Seconds since the "
            "replica's last completed health probe (-1 = never probed).\n"
            "# TYPE sdp_router_probe_last_age_seconds gauge\n";
  for (size_t rep = 0; rep < views_.size(); ++rep) {
    const double age = views_[rep].last_probe_seconds < 0
                           ? -1.0
                           : now - views_[rep].last_probe_seconds;
    probes << "sdp_router_probe_last_age_seconds{replica=\"" << rep
           << "\"} " << age << "\n";
  }
  // Self-healing families (reaper counters via the supervisor's board;
  // zeros when the router runs without a supervisor).
  probes << "# HELP sdp_fleet_restarts_total Replica auto-respawns "
            "delivered by the supervisor's reaper.\n"
            "# TYPE sdp_fleet_restarts_total counter\n";
  for (size_t rep = 0; rep < views_.size(); ++rep) {
    const uint64_t restarts =
        config_.board != nullptr && rep < config_.board->replicas.size()
            ? config_.board->replicas[rep].restarts.load()
            : 0;
    probes << "sdp_fleet_restarts_total{replica=\"" << rep << "\"} "
           << restarts << "\n";
  }
  probes << "# HELP sdp_fleet_condemned Replica permanently removed from "
            "the ring after a crash loop (0/1).\n"
            "# TYPE sdp_fleet_condemned gauge\n";
  for (size_t rep = 0; rep < views_.size(); ++rep) {
    probes << "sdp_fleet_condemned{replica=\"" << rep << "\"} "
           << (condemned_[rep] ? 1 : 0) << "\n";
  }
  uint64_t quarantined = 0;
  {
    std::lock_guard<std::mutex> qlock(quarantine_mu_);
    for (const auto& kv : strikes_) {
      if (static_cast<int>(kv.second) >= config_.quarantine_strikes) {
        ++quarantined;
      }
    }
  }
  probes << "# HELP sdp_fleet_quarantined_keys Routing keys at or over the "
            "poison-strike threshold (served degraded).\n"
            "# TYPE sdp_fleet_quarantined_keys gauge\n"
         << "sdp_fleet_quarantined_keys " << quarantined << "\n";
  probes << "# HELP sdp_fleet_retry_budget_exhausted_total Requests shed "
            "because the router-wide retry budget ran dry.\n"
            "# TYPE sdp_fleet_retry_budget_exhausted_total counter\n"
         << "sdp_fleet_retry_budget_exhausted_total "
         << retry_budget_exhausted_.load() << "\n";
  out += probes.str();
  return out;
}

void FleetRouter::RememberTrace(const RouteTraceEntry& entry) {
  std::lock_guard<std::mutex> lock(traces_mu_);
  recent_traces_.push_front(entry);
  while (recent_traces_.size() > kMaxRecentTraces) recent_traces_.pop_back();
}

std::vector<RouteTraceEntry> FleetRouter::RecentTraces() const {
  std::lock_guard<std::mutex> lock(traces_mu_);
  return std::vector<RouteTraceEntry>(recent_traces_.begin(),
                                      recent_traces_.end());
}

std::string FleetRouter::FetchReplicaSlice(int replica, uint64_t trace_id,
                                           bool structural) const {
  if (replica < 0 ||
      replica >= static_cast<int>(config_.replica_obs_ports.size())) {
    return "";
  }
  const int port = config_.replica_obs_ports[replica];
  if (port <= 0) return "";
  std::string path = "/flightrecorderz?trace=" + TraceIdHex(trace_id);
  if (structural) path += "&structural=1";
  std::string body;
  std::string error;
  if (!HttpGetLocal(port, path, &body, &error)) return "";
  return body;
}

std::string FleetRouter::RenderMergedProfilez(double seconds) const {
  if (seconds <= 0) seconds = 1.0;
  if (seconds > 30) seconds = 30;
  // Every replica samples itself for the same window; fetch concurrently
  // so the windows overlap instead of serializing N sleeps.
  char path[64];
  snprintf(path, sizeof(path), "/profilez?seconds=%.3f&format=folded",
           seconds);
  const int timeout_ms = static_cast<int>(seconds * 1000) + 5000;
  std::vector<int> ports;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    for (size_t rep = 0; rep < config_.replica_obs_ports.size(); ++rep) {
      const bool live = rep < views_.size() && views_[rep].live;
      ports.push_back(live ? config_.replica_obs_ports[rep] : 0);
    }
  }
  std::vector<std::string> folded(ports.size());
  // Distinct from an empty profile: an idle replica legitimately returns
  // zero folded lines (ITIMER_PROF accrues no CPU while blocked), so
  // "answered" counts successful fetches, not non-empty bodies.
  std::vector<char> fetched(ports.size(), 0);
  std::vector<std::thread> fetchers;
  for (size_t rep = 0; rep < ports.size(); ++rep) {
    if (ports[rep] <= 0) continue;
    fetchers.emplace_back([&, rep] {
      std::string body;
      std::string error;
      if (HttpGetLocal(ports[rep], path, &body, &error, timeout_ms)) {
        folded[rep] = std::move(body);
        fetched[rep] = 1;
      }
    });
  }
  for (std::thread& t : fetchers) t.join();
  size_t answered = 0;
  for (const char f : fetched) answered += f;
  std::ostringstream out;
  out << "# sdpopt fleet profile: " << answered << "/" << ports.size()
      << " replica(s), " << seconds << "s window, folded stacks merged by "
      << "phase+symbol\n"
      << MergeFoldedProfiles(folded);
  return out.str();
}

std::string FleetRouter::RenderDtracezIndex() const {
  std::ostringstream out;
  out << "sdpopt fleet router /dtracez\n"
         "  ?trace=<16-hex-id>          merged cross-process timeline\n"
         "  ?trace=...&format=json      structural JSON (deterministic)\n"
         "  ?trace=...&format=chrome    Chrome trace-event export"
         " (timing, one pid lane per process)\n\n";
  const std::vector<RouteTraceEntry> traces = RecentTraces();
  out << "recent requests (newest first, " << traces.size() << " of up to "
      << kMaxRecentTraces << "):\n";
  for (const RouteTraceEntry& t : traces) {
    out << "  trace " << TraceIdHex(t.trace_id) << " req " << t.request_id
        << " replica " << t.replica << " attempts " << t.attempts
        << (t.ok ? " ok" : " FAILED") << "\n";
  }
  return out.str();
}

std::string FleetRouter::RenderDtracezTimeline(uint64_t trace_id,
                                               const std::string& format)
    const {
  RouteTraceEntry entry;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(traces_mu_);
    for (const RouteTraceEntry& t : recent_traces_) {
      if (t.trace_id == trace_id) {
        entry = t;
        found = true;
        break;
      }
    }
  }
  if (!found) return "";

  const bool chrome = format == "chrome";
  // The merged JSON/human timeline renders structurally so two runs of
  // the same seeded workload -- at any --opt-threads -- produce the same
  // bytes; the Chrome view is the opposite trade and keeps wall-clock.
  ObsExportOptions opts;
  opts.trace_id = trace_id;
  opts.structural = !chrome;
  opts.include_timing = chrome;
  const std::vector<std::string> router_lines =
      SplitLines(ObsSnapshotToJsonl(FlightRecorder::Global().Snapshot(),
                                    opts));
  const std::vector<std::string> replica_lines = SplitLines(
      FetchReplicaSlice(entry.replica, trace_id, /*structural=*/!chrome));

  std::ostringstream out;
  if (chrome) {
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":"
           "{\"name\":\"router\"}}";
    first = false;
    if (entry.replica >= 0) {
      out << ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
          << 1 + entry.replica << ",\"args\":{\"name\":\"replica "
          << entry.replica << "\"}}";
    }
    for (const std::string& line : router_lines) {
      AppendChromeEvent(&out, line, /*pid=*/0, &first);
    }
    for (const std::string& line : replica_lines) {
      AppendChromeEvent(&out, line, /*pid=*/1 + entry.replica, &first);
    }
    out << "\n]}\n";
    return out.str();
  }

  // Splice the replica's span slice into the router's event order, right
  // before the route closes: begin/attempt(s), then everything the owning
  // replica did, then route_end (and any broadcast fan-out after it).
  size_t splice_at = router_lines.size();
  for (size_t i = 0; i < router_lines.size(); ++i) {
    if (router_lines[i].find("\"event\":\"route_end\"") !=
        std::string::npos) {
      splice_at = i;
      break;
    }
  }
  std::vector<std::pair<const std::string*, int>> merged;  // line, lane
  for (size_t i = 0; i < router_lines.size(); ++i) {
    if (i == splice_at) {
      for (const std::string& line : replica_lines) {
        merged.emplace_back(&line, entry.replica);
      }
    }
    merged.emplace_back(&router_lines[i], -1);
  }
  if (splice_at == router_lines.size()) {
    for (const std::string& line : replica_lines) {
      merged.emplace_back(&line, entry.replica);
    }
  }

  if (format == "json") {
    out << "{\n\"trace\":\"" << TraceIdHex(trace_id) << "\",\n"
        << "\"request_id\":" << entry.request_id << ",\n"
        << "\"key_hash\":" << entry.key_hash << ",\n"
        << "\"replica\":" << entry.replica << ",\n"
        << "\"attempts\":" << entry.attempts << ",\n"
        << "\"ok\":" << (entry.ok ? "true" : "false") << ",\n"
        << "\"events\":[\n";
    for (size_t i = 0; i < merged.size(); ++i) {
      // Re-wrap each exported event with its process lane (-1 = router).
      const std::string& line = *merged[i].first;
      out << "{\"lane\":" << merged[i].second << ","
          << line.substr(1);  // Drop the line's own '{'.
      if (i + 1 < merged.size()) out << ",";
      out << "\n";
    }
    out << "]}\n";
    return out.str();
  }

  // Human rendering: the same merged order, lane-prefixed.
  out << "trace " << TraceIdHex(trace_id) << " req " << entry.request_id
      << " replica " << entry.replica << " attempts " << entry.attempts
      << (entry.ok ? " ok" : " FAILED") << "\n";
  for (const auto& item : merged) {
    if (item.second < 0) {
      out << "  router   | " << *item.first << "\n";
    } else {
      out << "  replica" << item.second << " | " << *item.first << "\n";
    }
  }
  return out.str();
}

HttpResponse FleetRouter::HandleHttp(const HttpRequest& request) const {
  HttpResponse resp;
  if (request.path == "/fleetz") {
    resp.content_type = "application/json";
    resp.body = RenderFleetz();
  } else if (request.path == "/metrics") {
    resp.body = RenderMergedMetrics();
  } else if (request.path == "/dtracez") {
    const std::string trace_text = QueryParam(request.query, "trace");
    if (trace_text.empty()) {
      resp.body = RenderDtracezIndex();
    } else {
      const uint64_t trace_id = ParseTraceId(trace_text);
      const std::string format = QueryParam(request.query, "format");
      const std::string body =
          trace_id == 0 ? "" : RenderDtracezTimeline(trace_id, format);
      if (body.empty()) {
        resp.status = 404;
        resp.body = "unknown trace id; see /dtracez\n";
      } else {
        if (format == "json" || format == "chrome") {
          resp.content_type = "application/json";
        }
        resp.body = body;
      }
    }
  } else if (request.path == "/profilez") {
    double seconds = 1.0;
    const std::string seconds_text = QueryParam(request.query, "seconds");
    if (!seconds_text.empty()) seconds = strtod(seconds_text.c_str(), nullptr);
    resp.body = RenderMergedProfilez(seconds);
  } else if (request.path == "/") {
    resp.body =
        "sdpopt fleet router\n"
        "  /fleetz   per-replica health, probes, queue depth, cache hits\n"
        "  /metrics  merged Prometheus exposition (replica-labelled)\n"
        "  /dtracez  per-request cross-process timelines"
        " (?trace=HEX&format=json|chrome)\n"
        "  /profilez merged fleet CPU profile, folded stacks"
        " (?seconds=S)\n";
  } else {
    resp.status = 404;
    resp.body = "unknown endpoint; see /\n";
  }
  return resp;
}

}  // namespace sdp
