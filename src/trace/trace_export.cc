#include "trace/trace_export.h"

#include <cmath>
#include <cstdio>
#include <map>

#include "obs/dtrace.h"

namespace sdp {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "null";  // JSON has no infinity.
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  *out += buf;
}

void AppendU64(std::string* out, uint64_t v) {
  *out += std::to_string(v);
}

// Shared per-event JSON body (the fields after "event"), identical for the
// JSONL export and the Chrome "args" object so both views agree.
struct FieldWriter {
  std::string* out;
  bool first = true;

  void Key(const char* k) {
    if (!first) *out += ",";
    first = false;
    *out += "\"";
    *out += k;
    *out += "\":";
  }
  void Str(const char* k, const std::string& v) {
    Key(k);
    AppendEscaped(out, v);
  }
  void Num(const char* k, double v) {
    Key(k);
    AppendDouble(out, v);
  }
  void Int(const char* k, int64_t v) {
    Key(k);
    *out += std::to_string(v);
  }
  void U64(const char* k, uint64_t v) {
    Key(k);
    AppendU64(out, v);
  }
  void Bool(const char* k, bool v) {
    Key(k);
    *out += v ? "true" : "false";
  }
};

struct EventVisitor {
  FieldWriter* w;
  bool include_timing;

  void operator()(const TraceRunBegin& e) const {
    w->Str("event", "run_begin");
    w->Str("algorithm", e.algorithm);
    w->Int("num_relations", e.num_relations);
    w->Int("num_edges", e.num_edges);
    w->Int("hub_degree", e.hub_degree);
    w->Key("hubs");
    *w->out += "[";
    for (size_t i = 0; i < e.hub_relations.size(); ++i) {
      if (i > 0) *w->out += ",";
      *w->out += std::to_string(e.hub_relations[i]);
    }
    *w->out += "]";
    w->Key("edge_selectivities");
    *w->out += "[";
    for (size_t i = 0; i < e.edge_selectivities.size(); ++i) {
      if (i > 0) *w->out += ",";
      AppendDouble(w->out, e.edge_selectivities[i]);
    }
    *w->out += "]";
  }
  void operator()(const TraceRunEnd& e) const {
    w->Str("event", "run_end");
    w->Bool("feasible", e.feasible);
    w->Num("cost", e.cost);
    w->U64("plans_costed", e.plans_costed);
    w->U64("jcrs_created", e.jcrs_created);
    w->U64("pairs_examined", e.pairs_examined);
    if (include_timing) w->Num("elapsed_seconds", e.elapsed_seconds);
    w->Num("peak_memory_mb", e.peak_memory_mb);
  }
  void operator()(const TraceLevelBegin& e) const {
    w->Str("event", "level_begin");
    w->Int("iteration", e.iteration);
    w->Int("level", e.level);
    w->Str("phase", e.phase);
  }
  void operator()(const TraceLevelEnd& e) const {
    w->Str("event", "level_end");
    w->Int("iteration", e.iteration);
    w->Int("level", e.level);
    w->Str("phase", e.phase);
    w->U64("jcrs_created", e.jcrs_created);
    w->U64("pairs_examined", e.pairs_examined);
    w->U64("plans_costed", e.plans_costed);
    w->U64("memo_bytes", e.memo_bytes);
    if (include_timing) w->Num("seconds", e.seconds);
  }
  void operator()(const TracePartition& e) const {
    w->Str("event", "partition");
    w->Int("level", e.level);
    w->Str("kind", e.kind);
    w->Int("hub", e.hub);
    w->U64("hub_rels", e.hub_rels);
    int survivors = 0;
    for (const TracePartitionMember& m : e.members) survivors += m.survived;
    w->Int("size", static_cast<int64_t>(e.members.size()));
    w->Int("survivors", survivors);
    w->Key("members");
    *w->out += "[";
    for (size_t i = 0; i < e.members.size(); ++i) {
      const TracePartitionMember& m = e.members[i];
      if (i > 0) *w->out += ",";
      FieldWriter mw{w->out};
      *w->out += "{";
      mw.U64("rels", m.rels);
      mw.Num("rows", m.rows);
      mw.Num("cost", m.cost);
      mw.Num("sel", m.sel);
      mw.Bool("survived", m.survived);
      mw.Bool("rc", m.in_rc);
      mw.Bool("cs", m.in_cs);
      mw.Bool("rs", m.in_rs);
      *w->out += "}";
    }
    *w->out += "]";
  }
  void operator()(const TracePruneLevel& e) const {
    w->Str("event", "prune_level");
    w->Int("level", e.level);
    w->Int("jcrs", e.jcrs);
    w->Int("prune_group", e.prune_group);
    w->Int("free_group", e.free_group);
    w->Int("hub_parents", e.hub_parents);
    w->Int("partitions", e.partitions);
    w->Int("pruned", e.pruned);
    w->Bool("guard_rescue", e.guard_rescue);
  }
  void operator()(const TraceCacheEvent& e) const {
    w->Str("event", "cache");
    w->Str("kind", e.kind);
    w->Str("key", e.key);
    if (e.trace_id != 0) w->Str("trace", TraceIdHex(e.trace_id));
  }
  void operator()(const TraceDegradeEvent& e) const {
    w->Str("event", "degrade");
    w->Str("kind", e.kind);
    w->Str("rung", e.rung);
    w->Str("algorithm", e.algorithm);
    w->Str("status", e.status);
    w->Int("attempt", e.attempt);
    w->Int("retries", e.retries);
    if (include_timing) w->Num("elapsed_seconds", e.elapsed_seconds);
    w->U64("plans_costed", e.plans_costed);
    w->Num("peak_memory_mb", e.peak_memory_mb);
    if (e.trace_id != 0) w->Str("trace", TraceIdHex(e.trace_id));
  }
  void operator()(const TraceParallelLevel& e) const {
    w->Str("event", "parallel_level");
    w->Int("level", e.level);
    w->Int("threads", e.threads);
    w->Int("shards", e.shards);
    w->U64("pairs", e.pairs);
    w->U64("candidates_costed", e.candidates_costed);
    w->U64("candidates_kept", e.candidates_kept);
    if (include_timing) {
      w->Num("enumerate_seconds", e.enumerate_seconds);
      w->Num("merge_seconds", e.merge_seconds);
      w->Num("utilization", e.utilization);
    }
  }
};

const char* SpanName(const TraceLevelBegin& e, std::string* storage) {
  *storage = std::string(e.phase) + " L" + std::to_string(e.level);
  return storage->c_str();
}

}  // namespace

std::string ExportJsonl(const TraceCollector& collector,
                        const JsonlOptions& options) {
  std::string out;
  for (const TraceCollector::Recorded& r : collector.events()) {
    out += "{";
    FieldWriter w{&out};
    if (options.include_timing) w.Num("ts", r.ts_seconds);
    std::visit(EventVisitor{&w, options.include_timing}, r.payload);
    out += "}\n";
  }
  return out;
}

std::string ExportChromeTrace(const TraceCollector& collector) {
  std::string out = "{\"traceEvents\":[\n";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"sdpopt optimizer\"}}";

  auto emit = [&out](const char* name, const char* ph, double ts_seconds,
                     int tid, const TraceCollector::Recorded* args_of) {
    out += ",\n{\"name\":";
    AppendEscaped(&out, name);
    out += ",\"ph\":\"";
    out += ph;
    out += "\",\"ts\":";
    AppendDouble(&out, ts_seconds * 1e6);  // Chrome wants microseconds.
    out += ",\"pid\":1,\"tid\":" + std::to_string(tid);
    if (ph[0] == 'i') out += ",\"s\":\"t\"";
    if (args_of != nullptr) {
      out += ",\"args\":{";
      FieldWriter w{&out};
      std::visit(EventVisitor{&w, /*include_timing=*/true}, args_of->payload);
      out += "}";
    }
    out += "}";
  };

  // Cumulative counter tracks, one per thread so concurrent runs do not
  // fight over one counter line.
  std::map<int, uint64_t> plans_costed;

  std::string name_storage;
  for (const TraceCollector::Recorded& r : collector.events()) {
    if (const auto* e = std::get_if<TraceRunBegin>(&r.payload)) {
      emit(("run " + e->algorithm).c_str(), "B", r.ts_seconds, r.thread, &r);
    } else if (std::get_if<TraceRunEnd>(&r.payload)) {
      emit("run", "E", r.ts_seconds, r.thread, &r);
    } else if (const auto* e = std::get_if<TraceLevelBegin>(&r.payload)) {
      emit(SpanName(*e, &name_storage), "B", r.ts_seconds, r.thread, &r);
    } else if (const auto* e = std::get_if<TraceLevelEnd>(&r.payload)) {
      TraceLevelBegin b{e->iteration, e->level, e->phase};
      emit(SpanName(b, &name_storage), "E", r.ts_seconds, r.thread, &r);
      // Counter samples at each span close.
      uint64_t& costed = plans_costed[r.thread];
      costed += e->plans_costed;
      out += ",\n{\"name\":\"plans_costed\",\"ph\":\"C\",\"ts\":";
      AppendDouble(&out, r.ts_seconds * 1e6);
      out += ",\"pid\":1,\"tid\":" + std::to_string(r.thread) +
             ",\"args\":{\"plans\":" + std::to_string(costed) + "}}";
      out += ",\n{\"name\":\"memo_bytes\",\"ph\":\"C\",\"ts\":";
      AppendDouble(&out, r.ts_seconds * 1e6);
      out += ",\"pid\":1,\"tid\":" + std::to_string(r.thread) +
             ",\"args\":{\"bytes\":" + std::to_string(e->memo_bytes) + "}}";
    } else if (const auto* e = std::get_if<TracePartition>(&r.payload)) {
      emit((std::string("partition ") + e->kind).c_str(), "i", r.ts_seconds,
           r.thread, &r);
    } else if (const auto* e = std::get_if<TracePruneLevel>(&r.payload)) {
      emit(("prune L" + std::to_string(e->level)).c_str(), "i", r.ts_seconds,
           r.thread, &r);
    } else if (const auto* e = std::get_if<TraceCacheEvent>(&r.payload)) {
      emit((std::string("cache ") + e->kind).c_str(), "i", r.ts_seconds,
           r.thread, &r);
    } else if (const auto* e = std::get_if<TraceDegradeEvent>(&r.payload)) {
      emit((std::string("degrade ") + e->kind + " " + e->rung).c_str(), "i",
           r.ts_seconds, r.thread, &r);
    } else if (const auto* e = std::get_if<TraceParallelLevel>(&r.payload)) {
      emit(("parallel L" + std::to_string(e->level)).c_str(), "i",
           r.ts_seconds, r.thread, &r);
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string ExportReport(const TraceCollector& collector) {
  std::string out;
  char buf[256];
  for (const TraceCollector::Recorded& r : collector.events()) {
    if (const auto* e = std::get_if<TraceRunBegin>(&r.payload)) {
      std::snprintf(buf, sizeof(buf),
                    "== optimizer trace: %s on %d relations, %d edges ==\n",
                    e->algorithm.c_str(), e->num_relations, e->num_edges);
      out += buf;
      out += "hubs (degree>=" + std::to_string(e->hub_degree) + "):";
      if (e->hub_relations.empty()) out += " none";
      for (int h : e->hub_relations) out += " R" + std::to_string(h);
      out += "\n";
      std::snprintf(buf, sizeof(buf),
                    "%-4s %-8s %10s %12s %14s %10s %10s\n", "lvl", "phase",
                    "jcrs", "pairs", "plans_costed", "memo_KB", "ms");
      out += buf;
    } else if (const auto* e = std::get_if<TraceLevelEnd>(&r.payload)) {
      std::snprintf(
          buf, sizeof(buf), "%-4d %-8s %10llu %12llu %14llu %10.1f %10.3f\n",
          e->level, e->phase,
          static_cast<unsigned long long>(e->jcrs_created),
          static_cast<unsigned long long>(e->pairs_examined),
          static_cast<unsigned long long>(e->plans_costed),
          static_cast<double>(e->memo_bytes) / 1024.0, e->seconds * 1e3);
      out += buf;
    } else if (const auto* e = std::get_if<TracePruneLevel>(&r.payload)) {
      std::snprintf(buf, sizeof(buf),
                    "     prune L%-2d: jcrs=%d prune_group=%d free_group=%d "
                    "hub_parents=%d partitions=%d pruned=%d%s\n",
                    e->level, e->jcrs, e->prune_group, e->free_group,
                    e->hub_parents, e->partitions, e->pruned,
                    e->guard_rescue ? " (guard rescue)" : "");
      out += buf;
    } else if (const auto* e = std::get_if<TracePartition>(&r.payload)) {
      int survivors = 0, rc = 0, cs = 0, rs = 0;
      for (const TracePartitionMember& m : e->members) {
        survivors += m.survived;
        rc += m.in_rc;
        cs += m.in_cs;
        rs += m.in_rs;
      }
      std::string hub_label;
      if (e->hub >= 0) hub_label = " R" + std::to_string(e->hub);
      std::snprintf(buf, sizeof(buf),
                    "       partition %s%s: size=%zu survivors=%d "
                    "(rc=%d cs=%d rs=%d)\n",
                    e->kind, hub_label.c_str(), e->members.size(), survivors,
                    rc, cs, rs);
      out += buf;
    } else if (const auto* e = std::get_if<TraceRunEnd>(&r.payload)) {
      std::snprintf(buf, sizeof(buf),
                    "run end: %s cost=%.1f plans_costed=%llu jcrs=%llu "
                    "peak=%.2fMB time=%.4fs\n\n",
                    e->feasible ? "feasible" : "INFEASIBLE", e->cost,
                    static_cast<unsigned long long>(e->plans_costed),
                    static_cast<unsigned long long>(e->jcrs_created),
                    e->peak_memory_mb, e->elapsed_seconds);
      out += buf;
    } else if (const auto* e = std::get_if<TraceCacheEvent>(&r.payload)) {
      out += std::string("cache ") + e->kind + "\n";
    } else if (const auto* e = std::get_if<TraceParallelLevel>(&r.payload)) {
      std::snprintf(buf, sizeof(buf),
                    "     parallel L%-2d: threads=%d shards=%d pairs=%llu "
                    "costed=%llu kept=%llu util=%.0f%% "
                    "enum=%.3fms merge=%.3fms\n",
                    e->level, e->threads, e->shards,
                    static_cast<unsigned long long>(e->pairs),
                    static_cast<unsigned long long>(e->candidates_costed),
                    static_cast<unsigned long long>(e->candidates_kept),
                    e->utilization * 100.0, e->enumerate_seconds * 1e3,
                    e->merge_seconds * 1e3);
      out += buf;
    } else if (const auto* e = std::get_if<TraceDegradeEvent>(&r.payload)) {
      std::snprintf(buf, sizeof(buf),
                    "degrade %s: rung=%s%s%s status=%s attempt=%d"
                    " retries=%d plans=%llu peak=%.2fMB\n",
                    e->kind, e->rung.c_str(),
                    e->algorithm.empty() ? "" : " algo=",
                    e->algorithm.c_str(), e->status.c_str(), e->attempt,
                    e->retries,
                    static_cast<unsigned long long>(e->plans_costed),
                    e->peak_memory_mb);
      out += buf;
    }
  }
  return out;
}

std::optional<JoinGraphAnnotations> AnnotationsFromTrace(
    const TraceCollector& collector) {
  for (const TraceCollector::Recorded& r : collector.events()) {
    if (const auto* e = std::get_if<TraceRunBegin>(&r.payload)) {
      JoinGraphAnnotations a;
      a.hub_degree = e->hub_degree;
      a.hub_relations = e->hub_relations;
      a.edge_selectivities = e->edge_selectivities;
      return a;
    }
  }
  return std::nullopt;
}

}  // namespace sdp
