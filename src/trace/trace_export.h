#ifndef SDPOPT_TRACE_TRACE_EXPORT_H_
#define SDPOPT_TRACE_TRACE_EXPORT_H_

#include <optional>
#include <string>

#include "query/graphviz.h"
#include "trace/trace_collector.h"

namespace sdp {

// Exporters over a finished TraceCollector.  All three render the same
// event stream:
//
//  * ExportChromeTrace -- Chrome trace-event JSON ("traceEvents" array of
//    B/E spans, C counter tracks and i instants) that loads directly in
//    Perfetto or chrome://tracing.
//  * ExportJsonl -- one JSON object per line for programmatic analysis.
//    Timing fields are omitted by default so two runs of the same seeded
//    optimization produce byte-identical streams.
//  * ExportReport -- a human-readable per-query "optimizer report": the
//    EXPLAIN of the search space (per-level effort, skyline prune yields,
//    partition survivor accounting).

struct JsonlOptions {
  // Include wall-clock fields (ts, seconds, elapsed).  Off by default:
  // determinism is worth more than timestamps in machine-read streams, and
  // the Chrome trace carries all timing anyway.
  bool include_timing = false;
};

std::string ExportChromeTrace(const TraceCollector& collector);
std::string ExportJsonl(const TraceCollector& collector,
                        const JsonlOptions& options = {});
std::string ExportReport(const TraceCollector& collector);

// Reconstructs join-graph annotations (hubs, edge selectivities) from the
// first run-begin event of a trace, for the annotated GraphViz rendering.
// Empty when the trace holds no run-begin event.
std::optional<JoinGraphAnnotations> AnnotationsFromTrace(
    const TraceCollector& collector);

}  // namespace sdp

#endif  // SDPOPT_TRACE_TRACE_EXPORT_H_
