#ifndef SDPOPT_TRACE_TRACE_COLLECTOR_H_
#define SDPOPT_TRACE_TRACE_COLLECTOR_H_

#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "trace/trace.h"

namespace sdp {

// In-memory trace sink: records every event, stamped with a wall-clock
// offset and a dense thread ordinal, in arrival order.  Recording is
// thread-safe (one mutex per append) so a single collector can observe a
// multi-threaded OptimizerService; exporters read the finished event list
// single-threaded after the traced work has drained.
class TraceCollector : public Tracer {
 public:
  using Payload =
      std::variant<TraceRunBegin, TraceRunEnd, TraceLevelBegin, TraceLevelEnd,
                   TracePartition, TracePruneLevel, TraceCacheEvent,
                   TraceDegradeEvent, TraceParallelLevel>;

  struct Recorded {
    double ts_seconds = 0;  // Offset from collector creation.
    int thread = 0;         // Dense ordinal of the recording thread.
    Payload payload;
  };

  TraceCollector() : start_(std::chrono::steady_clock::now()) {}

  void OnRunBegin(const TraceRunBegin& e) override { Record(e); }
  void OnRunEnd(const TraceRunEnd& e) override { Record(e); }
  void OnLevelBegin(const TraceLevelBegin& e) override { Record(e); }
  void OnLevelEnd(const TraceLevelEnd& e) override { Record(e); }
  void OnPartition(const TracePartition& e) override { Record(e); }
  void OnPruneLevel(const TracePruneLevel& e) override { Record(e); }
  void OnCacheEvent(const TraceCacheEvent& e) override { Record(e); }
  void OnDegrade(const TraceDegradeEvent& e) override { Record(e); }
  void OnParallelLevel(const TraceParallelLevel& e) override { Record(e); }

  // The recorded stream.  Only valid once all traced work has finished.
  const std::vector<Recorded>& events() const { return events_; }
  size_t num_events() const;

  void Clear();

 private:
  void Record(Payload payload);

  const std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  std::unordered_map<std::thread::id, int> thread_ordinals_;
  std::vector<Recorded> events_;
};

}  // namespace sdp

#endif  // SDPOPT_TRACE_TRACE_COLLECTOR_H_
