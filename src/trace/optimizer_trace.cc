#include "trace/optimizer_trace.h"

namespace sdp {

TraceRunBegin MakeTraceRunBegin(std::string algorithm, const JoinGraph& graph,
                                const CostModel& cost, int hub_degree) {
  TraceRunBegin e;
  e.algorithm = std::move(algorithm);
  e.num_relations = graph.num_relations();
  e.num_edges = static_cast<int>(graph.edges().size());
  e.hub_degree = hub_degree;
  for (int r = 0; r < graph.num_relations(); ++r) {
    if (graph.Degree(r) >= hub_degree) e.hub_relations.push_back(r);
  }
  e.edge_selectivities.reserve(graph.edges().size());
  for (size_t i = 0; i < graph.edges().size(); ++i) {
    e.edge_selectivities.push_back(
        cost.EdgeSelectivity(static_cast<int>(i)));
  }
  return e;
}

void EmitTraceRunEnd(Tracer* tracer, const OptimizeResult& result) {
  if (tracer == nullptr) return;
  TraceRunEnd e;
  e.feasible = result.feasible;
  e.cost = result.cost;
  e.plans_costed = result.counters.plans_costed;
  e.jcrs_created = result.counters.jcrs_created;
  e.pairs_examined = result.counters.pairs_examined;
  e.elapsed_seconds = result.elapsed_seconds;
  e.peak_memory_mb = result.peak_memory_mb;
  tracer->OnRunEnd(e);
}

}  // namespace sdp
