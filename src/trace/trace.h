#ifndef SDPOPT_TRACE_TRACE_H_
#define SDPOPT_TRACE_TRACE_H_

#include <stddef.h>
#include <stdint.h>

#include <string>
#include <vector>

namespace sdp {

// Typed events describing one optimization run's search effort.  Producers
// (the DP/IDP/SDP drivers, the SDP pruner, the optimizer service) construct
// events only behind an `if (tracer != nullptr)` guard, so a disabled
// tracer costs one branch and zero allocations on every instrumentation
// point.
//
// Event vocabulary:
//  * run begin/end     -- one optimization (algorithm, graph shape, outcome)
//  * level begin/end   -- one enumeration span: leaf installation, a DP
//                         level, or an IDP ballooning/greedy phase, with the
//                         SearchCounters deltas and memo footprint
//  * partition         -- one skyline partition applied by SDP, member by
//                         member, with the [R,C,S] vectors and which 2-D
//                         skyline saved each survivor
//  * prune level       -- the summary of one SDP pruning pass (PruneGroup /
//                         FreeGroup split, hubs, partitions, prune yield)
//  * cache             -- plan-cache traffic from the optimizer service

// Emitted once when an optimization run starts.  Hub and selectivity data
// also feed the annotated GraphViz rendering (see query/graphviz.h).
struct TraceRunBegin {
  std::string algorithm;
  int num_relations = 0;
  int num_edges = 0;
  int hub_degree = 3;
  std::vector<int> hub_relations;          // Degree >= hub_degree.
  std::vector<double> edge_selectivities;  // Parallel to graph.edges().
};

struct TraceRunEnd {
  bool feasible = false;
  double cost = 0;
  uint64_t plans_costed = 0;
  uint64_t jcrs_created = 0;
  uint64_t pairs_examined = 0;
  double elapsed_seconds = 0;
  double peak_memory_mb = 0;
};

struct TraceLevelBegin {
  int iteration = 0;            // IDP iteration ordinal; 0 for DP/SDP.
  int level = 0;                // Unit count of the level (1 = leaves).
  const char* phase = "level";  // "leaves" | "level" | "balloon" | "greedy".
};

struct TraceLevelEnd {
  int iteration = 0;
  int level = 0;
  const char* phase = "level";
  // SearchCounters deltas accumulated within the span.
  uint64_t jcrs_created = 0;
  uint64_t pairs_examined = 0;
  uint64_t plans_costed = 0;
  // Bytes charged to the run's MemoryGauge when the span closed (memo +
  // plan pool + cardinality cache).
  size_t memo_bytes = 0;
  double seconds = 0;  // Wall time of the span.
};

// One JCR inside a skyline partition.
struct TracePartitionMember {
  uint64_t rels = 0;  // RelSet bits.
  double rows = 0;    // The [R,C,S] feature vector.
  double cost = 0;
  double sel = 1;
  bool survived = false;
  // Which pairwise 2-D skyline(s) the member belongs to (pairwise-union
  // variant only; all false under other variants).
  bool in_rc = false;
  bool in_cs = false;
  bool in_rs = false;
};

struct TracePartition {
  int level = 0;
  // "root-hub" | "parent-hub" | "global" | "order-rescue".
  const char* kind = "root-hub";
  int hub = -1;           // Root-hub partitions: the hub relation position.
  uint64_t hub_rels = 0;  // Parent-hub partitions: the hub composite bits.
  std::vector<TracePartitionMember> members;
};

// Summary of one SDP pruning pass over a completed level.
struct TracePruneLevel {
  int level = 0;
  int jcrs = 0;         // Unpruned JCRs at the level before pruning.
  int prune_group = 0;  // JCRs containing a complete hub parent.
  int free_group = 0;   // jcrs - prune_group: survive unconditionally.
  int hub_parents = 0;  // Hubs of the contracted graph feeding partitions.
  int partitions = 0;   // Partitions applied (including rescue partitions).
  int pruned = 0;       // JCRs pruned after the non-empty guard.
  bool guard_rescue = false;  // The cheapest JCR was un-pruned by the guard.
};

// Plan-cache traffic observed by the optimizer service.
struct TraceCacheEvent {
  // "hit" | "miss" | "fill" | "abandon" | "fail-propagated".
  const char* kind = "miss";
  std::string key;  // Full canonical cache key.
  // Distributed-trace id of the request that caused the traffic
  // (obs/dtrace.h); 0 when the request carried no context.
  uint64_t trace_id = 0;
};

// Degradation-ladder activity: one event per rung attempt (run or skipped
// by the circuit breaker), plus a final "resolved" event when the ladder
// settles on a rung or gives up.
struct TraceDegradeEvent {
  const char* kind = "attempt";  // "attempt" | "skip" | "resolved".
  std::string rung;              // "dp" | "idp" | "sdp" | "greedy".
  std::string algorithm;         // e.g. "IDP(7)"; empty on skip.
  std::string status;            // OptStatus rendering, e.g. "OK".
  int attempt = 0;               // Ladder ordinal of this rung.
  int retries = 0;               // "resolved": rungs consumed before winner.
  double elapsed_seconds = 0;
  uint64_t plans_costed = 0;
  double peak_memory_mb = 0;
  // Distributed-trace id of the governed request (obs/dtrace.h); 0 when
  // the request carried no context.
  uint64_t trace_id = 0;
};

// One parallelized enumeration level: how the candidate-pair space was
// sharded and how the enumerate/merge phases spent their time.  Emitted
// only when RunLevel actually took the parallel path (and completed its
// worker phase); serial runs and serial fallbacks emit nothing.
struct TraceParallelLevel {
  int level = 0;
  int threads = 0;  // Enumeration workers (pool threads + caller).
  int shards = 0;   // Chunks the pair space was split into.
  uint64_t pairs = 0;                // Candidate pairs planned for the level.
  uint64_t candidates_costed = 0;    // Join candidates costed by workers.
  uint64_t candidates_kept = 0;      // Survived chunk-local dominance.
  double enumerate_seconds = 0;      // Parallel costing phase wall time.
  double merge_seconds = 0;          // Deterministic replay wall time.
  double utilization = 0;  // Sum of worker busy time / (phase * threads).
};

// Structured trace sink.  The default implementation ignores everything, so
// subclasses override only the events they care about.  Instrumented code
// holds a `Tracer*` that is null when tracing is disabled.
class Tracer {
 public:
  virtual ~Tracer() = default;

  virtual void OnRunBegin(const TraceRunBegin&) {}
  virtual void OnRunEnd(const TraceRunEnd&) {}
  virtual void OnLevelBegin(const TraceLevelBegin&) {}
  virtual void OnLevelEnd(const TraceLevelEnd&) {}
  virtual void OnPartition(const TracePartition&) {}
  virtual void OnPruneLevel(const TracePruneLevel&) {}
  virtual void OnCacheEvent(const TraceCacheEvent&) {}
  virtual void OnDegrade(const TraceDegradeEvent&) {}
  virtual void OnParallelLevel(const TraceParallelLevel&) {}
};

}  // namespace sdp

#endif  // SDPOPT_TRACE_TRACE_H_
