#ifndef SDPOPT_TRACE_OPTIMIZER_TRACE_H_
#define SDPOPT_TRACE_OPTIMIZER_TRACE_H_

#include <chrono>
#include <string>

#include "common/arena.h"
#include "cost/cost_model.h"
#include "optimizer/optimizer_types.h"
#include "query/join_graph.h"
#include "trace/trace.h"

namespace sdp {

// Builds the run-begin event for an optimization of `graph`: hub relations
// under `hub_degree` and the per-edge selectivities the cost model uses.
// Call only when a tracer is attached (allocates vectors).
TraceRunBegin MakeTraceRunBegin(std::string algorithm, const JoinGraph& graph,
                                const CostModel& cost, int hub_degree = 3);

// Emits the run-end event for a finished OptimizeResult.  No-op on null.
void EmitTraceRunEnd(Tracer* tracer, const OptimizeResult& result);

// RAII span over one enumeration section (leaf installation, a DP level,
// an IDP balloon/greedy phase).  Emits level_begin on construction and
// level_end -- carrying the SearchCounters deltas, the gauge's current
// bytes and the span's wall time -- on destruction.  With a null tracer
// both ends are a single branch: no snapshot, no clock read, no event.
class TraceLevelScope {
 public:
  TraceLevelScope(Tracer* tracer, int iteration, int level, const char* phase,
                  const SearchCounters& counters, const MemoryGauge& gauge)
      : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    counters_ = &counters;
    gauge_ = &gauge;
    iteration_ = iteration;
    level_ = level;
    phase_ = phase;
    snapshot_ = counters;
    start_ = std::chrono::steady_clock::now();
    TraceLevelBegin begin;
    begin.iteration = iteration;
    begin.level = level;
    begin.phase = phase;
    tracer_->OnLevelBegin(begin);
  }

  ~TraceLevelScope() {
    if (tracer_ == nullptr) return;
    TraceLevelEnd end;
    end.iteration = iteration_;
    end.level = level_;
    end.phase = phase_;
    end.jcrs_created = counters_->jcrs_created - snapshot_.jcrs_created;
    end.pairs_examined = counters_->pairs_examined - snapshot_.pairs_examined;
    end.plans_costed = counters_->plans_costed - snapshot_.plans_costed;
    end.memo_bytes = gauge_->current_bytes();
    end.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    tracer_->OnLevelEnd(end);
  }

  TraceLevelScope(const TraceLevelScope&) = delete;
  TraceLevelScope& operator=(const TraceLevelScope&) = delete;

 private:
  Tracer* tracer_;
  const SearchCounters* counters_ = nullptr;
  const MemoryGauge* gauge_ = nullptr;
  int iteration_ = 0;
  int level_ = 0;
  const char* phase_ = "level";
  SearchCounters snapshot_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sdp

#endif  // SDPOPT_TRACE_OPTIMIZER_TRACE_H_
