#ifndef SDPOPT_TRACE_OPTIMIZER_TRACE_H_
#define SDPOPT_TRACE_OPTIMIZER_TRACE_H_

#include <chrono>
#include <string>

#include "common/arena.h"
#include "cost/cost_model.h"
#include "obs/flight_recorder.h"
#include "optimizer/optimizer_types.h"
#include "query/join_graph.h"
#include "trace/trace.h"

namespace sdp {

// Builds the run-begin event for an optimization of `graph`: hub relations
// under `hub_degree` and the per-edge selectivities the cost model uses.
// Call only when a tracer is attached (allocates vectors).
TraceRunBegin MakeTraceRunBegin(std::string algorithm, const JoinGraph& graph,
                                const CostModel& cost, int hub_degree = 3);

// Emits the run-end event for a finished OptimizeResult.  No-op on null.
void EmitTraceRunEnd(Tracer* tracer, const OptimizeResult& result);

// RAII span over one enumeration section (leaf installation, a DP level,
// an IDP balloon/greedy phase).  Emits level_begin on construction and
// level_end -- carrying the SearchCounters deltas, the gauge's current
// bytes and the span's wall time -- on destruction.  Also the single hook
// point for the flight recorder's kLevelBegin/kLevelEnd events (payloads
// are the same deltas, deliberately timing-free).  With a null tracer and
// the recorder disabled, both ends cost two predicted branches: no
// snapshot, no clock read, no event.
class TraceLevelScope {
 public:
  TraceLevelScope(Tracer* tracer, int iteration, int level, const char* phase,
                  const SearchCounters& counters, const MemoryGauge& gauge)
      : tracer_(tracer) {
    recording_ = FlightRecorder::Global().enabled();
    if (tracer_ == nullptr && !recording_) return;
    counters_ = &counters;
    gauge_ = &gauge;
    iteration_ = iteration;
    level_ = level;
    phase_ = phase;
    snapshot_ = counters;
    if (recording_) {
      phase_code_ = ObsPhaseCode(phase);
      FlightRecorder::Global().Record(
          ObsKind::kLevelBegin, phase_code_, static_cast<uint32_t>(level),
          static_cast<uint64_t>(iteration));
    }
    if (tracer_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
      TraceLevelBegin begin;
      begin.iteration = iteration;
      begin.level = level;
      begin.phase = phase;
      tracer_->OnLevelBegin(begin);
    }
  }

  ~TraceLevelScope() {
    if (tracer_ == nullptr && !recording_) return;
    const uint64_t jcrs = counters_->jcrs_created - snapshot_.jcrs_created;
    const uint64_t pairs =
        counters_->pairs_examined - snapshot_.pairs_examined;
    const uint64_t plans = counters_->plans_costed - snapshot_.plans_costed;
    const uint64_t memo_bytes = gauge_->current_bytes();
    if (recording_) {
      FlightRecorder::Global().Record(ObsKind::kLevelEnd, phase_code_,
                                      static_cast<uint32_t>(level_), plans,
                                      pairs, memo_bytes, jcrs);
    }
    if (tracer_ != nullptr) {
      TraceLevelEnd end;
      end.iteration = iteration_;
      end.level = level_;
      end.phase = phase_;
      end.jcrs_created = jcrs;
      end.pairs_examined = pairs;
      end.plans_costed = plans;
      end.memo_bytes = memo_bytes;
      end.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
      tracer_->OnLevelEnd(end);
    }
  }

  TraceLevelScope(const TraceLevelScope&) = delete;
  TraceLevelScope& operator=(const TraceLevelScope&) = delete;

 private:
  Tracer* tracer_;
  bool recording_ = false;
  uint8_t phase_code_ = 0;
  const SearchCounters* counters_ = nullptr;
  const MemoryGauge* gauge_ = nullptr;
  int iteration_ = 0;
  int level_ = 0;
  const char* phase_ = "level";
  SearchCounters snapshot_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sdp

#endif  // SDPOPT_TRACE_OPTIMIZER_TRACE_H_
