#include "trace/trace_collector.h"

namespace sdp {

void TraceCollector::Record(Payload payload) {
  const double ts = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = thread_ordinals_.emplace(
      std::this_thread::get_id(), static_cast<int>(thread_ordinals_.size()));
  events_.push_back(Recorded{ts, it->second, std::move(payload)});
}

size_t TraceCollector::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  thread_ordinals_.clear();
}

}  // namespace sdp
