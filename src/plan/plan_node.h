#ifndef SDPOPT_PLAN_PLAN_NODE_H_
#define SDPOPT_PLAN_PLAN_NODE_H_

#include <stdint.h>

#include <string>
#include <vector>

#include "common/arena.h"
#include "common/rel_set.h"

namespace sdp {

// Physical operator kinds supported by the optimizer and the execution
// engine.  The set mirrors the PostgreSQL planner's core repertoire.
enum class PlanKind : uint8_t {
  kSeqScan,
  kIndexScan,      // Full scan through the index: ordered output.
  kNestLoop,       // Inner side rescanned per outer row (materialized).
  kIndexNestLoop,  // Inner side is a base relation probed via its index.
  kHashJoin,
  kMergeJoin,
  kSort,           // Order enforcer.
};

const char* PlanKindName(PlanKind kind);

// An immutable physical plan node, arena-allocated.  Children are owned by
// the same arena; whole plan forests are discarded wholesale at the end of
// an optimization (the PostgreSQL memory-context idiom).
//
// `ordering` is the join-column equivalence class the output is sorted on
// (-1 = no useful order).  Equivalence classes, not raw columns, are the
// right granularity: a merge join on R.a = S.b leaves the output ordered on
// the whole {R.a, S.b} class.
struct PlanNode {
  PlanKind kind = PlanKind::kSeqScan;
  // Owning PlanPool's id (0 = plain arena, never recycled).  Managed by
  // PlanPool; other code must not touch it.
  uint32_t pool_id = 0;
  int rel = -1;        // Scans / kIndexNestLoop inner: relation position.
  int edge = -1;       // Joins: index of the driving join-graph edge.
  int ordering = -1;   // Output order (equivalence class id), -1 = none.
  RelSet rels;         // Base relations covered by this subtree.
  double rows = 0;     // Estimated output cardinality.
  double cost = 0;     // Estimated total cost (arbitrary optimizer units).
  const PlanNode* outer = nullptr;
  const PlanNode* inner = nullptr;

  bool IsScan() const {
    return kind == PlanKind::kSeqScan || kind == PlanKind::kIndexScan;
  }
  bool IsJoin() const {
    return kind == PlanKind::kNestLoop || kind == PlanKind::kIndexNestLoop ||
           kind == PlanKind::kHashJoin || kind == PlanKind::kMergeJoin;
  }

  // Number of nodes in this subtree.
  int TreeSize() const;

  // Multi-line indented rendering (rows/cost per node).
  std::string ToString() const;

  // Single-line join-order rendering, e.g. "((R0 HJ R2) INL R1)".
  std::string Shape() const;
};

// Deep-copies a plan tree into `arena`.  Used by IDP to retain the winning
// subplan across iterations while releasing the iteration's working memory.
const PlanNode* ClonePlanTree(const PlanNode* node, Arena* arena);

// Pointer-free image of one plan node, suitable for crossing a process or
// file boundary.  `outer`/`inner` index into the flat vector (-1 = none);
// cardinality and cost are carried as raw IEEE-754 bit patterns so a
// round trip is byte-exact, never a decimal approximation.
struct PlanWireNode {
  uint8_t kind = 0;       // static_cast<uint8_t>(PlanKind).
  int32_t rel = -1;
  int32_t edge = -1;
  int32_t ordering = -1;
  uint64_t rels_bits = 0;
  uint64_t rows_bits = 0;  // bit_cast of PlanNode::rows.
  uint64_t cost_bits = 0;  // bit_cast of PlanNode::cost.
  int32_t outer = -1;
  int32_t inner = -1;
};

// Serializes the tree in preorder (root at index 0, children always at
// larger indices than their parent).  Appends to `*out`.
void FlattenPlanTree(const PlanNode* root, std::vector<PlanWireNode>* out);

// Rebuilds an arena-owned tree from a flat image.  Returns null when the
// image is malformed (out-of-range child indices, back references that
// would form a cycle, unknown plan kinds, non-finite negative costs) --
// untrusted snapshot and wire bytes go through here, so validation is a
// hard gate, not a DCHECK.
const PlanNode* UnflattenPlanTree(const std::vector<PlanWireNode>& nodes,
                                  Arena* arena);

// Structural validation: children partition `rels`, join inputs are
// disjoint, cardinalities/costs are finite and non-negative.  Returns an
// empty string when valid, else a description of the first violation.
std::string ValidatePlanTree(const PlanNode* node);

}  // namespace sdp

#endif  // SDPOPT_PLAN_PLAN_NODE_H_
