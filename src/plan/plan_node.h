#ifndef SDPOPT_PLAN_PLAN_NODE_H_
#define SDPOPT_PLAN_PLAN_NODE_H_

#include <stdint.h>

#include <string>

#include "common/arena.h"
#include "common/rel_set.h"

namespace sdp {

// Physical operator kinds supported by the optimizer and the execution
// engine.  The set mirrors the PostgreSQL planner's core repertoire.
enum class PlanKind : uint8_t {
  kSeqScan,
  kIndexScan,      // Full scan through the index: ordered output.
  kNestLoop,       // Inner side rescanned per outer row (materialized).
  kIndexNestLoop,  // Inner side is a base relation probed via its index.
  kHashJoin,
  kMergeJoin,
  kSort,           // Order enforcer.
};

const char* PlanKindName(PlanKind kind);

// An immutable physical plan node, arena-allocated.  Children are owned by
// the same arena; whole plan forests are discarded wholesale at the end of
// an optimization (the PostgreSQL memory-context idiom).
//
// `ordering` is the join-column equivalence class the output is sorted on
// (-1 = no useful order).  Equivalence classes, not raw columns, are the
// right granularity: a merge join on R.a = S.b leaves the output ordered on
// the whole {R.a, S.b} class.
struct PlanNode {
  PlanKind kind = PlanKind::kSeqScan;
  // Owning PlanPool's id (0 = plain arena, never recycled).  Managed by
  // PlanPool; other code must not touch it.
  uint32_t pool_id = 0;
  int rel = -1;        // Scans / kIndexNestLoop inner: relation position.
  int edge = -1;       // Joins: index of the driving join-graph edge.
  int ordering = -1;   // Output order (equivalence class id), -1 = none.
  RelSet rels;         // Base relations covered by this subtree.
  double rows = 0;     // Estimated output cardinality.
  double cost = 0;     // Estimated total cost (arbitrary optimizer units).
  const PlanNode* outer = nullptr;
  const PlanNode* inner = nullptr;

  bool IsScan() const {
    return kind == PlanKind::kSeqScan || kind == PlanKind::kIndexScan;
  }
  bool IsJoin() const {
    return kind == PlanKind::kNestLoop || kind == PlanKind::kIndexNestLoop ||
           kind == PlanKind::kHashJoin || kind == PlanKind::kMergeJoin;
  }

  // Number of nodes in this subtree.
  int TreeSize() const;

  // Multi-line indented rendering (rows/cost per node).
  std::string ToString() const;

  // Single-line join-order rendering, e.g. "((R0 HJ R2) INL R1)".
  std::string Shape() const;
};

// Deep-copies a plan tree into `arena`.  Used by IDP to retain the winning
// subplan across iterations while releasing the iteration's working memory.
const PlanNode* ClonePlanTree(const PlanNode* node, Arena* arena);

// Structural validation: children partition `rels`, join inputs are
// disjoint, cardinalities/costs are finite and non-negative.  Returns an
// empty string when valid, else a description of the first violation.
std::string ValidatePlanTree(const PlanNode* node);

}  // namespace sdp

#endif  // SDPOPT_PLAN_PLAN_NODE_H_
