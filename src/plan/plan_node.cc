#include "plan/plan_node.h"

#include <cmath>
#include <cstring>
#include <unordered_map>

#include "common/check.h"

namespace sdp {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kSeqScan:
      return "SeqScan";
    case PlanKind::kIndexScan:
      return "IndexScan";
    case PlanKind::kNestLoop:
      return "NestLoop";
    case PlanKind::kIndexNestLoop:
      return "IndexNestLoop";
    case PlanKind::kHashJoin:
      return "HashJoin";
    case PlanKind::kMergeJoin:
      return "MergeJoin";
    case PlanKind::kSort:
      return "Sort";
  }
  return "?";
}

int PlanNode::TreeSize() const {
  int n = 1;
  if (outer != nullptr) n += outer->TreeSize();
  if (inner != nullptr) n += inner->TreeSize();
  return n;
}

namespace {

void Render(const PlanNode* node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(PlanKindName(node->kind));
  if (node->IsScan() || node->kind == PlanKind::kIndexNestLoop) {
    out->append(" R" + std::to_string(node->rel));
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  (rows=%.0f cost=%.1f", node->rows,
                node->cost);
  out->append(buf);
  if (node->ordering >= 0) {
    out->append(" order=eq" + std::to_string(node->ordering));
  }
  out->append(")\n");
  if (node->outer != nullptr) Render(node->outer, depth + 1, out);
  if (node->inner != nullptr && node->kind != PlanKind::kIndexNestLoop) {
    Render(node->inner, depth + 1, out);
  }
}

const char* ShapeOp(PlanKind kind) {
  switch (kind) {
    case PlanKind::kNestLoop:
      return "NL";
    case PlanKind::kIndexNestLoop:
      return "INL";
    case PlanKind::kHashJoin:
      return "HJ";
    case PlanKind::kMergeJoin:
      return "MJ";
    default:
      return "?";
  }
}

}  // namespace

std::string PlanNode::ToString() const {
  std::string out;
  Render(this, 0, &out);
  return out;
}

std::string PlanNode::Shape() const {
  if (kind == PlanKind::kSort) {
    return "sort(" + outer->Shape() + ")";
  }
  if (IsScan()) {
    return "R" + std::to_string(rel);
  }
  if (kind == PlanKind::kIndexNestLoop) {
    return "(" + outer->Shape() + " INL R" + std::to_string(rel) + ")";
  }
  return "(" + outer->Shape() + " " + ShapeOp(kind) + " " + inner->Shape() +
         ")";
}

const PlanNode* ClonePlanTree(const PlanNode* node, Arena* arena) {
  if (node == nullptr) return nullptr;
  PlanNode* copy = arena->New<PlanNode>(*node);
  copy->pool_id = 0;  // Clones are arena-owned, never pool-recycled.
  copy->outer = ClonePlanTree(node->outer, arena);
  copy->inner = ClonePlanTree(node->inner, arena);
  return copy;
}

namespace {

std::string ValidateRec(const PlanNode* node) {
  if (node == nullptr) return "null plan node";
  if (!std::isfinite(node->rows) || node->rows < 0) {
    return "non-finite or negative rows";
  }
  if (!std::isfinite(node->cost) || node->cost < 0) {
    return "non-finite or negative cost";
  }
  switch (node->kind) {
    case PlanKind::kSeqScan:
    case PlanKind::kIndexScan:
      if (node->rel < 0) return "scan without relation";
      if (node->rels != RelSet::Single(node->rel)) {
        return "scan relset mismatch";
      }
      if (node->outer != nullptr || node->inner != nullptr) {
        return "scan with children";
      }
      return "";
    case PlanKind::kSort: {
      if (node->outer == nullptr || node->inner != nullptr) {
        return "sort must have exactly one child";
      }
      if (node->rels != node->outer->rels) return "sort relset mismatch";
      if (node->ordering < 0) return "sort without ordering";
      return ValidateRec(node->outer);
    }
    default: {
      if (!node->IsJoin()) return "unknown plan kind";
      if (node->outer == nullptr || node->inner == nullptr) {
        return "join missing child";
      }
      if (node->outer->rels.Overlaps(node->inner->rels)) {
        return "join inputs overlap";
      }
      if (node->rels != node->outer->rels.Union(node->inner->rels)) {
        return "join relset mismatch";
      }
      if (node->kind == PlanKind::kIndexNestLoop &&
          node->inner->kind != PlanKind::kIndexScan &&
          node->inner->kind != PlanKind::kSeqScan) {
        return "index nestloop inner must be a base relation scan";
      }
      std::string err = ValidateRec(node->outer);
      if (!err.empty()) return err;
      return ValidateRec(node->inner);
    }
  }
}

}  // namespace

std::string ValidatePlanTree(const PlanNode* node) { return ValidateRec(node); }

namespace {

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

int32_t FlattenRec(const PlanNode* node, std::vector<PlanWireNode>* out) {
  const int32_t index = static_cast<int32_t>(out->size());
  out->emplace_back();
  {
    PlanWireNode& wire = out->back();
    wire.kind = static_cast<uint8_t>(node->kind);
    wire.rel = node->rel;
    wire.edge = node->edge;
    wire.ordering = node->ordering;
    wire.rels_bits = node->rels.bits();
    wire.rows_bits = DoubleBits(node->rows);
    wire.cost_bits = DoubleBits(node->cost);
  }
  // Children are appended after the parent, so every child index is larger
  // than its parent's -- the invariant UnflattenPlanTree enforces.
  const int32_t outer =
      node->outer != nullptr ? FlattenRec(node->outer, out) : -1;
  const int32_t inner =
      node->inner != nullptr ? FlattenRec(node->inner, out) : -1;
  (*out)[static_cast<size_t>(index)].outer = outer;
  (*out)[static_cast<size_t>(index)].inner = inner;
  return index;
}

}  // namespace

void FlattenPlanTree(const PlanNode* root, std::vector<PlanWireNode>* out) {
  if (root == nullptr) return;
  FlattenRec(root, out);
}

const PlanNode* UnflattenPlanTree(const std::vector<PlanWireNode>& nodes,
                                  Arena* arena) {
  if (nodes.empty()) return nullptr;
  const int32_t n = static_cast<int32_t>(nodes.size());
  std::vector<PlanNode*> built(nodes.size(), nullptr);
  // Build back to front: preorder guarantees children live at larger
  // indices, so both children already exist when their parent is built.
  for (int32_t i = n - 1; i >= 0; --i) {
    const PlanWireNode& wire = nodes[static_cast<size_t>(i)];
    if (wire.kind > static_cast<uint8_t>(PlanKind::kSort)) return nullptr;
    // Forward-only child references rule out cycles and sharing.
    if (wire.outer != -1 && (wire.outer <= i || wire.outer >= n)) {
      return nullptr;
    }
    if (wire.inner != -1 && (wire.inner <= i || wire.inner >= n)) {
      return nullptr;
    }
    PlanNode* node = arena->New<PlanNode>();
    node->kind = static_cast<PlanKind>(wire.kind);
    node->rel = wire.rel;
    node->edge = wire.edge;
    node->ordering = wire.ordering;
    node->rels = RelSet(wire.rels_bits);
    node->rows = BitsDouble(wire.rows_bits);
    node->cost = BitsDouble(wire.cost_bits);
    node->outer = wire.outer >= 0 ? built[static_cast<size_t>(wire.outer)]
                                  : nullptr;
    node->inner = wire.inner >= 0 ? built[static_cast<size_t>(wire.inner)]
                                  : nullptr;
    built[static_cast<size_t>(i)] = node;
  }
  // Structural validation catches everything bit-level checks cannot
  // (overlapping join inputs, scans with children, NaN costs).
  if (!ValidatePlanTree(built[0]).empty()) return nullptr;
  return built[0];
}

}  // namespace sdp
