#include "plan/plan_node.h"

#include <cmath>
#include <unordered_map>

#include "common/check.h"

namespace sdp {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kSeqScan:
      return "SeqScan";
    case PlanKind::kIndexScan:
      return "IndexScan";
    case PlanKind::kNestLoop:
      return "NestLoop";
    case PlanKind::kIndexNestLoop:
      return "IndexNestLoop";
    case PlanKind::kHashJoin:
      return "HashJoin";
    case PlanKind::kMergeJoin:
      return "MergeJoin";
    case PlanKind::kSort:
      return "Sort";
  }
  return "?";
}

int PlanNode::TreeSize() const {
  int n = 1;
  if (outer != nullptr) n += outer->TreeSize();
  if (inner != nullptr) n += inner->TreeSize();
  return n;
}

namespace {

void Render(const PlanNode* node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(PlanKindName(node->kind));
  if (node->IsScan() || node->kind == PlanKind::kIndexNestLoop) {
    out->append(" R" + std::to_string(node->rel));
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  (rows=%.0f cost=%.1f", node->rows,
                node->cost);
  out->append(buf);
  if (node->ordering >= 0) {
    out->append(" order=eq" + std::to_string(node->ordering));
  }
  out->append(")\n");
  if (node->outer != nullptr) Render(node->outer, depth + 1, out);
  if (node->inner != nullptr && node->kind != PlanKind::kIndexNestLoop) {
    Render(node->inner, depth + 1, out);
  }
}

const char* ShapeOp(PlanKind kind) {
  switch (kind) {
    case PlanKind::kNestLoop:
      return "NL";
    case PlanKind::kIndexNestLoop:
      return "INL";
    case PlanKind::kHashJoin:
      return "HJ";
    case PlanKind::kMergeJoin:
      return "MJ";
    default:
      return "?";
  }
}

}  // namespace

std::string PlanNode::ToString() const {
  std::string out;
  Render(this, 0, &out);
  return out;
}

std::string PlanNode::Shape() const {
  if (kind == PlanKind::kSort) {
    return "sort(" + outer->Shape() + ")";
  }
  if (IsScan()) {
    return "R" + std::to_string(rel);
  }
  if (kind == PlanKind::kIndexNestLoop) {
    return "(" + outer->Shape() + " INL R" + std::to_string(rel) + ")";
  }
  return "(" + outer->Shape() + " " + ShapeOp(kind) + " " + inner->Shape() +
         ")";
}

const PlanNode* ClonePlanTree(const PlanNode* node, Arena* arena) {
  if (node == nullptr) return nullptr;
  PlanNode* copy = arena->New<PlanNode>(*node);
  copy->pool_id = 0;  // Clones are arena-owned, never pool-recycled.
  copy->outer = ClonePlanTree(node->outer, arena);
  copy->inner = ClonePlanTree(node->inner, arena);
  return copy;
}

namespace {

std::string ValidateRec(const PlanNode* node) {
  if (node == nullptr) return "null plan node";
  if (!std::isfinite(node->rows) || node->rows < 0) {
    return "non-finite or negative rows";
  }
  if (!std::isfinite(node->cost) || node->cost < 0) {
    return "non-finite or negative cost";
  }
  switch (node->kind) {
    case PlanKind::kSeqScan:
    case PlanKind::kIndexScan:
      if (node->rel < 0) return "scan without relation";
      if (node->rels != RelSet::Single(node->rel)) {
        return "scan relset mismatch";
      }
      if (node->outer != nullptr || node->inner != nullptr) {
        return "scan with children";
      }
      return "";
    case PlanKind::kSort: {
      if (node->outer == nullptr || node->inner != nullptr) {
        return "sort must have exactly one child";
      }
      if (node->rels != node->outer->rels) return "sort relset mismatch";
      if (node->ordering < 0) return "sort without ordering";
      return ValidateRec(node->outer);
    }
    default: {
      if (!node->IsJoin()) return "unknown plan kind";
      if (node->outer == nullptr || node->inner == nullptr) {
        return "join missing child";
      }
      if (node->outer->rels.Overlaps(node->inner->rels)) {
        return "join inputs overlap";
      }
      if (node->rels != node->outer->rels.Union(node->inner->rels)) {
        return "join relset mismatch";
      }
      if (node->kind == PlanKind::kIndexNestLoop &&
          node->inner->kind != PlanKind::kIndexScan &&
          node->inner->kind != PlanKind::kSeqScan) {
        return "index nestloop inner must be a base relation scan";
      }
      std::string err = ValidateRec(node->outer);
      if (!err.empty()) return err;
      return ValidateRec(node->inner);
    }
  }
}

}  // namespace

std::string ValidatePlanTree(const PlanNode* node) { return ValidateRec(node); }

}  // namespace sdp
