#ifndef SDPOPT_QUERY_TOPOLOGY_H_
#define SDPOPT_QUERY_TOPOLOGY_H_

#include <vector>

#include "catalog/catalog.h"
#include "query/join_graph.h"

namespace sdp {

// Join-graph topology families evaluated in the paper.
enum class Topology {
  kChain,
  kStar,
  kStarChain,
  kCycle,
  kClique,
  kSnowflake,
};

const char* TopologyName(Topology t);

// The builders below assign catalog tables (by id) to graph positions and
// wire equijoin edges following the paper's conventions:
//
//  * Star: position 0 is the hub; every spoke joins the hub on the spoke's
//    *indexed* column ("the join of the spoke relations with the hub
//    relations is on indexed columns").  The hub contributes a distinct
//    column per spoke.
//  * Chain: consecutive positions join; each relation joins its left
//    neighbor on its own indexed column.
//  * Star-Chain (Figure 1.1): positions 0..num_spokes form a star
//    (position 0 = hub, structurally R1 of the paper); the last spoke
//    (position num_spokes, the paper's R11) continues into a chain through
//    the remaining positions.
//  * Cycle: a chain plus a closing edge.
//  * Clique: every pair of relations joins.
//
// All builders are deterministic in their inputs.

JoinGraph MakeChainGraph(const Catalog& catalog,
                         const std::vector<int>& tables);

JoinGraph MakeStarGraph(const Catalog& catalog,
                        const std::vector<int>& tables);

// `num_spokes` counts the star's non-hub star relations; the remaining
// positions form the chain hanging off the last spoke.  The paper's
// Star-Chain-15 is num_spokes=10 with a 4-relation tail (R12..R15).
JoinGraph MakeStarChainGraph(const Catalog& catalog,
                             const std::vector<int>& tables, int num_spokes);

JoinGraph MakeCycleGraph(const Catalog& catalog,
                         const std::vector<int>& tables);

JoinGraph MakeCliqueGraph(const Catalog& catalog,
                          const std::vector<int>& tables);

// Snowflake: a star whose dimensions extend into chains (normalized
// dimensions).  Positions 1..num_spokes join the hub; remaining positions
// are appended round-robin as chain tails behind the spokes.
JoinGraph MakeSnowflakeGraph(const Catalog& catalog,
                             const std::vector<int>& tables, int num_spokes);

// Dispatch by topology; for kStarChain uses the paper's shape (a 5-relation
// chain tail including the shared spoke, i.e. num_spokes = n - 5 + 1).
JoinGraph MakeTopologyGraph(Topology topology, const Catalog& catalog,
                            const std::vector<int>& tables);

}  // namespace sdp

#endif  // SDPOPT_QUERY_TOPOLOGY_H_
