#include "query/graphviz.h"

#include <cstdio>

#include "catalog/catalog.h"

namespace sdp {

std::string JoinGraphToDot(const JoinGraph& graph, const Catalog* catalog,
                           const JoinGraphAnnotations* annotations) {
  std::string out = "graph join_graph {\n  node [shape=ellipse];\n";
  for (int r = 0; r < graph.num_relations(); ++r) {
    char buf[160];
    std::string label = "R" + std::to_string(r);
    if (catalog != nullptr) {
      const Table& t = catalog->table(graph.table_id(r));
      label += "\\n" + t.name + " (" + std::to_string(t.row_count) + ")";
    }
    bool hub;
    if (annotations != nullptr) {
      hub = false;
      for (int h : annotations->hub_relations) hub = hub || h == r;
      if (hub) label += "\\nhub (deg " + std::to_string(graph.Degree(r)) + ")";
    } else {
      hub = graph.Degree(r) >= 3;
    }
    std::snprintf(buf, sizeof(buf),
                  "  r%d [label=\"%s\"%s];\n", r, label.c_str(),
                  hub ? ", style=filled, fillcolor=lightcoral" : "");
    out += buf;
  }
  const std::vector<JoinEdge>& edges = graph.edges();
  for (size_t i = 0; i < edges.size(); ++i) {
    const JoinEdge& e = edges[i];
    char buf[160];
    if (annotations != nullptr && i < annotations->edge_selectivities.size()) {
      std::snprintf(buf, sizeof(buf),
                    "  r%d -- r%d [label=\"c%d=c%d\\nsel=%.2e\", fontsize=9];\n",
                    e.left.rel, e.right.rel, e.left.col + 1, e.right.col + 1,
                    annotations->edge_selectivities[i]);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "  r%d -- r%d [label=\"c%d=c%d\", fontsize=9];\n",
                    e.left.rel, e.right.rel, e.left.col + 1, e.right.col + 1);
    }
    out += buf;
  }
  out += "}\n";
  return out;
}

std::string JoinGraphToDot(const JoinGraph& graph, const Catalog* catalog) {
  return JoinGraphToDot(graph, catalog, nullptr);
}

namespace {

int RenderPlanNode(const PlanNode& node, int* next_id, std::string* out) {
  const int id = (*next_id)++;
  char buf[200];
  std::string label = PlanKindName(node.kind);
  if (node.IsScan() || node.kind == PlanKind::kIndexNestLoop) {
    label += " R" + std::to_string(node.rel);
  }
  std::snprintf(buf, sizeof(buf),
                "  n%d [shape=box, label=\"%s\\nrows=%.0f cost=%.1f\"];\n",
                id, label.c_str(), node.rows, node.cost);
  *out += buf;
  if (node.outer != nullptr) {
    const int child = RenderPlanNode(*node.outer, next_id, out);
    std::snprintf(buf, sizeof(buf), "  n%d -> n%d [label=\"outer\"];\n", id,
                  child);
    *out += buf;
  }
  if (node.inner != nullptr && node.kind != PlanKind::kIndexNestLoop) {
    const int child = RenderPlanNode(*node.inner, next_id, out);
    std::snprintf(buf, sizeof(buf), "  n%d -> n%d [label=\"inner\"];\n", id,
                  child);
    *out += buf;
  }
  return id;
}

}  // namespace

std::string PlanToDot(const PlanNode& plan) {
  std::string out = "digraph plan {\n";
  int next_id = 0;
  RenderPlanNode(plan, &next_id, &out);
  out += "}\n";
  return out;
}

}  // namespace sdp
