#include "query/topology.h"

#include <cmath>
#include <vector>

#include "common/check.h"

namespace sdp {

namespace {

int NumColumns(const Catalog& catalog, int table_id) {
  return static_cast<int>(catalog.table(table_id).columns.size());
}

int IndexedColumn(const Catalog& catalog, int table_id) {
  const int idx = catalog.table(table_id).indexed_column;
  SDP_CHECK(idx >= 0);
  return idx;
}

double DomainOf(const Catalog& catalog, int table_id, int col) {
  return static_cast<double>(catalog.table(table_id).columns[col].domain_size);
}

// Deterministic per-edge "reduction factor" g: the join column domain is
// targeted at (child rows * g), so the join keeps roughly 1/g of the parent
// side.  g is log-uniform over [1, 64] with a small chance of landing in
// [1/4, 1) (a mildly expanding, FK-like edge).  Keyed by the table pair so
// different instances see different factors.  This is what gives the
// workload its warehouse character: joins reduce gradually, keeping
// intermediate results large enough that every join-order decision has a
// cost consequence.
double EdgeReductionFactor(int left_table, int right_table) {
  uint64_t x = (static_cast<uint64_t>(left_table) << 32) ^
               static_cast<uint64_t>(right_table) * 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  const double u = static_cast<double>(x >> 11) * 0x1.0p-53;  // [0,1)
  if (u < 0.1) {
    // Expanding edge: g in [1/4, 1).
    return 0.25 * std::pow(4.0, u / 0.1);
  }
  // Reducing edge: g in [1, 64].
  return std::pow(64.0, (u - 0.1) / 0.9);
}

// Allocates join columns for one query graph.  Each (position, column) pair
// is used by at most one edge side -- distinct edges on distinct columns --
// so the generated topology carries no accidental shared join columns.
//
// PickNearUnused models realistic schema design: a join predicate only
// makes sense between domain-compatible columns, so the partner column is
// the unused column whose domain is closest (log scale) to the target.
// This is what keeps join selectivities FK-like (spoke joins preserve
// cardinality in expectation) instead of collapsing every intermediate to a
// handful of rows.
class ColumnPicker {
 public:
  ColumnPicker(const Catalog& catalog, const std::vector<int>& tables)
      : catalog_(&catalog), tables_(tables), used_(tables.size()) {
    for (size_t i = 0; i < tables.size(); ++i) {
      used_[i].assign(NumColumns(catalog, tables[i]), false);
    }
  }

  void MarkUsed(int pos, int col) {
    SDP_CHECK(!used_[pos][col]);
    used_[pos][col] = true;
  }

  bool IsUsed(int pos, int col) const { return used_[pos][col]; }

  // Unused column of position `pos` with domain closest to target_domain.
  int PickNearUnused(int pos, double target_domain) {
    const int table = tables_[pos];
    int best = -1;
    double best_dist = 0;
    for (int c = 0; c < NumColumns(*catalog_, table); ++c) {
      if (used_[pos][c]) continue;
      const double dist = std::fabs(std::log(DomainOf(*catalog_, table, c)) -
                                    std::log(target_domain));
      if (best < 0 || dist < best_dist) {
        best = c;
        best_dist = dist;
      }
    }
    SDP_CHECK(best >= 0);
    used_[pos][best] = true;
    return best;
  }

 private:
  const Catalog* catalog_;
  std::vector<int> tables_;
  std::vector<std::vector<bool>> used_;
};

// Chain edge convention: each relation joins its left neighbor on its own
// indexed column; the left neighbor contributes a domain-compatible unused
// column.
void AddChainEdges(const Catalog& catalog, JoinGraph* graph,
                   ColumnPicker* picker, int from_pos, int to_pos) {
  for (int i = from_pos; i < to_pos; ++i) {
    const int left_table = graph->table_id(i);
    const int right_table = graph->table_id(i + 1);
    const int right_col = IndexedColumn(catalog, right_table);
    if (!picker->IsUsed(i + 1, right_col)) picker->MarkUsed(i + 1, right_col);
    const double target =
        static_cast<double>(catalog.table(right_table).row_count) *
        EdgeReductionFactor(left_table, right_table);
    const int left_col = picker->PickNearUnused(i, target);
    graph->AddEdge(ColumnRef{i, left_col}, ColumnRef{i + 1, right_col});
  }
}

void AddStarEdges(const Catalog& catalog, JoinGraph* graph,
                  ColumnPicker* picker, int num_spokes) {
  const int hub_table = graph->table_id(0);
  SDP_CHECK(num_spokes < NumColumns(catalog, hub_table));
  const int hub_indexed = IndexedColumn(catalog, hub_table);
  for (int i = 1; i <= num_spokes; ++i) {
    // Every spoke joins on its own indexed column (paper Section 3.1).  The
    // hub has a single index, so exactly one spoke edge (the first) can be
    // index-supported on the hub side too; that edge lets good plans pivot
    // into the hub with an index nested loop instead of scanning it.
    const int spoke_table = graph->table_id(i);
    const int spoke_col = IndexedColumn(catalog, spoke_table);
    if (!picker->IsUsed(i, spoke_col)) picker->MarkUsed(i, spoke_col);
    int hub_col;
    if (i == 1) {
      hub_col = hub_indexed;
      picker->MarkUsed(0, hub_col);
    } else {
      const double target =
          static_cast<double>(catalog.table(spoke_table).row_count) *
          EdgeReductionFactor(hub_table, spoke_table);
      hub_col = picker->PickNearUnused(0, target);
    }
    graph->AddEdge(ColumnRef{0, hub_col}, ColumnRef{i, spoke_col});
  }
}

}  // namespace

const char* TopologyName(Topology t) {
  switch (t) {
    case Topology::kChain:
      return "Chain";
    case Topology::kStar:
      return "Star";
    case Topology::kStarChain:
      return "Star-Chain";
    case Topology::kCycle:
      return "Cycle";
    case Topology::kClique:
      return "Clique";
    case Topology::kSnowflake:
      return "Snowflake";
  }
  return "?";
}

JoinGraph MakeChainGraph(const Catalog& catalog,
                         const std::vector<int>& tables) {
  SDP_CHECK(tables.size() >= 2);
  JoinGraph graph(tables);
  ColumnPicker picker(catalog, tables);
  AddChainEdges(catalog, &graph, &picker, 0, graph.num_relations() - 1);
  return graph;
}

JoinGraph MakeStarGraph(const Catalog& catalog,
                        const std::vector<int>& tables) {
  SDP_CHECK(tables.size() >= 2);
  JoinGraph graph(tables);
  ColumnPicker picker(catalog, tables);
  AddStarEdges(catalog, &graph, &picker, graph.num_relations() - 1);
  return graph;
}

JoinGraph MakeStarChainGraph(const Catalog& catalog,
                             const std::vector<int>& tables, int num_spokes) {
  const int n = static_cast<int>(tables.size());
  SDP_CHECK(num_spokes >= 1 && num_spokes <= n - 1);
  JoinGraph graph(tables);
  ColumnPicker picker(catalog, tables);
  AddStarEdges(catalog, &graph, &picker, num_spokes);
  // The chain hangs off the last spoke (the paper's R11 -> R12 -> ...).
  AddChainEdges(catalog, &graph, &picker, num_spokes, n - 1);
  return graph;
}

JoinGraph MakeCycleGraph(const Catalog& catalog,
                         const std::vector<int>& tables) {
  SDP_CHECK(tables.size() >= 3);
  JoinGraph graph(tables);
  const int n = graph.num_relations();
  ColumnPicker picker(catalog, tables);
  AddChainEdges(catalog, &graph, &picker, 0, n - 1);
  // Closing edge on fresh, domain-compatible columns.
  const int first_col = picker.PickNearUnused(
      0, DomainOf(catalog, graph.table_id(n - 1),
                  IndexedColumn(catalog, graph.table_id(n - 1))));
  const int last_col = picker.PickNearUnused(
      n - 1, DomainOf(catalog, graph.table_id(0), first_col));
  graph.AddEdge(ColumnRef{n - 1, last_col}, ColumnRef{0, first_col});
  return graph;
}

JoinGraph MakeCliqueGraph(const Catalog& catalog,
                          const std::vector<int>& tables) {
  SDP_CHECK(tables.size() >= 2);
  JoinGraph graph(tables);
  const int n = graph.num_relations();
  ColumnPicker picker(catalog, tables);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      // Anchor on j's indexed column where available, else any unused one.
      const int ideal = IndexedColumn(catalog, graph.table_id(j));
      int cj;
      if (!picker.IsUsed(j, ideal)) {
        picker.MarkUsed(j, ideal);
        cj = ideal;
      } else {
        cj = picker.PickNearUnused(
            j, DomainOf(catalog, graph.table_id(j), ideal));
      }
      const int ci = picker.PickNearUnused(
          i, DomainOf(catalog, graph.table_id(j), cj));
      graph.AddEdge(ColumnRef{i, ci}, ColumnRef{j, cj});
    }
  }
  return graph;
}

JoinGraph MakeSnowflakeGraph(const Catalog& catalog,
                             const std::vector<int>& tables, int num_spokes) {
  const int n = static_cast<int>(tables.size());
  SDP_CHECK(num_spokes >= 1 && num_spokes <= n - 1);
  JoinGraph graph(tables);
  ColumnPicker picker(catalog, tables);
  AddStarEdges(catalog, &graph, &picker, num_spokes);
  // Distribute the remaining relations round-robin as chain hops behind the
  // spokes: spoke s grows the chain s -> num_spokes+s -> 2*num_spokes+s ...
  for (int pos = num_spokes + 1; pos < n; ++pos) {
    const int parent = pos - num_spokes;
    const int right_table = graph.table_id(pos);
    const int right_col = IndexedColumn(catalog, right_table);
    if (!picker.IsUsed(pos, right_col)) picker.MarkUsed(pos, right_col);
    const double target =
        static_cast<double>(catalog.table(right_table).row_count) *
        EdgeReductionFactor(graph.table_id(parent), right_table);
    const int left_col = picker.PickNearUnused(parent, target);
    graph.AddEdge(ColumnRef{parent, left_col}, ColumnRef{pos, right_col});
  }
  return graph;
}

JoinGraph MakeTopologyGraph(Topology topology, const Catalog& catalog,
                            const std::vector<int>& tables) {
  switch (topology) {
    case Topology::kChain:
      return MakeChainGraph(catalog, tables);
    case Topology::kStar:
      return MakeStarGraph(catalog, tables);
    case Topology::kStarChain: {
      // Paper shape: a 5-relation chain component sharing its first element
      // with the star (Star-Chain-15 = hub + spokes R2..R11 + tail
      // R12..R15, i.e. num_spokes = n - 4 - 1).
      const int n = static_cast<int>(tables.size());
      const int tail = 4;
      SDP_CHECK(n > tail + 1);
      return MakeStarChainGraph(catalog, tables, n - tail - 1);
    }
    case Topology::kCycle:
      return MakeCycleGraph(catalog, tables);
    case Topology::kClique:
      return MakeCliqueGraph(catalog, tables);
    case Topology::kSnowflake: {
      // Half the relations are first-level dimensions, the rest snowflake
      // out behind them.
      const int n = static_cast<int>(tables.size());
      return MakeSnowflakeGraph(catalog, tables, std::max(1, (n - 1) / 2));
    }
  }
  SDP_CHECK(false);
  return JoinGraph({0});
}

}  // namespace sdp
