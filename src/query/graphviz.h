#ifndef SDPOPT_QUERY_GRAPHVIZ_H_
#define SDPOPT_QUERY_GRAPHVIZ_H_

#include <string>

#include "catalog/catalog.h"
#include "plan/plan_node.h"
#include "query/join_graph.h"

namespace sdp {

// GraphViz (DOT) renderings for documentation and debugging.

// The join graph as an undirected graph; hub relations (degree >= 3) are
// highlighted.  Node labels show the bound table and row count when a
// catalog is supplied (may be null).
std::string JoinGraphToDot(const JoinGraph& graph, const Catalog* catalog);

// A physical plan tree as a digraph; each node shows operator, estimated
// rows and cumulative cost.
std::string PlanToDot(const PlanNode& plan);

}  // namespace sdp

#endif  // SDPOPT_QUERY_GRAPHVIZ_H_
