#ifndef SDPOPT_QUERY_GRAPHVIZ_H_
#define SDPOPT_QUERY_GRAPHVIZ_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "plan/plan_node.h"
#include "query/join_graph.h"

namespace sdp {

// GraphViz (DOT) renderings for documentation and debugging.

// Search-space annotations overlaid on a join-graph rendering, typically
// reconstructed from an optimizer trace (see trace/trace_export.h).  Hub
// membership comes from the traced run (respecting its hub_degree) instead
// of the default degree>=3 heuristic, and edges are labeled with the
// estimated selectivities the optimizer actually used.
struct JoinGraphAnnotations {
  int hub_degree = 3;
  std::vector<int> hub_relations;
  // Parallel to graph.edges(); empty = no selectivity labels.
  std::vector<double> edge_selectivities;
};

// The join graph as an undirected graph; hub relations (degree >= 3) are
// highlighted.  Node labels show the bound table and row count when a
// catalog is supplied (may be null).  When `annotations` is non-null, hubs
// are taken from the annotation set and edges carry selectivity labels.
std::string JoinGraphToDot(const JoinGraph& graph, const Catalog* catalog,
                           const JoinGraphAnnotations* annotations);
std::string JoinGraphToDot(const JoinGraph& graph, const Catalog* catalog);

// A physical plan tree as a digraph; each node shows operator, estimated
// rows and cumulative cost.
std::string PlanToDot(const PlanNode& plan);

}  // namespace sdp

#endif  // SDPOPT_QUERY_GRAPHVIZ_H_
