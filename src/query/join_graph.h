#ifndef SDPOPT_QUERY_JOIN_GRAPH_H_
#define SDPOPT_QUERY_JOIN_GRAPH_H_

#include <optional>
#include <string>
#include <vector>

#include "common/rel_set.h"

namespace sdp {

// A column of a relation *position* in a join graph (not a catalog table id:
// the same catalog table may appear at several positions across queries).
struct ColumnRef {
  int rel = -1;
  int col = -1;

  bool operator==(const ColumnRef&) const = default;
};

// One equijoin predicate left.col = right.col.
struct JoinEdge {
  ColumnRef left;
  ColumnRef right;

  // The side of the edge within `rel`, or nullopt.
  std::optional<ColumnRef> SideFor(int rel) const {
    if (left.rel == rel) return left;
    if (right.rel == rel) return right;
    return std::nullopt;
  }
};

// The query's join graph: relations at positions 0..n-1 (each bound to a
// catalog table id) plus equijoin edges.  Tracks:
//
//  * adjacency bitsets for connectivity tests,
//  * equivalence classes of join columns ("shared join columns"): columns
//    transitively equated by the predicates.  `AddImpliedEdges()` closes the
//    edge set over these classes, as the PostgreSQL rewriter does -- the
//    paper notes this closure can create new hubs that SDP exploits,
//  * relation degrees, which define hub relations (degree >= 3).
class JoinGraph {
 public:
  // An empty (zero-relation) graph; a placeholder until a real graph is
  // bound (e.g. service requests whose SQL is parsed on the worker).
  JoinGraph() = default;

  explicit JoinGraph(std::vector<int> table_ids);

  int num_relations() const { return static_cast<int>(table_ids_.size()); }
  int table_id(int rel) const { return table_ids_.at(rel); }
  const std::vector<int>& table_ids() const { return table_ids_; }

  RelSet AllRelations() const { return RelSet::FirstN(num_relations()); }

  // Adds an equijoin edge; both endpoints must be valid positions.
  // Duplicate edges (same column pair) are ignored.
  void AddEdge(ColumnRef a, ColumnRef b);

  // Adds every edge implied by transitivity of column equality: if r1.a=r2.b
  // and r2.b=r3.c then r1.a=r3.c.  Idempotent.
  void AddImpliedEdges();

  const std::vector<JoinEdge>& edges() const { return edges_; }

  // Relations adjacent to `rel`.
  RelSet Adjacency(int rel) const { return adjacency_.at(rel); }

  // Number of distinct relations joined with `rel` -- the paper's hub
  // criterion is Degree(rel) >= 3.
  int Degree(int rel) const { return adjacency_.at(rel).Count(); }

  // Relations outside `s` adjacent to at least one member of `s`.
  RelSet Neighbors(RelSet s) const;

  // True when the subgraph induced by `s` is connected (singletons count).
  bool IsConnected(RelSet s) const;

  // True when some edge connects a member of `a` with a member of `b`.
  bool AreAdjacent(RelSet a, RelSet b) const;

  // Indices (into edges()) of edges with one endpoint in `a`, other in `b`.
  std::vector<int> ConnectingEdges(RelSet a, RelSet b) const;

  // As ConnectingEdges, but appends into a caller-provided scratch buffer
  // (cleared first) instead of allocating, and walks only the edges
  // incident to the smaller side instead of scanning every edge.  The
  // result order is identical: increasing edge index.
  void ConnectingEdgesInto(RelSet a, RelSet b, std::vector<int>* out) const;

  // Both endpoints of edge `e` as a two-bit RelSet (precomputed).
  RelSet EdgeEndpoints(int e) const { return edge_endpoints_.at(e); }

  // Indices of edges with both endpoints inside `s`.
  std::vector<int> InternalEdges(RelSet s) const;

  // Join-column equivalence classes.  Returns the class id of a column, or
  // -1 if the column participates in no join predicate.
  int EquivClass(ColumnRef c) const;
  int num_equiv_classes() const {
    return static_cast<int>(equiv_members_.size());
  }
  // Members of an equivalence class.
  const std::vector<ColumnRef>& EquivClassMembers(int eq) const {
    return equiv_members_.at(eq);
  }
  // Relations contributing a column to the class.
  RelSet EquivClassRels(int eq) const;

  std::string ToString() const;

 private:
  bool HasEdgeBetween(ColumnRef a, ColumnRef b) const;
  void RebuildEquivClasses();

  std::vector<int> table_ids_;
  std::vector<JoinEdge> edges_;
  std::vector<RelSet> adjacency_;
  // Per-edge two-bit endpoint mask, parallel to edges_.
  std::vector<RelSet> edge_endpoints_;
  // Per-relation list of incident edge indices, in increasing edge order.
  std::vector<std::vector<int>> incident_edges_;
  // equiv_class_of_[rel] maps column -> class id (lazily sized).
  std::vector<std::vector<int>> equiv_class_of_;
  std::vector<std::vector<ColumnRef>> equiv_members_;
};

// The required output order of a query, if any: ORDER BY column.  The paper
// considers single-column orders on join columns.
struct OrderRequirement {
  ColumnRef column;
};

// Comparison operators supported by single-table filter predicates.
enum class CompareOp : uint8_t {
  kEq,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* CompareOpName(CompareOp op);
bool EvalCompare(int64_t lhs, CompareOp op, int64_t rhs);

// A single-table restriction `column op value`, applied at scan time.
struct FilterPredicate {
  ColumnRef column;
  CompareOp op = CompareOp::kEq;
  int64_t value = 0;
};

// A join query: graph, optional ORDER BY, scan-time filters.
struct Query {
  JoinGraph graph;
  std::optional<OrderRequirement> order_by;
  std::vector<FilterPredicate> filters;
};

}  // namespace sdp

#endif  // SDPOPT_QUERY_JOIN_GRAPH_H_
