#include "query/join_graph.h"

#include <algorithm>

#include "common/check.h"

namespace sdp {

JoinGraph::JoinGraph(std::vector<int> table_ids)
    : table_ids_(std::move(table_ids)) {
  SDP_CHECK(!table_ids_.empty());
  SDP_CHECK(static_cast<int>(table_ids_.size()) <= RelSet::kMaxRelations);
  adjacency_.resize(table_ids_.size());
  incident_edges_.resize(table_ids_.size());
  equiv_class_of_.resize(table_ids_.size());
}

bool JoinGraph::HasEdgeBetween(ColumnRef a, ColumnRef b) const {
  for (const JoinEdge& e : edges_) {
    if ((e.left == a && e.right == b) || (e.left == b && e.right == a)) {
      return true;
    }
  }
  return false;
}

void JoinGraph::AddEdge(ColumnRef a, ColumnRef b) {
  SDP_CHECK(a.rel >= 0 && a.rel < num_relations());
  SDP_CHECK(b.rel >= 0 && b.rel < num_relations());
  SDP_CHECK(a.rel != b.rel);
  SDP_CHECK(a.col >= 0 && b.col >= 0);
  if (HasEdgeBetween(a, b)) return;
  const int e = static_cast<int>(edges_.size());
  edges_.push_back(JoinEdge{a, b});
  adjacency_[a.rel] = adjacency_[a.rel].With(b.rel);
  adjacency_[b.rel] = adjacency_[b.rel].With(a.rel);
  edge_endpoints_.push_back(RelSet::Single(a.rel).With(b.rel));
  incident_edges_[a.rel].push_back(e);
  incident_edges_[b.rel].push_back(e);
  RebuildEquivClasses();
}

void JoinGraph::RebuildEquivClasses() {
  // Union-find over the (rel, col) endpoints of all edges.
  struct Node {
    ColumnRef ref;
    int parent;
  };
  std::vector<Node> nodes;
  auto find_node = [&](ColumnRef c) -> int {
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].ref == c) return static_cast<int>(i);
    }
    nodes.push_back(Node{c, static_cast<int>(nodes.size())});
    return static_cast<int>(nodes.size()) - 1;
  };
  auto root = [&](int i) {
    while (nodes[i].parent != i) {
      nodes[i].parent = nodes[nodes[i].parent].parent;
      i = nodes[i].parent;
    }
    return i;
  };
  for (const JoinEdge& e : edges_) {
    int a = find_node(e.left);
    int b = find_node(e.right);
    nodes[root(a)].parent = root(b);
  }
  // Assign dense class ids.
  equiv_members_.clear();
  std::vector<int> class_of_root(nodes.size(), -1);
  for (auto& per_rel : equiv_class_of_) {
    std::fill(per_rel.begin(), per_rel.end(), -1);
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    int r = root(static_cast<int>(i));
    if (class_of_root[r] == -1) {
      class_of_root[r] = static_cast<int>(equiv_members_.size());
      equiv_members_.emplace_back();
    }
    int cls = class_of_root[r];
    const ColumnRef& ref = nodes[i].ref;
    auto& per_rel = equiv_class_of_[ref.rel];
    if (static_cast<int>(per_rel.size()) <= ref.col) {
      per_rel.resize(ref.col + 1, -1);
    }
    per_rel[ref.col] = cls;
    equiv_members_[cls].push_back(ref);
  }
}

void JoinGraph::AddImpliedEdges() {
  // For each equivalence class, connect every pair of member columns from
  // distinct relations.  AddEdge ignores duplicates and rebuilds classes,
  // so we iterate to a fixed point (one pass suffices because classes only
  // merge when new column pairs are equated, which closure does not do).
  const int classes = num_equiv_classes();
  for (int eq = 0; eq < classes; ++eq) {
    // Copy: AddEdge invalidates equiv_members_.
    const std::vector<ColumnRef> members = equiv_members_[eq];
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (members[i].rel != members[j].rel) {
          AddEdge(members[i], members[j]);
        }
      }
    }
  }
}

RelSet JoinGraph::Neighbors(RelSet s) const {
  RelSet out;
  s.ForEach([&](int rel) { out = out.Union(adjacency_[rel]); });
  return out.Subtract(s);
}

bool JoinGraph::IsConnected(RelSet s) const {
  if (s.Empty()) return false;
  RelSet visited = RelSet::Single(s.Lowest());
  for (;;) {
    RelSet frontier = Neighbors(visited).Intersect(s);
    if (frontier.Empty()) break;
    visited = visited.Union(frontier);
  }
  return visited == s;
}

bool JoinGraph::AreAdjacent(RelSet a, RelSet b) const {
  SDP_DCHECK(!a.Overlaps(b));
  return Neighbors(a).Overlaps(b);
}

std::vector<int> JoinGraph::ConnectingEdges(RelSet a, RelSet b) const {
  std::vector<int> out;
  ConnectingEdgesInto(a, b, &out);
  return out;
}

void JoinGraph::ConnectingEdgesInto(RelSet a, RelSet b,
                                    std::vector<int>* out) const {
  out->clear();
  // Walk the smaller side's incident-edge lists instead of every edge.  An
  // edge qualifies when its two endpoints are split across the sides; it is
  // found exactly once (its other endpoint lies outside the walked side).
  const RelSet walk = a.Count() <= b.Count() ? a : b;
  const RelSet other = a.Count() <= b.Count() ? b : a;
  walk.ForEach([&](int rel) {
    for (int e : incident_edges_[rel]) {
      if (edge_endpoints_[e].Overlaps(other)) out->push_back(e);
    }
  });
  // Per-relation lists are sorted but interleave across relations; restore
  // the global increasing-edge-index order callers rely on.
  std::sort(out->begin(), out->end());
}

std::vector<int> JoinGraph::InternalEdges(RelSet s) const {
  std::vector<int> out;
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (s.Contains(edges_[i].left.rel) && s.Contains(edges_[i].right.rel)) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

int JoinGraph::EquivClass(ColumnRef c) const {
  if (c.rel < 0 || c.rel >= num_relations()) return -1;
  const auto& per_rel = equiv_class_of_[c.rel];
  if (c.col < 0 || c.col >= static_cast<int>(per_rel.size())) return -1;
  return per_rel[c.col];
}

RelSet JoinGraph::EquivClassRels(int eq) const {
  RelSet out;
  for (const ColumnRef& c : equiv_members_.at(eq)) {
    out = out.With(c.rel);
  }
  return out;
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCompare(int64_t lhs, CompareOp op, int64_t rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

std::string JoinGraph::ToString() const {
  std::string out = "JoinGraph(" + std::to_string(num_relations()) + " rels";
  for (const JoinEdge& e : edges_) {
    out += ", R" + std::to_string(e.left.rel) + ".c" +
           std::to_string(e.left.col) + "=R" + std::to_string(e.right.rel) +
           ".c" + std::to_string(e.right.col);
  }
  out += ")";
  return out;
}

}  // namespace sdp
