#include "metrics/quality.h"

#include "common/check.h"
#include "common/math_util.h"

namespace sdp {

QualityClass ClassifyRatio(double ratio) {
  if (ratio <= 1.01) return QualityClass::kIdeal;
  if (ratio <= 2.0) return QualityClass::kGood;
  if (ratio <= 10.0) return QualityClass::kAcceptable;
  return QualityClass::kBad;
}

const char* QualityClassName(QualityClass c) {
  switch (c) {
    case QualityClass::kIdeal:
      return "Ideal";
    case QualityClass::kGood:
      return "Good";
    case QualityClass::kAcceptable:
      return "Acceptable";
    case QualityClass::kBad:
      return "Bad";
  }
  return "?";
}

void QualityDistribution::Add(double ratio) {
  SDP_CHECK(ratio > 0);
  ++counts[static_cast<int>(ClassifyRatio(ratio))];
  ++total;
  if (ratio > worst) worst = ratio;
  ratios.push_back(ratio);
}

double QualityDistribution::Percent(QualityClass c) const {
  if (total == 0) return 0;
  return 100.0 * counts[static_cast<int>(c)] / total;
}

double QualityDistribution::Rho() const { return GeometricMean(ratios); }

}  // namespace sdp
