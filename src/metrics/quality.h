#ifndef SDPOPT_METRICS_QUALITY_H_
#define SDPOPT_METRICS_QUALITY_H_

#include <string>
#include <vector>

namespace sdp {

// The paper's plan-quality classification of a plan-cost ratio relative to
// the reference (DP-optimal) plan:
//   Ideal      <= 1.01   (identical to DP or within 1%)
//   Good       <= 2
//   Acceptable <= 10
//   Bad        >  10
enum class QualityClass {
  kIdeal = 0,
  kGood = 1,
  kAcceptable = 2,
  kBad = 3,
};

QualityClass ClassifyRatio(double ratio);
const char* QualityClassName(QualityClass c);

// Aggregated plan quality over a set of queries: per-class percentages,
// worst-case ratio W, and the overall factor rho (geometric mean of
// ratios).
struct QualityDistribution {
  int counts[4] = {0, 0, 0, 0};
  int total = 0;
  double worst = 0;
  std::vector<double> ratios;

  void Add(double ratio);
  double Percent(QualityClass c) const;
  double Rho() const;
};

}  // namespace sdp

#endif  // SDPOPT_METRICS_QUALITY_H_
