#ifndef SDPOPT_OBS_INTROSPECTION_H_
#define SDPOPT_OBS_INTROSPECTION_H_

#include <memory>
#include <string>

#include "obs/http_server.h"

namespace sdp {

class OptimizerService;

// Live introspection endpoints for a running OptimizerService, served by
// the dependency-free HttpServer on its own thread:
//
//   /                 index of endpoints
//   /metrics          ServiceMetrics::PrometheusText (Prometheus 0.0.4)
//   /statusz          build SHA, uptime, config, per-rung breaker states,
//                     admission/shed counters, byte gauges
//   /tracez           last-K completed request timelines reconstructed
//                     from flight-recorder snapshots; ?status=NAME filters
//                     (OK, DEADLINE_EXCEEDED, ...), ?limit=K bounds K
//   /flightrecorderz  on-demand full flight-recorder dump (JSONL, with
//                     timing); ?trace=HEX filters to one distributed
//                     trace and ?structural=1 switches to the
//                     deterministic structural rendering (no seq/ts/
//                     thread) the fleet router's span collector consumes
//
// All render functions are also exposed directly so tests can exercise
// them without a socket.

// The build stamp compiled into the library (SDP_GIT_SHA / SDP_GIT_DIRTY
// CMake definitions); "unknown" when built outside git.
std::string BuildGitSha();
bool BuildGitDirty();

// Machine context for self-describing benchmark reports: online core
// count and the cpufreq scaling governor ("unknown" where sysfs has no
// cpufreq, e.g. most VMs).  Single-core / powersave baselines then carry
// their own explanation instead of a footnote.
int MachineCores();
std::string MachineGovernor();

std::string RenderStatusz(const OptimizerService& service,
                          double uptime_seconds);
// `status_filter` empty = all statuses; matches OptStatusCodeName values.
std::string RenderTracez(const std::string& status_filter, size_t limit);
// `trace_id` 0 = all events; `structural` selects the deterministic
// structural rendering (see ObsExportOptions::structural).
std::string RenderFlightRecorderz(uint64_t trace_id = 0,
                                  bool structural = false);
// /profilez body.  If the sampling profiler is already running (e.g.
// started by --profile-hz) the accumulated samples are snapshotted
// without disturbing it; otherwise a one-shot capture runs for
// `seconds` (clamped to [0.05, 30]) at `hz` before rendering.  `format`
// is "folded" (flamegraph.pl collapsed stacks, the default) or "json".
std::string RenderProfilez(double seconds, const std::string& format,
                           int hz = 199);

class IntrospectionServer {
 public:
  // `service` must outlive the server.
  explicit IntrospectionServer(const OptimizerService* service);
  ~IntrospectionServer();

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

  // Starts serving on 127.0.0.1:`port` (0 = kernel-assigned).
  bool Start(int port, std::string* error = nullptr);
  void Stop();
  int port() const { return http_.port(); }

  // The routing logic, exposed for socketless endpoint tests.
  HttpResponse Handle(const HttpRequest& request) const;

 private:
  const OptimizerService* service_;
  double start_seconds_ = 0;
  HttpServer http_;
};

}  // namespace sdp

#endif  // SDPOPT_OBS_INTROSPECTION_H_
