#include "obs/flight_recorder.h"

#include <string.h>

#include <algorithm>
#include <chrono>

#include "obs/dtrace.h"

namespace sdp {

namespace {

// The request id attributed to events recorded on this thread (see
// FlightRecorder::ScopedRequest).
thread_local uint64_t tls_request_id = 0;

}  // namespace

thread_local FlightRecorder::Ring* FlightRecorder::tls_ring_ = nullptr;

const char* ObsKindName(ObsKind kind) {
  switch (kind) {
    case ObsKind::kNone:
      return "none";
    case ObsKind::kRequestBegin:
      return "request_begin";
    case ObsKind::kRequestEnd:
      return "request_end";
    case ObsKind::kAdmissionWait:
      return "admission_wait";
    case ObsKind::kShed:
      return "shed";
    case ObsKind::kLevelBegin:
      return "level_begin";
    case ObsKind::kLevelEnd:
      return "level_end";
    case ObsKind::kRungAttempt:
      return "rung_attempt";
    case ObsKind::kRungSkip:
      return "rung_skip";
    case ObsKind::kRungResolved:
      return "rung_resolved";
    case ObsKind::kBreakerOpen:
      return "breaker_open";
    case ObsKind::kBreakerClose:
      return "breaker_close";
    case ObsKind::kBudgetTrip:
      return "budget_trip";
    case ObsKind::kCacheHit:
      return "cache_hit";
    case ObsKind::kCacheMiss:
      return "cache_miss";
    case ObsKind::kCacheFill:
      return "cache_fill";
    case ObsKind::kCacheAbandon:
      return "cache_abandon";
    case ObsKind::kCacheFailPropagated:
      return "cache_fail_propagated";
    case ObsKind::kParallelLevel:
      return "parallel_level";
    case ObsKind::kFaultFired:
      return "fault_fired";
    case ObsKind::kRouteBegin:
      return "route_begin";
    case ObsKind::kRouteAttempt:
      return "route_attempt";
    case ObsKind::kRouteFailover:
      return "route_failover";
    case ObsKind::kRouteEnd:
      return "route_end";
    case ObsKind::kBroadcastFill:
      return "broadcast_fill";
    case ObsKind::kBroadcastInstall:
      return "broadcast_install";
    case ObsKind::kHealthProbe:
      return "health_probe";
    case ObsKind::kSloBurn:
      return "slo_burn";
    case ObsKind::kReplicaExit:
      return "replica_exit";
    case ObsKind::kReplicaRespawn:
      return "replica_respawn";
    case ObsKind::kReplicaCondemn:
      return "replica_condemn";
    case ObsKind::kPoisonStrike:
      return "poison_strike";
    case ObsKind::kQuarantineServe:
      return "quarantine_serve";
    case ObsKind::kRetryShed:
      return "retry_shed";
  }
  return "unknown";
}

const char* ObsPhaseName(uint8_t phase) {
  switch (static_cast<ObsPhase>(phase)) {
    case ObsPhase::kUnknown:
      return "unknown";
    case ObsPhase::kLeaves:
      return "leaves";
    case ObsPhase::kLevel:
      return "level";
    case ObsPhase::kBalloon:
      return "balloon";
    case ObsPhase::kGreedy:
      return "greedy";
    case ObsPhase::kEnumerate:
      return "enumerate";
  }
  return "unknown";
}

uint8_t ObsPhaseCode(const char* phase) {
  if (phase == nullptr) return 0;
  if (strcmp(phase, "leaves") == 0) {
    return static_cast<uint8_t>(ObsPhase::kLeaves);
  }
  if (strcmp(phase, "level") == 0) {
    return static_cast<uint8_t>(ObsPhase::kLevel);
  }
  if (strcmp(phase, "balloon") == 0) {
    return static_cast<uint8_t>(ObsPhase::kBalloon);
  }
  if (strcmp(phase, "greedy") == 0) {
    return static_cast<uint8_t>(ObsPhase::kGreedy);
  }
  if (strcmp(phase, "enumerate") == 0) {
    return static_cast<uint8_t>(ObsPhase::kEnumerate);
  }
  return 0;
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::FlightRecorder() {
  epoch_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count(),
                  std::memory_order_relaxed);
}

uint64_t FlightRecorder::NowNs() const {
  const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
  const int64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  return now > epoch ? static_cast<uint64_t>(now - epoch) : 0;
}

FlightRecorder::Ring* FlightRecorder::ThisThreadRing() {
  Ring* ring = tls_ring_;
  if (ring != nullptr) return ring;
  auto owned = std::make_unique<Ring>();
  owned->words = std::make_unique<std::atomic<uint64_t>[]>(
      kRingEvents * kWordsPerEvent);
  for (uint64_t i = 0; i < kRingEvents * kWordsPerEvent; ++i) {
    owned->words[i].store(0, std::memory_order_relaxed);
  }
  ring = owned.get();
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    ring->ordinal = static_cast<uint16_t>(rings_.size());
    rings_.push_back(std::move(owned));
  }
  tls_ring_ = ring;
  return ring;
}

void FlightRecorder::RecordSlow(ObsKind kind, uint8_t code, uint32_t a,
                                uint64_t b, uint64_t c, uint64_t d,
                                uint64_t e) {
  Ring* ring = ThisThreadRing();
  const uint64_t packed = static_cast<uint64_t>(kind) |
                          static_cast<uint64_t>(code) << 8 |
                          static_cast<uint64_t>(ring->ordinal) << 16 |
                          static_cast<uint64_t>(a) << 32;
  const uint64_t h = ring->head.load(std::memory_order_relaxed);
  std::atomic<uint64_t>* w =
      ring->words.get() + (h & (kRingEvents - 1)) * kWordsPerEvent;
  w[0].store(seq_.fetch_add(1, std::memory_order_relaxed),
             std::memory_order_relaxed);
  w[1].store(NowNs(), std::memory_order_relaxed);
  w[2].store(tls_request_id, std::memory_order_relaxed);
  w[3].store(packed, std::memory_order_relaxed);
  w[4].store(b, std::memory_order_relaxed);
  w[5].store(c, std::memory_order_relaxed);
  w[6].store(d, std::memory_order_relaxed);
  w[7].store(e, std::memory_order_relaxed);
  const TraceContext ctx = CurrentTraceContext();
  w[8].store(ctx.trace_id, std::memory_order_relaxed);
  w[9].store(ctx.span_id, std::memory_order_relaxed);
  // The release publishes the slot's words to snapshotting threads.
  ring->head.store(h + 1, std::memory_order_release);
}

FlightRecorder::ScopedRequest::ScopedRequest(uint64_t request_id)
    : prev_(tls_request_id) {
  tls_request_id = request_id;
}

FlightRecorder::ScopedRequest::~ScopedRequest() { tls_request_id = prev_; }

ObsSnapshot FlightRecorder::Snapshot() const {
  ObsSnapshot snap;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    const uint64_t h1 = ring->head.load(std::memory_order_acquire);
    const uint64_t begin = h1 > kRingEvents ? h1 - kRingEvents : 0;
    snap.dropped += begin;
    std::vector<ObsEvent> local;
    local.reserve(h1 - begin);
    for (uint64_t i = begin; i < h1; ++i) {
      const std::atomic<uint64_t>* w =
          ring->words.get() + (i & (kRingEvents - 1)) * kWordsPerEvent;
      ObsEvent ev;
      ev.seq = w[0].load(std::memory_order_relaxed);
      ev.ts_ns = w[1].load(std::memory_order_relaxed);
      ev.request_id = w[2].load(std::memory_order_relaxed);
      const uint64_t packed = w[3].load(std::memory_order_relaxed);
      ev.kind = static_cast<uint8_t>(packed & 0xff);
      ev.code = static_cast<uint8_t>((packed >> 8) & 0xff);
      ev.thread = static_cast<uint16_t>((packed >> 16) & 0xffff);
      ev.a = static_cast<uint32_t>(packed >> 32);
      ev.b = w[4].load(std::memory_order_relaxed);
      ev.c = w[5].load(std::memory_order_relaxed);
      ev.d = w[6].load(std::memory_order_relaxed);
      ev.e = w[7].load(std::memory_order_relaxed);
      ev.trace_id = w[8].load(std::memory_order_relaxed);
      ev.span_id = w[9].load(std::memory_order_relaxed);
      local.push_back(ev);
    }
    // Any slot the writer may have reused while we copied (it was writing
    // event h2, overwriting index h2 - kRingEvents) could be torn: keep
    // only indices the writer provably had not reached.
    const uint64_t h2 = ring->head.load(std::memory_order_acquire);
    const uint64_t safe_begin =
        h2 + 1 > kRingEvents ? h2 + 1 - kRingEvents : 0;
    if (safe_begin > begin) {
      const uint64_t discard =
          std::min<uint64_t>(safe_begin - begin, local.size());
      snap.dropped += discard;
      local.erase(local.begin(),
                  local.begin() + static_cast<ptrdiff_t>(discard));
    }
    snap.events.insert(snap.events.end(), local.begin(), local.end());
  }
  std::sort(snap.events.begin(), snap.events.end(),
            [](const ObsEvent& x, const ObsEvent& y) { return x.seq < y.seq; });
  return snap;
}

void FlightRecorder::ResetForTesting() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    for (uint64_t i = 0; i < kRingEvents * kWordsPerEvent; ++i) {
      ring->words[i].store(0, std::memory_order_relaxed);
    }
    ring->head.store(0, std::memory_order_release);
  }
  seq_.store(0, std::memory_order_relaxed);
  dump_signals_.store(0, std::memory_order_relaxed);
  epoch_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count(),
                  std::memory_order_relaxed);
}

}  // namespace sdp
