#ifndef SDPOPT_OBS_SLO_H_
#define SDPOPT_OBS_SLO_H_

#include <stdint.h>

#include <mutex>
#include <string>

namespace sdp {

// Plan-quality and latency SLO watchdog with multi-window burn rates.
//
// Objectives:
//   * latency   -- per-rung (dp/idp/sdp/greedy) wall-time objectives: a
//     request violates when its optimize latency exceeds the rung's
//     threshold.
//   * quality   -- estimated-vs-executed cardinality ratio from EXPLAIN
//     ANALYZE samples (engine/executor.h QError): a sample violates when
//     its ratio exceeds `quality_ratio` (non-finite plan costs count as
//     instant violations -- that is what an injected cost.nan looks like).
//
// Each objective grants an error budget: `error_budget` is the fraction
// of samples allowed to violate.  The burn rate over a window is
//     (violations / samples) / error_budget
// so burn 1.0 consumes the budget exactly as fast as it refills and burn
// N exhausts it N times too fast.  An objective starts *burning* when the
// fast AND slow windows both exceed their thresholds -- the standard
// multi-window construction: the fast window makes detection prompt, the
// slow window keeps one stray violation from flapping the alarm.
//
// Burning is edge-triggered and latched: RecordX() returns a Burn exactly
// once per episode (the transition into the burning state); the latch
// releases only after both windows fall back below threshold.  The
// service uses that edge to write exactly one correlated flight-recorder
// dump for the offending request.
//
// Time is passed in explicitly (seconds on any monotonic clock), so tests
// drive the windows deterministically with a fake clock.

struct SloConfig {
  // Per-rung latency objectives in milliseconds; <= 0 disables the rung's
  // objective.  Indexed by FallbackRung order: dp, idp, sdp, greedy.
  double latency_ms[4] = {0, 0, 0, 0};
  // Maximum acceptable root-cardinality Q-error; <= 0 disables.
  double quality_ratio = 0;
  // Fraction of samples each objective may violate before burning.
  double error_budget = 0.1;
  // Multi-window burn detection.
  double fast_window_seconds = 10;
  double slow_window_seconds = 60;
  double fast_burn_threshold = 2.0;
  double slow_burn_threshold = 1.0;

  bool enabled() const {
    return quality_ratio > 0 || latency_ms[0] > 0 || latency_ms[1] > 0 ||
           latency_ms[2] > 0 || latency_ms[3] > 0;
  }
};

class SloTracker {
 public:
  // Objective identifiers: 0..3 = latency per rung, 4 = quality.
  static constexpr int kQualityObjective = 4;
  static constexpr int kObjectives = 5;

  // The edge produced when an objective transitions into burning.
  struct Burn {
    int objective = -1;        // 0..3 latency rung, 4 quality.
    int rung = 0;              // Rung index (latency) or 0.
    double threshold = 0;      // ms (latency) or ratio (quality).
    double observed = 0;       // The violating sample's value.
    double fast_burn = 0;
    double slow_burn = 0;
    uint64_t request_id = 0;   // The offending request.
  };

  explicit SloTracker(SloConfig config);

  // "latency_dp" .. "latency_greedy", "quality"; names SLO dump files and
  // Prometheus labels.
  static const char* ObjectiveName(int objective);

  // Records one completed request's latency against its rung's objective.
  // `rung` follows FallbackRung order (0=dp..3=greedy).  Returns true and
  // fills *burn when this sample transitioned the objective into its
  // burning state.
  bool RecordLatency(int rung, double seconds, uint64_t request_id,
                     double now_seconds, Burn* burn);

  // Records one plan-quality sample (root-cardinality Q-error; pass a
  // non-finite ratio for a plan whose cost/rows were not finite).
  bool RecordQuality(double ratio, uint64_t request_id, double now_seconds,
                     Burn* burn);

  // True while `objective` is latched burning.
  bool Burning(int objective) const;

  // Totals for tests and gauges.
  uint64_t violations(int objective) const;
  uint64_t samples(int objective) const;
  uint64_t burns_total() const;

  // Human-readable block for /statusz ("[slo]" section body).
  std::string StatuszSection(double now_seconds) const;
  // Prometheus families (sdp_slo_*), replica-labelled like
  // ServiceMetrics::PrometheusText.
  std::string PrometheusText(const std::string& replica,
                             double now_seconds) const;

  const SloConfig& config() const { return config_; }

 private:
  // One-second buckets over the slow window (the fast window reads a
  // suffix of the same ring).
  static constexpr int kBuckets = 128;

  struct Bucket {
    int64_t second = -1;  // Which absolute second this bucket covers.
    uint32_t samples = 0;
    uint32_t violations = 0;
  };

  struct Objective {
    Bucket buckets[kBuckets];
    bool burning = false;
    uint64_t total_samples = 0;
    uint64_t total_violations = 0;
  };

  // Appends the sample and evaluates the windows; returns the burn edge.
  bool Record(int objective, bool violated, double value, double threshold,
              int rung, uint64_t request_id, double now_seconds, Burn* burn);
  double WindowBurn(const Objective& o, int64_t now_second,
                    double window_seconds) const;

  SloConfig config_;
  mutable std::mutex mu_;
  Objective objectives_[kObjectives];
  uint64_t burns_total_ = 0;
};

}  // namespace sdp

#endif  // SDPOPT_OBS_SLO_H_
