#include "obs/prof/profiler.h"

#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>

#include <cerrno>
#include <cstring>
#include <mutex>

// Frame capture in the handler relies on glibc's backtrace(), whose first
// call may allocate (loading the unwinder); Start() primes it from normal
// context so handler-time calls are allocation-free.  ThreadSanitizer
// intercepts allocation and flags any interceptable call made from a
// signal handler, so under TSan the handler records phase-only samples
// (depth 0); the TSan test exercises the ring and phase disciplines, and
// symbolized profiles come from uninstrumented builds.
#if defined(__SANITIZE_THREAD__)
#define SDP_PROF_NO_UNWIND 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SDP_PROF_NO_UNWIND 1
#endif
#endif
#ifndef SDP_PROF_NO_UNWIND
#define SDP_PROF_NO_UNWIND 0
#endif

namespace sdp {

namespace {

constexpr uint64_t kRingSamples = 1024;  // power of two, per thread
constexpr int kWordsPerSample = 1 + SamplingProfiler::kMaxFrames;
// backtrace() reports [handler impl, handler thunk, signal trampoline,
// interrupted frame, ...]; the first three are profiler plumbing.
constexpr int kSkipFrames = 3;

struct SampleRing {
  std::atomic<uint64_t> head{0};
  std::atomic<uint64_t> words[kRingSamples * kWordsPerSample] = {};
};

thread_local SampleRing* tls_sample_ring = nullptr;

std::mutex& RegistryMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}
std::vector<SampleRing*>& Registry() {
  static std::vector<SampleRing*>* rings = new std::vector<SampleRing*>();
  return *rings;
}
// Serializes Start/Stop against each other (e.g. concurrent /profilez).
std::mutex& ControlMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

uint64_t PackHeader(uint8_t phase, int depth) {
  return static_cast<uint64_t>(phase) |
         (static_cast<uint64_t>(static_cast<uint32_t>(depth)) << 8);
}

}  // namespace

// Everything in here must stay async-signal-safe: atomics on the ring,
// TLS reads, and (post-priming) backtrace().  No locks, no allocation,
// errno preserved.
__attribute__((noinline)) void ProfSignalHandlerImpl(int) {
  const int saved_errno = errno;
  if (prof_internal::g_sampler_running.load(std::memory_order_relaxed)) {
    SamplingProfiler& prof = SamplingProfiler::Instance();
    SampleRing* ring = tls_sample_ring;
    if (ring == nullptr) {
      prof.samples_missed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      void* frames[SamplingProfiler::kMaxFrames + kSkipFrames];
      int captured = 0;
#if !SDP_PROF_NO_UNWIND
      captured =
          backtrace(frames, SamplingProfiler::kMaxFrames + kSkipFrames);
#endif
      const int depth = captured > kSkipFrames ? captured - kSkipFrames : 0;
      const uint8_t phase =
          prof_internal::tls_phase.load(std::memory_order_relaxed);
      const uint64_t h = ring->head.load(std::memory_order_relaxed);
      std::atomic<uint64_t>* slot =
          &ring->words[(h & (kRingSamples - 1)) * kWordsPerSample];
      slot[0].store(PackHeader(phase, depth), std::memory_order_relaxed);
      for (int i = 0; i < depth; ++i) {
        slot[1 + i].store(
            reinterpret_cast<uint64_t>(frames[kSkipFrames + i]),
            std::memory_order_relaxed);
      }
      ring->head.store(h + 1, std::memory_order_release);
      prof.samples_recorded_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  errno = saved_errno;
}

namespace {
void ProfSignalHandler(int sig, siginfo_t*, void*) {
  ProfSignalHandlerImpl(sig);
}
}  // namespace

SamplingProfiler& SamplingProfiler::Instance() {
  static SamplingProfiler* instance = new SamplingProfiler();
  return *instance;
}

void SamplingProfiler::EnsureThreadRing() {
  if (tls_sample_ring != nullptr) return;
  std::lock_guard<std::mutex> lock(RegistryMutex());
  SampleRing* ring = new SampleRing();  // intentionally never freed
  Registry().push_back(ring);
  tls_sample_ring = ring;
}

bool SamplingProfiler::Start(int hz, std::string* error) {
  std::lock_guard<std::mutex> lock(ControlMutex());
  if (running()) {
    if (error != nullptr) *error = "profiler already running";
    return false;
  }
  if (hz < 1 || hz > 10000) {
    if (error != nullptr) *error = "profile hz out of range [1, 10000]";
    return false;
  }
  // Prime the unwinder outside signal context (first call may allocate).
  void* prime[4];
  (void)backtrace(prime, 4);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = &ProfSignalHandler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, nullptr) != 0) {
    if (error != nullptr)
      *error = std::string("sigaction(SIGPROF): ") + std::strerror(errno);
    return false;
  }
  EnsureThreadRing();
  hz_.store(hz, std::memory_order_relaxed);
  prof_internal::g_sampler_running.store(true, std::memory_order_relaxed);

  const long usec = 1000000L / hz > 0 ? 1000000L / hz : 1;
  struct itimerval tv;
  tv.it_interval.tv_sec = usec / 1000000;
  tv.it_interval.tv_usec = usec % 1000000;
  tv.it_value = tv.it_interval;
  if (setitimer(ITIMER_PROF, &tv, nullptr) != 0) {
    prof_internal::g_sampler_running.store(false, std::memory_order_relaxed);
    if (error != nullptr)
      *error = std::string("setitimer(ITIMER_PROF): ") + std::strerror(errno);
    return false;
  }
  return true;
}

void SamplingProfiler::Stop() {
  std::lock_guard<std::mutex> lock(ControlMutex());
  if (!running()) return;
  // Clear the flag first so a signal racing the disarm records nothing.
  prof_internal::g_sampler_running.store(false, std::memory_order_relaxed);
  struct itimerval tv;
  std::memset(&tv, 0, sizeof(tv));
  setitimer(ITIMER_PROF, &tv, nullptr);
}

std::vector<SamplingProfiler::Sample> SamplingProfiler::Snapshot() const {
  std::vector<Sample> out;
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (SampleRing* ring : Registry()) {
    const uint64_t h1 = ring->head.load(std::memory_order_acquire);
    const uint64_t begin = h1 > kRingSamples ? h1 - kRingSamples : 0;
    std::vector<Sample> local;
    std::vector<uint64_t> indices;
    local.reserve(h1 - begin);
    indices.reserve(h1 - begin);
    for (uint64_t i = begin; i < h1; ++i) {
      const std::atomic<uint64_t>* slot =
          &ring->words[(i & (kRingSamples - 1)) * kWordsPerSample];
      const uint64_t header = slot[0].load(std::memory_order_relaxed);
      Sample s;
      const uint8_t phase = static_cast<uint8_t>(header & 0xFF);
      s.phase = phase < kProfPhaseCount ? static_cast<ProfPhaseKind>(phase)
                                        : ProfPhaseKind::kNone;
      int depth = static_cast<int>((header >> 8) & 0xFF);
      if (depth > kMaxFrames) depth = kMaxFrames;
      s.depth = depth;
      for (int f = 0; f < depth; ++f) {
        s.pc[f] = static_cast<uintptr_t>(
            slot[1 + f].load(std::memory_order_relaxed));
      }
      local.push_back(s);
      indices.push_back(i);
    }
    // The writer may have lapped us mid-copy; anything it could have
    // overwritten since the first head read is torn -- drop it.
    const uint64_t h2 = ring->head.load(std::memory_order_acquire);
    const uint64_t safe_begin =
        h2 + 1 > kRingSamples ? h2 + 1 - kRingSamples : 0;
    for (size_t k = 0; k < local.size(); ++k) {
      if (indices[k] >= safe_begin) out.push_back(local[k]);
    }
  }
  return out;
}

void SamplingProfiler::Reset() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (SampleRing* ring : Registry()) {
    for (uint64_t w = 0; w < kRingSamples * kWordsPerSample; ++w) {
      ring->words[w].store(0, std::memory_order_relaxed);
    }
    ring->head.store(0, std::memory_order_relaxed);
  }
  samples_recorded_.store(0, std::memory_order_relaxed);
  samples_missed_.store(0, std::memory_order_relaxed);
}

}  // namespace sdp
