#ifndef SDPOPT_OBS_PROF_PROFILER_H_
#define SDPOPT_OBS_PROF_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/prof/prof.h"

// SIGPROF-driven sampling CPU profiler.
//
// Start(hz) installs a SIGPROF handler and arms ITIMER_PROF, so the kernel
// delivers a signal to whichever thread is burning CPU, every 1/hz seconds
// of process CPU time.  The handler captures the interrupted thread's call
// stack plus its active ProfPhase into a per-thread lock-free ring, using
// the flight recorder's discipline: fixed power-of-two rings of atomic
// words, slot words stored relaxed then published by a release store of
// the ring head; readers detect overwrite-torn slots by re-reading the
// head and discarding anything the writer may have lapped.  The handler
// takes no locks, allocates nothing, and preserves errno.
//
// Threads register their ring lazily from normal context (the ProfPhase
// constructor's slow path, or Start() for the calling thread); a signal
// landing on an unregistered thread bumps a missed counter instead of
// recording.  Rings are never destroyed.
//
// Symbolization happens offline in prof_export (dladdr + demangle, which
// allocate and therefore must never run in the handler).

namespace sdp {

class SamplingProfiler {
 public:
  static constexpr int kMaxFrames = 16;

  struct Sample {
    ProfPhaseKind phase = ProfPhaseKind::kNone;
    int depth = 0;  // 0 when frame capture is unavailable (see prof.cc)
    uintptr_t pc[kMaxFrames] = {};
  };

  static SamplingProfiler& Instance();

  // Install the handler and arm the timer at `hz` samples per CPU-second.
  // Fails (returning false with *error set) if already running, hz is out
  // of [1, 10000], or the signal/timer syscalls fail.
  bool Start(int hz, std::string* error);

  // Disarm the timer.  The handler stays installed (it is inert while the
  // running flag is clear); recorded samples remain until Reset().
  void Stop();

  bool running() const {
    return prof_internal::g_sampler_running.load(std::memory_order_relaxed);
  }
  int hz() const { return hz_.load(std::memory_order_relaxed); }

  // Copy out every readable sample across all registered rings.  Safe to
  // call while running; torn slots are discarded.
  std::vector<Sample> Snapshot() const;

  uint64_t samples_recorded() const {
    return samples_recorded_.load(std::memory_order_relaxed);
  }
  // Signals that landed on threads with no registered ring.
  uint64_t samples_missed() const {
    return samples_missed_.load(std::memory_order_relaxed);
  }

  // Zero rings and counters (threads stay registered).  Call only while
  // stopped.
  void Reset();

  // Register the calling thread's ring if it has none yet.  Normal-context
  // only; called from ProfPhase's slow path while the profiler runs.
  static void EnsureThreadRing();

 private:
  SamplingProfiler() = default;

  std::atomic<int> hz_{0};
  std::atomic<uint64_t> samples_recorded_{0};
  std::atomic<uint64_t> samples_missed_{0};

  friend void ProfSignalHandlerImpl(int);
};

}  // namespace sdp

#endif  // SDPOPT_OBS_PROF_PROFILER_H_
