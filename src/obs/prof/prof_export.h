#ifndef SDPOPT_OBS_PROF_PROF_EXPORT_H_
#define SDPOPT_OBS_PROF_PROF_EXPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/prof/prof.h"
#include "obs/prof/profiler.h"

// Offline rendering of profiler samples.  Symbolization uses dladdr +
// __cxa_demangle, both of which allocate -- everything in this header
// must run from normal context, never the signal handler.  Executables
// are built with ENABLE_EXPORTS (-rdynamic) so dladdr can resolve
// symbols in the main binary; unresolvable frames render as hex
// addresses, and the phase prefix keeps such profiles useful.

namespace sdp {

// Demangled symbol for a pc, or "0x<hex>" when unresolvable.  Cached.
std::string ProfSymbolize(uintptr_t pc);

// Per-phase sample counts, keyed by ProfPhaseName.
std::map<std::string, uint64_t> ProfPhaseCounts(
    const std::vector<SamplingProfiler::Sample>& samples);

// Folded-stack text, one line per distinct stack, root-first frames:
//   phase=cost;sdp::OptimizeDP;sdp::JoinEnumerator::RunLevel 42
// Consumable by flamegraph.pl; the phase tag is the root frame.
std::string RenderFolded(
    const std::vector<SamplingProfiler::Sample>& samples);

// Sum several folded-stack texts (e.g. one per replica) by identical
// symbol+phase key; output is sorted by key for determinism.
std::string MergeFoldedProfiles(const std::vector<std::string>& folded);

// JSON profile: phase totals, distinct stacks (frames leaf-first), and
// the per-phase x per-source allocation table.
std::string RenderProfileJson(
    const std::vector<SamplingProfiler::Sample>& samples,
    const ProfAllocCounters& alloc, int hz, uint64_t samples_recorded,
    uint64_t samples_missed);

// Human-readable digest: per-phase sample percentages and allocated
// bytes, plus the top-5 hot symbols by inclusive leaf count.
std::string RenderProfileSummary(
    const std::vector<SamplingProfiler::Sample>& samples,
    const ProfAllocCounters& alloc);

}  // namespace sdp

#endif  // SDPOPT_OBS_PROF_PROF_EXPORT_H_
