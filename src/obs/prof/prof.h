#ifndef SDPOPT_OBS_PROF_PROF_H_
#define SDPOPT_OBS_PROF_PROF_H_

#include <atomic>
#include <cstdint>

// Phase and allocation attribution for the sampling profiler.
//
// A ProfPhase RAII tag marks the current thread as being inside one of the
// optimizer's coarse phases (enumerate / cost / prune / merge / cache /
// serve).  The SIGPROF sampler stamps the active phase onto every CPU
// sample, and the allocation hooks in the arena, memo and RelSet intern
// table charge bytes to the active phase, so a profile decomposes into the
// exact phases the ROADMAP perf items need.
//
// Discipline mirrors the flight recorder: everything here is always
// compiled in, and the disabled path is one relaxed atomic load plus a
// predicted branch (allocation hooks) or two thread-local byte stores
// (phase tags).  Nothing on these paths allocates, locks, or syscalls.
//
// Determinism rule: allocation hooks fire only on gauge-attached
// allocation paths.  Parallel scan workers run with gauge == nullptr
// (their scratch is thrown away before the deterministic merge replays
// candidate application on the owner thread), so per-phase allocation
// totals are bit-identical at --opt-threads 1 vs N, same as every other
// counter in the system.

namespace sdp {

// Coarse optimizer phases.  kNone means "outside any tagged region"
// (driver glue, result assembly); samples landing there are still
// reported, under the name "none".
enum class ProfPhaseKind : uint8_t {
  kNone = 0,
  kEnumerate,  // candidate-pair scans, csg-cmp recursion, RelSet interning
  kCost,       // join costing, memo entry creation, skyline insertion
  kPrune,      // skyline pruner sweeps + doomed-entry recycling
  kMerge,      // parallel_enum deterministic merge orchestration
  kCache,      // plan-cache lookup / fill / coalescing
  kServe,      // service-layer request handling outside the phases above
};
inline constexpr int kProfPhaseCount = 7;

// Stable lowercase name ("none", "enumerate", ...), used in folded keys,
// JSON, and CI assertions.
const char* ProfPhaseName(ProfPhaseKind kind);

// Where attributed allocations come from.
enum class ProfAllocSource : uint8_t {
  kArena = 0,  // Arena::Allocate (plan nodes, skyline vectors, scratch)
  kMemo,       // memo entries + plan slots
  kIntern,     // CsgCmpEnumerator RelSet intern-table misses
};
inline constexpr int kProfAllocSourceCount = 3;

const char* ProfAllocSourceName(ProfAllocSource source);

namespace prof_internal {

// Active phase of this thread.  Atomic so the SIGPROF handler (which
// interrupts this same thread) reads it without a sanitizer-visible race;
// relaxed accesses compile to plain byte loads/stores.
extern thread_local std::atomic<uint8_t> tls_phase;

// Set while the sampling profiler is running; ProfPhase construction uses
// it to lazily register the thread's sample ring from normal (non-signal)
// context.
extern std::atomic<bool> g_sampler_running;

// Set while allocation attribution is recording.
extern std::atomic<bool> g_alloc_enabled;

void RecordAllocSlow(ProfAllocSource source, uint64_t bytes);
void RegisterThreadForSampling();

}  // namespace prof_internal

// Phase currently active on the calling thread.
inline ProfPhaseKind CurrentProfPhase() {
  return static_cast<ProfPhaseKind>(
      prof_internal::tls_phase.load(std::memory_order_relaxed));
}

// RAII phase tag.  Nests: the previous phase is restored on destruction,
// so an inner ProfPhase(kCost) inside an enumerate region attributes just
// its own extent.
class ProfPhase {
 public:
  explicit ProfPhase(ProfPhaseKind kind)
      : saved_(prof_internal::tls_phase.load(std::memory_order_relaxed)) {
    prof_internal::tls_phase.store(static_cast<uint8_t>(kind),
                                   std::memory_order_relaxed);
    if (prof_internal::g_sampler_running.load(std::memory_order_relaxed)) {
      prof_internal::RegisterThreadForSampling();
    }
  }
  ~ProfPhase() {
    prof_internal::tls_phase.store(saved_, std::memory_order_relaxed);
  }
  ProfPhase(const ProfPhase&) = delete;
  ProfPhase& operator=(const ProfPhase&) = delete;

 private:
  uint8_t saved_;
};

// Allocation hook.  Disabled path: one relaxed load + predicted branch.
inline void ProfRecordAlloc(ProfAllocSource source, uint64_t bytes) {
  if (!prof_internal::g_alloc_enabled.load(std::memory_order_relaxed))
    return;
  prof_internal::RecordAllocSlow(source, bytes);
}

// Turn allocation attribution on/off.  Counters accumulate while enabled;
// they are not cleared by disabling.
void ProfSetAllocCountersEnabled(bool enabled);
bool ProfAllocCountersEnabled();

// Snapshot of the per-phase x per-source allocation counters.
struct ProfAllocCounters {
  uint64_t bytes[kProfPhaseCount][kProfAllocSourceCount] = {};
  uint64_t count[kProfPhaseCount][kProfAllocSourceCount] = {};

  uint64_t TotalBytes() const;
  uint64_t PhaseBytes(ProfPhaseKind kind) const;
  uint64_t SourceBytes(ProfAllocSource source) const;
};
ProfAllocCounters ProfAllocSnapshot();

// Zero the allocation counters (does not change the enabled flag).
void ProfAllocReset();

}  // namespace sdp

#endif  // SDPOPT_OBS_PROF_PROF_H_
