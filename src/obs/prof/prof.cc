#include "obs/prof/prof.h"

#include "obs/prof/profiler.h"

namespace sdp {

namespace prof_internal {

thread_local std::atomic<uint8_t> tls_phase{0};
std::atomic<bool> g_sampler_running{false};
std::atomic<bool> g_alloc_enabled{false};

namespace {

// Global per-phase x per-source totals.  Plain relaxed counters: the
// determinism rule (hooks fire only on gauge-attached, owner-thread
// allocation paths) makes the totals reproducible; atomics keep the
// multi-request service case well-defined.
struct AllocCell {
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> count{0};
};
AllocCell g_alloc[kProfPhaseCount][kProfAllocSourceCount];

}  // namespace

void RecordAllocSlow(ProfAllocSource source, uint64_t bytes) {
  AllocCell& cell =
      g_alloc[tls_phase.load(std::memory_order_relaxed)]
             [static_cast<int>(source)];
  cell.bytes.fetch_add(bytes, std::memory_order_relaxed);
  cell.count.fetch_add(1, std::memory_order_relaxed);
}

void RegisterThreadForSampling() { SamplingProfiler::EnsureThreadRing(); }

}  // namespace prof_internal

const char* ProfPhaseName(ProfPhaseKind kind) {
  switch (kind) {
    case ProfPhaseKind::kNone:
      return "none";
    case ProfPhaseKind::kEnumerate:
      return "enumerate";
    case ProfPhaseKind::kCost:
      return "cost";
    case ProfPhaseKind::kPrune:
      return "prune";
    case ProfPhaseKind::kMerge:
      return "merge";
    case ProfPhaseKind::kCache:
      return "cache";
    case ProfPhaseKind::kServe:
      return "serve";
  }
  return "unknown";
}

const char* ProfAllocSourceName(ProfAllocSource source) {
  switch (source) {
    case ProfAllocSource::kArena:
      return "arena";
    case ProfAllocSource::kMemo:
      return "memo";
    case ProfAllocSource::kIntern:
      return "intern";
  }
  return "unknown";
}

void ProfSetAllocCountersEnabled(bool enabled) {
  prof_internal::g_alloc_enabled.store(enabled, std::memory_order_relaxed);
}

bool ProfAllocCountersEnabled() {
  return prof_internal::g_alloc_enabled.load(std::memory_order_relaxed);
}

uint64_t ProfAllocCounters::TotalBytes() const {
  uint64_t total = 0;
  for (int p = 0; p < kProfPhaseCount; ++p)
    for (int s = 0; s < kProfAllocSourceCount; ++s) total += bytes[p][s];
  return total;
}

uint64_t ProfAllocCounters::PhaseBytes(ProfPhaseKind kind) const {
  uint64_t total = 0;
  for (int s = 0; s < kProfAllocSourceCount; ++s)
    total += bytes[static_cast<int>(kind)][s];
  return total;
}

uint64_t ProfAllocCounters::SourceBytes(ProfAllocSource source) const {
  uint64_t total = 0;
  for (int p = 0; p < kProfPhaseCount; ++p)
    total += bytes[p][static_cast<int>(source)];
  return total;
}

ProfAllocCounters ProfAllocSnapshot() {
  ProfAllocCounters out;
  for (int p = 0; p < kProfPhaseCount; ++p) {
    for (int s = 0; s < kProfAllocSourceCount; ++s) {
      out.bytes[p][s] =
          prof_internal::g_alloc[p][s].bytes.load(std::memory_order_relaxed);
      out.count[p][s] =
          prof_internal::g_alloc[p][s].count.load(std::memory_order_relaxed);
    }
  }
  return out;
}

void ProfAllocReset() {
  for (int p = 0; p < kProfPhaseCount; ++p) {
    for (int s = 0; s < kProfAllocSourceCount; ++s) {
      prof_internal::g_alloc[p][s].bytes.store(0, std::memory_order_relaxed);
      prof_internal::g_alloc[p][s].count.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace sdp
