#include "obs/prof/prof_export.h"

#include <cxxabi.h>
#include <dlfcn.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <unordered_map>

namespace sdp {

namespace {

std::mutex& SymbolCacheMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}
std::unordered_map<uintptr_t, std::string>& SymbolCache() {
  static std::unordered_map<uintptr_t, std::string>* cache =
      new std::unordered_map<uintptr_t, std::string>();
  return *cache;
}

std::string SymbolizeUncached(uintptr_t pc) {
  Dl_info info;
  // The sampled pc is the return address: subtract one byte so calls at
  // the end of a function attribute to the caller, not the next symbol.
  const uintptr_t lookup = pc > 0 ? pc - 1 : pc;
  if (dladdr(reinterpret_cast<void*>(lookup), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string out(demangled);
      std::free(demangled);
      return out;
    }
    if (demangled != nullptr) std::free(demangled);
    return info.dli_sname;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(pc));
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Folded keys use ';' as the frame separator and ' ' before the count;
// scrub both out of symbol names so lines stay parseable.
std::string FoldedEscape(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == ';' || c == ' ' || c == '\n') c = '_';
  }
  return out;
}

std::map<std::string, uint64_t> FoldSamples(
    const std::vector<SamplingProfiler::Sample>& samples) {
  std::map<std::string, uint64_t> stacks;
  for (const SamplingProfiler::Sample& s : samples) {
    std::string key = "phase=";
    key += ProfPhaseName(s.phase);
    for (int f = s.depth - 1; f >= 0; --f) {  // root-first
      key += ';';
      key += FoldedEscape(ProfSymbolize(s.pc[f]));
    }
    ++stacks[key];
  }
  return stacks;
}

}  // namespace

std::string ProfSymbolize(uintptr_t pc) {
  {
    std::lock_guard<std::mutex> lock(SymbolCacheMutex());
    auto it = SymbolCache().find(pc);
    if (it != SymbolCache().end()) return it->second;
  }
  std::string sym = SymbolizeUncached(pc);
  std::lock_guard<std::mutex> lock(SymbolCacheMutex());
  SymbolCache().emplace(pc, sym);
  return sym;
}

std::map<std::string, uint64_t> ProfPhaseCounts(
    const std::vector<SamplingProfiler::Sample>& samples) {
  std::map<std::string, uint64_t> counts;
  for (const SamplingProfiler::Sample& s : samples) {
    ++counts[ProfPhaseName(s.phase)];
  }
  return counts;
}

std::string RenderFolded(
    const std::vector<SamplingProfiler::Sample>& samples) {
  std::string out;
  for (const auto& [key, count] : FoldSamples(samples)) {
    out += key;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string MergeFoldedProfiles(const std::vector<std::string>& folded) {
  std::map<std::string, uint64_t> merged;
  for (const std::string& text : folded) {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const size_t space = line.rfind(' ');
      if (space == std::string::npos) continue;
      char* end = nullptr;
      const unsigned long long count =
          std::strtoull(line.c_str() + space + 1, &end, 10);
      if (end == line.c_str() + space + 1) continue;
      merged[line.substr(0, space)] += count;
    }
  }
  std::string out;
  for (const auto& [key, count] : merged) {
    out += key;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string RenderProfileJson(
    const std::vector<SamplingProfiler::Sample>& samples,
    const ProfAllocCounters& alloc, int hz, uint64_t samples_recorded,
    uint64_t samples_missed) {
  std::string out = "{\n";
  out += "  \"version\": 1,\n";
  out += "  \"hz\": " + std::to_string(hz) + ",\n";
  out += "  \"samples_recorded\": " + std::to_string(samples_recorded) +
         ",\n";
  out += "  \"samples_missed\": " + std::to_string(samples_missed) + ",\n";

  out += "  \"phases\": {";
  bool first = true;
  for (const auto& [phase, count] : ProfPhaseCounts(samples)) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + phase + "\": " + std::to_string(count);
  }
  out += "},\n";

  out += "  \"stacks\": [\n";
  first = true;
  for (const auto& [key, count] : FoldSamples(samples)) {
    if (!first) out += ",\n";
    first = false;
    // Split the folded key back into phase + frames; emit leaf-first
    // (pprof location order).
    std::vector<std::string> parts;
    size_t pos = 0;
    while (pos <= key.size()) {
      const size_t semi = key.find(';', pos);
      if (semi == std::string::npos) {
        parts.push_back(key.substr(pos));
        break;
      }
      parts.push_back(key.substr(pos, semi - pos));
      pos = semi + 1;
    }
    out += "    {\"phase\": \"" +
           JsonEscape(parts[0].substr(parts[0].find('=') + 1)) +
           "\", \"count\": " + std::to_string(count) + ", \"frames\": [";
    for (size_t i = parts.size(); i-- > 1;) {
      out += "\"" + JsonEscape(parts[i]) + "\"";
      if (i > 1) out += ", ";
    }
    out += "]}";
  }
  out += "\n  ],\n";

  out += "  \"alloc\": {";
  for (int s = 0; s < kProfAllocSourceCount; ++s) {
    if (s > 0) out += ", ";
    out += "\"";
    out += ProfAllocSourceName(static_cast<ProfAllocSource>(s));
    out += "\": {";
    for (int p = 0; p < kProfPhaseCount; ++p) {
      if (p > 0) out += ", ";
      out += "\"";
      out += ProfPhaseName(static_cast<ProfPhaseKind>(p));
      out += "\": {\"bytes\": " + std::to_string(alloc.bytes[p][s]) +
             ", \"count\": " + std::to_string(alloc.count[p][s]) + "}";
    }
    out += "}";
  }
  out += "}\n}\n";
  return out;
}

std::string RenderProfileSummary(
    const std::vector<SamplingProfiler::Sample>& samples,
    const ProfAllocCounters& alloc) {
  const uint64_t total = samples.size();
  std::string out;
  char line[256];
  out += "phase        samples     pct  alloc_bytes  allocs\n";
  const std::map<std::string, uint64_t> phases = ProfPhaseCounts(samples);
  for (int p = 0; p < kProfPhaseCount; ++p) {
    const ProfPhaseKind kind = static_cast<ProfPhaseKind>(p);
    const char* name = ProfPhaseName(kind);
    const auto it = phases.find(name);
    const uint64_t count = it == phases.end() ? 0 : it->second;
    uint64_t allocs = 0;
    for (int s = 0; s < kProfAllocSourceCount; ++s) allocs += alloc.count[p][s];
    if (count == 0 && allocs == 0) continue;
    std::snprintf(line, sizeof(line), "%-12s %7llu %6.1f%% %12llu %7llu\n",
                  name, static_cast<unsigned long long>(count),
                  total == 0 ? 0.0
                             : 100.0 * static_cast<double>(count) /
                                   static_cast<double>(total),
                  static_cast<unsigned long long>(alloc.PhaseBytes(kind)),
                  static_cast<unsigned long long>(allocs));
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-12s %7llu %6.1f%% %12llu\n", "total",
                static_cast<unsigned long long>(total), total == 0 ? 0.0 : 100.0,
                static_cast<unsigned long long>(alloc.TotalBytes()));
  out += line;

  // Self (leaf-frame) counts pick out the hot symbols.
  std::unordered_map<std::string, uint64_t> self;
  for (const SamplingProfiler::Sample& s : samples) {
    if (s.depth > 0) ++self[ProfSymbolize(s.pc[0])];
  }
  std::vector<std::pair<std::string, uint64_t>> hot(self.begin(), self.end());
  std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (!hot.empty()) {
    out += "top symbols (self samples):\n";
    for (size_t i = 0; i < hot.size() && i < 5; ++i) {
      std::snprintf(line, sizeof(line), "  %llu  %s\n",
                    static_cast<unsigned long long>(hot[i].second),
                    hot[i].first.c_str());
      out += line;
    }
  }
  return out;
}

}  // namespace sdp
