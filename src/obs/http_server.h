#ifndef SDPOPT_OBS_HTTP_SERVER_H_
#define SDPOPT_OBS_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace sdp {

// Minimal dependency-free HTTP/1.1 server for the introspection endpoints.
//
// Deliberately tiny: GET only, one poll-driven accept loop on a single
// background thread, connections handled serially (the listen backlog
// absorbs bursts -- these are operator curls and scrapes, not user
// traffic), loopback only.  Anything that is not a well-formed GET gets a
// 400/405; oversized or stalled requests are dropped.

struct HttpRequest {
  std::string method;
  std::string path;   // Target up to (excluding) any '?'.
  std::string query;  // Raw query string after '?', "" when absent.
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = kernel-assigned, see port()) and starts
  // the serving thread.  Returns false with *error filled on bind/listen
  // failure.
  bool Start(int port, std::string* error = nullptr);

  // Stops the serving thread and closes the listen socket.  Idempotent;
  // also called by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (meaningful after a successful Start()).
  int port() const { return port_; }

  // Reason phrase for the handful of statuses the server emits.
  static const char* StatusText(int status);

 private:
  void Serve();
  void HandleConnection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace sdp

#endif  // SDPOPT_OBS_HTTP_SERVER_H_
