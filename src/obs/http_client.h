#ifndef SDPOPT_OBS_HTTP_CLIENT_H_
#define SDPOPT_OBS_HTTP_CLIENT_H_

#include <string>

namespace sdp {

// Minimal loopback HTTP/1.0 GET, the client-side counterpart of
// obs/http_server.h.  The router's span collector uses it to pull
// trace-filtered flight-recorder slices from replica /flightrecorderz
// endpoints; it speaks just enough HTTP for that (status line +
// headers + body, Connection: close semantics).
//
// Returns true and fills *body on a 200; false otherwise with *error
// describing the failure (connect, I/O, non-200 status).
bool HttpGetLocal(int port, const std::string& path_and_query,
                  std::string* body, std::string* error,
                  int timeout_ms = 2000);

}  // namespace sdp

#endif  // SDPOPT_OBS_HTTP_CLIENT_H_
