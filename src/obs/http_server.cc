#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <sstream>

#include "common/subprocess.h"

namespace sdp {

namespace {

// Requests larger than this are rejected: the endpoints take no bodies and
// only short query strings.
constexpr size_t kMaxRequestBytes = 8192;

// A connection that stalls longer than this mid-request is dropped.
constexpr int kIoTimeoutMs = 2000;

}  // namespace

const char* HttpServer::StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
  }
  return "Unknown";
}

HttpServer::HttpServer(Handler handler) : handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

bool HttpServer::Start(int port, std::string* error) {
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "server already running";
    return false;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) *error = std::string("bind: ") + strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 64) != 0) {
    if (error != nullptr) *error = std::string("listen: ") + strerror(errno);
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return true;
}

void HttpServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void HttpServer::Serve() {
  // Process-wide shutdown (SIGTERM/SIGINT via InstallShutdownHandlers)
  // drains the same way an owner's Stop() does: the accept loop exits,
  // no new connections are taken, and the owner's Stop() still joins the
  // thread and closes the listen socket.
  while (!stop_.load(std::memory_order_acquire) && !ShutdownRequested()) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;  // Timeout or EINTR: re-check the stop flag.
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void HttpServer::HandleConnection(int fd) {
  timeval tv;
  tv.tv_sec = kIoTimeoutMs / 1000;
  tv.tv_usec = (kIoTimeoutMs % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  std::string raw;
  char buf[1024];
  while (raw.find("\r\n\r\n") == std::string::npos) {
    if (raw.size() > kMaxRequestBytes) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // Peer closed, timed out, or errored.
    raw.append(buf, static_cast<size_t>(n));
  }

  HttpResponse resp;
  const size_t header_end = raw.find("\r\n\r\n");
  if (raw.size() > kMaxRequestBytes) {
    resp.status = 431;
    resp.body = "request too large\n";
  } else if (header_end == std::string::npos) {
    resp.status = 400;
    resp.body = "malformed request\n";
  } else {
    // Request line: METHOD SP TARGET SP HTTP/x.y
    const size_t line_end = raw.find("\r\n");
    const std::string line = raw.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string::npos
                           ? std::string::npos
                           : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.compare(sp2 + 1, 5, "HTTP/") != 0) {
      resp.status = 400;
      resp.body = "malformed request line\n";
    } else {
      HttpRequest req;
      req.method = line.substr(0, sp1);
      std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const size_t qmark = target.find('?');
      if (qmark == std::string::npos) {
        req.path = target;
      } else {
        req.path = target.substr(0, qmark);
        req.query = target.substr(qmark + 1);
      }
      if (req.method != "GET") {
        resp.status = 405;
        resp.body = "only GET is supported\n";
      } else if (req.path.empty() || req.path[0] != '/') {
        resp.status = 400;
        resp.body = "malformed request target\n";
      } else {
        resp = handler_(req);
      }
    }
  }

  std::ostringstream out;
  out << "HTTP/1.1 " << resp.status << " " << StatusText(resp.status)
      << "\r\nContent-Type: " << resp.content_type
      << "\r\nContent-Length: " << resp.body.size()
      << "\r\nConnection: close\r\n\r\n"
      << resp.body;
  const std::string wire = out.str();
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace sdp
