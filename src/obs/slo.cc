#include "obs/slo.h"

#include <math.h>

#include <algorithm>
#include <sstream>

namespace sdp {

namespace {

const char* kObjectiveNames[SloTracker::kObjectives] = {
    "latency_dp", "latency_idp", "latency_sdp", "latency_greedy", "quality"};

}  // namespace

SloTracker::SloTracker(SloConfig config) : config_(config) {
  // The slow window is the ring's capacity; clamp rather than silently
  // under-covering it.
  config_.slow_window_seconds =
      std::min<double>(config_.slow_window_seconds, kBuckets);
  config_.fast_window_seconds = std::min<double>(
      config_.fast_window_seconds, config_.slow_window_seconds);
}

const char* SloTracker::ObjectiveName(int objective) {
  return objective >= 0 && objective < kObjectives
             ? kObjectiveNames[objective]
             : "unknown";
}

bool SloTracker::RecordLatency(int rung, double seconds, uint64_t request_id,
                               double now_seconds, Burn* burn) {
  if (rung < 0 || rung > 3) return false;
  const double threshold_ms = config_.latency_ms[rung];
  if (threshold_ms <= 0) return false;
  const double ms = seconds * 1e3;
  return Record(rung, ms > threshold_ms, ms, threshold_ms, rung, request_id,
                now_seconds, burn);
}

bool SloTracker::RecordQuality(double ratio, uint64_t request_id,
                               double now_seconds, Burn* burn) {
  if (config_.quality_ratio <= 0) return false;
  const bool violated = !(ratio == ratio) || isinf(ratio) ||
                        ratio > config_.quality_ratio;
  return Record(kQualityObjective, violated, ratio, config_.quality_ratio, 0,
                request_id, now_seconds, burn);
}

bool SloTracker::Record(int objective, bool violated, double value,
                        double threshold, int rung, uint64_t request_id,
                        double now_seconds, Burn* burn) {
  std::lock_guard<std::mutex> lock(mu_);
  Objective& o = objectives_[objective];
  const int64_t second = static_cast<int64_t>(now_seconds);
  Bucket& b = o.buckets[second % kBuckets];
  if (b.second != second) {
    b.second = second;
    b.samples = 0;
    b.violations = 0;
  }
  b.samples += 1;
  if (violated) b.violations += 1;
  o.total_samples += 1;
  if (violated) o.total_violations += 1;

  const double fast = WindowBurn(o, second, config_.fast_window_seconds);
  const double slow = WindowBurn(o, second, config_.slow_window_seconds);
  const bool over = fast >= config_.fast_burn_threshold &&
                    slow >= config_.slow_burn_threshold;
  if (!over) {
    if (!(fast >= config_.fast_burn_threshold) &&
        !(slow >= config_.slow_burn_threshold)) {
      o.burning = false;  // Both windows recovered: release the latch.
    }
    return false;
  }
  if (o.burning) return false;  // Still inside the current episode.
  o.burning = true;
  burns_total_ += 1;
  if (burn != nullptr) {
    burn->objective = objective;
    burn->rung = rung;
    burn->threshold = threshold;
    burn->observed = value;
    burn->fast_burn = fast;
    burn->slow_burn = slow;
    burn->request_id = request_id;
  }
  return true;
}

double SloTracker::WindowBurn(const Objective& o, int64_t now_second,
                              double window_seconds) const {
  const int64_t window = std::max<int64_t>(1, static_cast<int64_t>(window_seconds));
  uint64_t samples = 0;
  uint64_t violations = 0;
  for (int64_t s = now_second - window + 1; s <= now_second; ++s) {
    if (s < 0) continue;
    const Bucket& b = o.buckets[s % kBuckets];
    if (b.second != s) continue;
    samples += b.samples;
    violations += b.violations;
  }
  if (samples == 0) return 0;
  const double budget = std::max(1e-9, config_.error_budget);
  return (static_cast<double>(violations) / static_cast<double>(samples)) /
         budget;
}

bool SloTracker::Burning(int objective) const {
  std::lock_guard<std::mutex> lock(mu_);
  return objective >= 0 && objective < kObjectives &&
         objectives_[objective].burning;
}

uint64_t SloTracker::violations(int objective) const {
  std::lock_guard<std::mutex> lock(mu_);
  return objective >= 0 && objective < kObjectives
             ? objectives_[objective].total_violations
             : 0;
}

uint64_t SloTracker::samples(int objective) const {
  std::lock_guard<std::mutex> lock(mu_);
  return objective >= 0 && objective < kObjectives
             ? objectives_[objective].total_samples
             : 0;
}

uint64_t SloTracker::burns_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return burns_total_;
}

std::string SloTracker::StatuszSection(double now_seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t second = static_cast<int64_t>(now_seconds);
  std::ostringstream out;
  out << "error_budget: " << config_.error_budget << "\n"
      << "windows_seconds: " << config_.fast_window_seconds << "/"
      << config_.slow_window_seconds << " (burn thresholds "
      << config_.fast_burn_threshold << "/" << config_.slow_burn_threshold
      << ")\n";
  for (int i = 0; i < kObjectives; ++i) {
    const double threshold =
        i == kQualityObjective ? config_.quality_ratio : config_.latency_ms[i];
    if (threshold <= 0) continue;
    const Objective& o = objectives_[i];
    out << kObjectiveNames[i] << ": threshold "
        << threshold << (i == kQualityObjective ? " (ratio)" : " ms")
        << ", samples " << o.total_samples << ", violations "
        << o.total_violations << ", fast_burn "
        << WindowBurn(o, second, config_.fast_window_seconds)
        << ", slow_burn "
        << WindowBurn(o, second, config_.slow_window_seconds) << ", "
        << (o.burning ? "BURNING" : "ok") << "\n";
  }
  out << "burns_total: " << burns_total_ << "\n";
  return out.str();
}

std::string SloTracker::PrometheusText(const std::string& replica,
                                       double now_seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t second = static_cast<int64_t>(now_seconds);
  const auto label = [&replica](const char* objective,
                                const char* extra = nullptr) {
    std::string l = "{objective=\"";
    l += objective;
    l += "\"";
    if (extra != nullptr) l += extra;
    if (!replica.empty()) l += ",replica=\"" + replica + "\"";
    l += "}";
    return l;
  };
  std::ostringstream out;
  out << "# HELP sdp_slo_samples_total Samples recorded per SLO objective.\n"
      << "# TYPE sdp_slo_samples_total counter\n";
  for (int i = 0; i < kObjectives; ++i) {
    out << "sdp_slo_samples_total" << label(kObjectiveNames[i]) << " "
        << objectives_[i].total_samples << "\n";
  }
  out << "# HELP sdp_slo_violations_total Objective violations recorded.\n"
      << "# TYPE sdp_slo_violations_total counter\n";
  for (int i = 0; i < kObjectives; ++i) {
    out << "sdp_slo_violations_total" << label(kObjectiveNames[i]) << " "
        << objectives_[i].total_violations << "\n";
  }
  out << "# HELP sdp_slo_burn_rate Error-budget burn rate per window.\n"
      << "# TYPE sdp_slo_burn_rate gauge\n";
  for (int i = 0; i < kObjectives; ++i) {
    out << "sdp_slo_burn_rate"
        << label(kObjectiveNames[i], ",window=\"fast\"") << " "
        << WindowBurn(objectives_[i], second, config_.fast_window_seconds)
        << "\n"
        << "sdp_slo_burn_rate"
        << label(kObjectiveNames[i], ",window=\"slow\"") << " "
        << WindowBurn(objectives_[i], second, config_.slow_window_seconds)
        << "\n";
  }
  out << "# HELP sdp_slo_burning 1 while the objective is latched burning.\n"
      << "# TYPE sdp_slo_burning gauge\n";
  for (int i = 0; i < kObjectives; ++i) {
    out << "sdp_slo_burning" << label(kObjectiveNames[i]) << " "
        << (objectives_[i].burning ? 1 : 0) << "\n";
  }
  std::string total_label = replica.empty()
                                ? ""
                                : "{replica=\"" + replica + "\"}";
  out << "# HELP sdp_slo_burns_total Burn episodes (edge transitions).\n"
      << "# TYPE sdp_slo_burns_total counter\n"
      << "sdp_slo_burns_total" << total_label << " " << burns_total_ << "\n";
  return out.str();
}

}  // namespace sdp
