#ifndef SDPOPT_OBS_DTRACE_H_
#define SDPOPT_OBS_DTRACE_H_

#include <stdint.h>

#include <string>

namespace sdp {

// Fleet-wide distributed tracing: the identity a request carries as it
// crosses process boundaries (client -> router -> replica -> broadcast).
//
// The router mints one trace id per routed request and one span id per
// routing attempt; the pair travels to the replica in the wire frame
// header (see fleet/wire.h, kFlagTraceContext) and is installed in a
// thread-local by SpanScope, so every flight-recorder event the replica
// records while serving the request -- queueing, cache traffic, ladder
// rungs, enumeration levels, fault fires -- is tagged with the context
// without any event source knowing about the fleet.
//
// Ids are minted *content-deterministically* (splitmix64 over the fleet
// request id and the routing-key hash), never from clocks or counters:
// the same seeded workload produces the same trace ids on every run at
// any thread count, which is what makes /dtracez timelines byte-exactly
// reproducible and therefore diffable.

struct TraceContext {
  uint64_t trace_id = 0;  // 0 = no active trace (context-free).
  uint64_t span_id = 0;

  bool active() const { return trace_id != 0; }
};

// Well-known span ids within one trace.  The router records its
// route-level events under the root span; routing attempt k (0-based)
// gets span kAttemptSpanBase + k, and that span id is what travels to
// the replica -- so a replica event's span id names the router attempt
// that caused it, giving parentage without a parent field per event.
constexpr uint64_t kRouterRootSpan = 1;
constexpr uint64_t kAttemptSpanBase = 2;

// splitmix64 finalizer: the same mixer the service uses for retry jitter.
uint64_t DtraceMix64(uint64_t x);

// FNV-1a over a string (routing keys), for trace-id minting.
uint64_t DtraceHash(const std::string& s);

// Deterministic trace id for a fleet request: a function of the request
// id and the routing-key hash only.  Never returns 0.
uint64_t MintTraceId(uint64_t request_id, uint64_t routing_key_hash);

// The calling thread's active context ({0,0} when none).
TraceContext CurrentTraceContext();

// Installs `context` as the calling thread's active context for the
// scope's lifetime, restoring the previous context on exit.  Nests.
class SpanScope {
 public:
  explicit SpanScope(TraceContext context);
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  TraceContext prev_;
};

// Lower 64 bits rendered as fixed-width hex, the form trace ids take in
// /dtracez URLs and JSON ("0000000000000000" for 0).
std::string TraceIdHex(uint64_t id);
// Inverse of TraceIdHex; also accepts plain decimal.  0 on parse failure.
uint64_t ParseTraceId(const std::string& text);

}  // namespace sdp

#endif  // SDPOPT_OBS_DTRACE_H_
