#include "obs/http_client.h"

#include <unistd.h>

#include "common/socket_util.h"

namespace sdp {

bool HttpGetLocal(int port, const std::string& path_and_query,
                  std::string* body, std::string* error, int timeout_ms) {
  std::string connect_error;
  const int fd = ConnectLocalhost(port, timeout_ms, &connect_error);
  if (fd < 0) {
    if (error != nullptr) *error = "connect: " + connect_error;
    return false;
  }
  SetIoTimeout(fd, timeout_ms);
  const std::string request = "GET " + path_and_query +
                              " HTTP/1.0\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  if (!WriteFull(fd, request.data(), request.size())) {
    ::close(fd);
    if (error != nullptr) *error = "request write failed";
    return false;
  }
  // Read to EOF (the server closes after one response).
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      ::close(fd);
      if (error != nullptr) *error = "response read failed";
      return false;
    }
    if (n == 0) break;
    response.append(buf, static_cast<size_t>(n));
    if (response.size() > (64u << 20)) {
      ::close(fd);
      if (error != nullptr) *error = "response too large";
      return false;
    }
  }
  ::close(fd);
  const size_t line_end = response.find("\r\n");
  if (line_end == std::string::npos ||
      response.compare(0, 5, "HTTP/") != 0) {
    if (error != nullptr) *error = "malformed response";
    return false;
  }
  const size_t sp = response.find(' ');
  if (sp == std::string::npos || sp + 4 > line_end) {
    if (error != nullptr) *error = "malformed status line";
    return false;
  }
  const std::string status = response.substr(sp + 1, 3);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (error != nullptr) *error = "missing header terminator";
    return false;
  }
  if (status != "200") {
    if (error != nullptr) *error = "status " + status;
    return false;
  }
  if (body != nullptr) *body = response.substr(header_end + 4);
  return true;
}

}  // namespace sdp
