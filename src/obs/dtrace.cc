#include "obs/dtrace.h"

#include <stdio.h>
#include <stdlib.h>

namespace sdp {

namespace {

thread_local TraceContext tls_context;

}  // namespace

uint64_t DtraceMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

uint64_t DtraceHash(const std::string& s) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis.
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;  // FNV prime.
  }
  return h;
}

uint64_t MintTraceId(uint64_t request_id, uint64_t routing_key_hash) {
  const uint64_t id = DtraceMix64(request_id ^ DtraceMix64(routing_key_hash));
  return id == 0 ? 1 : id;
}

TraceContext CurrentTraceContext() { return tls_context; }

SpanScope::SpanScope(TraceContext context) : prev_(tls_context) {
  tls_context = context;
}

SpanScope::~SpanScope() { tls_context = prev_; }

std::string TraceIdHex(uint64_t id) {
  char buf[17];
  snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(id));
  return std::string(buf);
}

uint64_t ParseTraceId(const std::string& text) {
  if (text.empty()) return 0;
  // 16 hex chars = the TraceIdHex form; anything shorter parses as
  // decimal first so "42" round-trips, falling back to hex.
  char* end = nullptr;
  if (text.size() == 16) {
    const uint64_t v = strtoull(text.c_str(), &end, 16);
    return end != nullptr && *end == '\0' ? v : 0;
  }
  const uint64_t v = strtoull(text.c_str(), &end, 10);
  if (end != nullptr && *end == '\0') return v;
  const uint64_t hex = strtoull(text.c_str(), &end, 16);
  return end != nullptr && *end == '\0' ? hex : 0;
}

}  // namespace sdp
