#include "obs/introspection.h"

#include <stdio.h>
#include <stdlib.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "common/budget.h"
#include "obs/dtrace.h"
#include "obs/flight_recorder.h"
#include "obs/prof/prof.h"
#include "obs/prof/prof_export.h"
#include "obs/prof/profiler.h"
#include "obs/recorder_export.h"
#include "obs/slo.h"
#include "optimizer/fallback.h"
#include "service/optimizer_service.h"

#ifndef SDP_GIT_SHA
#define SDP_GIT_SHA "unknown"
#endif
#ifndef SDP_GIT_DIRTY
#define SDP_GIT_DIRTY 0
#endif

namespace sdp {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Pulls `key` out of an application/x-www-form-urlencoded query string.
// The endpoints take only simple unescaped values, so no %-decoding.
std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

}  // namespace

std::string BuildGitSha() { return SDP_GIT_SHA; }
bool BuildGitDirty() { return SDP_GIT_DIRTY != 0; }

int MachineCores() {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 1;
}

std::string MachineGovernor() {
  FILE* f =
      fopen("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor", "r");
  if (f == nullptr) return "unknown";
  char buf[64] = {};
  const size_t n = fread(buf, 1, sizeof(buf) - 1, f);
  fclose(f);
  std::string governor(buf, n);
  while (!governor.empty() &&
         (governor.back() == '\n' || governor.back() == ' ')) {
    governor.pop_back();
  }
  return governor.empty() ? "unknown" : governor;
}

std::string RenderStatusz(const OptimizerService& service,
                          double uptime_seconds) {
  const ServiceConfig& config = service.config();
  const ServiceMetrics& m = service.metrics();
  const PlanCacheStats cache = service.cache_stats();
  std::ostringstream out;
  out << "sdpopt statusz\n"
      << "build_sha: " << BuildGitSha() << (BuildGitDirty() ? "-dirty" : "")
      << "\n"
      << "uptime_seconds: " << static_cast<uint64_t>(uptime_seconds) << "\n"
      << "stats_epoch: " << service.stats_epoch() << "\n"
      << "\n[config]\n"
      << "num_threads: " << config.num_threads << "\n"
      << "cache_enabled: " << (config.cache_enabled ? "true" : "false")
      << "\n"
      << "cache_stripes: " << config.cache_stripes << "\n"
      << "global_memory_cap_bytes: " << config.global_memory_cap_bytes
      << "\n"
      << "max_queue_depth: " << config.max_queue_depth << "\n"
      << "breaker_threshold: " << config.breaker_threshold << "\n"
      << "breaker_cooldown: " << config.breaker_cooldown << "\n"
      << "max_opt_threads: " << config.max_opt_threads << "\n"
      << "\n[breakers]\n";
  for (int r = 0; r < 4; ++r) {
    const FallbackRung rung = static_cast<FallbackRung>(r);
    out << FallbackRungName(rung) << ": "
        << (service.breakers().For(rung).open() ? "open" : "closed") << "\n";
  }
  out << "\n[rungs]\n"
      << "dp: " << m.rung_dp.load() << "\n"
      << "idp: " << m.rung_idp.load() << "\n"
      << "sdp: " << m.rung_sdp.load() << "\n"
      << "greedy: " << m.rung_greedy.load() << "\n"
      << "goo: " << m.rung_goo.load() << "\n";
  out << "\n[admission]\n"
      << "admitted_bytes: " << service.admitted_bytes() << "\n"
      << "admission_waits: " << m.admission_waits.load() << "\n"
      << "admission_timeouts: " << m.admission_timeouts.load() << "\n"
      << "requests_rejected: " << m.requests_rejected.load() << "\n"
      << "shed_with_retry_hint: " << m.shed_with_retry_hint.load() << "\n"
      << "queue_depth: " << m.queue_depth.load() << "\n"
      << "inflight: " << m.inflight.load() << "\n"
      << "\n[memory]\n"
      << "bytes_charged_total: " << m.bytes_charged.load() << "\n"
      << "request_peak_bytes: " << m.request_peak_bytes.load() << "\n"
      << "plan_cache_entries: " << cache.entries << "\n"
      << "plan_cache_resident_bytes: " << cache.resident_bytes << "\n"
      << "\n[requests]\n"
      << "submitted: " << m.requests_submitted.load() << "\n"
      << "completed: " << m.requests_completed.load() << "\n"
      << "infeasible: " << m.requests_infeasible.load() << "\n"
      << "degraded: " << m.requests_degraded.load() << "\n"
      << "cache_hits: " << m.cache_hits.load() << "\n"
      << "cache_misses: " << m.cache_misses.load() << "\n"
      << "\n[flight_recorder]\n"
      << "enabled: "
      << (FlightRecorder::Global().enabled() ? "true" : "false") << "\n"
      << "events_recorded: " << FlightRecorder::Global().events_recorded()
      << "\n"
      << "dump_signals: " << FlightRecorder::Global().dump_signals() << "\n";
  const SamplingProfiler& prof = SamplingProfiler::Instance();
  out << "\n[profiler]\n"
      << "running: " << (prof.running() ? "true" : "false") << "\n"
      << "hz: " << prof.hz() << "\n"
      << "samples_recorded: " << prof.samples_recorded() << "\n"
      << "samples_missed: " << prof.samples_missed() << "\n"
      << "alloc_counters: "
      << (ProfAllocCountersEnabled() ? "enabled" : "disabled") << "\n";
  const SloTracker* slo = service.slo();
  if (slo != nullptr) {
    out << "\n[slo]\n" << slo->StatuszSection(NowSeconds());
  }
  return out.str();
}

std::string RenderTracez(const std::string& status_filter, size_t limit) {
  const ObsSnapshot snap = FlightRecorder::Global().Snapshot();

  // Reconstruct per-request timelines: events are seq-ordered, so walking
  // once groups each request's events in causal order.
  struct Timeline {
    std::vector<const ObsEvent*> events;
    const ObsEvent* end = nullptr;  // The kRequestEnd event, if seen.
  };
  std::map<uint64_t, Timeline> by_request;
  for (const ObsEvent& ev : snap.events) {
    if (ev.request_id == 0) continue;
    Timeline& t = by_request[ev.request_id];
    t.events.push_back(&ev);
    if (static_cast<ObsKind>(ev.kind) == ObsKind::kRequestEnd) t.end = &ev;
  }

  // Completed requests only, most recent first (by end seq).
  std::vector<const Timeline*> completed;
  for (const auto& entry : by_request) {
    const Timeline& t = entry.second;
    if (t.end == nullptr) continue;
    if (!status_filter.empty() &&
        status_filter !=
            OptStatusCodeName(static_cast<OptStatusCode>(t.end->code))) {
      continue;
    }
    completed.push_back(&t);
  }
  std::sort(completed.begin(), completed.end(),
            [](const Timeline* x, const Timeline* y) {
              return x->end->seq > y->end->seq;
            });
  if (limit > 0 && completed.size() > limit) completed.resize(limit);

  ObsExportOptions render;
  render.include_timing = true;
  std::ostringstream out;
  out << "sdpopt tracez: " << completed.size()
      << " completed request timeline(s)";
  if (!status_filter.empty()) out << " with status " << status_filter;
  out << " (" << snap.events.size() << " events in recorder, "
      << snap.dropped << " dropped)\n";
  for (const Timeline* t : completed) {
    out << "\n--- request " << t->end->request_id << " status "
        << OptStatusCodeName(static_cast<OptStatusCode>(t->end->code))
        << " (" << t->events.size() << " events) ---\n";
    for (const ObsEvent* ev : t->events) {
      out << ObsEventToJson(*ev, render) << "\n";
    }
  }
  return out.str();
}

std::string RenderProfilez(double seconds, const std::string& format,
                           int hz) {
  SamplingProfiler& prof = SamplingProfiler::Instance();
  const bool was_running = prof.running();
  if (!was_running) {
    // One-shot capture: profile this process for `seconds`, then render.
    // The request thread sleeps while SIGPROF samples whichever threads
    // are burning CPU.
    if (seconds <= 0) seconds = 1.0;
    seconds = std::clamp(seconds, 0.05, 30.0);
    prof.Reset();
    std::string error;
    if (!prof.Start(hz, &error)) {
      return "profilez error: " + error + "\n";
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    prof.Stop();
  }
  const std::vector<SamplingProfiler::Sample> samples = prof.Snapshot();
  if (format == "json") {
    return RenderProfileJson(samples, ProfAllocSnapshot(), prof.hz(),
                             prof.samples_recorded(), prof.samples_missed());
  }
  return RenderFolded(samples);
}

std::string RenderFlightRecorderz(uint64_t trace_id, bool structural) {
  ObsExportOptions render;
  render.include_timing = !structural;
  render.trace_id = trace_id;
  render.structural = structural;
  return ObsSnapshotToJsonl(FlightRecorder::Global().Snapshot(), render);
}

IntrospectionServer::IntrospectionServer(const OptimizerService* service)
    : service_(service),
      start_seconds_(NowSeconds()),
      http_([this](const HttpRequest& req) { return Handle(req); }) {}

IntrospectionServer::~IntrospectionServer() { Stop(); }

bool IntrospectionServer::Start(int port, std::string* error) {
  return http_.Start(port, error);
}

void IntrospectionServer::Stop() { http_.Stop(); }

HttpResponse IntrospectionServer::Handle(const HttpRequest& request) const {
  HttpResponse resp;
  if (request.path == "/") {
    resp.body =
        "sdpopt introspection\n"
        "  /metrics          Prometheus exposition\n"
        "  /statusz          build, config, breakers, admission, gauges\n"
        "  /tracez           recent request timelines"
        " (?status=NAME&limit=K)\n"
        "  /flightrecorderz  full flight-recorder dump (JSONL;"
        " ?trace=HEX&structural=1)\n"
        "  /profilez         sampling CPU profile"
        " (?seconds=S&format=folded|json)\n";
    return resp;
  }
  if (request.path == "/metrics") {
    resp.body = service_->metrics().PrometheusText();
    const SloTracker* slo = service_->slo();
    if (slo != nullptr) {
      resp.body += slo->PrometheusText("", NowSeconds());
    }
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    return resp;
  }
  if (request.path == "/statusz") {
    resp.body = RenderStatusz(*service_, NowSeconds() - start_seconds_);
    return resp;
  }
  if (request.path == "/tracez") {
    const std::string status = QueryParam(request.query, "status");
    size_t limit = 16;
    const std::string limit_text = QueryParam(request.query, "limit");
    if (!limit_text.empty()) {
      limit = static_cast<size_t>(strtoull(limit_text.c_str(), nullptr, 10));
    }
    resp.body = RenderTracez(status, limit);
    return resp;
  }
  if (request.path == "/profilez") {
    double seconds = 1.0;
    const std::string seconds_text = QueryParam(request.query, "seconds");
    if (!seconds_text.empty()) seconds = strtod(seconds_text.c_str(), nullptr);
    std::string format = QueryParam(request.query, "format");
    if (format.empty()) format = "folded";
    resp.body = RenderProfilez(seconds, format);
    if (format == "json") {
      resp.content_type = "application/json; charset=utf-8";
    }
    return resp;
  }
  if (request.path == "/flightrecorderz") {
    const uint64_t trace_id = ParseTraceId(QueryParam(request.query, "trace"));
    const bool structural = QueryParam(request.query, "structural") == "1";
    resp.body = RenderFlightRecorderz(trace_id, structural);
    resp.content_type = "application/jsonl; charset=utf-8";
    return resp;
  }
  resp.status = 404;
  resp.body = "no such endpoint: " + request.path + "\n";
  return resp;
}

}  // namespace sdp
