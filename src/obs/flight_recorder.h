#ifndef SDPOPT_OBS_FLIGHT_RECORDER_H_
#define SDPOPT_OBS_FLIGHT_RECORDER_H_

#include <stdint.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

namespace sdp {

// Always-on flight recorder: the optimizer's black box.
//
// Instrumented code paths (the DP/IDP/SDP level loops, the fallback
// ladder, budget checkpoints, the service request lifecycle, the plan
// cache, fault-injection sites) append compact fixed-size binary events to
// a per-thread lock-free ring buffer.  Recording never blocks, never
// allocates after a thread's first event, and never influences the search;
// when the recorder is disabled every instrumentation point costs exactly
// one predicted branch (a relaxed atomic load).
//
// Unlike the trace layer (trace/trace.h), which must be requested up
// front, allocates per event and records everything, the flight recorder
// is cheap enough to leave on in production: it keeps only the last
// kRingEvents events per thread, so after any failure the rings hold the
// recent history that explains it.  Snapshot() drains every ring into one
// causally-ordered timeline (events carry a global sequence number), and
// the service dumps that timeline to a JSONL file whenever a request ends
// with a non-OK OptStatus, a rung circuit breaker trips, or a fault
// injection site fires -- see recorder_export.h.
//
// Event payloads are deliberately timing-free (wall-clock lives only in
// the ts_ns stamp, which deterministic dumps omit): two runs of the same
// seeded workload at the same opt_threads produce byte-identical dumps.

enum class ObsKind : uint8_t {
  kNone = 0,
  // Service request lifecycle.
  kRequestBegin = 1,   // --
  kRequestEnd = 2,     // code=status, a=cache_hit, b=plans_costed
  kAdmissionWait = 3,  // b=budget bytes requested
  kShed = 4,           // code=status, b=retry-after hint ms
  // Enumeration spans (one per TraceLevelScope).
  kLevelBegin = 5,  // code=phase, a=level, b=iteration
  kLevelEnd = 6,    // code=phase, a=level, b=plans, c=pairs, d=memo bytes,
                    // e=jcrs (b/c/e are deltas within the span)
  // Degradation ladder.
  kRungAttempt = 7,    // code=status, a=rung, b=plans_costed
  kRungSkip = 8,       // a=rung (circuit breaker open)
  kRungResolved = 9,   // code=status, a=rung, b=retries
  kBreakerOpen = 10,   // a=rung
  kBreakerClose = 11,  // a=rung
  // Resource governance.
  kBudgetTrip = 12,  // code=status, b=checkpoint ordinal, c=plans_costed
  // Plan cache traffic.
  kCacheHit = 13,            // b=key hash
  kCacheMiss = 14,           // b=key hash
  kCacheFill = 15,           // b=key hash
  kCacheAbandon = 16,        // b=key hash
  kCacheFailPropagated = 17, // b=key hash
  // Intra-query parallel enumeration (owner thread, after the merge).
  kParallelLevel = 18,  // code=threads, a=level, b=shards, c=pairs,
                        // d=candidates costed
  // Fault injection.
  kFaultFired = 19,  // b,c = site tag chars (first 16 bytes)
  // Fleet router spans (recorded in the router's process; see
  // fleet/router.h).  All are tagged with the routed request's trace
  // context via SpanScope (obs/dtrace.h).
  kRouteBegin = 20,     // a=owner replica, b=routing-key hash
  kRouteAttempt = 21,   // a=replica tried, b=attempt ordinal
  kRouteFailover = 22,  // a=replica that failed, b=attempt ordinal
  kRouteEnd = 23,       // code=ok, a=replica that answered, b=attempts
  kBroadcastFill = 24,  // a=origin replica, b=peers delivered, c=failures
  // Cross-replica cache-fill install (recorded by the receiving replica
  // under the originating request's trace context).
  kBroadcastInstall = 25,  // code=installed, b=cache-key hash
  // Router health probe (never request/trace attributed).
  kHealthProbe = 26,  // code=healthy, a=replica
  // SLO watchdog: an objective entered its burning state (obs/slo.h).
  // Attributed to the offending request.  Payloads are deliberately
  // timing-free: the measured value only travels for the (deterministic)
  // plan-quality objective.
  kSloBurn = 27,  // code=objective kind (0=latency 1=quality), a=rung,
                  // b=threshold bits, d=observed ratio bits (quality only)
  // Self-healing supervision (never request/trace attributed).
  kReplicaExit = 28,     // code=crashed, a=replica, b=pid, c=exit status
  kReplicaRespawn = 29,  // a=replica, b=new pid, c=restart ordinal,
                         // d=backoff ms applied before the respawn
  kReplicaCondemn = 30,  // a=replica, b=rapid crash count
  kPoisonStrike = 31,    // a=replica that crashed, b=key hash, c=strikes
  kQuarantineServe = 32, // code=strikes, b=key hash (router side)
  kRetryShed = 33,       // a=attempts made, b=retries spent, c=allowance
};

const char* ObsKindName(ObsKind kind);

// Phase codes for kLevelBegin/kLevelEnd (mirrors the TraceLevelScope
// phase strings).
enum class ObsPhase : uint8_t {
  kUnknown = 0,
  kLeaves = 1,
  kLevel = 2,
  kBalloon = 3,
  kGreedy = 4,
  kEnumerate = 5,
};

const char* ObsPhaseName(uint8_t phase);
uint8_t ObsPhaseCode(const char* phase);

// One recorded event: 80 bytes, plain data.  Which of a..e are meaningful
// depends on `kind` (see the enum above).
struct ObsEvent {
  uint64_t seq = 0;         // Global causal order across all threads.
  uint64_t ts_ns = 0;       // Steady-clock ns since recorder epoch.
  uint64_t request_id = 0;  // 0 = not attributed to a request.
  uint8_t kind = 0;         // ObsKind.
  uint8_t code = 0;         // Status / phase / thread count (see kind).
  uint16_t thread = 0;      // Dense ordinal of the recording thread.
  uint32_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  uint64_t d = 0;
  uint64_t e = 0;
  // Distributed-trace attribution (obs/dtrace.h), captured from the
  // recording thread's active SpanScope.  0 = context-free.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

// A drained, merged, seq-ordered copy of every ring.
struct ObsSnapshot {
  std::vector<ObsEvent> events;
  // Events overwritten before this snapshot could copy them (ring
  // wraparound); the timeline is still contiguous per thread from each
  // ring's oldest surviving event.
  uint64_t dropped = 0;
};

class FlightRecorder {
 public:
  // Events retained per thread.  Power of two; at 80 bytes each a ring
  // costs 160 KiB, allocated on the thread's first recorded event.
  static constexpr uint64_t kRingEvents = 2048;

  static FlightRecorder& Global();

  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Hot path.  When disabled this is one predicted branch; when enabled it
  // is a seq fetch_add, a clock read and ten relaxed stores into this
  // thread's ring.  Safe from any thread; each thread writes only its own
  // ring.
  void Record(ObsKind kind, uint8_t code = 0, uint32_t a = 0, uint64_t b = 0,
              uint64_t c = 0, uint64_t d = 0, uint64_t e = 0) {
    if (!enabled()) return;
    RecordSlow(kind, code, a, b, c, d, e);
  }

  // Attributes events recorded on this thread to `request_id` for the
  // scope's lifetime (the service wraps each request's execution).
  class ScopedRequest {
   public:
    explicit ScopedRequest(uint64_t request_id);
    ~ScopedRequest();
    ScopedRequest(const ScopedRequest&) = delete;
    ScopedRequest& operator=(const ScopedRequest&) = delete;

   private:
    uint64_t prev_;
  };

  // Monotonic count of "something went wrong" signals: fault-injection
  // fires and circuit-breaker opens.  The service samples it around each
  // request; a delta triggers a flight-recorder dump even when the request
  // itself resolved OK (e.g. the ladder recovered from an injected fault).
  uint64_t dump_signals() const {
    return dump_signals_.load(std::memory_order_relaxed);
  }
  void SignalDump() { dump_signals_.fetch_add(1, std::memory_order_relaxed); }

  // Drains every ring into one seq-ordered timeline.  Safe to call from
  // any thread while recording continues: concurrently-overwritten slots
  // are detected and dropped, never returned torn.
  ObsSnapshot Snapshot() const;

  uint64_t events_recorded() const {
    return seq_.load(std::memory_order_relaxed);
  }

  // Resets sequence numbers, dump signals, the epoch, and every ring's
  // contents so a test starts from an empty, deterministic state.  Rings
  // stay registered (thread-local pointers remain valid).  Must not race
  // concurrent Record() calls.
  void ResetForTesting();

 private:

  // 10 words of 8 bytes = one 80-byte event (the last two carry the
  // distributed-trace context).
  static constexpr size_t kWordsPerEvent = 10;

  struct Ring {
    std::atomic<uint64_t> head{0};  // Total events ever appended.
    std::unique_ptr<std::atomic<uint64_t>[]> words;
    uint16_t ordinal = 0;
  };

  FlightRecorder();
  void RecordSlow(ObsKind kind, uint8_t code, uint32_t a, uint64_t b,
                  uint64_t c, uint64_t d, uint64_t e);
  Ring* ThisThreadRing();
  uint64_t NowNs() const;

  // The calling thread's ring, cached after first registration.  Owned by
  // the registry; rings are never destroyed, so the cached pointer stays
  // valid for the thread's lifetime (including across ResetForTesting).
  static thread_local Ring* tls_ring_;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> dump_signals_{0};
  std::atomic<int64_t> epoch_ns_{0};

  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace sdp

#endif  // SDPOPT_OBS_FLIGHT_RECORDER_H_
