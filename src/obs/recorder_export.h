#ifndef SDPOPT_OBS_RECORDER_EXPORT_H_
#define SDPOPT_OBS_RECORDER_EXPORT_H_

#include <string>
#include <vector>

#include "obs/flight_recorder.h"

namespace sdp {

// Renders flight-recorder snapshots to JSONL: one JSON object per event,
// fields decoded per event kind (same file shape as trace/trace_export's
// ExportJsonl, so the existing jq tooling applies).  Timing is omitted by
// default for the same reason the trace exporter omits it: two runs of the
// same seeded workload then produce byte-identical dumps, which makes a
// crash dump diffable against a replay.

struct ObsExportOptions {
  // Include the ts_ns stamp (and the snapshot's dropped count) in the
  // output.  On for live endpoints, off for deterministic crash dumps.
  bool include_timing = false;
  // Restrict to one request id (0 = all requests).
  uint64_t request_id = 0;
  // Restrict to one distributed trace (0 = no filter).  Used by the
  // router's span collector against /flightrecorderz.
  uint64_t trace_id = 0;
  // Structural rendering: omit seq and thread ordinals in addition to
  // timing.  Within one process, seq/thread are deterministic for a
  // seeded single-request replay, but across a fleet they absorb
  // unrelated traffic (health probes, sibling requests), so the merged
  // /dtracez timeline renders structurally -- event order carries the
  // causality instead.  Also skips kParallelLevel events, whose payload
  // is thread-count-dependent by definition.
  bool structural = false;
};

std::string ObsEventToJson(const ObsEvent& event,
                           const ObsExportOptions& options = {});
std::string ObsSnapshotToJsonl(const ObsSnapshot& snapshot,
                               const ObsExportOptions& options = {});

// Snapshots the global recorder and writes the deterministic JSONL dump to
// `path`.  Returns false (filling *error if given) when the file cannot be
// written.  This is the crash-dump entry point the service calls when a
// request ends badly; tools can also trigger it on demand.
bool DumpFlightRecorderToFile(const std::string& path,
                              std::string* error = nullptr,
                              const ObsExportOptions& options = {});

// Decodes a kFaultFired event's packed site tag (b/c chars).
std::string ObsFaultSiteName(const ObsEvent& event);

// Rung code -> name for ladder events ("dp"/"idp"/"sdp"/"greedy").
const char* ObsRungName(uint32_t rung);

}  // namespace sdp

#endif  // SDPOPT_OBS_RECORDER_EXPORT_H_
