#include "obs/recorder_export.h"

#include <string.h>

#include <fstream>
#include <limits>
#include <sstream>

#include "common/budget.h"
#include "obs/dtrace.h"

namespace sdp {

namespace {

const char* StatusName(uint8_t code) {
  return OptStatusCodeName(static_cast<OptStatusCode>(code));
}

void AppendCommon(std::ostringstream* out, const ObsEvent& ev,
                  const ObsExportOptions& options) {
  *out << "{";
  if (!options.structural) {
    *out << "\"seq\":" << ev.seq;
    if (options.include_timing) {
      *out << ",\"ts_ns\":" << ev.ts_ns;
    }
    *out << ",\"thread\":" << ev.thread << ",";
  }
  *out << "\"req\":" << ev.request_id << ",\"event\":\""
       << ObsKindName(static_cast<ObsKind>(ev.kind)) << "\"";
  if (ev.trace_id != 0) {
    *out << ",\"trace\":\"" << TraceIdHex(ev.trace_id) << "\",\"span\":"
         << ev.span_id;
  }
}

// Renders a double bit pattern back to a JSON-safe number (NaN and
// infinities become strings -- JSON has no literal for them).
void AppendDoubleBits(std::ostringstream* out, uint64_t bits) {
  double v;
  static_assert(sizeof(v) == sizeof(bits), "");
  memcpy(&v, &bits, sizeof(v));
  if (v != v) {
    *out << "\"nan\"";
  } else if (v == std::numeric_limits<double>::infinity()) {
    *out << "\"inf\"";
  } else if (v == -std::numeric_limits<double>::infinity()) {
    *out << "\"-inf\"";
  } else {
    *out << v;
  }
}

}  // namespace

const char* ObsRungName(uint32_t rung) {
  switch (rung) {
    case 0:
      return "dp";
    case 1:
      return "idp";
    case 2:
      return "sdp";
    case 3:
      return "greedy";
  }
  return "unknown";
}

std::string ObsFaultSiteName(const ObsEvent& event) {
  // kFaultFired packs the site tag's first 16 chars into b (bytes 0..7)
  // and c (bytes 8..15), little-endian, NUL-padded.
  char buf[17];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((event.b >> (8 * i)) & 0xff);
    buf[8 + i] = static_cast<char>((event.c >> (8 * i)) & 0xff);
  }
  buf[16] = '\0';
  return std::string(buf);
}

std::string ObsEventToJson(const ObsEvent& ev,
                           const ObsExportOptions& options) {
  std::ostringstream out;
  AppendCommon(&out, ev, options);
  switch (static_cast<ObsKind>(ev.kind)) {
    case ObsKind::kNone:
      break;
    case ObsKind::kRequestBegin:
      break;
    case ObsKind::kRequestEnd:
      out << ",\"status\":\"" << StatusName(ev.code)
          << "\",\"cache_hit\":" << (ev.a != 0 ? "true" : "false")
          << ",\"plans_costed\":" << ev.b;
      break;
    case ObsKind::kAdmissionWait:
      out << ",\"bytes\":" << ev.b;
      break;
    case ObsKind::kShed:
      out << ",\"status\":\"" << StatusName(ev.code)
          << "\",\"retry_after_ms\":" << ev.b;
      break;
    case ObsKind::kLevelBegin:
      out << ",\"phase\":\"" << ObsPhaseName(ev.code)
          << "\",\"level\":" << ev.a << ",\"iteration\":" << ev.b;
      break;
    case ObsKind::kLevelEnd:
      out << ",\"phase\":\"" << ObsPhaseName(ev.code)
          << "\",\"level\":" << ev.a << ",\"plans\":" << ev.b
          << ",\"pairs\":" << ev.c << ",\"memo_bytes\":" << ev.d
          << ",\"jcrs\":" << ev.e;
      break;
    case ObsKind::kRungAttempt:
      out << ",\"rung\":\"" << ObsRungName(ev.a) << "\",\"status\":\""
          << StatusName(ev.code) << "\",\"plans_costed\":" << ev.b;
      break;
    case ObsKind::kRungSkip:
      out << ",\"rung\":\"" << ObsRungName(ev.a) << "\"";
      break;
    case ObsKind::kRungResolved:
      out << ",\"rung\":\"" << ObsRungName(ev.a) << "\",\"status\":\""
          << StatusName(ev.code) << "\",\"retries\":" << ev.b;
      break;
    case ObsKind::kBreakerOpen:
    case ObsKind::kBreakerClose:
      out << ",\"rung\":\"" << ObsRungName(ev.a) << "\"";
      break;
    case ObsKind::kBudgetTrip:
      out << ",\"status\":\"" << StatusName(ev.code)
          << "\",\"checkpoint\":" << ev.b << ",\"plans_costed\":" << ev.c;
      break;
    case ObsKind::kCacheHit:
    case ObsKind::kCacheMiss:
    case ObsKind::kCacheFill:
    case ObsKind::kCacheAbandon:
    case ObsKind::kCacheFailPropagated:
      out << ",\"key_hash\":" << ev.b;
      break;
    case ObsKind::kParallelLevel:
      out << ",\"threads\":" << static_cast<uint32_t>(ev.code)
          << ",\"level\":" << ev.a << ",\"shards\":" << ev.b
          << ",\"pairs\":" << ev.c << ",\"candidates_costed\":" << ev.d;
      break;
    case ObsKind::kFaultFired:
      out << ",\"site\":\"" << ObsFaultSiteName(ev) << "\"";
      break;
    case ObsKind::kRouteBegin:
      out << ",\"replica\":" << ev.a << ",\"key_hash\":" << ev.b;
      break;
    case ObsKind::kRouteAttempt:
    case ObsKind::kRouteFailover:
      out << ",\"replica\":" << ev.a << ",\"attempt\":" << ev.b;
      break;
    case ObsKind::kRouteEnd:
      out << ",\"ok\":" << (ev.code != 0 ? "true" : "false")
          << ",\"replica\":" << ev.a << ",\"attempts\":" << ev.b;
      break;
    case ObsKind::kBroadcastFill:
      out << ",\"origin\":" << ev.a << ",\"delivered\":" << ev.b
          << ",\"failures\":" << ev.c;
      break;
    case ObsKind::kBroadcastInstall:
      out << ",\"installed\":" << (ev.code != 0 ? "true" : "false")
          << ",\"key_hash\":" << ev.b;
      break;
    case ObsKind::kHealthProbe:
      out << ",\"healthy\":" << (ev.code != 0 ? "true" : "false")
          << ",\"replica\":" << ev.a;
      break;
    case ObsKind::kSloBurn:
      out << ",\"objective\":\"" << (ev.code == 0 ? "latency" : "quality")
          << "\",\"rung\":\"" << ObsRungName(ev.a) << "\",\"threshold\":";
      AppendDoubleBits(&out, ev.b);
      if (ev.code != 0) {
        out << ",\"observed\":";
        AppendDoubleBits(&out, ev.d);
      }
      break;
    case ObsKind::kReplicaExit:
      out << ",\"crashed\":" << (ev.code != 0 ? "true" : "false")
          << ",\"replica\":" << ev.a << ",\"pid\":" << ev.b
          << ",\"exit_status\":" << ev.c;
      break;
    case ObsKind::kReplicaRespawn:
      out << ",\"replica\":" << ev.a << ",\"pid\":" << ev.b
          << ",\"restarts\":" << ev.c << ",\"backoff_ms\":" << ev.d;
      break;
    case ObsKind::kReplicaCondemn:
      out << ",\"replica\":" << ev.a << ",\"rapid_crashes\":" << ev.b;
      break;
    case ObsKind::kPoisonStrike:
      out << ",\"replica\":" << ev.a << ",\"key_hash\":" << ev.b
          << ",\"strikes\":" << ev.c;
      break;
    case ObsKind::kQuarantineServe:
      out << ",\"strikes\":" << ev.code << ",\"key_hash\":" << ev.b;
      break;
    case ObsKind::kRetryShed:
      out << ",\"attempts\":" << ev.a << ",\"retries_spent\":" << ev.b
          << ",\"allowance\":" << ev.c;
      break;
  }
  out << "}";
  return out.str();
}

std::string ObsSnapshotToJsonl(const ObsSnapshot& snapshot,
                               const ObsExportOptions& options) {
  std::ostringstream out;
  if (options.include_timing) {
    out << "{\"meta\":\"flight_recorder\",\"events\":" << snapshot.events.size()
        << ",\"dropped\":" << snapshot.dropped << "}\n";
  }
  for (const ObsEvent& ev : snapshot.events) {
    if (options.request_id != 0 && ev.request_id != options.request_id) {
      continue;
    }
    if (options.trace_id != 0 && ev.trace_id != options.trace_id) {
      continue;
    }
    if (options.structural &&
        static_cast<ObsKind>(ev.kind) == ObsKind::kParallelLevel) {
      continue;
    }
    out << ObsEventToJson(ev, options) << "\n";
  }
  return out.str();
}

bool DumpFlightRecorderToFile(const std::string& path, std::string* error,
                              const ObsExportOptions& options) {
  const ObsSnapshot snap = FlightRecorder::Global().Snapshot();
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  out << ObsSnapshotToJsonl(snap, options);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write failed for " + path;
    return false;
  }
  return true;
}

}  // namespace sdp
