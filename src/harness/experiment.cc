#include "harness/experiment.h"

#include <cstdio>
#include <future>
#include <ostream>
#include <utility>

#include "common/check.h"
#include "core/sdp.h"
#include "optimizer/dp.h"
#include "optimizer/idp.h"
#include "service/optimizer_service.h"

namespace sdp {

AlgorithmSpec AlgorithmSpec::DP() {
  AlgorithmSpec s;
  s.name = "DP";
  s.kind = Kind::kDP;
  return s;
}

AlgorithmSpec AlgorithmSpec::IDP(int k) {
  AlgorithmSpec s;
  s.name = "IDP(" + std::to_string(k) + ")";
  s.kind = Kind::kIDP;
  s.idp.k = k;
  return s;
}

AlgorithmSpec AlgorithmSpec::IDP2(int k) {
  AlgorithmSpec s;
  s.name = "IDP2(" + std::to_string(k) + ")";
  s.kind = Kind::kIDP2;
  s.idp.k = k;
  return s;
}

AlgorithmSpec AlgorithmSpec::SDP() {
  AlgorithmSpec s;
  s.name = "SDP";
  s.kind = Kind::kSDP;
  return s;
}

AlgorithmSpec AlgorithmSpec::SDPWith(const SdpConfig& config,
                                     std::string name) {
  AlgorithmSpec s;
  s.name = std::move(name);
  s.kind = Kind::kSDP;
  s.sdp = config;
  return s;
}

OptimizeResult RunAlgorithm(const AlgorithmSpec& spec, const Query& query,
                            const CostModel& cost,
                            const OptimizerOptions& options) {
  switch (spec.kind) {
    case AlgorithmSpec::Kind::kDP:
      return OptimizeDP(query, cost, options);
    case AlgorithmSpec::Kind::kIDP:
      return OptimizeIDP(query, cost, spec.idp, options);
    case AlgorithmSpec::Kind::kIDP2:
      return OptimizeIDP2(query, cost, spec.idp, options);
    case AlgorithmSpec::Kind::kSDP: {
      OptimizeResult r = OptimizeSDP(query, cost, spec.sdp, options);
      r.algorithm = spec.name;
      return r;
    }
  }
  SDP_CHECK(false);
  return OptimizeResult();
}

namespace {

// Shared aggregation core: consumes one query's results (one per
// algorithm, in algorithm order) at a time, so the serial path never holds
// more than one query's plans and the service path can feed futures as
// they resolve.
class ReportAccumulator {
 public:
  ReportAccumulator(const std::vector<AlgorithmSpec>& algorithms,
                    std::string workload_name) {
    report_.workload_name = std::move(workload_name);
    report_.outcomes.resize(algorithms.size());
    for (size_t a = 0; a < algorithms.size(); ++a) {
      report_.outcomes[a].name = algorithms[a].name;
      if (algorithms[a].kind == AlgorithmSpec::Kind::kDP && dp_index_ < 0) {
        dp_index_ = static_cast<int>(a);
      }
      if (algorithms[a].kind == AlgorithmSpec::Kind::kSDP &&
          sdp_index_ < 0) {
        sdp_index_ = static_cast<int>(a);
      }
    }
    dp_always_feasible_ = dp_index_ >= 0;
  }

  void AddQuery(const std::vector<OptimizeResult>& results) {
    // Reference cost: DP when feasible, else SDP (the paper's convention
    // for scaled queries where DP runs out of memory).
    double reference = 0;
    if (dp_index_ >= 0 && results[dp_index_].feasible) {
      reference = results[dp_index_].cost;
    } else {
      dp_always_feasible_ = false;
      if (sdp_index_ >= 0 && results[sdp_index_].feasible) {
        reference = results[sdp_index_].cost;
      }
    }

    for (size_t a = 0; a < results.size(); ++a) {
      AlgorithmOutcome& out = report_.outcomes[a];
      const OptimizeResult& r = results[a];
      ++out.attempted;
      if (!r.feasible) continue;
      ++out.feasible;
      out.sum_seconds += r.elapsed_seconds;
      out.sum_peak_mb += r.peak_memory_mb;
      out.sum_plans_costed += static_cast<double>(r.counters.plans_costed);
      out.sum_jcrs += static_cast<double>(r.counters.jcrs_created);
      if (reference > 0) {
        out.quality.Add(r.cost / reference);
      }
    }
  }

  ExperimentReport Finish() {
    report_.reference_name = dp_always_feasible_ ? "DP" : "SDP";
    return std::move(report_);
  }

 private:
  ExperimentReport report_;
  int dp_index_ = -1;
  int sdp_index_ = -1;
  bool dp_always_feasible_ = false;
};

}  // namespace

ExperimentReport RunExperiment(const std::vector<Query>& queries,
                               const Catalog& catalog,
                               const StatsCatalog& stats,
                               const std::vector<AlgorithmSpec>& algorithms,
                               const OptimizerOptions& options,
                               std::string workload_name) {
  ReportAccumulator acc(algorithms, std::move(workload_name));
  for (const Query& query : queries) {
    CostModel cost(catalog, stats, query.graph, CostParams(),
                   query.filters);
    std::vector<OptimizeResult> results;
    results.reserve(algorithms.size());
    for (const AlgorithmSpec& spec : algorithms) {
      results.push_back(RunAlgorithm(spec, query, cost, options));
    }
    acc.AddQuery(results);
  }
  return acc.Finish();
}

ExperimentReport RunExperimentViaService(
    const std::vector<Query>& queries, const Catalog& catalog,
    const StatsCatalog& stats, const std::vector<AlgorithmSpec>& algorithms,
    const OptimizerOptions& options, std::string workload_name,
    const ServiceRunConfig& service_config, std::string* metrics_dump) {
  ServiceConfig config;
  config.num_threads = service_config.num_threads;
  config.cache_enabled = service_config.cache_enabled;
  OptimizerService service(catalog, stats, config);

  // Fan every (query, algorithm) pair out to the workers, then collect in
  // submission order so aggregation matches the serial loop exactly.
  std::vector<std::future<ServiceResult>> futures;
  futures.reserve(queries.size() * algorithms.size());
  for (const Query& query : queries) {
    for (const AlgorithmSpec& spec : algorithms) {
      ServiceRequest request;
      request.query = query;
      request.spec = spec;
      request.options = options;
      futures.push_back(service.Submit(std::move(request)));
    }
  }

  ReportAccumulator acc(algorithms, std::move(workload_name));
  size_t f = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<OptimizeResult> results;
    results.reserve(algorithms.size());
    for (size_t a = 0; a < algorithms.size(); ++a) {
      results.push_back(std::move(futures[f++].get().result));
    }
    acc.AddQuery(results);
  }
  if (metrics_dump != nullptr) *metrics_dump = service.metrics().Dump();
  return acc.Finish();
}

namespace {

std::string Fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

}  // namespace

void PrintQualityTable(std::ostream& os, const ExperimentReport& report) {
  os << "Plan Quality -- " << report.workload_name
     << "  (reference: " << report.reference_name << ")\n";
  os << "  Technique   feas/n      I%      G%      A%      B%        W"
        "      rho\n";
  for (const AlgorithmOutcome& o : report.outcomes) {
    char line[160];
    if (o.feasible == 0) {
      std::snprintf(line, sizeof(line),
                    "  %-10s  %4d/%-4d       *       *       *       *"
                    "        *        *\n",
                    o.name.c_str(), o.feasible, o.attempted);
    } else {
      std::snprintf(line, sizeof(line),
                    "  %-10s  %4d/%-4d  %6.1f  %6.1f  %6.1f  %6.1f  %7.2f"
                    "  %7.3f\n",
                    o.name.c_str(), o.feasible, o.attempted,
                    o.quality.Percent(QualityClass::kIdeal),
                    o.quality.Percent(QualityClass::kGood),
                    o.quality.Percent(QualityClass::kAcceptable),
                    o.quality.Percent(QualityClass::kBad), o.quality.worst,
                    o.quality.Rho());
    }
    os << line;
  }
}

void PrintOverheadTable(std::ostream& os, const ExperimentReport& report) {
  os << "Optimization Overheads -- " << report.workload_name << "\n";
  os << "  Technique   feas/n   Memory(MB)    Time(s)     Plans costed"
        "      JCRs\n";
  for (const AlgorithmOutcome& o : report.outcomes) {
    char line[160];
    if (o.feasible == 0) {
      std::snprintf(line, sizeof(line),
                    "  %-10s  %4d/%-4d          *          *            *"
                    "         *\n",
                    o.name.c_str(), o.feasible, o.attempted);
    } else {
      std::snprintf(line, sizeof(line),
                    "  %-10s  %4d/%-4d  %10.2f  %9.4f  %15s  %8.0f\n",
                    o.name.c_str(), o.feasible, o.attempted, o.AvgPeakMb(),
                    o.AvgSeconds(), Fmt("%.3g", o.AvgPlansCosted()).c_str(),
                    o.AvgJcrs());
    }
    os << line;
  }
}

}  // namespace sdp
