#ifndef SDPOPT_HARNESS_EXPERIMENT_H_
#define SDPOPT_HARNESS_EXPERIMENT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/sdp.h"
#include "metrics/quality.h"
#include "optimizer/idp.h"
#include "optimizer/optimizer_types.h"
#include "query/join_graph.h"
#include "stats/column_stats.h"

namespace sdp {

// One optimizer configuration under test.
struct AlgorithmSpec {
  enum class Kind { kDP, kIDP, kIDP2, kSDP };

  std::string name;
  Kind kind = Kind::kDP;
  IdpConfig idp;
  SdpConfig sdp;

  static AlgorithmSpec DP();
  static AlgorithmSpec IDP(int k);
  static AlgorithmSpec IDP2(int k);
  static AlgorithmSpec SDP();
  static AlgorithmSpec SDPWith(const SdpConfig& config, std::string name);
};

// Runs one optimizer configuration on one query.
OptimizeResult RunAlgorithm(const AlgorithmSpec& spec, const Query& query,
                            const CostModel& cost,
                            const OptimizerOptions& options);

// Aggregated results of one algorithm over a workload.
struct AlgorithmOutcome {
  std::string name;
  int attempted = 0;
  int feasible = 0;
  QualityDistribution quality;  // Ratios vs the experiment's reference.
  double sum_seconds = 0;
  double sum_peak_mb = 0;
  double sum_plans_costed = 0;
  double sum_jcrs = 0;

  double AvgSeconds() const { return feasible ? sum_seconds / feasible : 0; }
  double AvgPeakMb() const { return feasible ? sum_peak_mb / feasible : 0; }
  double AvgPlansCosted() const {
    return feasible ? sum_plans_costed / feasible : 0;
  }
  double AvgJcrs() const { return feasible ? sum_jcrs / feasible : 0; }
};

struct ExperimentReport {
  std::string workload_name;
  std::string reference_name;  // "DP" when feasible, else "SDP" (paper).
  std::vector<AlgorithmOutcome> outcomes;
};

// Optimizes every query with every algorithm and aggregates plan quality
// against the reference: DP's optimal cost when DP is feasible for the
// query, otherwise SDP's cost (the paper's convention once DP becomes
// infeasible).  Overheads are averaged over the algorithm's feasible runs.
ExperimentReport RunExperiment(const std::vector<Query>& queries,
                               const Catalog& catalog,
                               const StatsCatalog& stats,
                               const std::vector<AlgorithmSpec>& algorithms,
                               const OptimizerOptions& options,
                               std::string workload_name);

// How RunExperimentViaService drives the optimizer service.
struct ServiceRunConfig {
  int num_threads = 4;
  bool cache_enabled = true;
};

// Same contract (and, by per-request isolation, bit-identical reports
// modulo wall-clock fields) as RunExperiment, but every (query, algorithm)
// pair is optimized through a multi-threaded OptimizerService.  When
// `metrics_dump` is non-null it receives the service's metrics text after
// the workload drains.
ExperimentReport RunExperimentViaService(
    const std::vector<Query>& queries, const Catalog& catalog,
    const StatsCatalog& stats, const std::vector<AlgorithmSpec>& algorithms,
    const OptimizerOptions& options, std::string workload_name,
    const ServiceRunConfig& service_config,
    std::string* metrics_dump = nullptr);

// Paper-style tables.
void PrintQualityTable(std::ostream& os, const ExperimentReport& report);
void PrintOverheadTable(std::ostream& os, const ExperimentReport& report);

}  // namespace sdp

#endif  // SDPOPT_HARNESS_EXPERIMENT_H_
