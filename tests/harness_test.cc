#include "harness/experiment.h"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/workload.h"

namespace sdp {
namespace {

class HarnessTest : public ::testing::Test {
 protected:
  HarnessTest()
      : catalog_(MakeSyntheticCatalog(SchemaConfig{})),
        stats_(SynthesizeStats(catalog_)) {}
  Catalog catalog_;
  StatsCatalog stats_;
};

TEST_F(HarnessTest, DPReferenceExperiment) {
  WorkloadSpec spec;
  spec.topology = Topology::kStarChain;
  spec.num_relations = 10;
  spec.num_instances = 5;
  const std::vector<Query> queries = GenerateWorkload(catalog_, spec);
  const std::vector<AlgorithmSpec> algos = {
      AlgorithmSpec::DP(), AlgorithmSpec::IDP(4), AlgorithmSpec::SDP()};
  const ExperimentReport report = RunExperiment(
      queries, catalog_, stats_, algos, OptimizerOptions{}, spec.Name());

  EXPECT_EQ(report.reference_name, "DP");
  ASSERT_EQ(report.outcomes.size(), 3u);
  const AlgorithmOutcome& dp = report.outcomes[0];
  EXPECT_EQ(dp.feasible, 5);
  // DP against itself is 100% ideal.
  EXPECT_DOUBLE_EQ(dp.quality.Percent(QualityClass::kIdeal), 100);
  EXPECT_DOUBLE_EQ(dp.quality.Rho(), 1);
  // Heuristics are never better than the reference.
  for (const AlgorithmOutcome& o : report.outcomes) {
    EXPECT_GE(o.quality.worst, 1.0 - 1e-9);
    EXPECT_GT(o.AvgPlansCosted(), 0);
    EXPECT_GT(o.AvgPeakMb(), 0);
  }
}

TEST_F(HarnessTest, FallsBackToSDPReference) {
  WorkloadSpec spec;
  spec.topology = Topology::kStar;
  spec.num_relations = 14;
  spec.num_instances = 2;
  const std::vector<Query> queries = GenerateWorkload(catalog_, spec);
  OptimizerOptions budget;
  budget.memory_budget_bytes = 4ull << 20;  // DP cannot fit.
  const std::vector<AlgorithmSpec> algos = {AlgorithmSpec::DP(),
                                            AlgorithmSpec::SDP()};
  const ExperimentReport report =
      RunExperiment(queries, catalog_, stats_, algos, budget, spec.Name());
  EXPECT_EQ(report.reference_name, "SDP");
  EXPECT_EQ(report.outcomes[0].feasible, 0);
  EXPECT_EQ(report.outcomes[1].feasible, 2);
  EXPECT_DOUBLE_EQ(report.outcomes[1].quality.Rho(), 1);
}

TEST_F(HarnessTest, TablePrintingIncludesAllAlgorithms) {
  WorkloadSpec spec;
  spec.topology = Topology::kChain;
  spec.num_relations = 6;
  spec.num_instances = 2;
  const std::vector<Query> queries = GenerateWorkload(catalog_, spec);
  const std::vector<AlgorithmSpec> algos = {
      AlgorithmSpec::DP(), AlgorithmSpec::IDP(7), AlgorithmSpec::SDP()};
  const ExperimentReport report = RunExperiment(
      queries, catalog_, stats_, algos, OptimizerOptions{}, spec.Name());
  std::ostringstream quality, overhead;
  PrintQualityTable(quality, report);
  PrintOverheadTable(overhead, report);
  for (const char* name : {"DP", "IDP(7)", "SDP"}) {
    EXPECT_NE(quality.str().find(name), std::string::npos);
    EXPECT_NE(overhead.str().find(name), std::string::npos);
  }
  EXPECT_NE(quality.str().find("rho"), std::string::npos);
  EXPECT_NE(overhead.str().find("Memory"), std::string::npos);
}

TEST_F(HarnessTest, InfeasibleRowsPrintStars) {
  WorkloadSpec spec;
  spec.topology = Topology::kStar;
  spec.num_relations = 14;
  spec.num_instances = 1;
  const std::vector<Query> queries = GenerateWorkload(catalog_, spec);
  OptimizerOptions budget;
  budget.memory_budget_bytes = 1 << 20;
  const std::vector<AlgorithmSpec> algos = {AlgorithmSpec::DP(),
                                            AlgorithmSpec::SDP()};
  const ExperimentReport report =
      RunExperiment(queries, catalog_, stats_, algos, budget, spec.Name());
  std::ostringstream os;
  PrintQualityTable(os, report);
  EXPECT_NE(os.str().find("*"), std::string::npos);
}

TEST_F(HarnessTest, SDPWithNamesCustomConfig) {
  SdpConfig global;
  global.localized = false;
  const AlgorithmSpec spec = AlgorithmSpec::SDPWith(global, "SDP/Global");
  EXPECT_EQ(spec.name, "SDP/Global");
  WorkloadSpec w;
  w.topology = Topology::kStarChain;
  w.num_relations = 9;
  w.num_instances = 1;
  const Query q = GenerateWorkload(catalog_, w).front();
  CostModel cost(catalog_, stats_, q.graph);
  const OptimizeResult r = RunAlgorithm(spec, q, cost, OptimizerOptions{});
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.algorithm, "SDP/Global");
}

}  // namespace
}  // namespace sdp
